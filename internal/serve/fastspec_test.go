package serve

import "testing"

// The fast spec must validate through the submission path, expand to
// exactly one unit, and key cache-hot/cold traffic off its seed.
func TestFastJobSpec(t *testing.T) {
	units1, err := buildUnits(FastJobSpec(1))
	if err != nil {
		t.Fatalf("FastJobSpec(1) rejected: %v", err)
	}
	if len(units1) != 1 {
		t.Fatalf("FastJobSpec expanded to %d units, want 1", len(units1))
	}
	again, err := buildUnits(FastJobSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if units1[0].Key != again[0].Key {
		t.Errorf("same seed produced different keys: %s vs %s", units1[0].Key, again[0].Key)
	}
	units2, err := buildUnits(FastJobSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if units1[0].Key == units2[0].Key {
		t.Errorf("distinct seeds share key %s; cold traffic would be warm", units1[0].Key)
	}
}

// The JSON metrics view mirrors the text exposition's series.
func TestMetricsSnapshotSeries(t *testing.T) {
	s := newTestServer(t, nil)
	v := s.MetricsSnapshot()
	for _, name := range []string{
		"esteem_serve_jobs_accepted_total",
		"esteem_serve_cache_hits_total",
		"esteem_serve_cache_misses_total",
		"esteem_serve_cache_coalesced_total",
		"esteem_serve_jobs_rejected_total",
	} {
		if _, ok := v.Counters[name]; !ok {
			t.Errorf("JSON metrics view missing counter %s", name)
		}
	}
	if _, ok := v.Gauges["esteem_serve_queue_depth"]; !ok {
		t.Error("JSON metrics view missing queue-depth gauge")
	}
	h, ok := v.Histograms["esteem_serve_queue_wait_seconds"]
	if !ok {
		t.Fatal("JSON metrics view missing queue-wait histogram")
	}
	if len(h.Buckets) != len(latencyBuckets) {
		t.Errorf("histogram view has %d buckets, want %d", len(h.Buckets), len(latencyBuckets))
	}
}
