package ckpt

import (
	"bytes"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Section("HEAD")
	w.U64(0xDEADBEEFCAFEF00D)
	w.U32(7)
	w.U8(255)
	w.Int(-42)
	w.Bool(true)
	w.Bool(false)
	w.F64(math.Pi)
	w.F64(math.Inf(-1))
	w.String("hello")
	w.Bytes64([]byte{1, 2, 3})
	w.U64Slice([]uint64{9, 8, 7})
	w.U8Slice([]uint8{4, 5})
	w.I32Slice([]int32{-1, 2})
	w.I8Slice([]int8{-8, 8})
	w.IntSlice([]int{-100, 100})
	w.F64Slice([]float64{0.5, -0.25})
	w.BoolSlice([]bool{true, false, true})

	r := NewReader(w.Bytes())
	r.Section("HEAD")
	if got := r.U64(); got != 0xDEADBEEFCAFEF00D {
		t.Fatalf("U64 = %#x", got)
	}
	if got := r.U32(); got != 7 {
		t.Fatalf("U32 = %d", got)
	}
	if got := r.U8(); got != 255 {
		t.Fatalf("U8 = %d", got)
	}
	if got := r.Int(); got != -42 {
		t.Fatalf("Int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round-trip failed")
	}
	if got := r.F64(); got != math.Pi {
		t.Fatalf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Fatalf("F64 inf = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	if got := r.Bytes64(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes64 = %v", got)
	}
	if got := r.U64Slice(); len(got) != 3 || got[0] != 9 || got[2] != 7 {
		t.Fatalf("U64Slice = %v", got)
	}
	u8 := make([]uint8, 2)
	r.U8SliceInto(u8)
	if u8[0] != 4 || u8[1] != 5 {
		t.Fatalf("U8SliceInto = %v", u8)
	}
	i32 := make([]int32, 2)
	r.I32SliceInto(i32)
	if i32[0] != -1 || i32[1] != 2 {
		t.Fatalf("I32SliceInto = %v", i32)
	}
	i8 := make([]int8, 2)
	r.I8SliceInto(i8)
	if i8[0] != -8 || i8[1] != 8 {
		t.Fatalf("I8SliceInto = %v", i8)
	}
	ints := make([]int, 2)
	r.IntSliceInto(ints)
	if ints[0] != -100 || ints[1] != 100 {
		t.Fatalf("IntSliceInto = %v", ints)
	}
	f64 := make([]float64, 2)
	r.F64SliceInto(f64)
	if f64[0] != 0.5 || f64[1] != -0.25 {
		t.Fatalf("F64SliceInto = %v", f64)
	}
	bools := make([]bool, 3)
	r.BoolSliceInto(bools)
	if !bools[0] || bools[1] || !bools[2] {
		t.Fatalf("BoolSliceInto = %v", bools)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestReaderErrors(t *testing.T) {
	// Truncation sticks and zero-values follow.
	r := NewReader([]byte{1, 2, 3})
	if got := r.U64(); got != 0 {
		t.Fatalf("truncated U64 = %d", got)
	}
	if r.Err() == nil {
		t.Fatal("expected truncation error")
	}
	if got := r.U32(); got != 0 {
		t.Fatalf("post-error U32 = %d", got)
	}

	// Wrong section tag.
	w := NewWriter()
	w.Section("AAAA")
	r = NewReader(w.Bytes())
	r.Section("BBBB")
	if r.Err() == nil {
		t.Fatal("expected section mismatch error")
	}

	// Invalid bool byte.
	r = NewReader([]byte{7})
	r.Bool()
	if r.Err() == nil {
		t.Fatal("expected bool error")
	}

	// Hostile slice length must not allocate.
	w = NewWriter()
	w.U64(1 << 60)
	r = NewReader(w.Bytes())
	if s := r.U64Slice(); s != nil {
		t.Fatalf("hostile slice = %v", s)
	}
	if r.Err() == nil {
		t.Fatal("expected slice length error")
	}

	// Length mismatch on Into decodes.
	w = NewWriter()
	w.U64Slice([]uint64{1, 2, 3})
	r = NewReader(w.Bytes())
	r.U64SliceInto(make([]uint64, 2))
	if r.Err() == nil {
		t.Fatal("expected length mismatch error")
	}

	// Trailing bytes rejected by Done.
	w = NewWriter()
	w.U64(1)
	w.U64(2)
	r = NewReader(w.Bytes())
	r.U64()
	if err := r.Done(); err == nil {
		t.Fatal("expected trailing-bytes error")
	}

	// Failf records external validation failures.
	r = NewReader(nil)
	r.Failf("bad value %d", 9)
	if r.Err() == nil {
		t.Fatal("expected Failf error")
	}
}
