package oracle

import (
	"fmt"

	"repro/internal/edram"
)

// Engine is a naive re-implementation of edram.Engine's event
// schedule: event k fires at cycle k*spacing with within-window index
// (k-1) mod EventsPerWindow. It recomputes the schedule from the event
// ordinal instead of maintaining nextEvent/eventIdx cursors.
type Engine struct {
	retention uint64
	banks     int
	policy    edram.Policy
	spacing   uint64
	processed uint64 // events fired so far

	busyUntil []uint64

	totalRefreshed     uint64
	intervalRefreshed  uint64
	totalBusyCycles    uint64
	intervalBusyCycles uint64
}

// NewEngine mirrors edram.NewEngine's validation and initial state.
func NewEngine(p edram.Params, policy edram.Policy) (*Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ev := policy.EventsPerWindow()
	if ev <= 0 || uint64(ev) > p.RetentionCycles {
		return nil, fmt.Errorf("oracle: %d events do not fit in %d retention cycles", ev, p.RetentionCycles)
	}
	return &Engine{
		retention: p.RetentionCycles,
		banks:     p.Banks,
		policy:    policy,
		spacing:   p.RetentionCycles / uint64(ev),
		busyUntil: make([]uint64, p.Banks),
	}, nil
}

// AdvanceTo fires every event scheduled at or before cycle.
func (e *Engine) AdvanceTo(cycle uint64) {
	for (e.processed+1)*e.spacing <= cycle {
		k := e.processed + 1
		start := k * e.spacing
		event := int((k - 1) % uint64(e.policy.EventsPerWindow()))
		for b := 0; b < e.banks; b++ {
			n := uint64(e.policy.RefreshEvent(b, event))
			if n == 0 {
				continue
			}
			if e.busyUntil[b] < start {
				e.busyUntil[b] = start
			}
			e.busyUntil[b] += n
			e.totalRefreshed += n
			e.intervalRefreshed += n
			e.totalBusyCycles += n
			e.intervalBusyCycles += n
		}
		e.processed = k
	}
}

// AccessDelay reports the refresh-induced wait of a demand access,
// advancing the engine first.
func (e *Engine) AccessDelay(bank int, cycle uint64) uint64 {
	e.AdvanceTo(cycle)
	if e.busyUntil[bank] > cycle {
		return e.busyUntil[bank] - cycle
	}
	return 0
}

// TotalRefreshed returns lifetime line refreshes.
func (e *Engine) TotalRefreshed() uint64 { return e.totalRefreshed }

// IntervalRefreshed returns refreshes since ResetInterval.
func (e *Engine) IntervalRefreshed() uint64 { return e.intervalRefreshed }

// TotalBusyCycles returns lifetime bank-cycles spent refreshing.
func (e *Engine) TotalBusyCycles() uint64 { return e.totalBusyCycles }

// IntervalBusyCycles returns busy cycles since ResetInterval.
func (e *Engine) IntervalBusyCycles() uint64 { return e.intervalBusyCycles }

// Events returns the number of events processed.
func (e *Engine) Events() uint64 { return e.processed }

// ResetInterval clears the interval counters.
func (e *Engine) ResetInterval() {
	e.intervalRefreshed = 0
	e.intervalBusyCycles = 0
}

// RefreshAllRef is the reference baseline policy: every frame of the
// bank, counted by walking the sets rather than by closed form.
type RefreshAllRef struct{ C *Cache }

// Name implements edram.Policy.
func (p *RefreshAllRef) Name() string { return "oracle-baseline" }

// EventsPerWindow implements edram.Policy.
func (p *RefreshAllRef) EventsPerWindow() int { return 1 }

// RefreshEvent counts every frame in the bank by scanning.
func (p *RefreshAllRef) RefreshEvent(bank, event int) int {
	n := 0
	for set := 0; set < p.C.NumSets(); set++ {
		if p.C.BankOf(set) == bank {
			n += p.C.Params().Assoc
		}
	}
	return n
}

// ValidOnlyRef is the reference valid-lines-only policy: the bank's
// valid lines, recounted from the frame array at every event.
type ValidOnlyRef struct{ C *Cache }

// Name implements edram.Policy.
func (p *ValidOnlyRef) Name() string { return "oracle-valid-only" }

// EventsPerWindow implements edram.Policy.
func (p *ValidOnlyRef) EventsPerWindow() int { return 1 }

// RefreshEvent implements edram.Policy by full scan.
func (p *ValidOnlyRef) RefreshEvent(bank, event int) int {
	return p.C.ValidByBank(bank)
}

// untracked marks a frame with no live phase.
const untracked = int8(-1)

// PolyphaseRef is the reference Refrint bookkeeper: a flat per-line
// phase array with no incremental counts or clean lists; every refresh
// event walks every frame of the cache. Dirty == false gives RPV
// semantics, Dirty == true gives RPD (clean frames at their phase are
// eagerly invalidated).
type PolyphaseRef struct {
	C         *Cache
	clock     *edram.Clock
	phases    int
	retention uint64
	dirtyMode bool
	phase     []int8
	// Invalidations counts clean frames eagerly dropped (RPD only).
	Invalidations uint64
}

// NewPolyphaseRef builds the reference bookkeeper and installs it as
// the oracle cache's observer.
func NewPolyphaseRef(c *Cache, clock *edram.Clock, phases int, retentionCycles uint64, dirtyMode bool) (*PolyphaseRef, error) {
	if phases < 1 || phases > 127 {
		return nil, fmt.Errorf("oracle: phase count %d out of [1,127]", phases)
	}
	if retentionCycles < uint64(phases) {
		return nil, fmt.Errorf("oracle: %d phases do not fit in %d retention cycles", phases, retentionCycles)
	}
	p := &PolyphaseRef{
		C:         c,
		clock:     clock,
		phases:    phases,
		retention: retentionCycles,
		dirtyMode: dirtyMode,
		phase:     make([]int8, c.NumSets()*c.Params().Assoc),
	}
	for i := range p.phase {
		p.phase[i] = untracked
	}
	c.SetObserver(p)
	return p, nil
}

// currentPhase recomputes the phase of the current cycle.
func (p *PolyphaseRef) currentPhase() int8 {
	phaseLen := p.retention / uint64(p.phases)
	ph := (p.clock.Cycle % p.retention) / phaseLen
	if ph >= uint64(p.phases) {
		ph = uint64(p.phases) - 1
	}
	return int8(ph)
}

// OnTouch implements cache.Observer.
func (p *PolyphaseRef) OnTouch(set, way int) {
	p.phase[set*p.C.Params().Assoc+way] = p.currentPhase()
}

// OnInvalidate implements cache.Observer.
func (p *PolyphaseRef) OnInvalidate(set, way int) {
	p.phase[set*p.C.Params().Assoc+way] = untracked
}

// Name implements edram.Policy.
func (p *PolyphaseRef) Name() string {
	if p.dirtyMode {
		return fmt.Sprintf("oracle-rpd%d", p.phases)
	}
	return fmt.Sprintf("oracle-rpv%d", p.phases)
}

// EventsPerWindow implements edram.Policy.
func (p *PolyphaseRef) EventsPerWindow() int { return p.phases }

// RefreshEvent walks every frame of the bank. RPV counts tracked
// frames at the event's phase; RPD refreshes the dirty ones and
// eagerly invalidates the clean ones.
func (p *PolyphaseRef) RefreshEvent(bank, event int) int {
	assoc := p.C.Params().Assoc
	n := 0
	type frame struct{ set, way int }
	var toDrop []frame
	for set := 0; set < p.C.NumSets(); set++ {
		if p.C.BankOf(set) != bank {
			continue
		}
		for w := 0; w < assoc; w++ {
			if p.phase[set*assoc+w] != int8(event) {
				continue
			}
			if !p.dirtyMode {
				n++
				continue
			}
			if _, dirty := p.C.LineState(set, w); dirty {
				n++
			} else {
				toDrop = append(toDrop, frame{set, w})
			}
		}
	}
	for _, f := range toDrop {
		p.C.InvalidateLine(f.set, f.way)
		p.Invalidations++
	}
	return n
}

// TrackedLines counts frames carrying a live phase.
func (p *PolyphaseRef) TrackedLines() int {
	n := 0
	for _, ph := range p.phase {
		if ph != untracked {
			n++
		}
	}
	return n
}

// SmartRefreshRef is the reference Smart-Refresh bookkeeper: per-line
// down-counters walked frame by frame with no empty-bank fast path.
type SmartRefreshRef struct {
	C       *Cache
	periods int
	counter []uint8
	// Skipped counts engine refreshes avoided because a line's counter
	// had not yet expired.
	Skipped uint64
}

// NewSmartRefreshRef builds the reference policy and installs it as
// the oracle cache's observer.
func NewSmartRefreshRef(c *Cache, periods int) (*SmartRefreshRef, error) {
	if periods < 1 || periods > 255 {
		return nil, fmt.Errorf("oracle: periods %d out of [1,255]", periods)
	}
	p := &SmartRefreshRef{
		C:       c,
		periods: periods,
		counter: make([]uint8, c.NumSets()*c.Params().Assoc),
	}
	c.SetObserver(p)
	return p, nil
}

// Name implements edram.Policy.
func (p *SmartRefreshRef) Name() string { return fmt.Sprintf("oracle-smart-refresh%d", p.periods) }

// EventsPerWindow implements edram.Policy.
func (p *SmartRefreshRef) EventsPerWindow() int { return p.periods }

// OnTouch implements cache.Observer.
func (p *SmartRefreshRef) OnTouch(set, way int) {
	p.counter[set*p.C.Params().Assoc+way] = uint8(p.periods)
}

// OnInvalidate implements cache.Observer.
func (p *SmartRefreshRef) OnInvalidate(set, way int) {
	p.counter[set*p.C.Params().Assoc+way] = 0
}

// RefreshEvent decrements every tracked frame of the bank; frames
// reaching zero are refreshed and reloaded.
func (p *SmartRefreshRef) RefreshEvent(bank, event int) int {
	assoc := p.C.Params().Assoc
	n := 0
	for set := 0; set < p.C.NumSets(); set++ {
		if p.C.BankOf(set) != bank {
			continue
		}
		for w := 0; w < assoc; w++ {
			cnt := p.counter[set*assoc+w]
			if cnt == 0 {
				continue
			}
			cnt--
			if cnt == 0 {
				n++
				cnt = uint8(p.periods)
			} else {
				p.Skipped++
			}
			p.counter[set*assoc+w] = cnt
		}
	}
	return n
}
