// Package cache implements the set-associative cache model underlying
// both the L1 caches and the reconfigurable eDRAM L2 cache of the
// ESTEEM paper (Mittal, Vetter, Li — HPDC'14).
//
// The L2-specific machinery follows Sections 3–5 of the paper:
//
//   - The sets are partitioned into M contiguous "modules"; each module
//     has its own count of powered-on ("active") ways, controlled by
//     per-way disable bits (selective-ways reconfiguration).
//   - Every Rs-th set is a "leader" set: it always keeps all ways
//     active and never undergoes reconfiguration. Leader sets double
//     as the auxiliary tag directory (ATD) embedded in the main tag
//     directory; hit-position (LRU recency) histograms are collected
//     from leader sets only.
//   - On shrinking a module, clean lines in the disabled ways are
//     dropped and dirty lines are written back (counted, so the
//     simulator can charge main-memory traffic and energy).
//
// Replacement is true LRU, as in the paper's simulated hierarchy.
package cache

import (
	"fmt"
	"math/bits"
)

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// Params configures a cache instance.
type Params struct {
	// Name is used in error messages and reports (e.g. "L2").
	Name string
	// SizeBytes is the total capacity. Must be divisible by
	// LineBytes*Assoc into a power-of-two number of sets.
	SizeBytes int
	// Assoc is the number of ways per set.
	Assoc int
	// LineBytes is the cache line (block) size; the paper uses 64 B.
	LineBytes int
	// Latency is the access latency in cycles (informational; the
	// simulator charges it).
	Latency int
	// Modules is the number of reconfiguration modules M. Sets are
	// split into M contiguous ranges. Use 1 for non-reconfigurable
	// caches (L1). Must divide the number of sets.
	Modules int
	// SamplingRatio is Rs: one of every Rs sets is a leader set.
	// 0 disables leader sets entirely (L1 caches).
	SamplingRatio int
	// Banks is the number of banks lines are interleaved across; the
	// paper's eDRAM L2 has 4. Use 1 when banking is irrelevant.
	Banks int
}

// validate checks the parameter combination and derives the set count.
func (p Params) validate() (sets int, err error) {
	if p.SizeBytes <= 0 || p.Assoc <= 0 || p.LineBytes <= 0 {
		return 0, fmt.Errorf("cache %s: size, assoc and line size must be positive", p.Name)
	}
	if p.SizeBytes%(p.LineBytes*p.Assoc) != 0 {
		return 0, fmt.Errorf("cache %s: size %d not divisible by line*assoc", p.Name, p.SizeBytes)
	}
	sets = p.SizeBytes / (p.LineBytes * p.Assoc)
	if bits.OnesCount(uint(sets)) != 1 {
		return 0, fmt.Errorf("cache %s: set count %d is not a power of two", p.Name, sets)
	}
	if bits.OnesCount(uint(p.LineBytes)) != 1 {
		return 0, fmt.Errorf("cache %s: line size %d is not a power of two", p.Name, p.LineBytes)
	}
	if p.Modules <= 0 {
		return 0, fmt.Errorf("cache %s: modules must be >= 1", p.Name)
	}
	if sets%p.Modules != 0 {
		return 0, fmt.Errorf("cache %s: %d sets not divisible into %d modules", p.Name, sets, p.Modules)
	}
	if p.SamplingRatio < 0 {
		return 0, fmt.Errorf("cache %s: negative sampling ratio", p.Name)
	}
	if p.Banks <= 0 {
		return 0, fmt.Errorf("cache %s: banks must be >= 1", p.Name)
	}
	if p.Assoc > 64 {
		return 0, fmt.Errorf("cache %s: associativity %d > 64 unsupported", p.Name, p.Assoc)
	}
	return sets, nil
}

// line is one cache block's tag state.
type line struct {
	tag   uint64
	valid bool
	dirty bool
}

// set holds the ways of one cache set plus its LRU stack.
type set struct {
	lines []line
	// order lists way indices from MRU (order[0]) to LRU
	// (order[assoc-1]).
	order []uint8
}

// AccessResult reports what happened on one cache access.
type AccessResult struct {
	// Hit is true if the line was present in an active way.
	Hit bool
	// Way is the physical way that was hit or filled.
	Way int
	// LRUPos is the LRU-stack position of the hit (0 = MRU); -1 on a
	// miss.
	LRUPos int
	// Set and Bank identify where the access landed.
	Set, Bank int
	// Module is the reconfiguration module of the set.
	Module int
	// Leader is true if the set is a leader (profiling) set.
	Leader bool
	// WritebackVictim is true when the fill evicted a dirty line that
	// must be written back to the next level; VictimAddr is then the
	// evicted line's address.
	WritebackVictim bool
	VictimAddr      Addr
}

// Counters is a snapshot of access statistics.
type Counters struct {
	Hits       uint64
	Misses     uint64
	Writebacks uint64 // dirty evictions (demand misses + reconfiguration flushes)
	Fills      uint64
}

// Accesses returns hits + misses.
func (c Counters) Accesses() uint64 { return c.Hits + c.Misses }

// Observer receives line lifecycle events; refresh policies (e.g.
// Refrint RPV) use it to track per-line touch phases without the cache
// knowing about them.
type Observer interface {
	// OnTouch fires on every hit or fill of (set, way).
	OnTouch(set, way int)
	// OnInvalidate fires whenever a line becomes invalid (eviction or
	// reconfiguration flush).
	OnInvalidate(set, way int)
}

// Cache is a single-level set-associative cache.
type Cache struct {
	p          Params
	sets       []set
	numSets    int
	setsPerMod int
	lineShift  uint
	tagShift   uint
	setMask    uint64

	// Per-set lookups precomputed at construction so the access hot
	// path avoids div/mod per reference.
	setModule []int32
	setBank   []int32
	setLeader []bool

	// activeWays[m] is the number of powered-on ways in module m;
	// ways [0, activeWays[m]) are active in follower sets.
	activeWays []int
	// followersPerMod[m] is the number of non-leader sets in module m
	// (leader sets never reconfigure, so they are constant).
	followersPerMod []int
	// activeLines is the configured powered-on line count, maintained
	// incrementally by SetActiveWays so ActiveFraction is O(1) instead
	// of rescanning every set each interval.
	activeLines int

	// validByBank[b] counts valid lines whose set maps to bank b.
	// Because disabled ways are flushed, every valid line is in an
	// active way (or in a leader set, which is always fully active).
	validByBank []int

	// hitPos[m][pos] counts leader-set hits in module m at LRU
	// position pos since the last ResetInterval.
	hitPos [][]uint64

	total    Counters // since construction
	interval Counters // since last ResetInterval

	observer Observer
}

// New builds a cache from p. All ways start active and all lines
// invalid.
func New(p Params) (*Cache, error) {
	numSets, err := p.validate()
	if err != nil {
		return nil, err
	}
	c := &Cache{
		p:               p,
		numSets:         numSets,
		setsPerMod:      numSets / p.Modules,
		lineShift:       uint(bits.TrailingZeros(uint(p.LineBytes))),
		setMask:         uint64(numSets - 1),
		setModule:       make([]int32, numSets),
		setBank:         make([]int32, numSets),
		setLeader:       make([]bool, numSets),
		activeWays:      make([]int, p.Modules),
		followersPerMod: make([]int, p.Modules),
		validByBank:     make([]int, p.Banks),
		hitPos:          make([][]uint64, p.Modules),
	}
	c.tagShift = c.lineShift + uint(bits.TrailingZeros(uint(numSets)))
	// One backing array per field instead of one allocation per set:
	// sweeps construct thousands of caches, and per-set slices were
	// >95% of a simulation job's allocations.
	lineBacking := make([]line, numSets*p.Assoc)
	orderBacking := make([]uint8, numSets*p.Assoc)
	c.sets = make([]set, numSets)
	for i := range c.sets {
		c.sets[i].lines = lineBacking[i*p.Assoc : (i+1)*p.Assoc : (i+1)*p.Assoc]
		c.sets[i].order = orderBacking[i*p.Assoc : (i+1)*p.Assoc : (i+1)*p.Assoc]
		for w := range c.sets[i].order {
			c.sets[i].order[w] = uint8(w)
		}
		c.setModule[i] = int32(i / c.setsPerMod)
		c.setBank[i] = int32(i % p.Banks)
		c.setLeader[i] = p.SamplingRatio > 0 && i%p.SamplingRatio == 0
		if !c.setLeader[i] {
			c.followersPerMod[i/c.setsPerMod]++
		}
	}
	hitBacking := make([]uint64, p.Modules*p.Assoc)
	for m := range c.activeWays {
		c.activeWays[m] = p.Assoc
		c.hitPos[m] = hitBacking[m*p.Assoc : (m+1)*p.Assoc : (m+1)*p.Assoc]
	}
	c.activeLines = numSets * p.Assoc
	return c, nil
}

// MustNew is New but panics on error; for tests and fixed configs.
func MustNew(p Params) *Cache {
	c, err := New(p)
	if err != nil {
		panic(err)
	}
	return c
}

// SetObserver installs an observer for line lifecycle events.
// A nil observer disables notifications.
func (c *Cache) SetObserver(o Observer) { c.observer = o }

// Params returns the construction parameters.
func (c *Cache) Params() Params { return c.p }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

// NumModules returns M.
func (c *Cache) NumModules() int { return c.p.Modules }

// SetsPerModule returns S/M.
func (c *Cache) SetsPerModule() int { return c.setsPerMod }

// SetIndex maps an address to its set.
func (c *Cache) SetIndex(a Addr) int {
	return int((uint64(a) >> c.lineShift) & c.setMask)
}

// tagOf extracts the tag for an address.
func (c *Cache) tagOf(a Addr) uint64 {
	return uint64(a) >> c.tagShift
}

// lineAddr reconstructs the base address of the line with the given
// tag in the given set (inverse of SetIndex/tagOf).
func (c *Cache) lineAddr(setIdx int, tag uint64) Addr {
	return Addr((tag*uint64(c.numSets) + uint64(setIdx)) << c.lineShift)
}

// ModuleOf returns the module of a set index.
func (c *Cache) ModuleOf(setIdx int) int { return int(c.setModule[setIdx]) }

// BankOf returns the bank a set maps to (low-order interleaving).
func (c *Cache) BankOf(setIdx int) int { return int(c.setBank[setIdx]) }

// IsLeader reports whether a set is a leader (profiling) set.
func (c *Cache) IsLeader(setIdx int) bool { return c.setLeader[setIdx] }

// NumLeaderSets returns the number of leader sets.
func (c *Cache) NumLeaderSets() int {
	if c.p.SamplingRatio <= 0 {
		return 0
	}
	return (c.numSets + c.p.SamplingRatio - 1) / c.p.SamplingRatio
}

// waysFor returns how many ways are active for a given set.
func (c *Cache) waysFor(setIdx int) int {
	if c.setLeader[setIdx] {
		return c.p.Assoc
	}
	return c.activeWays[c.setModule[setIdx]]
}

// Access performs a read (write=false) or write (write=true) to addr
// and updates replacement and statistics. On a miss the line is filled
// (allocate-on-miss for both reads and writes, matching a write-back,
// write-allocate LLC).
func (c *Cache) Access(addr Addr, write bool) AccessResult {
	setIdx := c.SetIndex(addr)
	tag := c.tagOf(addr)
	s := &c.sets[setIdx]
	nActive := c.waysFor(setIdx)
	res := AccessResult{
		Set:    setIdx,
		Bank:   c.BankOf(setIdx),
		Module: c.ModuleOf(setIdx),
		Leader: c.IsLeader(setIdx),
		LRUPos: -1,
	}

	// Probe active ways. The LRU position is the index within the
	// recency stack, which is what Algorithm 1's nL2Hit indexes by.
	for pos := 0; pos < c.p.Assoc; pos++ {
		w := int(s.order[pos])
		if w >= nActive {
			continue // disabled way: cannot hold a valid line, skip
		}
		ln := &s.lines[w]
		if ln.valid && ln.tag == tag {
			res.Hit = true
			res.Way = w
			res.LRUPos = pos
			if write {
				ln.dirty = true
			}
			c.promote(s, pos)
			c.total.Hits++
			c.interval.Hits++
			if res.Leader {
				c.hitPos[res.Module][pos]++
			}
			if c.observer != nil {
				c.observer.OnTouch(setIdx, w)
			}
			return res
		}
	}

	// Miss: choose a victim among active ways — the lowest-numbered
	// invalid active way if one exists (so fills pack into low ways,
	// the ones selective-ways keeps enabled), otherwise the LRU
	// active way.
	c.total.Misses++
	c.interval.Misses++
	victimWay := -1
	for w := 0; w < nActive; w++ {
		if !s.lines[w].valid {
			victimWay = w
			break
		}
	}
	victimPos := -1
	if victimWay >= 0 {
		for pos := 0; pos < c.p.Assoc; pos++ {
			if int(s.order[pos]) == victimWay {
				victimPos = pos
				break
			}
		}
	} else {
		for pos := c.p.Assoc - 1; pos >= 0; pos-- {
			if int(s.order[pos]) < nActive {
				victimPos = pos
				break
			}
		}
	}
	if victimPos < 0 {
		// No active ways at all — cannot happen with A_min >= 1, but
		// guard against misconfiguration rather than corrupt state.
		panic(fmt.Sprintf("cache %s: set %d has zero active ways", c.p.Name, setIdx))
	}
	w := int(s.order[victimPos])
	ln := &s.lines[w]
	if ln.valid {
		if ln.dirty {
			res.WritebackVictim = true
			res.VictimAddr = c.lineAddr(setIdx, ln.tag)
			c.total.Writebacks++
			c.interval.Writebacks++
		}
		c.validByBank[res.Bank]--
		if c.observer != nil {
			c.observer.OnInvalidate(setIdx, w)
		}
	}
	ln.tag = tag
	ln.valid = true
	ln.dirty = write
	c.validByBank[res.Bank]++
	c.total.Fills++
	c.interval.Fills++
	res.Way = w
	c.promote(s, victimPos)
	if c.observer != nil {
		c.observer.OnTouch(setIdx, w)
	}
	return res
}

// promote moves the way at stack position pos to MRU.
func (c *Cache) promote(s *set, pos int) {
	w := s.order[pos]
	copy(s.order[1:pos+1], s.order[:pos])
	s.order[0] = w
}

// Probe reports whether addr is present in an active way, without
// disturbing replacement state or statistics.
func (c *Cache) Probe(addr Addr) bool {
	setIdx := c.SetIndex(addr)
	tag := c.tagOf(addr)
	s := &c.sets[setIdx]
	nActive := c.waysFor(setIdx)
	for pos := 0; pos < c.p.Assoc; pos++ {
		w := int(s.order[pos])
		if w >= nActive {
			continue
		}
		if s.lines[w].valid && s.lines[w].tag == tag {
			return true
		}
	}
	return false
}

// SetActiveWays reconfigures module m to keep n ways powered on.
// Shrinking flushes the disabled ways of every follower set in the
// module: clean lines are dropped and dirty lines counted as
// writebacks. It returns the number of lines invalidated and how many
// of those were dirty (writebacks). Growing simply enables the ways.
// It panics if m or n is out of range, matching the paper's invariant
// that the controller always requests 1 <= n <= A.
func (c *Cache) SetActiveWays(m, n int) (invalidated, writebacks int) {
	if m < 0 || m >= c.p.Modules {
		panic(fmt.Sprintf("cache %s: module %d out of range", c.p.Name, m))
	}
	if n < 1 || n > c.p.Assoc {
		panic(fmt.Sprintf("cache %s: active ways %d out of range [1,%d]", c.p.Name, n, c.p.Assoc))
	}
	old := c.activeWays[m]
	c.activeWays[m] = n
	c.activeLines += (n - old) * c.followersPerMod[m]
	if n >= old {
		return 0, 0
	}
	lo, hi := m*c.setsPerMod, (m+1)*c.setsPerMod
	for setIdx := lo; setIdx < hi; setIdx++ {
		if c.IsLeader(setIdx) {
			continue // leader sets never reconfigure (Section 3.2)
		}
		s := &c.sets[setIdx]
		for w := n; w < old; w++ {
			ln := &s.lines[w]
			if !ln.valid {
				continue
			}
			if ln.dirty {
				writebacks++
				c.total.Writebacks++
				c.interval.Writebacks++
			}
			ln.valid = false
			ln.dirty = false
			invalidated++
			c.validByBank[c.BankOf(setIdx)]--
			if c.observer != nil {
				c.observer.OnInvalidate(setIdx, w)
			}
		}
	}
	return invalidated, writebacks
}

// ActiveWays returns the active-way count of module m.
func (c *Cache) ActiveWays(m int) int { return c.activeWays[m] }

// ActiveFraction returns F_A: the fraction of the cache's lines that
// are powered on, counting leader sets (always fully on) and follower
// sets at their configured width — exactly the accounting the paper
// requires ("F_A for ESTEEM duly takes into account the active area
// due to leader and follower sets").
func (c *Cache) ActiveFraction() float64 {
	return float64(c.activeLines) / float64(c.numSets*c.p.Assoc)
}

// ValidByBank returns the number of valid lines mapped to bank b.
func (c *Cache) ValidByBank(b int) int { return c.validByBank[b] }

// ValidLines returns the total number of valid lines.
func (c *Cache) ValidLines() int {
	n := 0
	for _, v := range c.validByBank {
		n += v
	}
	return n
}

// TotalLines returns S*A.
func (c *Cache) TotalLines() int { return c.numSets * c.p.Assoc }

// LinesPerBank returns the number of line frames in bank b.
func (c *Cache) LinesPerBank(b int) int {
	// Sets are interleaved across banks low-order; with a power-of-two
	// set count and any bank count, distribute remainders exactly.
	full := c.numSets / c.p.Banks
	if b < c.numSets%c.p.Banks {
		full++
	}
	return full * c.p.Assoc
}

// LineState reports the valid/dirty state of the line at (setIdx, way).
func (c *Cache) LineState(setIdx, way int) (valid, dirty bool) {
	ln := &c.sets[setIdx].lines[way]
	return ln.valid, ln.dirty
}

// HitPositions returns the leader-set hit histogram for module m at
// the current interval: element i counts hits at LRU position i since
// the last ResetInterval. The returned slice aliases internal state;
// callers must not modify it and must copy if retaining across
// ResetInterval.
func (c *Cache) HitPositions(m int) []uint64 { return c.hitPos[m] }

// TotalCounters returns statistics since construction.
func (c *Cache) TotalCounters() Counters { return c.total }

// IntervalCounters returns statistics since the last ResetInterval.
func (c *Cache) IntervalCounters() Counters { return c.interval }

// ResetInterval clears the interval counters and leader histograms.
// The ESTEEM controller calls it after consuming an interval's
// profiling data.
func (c *Cache) ResetInterval() {
	c.interval = Counters{}
	for m := range c.hitPos {
		for i := range c.hitPos[m] {
			c.hitPos[m][i] = 0
		}
	}
}

// InvalidateAll drops every line (counting dirty writebacks), e.g. for
// tests and for policies that eagerly invalidate.
func (c *Cache) InvalidateAll() (writebacks int) {
	for setIdx := range c.sets {
		s := &c.sets[setIdx]
		for w := range s.lines {
			ln := &s.lines[w]
			if !ln.valid {
				continue
			}
			if ln.dirty {
				writebacks++
				c.total.Writebacks++
				c.interval.Writebacks++
			}
			ln.valid = false
			ln.dirty = false
			c.validByBank[c.BankOf(setIdx)]--
			if c.observer != nil {
				c.observer.OnInvalidate(setIdx, w)
			}
		}
	}
	return writebacks
}

// InvalidateLine invalidates (set, way) if valid, returning whether it
// was dirty. Used by eager-invalidation refresh policies (Refrint
// RPD).
func (c *Cache) InvalidateLine(setIdx, way int) (wasValid, wasDirty bool) {
	ln := &c.sets[setIdx].lines[way]
	if !ln.valid {
		return false, false
	}
	wasDirty = ln.dirty
	if wasDirty {
		c.total.Writebacks++
		c.interval.Writebacks++
	}
	ln.valid = false
	ln.dirty = false
	c.validByBank[c.BankOf(setIdx)]--
	if c.observer != nil {
		c.observer.OnInvalidate(setIdx, way)
	}
	return true, wasDirty
}
