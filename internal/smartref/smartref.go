// Package smartref implements the Smart-Refresh policy of Ghosh and
// Lee (MICRO 2007), one of the refresh-energy techniques the ESTEEM
// paper surveys in its related work (Section 2): "The Smart-Refresh
// technique avoids refreshing the DRAM rows which are recently read
// or written."
//
// Each line carries a small down-counter. A read or write implicitly
// refreshes the line and reloads its counter to the full window (P
// sub-periods). The refresh engine fires P times per retention
// window; at each event every valid line's counter is decremented,
// and only lines whose counter reaches zero are refreshed (and
// reloaded). A line touched at least once per retention window is
// therefore never refreshed by the engine at all — unlike Refrint
// RPV, which still re-refreshes such lines once per window at their
// phase.
//
// The reproduction uses the policy at cache-line granularity (the
// eDRAM LLC's refresh granularity), with the counter width P
// configurable (Ghosh and Lee evaluate 2- and 3-bit counters).
package smartref

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/obs"
)

// Policy is the Smart-Refresh refresh policy. It implements
// edram.Policy and cache.Observer.
type Policy struct {
	c       *cache.Cache
	periods int
	assoc   int
	banks   int
	// counter[set*assoc+way] is the remaining sub-periods before the
	// line needs an engine refresh; 0 means untracked/invalid.
	counter []uint8
	// intervalSkipped counts engine refreshes avoided (tracked lines
	// whose counter had not yet expired at an event) since the last
	// ResetPolicyStats — the technique's benefit, surfaced as
	// telemetry.
	intervalSkipped uint64
}

// New builds a Smart-Refresh policy with the given number of
// sub-periods per retention window (counter range; 2-bit counters =
// 3 usable periods) and installs itself as the cache's observer.
func New(c *cache.Cache, periods int) (*Policy, error) {
	if periods < 1 || periods > 255 {
		return nil, fmt.Errorf("smartref: periods %d out of [1,255]", periods)
	}
	p := &Policy{
		c:       c,
		periods: periods,
		assoc:   c.Params().Assoc,
		banks:   c.Params().Banks,
		counter: make([]uint8, c.NumSets()*c.Params().Assoc),
	}
	c.SetObserver(p)
	return p, nil
}

// Name implements edram.Policy.
func (p *Policy) Name() string { return fmt.Sprintf("smart-refresh%d", p.periods) }

// EventsPerWindow implements edram.Policy: the engine fires once per
// sub-period.
func (p *Policy) EventsPerWindow() int { return p.periods }

// OnTouch implements cache.Observer: the access itself refreshes the
// line, so its counter reloads to the full window.
func (p *Policy) OnTouch(set, way int) {
	p.counter[set*p.assoc+way] = uint8(p.periods)
}

// OnInvalidate implements cache.Observer.
func (p *Policy) OnInvalidate(set, way int) {
	p.counter[set*p.assoc+way] = 0
}

// RefreshEvent implements edram.Policy: decrement every tracked line
// in the bank; lines reaching zero are refreshed and reloaded.
func (p *Policy) RefreshEvent(bank, event int) int {
	if p.c.ValidByBank(bank) == 0 {
		return 0 // empty bank: nothing tracked, skip the frame walk
	}
	n := 0
	for set := bank; set < p.c.NumSets(); set += p.banks {
		base := set * p.assoc
		for w := 0; w < p.assoc; w++ {
			cnt := p.counter[base+w]
			if cnt == 0 {
				continue // invalid / untracked
			}
			cnt--
			if cnt == 0 {
				// Engine refresh renews the full window.
				n++
				cnt = uint8(p.periods)
			} else {
				p.intervalSkipped++
			}
			p.counter[base+w] = cnt
		}
	}
	return n
}

// IntervalPolicyStats implements edram.PolicyTelemetry.
func (p *Policy) IntervalPolicyStats() obs.PolicyStats {
	return obs.PolicyStats{SkippedRefreshes: p.intervalSkipped}
}

// ResetPolicyStats implements edram.PolicyTelemetry.
func (p *Policy) ResetPolicyStats() { p.intervalSkipped = 0 }

// TrackedLines returns the number of lines carrying a live counter
// (must equal the cache's valid-line count; tested as an invariant).
func (p *Policy) TrackedLines() int {
	n := 0
	for _, c := range p.counter {
		if c != 0 {
			n++
		}
	}
	return n
}
