# Convenience targets; `make check` is the CI/verification gate.

.PHONY: check ci lint golden golden-update verify fuzz-smoke build vet test race bench bench-record bench-check results quick-results serve serve-smoke trace-smoke load load-smoke load-record cluster cluster-smoke

check:
	./scripts/check.sh

# Everything CI runs: lint, the full check gate, the golden-output
# drift gate, the differential-verification gate, and the service
# smoke tests (end-to-end workflow, tracing, open-loop load).
ci: lint check golden verify serve-smoke trace-smoke load-smoke cluster-smoke

# Differential verification: oracle reference models vs the optimized
# implementations, plus the simulator rebuilt with runtime invariant
# checks (`-tags verify`). See DESIGN.md "Verification strategy".
verify:
	./scripts/verify.sh

# Short fuzzing pass over every native fuzz target (FUZZTIME=20s each
# by default); the nightly workflow runs the long-budget version.
fuzz-smoke:
	./scripts/fuzz-smoke.sh

lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	go vet ./...

# Golden-output gate: quick-run JSON must match results/golden/.
golden:
	./scripts/golden.sh

# Regenerate the golden outputs after an intentional behavioral change.
golden-update:
	./scripts/golden.sh update

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# The runner executes simulations on parallel workers; always keep the
# race pass green.
race:
	go test -race ./...

# Hot-path benchmarks with allocation counts (cache access, simulator
# step, refresh windows, whole short runs).
bench:
	go test -bench . -benchmem -run '^$$' ./internal/cache/ ./internal/sim/ ./internal/refrint/ .

# Run the pinned hot-path benchmarks at a fixed benchtime and append a
# dated entry to BENCH_sim.json (the checked-in perf trajectory).
bench-record:
	./scripts/bench-record.sh

# Gate the same benchmarks against the latest BENCH_sim.json entry:
# >15% ns/op regression or any allocs/op increase fails (CI's
# bench-gate lane).
bench-check:
	./scripts/bench-record.sh check

# Regenerate the paper evaluation (long; uses every CPU by default —
# tune with JOBS=N).
JOBS ?= 0
results:
	go run ./cmd/esteem-bench -jobs $(JOBS)

quick-results:
	go run ./cmd/esteem-bench -quick -jobs $(JOBS)

# Run the simulation service with a persistent result store (see
# README "Running as a service").
serve:
	go run ./cmd/esteem-serve -cache results/castore

# End-to-end service smoke test: submit/stream/fetch over HTTP, plus
# cmp-proven byte-identity of cached and restart-served results.
serve-smoke:
	./scripts/serve-smoke.sh

# End-to-end tracing smoke test: bench and serve both export
# Perfetto-loadable span traces; the serve tree is validated for
# well-formedness and >= 95% wall-clock coverage.
trace-smoke:
	./scripts/trace-smoke.sh

# Open-loop load generator against an already-running daemon (see
# README "Load testing"); prints the per-phase table and the JSON
# report to stdout. Point it elsewhere with SERVER=http://host:port.
SERVER ?= http://127.0.0.1:8344
load:
	go run ./cmd/esteem-load -server $(SERVER)

# Service-level benchmark lane (CI's load-smoke): boots a daemon,
# drives an ~11s ramp+burst schedule, gates the report against
# BENCH_serve.json, and proves the gate rejects a degraded copy.
load-smoke:
	./scripts/load-smoke.sh

# Re-baseline the service-level trajectory after an intentional
# service change: same run as load-smoke, but the report is appended
# to BENCH_serve.json instead of being gated.
load-record:
	./scripts/load-smoke.sh record

# Run a local three-node sweep cluster from the Procfile recipe:
# coordinator on :8344 plus two workers on free ports. Needs a
# Procfile runner (foreman/overmind/hivemind); without one, run the
# three commands from the Procfile in separate terminals.
cluster:
	@command -v foreman >/dev/null 2>&1 && exec foreman start; \
	command -v overmind >/dev/null 2>&1 && exec overmind start; \
	command -v hivemind >/dev/null 2>&1 && exec hivemind; \
	echo "no Procfile runner found; run the Procfile commands manually" >&2; exit 1

# End-to-end cluster smoke test: the same sweep on a standalone
# daemon and on a coordinator + 2 workers, with cmp-proven artifact
# byte-identity, exactly-once compute across workers, and cluster
# metrics checks. (Worker-kill recovery runs in `go test` as
# TestClusterWorkerKill.)
cluster-smoke:
	./scripts/cluster-smoke.sh
