// Coordinator-mode job execution: a job's units become cluster tasks
// leased to joined workers instead of jobs on a local sweep. The SSE
// event stream keeps its shape — one "task" event per unit lifecycle
// transition — so clients cannot tell (and need not care) whether a
// job ran locally or across the cluster.
package serve

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cluster"
)

// runClusterJob submits every unit of j to the coordinator's task
// table and waits for the leases to resolve. Units shared with other
// in-flight jobs (or already computed) coalesce onto existing table
// entries — the cluster-wide single-flight — so a unit simulates at
// most once no matter how many jobs want it.
func (s *Server) runClusterJob(ctx context.Context, j *Job) error {
	total := len(j.Units)
	handles := make([]*cluster.TaskHandle, total)
	for i, u := range j.Units {
		handles[i] = s.cfg.Cluster.Submit(cluster.Task{
			Key:      u.Key,
			Label:    u.Label,
			Config:   u.cfg,
			Workload: u.Workload,
		})
		j.log.publish("task", Event{Task: "started", Label: u.Label, Total: total})
	}
	finished := 0
	var errs []error
	for i, h := range handles {
		select {
		case <-h.Done():
		case <-ctx.Done():
			return fmt.Errorf("serve: cluster job interrupted after %d/%d units: %w",
				finished, total, ctx.Err())
		}
		finished++
		ev := Event{Label: j.Units[i].Label, Finished: finished, Total: total}
		if err := h.Err(); err != nil {
			errs = append(errs, err)
			ev.Task = "failed"
			ev.Error = err.Error()
		} else {
			ev.Task = "done"
		}
		j.log.publish("task", ev)
	}
	return errors.Join(errs...)
}
