// Command esteem-benchgate records and gates the repository's pinned
// hot-path benchmarks.
//
// It consumes `go test -bench -benchmem` output on stdin in two modes:
//
//	esteem-benchgate -record BENCH_sim.json   # append a dated entry
//	esteem-benchgate -check  BENCH_sim.json   # gate against the latest entry
//
// Record mode parses the tracked benchmarks (taking the best ns/op per
// name across -count repetitions) and appends one dated entry to the
// JSON trajectory file, which is checked in so the perf history rides
// with the code. Check mode compares the same parse against the most
// recent recorded entry and fails (exit 1) on a ns/op regression
// beyond the threshold (default 15%) or ANY allocs/op increase — time
// is noisy across hosts, allocation counts are exact, so the alloc
// gate is absolute.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// tracked is the pinned hot-path set: the benchmarks whose trajectory
// BENCH_sim.json records and whose regressions the CI lane rejects.
var tracked = []string{
	"BenchmarkCacheAccess",
	"BenchmarkCacheNew",
	"BenchmarkActiveFraction",
	"BenchmarkRefreshWindow",
	"BenchmarkSimRunShort",
	"BenchmarkClusterTask",
}

// trackedBy returns the tracked base name that benchmark result name
// belongs to ("" if untracked). Sub-benchmarks count toward their
// parent: BenchmarkRefreshWindow/rpv is tracked by
// BenchmarkRefreshWindow and recorded under its full name.
func trackedBy(name string) string {
	for _, t := range tracked {
		if name == t || strings.HasPrefix(name, t+"/") {
			return t
		}
	}
	return ""
}

// benchLine matches one result line of `go test -bench -benchmem`
// output, e.g.
//
//	BenchmarkCacheAccess-8  35108067  33.96 ns/op  0 B/op  0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+([0-9.]+) allocs/op)?`)

// point is one benchmark measurement.
type point struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
	Iters    int64   `json:"iters"`
}

// entry is one dated record of every tracked benchmark.
type entry struct {
	Date       string           `json:"date"`
	Go         string           `json:"go"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	CPUs       int              `json:"cpus"`
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]point `json:"benchmarks"`
}

// trajectory is the checked-in BENCH_sim.json layout.
type trajectory struct {
	Schema    int     `json:"schema"`
	Benchtime string  `json:"benchtime"`
	Entries   []entry `json:"entries"`
}

func main() {
	record := flag.String("record", "", "append a dated entry parsed from stdin to this trajectory file")
	check := flag.String("check", "", "gate stdin against the latest entry of this trajectory file")
	maxRegress := flag.Float64("max-regress", 0.15, "maximum allowed fractional ns/op regression in -check mode")
	note := flag.String("note", "", "free-form note stored with a -record entry")
	benchtime := flag.String("benchtime", "1s", "benchtime label stored in the trajectory file")
	flag.Parse()
	if (*record == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "esteem-benchgate: exactly one of -record or -check is required")
		os.Exit(2)
	}

	got, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	var missing []string
	for _, name := range tracked {
		found := false
		for n := range got {
			if trackedBy(n) == name {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		fatal(fmt.Errorf("stdin carried no results for %s (did the bench run fail?)", strings.Join(missing, ", ")))
	}

	if *record != "" {
		if err := doRecord(*record, *benchtime, *note, got); err != nil {
			fatal(err)
		}
		return
	}
	if err := doCheck(*check, *maxRegress, got); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "esteem-benchgate:", err)
	os.Exit(1)
}

// parseBench extracts the tracked benchmarks from go-test output,
// keeping the best (lowest) ns/op seen per name so -count repetitions
// gate on the least-noisy measurement.
func parseBench(f *os.File) (map[string]point, error) {
	got := make(map[string]point)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		if trackedBy(name) == "" {
			continue
		}
		p := point{}
		p.Iters, _ = strconv.ParseInt(m[2], 10, 64)
		p.NsOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			p.BOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			p.AllocsOp, _ = strconv.ParseFloat(m[5], 64)
		}
		if old, ok := got[name]; !ok || p.NsOp < old.NsOp {
			got[name] = p
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(got) == 0 {
		return nil, fmt.Errorf("no benchmark results on stdin")
	}
	return got, nil
}

// load reads a trajectory file; a missing file is an empty trajectory.
func load(path string) (trajectory, error) {
	var tr trajectory
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return trajectory{Schema: 1}, nil
		}
		return tr, err
	}
	if err := json.Unmarshal(b, &tr); err != nil {
		return tr, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

func doRecord(path, benchtime, note string, got map[string]point) error {
	tr, err := load(path)
	if err != nil {
		return err
	}
	tr.Schema = 1
	tr.Benchtime = benchtime
	tr.Entries = append(tr.Entries, entry{
		Date:       time.Now().UTC().Format("2006-01-02"),
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Note:       note,
		Benchmarks: got,
	})
	b, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	names := sortedNames(got)
	for _, name := range names {
		p := got[name]
		fmt.Printf("recorded %-28s %12.2f ns/op %8.0f allocs/op\n", name, p.NsOp, p.AllocsOp)
	}
	fmt.Printf("appended entry %d to %s\n", len(tr.Entries), path)
	return nil
}

func doCheck(path string, maxRegress float64, got map[string]point) error {
	tr, err := load(path)
	if err != nil {
		return err
	}
	if len(tr.Entries) == 0 {
		return fmt.Errorf("%s holds no baseline entries; run `make bench-record` first", path)
	}
	base := tr.Entries[len(tr.Entries)-1]
	failed := false
	for _, name := range sortedNames(got) {
		p := got[name]
		b, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("SKIP %-28s no baseline (new benchmark)\n", name)
			continue
		}
		delta := (p.NsOp - b.NsOp) / b.NsOp
		status := "ok  "
		switch {
		case p.AllocsOp > b.AllocsOp:
			status = "FAIL"
			failed = true
		case delta > maxRegress:
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-28s %12.2f ns/op (base %12.2f, %+6.1f%%)  %5.0f allocs/op (base %.0f)\n",
			status, name, p.NsOp, b.NsOp, delta*100, p.AllocsOp, b.AllocsOp)
	}
	if failed {
		return fmt.Errorf("regression vs %s entry of %s (ns/op > +%.0f%% or allocs/op increase)",
			path, base.Date, maxRegress*100)
	}
	fmt.Println("benchmark gate passed")
	return nil
}

func sortedNames(m map[string]point) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
