// The cluster-path allocation gate: executing a leased task with
// tracing disabled must cost no more allocations than the pre-
// observability worker did. Tracing is nil-span gated, so a worker
// without a Tracer (or a task without a traceparent) takes the same
// path this benchmark measures; BENCH_sim.json records the trajectory
// and the benchgate rejects any allocs/op increase.
package cluster

import (
	"context"
	"testing"

	"repro/internal/castore"
	"repro/internal/runner"
	"repro/internal/sim"
)

func BenchmarkClusterTask(b *testing.B) {
	store, err := castore.Open("", 64)
	if err != nil {
		b.Fatal(err)
	}
	// Unresolvable coordinator/self URLs: the worker never joins and
	// its shard view is self-only, so the benchmark exercises exactly
	// the local execute path (sweep + content-addressed store), no
	// network.
	w, err := NewWorker(WorkerConfig{
		Coordinator: "http://coordinator.invalid",
		Self:        "http://worker.invalid",
		Local:       store,
		SimWorkers:  1,
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig(1)
	cfg.WarmupInstr = 2000
	cfg.MeasureInstr = 10000
	cfg.IntervalCycles = 10000
	wl := []string{"gcc"}
	key, err := runner.CacheKey(cfg, wl)
	if err != nil {
		b.Fatal(err)
	}
	task := Task{Key: key, Label: "bench", Config: cfg, Workload: wl}
	ctx := context.Background()
	// One cold run computes and stores the artifact; the measured loop
	// is the steady-state cache-hit path a re-leased task takes.
	if err := w.execute(ctx, task); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.execute(ctx, task); err != nil {
			b.Fatal(err)
		}
	}
}
