// Command esteem-sim runs a single simulation: one workload (one
// benchmark per core) under one technique, printing the measured
// metrics and energy breakdown. It exposes the full configuration
// surface of the simulator as flags.
//
// Examples:
//
//	esteem-sim -bench gobmk
//	esteem-sim -bench gobmk -technique baseline
//	esteem-sim -cores 2 -bench gobmk,nekbone -retention 40
//	esteem-sim -bench h264ref -log-intervals
//	esteem-sim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliflags"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		bench        = flag.String("bench", "gobmk", "comma-separated benchmark names, one per core")
		techName     = flag.String("technique", "esteem", cliflags.TechniqueNames())
		shape        = cliflags.RegisterShape(flag.CommandLine)
		modules      = flag.Int("modules", 0, "reconfiguration modules (0 = paper default)")
		sampling     = flag.Int("rs", 64, "leader-set sampling ratio Rs")
		alpha        = flag.Float64("alpha", 0.97, "ESTEEM hit-coverage threshold")
		amin         = flag.Int("amin", 3, "ESTEEM minimum active ways")
		budget       = cliflags.RegisterBudget(flag.CommandLine, 2_000_000, 20_000_000, 10_000_000, 1)
		logIntervals = flag.Bool("log-intervals", false, "print per-interval reconfiguration log")
		list         = flag.Bool("list", false, "list benchmarks and dual-core mixes, then exit")
		version      = cliflags.VersionFlag(flag.CommandLine)
	)
	flag.Parse()

	if *version {
		fmt.Println(cliflags.PrintVersion("esteem-sim"))
		return
	}
	if *list {
		fmt.Println("single-core benchmarks:")
		for _, p := range trace.Profiles() {
			fmt.Printf("  %-12s (%s)\n", p.Name, p.Acronym)
		}
		fmt.Println("dual-core mixes:")
		for _, m := range trace.DualCoreWorkloads() {
			fmt.Printf("  %-6s %s + %s\n", trace.MixAcronym(m[0], m[1]), m[0], m[1])
		}
		return
	}

	tech, err := cliflags.ParseTechnique(*techName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := shape.Config(tech)
	if *modules > 0 {
		cfg.Modules = *modules
	}
	cfg.SamplingRatio = *sampling
	cfg.Esteem.Alpha = *alpha
	cfg.Esteem.AMin = *amin
	budget.Apply(&cfg)
	cfg.LogIntervals = *logIntervals

	benchmarks := strings.Split(*bench, ",")
	r, err := sim.Run(cfg, benchmarks)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	retLabel := fmt.Sprintf("%.0fus", cfg.RetentionMicros)
	if cfg.TemperatureC > 0 {
		retLabel = fmt.Sprintf("%.0fC", cfg.TemperatureC)
	}
	fmt.Printf("technique: %s   technology: %s   workload: %s   retention: %s   L2: %dMB %d-way, %d modules\n",
		r.Technique, r.Config.Technology, strings.Join(benchmarks, "+"), retLabel,
		cfg.L2SizeBytes>>20, cfg.L2Assoc, cfg.Modules)
	for _, c := range r.Cores {
		fmt.Printf("core %-12s instr=%d cycles=%d IPC=%.3f stalls(l2=%d refresh=%d mem=%d)\n",
			c.Benchmark, c.Instructions, c.Cycles, c.IPC,
			c.StallL2Hit, c.StallRefresh, c.StallMemory)
	}
	fmt.Printf("L2: %d hits, %d misses (%.2f MPKI), %d writebacks\n",
		r.L2.Hits, r.L2.Misses, r.MPKI(), r.L2.Writebacks)
	fmt.Printf("MM: %d reads, %d writebacks, %d queue-stall cycles\n",
		r.MM.Reads, r.MM.Writebacks, r.MM.QueueStallCycles)
	fmt.Printf("refreshes: %d (%.1f RPKI), refresh stalls: %d cycles\n",
		r.Refreshes, r.RPKI(), r.RefreshStallCycles)
	fmt.Printf("active ratio: %.1f%%   reconfiguration writebacks: %d\n",
		r.ActiveRatio*100, r.ReconfigWritebacks)
	e := r.Energy
	fmt.Printf("energy: total=%.6f J\n", e.Total())
	fmt.Printf("  L2   leak=%.6f dyn=%.6f refresh=%.6f  (L2 total %.6f)\n",
		e.L2Leak, e.L2Dyn, e.L2Refresh, e.L2())
	fmt.Printf("  MM   leak=%.6f dyn=%.6f              (MM total %.6f)\n",
		e.MMLeak, e.MMDyn, e.MM())
	fmt.Printf("  algo %.9f\n", e.Algo)
	if w := r.Wear; w != nil {
		fmt.Printf("wear: max=%d min=%d mean=%.1f writes=%d level-swaps=%d (endurance budget %d)\n",
			w.MaxWear, w.MinWear, w.MeanWear, w.TotalWrites, w.LevelSwaps, w.EnduranceWrites)
		fmt.Printf("  log2 wear histogram: %v\n", w.Histogram)
	}

	if *logIntervals {
		fmt.Println("\nintervals:")
		for i, iv := range r.Intervals {
			fmt.Printf("  %3d end=%d activ=%.1f%% ways=%v\n", i, iv.EndCycle, iv.ActiveRatio*100, iv.ActiveWays)
		}
	}
}
