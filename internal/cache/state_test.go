package cache

import (
	"testing"

	"repro/internal/ckpt"
	"repro/internal/xrand"
)

func scrambled(t *testing.T, seed uint64) *Cache {
	t.Helper()
	c := MustNew(Params{Name: "s", SizeBytes: 64 * 8 * 64, Assoc: 8, LineBytes: 64, Modules: 4, Banks: 4, SamplingRatio: 16})
	rng := xrand.New(seed)
	for i := 0; i < 5000; i++ {
		switch {
		case rng.Bool(0.05):
			c.SetActiveWays(rng.Intn(4), 1+rng.Intn(8))
		default:
			c.Access(Addr(rng.Uint64n(64*64*64)), rng.Bool(0.4))
		}
	}
	return c
}

// TestSnapshotMatchesSoA drives a cache through a mixed workload and
// checks SnapshotSet agrees with the public per-line accessors — the
// regression the SoA rewrite could have introduced by desyncing the
// snapshot path from the arrays.
func TestSnapshotMatchesSoA(t *testing.T) {
	c := scrambled(t, 77)
	for s := 0; s < c.NumSets(); s++ {
		snap := c.SnapshotSet(s)
		valid, dirty := c.SetBits(s)
		seen := uint64(0)
		for w := 0; w < c.Params().Assoc; w++ {
			lv, ld := c.LineState(s, w)
			if snap.Lines[w].Valid != lv || snap.Lines[w].Dirty != ld {
				t.Fatalf("set %d way %d: snapshot %+v, LineState (%v,%v)", s, w, snap.Lines[w], lv, ld)
			}
			bit := uint64(1) << uint(w)
			if lv != (valid&bit != 0) || ld != (dirty&bit != 0) {
				t.Fatalf("set %d way %d: SetBits disagrees with LineState", s, w)
			}
			seen |= 1 << uint(snap.Order[w])
		}
		if seen != uint64(1)<<uint(c.Params().Assoc)-1 {
			t.Fatalf("set %d: snapshot order %v not a permutation", s, snap.Order)
		}
	}
}

// TestCacheStateRoundTrip checkpoints a scrambled cache, restores it
// into a fresh one, and requires identical externally visible state
// and identical future behaviour.
func TestCacheStateRoundTrip(t *testing.T) {
	a := scrambled(t, 123)
	w := ckpt.NewWriter()
	a.AppendState(w)

	b := MustNew(a.Params())
	r := ckpt.NewReader(w.Bytes())
	if err := b.RestoreState(r); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("trailing state: %v", err)
	}

	if a.TotalCounters() != b.TotalCounters() || a.IntervalCounters() != b.IntervalCounters() {
		t.Fatal("counters differ after restore")
	}
	if a.ActiveFraction() != b.ActiveFraction() {
		t.Fatal("active fraction differs after restore")
	}
	for m := 0; m < a.NumModules(); m++ {
		if a.ActiveWays(m) != b.ActiveWays(m) {
			t.Fatalf("module %d active ways differ", m)
		}
		ha, hb := a.HitPositions(m), b.HitPositions(m)
		for i := range ha {
			if ha[i] != hb[i] {
				t.Fatalf("module %d hit histogram differs at %d", m, i)
			}
		}
	}
	for bk := 0; bk < a.Params().Banks; bk++ {
		if a.ValidByBank(bk) != b.ValidByBank(bk) {
			t.Fatalf("bank %d valid count differs", bk)
		}
	}
	for s := 0; s < a.NumSets(); s++ {
		sa, sb := a.SnapshotSet(s), b.SnapshotSet(s)
		for i := range sa.Order {
			if sa.Order[i] != sb.Order[i] || sa.Lines[i] != sb.Lines[i] {
				t.Fatalf("set %d state differs after restore", s)
			}
		}
	}

	// Identical futures, including evictions and reconfigurations.
	rng := xrand.New(999)
	for i := 0; i < 3000; i++ {
		if rng.Bool(0.03) {
			m, n := rng.Intn(4), 1+rng.Intn(8)
			ia, wa := a.SetActiveWays(m, n)
			ib, wb := b.SetActiveWays(m, n)
			if ia != ib || wa != wb {
				t.Fatalf("step %d: SetActiveWays diverged", i)
			}
			continue
		}
		addr := Addr(rng.Uint64n(64 * 64 * 64))
		wr := rng.Bool(0.4)
		ra, rb := a.Access(addr, wr), b.Access(addr, wr)
		if ra != rb {
			t.Fatalf("step %d: access diverged: %+v vs %+v", i, ra, rb)
		}
	}
}

// TestCacheRestoreRejectsCorrupt flips state bits that violate the
// representation invariants and checks restore refuses them.
func TestCacheRestoreRejectsCorrupt(t *testing.T) {
	a := scrambled(t, 5)
	w := ckpt.NewWriter()
	a.AppendState(w)
	good := w.Bytes()

	fresh := func() *Cache { return MustNew(a.Params()) }

	if err := fresh().RestoreState(ckpt.NewReader(good[:len(good)-4])); err == nil {
		t.Fatal("truncated state restored")
	}

	// Geometry mismatch: restore into a smaller cache.
	small := MustNew(Params{Name: "s", SizeBytes: 32 * 8 * 64, Assoc: 8, LineBytes: 64, Modules: 4, Banks: 4, SamplingRatio: 16})
	if err := small.RestoreState(ckpt.NewReader(good)); err == nil {
		t.Fatal("mismatched geometry restored")
	}

	// A dirty bit without its valid bit. The vd array starts right
	// after the tags slice: locate a set with room.
	corrupt := func(mutate func(c *Cache)) error {
		c := fresh()
		mutate(c)
		w := ckpt.NewWriter()
		c.AppendState(w)
		return fresh().RestoreState(ckpt.NewReader(w.Bytes()))
	}
	if err := corrupt(func(c *Cache) { c.vd[1] = 0xFF; c.vd[0] = 0 }); err == nil {
		t.Fatal("dirty-without-valid state restored")
	}
	if err := corrupt(func(c *Cache) { c.order[0] = 99 }); err == nil {
		t.Fatal("broken LRU permutation restored")
	}
	if err := corrupt(func(c *Cache) { c.vd[2] = 1 }); err == nil {
		// Valid line appeared without adjusting validByBank.
		t.Fatal("inconsistent bank counts restored")
	}
}
