package mem

import (
	"math"
	"testing"
	"testing/quick"
)

func params() Params {
	return Params{
		LatencyCycles:        220,
		BandwidthBytesPerSec: 10e9,
		FreqHz:               2e9,
		LineBytes:            64,
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{},
		{LatencyCycles: 220, BandwidthBytesPerSec: 0, FreqHz: 2e9, LineBytes: 64},
		{LatencyCycles: 220, BandwidthBytesPerSec: 10e9, FreqHz: 0, LineBytes: 64},
		{LatencyCycles: 220, BandwidthBytesPerSec: 10e9, FreqHz: 2e9, LineBytes: 0},
	}
	for i, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if _, err := New(params()); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
}

func TestTransferCycles(t *testing.T) {
	m := MustNew(params())
	// 64 B at 10 GB/s = 6.4 ns = 12.8 cycles at 2 GHz.
	if math.Abs(m.TransferCycles()-12.8) > 1e-9 {
		t.Fatalf("transfer cycles = %v, want 12.8", m.TransferCycles())
	}
}

func TestUncontendedRead(t *testing.T) {
	m := MustNew(params())
	if got := m.Read(1000); got != 220 {
		t.Fatalf("uncontended read latency = %d, want 220", got)
	}
	// A read far in the future is also uncontended.
	if got := m.Read(100000); got != 220 {
		t.Fatalf("later read latency = %d, want 220", got)
	}
}

func TestQueueContention(t *testing.T) {
	m := MustNew(params())
	m.Read(1000) // occupies [1000, 1012.8)
	got := m.Read(1000)
	if got != 220+12 { // queue delay truncates 12.8 → 12
		t.Fatalf("contended read latency = %d, want 232", got)
	}
	// Third back-to-back read queues behind two transfers.
	got = m.Read(1000)
	if got != 220+25 { // 25.6 → 25
		t.Fatalf("third read latency = %d, want 245", got)
	}
}

func TestBandwidthBound(t *testing.T) {
	// Issue 1000 reads at the same cycle: the last one's queue delay
	// must be ~999 * 12.8 cycles.
	m := MustNew(params())
	var last uint64
	for i := 0; i < 1000; i++ {
		last = m.Read(0)
	}
	backlog := 999 * 12.8
	want := uint64(backlog) + 220
	if last < want-2 || last > want+2 {
		t.Fatalf("1000th read latency = %d, want ~%d", last, want)
	}
}

func TestWritebackConsumesBandwidthWithoutStall(t *testing.T) {
	m := MustNew(params())
	m.Writeback(1000)
	// The following read queues behind the writeback transfer.
	if got := m.Read(1000); got <= 220 {
		t.Fatalf("read after writeback = %d, want > 220", got)
	}
	c := m.TotalCounters()
	if c.Writebacks != 1 || c.Reads != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.Accesses() != 2 {
		t.Fatalf("accesses = %d, want 2", c.Accesses())
	}
}

func TestIdleChannelRecovers(t *testing.T) {
	m := MustNew(params())
	for i := 0; i < 10; i++ {
		m.Read(0)
	}
	// Long after the backlog drains, reads are uncontended again.
	if got := m.Read(10000); got != 220 {
		t.Fatalf("read after idle = %d, want 220", got)
	}
}

func TestIntervalCounters(t *testing.T) {
	m := MustNew(params())
	m.Read(0)
	m.Writeback(0)
	m.ResetInterval()
	if ic := m.IntervalCounters(); ic != (Counters{}) {
		t.Fatalf("interval counters not reset: %+v", ic)
	}
	m.Read(100000)
	if ic := m.IntervalCounters(); ic.Reads != 1 {
		t.Fatalf("interval reads = %d", ic.Reads)
	}
	if tc := m.TotalCounters(); tc.Reads != 2 || tc.Writebacks != 1 {
		t.Fatalf("total counters = %+v", tc)
	}
}

func TestQueueStallAccounting(t *testing.T) {
	m := MustNew(params())
	m.Read(0)
	m.Read(0)
	c := m.TotalCounters()
	if c.QueueStallCycles != 12 {
		t.Fatalf("queue stall cycles = %d, want 12", c.QueueStallCycles)
	}
}

// Property: latency is always >= the fixed latency, and issuing reads
// at non-decreasing cycles keeps the channel causal (queue delay never
// exceeds the backlog created by prior transfers).
func TestReadLatencyBounds(t *testing.T) {
	err := quick.Check(func(gaps []uint8) bool {
		m := MustNew(params())
		var cycle uint64
		issued := 0
		for _, g := range gaps {
			cycle += uint64(g)
			lat := m.Read(cycle)
			issued++
			if lat < 220 {
				return false
			}
			// Upper bound: full backlog of all prior transfers.
			if lat > 220+uint64(float64(issued)*12.8)+1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRead(b *testing.B) {
	m := MustNew(params())
	for i := 0; i < b.N; i++ {
		m.Read(uint64(i) * 20)
	}
}

func TestWriteBufferUnboundedByDefault(t *testing.T) {
	m := MustNew(params())
	for i := 0; i < 1000; i++ {
		if st := m.Writeback(0); st != 0 {
			t.Fatalf("unbounded buffer stalled at writeback %d", i)
		}
	}
}

func TestWriteBufferBackPressure(t *testing.T) {
	p := params()
	p.WriteBufferEntries = 4
	m := MustNew(p)
	// Fill the buffer instantly: the first 4 writebacks are free.
	for i := 0; i < 4; i++ {
		if st := m.Writeback(0); st != 0 {
			t.Fatalf("writeback %d stalled with free slots", i)
		}
	}
	// The 5th must wait for the oldest transfer (finishes at 12.8).
	st := m.Writeback(0)
	if st == 0 {
		t.Fatal("full buffer did not stall")
	}
	if st < 12 || st > 14 {
		t.Fatalf("stall = %d, want ~13 (one transfer time)", st)
	}
	if got := m.TotalCounters().WriteBufferStallCycles; got != st {
		t.Fatalf("stall accounting = %d, want %d", got, st)
	}
}

func TestWriteBufferDrains(t *testing.T) {
	p := params()
	p.WriteBufferEntries = 2
	m := MustNew(p)
	m.Writeback(0)
	m.Writeback(0)
	// Far in the future both transfers completed: no stall.
	if st := m.Writeback(10_000); st != 0 {
		t.Fatalf("drained buffer stalled: %d", st)
	}
}

func TestWriteBufferValidation(t *testing.T) {
	p := params()
	p.WriteBufferEntries = -1
	if _, err := New(p); err == nil {
		t.Fatal("negative buffer size accepted")
	}
}

// Property: with a bounded buffer, in-flight writebacks never exceed
// the bound, and writeback counters always match issued calls.
func TestWriteBufferInvariant(t *testing.T) {
	err := quick.Check(func(gaps []uint8) bool {
		p := params()
		p.WriteBufferEntries = 3
		m := MustNew(p)
		var cycle uint64
		for _, g := range gaps {
			cycle += uint64(g)
			m.Writeback(cycle)
			if len(m.wbFinish) > 3 {
				return false
			}
		}
		return m.TotalCounters().Writebacks == uint64(len(gaps))
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}
