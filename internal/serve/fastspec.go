// The canonical load-testing job shape. Open-loop load tests and the
// CI load-smoke lane need requests that exercise the whole service
// path — admission, queueing, the runner, the content-addressed store
// — without each request costing tens of milliseconds of simulator
// time, so sustained RPS measures service overheads rather than
// simulator throughput.
package serve

import (
	"encoding/json"
	"fmt"
)

// FastJobSpec returns a minimal single-unit job: one single-core gcc
// workload under the esteem technique with run budgets roughly 1000x
// below the paper defaults (~a millisecond of simulator work). The
// seed folds into the unit's content address, so two requests with
// the same seed are cache-hot duplicates (single-flight dedup, store
// hits) and distinct seeds are cache-cold unique work — exactly the
// hot/cold traffic mix knob a load generator needs.
func FastJobSpec(seed uint64) JobSpec {
	cfg := fmt.Sprintf(`{"Cores":1,"WarmupInstr":5000,"MeasureInstr":20000,"IntervalCycles":10000,"Seed":%d}`, seed)
	return JobSpec{
		Config:     json.RawMessage(cfg),
		Benchmarks: [][]string{{"gcc"}},
		Techniques: []string{"esteem"},
	}
}
