#!/bin/sh
# load-smoke.sh [record] — service-level load benchmark, CI's
# load-smoke lane.
#
# Boots esteem-serve on a free port, drives it with esteem-load's
# open-loop ramp + burst schedule (~11s of traffic, 50% cache-hot
# mix), and then:
#
#   default: gates the fresh report against the latest BENCH_serve.json
#            entry with esteem-servegate, and proves the gate is live
#            by checking a synthetically degraded copy of the same
#            report, which MUST fail;
#   record:  appends the fresh report to BENCH_serve.json instead
#            (`make load-record`, run after intentional service
#            changes on a quiet machine).
#
# Artifacts (report.json, degraded.json) land in $LOAD_OUT (default: a
# temp dir) so CI can upload them.
set -eu
cd "$(dirname "$0")/.."
. ./scripts/lib.sh

MODE="${1:-check}"
WORK="$(mktemp -d)"
OUT="${LOAD_OUT:-$WORK}"
mkdir -p "$OUT"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== building binaries =="
go build -o "$WORK/" ./cmd/esteem-serve ./cmd/esteem-load ./cmd/esteem-servegate

echo "== booting daemon =="
"$WORK/esteem-serve" -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
    -cache "$WORK/store" -workers 4 -queue 128 -job-timeout 1m \
    -log-format json >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!
wait_file "$WORK/addr" 10 || { cat "$WORK/serve.log"; exit 1; }
SERVER="http://$(cat "$WORK/addr")"
wait_healthz "$SERVER" 15 || { cat "$WORK/serve.log"; exit 1; }
echo "== daemon up at $SERVER =="

echo "== open-loop ramp + burst (~11s, 50% hot mix) =="
"$WORK/esteem-load" -server "$SERVER" \
    -start-rps 20 -step-rps 20 -target-rps 60 -slot 3s \
    -burst-rps 120 -burst-dur 2s \
    -hot 0.5 -jitter 0.25 -seed 1 \
    -out "$OUT/report.json"

case "$MODE" in
record)
    "$WORK/esteem-servegate" -record BENCH_serve.json -in "$OUT/report.json"
    ;;
check)
    echo "== service-level gate =="
    "$WORK/esteem-servegate" -check BENCH_serve.json -in "$OUT/report.json"

    echo "== gate self-test (degraded copy must fail) =="
    "$WORK/esteem-servegate" -degrade 50 -in "$OUT/report.json" >"$OUT/degraded.json"
    if "$WORK/esteem-servegate" -check BENCH_serve.json -in "$OUT/degraded.json" >"$WORK/degraded.out" 2>&1; then
        echo "gate PASSED a 50x-degraded report; thresholds are dead" >&2
        cat "$WORK/degraded.out" >&2
        exit 1
    fi
    echo "degraded copy rejected, as it should be"
    ;;
*)
    echo "usage: $0 [record|check]" >&2
    exit 2
    ;;
esac

echo "== graceful drain =="
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "daemon exited non-zero on SIGTERM"; cat "$WORK/serve.log"; exit 1; }
SERVE_PID=""

echo "== load smoke OK =="
