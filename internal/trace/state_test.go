package trace

import (
	"testing"

	"repro/internal/ckpt"
)

// TestGeneratorStateRoundTrip checkpoints a generator mid-stream and
// verifies the restored generator reproduces the original's future
// exactly — including across working-set phase switches, which
// exercise the Zipf cache rebuild.
func TestGeneratorStateRoundTrip(t *testing.T) {
	for _, name := range []string{"gcc", "h264ref", "omnetpp", "libquantum", "mcf"} {
		p, ok := ProfileByName(name)
		if !ok {
			t.Fatalf("profile %s missing", name)
		}
		a := MustNewGenerator(p, 0xABCD)
		// Advance into the stream (past a phase switch for h264ref).
		warm := 450_000
		if p.PhaseLenRefs == 0 {
			warm = 50_000
		}
		for i := 0; i < warm; i++ {
			a.Next()
		}
		w := ckpt.NewWriter()
		a.AppendState(w)

		b := MustNewGenerator(p, 0xABCD)
		r := ckpt.NewReader(w.Bytes())
		if err := b.RestoreState(r); err != nil {
			t.Fatalf("%s: RestoreState: %v", name, err)
		}
		if err := r.Done(); err != nil {
			t.Fatalf("%s: trailing state: %v", name, err)
		}
		if b.Refs() != a.Refs() || b.Phase() != a.Phase() {
			t.Fatalf("%s: refs/phase mismatch after restore", name)
		}
		// The futures must agree, across further phase switches too.
		for i := 0; i < 500_000; i++ {
			ra, rb := a.Next(), b.Next()
			if ra != rb {
				t.Fatalf("%s: ref %d diverged: %+v vs %+v", name, i, ra, rb)
			}
		}
	}
}

// TestGeneratorRestoreRejectsCorrupt checks a few corruption modes
// fail loudly rather than restoring garbage.
func TestGeneratorRestoreRejectsCorrupt(t *testing.T) {
	p, _ := ProfileByName("gcc")
	a := MustNewGenerator(p, 1)
	for i := 0; i < 1000; i++ {
		a.Next()
	}
	w := ckpt.NewWriter()
	a.AppendState(w)
	good := w.Bytes()

	// Truncated.
	b := MustNewGenerator(p, 1)
	if err := b.RestoreState(ckpt.NewReader(good[:len(good)/2])); err == nil {
		t.Fatal("truncated state restored without error")
	}
	// Wrong section tag.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	b = MustNewGenerator(p, 1)
	if err := b.RestoreState(ckpt.NewReader(bad)); err == nil {
		t.Fatal("corrupt tag restored without error")
	}
	// Mismatched scan geometry (omnetpp state into gcc generator).
	om, _ := ProfileByName("omnetpp")
	o := MustNewGenerator(om, 1)
	for i := 0; i < 1000; i++ {
		o.Next()
	}
	wo := ckpt.NewWriter()
	o.AppendState(wo)
	b = MustNewGenerator(p, 1)
	if err := b.RestoreState(ckpt.NewReader(wo.Bytes())); err == nil {
		t.Fatal("cross-profile state restored without error")
	}
}
