package metrics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/energy"
	"repro/internal/sim"
)

// fakeResult builds a minimal sim.Result for metric computation.
func fakeResult(tech sim.Technique, totalJ float64, ipcs []float64, misses, refreshes, instrPerCore uint64, ar float64) *sim.Result {
	r := &sim.Result{
		Technique: tech,
		Energy: energy.Breakdown{
			L2Dyn: totalJ, // park the whole total in one component
		},
		ActiveRatio: ar,
	}
	r.Refreshes = refreshes
	r.L2.Misses = misses
	for i, ipc := range ipcs {
		r.Cores = append(r.Cores, sim.CoreResult{
			Benchmark:    "b",
			Instructions: instrPerCore,
			IPC:          ipc,
			Cycles:       uint64(float64(instrPerCore) / ipc),
		})
		_ = i
	}
	return r
}

func TestCompareSingleCore(t *testing.T) {
	base := fakeResult(sim.Baseline, 100, []float64{0.5}, 1000, 500000, 1_000_000, 1)
	tech := fakeResult(sim.Esteem, 75, []float64{0.55}, 1300, 200000, 1_000_000, 0.44)
	c := Compare("gcc", base, tech)
	if c.Workload != "gcc" || c.Technique != "esteem" {
		t.Fatalf("identity wrong: %+v", c)
	}
	if math.Abs(c.EnergySavingPct-25) > 1e-9 {
		t.Errorf("saving = %v, want 25", c.EnergySavingPct)
	}
	if math.Abs(c.WeightedSpeedup-1.1) > 1e-9 {
		t.Errorf("ws = %v, want 1.1", c.WeightedSpeedup)
	}
	// Single core: fair speedup equals weighted speedup.
	if math.Abs(c.FairSpeedup-c.WeightedSpeedup) > 1e-9 {
		t.Errorf("fs = %v != ws %v", c.FairSpeedup, c.WeightedSpeedup)
	}
	if math.Abs(c.RPKIDecrease-300) > 1e-9 { // 500 - 200 per KI
		t.Errorf("rpki dec = %v, want 300", c.RPKIDecrease)
	}
	if math.Abs(c.MPKIIncrease-0.3) > 1e-9 { // 1.3 - 1.0
		t.Errorf("mpki inc = %v, want 0.3", c.MPKIIncrease)
	}
	if math.Abs(c.ActiveRatioPct-44) > 1e-9 {
		t.Errorf("active = %v, want 44", c.ActiveRatioPct)
	}
}

func TestCompareDualCoreSpeedups(t *testing.T) {
	base := fakeResult(sim.Baseline, 100, []float64{0.5, 1.0}, 0, 0, 1_000_000, 1)
	tech := fakeResult(sim.RPV, 90, []float64{1.0, 1.0}, 0, 0, 1_000_000, 1)
	c := Compare("mix", base, tech)
	// Core 0 sped up 2x, core 1 unchanged: WS = 1.5, FS = harmonic
	// mean = 2/(1/2 + 1/1) = 4/3.
	if math.Abs(c.WeightedSpeedup-1.5) > 1e-9 {
		t.Errorf("ws = %v, want 1.5", c.WeightedSpeedup)
	}
	if math.Abs(c.FairSpeedup-4.0/3.0) > 1e-9 {
		t.Errorf("fs = %v, want 4/3", c.FairSpeedup)
	}
}

func TestComparePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched core counts accepted")
		}
	}()
	Compare("x",
		fakeResult(sim.Baseline, 1, []float64{1}, 0, 0, 1, 1),
		fakeResult(sim.Esteem, 1, []float64{1, 1}, 0, 0, 1, 1))
}

func TestSummarizeRules(t *testing.T) {
	cs := []Comparison{
		{Technique: "esteem", EnergySavingPct: 10, WeightedSpeedup: 1.0, FairSpeedup: 1.0, RPKIDecrease: 100, MPKIIncrease: 0.1, ActiveRatioPct: 40},
		{Technique: "esteem", EnergySavingPct: 30, WeightedSpeedup: 4.0, FairSpeedup: 4.0, RPKIDecrease: 300, MPKIIncrease: 0.3, ActiveRatioPct: 60},
	}
	s := Summarize(cs)
	if s.Workloads != 2 || s.Technique != "esteem" {
		t.Fatalf("identity: %+v", s)
	}
	// Arithmetic means.
	if s.EnergySavingPct != 20 || s.RPKIDecrease != 200 || math.Abs(s.MPKIIncrease-0.2) > 1e-12 || s.ActiveRatioPct != 50 {
		t.Errorf("arithmetic means wrong: %+v", s)
	}
	// Geometric mean of speedups: sqrt(1*4) = 2, NOT 2.5.
	if math.Abs(s.WeightedSpeedup-2) > 1e-9 {
		t.Errorf("ws gmean = %v, want 2", s.WeightedSpeedup)
	}
	if math.Abs(s.FairSpeedup-2) > 1e-9 {
		t.Errorf("fs gmean = %v, want 2", s.FairSpeedup)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Workloads != 0 {
		t.Fatal("empty summary not zero")
	}
}

func TestFormatTable(t *testing.T) {
	groups := map[string][]Comparison{
		"esteem": {
			{Workload: "bzip2", Technique: "esteem", EnergySavingPct: 12.3, WeightedSpeedup: 1.05, FairSpeedup: 1.05},
			{Workload: "astar", Technique: "esteem", EnergySavingPct: 8.1, WeightedSpeedup: 1.01, FairSpeedup: 1.01},
		},
	}
	out := FormatTable("fig3", groups)
	if !strings.Contains(out, "== fig3 ==") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "MEAN") {
		t.Error("summary row missing")
	}
	// Workloads sorted alphabetically.
	if strings.Index(out, "astar") > strings.Index(out, "bzip2") {
		t.Error("rows not sorted")
	}
}

func TestFormatCSV(t *testing.T) {
	cs := []Comparison{{Workload: "gcc", Technique: "rpv", EnergySavingPct: 1.5}}
	out := FormatCSV(cs)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "workload,technique,") {
		t.Error("header wrong")
	}
	if !strings.HasPrefix(lines[1], "gcc,rpv,1.5000") {
		t.Errorf("row wrong: %s", lines[1])
	}
}

func TestFormatTableEmpty(t *testing.T) {
	out := FormatTable("empty", nil)
	if !strings.Contains(out, "== empty ==") {
		t.Fatal("title missing for empty table")
	}
}

func TestFormatCSVEmpty(t *testing.T) {
	out := FormatCSV(nil)
	if !strings.HasPrefix(out, "workload,") || strings.Count(out, "\n") != 1 {
		t.Fatalf("empty csv wrong: %q", out)
	}
}
