package sim

import (
	"fmt"
	"testing"
)

// benchSim assembles a warmed simulator so BenchmarkSimStep times the
// steady-state per-reference path (core retire, L1, L2, refresh
// engine, memory) rather than construction or cold caches.
func benchSim(b *testing.B, cores int) *Simulator {
	b.Helper()
	cfg := DefaultConfig(cores)
	cfg.Technique = Esteem
	cfg.MeasureInstr = 1_000_000
	cfg.WarmupInstr = 100_000
	cfg.IntervalCycles = 250_000
	wl := []string{"gcc", "gobmk", "lbm", "mcf"}[:cores]
	s, err := New(cfg, wl)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200_000; i++ {
		s.step()
	}
	return s
}

// BenchmarkSimStep measures one simulator step (the innermost hot
// loop of every experiment) at 1, 2 and 4 cores, reporting allocs/op.
func BenchmarkSimStep(b *testing.B) {
	for _, cores := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			s := benchSim(b, cores)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.step()
			}
		})
	}
}

// BenchmarkSimRunShort measures a whole short run (construction +
// warmup + measurement), the unit of work a sweep schedules per job.
func BenchmarkSimRunShort(b *testing.B) {
	cfg := DefaultConfig(1)
	cfg.Technique = Esteem
	cfg.MeasureInstr = 200_000
	cfg.WarmupInstr = 50_000
	cfg.IntervalCycles = 100_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, []string{"gcc"}); err != nil {
			b.Fatal(err)
		}
	}
}
