// Command esteem-serve runs the simulation service: an HTTP daemon
// accepting sweep jobs (POST /v1/jobs), streaming their progress over
// server-sent events, and serving results as content-addressed run
// artifacts that are byte-identical whether computed fresh, replayed
// from cache, or served after a restart.
//
// Beyond the default standalone mode, -role turns the daemon into one
// node of a sweep cluster:
//
//	esteem-serve -role coordinator -addr 127.0.0.1:8344 -cache results/castore
//	esteem-serve -role worker -join http://127.0.0.1:8344 -addr 127.0.0.1:0
//
// A coordinator accepts the same job API but executes units as leases
// on joined workers, with artifacts sharded (replication factor
// -replicas) across the live member set by rendezvous hashing. A
// worker leases tasks, runs them on its local sweep, and serves its
// store shard to peers. Results are byte-identical to a standalone
// sweep of the same spec.
//
// SIGINT/SIGTERM drain gracefully: the listener closes, queued and
// in-flight jobs finish within -drain-timeout, and the rest are
// cancelled (a worker just stops leasing; its held leases re-queue).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/castore"
	"repro/internal/cliflags"
	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/tracez"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8344", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	cacheDir := flag.String("cache", "", "content-addressed result store directory (empty = in-memory only)")
	memEntries := flag.Int("mem-entries", 256, "in-memory cache entries (LRU over the disk layer)")
	workers := flag.Int("workers", 2, "concurrent jobs")
	simJobs := flag.Int("sim-jobs", 0, "parallel simulations per job (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 16, "admission queue depth (full queue rejects with 429)")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job execution timeout")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for queued and in-flight jobs")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "json", "structured log format: json or text")
	traceSample := flag.Float64("trace-sample", 1, "fraction of traces recorded (head-based; 1 = all)")
	traceRing := flag.Int("trace-ring", 4096, "completed spans retained for /v1/jobs/{id}/trace")
	role := flag.String("role", "", "cluster role: empty (standalone), coordinator, or worker")
	join := flag.String("join", "", "coordinator base URL to join (worker role)")
	advertise := flag.String("advertise", "", "base URL peers reach this node at (default http://<bound address>)")
	replicas := flag.Int("replicas", 2, "artifact replication factor across the cluster")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "coordinator: task lease lifetime without a heartbeat extension")
	heartbeat := flag.Duration("heartbeat", 3*time.Second, "coordinator: worker heartbeat cadence")
	executors := flag.Int("executors", 1, "worker: concurrent lease/execute loops")
	version := cliflags.VersionFlag(flag.CommandLine)
	flag.Parse()

	if *version {
		fmt.Println(cliflags.PrintVersion("esteem-serve"))
		return nil
	}

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	store, err := castore.Open(*cacheDir, *memEntries)
	if err != nil {
		return err
	}

	// Bind before constructing cluster state: the advertised URL
	// defaults to the bound address, which is only known after Listen
	// (relevant with port 0).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
	}
	self := *advertise
	if self == "" {
		self = "http://" + bound
	}
	// One tracer per process, shared by every layer that records spans:
	// the job API, the coordinator's span-injection endpoint, and (in
	// worker mode) the lease executor. Sharing it is what lets worker
	// spans merge into the same ring the /v1/jobs/{id}/trace export
	// drains.
	tracer := tracez.New(tracez.Config{SampleRatio: *traceSample, RingSize: *traceRing})

	switch *role {
	case "", "standalone":
		return runServe(ln, store, nil, serveParams{
			workers: *workers, simJobs: *simJobs, queue: *queue,
			jobTimeout: *jobTimeout, drainTimeout: *drainTimeout,
			tracer: tracer, node: self,
			cacheDir: *cacheDir, logger: logger,
		})
	case "coordinator":
		coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
			Self:           self,
			LeaseTTL:       *leaseTTL,
			HeartbeatEvery: *heartbeat,
			Replicas:       *replicas,
			Tracer:         tracer,
			Logger:         logger,
		})
		if err != nil {
			return err
		}
		defer coord.Close()
		shard := castore.NewSharded(store, self, coord.MemberURLs, *replicas, nil)
		return runServe(ln, shard, coord, serveParams{
			workers: *workers, simJobs: *simJobs, queue: *queue,
			jobTimeout: *jobTimeout, drainTimeout: *drainTimeout,
			tracer: tracer, node: self,
			cacheDir: *cacheDir, logger: logger,
		})
	case "worker":
		if *join == "" {
			return fmt.Errorf("esteem-serve: -role worker requires -join <coordinator url>")
		}
		return runWorker(ln, store, cluster.WorkerConfig{
			Coordinator: strings.TrimRight(*join, "/"),
			Self:        self,
			Local:       store,
			Replicas:    *replicas,
			Executors:   *executors,
			SimWorkers:  *simJobs,
			Tracer:      tracer,
			Logger:      logger,
		}, *drainTimeout)
	default:
		return fmt.Errorf("esteem-serve: unknown -role %q (want coordinator or worker)", *role)
	}
}

// serveParams carries the standalone/coordinator server knobs from
// flag parsing to assembly.
type serveParams struct {
	workers, simJobs, queue  int
	jobTimeout, drainTimeout time.Duration
	tracer                   *tracez.Tracer
	node                     string
	cacheDir                 string
	logger                   *slog.Logger
}

// runServe runs the job API (standalone, or coordinator-mode when
// coord is non-nil) until a signal drains it.
func runServe(ln net.Listener, store castore.Backend, coord *cluster.Coordinator, p serveParams) error {
	srv, err := serve.New(serve.Config{
		Store:      store,
		Cluster:    coord,
		Workers:    p.workers,
		SimWorkers: p.simJobs,
		QueueDepth: p.queue,
		JobTimeout: p.jobTimeout,
		Tracer:     p.tracer,
		Node:       p.node,
		Logger:     p.logger,
	})
	if err != nil {
		return err
	}
	mode := "standalone"
	if coord != nil {
		mode = "coordinator"
	}
	fmt.Fprintf(os.Stderr, "esteem-serve (%s) listening on http://%s\n", mode, ln.Addr())
	if p.cacheDir != "" {
		fmt.Fprintf(os.Stderr, "esteem-serve result store: %s\n", p.cacheDir)
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "esteem-serve draining...")

	shutdownCtx, cancel := context.WithTimeout(context.Background(), p.drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "esteem-serve: http shutdown: %v\n", err)
	}
	if err := srv.Drain(shutdownCtx); err != nil {
		return fmt.Errorf("esteem-serve: drain cut short: %w", err)
	}
	fmt.Fprintf(os.Stderr, "esteem-serve: store: %s\n", store.Stats().Summary())
	return nil
}

// runWorker runs a cluster worker node until a signal stops it.
func runWorker(ln net.Listener, store *castore.Store, cfg cluster.WorkerConfig, drainTimeout time.Duration) error {
	w, err := cluster.NewWorker(cfg)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	w.Register(mux)
	fmt.Fprintf(os.Stderr, "esteem-serve (worker) listening on http://%s, joining %s\n",
		ln.Addr(), cfg.Coordinator)

	httpSrv := &http.Server{Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runDone := make(chan error, 1)
	go func() { runDone <- w.Run(ctx) }()

	select {
	case err := <-errCh:
		return err
	case err := <-runDone:
		// Run only returns early on a join that ctx cancelled — or a
		// signal, handled below.
		if err != nil && ctx.Err() == nil {
			return err
		}
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "esteem-serve: worker draining...")

	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "esteem-serve: http shutdown: %v\n", err)
	}
	select {
	case <-runDone:
	case <-shutdownCtx.Done():
	}
	fmt.Fprintf(os.Stderr, "esteem-serve: store: %s\n", store.Stats().Summary())
	return nil
}

// buildLogger assembles the daemon's structured logger (stderr, so
// log lines never mix with protocol output).
func buildLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want json or text)", format)
	}
}
