// Package cliflags centralises the configuration surface shared by
// the repository's command-line binaries: the technique-name registry,
// the instruction-budget and cache-shape flag groups (so esteem-sim,
// esteem-bench and the service binaries agree on names, defaults and
// help text), and build-information reporting for -version flags and
// the service's /v1/version endpoint.
package cliflags

import (
	"flag"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/tech"
)

// techniqueByName maps CLI names to techniques. One registry for
// every frontend: a name accepted by esteem-sim is accepted by the
// service's job API and by esteem-client.
var techniqueByName = map[string]sim.Technique{
	"baseline":       sim.Baseline,
	"rpv":            sim.RPV,
	"rpd":            sim.RPD,
	"periodic-valid": sim.PeriodicValid,
	"esteem":         sim.Esteem,
	"esteem-allline": sim.EsteemAllLineRefresh,
	"no-refresh":     sim.NoRefresh,
	"smart-refresh":  sim.SmartRefresh,
	"ecc-extended":   sim.ECCExtended,
}

// ParseTechnique resolves a CLI technique name. The error lists every
// accepted name.
func ParseTechnique(name string) (sim.Technique, error) {
	t, ok := techniqueByName[name]
	if !ok {
		return 0, fmt.Errorf("unknown technique %q (want %s)", name, TechniqueNames())
	}
	return t, nil
}

// TechniqueNames returns the accepted technique names joined with "|"
// in sorted order, for flag help text and error messages.
func TechniqueNames() string {
	names := make([]string, 0, len(techniqueByName))
	for n := range techniqueByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, "|")
}

// ParseTechnology resolves a CLI technology name against the
// internal/tech registry (the empty string means eDRAM). The error
// lists every accepted name.
func ParseTechnology(name string) (string, error) {
	t, err := tech.New(name)
	if err != nil {
		return "", err
	}
	return t.Name(), nil
}

// TechnologyNames returns the accepted technology names joined with
// "|" in sorted order, for flag help text and error messages.
func TechnologyNames() string { return tech.Names() }

// Budget groups the instruction-budget flags every simulation
// frontend exposes: interval length, measured and warmup instruction
// counts, and the experiment seed.
type Budget struct {
	Interval *uint64
	Instr    *uint64
	Warmup   *uint64
	Seed     *uint64
}

// RegisterBudget registers the budget flag group on fs with the given
// defaults and returns the bound values.
func RegisterBudget(fs *flag.FlagSet, interval, instr, warmup, seed uint64) *Budget {
	return &Budget{
		Interval: fs.Uint64("interval", interval, "interval length in cycles"),
		Instr:    fs.Uint64("instr", instr, "measured instructions per core"),
		Warmup:   fs.Uint64("warmup", warmup, "fast-forward instructions per core"),
		Seed:     fs.Uint64("seed", seed, "workload seed"),
	}
}

// Apply copies the parsed budget into cfg.
func (b *Budget) Apply(cfg *sim.Config) {
	cfg.IntervalCycles = *b.Interval
	cfg.MeasureInstr = *b.Instr
	cfg.WarmupInstr = *b.Warmup
	cfg.Seed = *b.Seed
}

// Shape groups the cache-shape and retention flags: core count, L2
// geometry, and the paper's retention/temperature/process-variation
// knobs.
type Shape struct {
	Cores     *int
	L2MB      *int
	L2Assoc   *int
	Retention *float64
	TempC     *float64
	Sigma     *float64
	Tech      *string
}

// RegisterShape registers the shape flag group on fs and returns the
// bound values.
func RegisterShape(fs *flag.FlagSet) *Shape {
	return &Shape{
		Cores:     fs.Int("cores", 1, "number of cores"),
		L2MB:      fs.Int("l2mb", 0, "L2 size in MB (0 = paper default for core count)"),
		L2Assoc:   fs.Int("l2assoc", 16, "L2 associativity"),
		Retention: fs.Float64("retention", 50, "eDRAM retention period in microseconds"),
		TempC:     fs.Float64("temp", 0, "operating temperature C (overrides -retention via the paper's model)"),
		Sigma:     fs.Float64("sigma", 0, "log-normal retention process-variation sigma (derates the period)"),
		Tech:      fs.String("tech", "edram", "LLC storage technology ("+tech.Names()+")"),
	}
}

// Config builds the default configuration for the parsed shape under
// the given technique.
func (s *Shape) Config(tech sim.Technique) sim.Config {
	cfg := sim.DefaultConfig(*s.Cores)
	cfg.Technique = tech
	if *s.L2MB > 0 {
		cfg.L2SizeBytes = *s.L2MB << 20
	}
	cfg.L2Assoc = *s.L2Assoc
	cfg.RetentionMicros = *s.Retention
	cfg.TemperatureC = *s.TempC
	cfg.RetentionSigma = *s.Sigma
	cfg.Technology = *s.Tech
	return cfg
}

// BuildInfo is the build provenance reported by -version flags and
// the service's /v1/version endpoint.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	BuildTime string `json:"build_time,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

// ReadBuildInfo extracts the binary's build provenance from
// runtime/debug.ReadBuildInfo. It degrades gracefully: binaries built
// outside a module or VCS checkout report "devel" with no revision.
func ReadBuildInfo() BuildInfo {
	info := BuildInfo{Version: "devel", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		info.Version = v
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.BuildTime = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// String renders the build info as a one-line -version output.
func (b BuildInfo) String() string {
	out := b.Version
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		out += " " + rev
		if b.Modified {
			out += "+dirty"
		}
	}
	return out + " (" + b.GoVersion + ")"
}

// VersionFlag registers -version on fs and returns the bound value;
// frontends print PrintVersion and exit when it is set.
func VersionFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print build information and exit")
}

// PrintVersion formats the standard -version line for a named binary.
func PrintVersion(name string) string {
	return name + " " + ReadBuildInfo().String()
}
