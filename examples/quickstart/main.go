// Quickstart: simulate one benchmark under the baseline eDRAM cache
// (periodic all-line refresh) and under ESTEEM, then print the
// paper's headline metrics — energy saving, speedup, refresh
// reduction and cache active ratio.
//
// The two runs are scheduled on a Sweep: the ESTEEM run is ordered
// after the baseline it is normalised against, and both execute on
// the worker pool (in parallel when more than one CPU is available)
// with results identical to back-to-back sequential runs.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	esteem "repro"
)

func main() {
	// The paper's single-core system: 4 MB 16-way eDRAM L2 in 8
	// modules, 50 µs retention, 2 GHz. Run lengths are scaled down
	// here so the example finishes in a couple of seconds.
	cfg := esteem.DefaultConfig(1)
	cfg.MeasureInstr = 8_000_000
	cfg.WarmupInstr = 2_000_000

	s := esteem.NewSweep(0) // 0 = one worker per CPU
	baseJob := s.Baseline(cfg, []string{"gobmk"})
	cfg.Technique = esteem.Esteem
	cmpJob := s.Compare("gobmk", baseJob, cfg, []string{"gobmk"})
	if err := s.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	base, tech := baseJob.Result(), cmpJob.Result()
	c := cmpJob.Comparison()
	fmt.Println("gobmk, 1-core, 4MB eDRAM L2, 50us retention")
	fmt.Printf("  baseline: IPC %.3f, %.1f refreshes/KI, energy %.4f J\n",
		base.Cores[0].IPC, base.RPKI(), base.Energy.Total())
	fmt.Printf("  ESTEEM:   IPC %.3f, %.1f refreshes/KI, energy %.4f J\n",
		tech.Cores[0].IPC, tech.RPKI(), tech.Energy.Total())
	fmt.Printf("  -> energy saving %.1f%%, speedup %.3fx, RPKI -%.0f, MPKI +%.2f, active ratio %.0f%%\n",
		c.EnergySavingPct, c.WeightedSpeedup, c.RPKIDecrease, c.MPKIIncrease, c.ActiveRatioPct)

	// Where the energy went (Equations 2-8 of the paper).
	fmt.Println("\nbaseline energy breakdown:")
	b := base.Energy
	fmt.Printf("  L2 refresh %.4f J (%.0f%% of L2)\n", b.L2Refresh, 100*b.L2Refresh/b.L2())
	fmt.Printf("  L2 leakage %.4f J, L2 dynamic %.4f J, MM %.4f J\n", b.L2Leak, b.L2Dyn, b.MM())
}
