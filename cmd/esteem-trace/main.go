// Command esteem-trace inspects the synthetic workloads: it generates
// a reference stream for one benchmark and reports its statistical
// structure — pattern mix, footprint, write fraction, memory-op
// density, and an LRU stack-distance profile at cache-line
// granularity (the quantity ESTEEM's Algorithm 1 consumes).
//
// Examples:
//
//	esteem-trace -bench omnetpp -refs 2000000
//	esteem-trace -bench h264ref -dump 20
//	esteem-trace -bench gcc -record gcc.trace -refs 5000000
//	esteem-trace -replay gcc.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/trace"
)

// stackProfiler computes LRU stack distances over line addresses with
// a simple move-to-front list capped at maxDepth (distances beyond
// report as cold/deep).
type stackProfiler struct {
	lines    []uint64
	maxDepth int
	counts   []uint64 // index = distance; len = maxDepth
	cold     uint64
	deep     uint64
}

func newStackProfiler(maxDepth int) *stackProfiler {
	return &stackProfiler{maxDepth: maxDepth, counts: make([]uint64, maxDepth)}
}

// touch records an access to the line containing addr and returns its
// stack distance (-1 if cold or deeper than maxDepth).
func (sp *stackProfiler) touch(addr uint64) int {
	line := addr / 64
	for i, l := range sp.lines {
		if l == line {
			copy(sp.lines[1:i+1], sp.lines[:i])
			sp.lines[0] = line
			sp.counts[i]++
			return i
		}
	}
	if len(sp.lines) < sp.maxDepth {
		sp.lines = append(sp.lines, 0)
		copy(sp.lines[1:], sp.lines[:len(sp.lines)-1])
		sp.lines[0] = line
		sp.cold++
		return -1
	}
	// Deeper than tracked: treat as an eviction + refill at MRU.
	copy(sp.lines[1:], sp.lines[:len(sp.lines)-1])
	sp.lines[0] = line
	sp.deep++
	return -1
}

func main() {
	bench := flag.String("bench", "gcc", "benchmark name")
	refs := flag.Int("refs", 1_000_000, "references to generate")
	seed := flag.Uint64("seed", 1, "stream seed")
	dump := flag.Int("dump", 0, "dump the first N references and exit")
	depth := flag.Int("depth", 64, "stack-distance profile depth (lines)")
	record := flag.String("record", "", "record -refs references to this trace file and exit")
	replay := flag.String("replay", "", "summarize a recorded trace file and exit")
	version := cliflags.VersionFlag(flag.CommandLine)
	flag.Parse()

	if *version {
		fmt.Println(cliflags.PrintVersion("esteem-trace"))
		return
	}
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		rp, err := trace.ReadReplayer(*replay, f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		writes, instr := 0, uint64(0)
		lines := map[uint64]struct{}{}
		for i := 0; i < rp.Len(); i++ {
			r := rp.Next()
			if r.Write {
				writes++
			}
			instr += uint64(r.Gap) + 1
			lines[r.Addr/64] = struct{}{}
		}
		fmt.Printf("trace: %s\nrefs: %d   instructions: %d   mlp: %.2f\n", *replay, rp.Len(), instr, rp.MLPFactor())
		fmt.Printf("write fraction: %.3f   footprint: %.1f KB\n",
			float64(writes)/float64(rp.Len()), float64(len(lines))*64/1024)
		return
	}

	prof, ok := trace.ProfileByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (see esteem-sim -list)\n", *bench)
		os.Exit(2)
	}
	g, err := trace.NewGenerator(prof, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *record != "" {
		refs := trace.Record(g, *refs)
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteTrace(f, refs, prof.EffectiveMLP()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d references of %s to %s\n", len(refs), prof.Name, *record)
		return
	}

	if *dump > 0 {
		names := map[trace.Kind]string{
			trace.KindHot: "hot", trace.KindStream: "stream",
			trace.KindScan: "scan", trace.KindPointer: "pointer",
			trace.KindLocal: "local",
		}
		for i := 0; i < *dump; i++ {
			r := g.Next()
			fmt.Printf("%3d addr=%#014x write=%-5v gap=%-3d kind=%s\n", i, r.Addr, r.Write, r.Gap, names[r.Kind])
		}
		return
	}

	kindNames := map[trace.Kind]string{
		trace.KindHot: "hot", trace.KindStream: "stream",
		trace.KindScan: "scan", trace.KindPointer: "pointer",
		trace.KindLocal: "local",
	}
	kinds := map[trace.Kind]int{}
	writes := 0
	instr := uint64(0)
	lines := map[uint64]struct{}{}
	sp := newStackProfiler(*depth)
	for i := 0; i < *refs; i++ {
		r := g.Next()
		kinds[r.Kind]++
		if r.Write {
			writes++
		}
		instr += uint64(r.Gap) + 1
		lines[r.Addr/64] = struct{}{}
		sp.touch(r.Addr)
	}

	fmt.Printf("benchmark: %s (%s)   refs: %d   instructions: %d\n", prof.Name, prof.Acronym, *refs, instr)
	fmt.Printf("memory-op density: %.3f refs/instr (profile MemOpFrac %.2f)\n",
		float64(*refs)/float64(instr), prof.MemOpFrac)
	fmt.Printf("write fraction: %.3f (profile %.2f)\n", float64(writes)/float64(*refs), prof.WriteFrac)
	fmt.Printf("distinct lines touched: %d (%.1f KB footprint)\n", len(lines), float64(len(lines))*64/1024)
	fmt.Println("pattern mix:")
	for _, k := range []trace.Kind{trace.KindLocal, trace.KindHot, trace.KindStream, trace.KindScan, trace.KindPointer} {
		if kinds[k] > 0 {
			fmt.Printf("  %-8s %6.2f%%\n", kindNames[k], 100*float64(kinds[k])/float64(*refs))
		}
	}
	fmt.Printf("stack-distance profile (line granularity, depth %d):\n", *depth)
	var shown uint64
	for i := 0; i < *depth; i += 8 {
		var group uint64
		for j := i; j < i+8 && j < *depth; j++ {
			group += sp.counts[j]
		}
		shown += group
		fmt.Printf("  d[%2d..%2d] %9d\n", i, min(i+7, *depth-1), group)
	}
	fmt.Printf("  cold      %9d\n  deeper    %9d\n", sp.cold, sp.deep)
	_ = shown
}
