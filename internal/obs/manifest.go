package obs

import (
	"fmt"
	"runtime"
	"time"
)

// Manifest identifies one simulation run (or a whole sweep) for
// reproducibility: what ran, with which seed and configuration, on
// which toolchain, and how long it took. Timing fields are the only
// non-deterministic content; golden comparisons must exclude them
// (see Deterministic).
type Manifest struct {
	// Label is the run's display name (technique/workload/cores for
	// simulation jobs, the command name for sweeps).
	Label string `json:"label"`
	// Technique, Technology and Workload describe a simulation run;
	// empty for sweep-level manifests.
	Technique  string   `json:"technique,omitempty"`
	Technology string   `json:"technology,omitempty"`
	Workload   []string `json:"workload,omitempty"`
	Cores      int      `json:"cores,omitempty"`
	// Seed is the effective (derived) seed of the run.
	Seed uint64 `json:"seed"`
	// ConfigHash fingerprints the full configuration; two runs with
	// equal hashes ran identical configs.
	ConfigHash string `json:"config_hash"`

	// Toolchain provenance.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	// Timing (non-deterministic; zeroed by Deterministic).
	StartedAt  string  `json:"started_at,omitempty"`
	WallMillis float64 `json:"wall_ms,omitempty"`

	// Run accounting.
	SimulatedInstructions uint64 `json:"simulated_instructions,omitempty"`
	Intervals             int    `json:"intervals,omitempty"`
}

// NewManifest builds a manifest stamped with the current toolchain
// and start time.
func NewManifest(label string, seed uint64, config any) Manifest {
	return Manifest{
		Label:      label,
		Seed:       seed,
		ConfigHash: ConfigHash(config),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		StartedAt:  time.Now().UTC().Format(time.RFC3339),
	}
}

// Deterministic returns a copy with the non-deterministic timing
// fields zeroed, for byte-comparable artifacts.
func (m Manifest) Deterministic() Manifest {
	m.StartedAt = ""
	m.WallMillis = 0
	return m
}

// ConfigHash fingerprints an arbitrary configuration value as 16 hex
// digits of FNV-1a over its %+v rendering. It is stable for a given
// struct layout and value; changing any field (or the layout) changes
// the hash, which is exactly the sensitivity a run manifest wants.
func ConfigHash(v any) string {
	s := fmt.Sprintf("%+v", v)
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return fmt.Sprintf("%016x", h)
}
