// Sweep: the simulation-aware layer over the generic Pool. It
// schedules sim.Run jobs, deduplicates baseline runs behind a typed
// key (replacing the fmt.Sprintf string keys of the old sequential
// harness, which were both allocation-heavy and collision-prone), and
// wires the paper's baseline-vs-technique comparisons as DAG edges:
// a technique job depends on its baseline job and computes its
// metrics.Comparison as soon as both results exist.
package runner

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/castore"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tech"
	"repro/internal/trace"
)

// Key identifies one simulation run for deduplication and seed
// derivation: the configuration fields that influence a baseline
// run's behaviour, plus the workload. Two runs with equal keys are
// interchangeable. It is a comparable struct, so it can key a map
// directly — unlike the stringly-typed fmt.Sprintf keys it replaces,
// it cannot collide across fields and costs no allocation per lookup.
type Key struct {
	Cores                   int
	L1SizeBytes, L1Assoc    int
	L2SizeBytes, L2Assoc    int
	LineBytes, Banks        int
	L2LatencyCycles         uint64
	RetentionMicros         float64
	TemperatureC            float64
	RetentionSigma          float64
	MemLatencyCycles        uint64
	MemBandwidthBytesPerSec float64
	WriteBufferEntries      int
	FreqHz                  float64
	IntervalCycles          uint64
	WarmupInstr             uint64
	MeasureInstr            uint64
	Seed                    uint64
	// Workload is the "+"-joined benchmark list (one name per core).
	Workload string
}

// BaselineKey derives the dedup key for the baseline run matching
// cfg on the given workload. Technique-specific parameters (module
// count, sampling ratio, ESTEEM/Refrint/Smart-Refresh knobs) are
// deliberately excluded: they do not change baseline behaviour, so
// sensitivity rows that sweep them share one baseline run each.
func BaselineKey(cfg sim.Config, workload []string) Key {
	return Key{
		Cores:                   cfg.Cores,
		L1SizeBytes:             cfg.L1SizeBytes,
		L1Assoc:                 cfg.L1Assoc,
		L2SizeBytes:             cfg.L2SizeBytes,
		L2Assoc:                 cfg.L2Assoc,
		LineBytes:               cfg.LineBytes,
		Banks:                   cfg.Banks,
		L2LatencyCycles:         cfg.L2LatencyCycles,
		RetentionMicros:         cfg.RetentionMicros,
		TemperatureC:            cfg.TemperatureC,
		RetentionSigma:          cfg.RetentionSigma,
		MemLatencyCycles:        cfg.MemLatencyCycles,
		MemBandwidthBytesPerSec: cfg.MemBandwidthBytesPerSec,
		WriteBufferEntries:      cfg.WriteBufferEntries,
		FreqHz:                  cfg.FreqHz,
		IntervalCycles:          cfg.IntervalCycles,
		WarmupInstr:             cfg.WarmupInstr,
		MeasureInstr:            cfg.MeasureInstr,
		Seed:                    cfg.Seed,
		Workload:                strings.Join(workload, "+"),
	}
}

// DeriveSeed mixes a base experiment seed with string parts (e.g. the
// workload names) into a per-job seed using splitmix64's finalizer
// over an FNV-1a hash of the parts. The derivation depends only on
// its inputs — never on scheduling order — so a parallel sweep seeds
// every job exactly as a sequential one does. Jobs that must share a
// reference stream (a technique run and the baseline it is normalised
// against) derive from identical parts and therefore agree.
func DeriveSeed(base uint64, parts ...string) uint64 {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= 1099511628211
		}
		h ^= 0x2545F4914F6CDD1D // separator so ("ab","c") != ("a","bc")
		h *= 1099511628211
	}
	z := base + h*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// SimJob is one scheduled simulation. Its Result is valid once the
// owning sweep's Run has returned without error (or once Err reports
// nil for this job).
type SimJob struct {
	task *Task
	cfg  sim.Config
	wl   []string
	res  *sim.Result
}

// Config returns the job's (seed-derived) configuration.
func (j *SimJob) Config() sim.Config { return j.cfg }

// Workload returns the job's benchmark list.
func (j *SimJob) Workload() []string { return j.wl }

// Result returns the simulation result; nil until the job has run.
func (j *SimJob) Result() *sim.Result { return j.res }

// Err returns the job's terminal error (see Task.Err).
func (j *SimJob) Err() error { return j.task.Err() }

// CompareJob runs a technique simulation and, once its baseline
// dependency has completed, computes the paper's comparison metrics.
type CompareJob struct {
	task     *Task
	base     *SimJob
	tech     *SimJob
	workload string
	cmp      metrics.Comparison
}

// Comparison returns the baseline-normalised metrics; valid once the
// sweep has run.
func (j *CompareJob) Comparison() metrics.Comparison { return j.cmp }

// Result returns the technique run's raw result.
func (j *CompareJob) Result() *sim.Result { return j.tech.res }

// Baseline returns the baseline job the comparison normalises
// against.
func (j *CompareJob) Baseline() *SimJob { return j.base }

// Err returns the job's terminal error.
func (j *CompareJob) Err() error { return j.task.Err() }

// Sweep schedules simulation jobs on a pool and deduplicates baseline
// runs. A sweep may span several experiments: baselines completed by
// an earlier Run satisfy later experiments without re-running.
type Sweep struct {
	pool      *Pool
	baselines map[Key]*SimJob
	// sink, when set, receives one RunArtifact per simulation job (see
	// telemetry.go). Keyed by task id, so the artifact set is identical
	// for any worker count.
	sink obs.Sink
	// cache, when set, is the content-addressed result store consulted
	// before (and populated after) every workload-driven simulation
	// (see cache.go) — node-local or cluster-sharded.
	cache castore.Backend
	// ckptEvery is the prefix-checkpoint stride: 0 = default (every 4th
	// measured boundary), negative = disabled (see checkpoint.go).
	ckptEvery int

	// Cumulative throughput accounting across every Run (satisfies
	// "how many configurations per hour" bookkeeping; see Stats).
	sims  atomic.Uint64
	instr atomic.Uint64
}

// NewSweep builds a sweep over a fresh pool with the given worker
// count (<= 0 selects GOMAXPROCS).
func NewSweep(workers int, opts ...Option) *Sweep {
	return &Sweep{
		pool:      NewPool(workers, opts...),
		baselines: make(map[Key]*SimJob),
	}
}

// Pool returns the underlying pool (e.g. to schedule non-simulation
// tasks into the same run).
func (s *Sweep) Pool() *Pool { return s.pool }

// Workers returns the sweep's worker count.
func (s *Sweep) Workers() int { return s.pool.Workers() }

// deriveCfg applies per-job seed derivation: the effective seed mixes
// the configured base seed with the workload, so every job's stream
// is fixed at submission time and decorrelated across workloads,
// while a technique run and its baseline (same workload, same base
// seed) still replay identical references.
func deriveCfg(cfg sim.Config, wl []string) sim.Config {
	cfg.Seed = DeriveSeed(cfg.Seed, wl...)
	// Canonicalize the technology name so "" and "edram" — the same
	// simulation — derive the same content address.
	cfg.Technology = tech.CanonicalName(cfg.Technology)
	return cfg
}

// jobLabel names a job for progress and error output.
func jobLabel(cfg sim.Config, wl []string) string {
	return fmt.Sprintf("%s/%s/%dc", cfg.Technique, strings.Join(wl, "+"), cfg.Cores)
}

// Sim schedules one simulation of cfg over the named benchmarks,
// after the given dependencies (if any). The job's seed is derived
// from (cfg.Seed, workload) at submission time.
func (s *Sweep) Sim(cfg sim.Config, wl []string, deps ...*Task) *SimJob {
	dcfg := deriveCfg(cfg, wl)
	j := &SimJob{cfg: dcfg, wl: append([]string(nil), wl...)}
	j.task = s.pool.Task(jobLabel(dcfg, wl), func(ctx context.Context) error {
		r, err := s.runSim(ctx, j.task.id, j.task.label, j.cfg, j.wl, nil)
		if err != nil {
			return err
		}
		j.res = r
		return nil
	}, deps...)
	return j
}

// SimSources schedules one simulation over explicit workload sources.
// No seed derivation is applied (the sources carry their own state),
// and source-driven jobs are never deduplicated.
func (s *Sweep) SimSources(label string, cfg sim.Config, sources []trace.Source, deps ...*Task) *SimJob {
	j := &SimJob{cfg: cfg}
	j.task = s.pool.Task(label, func(ctx context.Context) error {
		r, err := s.runSim(ctx, j.task.id, label, j.cfg, nil, sources)
		if err != nil {
			return err
		}
		j.res = r
		return nil
	}, deps...)
	return j
}

// Baseline schedules (or reuses) the baseline run matching cfg on the
// given workload. Requests with equal BaselineKeys share one job —
// and one simulation — regardless of which experiment asks first.
func (s *Sweep) Baseline(cfg sim.Config, wl []string) *SimJob {
	bcfg := cfg
	bcfg.Technique = sim.Baseline
	bcfg.LogIntervals = false
	key := BaselineKey(bcfg, wl)
	if j, ok := s.baselines[key]; ok {
		return j
	}
	j := s.Sim(bcfg, wl)
	s.baselines[key] = j
	return j
}

// Compare schedules a technique run of cfg against base: the
// technique simulation executes in parallel with everything else,
// and the comparison itself is computed once the baseline dependency
// has completed (the DAG edge that replaces the old harness's
// sequential baseline-first ordering). workload names the comparison
// row (benchmark name or mix acronym).
func (s *Sweep) Compare(workload string, base *SimJob, cfg sim.Config, wl []string) *CompareJob {
	c := &CompareJob{base: base, workload: workload}
	dcfg := deriveCfg(cfg, wl)
	tech := &SimJob{cfg: dcfg, wl: append([]string(nil), wl...)}
	c.tech = tech
	// One task runs the technique simulation and then normalises
	// against the (already complete, by the DAG edge) baseline.
	c.task = s.pool.Task(jobLabel(dcfg, wl), func(ctx context.Context) error {
		r, err := s.runSim(ctx, c.task.id, c.task.label, tech.cfg, tech.wl, nil)
		if err != nil {
			return err
		}
		tech.res = r
		if base.res == nil {
			return fmt.Errorf("runner: baseline result missing for %q", workload)
		}
		c.cmp = metrics.Compare(workload, base.res, r)
		return nil
	}, base.task)
	tech.task = c.task
	return c
}

// Run executes every scheduled, not-yet-completed job.
func (s *Sweep) Run(ctx context.Context) error {
	return s.pool.Run(ctx)
}

// Stats reports cumulative throughput: simulations actually executed
// (content-addressed cache hits excluded — see the store's own Stats
// for those) and total simulated (measured) instructions across all
// Runs so far.
func (s *Sweep) Stats() (sims, instructions uint64) {
	return s.sims.Load(), s.instr.Load()
}
