package obs

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"runtime/pprof"
	"runtime/trace"
)

// ServePprof starts an HTTP server exposing net/http/pprof's
// /debug/pprof endpoints on addr (e.g. "localhost:6060") in a
// background goroutine. It returns once the listener is requested;
// listen errors are reported through errf (which may be nil).
func ServePprof(addr string, errf func(error)) {
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil && errf != nil {
			errf(fmt.Errorf("obs: pprof server: %w", err))
		}
	}()
}

// StartCPUProfile begins a CPU profile into path and returns a stop
// function that ends the profile and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// StartTrace begins a runtime/trace capture into path and returns a
// stop function that ends the trace and closes the file.
func StartTrace(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := trace.Start(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() error {
		trace.Stop()
		return f.Close()
	}, nil
}
