// Command esteem-client talks to an esteem-serve daemon: it submits
// sweep jobs, polls or streams their progress, and fetches results as
// run artifacts.
//
// Workloads are written as "a+b,c": "+" joins the benchmarks of one
// multi-core workload, "," separates workloads. Every workload of a
// job must match the configured core count.
//
// Examples:
//
//	esteem-client submit -bench gcc -technique esteem -wait
//	esteem-client submit -bench gobmk+nekbone,gcc+gamess -technique baseline,esteem
//	esteem-client status  <job-id>
//	esteem-client watch   <job-id>
//	esteem-client result  <job-id> -o artifact.json
//	esteem-client artifact <key>
//	esteem-client version
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: esteem-client <submit|status|watch|result|artifact|version> [flags]")
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "submit":
		return cmdSubmit(rest)
	case "status":
		return cmdGetJSON(rest, "status", func(id string) string { return "/v1/jobs/" + id })
	case "watch":
		return cmdWatch(rest)
	case "result":
		return cmdFetch(rest, "result", func(id string) string { return "/v1/jobs/" + id + "/result" })
	case "artifact":
		return cmdFetch(rest, "artifact", func(key string) string { return "/v1/artifacts/" + key })
	case "version":
		return cmdVersion(rest)
	case "-version", "--version":
		fmt.Println(cliflags.PrintVersion("esteem-client"))
		return nil
	default:
		return usage()
	}
}

// serverFlag registers the shared -server flag.
func serverFlag(fs *flag.FlagSet) *string {
	return fs.String("server", "http://127.0.0.1:8344", "esteem-serve base URL")
}

// get issues a GET and fails on non-2xx statuses.
func get(server, path string) (*http.Response, error) {
	resp, err := http.Get(strings.TrimRight(server, "/") + path)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		defer resp.Body.Close()
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return resp, nil
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	server := serverFlag(fs)
	bench := fs.String("bench", "gcc", `workloads: "+" joins cores, "," separates workloads (e.g. gobmk+nekbone,gcc+gamess)`)
	techs := fs.String("technique", "esteem", "comma-separated technique names: "+cliflags.TechniqueNames())
	retention := fs.Float64("retention", 50, "eDRAM retention period in microseconds")
	budget := cliflags.RegisterBudget(fs, 2_000_000, 20_000_000, 10_000_000, 1)
	overrides := fs.String("config", "", "extra sim.Config overrides as inline JSON (applied last)")
	wait := fs.Bool("wait", false, "poll until the job finishes; exit non-zero on failure")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var benchmarks [][]string
	cores := 0
	for _, wl := range strings.Split(*bench, ",") {
		names := strings.Split(strings.TrimSpace(wl), "+")
		if cores == 0 {
			cores = len(names)
		} else if len(names) != cores {
			return fmt.Errorf("workload %q has %d benchmarks, first workload has %d", wl, len(names), cores)
		}
		benchmarks = append(benchmarks, names)
	}
	var techniques []string
	for _, t := range strings.Split(*techs, ",") {
		techniques = append(techniques, strings.TrimSpace(t))
	}

	config := map[string]any{
		"Cores":           cores,
		"RetentionMicros": *retention,
		"IntervalCycles":  *budget.Interval,
		"MeasureInstr":    *budget.Instr,
		"WarmupInstr":     *budget.Warmup,
		"Seed":            *budget.Seed,
	}
	if *overrides != "" {
		var extra map[string]any
		if err := json.Unmarshal([]byte(*overrides), &extra); err != nil {
			return fmt.Errorf("-config: %v", err)
		}
		for k, v := range extra {
			config[k] = v
		}
	}
	rawCfg, err := json.Marshal(config)
	if err != nil {
		return err
	}
	body, err := json.Marshal(serve.JobSpec{
		Config:     rawCfg,
		Benchmarks: benchmarks,
		Techniques: techniques,
	})
	if err != nil {
		return err
	}

	resp, err := http.Post(strings.TrimRight(*server, "/")+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(payload)))
	}
	var view struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(payload, &view); err != nil {
		return err
	}
	if !*wait {
		fmt.Println(strings.TrimSpace(string(payload)))
		return nil
	}

	fmt.Fprintf(os.Stderr, "job %s submitted, waiting...\n", view.ID)
	for {
		resp, err := get(*server, "/v1/jobs/"+view.ID)
		if err != nil {
			return err
		}
		payload, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		var v struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(payload, &v); err != nil {
			return err
		}
		switch serve.State(v.State) {
		case serve.StateDone:
			fmt.Println(strings.TrimSpace(string(payload)))
			return nil
		case serve.StateFailed, serve.StateCanceled:
			return fmt.Errorf("job %s %s: %s", view.ID, v.State, v.Error)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func cmdGetJSON(args []string, name string, path func(string) string) error {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	server := serverFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: esteem-client %s [-server URL] <job-id>", name)
	}
	resp, err := get(*server, path(fs.Arg(0)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	server := serverFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: esteem-client watch [-server URL] <job-id>")
	}
	resp, err := get(*server, "/v1/jobs/"+fs.Arg(0)+"/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			fmt.Println(strings.TrimPrefix(line, "data: "))
		}
	}
	return sc.Err()
}

func cmdFetch(args []string, name string, path func(string) string) error {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	server := serverFlag(fs)
	out := fs.String("o", "", "write the response to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: esteem-client %s [-server URL] [-o FILE] <id>", name)
	}
	resp, err := get(*server, path(fs.Arg(0)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

func cmdVersion(args []string) error {
	fs := flag.NewFlagSet("version", flag.ExitOnError)
	server := serverFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Println(cliflags.PrintVersion("esteem-client"))
	resp, err := get(*server, "/v1/version")
	if err != nil {
		fmt.Fprintf(os.Stderr, "server unreachable: %v\n", err)
		return nil
	}
	defer resp.Body.Close()
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}
