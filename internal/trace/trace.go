// Package trace generates deterministic synthetic memory-reference
// streams standing in for the paper's workloads: the 29 SPEC CPU2006
// benchmarks (ref inputs) and 5 HPC proxy apps (amg2013, comd,
// lulesh, nekbone, xsbench), plus the 17 dual-core multiprogrammed
// mixes of Table 1.
//
// The ESTEEM technique is sensitive only to the statistical structure
// of the L2 access stream, so each benchmark is modelled as a mixture
// of three access patterns, parameterised per benchmark:
//
//   - hot-region reuse: Zipf-distributed line selection over a
//     working set, with short spatial bursts of word accesses inside
//     the chosen line. This gives the monotonically decaying
//     LRU-stack hit profile of LRU-friendly applications.
//   - sequential streaming at word granularity over a bounded region
//     (StreamKB): large regions never hit the L2 (libquantum, milc,
//     lbm, ...); small regions wrap and stay resident.
//   - interleaved cyclic scans over several loop-sized regions:
//     hits concentrate at deep, distinct LRU positions, the non-LRU
//     behaviour the paper calls out for omnetpp and xalancbmk (it
//     trips Algorithm 1's anomaly detector).
//
// plus optional working-set phases (h264ref's behaviour in Fig. 2).
// Each profile also carries an MLP factor — how many outstanding
// misses the (abstracted, out-of-order) core overlaps — used by the
// simulator to scale the exposed miss latency; pointer-chasing codes
// (mcf, omnetpp, astar) get MLP 1, array/streaming codes 4–8.
//
// Streams are exactly reproducible: the generator derives all
// randomness from a splitmix64 seed computed from the benchmark name
// and an experiment seed.
package trace

import (
	"fmt"

	"repro/internal/xrand"
)

// Kind classifies which pattern produced a reference.
type Kind uint8

const (
	// KindHot is a working-set reuse access.
	KindHot Kind = iota
	// KindStream is a sequential streaming access.
	KindStream
	// KindScan is a cyclic-scan access.
	KindScan
	// KindPointer is a dependent random access over a huge region
	// (pointer chasing): essentially no reuse at LLC scale.
	KindPointer
	// KindLocal is stack/locals traffic absorbed by the L1.
	KindLocal
)

// Ref is one memory reference of the instruction stream.
type Ref struct {
	// Addr is the byte address accessed.
	Addr uint64
	// Write marks stores.
	Write bool
	// Gap is the number of non-memory instructions executed before
	// this reference.
	Gap int
	// Kind tells which pattern generated the reference.
	Kind Kind
}

// Profile describes a synthetic benchmark.
type Profile struct {
	// Name is the benchmark name (paper Table 1) and Acronym its
	// two-letter code.
	Name    string
	Acronym string
	// MemOpFrac is the fraction of instructions that access memory;
	// instruction gaps between references are geometric with this
	// success probability.
	MemOpFrac float64
	// WriteFrac is the fraction of references that are stores.
	WriteFrac float64
	// HotKB is the hot working-set size. When PhaseHotKB is set, it
	// is the phase-0 size and subsequent phases cycle PhaseHotKB.
	HotKB int
	// ZipfS is the Zipf exponent of hot-region line selection
	// (higher = stronger locality).
	ZipfS float64
	// LocalFrac is the portion of hot-share references that go to a
	// small per-benchmark local region (stack, locals, hot code data)
	// that the L1 absorbs entirely. 0 means the 0.85 default; set a
	// negative value for none. LocalKB sizes the region (0 = 8 KB).
	// This keeps L1 hit rates realistic (~95%), which in turn keeps
	// L2 accesses per kilo-instruction in the range real SPEC
	// workloads show.
	LocalFrac float64
	LocalKB   int
	// BurstRefs is the mean number of consecutive word accesses made
	// inside a chosen hot line (spatial locality); 0 means 1.
	BurstRefs float64
	// StreamFrac is the fraction of references that stream
	// sequentially (8-byte stride) through the StreamKB region.
	StreamFrac float64
	// StreamKB bounds the streaming region; 0 means the 256 MB
	// default (effectively unbounded for any simulated cache).
	StreamKB int
	// ScanFrac is the fraction of references devoted to interleaved
	// cyclic scans over ScanLoopKB-sized loops (non-LRU generator).
	ScanFrac float64
	// ScanLoopKB lists the loop sizes; ignored when ScanFrac is 0.
	ScanLoopKB []int
	// PointerFrac is the fraction of references doing uniform random
	// (pointer-chasing) accesses over the PointerKB region — honest
	// capacity misses with no deep-position hits (mcf, soplex,
	// xsbench style).
	PointerFrac float64
	// PointerKB sizes the pointer region; required when PointerFrac
	// is positive.
	PointerKB int
	// MLP is the number of outstanding misses the core overlaps for
	// this benchmark (>= 1); the simulator divides the fixed memory
	// latency by it. 0 means 1.
	MLP float64
	// PhaseLenRefs is the number of references per working-set phase
	// (0 = single phase). PhaseHotKB lists the per-phase hot sizes,
	// cycled.
	PhaseLenRefs int
	PhaseHotKB   []int
}

// EffectiveMLP returns the MLP factor, defaulting to 1.
func (p Profile) EffectiveMLP() float64 {
	if p.MLP < 1 {
		return 1
	}
	return p.MLP
}

// EffectiveLocalFrac resolves the LocalFrac default (0.85; negative
// means none).
func (p Profile) EffectiveLocalFrac() float64 {
	switch {
	case p.LocalFrac < 0:
		return 0
	case p.LocalFrac == 0:
		return 0.85
	default:
		return p.LocalFrac
	}
}

// EffectiveLocalKB resolves the LocalKB default (8 KB).
func (p Profile) EffectiveLocalKB() int {
	if p.LocalKB <= 0 {
		return 8
	}
	return p.LocalKB
}

// Validate checks profile consistency.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("trace: profile with empty name")
	}
	if p.MemOpFrac <= 0 || p.MemOpFrac > 1 {
		return fmt.Errorf("trace %s: MemOpFrac %v out of (0,1]", p.Name, p.MemOpFrac)
	}
	if p.WriteFrac < 0 || p.WriteFrac > 1 {
		return fmt.Errorf("trace %s: WriteFrac %v out of [0,1]", p.Name, p.WriteFrac)
	}
	if p.HotKB <= 0 {
		return fmt.Errorf("trace %s: HotKB must be positive", p.Name)
	}
	if p.BurstRefs < 0 {
		return fmt.Errorf("trace %s: negative BurstRefs", p.Name)
	}
	if p.StreamFrac < 0 || p.ScanFrac < 0 || p.PointerFrac < 0 ||
		p.StreamFrac+p.ScanFrac+p.PointerFrac > 1 {
		return fmt.Errorf("trace %s: pattern fractions invalid", p.Name)
	}
	if p.PointerFrac > 0 && p.PointerKB <= 0 {
		return fmt.Errorf("trace %s: PointerFrac > 0 needs PointerKB", p.Name)
	}
	if p.StreamKB < 0 {
		return fmt.Errorf("trace %s: negative StreamKB", p.Name)
	}
	if p.ScanFrac > 0 && len(p.ScanLoopKB) == 0 {
		return fmt.Errorf("trace %s: ScanFrac > 0 needs ScanLoopKB", p.Name)
	}
	for _, kb := range p.ScanLoopKB {
		if kb <= 0 {
			return fmt.Errorf("trace %s: non-positive scan loop size", p.Name)
		}
	}
	if p.MLP < 0 {
		return fmt.Errorf("trace %s: negative MLP", p.Name)
	}
	if p.EffectiveLocalFrac() > 1 {
		return fmt.Errorf("trace %s: LocalFrac %v > 1", p.Name, p.LocalFrac)
	}
	if p.PhaseLenRefs < 0 {
		return fmt.Errorf("trace %s: negative phase length", p.Name)
	}
	if p.PhaseLenRefs > 0 && len(p.PhaseHotKB) == 0 {
		return fmt.Errorf("trace %s: phases need PhaseHotKB", p.Name)
	}
	for _, kb := range p.PhaseHotKB {
		if kb <= 0 {
			return fmt.Errorf("trace %s: non-positive phase hot size", p.Name)
		}
	}
	return nil
}

// Address-space layout: the three pattern regions are disjoint so the
// mixture components do not alias.
const (
	hotBase     = 0x0000_0000_0000
	localBase   = 0x0020_0000_0000
	scanBase    = 0x0040_0000_0000
	streamBase  = 0x0080_0000_0000
	pointerBase = 0x00C0_0000_0000
	// defaultStreamBytes is used when StreamKB is 0: far larger than
	// any simulated cache, so streamed lines never survive to reuse.
	defaultStreamBytes = 256 << 20
	lineBytes          = 64
	// strideBytes is the word-granularity stride of streaming and
	// scanning accesses (8 consecutive references touch one line).
	strideBytes = 8
)

// Generator produces the reference stream of one benchmark.
type Generator struct {
	p    Profile
	rng  *xrand.RNG
	zipf *xrand.Zipf
	// zipfKey is the hot-size key g.zipf was selected with (needed to
	// re-identify the active sampler after a checkpoint restore).
	zipfKey int
	// zipfCache reuses Zipf samplers across repeated phase sizes.
	zipfCache map[int]*xrand.Zipf
	// geoGap and geoBurst are shared table samplers producing the
	// same draws as rng.Geometric without a math.Log per reference
	// (gap sampling dominated simulator profiles).
	geoGap   *xrand.GeoSampler
	geoBurst *xrand.GeoSampler

	streamPos   uint64
	streamBytes uint64
	scanPos     []uint64
	scanSize    []uint64
	scanNext    int

	// Hot-burst state: remaining word refs inside burstLine.
	burstLeft int
	burstLine uint64
	burstOff  uint64

	refs     uint64
	phaseIdx int
}

// hashName gives a stable 64-bit hash of a benchmark name (FNV-1a).
func hashName(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// NewGenerator builds a generator for p. Streams for the same
// (profile, seed) pair are identical.
func NewGenerator(p Profile, seed uint64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		p:           p,
		rng:         xrand.New(seed ^ hashName(p.Name)),
		zipfCache:   make(map[int]*xrand.Zipf),
		streamBytes: defaultStreamBytes,
	}
	if p.StreamKB > 0 {
		g.streamBytes = uint64(p.StreamKB) * 1024
	}
	g.geoGap = xrand.CachedGeo(p.MemOpFrac)
	if p.BurstRefs > 1 {
		g.geoBurst = xrand.CachedGeo(1 / p.BurstRefs)
	}
	g.zipf = g.zipfFor(p.HotKB)
	g.zipfKey = p.HotKB
	for _, kb := range p.ScanLoopKB {
		g.scanPos = append(g.scanPos, 0)
		g.scanSize = append(g.scanSize, uint64(kb)*1024)
	}
	return g, nil
}

// MustNewGenerator is NewGenerator but panics on error.
func MustNewGenerator(p Profile, seed uint64) *Generator {
	g, err := NewGenerator(p, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// zipfFor returns a sampler over the lines of a hotKB-sized region.
func (g *Generator) zipfFor(hotKB int) *xrand.Zipf {
	if z, ok := g.zipfCache[hotKB]; ok {
		return z
	}
	n := hotKB * 1024 / lineBytes
	if n < 1 {
		n = 1
	}
	// Zipf gets a split substream so adding cache entries does not
	// perturb the main stream's draw sequence.
	z := xrand.NewZipf(xrand.New(g.rng.Uint64()), n, g.p.ZipfS)
	g.zipfCache[hotKB] = z
	return z
}

// Name returns the benchmark name.
func (g *Generator) Name() string { return g.p.Name }

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// Refs returns how many references have been generated.
func (g *Generator) Refs() uint64 { return g.refs }

// Phase returns the current phase index (always 0 for single-phase
// profiles).
func (g *Generator) Phase() int { return g.phaseIdx }

// Next produces the next memory reference.
func (g *Generator) Next() Ref {
	// Phase switching.
	if g.p.PhaseLenRefs > 0 && g.refs > 0 && g.refs%uint64(g.p.PhaseLenRefs) == 0 {
		g.phaseIdx = int(g.refs/uint64(g.p.PhaseLenRefs)) % len(g.p.PhaseHotKB)
		g.zipfKey = g.p.PhaseHotKB[g.phaseIdx]
		g.zipf = g.zipfFor(g.zipfKey)
	}
	g.refs++

	r := Ref{
		Gap:   g.geoGap.Next(g.rng),
		Write: g.rng.Bool(g.p.WriteFrac),
	}

	// A hot burst in progress continues regardless of the pattern
	// mixture (it models word accesses to one cached line).
	if g.burstLeft > 0 {
		g.burstLeft--
		g.burstOff = (g.burstOff + strideBytes) % lineBytes
		r.Addr = g.burstLine + g.burstOff
		r.Kind = KindHot
		return r
	}

	u := g.rng.Float64()
	switch {
	case u < g.p.StreamFrac:
		r.Addr = streamBase + g.streamPos
		r.Kind = KindStream
		g.streamPos = (g.streamPos + strideBytes) % g.streamBytes
	case u < g.p.StreamFrac+g.p.ScanFrac:
		// Round-robin across the scan loops; each loop advances
		// word-by-word through its own region.
		i := g.scanNext
		g.scanNext = (g.scanNext + 1) % len(g.scanPos)
		base := scanBase + uint64(i)<<32 // disjoint region per loop
		r.Addr = base + g.scanPos[i]
		r.Kind = KindScan
		g.scanPos[i] = (g.scanPos[i] + strideBytes) % g.scanSize[i]
	case u < g.p.StreamFrac+g.p.ScanFrac+g.p.PointerFrac:
		lines := uint64(g.p.PointerKB) * 1024 / lineBytes
		r.Addr = pointerBase + g.rng.Uint64n(lines)*lineBytes
		r.Kind = KindPointer
	default:
		// Hot share: a LocalFrac portion goes to the small local
		// region (pure L1 traffic); the rest draws a Zipf hot line
		// and possibly starts a spatial burst in it.
		if lf := g.p.EffectiveLocalFrac(); lf > 0 && g.rng.Float64() < lf {
			words := uint64(g.p.EffectiveLocalKB()) * 1024 / strideBytes
			r.Addr = localBase + g.rng.Uint64n(words)*strideBytes
			r.Kind = KindLocal
			return r
		}
		g.burstLine = hotBase + uint64(g.zipf.Next())*lineBytes
		g.burstOff = 0
		r.Addr = g.burstLine
		r.Kind = KindHot
		if g.geoBurst != nil {
			// Geometric burst length with the configured mean.
			g.burstLeft = g.geoBurst.Next(g.rng)
		}
	}
	return r
}

// profiles is the full benchmark table. Hot sizes, stream mixes,
// bursts and MLP are tuned so each benchmark's qualitative behaviour
// matches its characterisation in the paper (see package comment and
// DESIGN.md): gamess/povray/hmmer fit in (or near) L1 and leave the
// L2 idle; libquantum/milc/lbm stream with near-100% L2 miss rates;
// mcf/soplex/xsbench have working sets far beyond the LLC (slight
// ESTEEM loss); omnetpp/xalancbmk are non-LRU; h264ref changes
// working set across phases; gobmk/nekbone are intense but compact
// (the paper's biggest winners as the GkNe mix).
var profiles = []Profile{
	{Name: "astar", Acronym: "As", MemOpFrac: 0.35, WriteFrac: 0.10, HotKB: 1024, ZipfS: 1.05, BurstRefs: 2, PointerFrac: 0.015, PointerKB: 16 << 10, MLP: 1.5},
	{Name: "bwaves", Acronym: "Bw", MemOpFrac: 0.45, WriteFrac: 0.30, HotKB: 512, ZipfS: 1.00, BurstRefs: 6, StreamFrac: 0.30, MLP: 6},
	{Name: "bzip2", Acronym: "Bz", MemOpFrac: 0.35, WriteFrac: 0.25, HotKB: 1024, ZipfS: 1.00, BurstRefs: 4, StreamFrac: 0.08, StreamKB: 32 << 10, MLP: 3},
	{Name: "cactusADM", Acronym: "Cd", MemOpFrac: 0.40, WriteFrac: 0.30, HotKB: 1024, ZipfS: 1.00, BurstRefs: 6, StreamFrac: 0.12, MLP: 5},
	{Name: "calculix", Acronym: "Ca", MemOpFrac: 0.35, WriteFrac: 0.20, HotKB: 256, ZipfS: 1.00, BurstRefs: 4, StreamFrac: 0.03, StreamKB: 4 << 10, MLP: 4},
	{Name: "dealII", Acronym: "Dl", MemOpFrac: 0.40, WriteFrac: 0.20, HotKB: 512, ZipfS: 1.00, BurstRefs: 4, StreamFrac: 0.03, StreamKB: 8 << 10, MLP: 4},
	{Name: "gamess", Acronym: "Ga", MemOpFrac: 0.30, WriteFrac: 0.15, HotKB: 20, ZipfS: 0.80, BurstRefs: 4, MLP: 4},
	{Name: "gcc", Acronym: "Gc", MemOpFrac: 0.35, WriteFrac: 0.25, HotKB: 768, ZipfS: 1.05, BurstRefs: 3, StreamFrac: 0.05, StreamKB: 32 << 10, MLP: 2},
	{Name: "gemsFDTD", Acronym: "Gm", MemOpFrac: 0.45, WriteFrac: 0.30, HotKB: 768, ZipfS: 1.00, BurstRefs: 6, StreamFrac: 0.30, MLP: 6},
	{Name: "gobmk", Acronym: "Gk", MemOpFrac: 0.30, WriteFrac: 0.15, HotKB: 384, ZipfS: 1.10, BurstRefs: 2, StreamFrac: 0.02, StreamKB: 8 << 10, MLP: 2},
	{Name: "gromacs", Acronym: "Gr", MemOpFrac: 0.35, WriteFrac: 0.20, HotKB: 96, ZipfS: 1.00, BurstRefs: 4, StreamFrac: 0.02, StreamKB: 2 << 10, MLP: 4},
	{Name: "h264ref", Acronym: "H2", MemOpFrac: 0.35, WriteFrac: 0.20, HotKB: 256, ZipfS: 1.00, BurstRefs: 4, StreamFrac: 0.04, StreamKB: 16 << 10, MLP: 3,
		PhaseLenRefs: 400_000, PhaseHotKB: []int{256, 1536, 512, 2048}},
	{Name: "hmmer", Acronym: "Hm", MemOpFrac: 0.40, WriteFrac: 0.15, HotKB: 48, ZipfS: 1.00, BurstRefs: 4, StreamFrac: 0.01, StreamKB: 2 << 10, MLP: 4},
	{Name: "lbm", Acronym: "Lb", MemOpFrac: 0.45, WriteFrac: 0.45, HotKB: 384, ZipfS: 1.00, BurstRefs: 6, StreamFrac: 0.40, MLP: 8},
	{Name: "leslie3d", Acronym: "Ls", MemOpFrac: 0.45, WriteFrac: 0.30, HotKB: 512, ZipfS: 1.00, BurstRefs: 6, StreamFrac: 0.25, MLP: 6},
	{Name: "libquantum", Acronym: "Lq", MemOpFrac: 0.30, WriteFrac: 0.25, HotKB: 32, ZipfS: 0.50, BurstRefs: 2, StreamFrac: 0.85, StreamKB: 64 << 10, MLP: 8},
	{Name: "mcf", Acronym: "Mc", MemOpFrac: 0.40, WriteFrac: 0.20, HotKB: 512, ZipfS: 1.00, BurstRefs: 2, PointerFrac: 0.06, PointerKB: 64 << 10, StreamFrac: 0.03, StreamKB: 32 << 10, MLP: 1},
	{Name: "milc", Acronym: "Mi", MemOpFrac: 0.40, WriteFrac: 0.30, HotKB: 512, ZipfS: 1.00, BurstRefs: 8, PointerFrac: 0.04, PointerKB: 32 << 10, StreamFrac: 0.25, MLP: 6},
	{Name: "namd", Acronym: "Nd", MemOpFrac: 0.35, WriteFrac: 0.15, HotKB: 192, ZipfS: 1.00, BurstRefs: 4, StreamFrac: 0.02, StreamKB: 4 << 10, MLP: 4},
	{Name: "omnetpp", Acronym: "Om", MemOpFrac: 0.35, WriteFrac: 0.25, HotKB: 768, ZipfS: 1.00, BurstRefs: 2, PointerFrac: 0.03, PointerKB: 16 << 10, MLP: 1,
		ScanFrac: 0.40, ScanLoopKB: []int{1024, 1792, 2560, 3328}},
	{Name: "perlbench", Acronym: "Pe", MemOpFrac: 0.35, WriteFrac: 0.20, HotKB: 640, ZipfS: 1.00, BurstRefs: 3, StreamFrac: 0.03, StreamKB: 16 << 10, MLP: 2},
	{Name: "povray", Acronym: "Po", MemOpFrac: 0.30, WriteFrac: 0.10, HotKB: 24, ZipfS: 0.90, BurstRefs: 4, MLP: 4},
	{Name: "sjeng", Acronym: "Si", MemOpFrac: 0.30, WriteFrac: 0.15, HotKB: 768, ZipfS: 1.00, BurstRefs: 2, StreamFrac: 0.02, StreamKB: 8 << 10, MLP: 2},
	{Name: "soplex", Acronym: "So", MemOpFrac: 0.40, WriteFrac: 0.25, HotKB: 1024, ZipfS: 1.00, BurstRefs: 3, PointerFrac: 0.04, PointerKB: 32 << 10, StreamFrac: 0.08, MLP: 2},
	{Name: "sphinx", Acronym: "Sp", MemOpFrac: 0.40, WriteFrac: 0.20, HotKB: 1024, ZipfS: 1.00, BurstRefs: 4, StreamFrac: 0.12, MLP: 4},
	{Name: "tonto", Acronym: "To", MemOpFrac: 0.35, WriteFrac: 0.20, HotKB: 128, ZipfS: 1.00, BurstRefs: 4, StreamFrac: 0.02, StreamKB: 2 << 10, MLP: 4},
	{Name: "wrf", Acronym: "Wr", MemOpFrac: 0.40, WriteFrac: 0.25, HotKB: 768, ZipfS: 1.00, BurstRefs: 5, StreamFrac: 0.12, MLP: 5},
	{Name: "xalancbmk", Acronym: "Xa", MemOpFrac: 0.35, WriteFrac: 0.20, HotKB: 768, ZipfS: 1.00, BurstRefs: 2, PointerFrac: 0.015, PointerKB: 8 << 10, MLP: 1.5,
		ScanFrac: 0.45, ScanLoopKB: []int{1280, 2048, 2816, 3584}},
	{Name: "zeusmp", Acronym: "Ze", MemOpFrac: 0.40, WriteFrac: 0.30, HotKB: 1024, ZipfS: 1.00, BurstRefs: 5, StreamFrac: 0.10, MLP: 5},
	// HPC proxy applications (italicised in the paper's Table 1).
	{Name: "amg2013", Acronym: "Am", MemOpFrac: 0.45, WriteFrac: 0.30, HotKB: 1536, ZipfS: 0.95, BurstRefs: 5, StreamFrac: 0.20, MLP: 5},
	{Name: "comd", Acronym: "Co", MemOpFrac: 0.35, WriteFrac: 0.25, HotKB: 768, ZipfS: 1.00, BurstRefs: 4, StreamFrac: 0.05, StreamKB: 16 << 10, MLP: 4},
	{Name: "lulesh", Acronym: "Lu", MemOpFrac: 0.40, WriteFrac: 0.30, HotKB: 768, ZipfS: 1.00, BurstRefs: 5, StreamFrac: 0.12, MLP: 5},
	{Name: "nekbone", Acronym: "Ne", MemOpFrac: 0.35, WriteFrac: 0.20, HotKB: 64, ZipfS: 1.00, BurstRefs: 4, StreamFrac: 0.02, StreamKB: 2 << 10, MLP: 4},
	{Name: "xsbench", Acronym: "Xb", MemOpFrac: 0.40, WriteFrac: 0.15, HotKB: 1024, ZipfS: 1.00, BurstRefs: 4, PointerFrac: 0.06, PointerKB: 128 << 10, MLP: 4},
}

// dualCoreMixes is the paper's Table 1 dual-core workload list.
var dualCoreMixes = [][2]string{
	{"gemsFDTD", "dealII"},   // GmDl
	{"astar", "xsbench"},     // AsXb
	{"gcc", "gamess"},        // GcGa
	{"bzip2", "xalancbmk"},   // BzXa
	{"leslie3d", "lbm"},      // LsLb
	{"gobmk", "nekbone"},     // GkNe
	{"omnetpp", "gromacs"},   // OmGr
	{"namd", "cactusADM"},    // NdCd
	{"calculix", "tonto"},    // CaTo
	{"sphinx", "bwaves"},     // SpBw
	{"libquantum", "povray"}, // LqPo
	{"sjeng", "wrf"},         // SjWr
	{"perlbench", "zeusmp"},  // PeZe
	{"hmmer", "h264ref"},     // HmH2
	{"soplex", "milc"},       // SoMi
	{"mcf", "lulesh"},        // McLu
	{"comd", "amg2013"},      // CoAm
}

// quadCoreMixes extends the paper's methodology to 4-core workloads
// (a scalability extension; the paper evaluates 1 and 2 cores). Eight
// mixes of four benchmarks, each benchmark used at most once, pairing
// the paper's dual-core mixes.
var quadCoreMixes = [][4]string{
	{"gemsFDTD", "dealII", "astar", "xsbench"},
	{"gcc", "gamess", "bzip2", "xalancbmk"},
	{"leslie3d", "lbm", "gobmk", "nekbone"},
	{"omnetpp", "gromacs", "namd", "cactusADM"},
	{"calculix", "tonto", "sphinx", "bwaves"},
	{"libquantum", "povray", "sjeng", "wrf"},
	{"perlbench", "zeusmp", "hmmer", "h264ref"},
	{"soplex", "milc", "mcf", "lulesh"},
}

// QuadCoreWorkloads returns 8 four-benchmark mixes for the 4-core
// scalability extension.
func QuadCoreWorkloads() [][4]string {
	return append([][4]string(nil), quadCoreMixes...)
}

// Profiles returns the full single-core benchmark table (34 entries,
// paper Table 1), in a fresh slice.
func Profiles() []Profile {
	return append([]Profile(nil), profiles...)
}

// ProfileByName looks a benchmark up by full name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// ProfileByAcronym looks a benchmark up by its Table 1 acronym.
func ProfileByAcronym(ac string) (Profile, bool) {
	for _, p := range profiles {
		if p.Acronym == ac {
			return p, true
		}
	}
	return Profile{}, false
}

// DualCoreWorkloads returns the 17 dual-core mixes of Table 1 as
// pairs of benchmark names.
func DualCoreWorkloads() [][2]string {
	return append([][2]string(nil), dualCoreMixes...)
}

// MixAcronym returns the paper's short name for a dual-core pair
// (e.g. "GkNe" for gobmk+nekbone).
func MixAcronym(a, b string) string {
	pa, _ := ProfileByName(a)
	pb, _ := ProfileByName(b)
	return pa.Acronym + pb.Acronym
}
