package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); !almostEqual(got, 4, 1e-12) {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean([]float64{1, 1, 1}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("GeoMean(1,1,1) = %v, want 1", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
}

func TestGeoMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean with 0 did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestGeoMeanLEArithmetic(t *testing.T) {
	// AM-GM inequality must hold for any positive inputs.
	err := quick.Check(func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) + 1
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -2, 7, 0}
	if Min(xs) != -2 {
		t.Errorf("Min = %v", Min(xs))
	}
	if Max(xs) != 7 {
		t.Errorf("Max = %v", Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max not infinities")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("p25 = %v", got)
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Errorf("interp p50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile(101) did not panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestRunningMatchesDirect(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d", r.N())
	}
	if !almostEqual(r.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v, want 5", r.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if !almostEqual(r.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("variance = %v, want %v", r.Variance(), 32.0/7.0)
	}
}

func TestRunningFewSamples(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 {
		t.Error("empty Running not zero")
	}
	r.Add(3)
	if r.Variance() != 0 {
		t.Error("single-sample variance not zero")
	}
}

func TestRunningMerge(t *testing.T) {
	err := quick.Check(func(a, b []int8) bool {
		var whole, left, right Running
		for _, v := range a {
			whole.Add(float64(v))
			left.Add(float64(v))
		}
		for _, v := range b {
			whole.Add(float64(v))
			right.Add(float64(v))
		}
		left.Merge(right)
		return left.N() == whole.N() &&
			almostEqual(left.Mean(), whole.Mean(), 1e-9) &&
			almostEqual(left.Variance(), whole.Variance(), 1e-6)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 100} {
		h.Add(x)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Under() != 1 || h.Over() != 2 {
		t.Fatalf("under=%d over=%d", h.Under(), h.Over())
	}
	if h.Bucket(0) != 2 { // 0 and 1.9
		t.Errorf("bucket0 = %d", h.Bucket(0))
	}
	if h.Bucket(1) != 1 { // 2
		t.Errorf("bucket1 = %d", h.Bucket(1))
	}
	if h.Bucket(4) != 1 { // 9.99
		t.Errorf("bucket4 = %d", h.Bucket(4))
	}
}

func TestHistogramBounds(t *testing.T) {
	h := NewHistogram(10, 20, 4)
	lo, hi := h.BucketBounds(2)
	if lo != 15 || hi != 17.5 {
		t.Errorf("bounds = [%v,%v)", lo, hi)
	}
	if h.NumBuckets() != 4 {
		t.Errorf("NumBuckets = %d", h.NumBuckets())
	}
}

func TestHistogramMeanInRange(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(2.5) // bucket 2, midpoint 2.5
	h.Add(7.5) // bucket 7, midpoint 7.5
	if got := h.MeanInRange(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("MeanInRange = %v, want 5", got)
	}
	empty := NewHistogram(0, 1, 1)
	if empty.MeanInRange() != 0 {
		t.Error("empty MeanInRange not 0")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(10, 10, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad NewHistogram did not panic")
				}
			}()
			f()
		}()
	}
}

func TestHistogramCountConservation(t *testing.T) {
	err := quick.Check(func(raw []int16) bool {
		h := NewHistogram(-100, 100, 8)
		for _, v := range raw {
			h.Add(float64(v))
		}
		var in int64
		for i := 0; i < h.NumBuckets(); i++ {
			in += h.Bucket(i)
		}
		return in+h.Under()+h.Over() == int64(len(raw))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunningStddev(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	want := math.Sqrt(32.0 / 7.0)
	if !almostEqual(r.Stddev(), want, 1e-12) {
		t.Fatalf("stddev = %v, want %v", r.Stddev(), want)
	}
}
