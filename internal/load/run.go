// The open-loop run driver: fires requests at their precomputed
// arrival times regardless of completions, snapshots /metrics at
// phase boundaries and after the final drain, and aggregates the
// outcome into a Report.
package load

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/serve"
)

// Options configures one load-generator run.
type Options struct {
	// Server is the esteem-serve base URL.
	Server string
	// Schedule is the arrival process.
	Schedule Schedule
	// SpecFor overrides request synthesis (tests). Nil uses
	// serve.FastJobSpec: hot arrivals share one spec keyed off the
	// schedule seed, cold arrivals derive a unique seed from their
	// sequence number.
	SpecFor func(a Arrival) serve.JobSpec
	// ConnRetries bounds per-request retries on connection errors
	// (default 3).
	ConnRetries int
	// DrainTimeout bounds the wait for in-flight requests after the
	// last arrival (default 30s); requests still pending afterwards
	// count as errors.
	DrainTimeout time.Duration
	// Note is stored with the report.
	Note string
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

func (o *Options) fill() error {
	if o.Server == "" {
		return fmt.Errorf("load: Options.Server is required")
	}
	if err := o.Schedule.Validate(); err != nil {
		return err
	}
	if o.SpecFor == nil {
		seed := uint64(o.Schedule.Seed)
		o.SpecFor = func(a Arrival) serve.JobSpec {
			if a.Hot {
				// One shared hot spec per run: every hot arrival
				// resolves to the same content address.
				return serve.FastJobSpec(seed<<20 | 1)
			}
			// Unique per arrival, disjoint from the hot key space.
			return serve.FastJobSpec(seed<<20 | uint64(a.Seq)<<1)
		}
	}
	if o.ConnRetries == 0 {
		o.ConnRetries = 3
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 30 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return nil
}

// Run executes the schedule against the server and returns the
// aggregated report. The report's Date field is stamped with the
// run's start time.
func Run(ctx context.Context, opts Options) (Report, error) {
	if err := opts.fill(); err != nil {
		return Report{}, err
	}
	arrivals, err := opts.Schedule.Arrivals()
	if err != nil {
		return Report{}, err
	}
	if len(arrivals) == 0 {
		return Report{}, fmt.Errorf("load: schedule produced no arrivals")
	}
	c := newClient(opts.Server, opts.ConnRetries)

	baseline, err := c.scrape(ctx)
	if err != nil {
		return Report{}, fmt.Errorf("load: initial metrics scrape: %w", err)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]reqResult, len(arrivals))
	phaseMarks := make([]serve.MetricsView, len(opts.Schedule.Phases))
	var wg sync.WaitGroup
	start := time.Now()
	started := start.UTC()
	curPhase := 0
	opts.Logf("load: %d arrivals over %s against %s",
		len(arrivals), opts.Schedule.Duration().Round(time.Millisecond), opts.Server)

	for i := range arrivals {
		a := arrivals[i]
		// Phase boundary: snapshot the previous phase's metrics before
		// the next phase's first request fires.
		for curPhase < a.Phase {
			if phaseMarks[curPhase], err = c.scrape(runCtx); err != nil {
				opts.Logf("load: phase %d metrics scrape failed: %v", curPhase, err)
			}
			opts.Logf("load: phase %q done (offered %.1f rps)",
				opts.Schedule.Phases[curPhase].Name, opts.Schedule.Phases[curPhase].RPS)
			curPhase++
		}
		if d := time.Until(start.Add(a.At)); d > 0 {
			select {
			case <-runCtx.Done():
				return Report{}, runCtx.Err()
			case <-time.After(d):
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[a.Seq] = c.submitAndWait(runCtx, opts.SpecFor(a))
		}()
	}

	// Drain: wait for stragglers, bounded.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(opts.DrainTimeout):
		opts.Logf("load: drain timeout after %s; cancelling stragglers", opts.DrainTimeout)
		cancel()
		<-done
	case <-ctx.Done():
		cancel()
		<-done
	}

	final, err := c.scrape(ctx)
	if err != nil {
		return Report{}, fmt.Errorf("load: final metrics scrape: %w", err)
	}
	for curPhase < len(phaseMarks) {
		phaseMarks[curPhase] = final
		curPhase++
	}

	rep := buildReport(opts, arrivals, results, baseline, phaseMarks, final)
	rep.Date = started.Format("2006-01-02T15:04:05Z")
	rep.stampHost()
	return rep, nil
}

// buildReport aggregates per-request outcomes and metric snapshots.
func buildReport(opts Options, arrivals []Arrival, results []reqResult,
	baseline serve.MetricsView, phaseMarks []serve.MetricsView, final serve.MetricsView) Report {

	sched := opts.Schedule
	rep := Report{
		Note:        opts.Note,
		Seed:        sched.Seed,
		HotFraction: sched.HotFraction,
		Jitter:      sched.Jitter,
		Cache:       cacheDelta(baseline, final),
	}

	perPhase := make([][]float64, len(sched.Phases)) // completed latencies, ms
	var overall []float64
	phase := make([]PhaseStats, len(sched.Phases))
	for i := range phase {
		phase[i].Name = sched.Phases[i].Name
		phase[i].OfferedRPS = sched.Phases[i].RPS
	}
	for i, res := range results {
		p := arrivals[i].Phase
		st := &phase[p]
		st.Requests++
		st.ConnRetries += res.retries
		switch {
		case res.ok:
			st.Completed++
			ms := float64(res.latency.Microseconds()) / 1e3
			perPhase[p] = append(perPhase[p], ms)
			overall = append(overall, ms)
		case res.rejected:
			st.Rejected++
		default:
			st.Errors++
		}
	}

	prev := baseline
	for i := range phase {
		phase[i].Latency = quantilesOf(perPhase[i])
		if sched.Phases[i].Seconds > 0 {
			phase[i].AchievedRPS = float64(phase[i].Completed) / sched.Phases[i].Seconds
		}
		rep.Phases = append(rep.Phases, PhaseReport{
			PhaseStats: phase[i],
			Cache:      cacheDelta(prev, phaseMarks[i]),
		})
		prev = phaseMarks[i]
	}

	o := &rep.Overall
	o.Name = "overall"
	for _, st := range phase {
		o.Requests += st.Requests
		o.Completed += st.Completed
		o.Rejected += st.Rejected
		o.Errors += st.Errors
		o.ConnRetries += st.ConnRetries
	}
	if n := len(arrivals); n > 0 {
		o.OfferedRPS = float64(n) / sched.Duration().Seconds()
	}
	if secs := sched.Duration().Seconds(); secs > 0 {
		o.AchievedRPS = float64(o.Completed) / secs
	}
	o.Latency = quantilesOf(overall)
	rep.Histogram = latencyHistogram(overall)
	return rep
}

// latencyHistogramBoundsMs mirror the server's latency buckets (ms).
var latencyHistogramBoundsMs = []float64{
	1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
}

// latencyHistogram builds the report's cumulative latency histogram.
func latencyHistogram(ms []float64) []HistBucket {
	counts := make([]uint64, len(latencyHistogramBoundsMs))
	for _, v := range ms {
		for i, le := range latencyHistogramBoundsMs {
			if v <= le {
				counts[i]++
			}
		}
	}
	out := make([]HistBucket, len(counts))
	for i := range counts {
		out[i] = HistBucket{LEms: latencyHistogramBoundsMs[i], Count: counts[i]}
	}
	return out
}
