// The typed metrics snapshot behind /metrics: one data structure both
// renderers consume, so the Prometheus text exposition and the JSON
// view (?format=json) can never drift apart. The JSON view exists for
// programmatic delta-scraping — the load generator (internal/load)
// snapshots it before and after each schedule phase to attribute
// cache hits, misses and queue-wait to traffic windows.
package serve

import (
	"fmt"
	"io"
	"net/http"
	"time"
)

// MetricsView is the JSON shape of GET /metrics?format=json. Keys of
// Gauges, Counters and Histograms are the Prometheus series names of
// the text exposition.
type MetricsView struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	Gauges        map[string]float64       `json:"gauges"`
	Counters      map[string]uint64        `json:"counters"`
	Histograms    map[string]HistogramView `json:"histograms"`
}

// metricPoint is one gauge or counter with its help text (ordering is
// the text exposition's).
type metricPoint struct {
	name string
	help string
	gval float64 // gauges
	cval uint64  // counters
}

// histPoint is one histogram with its help text.
type histPoint struct {
	name string
	help string
	view HistogramView
}

// metricsData snapshots every exported series in exposition order.
func (s *Server) metricsData() (gauges, counters []metricPoint, hists []histPoint) {
	s.mu.Lock()
	queued := len(s.queue)
	s.mu.Unlock()
	st := s.cfg.Store.Stats()
	uptime := time.Since(s.start).Seconds()
	sims := s.simsTotal.Load()
	var simsPerSec float64
	if uptime > 0 {
		simsPerSec = float64(sims) / uptime
	}
	ts := s.cfg.Tracer.Stats()

	gauges = []metricPoint{
		{name: "esteem_serve_queue_depth", help: "Jobs waiting in the admission queue.", gval: float64(queued)},
		{name: "esteem_serve_in_flight_jobs", help: "Jobs currently executing.", gval: float64(s.inFlight.Load())},
		{name: "esteem_serve_sims_per_second", help: "Simulations executed per second of uptime.", gval: simsPerSec},
		{name: "esteem_serve_trace_spans_buffered", help: "Completed spans retained in the tracer's ring.", gval: float64(ts.Buffered)},
	}
	counters = []metricPoint{
		{name: "esteem_serve_jobs_accepted_total", help: "Jobs admitted to the queue.", cval: s.accepted.Load()},
		{name: "esteem_serve_jobs_rejected_total", help: "Jobs rejected with 429 (queue full).", cval: s.rejected.Load()},
		{name: "esteem_serve_jobs_completed_total", help: "Jobs finished successfully.", cval: s.completed.Load()},
		{name: "esteem_serve_jobs_failed_total", help: "Jobs finished in failure or cancellation.", cval: s.failed.Load()},
		{name: "esteem_serve_sims_executed_total", help: "Simulations actually executed (cache misses).", cval: sims},
		{name: "esteem_serve_sim_instructions_total", help: "Instructions simulated by executed simulations.", cval: s.instrTotal.Load()},
		{name: "esteem_serve_cache_hits_total", help: "Content-addressed store hits (memory + disk).", cval: st.Hits},
		{name: "esteem_serve_cache_memory_hits_total", help: "Content-addressed store memory-layer hits.", cval: st.MemHits},
		{name: "esteem_serve_cache_disk_hits_total", help: "Content-addressed store disk-layer hits.", cval: st.DiskHits},
		{name: "esteem_serve_cache_misses_total", help: "Content-addressed store misses.", cval: st.Misses},
		{name: "esteem_serve_cache_computes_total", help: "Simulations computed under the store's single-flight lock.", cval: st.Computes},
		{name: "esteem_serve_cache_coalesced_total", help: "Requests coalesced onto an in-progress compute.", cval: st.Coalesced},
		{name: "esteem_serve_prefix_checkpoint_hits_total", help: "Simulations resumed from a stored prefix checkpoint.", cval: st.PrefixHits},
		{name: "esteem_serve_prefix_checkpoint_misses_total", help: "Prefix-checkpoint lookups that found no usable checkpoint.", cval: st.PrefixMisses},
		{name: "esteem_serve_prefix_checkpoint_saved_instructions_total", help: "Measured instructions skipped by resuming from prefix checkpoints.", cval: st.PrefixSavedInstr},
		{name: "esteem_serve_trace_spans_dropped_total", help: "Spans evicted from the tracer's ring.", cval: ts.Dropped},
		{name: "esteem_serve_trace_unsampled_total", help: "Traces head-sampled out.", cval: ts.Unsampled},
		{name: "esteem_serve_shard_remote_hits_total", help: "Artifacts fetched from a peer shard (zero when not clustered).", cval: st.RemoteHits},
		{name: "esteem_serve_shard_remote_misses_total", help: "Peer shard lookups that found nothing.", cval: st.RemoteMisses},
		{name: "esteem_serve_shard_repairs_total", help: "Read-through replication repairs.", cval: st.Repairs},
		{name: "esteem_serve_shard_remote_puts_total", help: "Artifact replications to peer shards.", cval: st.RemotePuts},
		{name: "esteem_serve_shard_remote_put_errors_total", help: "Failed replications to peer shards.", cval: st.RemotePutErrors},
	}
	if s.cfg.Cluster != nil {
		cs := s.cfg.Cluster.Stats()
		gauges = append(gauges,
			metricPoint{name: "esteem_cluster_workers_live", help: "Workers currently registered and heartbeating.", gval: float64(cs.WorkersLive)},
			metricPoint{name: "esteem_cluster_leases_outstanding", help: "Leases currently held by workers.", gval: float64(cs.LeasesOutstanding)},
			metricPoint{name: "esteem_cluster_tasks_pending", help: "Tasks queued waiting for a lease.", gval: float64(cs.TasksPending)},
		)
		counters = append(counters,
			metricPoint{name: "esteem_cluster_workers_joined_total", help: "Worker join registrations.", cval: cs.WorkersJoined},
			metricPoint{name: "esteem_cluster_workers_expired_total", help: "Workers expired for missing heartbeats.", cval: cs.WorkersExpired},
			metricPoint{name: "esteem_cluster_leases_issued_total", help: "Leases granted to workers.", cval: cs.LeasesIssued},
			metricPoint{name: "esteem_cluster_leases_expired_total", help: "Leases that timed out and re-queued.", cval: cs.LeasesExpired},
			metricPoint{name: "esteem_cluster_leases_reissued_total", help: "Re-grants of previously expired leases.", cval: cs.LeasesReissued},
			metricPoint{name: "esteem_cluster_tasks_submitted_total", help: "Tasks entered into the lease table.", cval: cs.TasksSubmitted},
			metricPoint{name: "esteem_cluster_tasks_completed_total", help: "Tasks completed by workers.", cval: cs.TasksCompleted},
			metricPoint{name: "esteem_cluster_tasks_failed_total", help: "Tasks that failed on a worker.", cval: cs.TasksFailed},
			metricPoint{name: "esteem_cluster_spans_injected_total", help: "Worker-shipped spans merged into the coordinator's tracer.", cval: cs.SpansInjected},
			metricPoint{name: "esteem_cluster_spans_dropped_total", help: "Worker-shipped spans dropped (malformed, or no tracer).", cval: cs.SpansDropped},
		)
	}
	hists = []histPoint{
		{name: "esteem_serve_queue_wait_seconds", help: "Time jobs spent in the admission queue.", view: s.queueWaitHist.view()},
		{name: "esteem_serve_job_cache_hit_seconds", help: "Job compute time for jobs served entirely from the result store.", view: s.computeHitHist.view()},
		{name: "esteem_serve_job_compute_seconds", help: "Job compute time for jobs that executed at least one simulation.", view: s.computeMissHist.view()},
	}
	return gauges, counters, hists
}

// MetricsSnapshot returns the current metrics as the JSON view (also
// used in-process by tests and the load generator's e2e harness).
func (s *Server) MetricsSnapshot() MetricsView {
	gauges, counters, hists := s.metricsData()
	v := MetricsView{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Gauges:        make(map[string]float64, len(gauges)),
		Counters:      make(map[string]uint64, len(counters)),
		Histograms:    make(map[string]HistogramView, len(hists)),
	}
	for _, g := range gauges {
		v.Gauges[g.name] = g.gval
	}
	for _, c := range counters {
		v.Counters[c.name] = c.cval
	}
	for _, h := range hists {
		v.Histograms[h.name] = h.view
	}
	return v
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, s.MetricsSnapshot())
		return
	}
	gauges, counters, hists := s.metricsData()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", g.name, g.help, g.name, g.name, g.gval)
	}
	for _, c := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.cval)
	}
	for _, h := range hists {
		writeHist(w, h.name, h.help, h.view)
	}
}

// writeHist emits one histogram in Prometheus text format. Bucket
// counts are cumulative, as the format requires.
func writeHist(w io.Writer, name, help string, v HistogramView) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, b := range v.Buckets {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtFloat(b.LE), b.Count)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, v.Count)
	fmt.Fprintf(w, "%s_sum %g\n", name, v.SumSeconds)
	fmt.Fprintf(w, "%s_count %d\n", name, v.Count)
}
