package sim

import (
	"reflect"
	"testing"

	"repro/internal/obs"
)

// runPair runs the same configuration twice, once without telemetry
// and once with a collector attached, and returns both results plus
// the collected intervals.
func runPair(t *testing.T, cfg Config, wl []string) (plain, observed *Result, ivs []obs.Interval) {
	t.Helper()
	plain, err := Run(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	observed, err = RunObserved(cfg, wl, col)
	if err != nil {
		t.Fatal(err)
	}
	return plain, observed, col.Intervals()
}

// TestObserverDoesNotPerturb is the telemetry layer's core contract:
// attaching an observer must produce a byte-identical sim.Result.
func TestObserverDoesNotPerturb(t *testing.T) {
	for _, tech := range []Technique{Baseline, RPV, RPD, Esteem, SmartRefresh} {
		t.Run(tech.String(), func(t *testing.T) {
			cfg := testConfig(1, tech)
			plain, observed, ivs := runPair(t, cfg, []string{"gobmk"})
			if !reflect.DeepEqual(plain, observed) {
				t.Fatalf("telemetry perturbed the simulation:\nplain    %+v\nobserved %+v", plain, observed)
			}
			if len(ivs) == 0 {
				t.Fatal("observer received no intervals")
			}
		})
	}

	// Also with interval logging on (both paths share the ways
	// snapshot) and on a dual-core system.
	cfg := testConfig(2, Esteem)
	cfg.LogIntervals = true
	plain, observed, _ := runPair(t, cfg, []string{"gobmk", "mcf"})
	if !reflect.DeepEqual(plain, observed) {
		t.Fatal("telemetry perturbed a LogIntervals dual-core run")
	}
}

// TestObserverIntervalsMatchResult cross-checks the telemetry stream
// against the run's own aggregates: measured intervals must sum to
// the measured counters, and with LogIntervals the stream must align
// record-for-record with Result.Intervals.
func TestObserverIntervalsMatchResult(t *testing.T) {
	cfg := testConfig(1, Esteem)
	cfg.LogIntervals = true
	col := obs.NewCollector()
	r, err := RunObserved(cfg, []string{"h264ref"}, col)
	if err != nil {
		t.Fatal(err)
	}
	measured := col.Measured()
	if len(measured) != len(r.Intervals) {
		t.Fatalf("collector has %d measured intervals, Result has %d", len(measured), len(r.Intervals))
	}
	var hits, misses, refreshes, cycles uint64
	for i, iv := range measured {
		lr := r.Intervals[i]
		if iv.EndCycle != lr.EndCycle || iv.ActiveRatio != lr.ActiveRatio {
			t.Fatalf("interval %d mismatch: obs (end=%d, F_A=%v) vs log (end=%d, F_A=%v)",
				i, iv.EndCycle, iv.ActiveRatio, lr.EndCycle, lr.ActiveRatio)
		}
		if !reflect.DeepEqual(iv.ActiveWays, lr.ActiveWays) {
			t.Fatalf("interval %d ways mismatch: %v vs %v", i, iv.ActiveWays, lr.ActiveWays)
		}
		if iv.L2Hits != lr.Activity.L2Hits || iv.Refreshes != lr.Activity.Refreshes {
			t.Fatalf("interval %d counters mismatch: %+v vs %+v", i, iv, lr.Activity)
		}
		hits += iv.L2Hits
		misses += iv.L2Misses
		refreshes += iv.Refreshes
		cycles += iv.Cycles
	}
	if hits != r.Activity.L2Hits || misses != r.Activity.L2Misses ||
		refreshes != r.Activity.Refreshes || cycles != r.Activity.Cycles {
		t.Fatalf("measured intervals do not sum to run totals: hits %d/%d misses %d/%d refreshes %d/%d cycles %d/%d",
			hits, r.Activity.L2Hits, misses, r.Activity.L2Misses,
			refreshes, r.Activity.Refreshes, cycles, r.Activity.Cycles)
	}
	// Per-interval energy must sum to (approximately) the run total;
	// leakage is cycle-weighted so the sum is exact up to float order.
	var tot float64
	for _, iv := range measured {
		tot += iv.Energy.TotalJ
	}
	if rel := (tot - r.Energy.Total()) / r.Energy.Total(); rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("interval energies sum to %g, run total %g (rel %g)", tot, r.Energy.Total(), rel)
	}
	// Warmup intervals must be present and flagged.
	if got := len(col.Intervals()); got <= len(measured) {
		t.Fatalf("expected warmup intervals before the %d measured ones, got %d total", len(measured), got)
	}
	if col.Intervals()[0].Measuring {
		t.Fatal("first (warmup) interval flagged as measuring")
	}
}

// TestObserverPolicyStats exercises the policy-specific telemetry:
// Smart-Refresh reports skipped refreshes, RPD reports eager
// invalidations.
func TestObserverPolicyStats(t *testing.T) {
	cfg := testConfig(1, SmartRefresh)
	col := obs.NewCollector()
	if _, err := RunObserved(cfg, []string{"gobmk"}, col); err != nil {
		t.Fatal(err)
	}
	var skipped uint64
	for _, iv := range col.Intervals() {
		skipped += iv.Policy.SkippedRefreshes
		if iv.Policy.Invalidations != 0 {
			t.Fatal("Smart-Refresh reported RPD invalidations")
		}
	}
	if skipped == 0 {
		t.Fatal("Smart-Refresh run reported no skipped refreshes")
	}

	cfg = testConfig(1, RPD)
	col = obs.NewCollector()
	r, err := RunObserved(cfg, []string{"gobmk"}, col)
	if err != nil {
		t.Fatal(err)
	}
	var inval uint64
	for _, iv := range col.Intervals() {
		inval += iv.Policy.Invalidations
	}
	if inval == 0 {
		t.Fatal("RPD run reported no invalidations")
	}
	_ = r
}

// TestObserverBankBusyMatchesRefreshes checks the engine-side
// telemetry: with a 1-line-per-cycle pipeline, busy cycles equal
// lines refreshed.
func TestObserverBankBusyMatchesRefreshes(t *testing.T) {
	cfg := testConfig(1, Baseline)
	col := obs.NewCollector()
	if _, err := RunObserved(cfg, []string{"gobmk"}, col); err != nil {
		t.Fatal(err)
	}
	for _, iv := range col.Intervals() {
		if iv.BankBusyCycles != iv.Refreshes {
			t.Fatalf("interval %d: %d busy cycles for %d refreshes", iv.Index, iv.BankBusyCycles, iv.Refreshes)
		}
	}
}
