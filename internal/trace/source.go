// Source abstraction and trace (de)serialization: the simulator can
// consume any reference stream, not just the built-in synthetic
// generators — in particular traces captured from real applications
// and replayed from files.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Source produces a memory-reference stream. The built-in Generator
// implements it; Replayer replays recorded traces; users can supply
// their own.
type Source interface {
	// Name identifies the workload in reports.
	Name() string
	// Next returns the next reference. Sources must be effectively
	// endless: the simulator pulls as many references as its
	// instruction budget requires (Replayer loops its trace).
	Next() Ref
	// MLPFactor returns the workload's memory-level-parallelism
	// factor (>= 1) used to scale exposed miss latency.
	MLPFactor() float64
}

// Generator implements Source.
var _ Source = (*Generator)(nil)

// MLPFactor implements Source for the synthetic generator.
func (g *Generator) MLPFactor() float64 { return g.p.EffectiveMLP() }

// Trace file format: a fixed header followed by fixed-size records.
//
//	magic   [8]byte  "ESTEEMT1"
//	count   uint64   number of records
//	mlp     uint64   MLP factor scaled by 1000
//	records count x {
//	    addr  uint64
//	    gap   uint32
//	    flags uint8   bit0 = write; bits 1-3 = Kind
//	}
var traceMagic = [8]byte{'E', 'S', 'T', 'E', 'E', 'M', 'T', '1'}

const recordBytes = 8 + 4 + 1

// WriteTrace serializes refs to w with the given workload MLP factor.
func WriteTrace(w io.Writer, refs []Ref, mlp float64) error {
	if mlp < 1 {
		mlp = 1
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(len(refs)))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(mlp*1000))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [recordBytes]byte
	for _, r := range refs {
		if r.Gap < 0 {
			return fmt.Errorf("trace: negative gap %d", r.Gap)
		}
		binary.LittleEndian.PutUint64(rec[0:], r.Addr)
		binary.LittleEndian.PutUint32(rec[8:], uint32(r.Gap))
		flags := uint8(r.Kind) << 1
		if r.Write {
			flags |= 1
		}
		rec[12] = flags
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTrace.
func ReadTrace(r io.Reader) (refs []Ref, mlp float64, err error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, 0, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != traceMagic {
		return nil, 0, errors.New("trace: bad magic (not an ESTEEM trace file)")
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("trace: reading header: %w", err)
	}
	count := binary.LittleEndian.Uint64(hdr[0:])
	mlp = float64(binary.LittleEndian.Uint64(hdr[8:])) / 1000
	const maxTrace = 1 << 31 // sanity bound: ~2G records
	if count > maxTrace {
		return nil, 0, fmt.Errorf("trace: implausible record count %d", count)
	}
	// Cap the preallocation: the header count is untrusted input, so
	// a corrupt file must not force a giant allocation before the
	// (much smaller) body fails to read.
	capHint := count
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	refs = make([]Ref, 0, capHint)
	var rec [recordBytes]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, 0, fmt.Errorf("trace: record %d: %w", i, err)
		}
		flags := rec[12]
		refs = append(refs, Ref{
			Addr:  binary.LittleEndian.Uint64(rec[0:]),
			Gap:   int(binary.LittleEndian.Uint32(rec[8:])),
			Write: flags&1 != 0,
			Kind:  Kind(flags >> 1),
		})
	}
	return refs, mlp, nil
}

// Replayer replays a recorded reference slice as a Source, looping
// when it reaches the end (the simulator's budget may exceed the
// trace length).
type Replayer struct {
	name string
	refs []Ref
	mlp  float64
	pos  int
	// Loops counts completed passes over the trace.
	loops int
}

// NewReplayer builds a looping Source over refs.
func NewReplayer(name string, refs []Ref, mlp float64) (*Replayer, error) {
	if len(refs) == 0 {
		return nil, errors.New("trace: empty trace")
	}
	if mlp < 1 {
		mlp = 1
	}
	return &Replayer{name: name, refs: refs, mlp: mlp}, nil
}

// ReadReplayer reads a trace file into a Replayer.
func ReadReplayer(name string, r io.Reader) (*Replayer, error) {
	refs, mlp, err := ReadTrace(r)
	if err != nil {
		return nil, err
	}
	return NewReplayer(name, refs, mlp)
}

// Name implements Source.
func (rp *Replayer) Name() string { return rp.name }

// MLPFactor implements Source.
func (rp *Replayer) MLPFactor() float64 { return rp.mlp }

// Len returns the trace length in references.
func (rp *Replayer) Len() int { return len(rp.refs) }

// Loops returns how many full passes have been replayed.
func (rp *Replayer) Loops() int { return rp.loops }

// Next implements Source.
func (rp *Replayer) Next() Ref {
	r := rp.refs[rp.pos]
	rp.pos++
	if rp.pos == len(rp.refs) {
		rp.pos = 0
		rp.loops++
	}
	return r
}

// Record captures n references from a source into a slice (helper for
// building trace files from the synthetic generators).
func Record(src Source, n int) []Ref {
	refs := make([]Ref, n)
	for i := range refs {
		refs[i] = src.Next()
	}
	return refs
}
