// Command esteem-bench regenerates every table and figure of the
// ESTEEM paper's evaluation (Section 7):
//
//	table2 — eDRAM energy parameters (paper Table 2)
//	fig2   — ESTEEM reconfiguration over time for h264ref
//	fig3   — single-core results at 50 µs retention
//	fig4   — dual-core results at 50 µs retention
//	fig5   — single-core results at 40 µs retention
//	fig6   — dual-core results at 40 µs retention
//	table3 — parameter sensitivity (single- and dual-core)
//	ablation — design-choice ablations (DESIGN.md §5)
//	temp   — temperature sweep via the retention model (extension)
//	scale  — 1/2/4-core scaling (extension)
//
// Results are printed and written under -out (default results/).
// Instruction budgets are scaled from the paper's 400M-instruction
// runs (see EXPERIMENTS.md); absolute numbers differ but the paper's
// qualitative shape is expected to hold.
//
// Simulations run on the internal/runner execution engine: each
// experiment schedules its jobs up front, the whole batch executes on
// -jobs parallel workers (baseline runs deduplicated across
// experiments, technique runs ordered after their baselines by DAG
// edges), and the output is formatted from the results in submission
// order — so it is byte-identical for every worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/castore"
	"repro/internal/cliflags"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/retention"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tracez"
)

type harness struct {
	instr    uint64
	warmup   uint64
	interval uint64
	seed     uint64
	outDir   string
	quick    bool
	tech     string

	// sweep executes every experiment's jobs; baseline runs are
	// deduplicated across experiments by a typed key.
	sweep *runner.Sweep
}

// formatFunc renders one experiment's output after the sweep has run:
// the human-readable text plus a machine-readable payload written as
// canonical JSON next to it (nil for experiments without one).
type formatFunc func() (string, any, error)

// fatal prints err and exits.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	exp := flag.String("exp", "all", "experiments to run (comma-separated): table2,fig2,fig3,fig4,fig5,fig6,table3,ablation,temp,scale,all")
	out := flag.String("out", "results", "output directory")
	budget := cliflags.RegisterBudget(flag.CommandLine, 2_000_000, 20_000_000, 10_000_000, 1)
	quick := flag.Bool("quick", false, "use a workload subset and shorter runs")
	techName := flag.String("tech", "edram", "LLC storage technology ("+cliflags.TechnologyNames()+")")
	jobs := flag.Int("jobs", 0, "parallel simulation jobs (0 = GOMAXPROCS); any value yields identical results")
	telemetry := flag.Bool("telemetry", true, "write per-run artifacts (interval telemetry + manifests) under <out>/runs")
	cacheDir := flag.String("cache", "", "content-addressed result store directory: completed runs are reused across invocations")
	cacheStats := flag.Bool("cache-stats", false, "print a cache hit/miss summary line after the run (requires -cache)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	traceFile := flag.String("trace", "", "write a runtime/trace capture to this file")
	version := cliflags.VersionFlag(flag.CommandLine)
	flag.Parse()

	if *version {
		fmt.Println(cliflags.PrintVersion("esteem-bench"))
		return
	}
	technology, err := cliflags.ParseTechnology(*techName)
	if err != nil {
		fatal(err)
	}
	h := &harness{
		instr: *budget.Instr, warmup: *budget.Warmup, interval: *budget.Interval, seed: *budget.Seed,
		outDir: *out, quick: *quick, tech: technology,
		sweep: runner.NewSweep(*jobs, runner.WithProgress(os.Stderr), runner.WithLabel("esteem-bench")),
	}
	var store *castore.Store
	if *cacheDir != "" {
		var err error
		store, err = castore.Open(*cacheDir, 1024)
		if err != nil {
			fatal(err)
		}
		h.sweep.SetCache(store)
	} else if *cacheStats {
		fatal(fmt.Errorf("-cache-stats requires -cache"))
	}
	if *quick {
		h.instr /= 4
		h.warmup /= 4
	}
	if err := os.MkdirAll(h.outDir, 0o755); err != nil {
		fatal(err)
	}

	// Profiling hooks.
	if *pprofAddr != "" {
		obs.ServePprof(*pprofAddr, func(err error) { fmt.Fprintln(os.Stderr, err) })
		fmt.Fprintf(os.Stderr, "== pprof: http://%s/debug/pprof ==\n", *pprofAddr)
	}
	if *cpuProfile != "" {
		stop, err := obs.StartCPUProfile(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}
	if *traceFile != "" {
		stop, err := obs.StartTrace(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}

	// Per-run telemetry artifacts, plus a span trace of the whole
	// sweep exported as a Chrome trace-event file next to them.
	var rootSpan *tracez.Span
	var tracer *tracez.Tracer
	if *telemetry {
		sink, err := obs.NewDirSink(filepath.Join(h.outDir, "runs"))
		if err != nil {
			fatal(err)
		}
		h.sweep.SetSink(sink)
		// A full sweep emits a span per task plus a span per simulator
		// interval, so the ring is sized well beyond the serve default.
		tracer = tracez.New(tracez.Config{RingSize: 1 << 18})
		rootSpan = tracer.Root("esteem-bench")
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	type experiment struct {
		name     string
		schedule func() formatFunc
	}
	experiments := []experiment{
		{"table2", h.table2},
		{"fig2", h.fig2},
		{"fig3", func() formatFunc { return h.figure("fig3", 1, 50) }},
		{"fig4", func() formatFunc { return h.figure("fig4", 2, 50) }},
		{"fig5", func() formatFunc { return h.figure("fig5", 1, 40) }},
		{"fig6", func() formatFunc { return h.figure("fig6", 2, 40) }},
		{"table3", h.table3},
		{"ablation", h.ablation},
		{"temp", h.temperature},
		{"scale", h.scale},
	}

	// Phase 1: every selected experiment schedules its jobs; shared
	// baseline runs collapse to one job no matter which experiment asks
	// first.
	type scheduled struct {
		name   string
		format formatFunc
	}
	var selected []scheduled
	for _, e := range experiments {
		if !all && !want[e.name] {
			continue
		}
		selected = append(selected, scheduled{e.name, e.schedule()})
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "no experiments selected by -exp %q\n", *exp)
		os.Exit(1)
	}

	// Phase 2: one parallel run over the whole job DAG.
	manifest := obs.NewManifest("esteem-bench -exp "+*exp, *budget.Seed, os.Args[1:])
	t0 := time.Now()
	if err := h.sweep.Run(tracez.ContextWith(context.Background(), rootSpan)); err != nil {
		fatal(err)
	}
	wall := time.Since(t0)
	rootSpan.End()

	// Phase 3: format and write in submission order (worker-count
	// independent). Each experiment yields a text table and, when it
	// has one, a canonical-JSON payload — the files the golden gate
	// (scripts/golden.sh) compares.
	for _, s := range selected {
		text, data, err := s.format()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.name, err)
			os.Exit(1)
		}
		fmt.Println(text)
		path := filepath.Join(h.outDir, s.name+".txt")
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "== %s -> %s ==\n", s.name, path)
		if data == nil {
			continue
		}
		b, err := obs.MarshalCanonical(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", s.name, err)
			os.Exit(1)
		}
		jsonPath := filepath.Join(h.outDir, s.name+".json")
		if err := os.WriteFile(jsonPath, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "== %s -> %s ==\n", s.name, jsonPath)
	}

	// Throughput summary.
	sims, instrDone := h.sweep.Stats()
	secs := wall.Seconds()
	fmt.Fprintf(os.Stderr, "== %d simulations, %.0fM simulated instructions in %.1fs wall (%d workers): %.2f sims/s, %.1fM instr/s ==\n",
		sims, float64(instrDone)/1e6, secs, h.sweep.Workers(),
		float64(sims)/secs, float64(instrDone)/1e6/secs)
	if *cacheStats {
		fmt.Fprintf(os.Stderr, "== cache %s: %s ==\n", store.Dir(), store.Stats().Summary())
	}

	// Sweep-level manifest (provenance of the whole invocation).
	if *telemetry {
		manifest.WallMillis = float64(wall.Microseconds()) / 1e3
		manifest.SimulatedInstructions = instrDone
		b, err := obs.MarshalCanonical(manifest)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(filepath.Join(h.outDir, "manifest.json"), b, 0o644); err != nil {
			fatal(err)
		}
		writeChromeTrace(tracer, rootSpan, filepath.Join(h.outDir, "trace.json"))
	}
}

// writeChromeTrace exports the sweep's span tree as a Chrome
// trace-event file (loadable at https://ui.perfetto.dev). A trace
// whose spans overflowed the ring is reported, not fatal: the run's
// results are unaffected.
func writeChromeTrace(tracer *tracez.Tracer, root *tracez.Span, path string) {
	tree, err := tracez.BuildTree(tracer.Spans(root.TraceID()))
	if err != nil {
		fmt.Fprintf(os.Stderr, "== trace: not written: %v ==\n", err)
		return
	}
	data, err := tracez.ChromeTrace(tree)
	if err != nil {
		fmt.Fprintf(os.Stderr, "== trace: not written: %v ==\n", err)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "== trace (%d spans) -> %s ==\n", tree.Spans, path)
}

// config builds the scaled run configuration for an experiment.
func (h *harness) config(cores int, retentionMicros float64, tech sim.Technique) sim.Config {
	cfg := sim.DefaultConfig(cores)
	cfg.Technique = tech
	cfg.Technology = h.tech
	cfg.RetentionMicros = retentionMicros
	cfg.MeasureInstr = h.instr
	cfg.WarmupInstr = h.warmup
	cfg.IntervalCycles = h.interval
	cfg.Seed = h.seed
	return cfg
}

// workloads returns the experiment's workload list for a core count.
func (h *harness) workloads(cores int) [][]string {
	var out [][]string
	if cores == 1 {
		for _, p := range trace.Profiles() {
			out = append(out, []string{p.Name})
		}
	} else {
		for _, m := range trace.DualCoreWorkloads() {
			out = append(out, []string{m[0], m[1]})
		}
	}
	if h.quick {
		// Every third workload, keeping the list's class diversity.
		var sub [][]string
		for i, wl := range out {
			if i%3 == 0 {
				sub = append(sub, wl)
			}
		}
		out = sub
	}
	return out
}

func workloadName(wl []string) string {
	if len(wl) == 2 {
		return trace.MixAcronym(wl[0], wl[1])
	}
	return wl[0]
}

// table2 prints the paper's Table 2 as produced by the energy model.
// It runs no simulations.
func (h *harness) table2() formatFunc {
	type row struct {
		SizeMB int     `json:"size_mb"`
		EDynNJ float64 `json:"edyn_nj_per_access"`
		PLeakW float64 `json:"pleak_watts"`
	}
	return func() (string, any, error) {
		var b strings.Builder
		var rows []row
		b.WriteString("Table 2: Energy values for 16-way eDRAM cache (32 nm, CACTI 5.3 values embedded)\n")
		fmt.Fprintf(&b, "%8s %22s %18s\n", "size", "E_dyn (nJ/access)", "P_leak (Watts)")
		for _, mb := range []int{2, 4, 8, 16, 32} {
			dyn, leak, err := energy.L2Energy(mb << 20)
			if err != nil {
				return "", nil, err
			}
			fmt.Fprintf(&b, "%5d MB %22.3f %18.3f\n", mb, dyn*1e9, leak)
			rows = append(rows, row{SizeMB: mb, EDynNJ: dyn * 1e9, PLeakW: leak})
		}
		return b.String(), rows, nil
	}
}

// fig2 runs h264ref under ESTEEM with interval logging and renders
// the active ratio and per-module way counts over time.
func (h *harness) fig2() formatFunc {
	cfg := h.config(1, 50, sim.Esteem)
	cfg.LogIntervals = true
	job := h.sweep.Sim(cfg, []string{"h264ref"})
	type ivRow struct {
		Index          int     `json:"index"`
		ActiveRatioPct float64 `json:"active_ratio_pct"`
		Ways           []int   `json:"ways"`
	}
	type payload struct {
		Workload       string  `json:"workload"`
		Intervals      []ivRow `json:"intervals"`
		ActiveRatioPct float64 `json:"active_ratio_pct"`
		EnergyJ        float64 `json:"energy_j"`
		IPC            float64 `json:"ipc"`
	}
	return func() (string, any, error) {
		r := job.Result()
		var b strings.Builder
		b.WriteString("Fig 2: ESTEEM reconfiguration over intervals, h264ref (1-core, 4MB L2, 50us)\n")
		b.WriteString("Per-interval cache active ratio and active ways in each of the 8 modules.\n\n")
		fmt.Fprintf(&b, "%9s %8s  %s\n", "interval", "activ%", "ways per module")
		for i, iv := range r.Intervals {
			bars := make([]string, len(iv.ActiveWays))
			for m, w := range iv.ActiveWays {
				bars[m] = fmt.Sprintf("%2d", w)
			}
			fmt.Fprintf(&b, "%9d %8.1f  [%s]\n", i, iv.ActiveRatio*100, strings.Join(bars, " "))
		}
		var ratios []float64
		for _, iv := range r.Intervals {
			ratios = append(ratios, iv.ActiveRatio*100)
		}
		b.WriteString("\n")
		b.WriteString(plot.Series("active ratio %", ratios))
		fmt.Fprintf(&b, "\nrun active ratio: %.1f%%  energy: %.4f J  IPC: %.3f\n",
			r.ActiveRatio*100, r.Energy.Total(), r.Cores[0].IPC)
		data := payload{
			Workload:       "h264ref",
			ActiveRatioPct: r.ActiveRatio * 100,
			EnergyJ:        r.Energy.Total(),
			IPC:            r.Cores[0].IPC,
		}
		for i, iv := range r.Intervals {
			data.Intervals = append(data.Intervals, ivRow{
				Index:          i,
				ActiveRatioPct: iv.ActiveRatio * 100,
				Ways:           iv.ActiveWays,
			})
		}
		return b.String(), data, nil
	}
}

// figure schedules one of Figs. 3–6: all workloads under RPV and
// ESTEEM against baseline.
func (h *harness) figure(name string, cores int, retention float64) formatFunc {
	type row struct {
		tech sim.Technique
		cmp  *runner.CompareJob
	}
	var rows []row
	for _, wl := range h.workloads(cores) {
		cfg := h.config(cores, retention, sim.Baseline)
		base := h.sweep.Baseline(cfg, wl)
		for _, tech := range []sim.Technique{sim.RPV, sim.Esteem} {
			tcfg := cfg
			tcfg.Technique = tech
			rows = append(rows, row{tech, h.sweep.Compare(workloadName(wl), base, tcfg, wl)})
		}
	}
	type payload struct {
		Cores           int                        `json:"cores"`
		RetentionMicros float64                    `json:"retention_us"`
		Comparisons     []metrics.Comparison       `json:"comparisons"`
		Summaries       map[string]metrics.Summary `json:"summaries"`
	}
	return func() (string, any, error) {
		groups := map[string][]metrics.Comparison{}
		var csv []metrics.Comparison
		for _, rw := range rows {
			c := rw.cmp.Comparison()
			groups[rw.tech.String()] = append(groups[rw.tech.String()], c)
			csv = append(csv, c)
		}
		title := fmt.Sprintf("%s: %d-core results at %.0fus retention (vs baseline all-line periodic refresh)",
			name, cores, retention)
		if err := os.WriteFile(filepath.Join(h.outDir, name+".csv"), []byte(metrics.FormatCSV(csv)), 0o644); err != nil {
			return "", nil, err
		}
		out := metrics.FormatTable(title, groups)
		// Bar chart of ESTEEM's per-workload savings (the paper's bars).
		var bars []plot.Bar
		for _, c := range groups["esteem"] {
			bars = append(bars, plot.Bar{Label: c.Workload, Value: c.EnergySavingPct})
		}
		sortBars(bars)
		out += "\n" + plot.BarChart("ESTEEM % energy saving per workload", "%", bars, 50)
		data := payload{
			Cores:           cores,
			RetentionMicros: retention,
			Comparisons:     csv,
			Summaries:       map[string]metrics.Summary{},
		}
		for tech, cs := range groups {
			data.Summaries[tech] = metrics.Summarize(cs)
		}
		return out, data, nil
	}
}

// sortBars orders bars by label for stable output.
func sortBars(bars []plot.Bar) {
	sort.Slice(bars, func(i, j int) bool { return bars[i].Label < bars[j].Label })
}

// sensitivityRow describes one Table 3 row: a label and a config
// mutation.
type sensitivityRow struct {
	label  string
	mutate func(*sim.Config)
}

// table3 schedules the parameter-sensitivity study.
func (h *harness) table3() formatFunc {
	type cell struct {
		label string
		cmps  []*runner.CompareJob
	}
	cells := map[int][]cell{}
	for _, cores := range []int{1, 2} {
		for _, row := range h.sensitivityRows(cores) {
			c := cell{label: row.label}
			for _, wl := range h.workloads(cores) {
				cfg := h.config(cores, 50, sim.Esteem)
				row.mutate(&cfg)
				base := h.sweep.Baseline(cfg, wl)
				c.cmps = append(c.cmps, h.sweep.Compare(workloadName(wl), base, cfg, wl))
			}
			cells[cores] = append(cells[cores], c)
		}
	}
	type row struct {
		Cores   int             `json:"cores"`
		Label   string          `json:"label"`
		Summary metrics.Summary `json:"summary"`
	}
	return func() (string, any, error) {
		var b strings.Builder
		var rows []row
		b.WriteString("Table 3: Parameter sensitivity of ESTEEM (means over workloads; 50us retention)\n")
		b.WriteString("Interval rows are scaled 5x from the paper's cycles (paper 5M/10M/15M -> 1M/2M/3M).\n\n")
		for _, cores := range []int{1, 2} {
			fmt.Fprintf(&b, "-- %d-core system --\n", cores)
			fmt.Fprintf(&b, "%-22s %10s %8s %10s %9s %8s\n",
				"row", "%esaving", "ws", "rpki-dec", "mpki-inc", "activ%")
			for _, c := range cells[cores] {
				var cs []metrics.Comparison
				for _, cmp := range c.cmps {
					cs = append(cs, cmp.Comparison())
				}
				s := metrics.Summarize(cs)
				fmt.Fprintf(&b, "%-22s %10.2f %8.3f %10.1f %9.2f %8.1f\n",
					c.label, s.EnergySavingPct, s.WeightedSpeedup, s.RPKIDecrease,
					s.MPKIIncrease, s.ActiveRatioPct)
				rows = append(rows, row{Cores: cores, Label: c.label, Summary: s})
			}
			b.WriteString("\n")
		}
		return b.String(), rows, nil
	}
}

// sensitivityRows lists the paper's Table 3 rows for a core count.
func (h *harness) sensitivityRows(cores int) []sensitivityRow {
	rows := []sensitivityRow{
		{"Default", func(c *sim.Config) {}},
		{"Amin=2", func(c *sim.Config) { c.Esteem.AMin = 2 }},
		{"Amin=4", func(c *sim.Config) { c.Esteem.AMin = 4 }},
		{"alpha=0.95", func(c *sim.Config) { c.Esteem.Alpha = 0.95 }},
		{"alpha=0.99", func(c *sim.Config) { c.Esteem.Alpha = 0.99 }},
	}
	var mods []int
	if cores == 1 {
		mods = []int{2, 4, 16, 32}
	} else {
		mods = []int{4, 8, 32, 64}
	}
	for _, m := range mods {
		m := m
		rows = append(rows, sensitivityRow{fmt.Sprintf("%d modules", m), func(c *sim.Config) { c.Modules = m }})
	}
	rows = append(rows,
		sensitivityRow{"5M interval (scaled)", func(c *sim.Config) { c.IntervalCycles = h.interval / 2 }},
		sensitivityRow{"15M interval (scaled)", func(c *sim.Config) { c.IntervalCycles = h.interval * 3 / 2 }},
		sensitivityRow{"Rs=32", func(c *sim.Config) { c.SamplingRatio = 32 }},
		sensitivityRow{"Rs=128", func(c *sim.Config) { c.SamplingRatio = 128 }},
		sensitivityRow{"8-way L2", func(c *sim.Config) { c.L2Assoc = 8 }},
		sensitivityRow{"32-way L2", func(c *sim.Config) { c.L2Assoc = 32 }},
	)
	if cores == 1 {
		rows = append(rows,
			sensitivityRow{"2MB L2", func(c *sim.Config) { c.L2SizeBytes = 2 << 20 }},
			sensitivityRow{"8MB L2", func(c *sim.Config) { c.L2SizeBytes = 8 << 20 }},
		)
	} else {
		rows = append(rows,
			sensitivityRow{"4MB L2", func(c *sim.Config) { c.L2SizeBytes = 4 << 20 }},
			sensitivityRow{"16MB L2", func(c *sim.Config) { c.L2SizeBytes = 16 << 20 }},
		)
	}
	return rows
}

// ablation schedules the design-choice ablations called out in
// DESIGN.md: refresh-policy alternatives, the non-LRU guard, and
// reconfiguration damping.
func (h *harness) ablation() formatFunc {
	// Refresh-policy alternatives on a representative workload set.
	wls := [][]string{{"gamess"}, {"gobmk"}, {"gcc"}, {"sphinx"}, {"lbm"}, {"mcf"}, {"omnetpp"}}
	techs := []sim.Technique{sim.PeriodicValid, sim.RPV, sim.RPD, sim.SmartRefresh, sim.ECCExtended, sim.EsteemAllLineRefresh, sim.Esteem, sim.NoRefresh}
	type polRow struct {
		wl   []string
		base *runner.SimJob
		runs []*runner.SimJob
	}
	var polRows []polRow
	for _, wl := range wls {
		cfg := h.config(1, 50, sim.Baseline)
		pr := polRow{wl: wl, base: h.sweep.Baseline(cfg, wl)}
		for _, t := range techs {
			tcfg := cfg
			tcfg.Technique = t
			pr.runs = append(pr.runs, h.sweep.Sim(tcfg, wl))
		}
		polRows = append(polRows, pr)
	}

	// Non-LRU guard ablation on the non-LRU workloads.
	type guardRow struct {
		wl      string
		on, off *runner.CompareJob
	}
	var guardRows []guardRow
	for _, wl := range []string{"omnetpp", "xalancbmk", "gcc"} {
		cfg := h.config(1, 50, sim.Esteem)
		base := h.sweep.Baseline(cfg, []string{wl})
		offCfg := cfg
		offCfg.Esteem.DisableNonLRUGuard = true
		guardRows = append(guardRows, guardRow{
			wl:  wl,
			on:  h.sweep.Compare(wl, base, cfg, []string{wl}),
			off: h.sweep.Compare(wl, base, offCfg, []string{wl}),
		})
	}

	// Reconfiguration damping — the paper's named future-work
	// extension (Section 7.2): limit per-interval way changes.
	type dampRow struct {
		wl          string
		plain, damp *runner.CompareJob
	}
	var dampRows []dampRow
	for _, wl := range []string{"sphinx", "cactusADM", "wrf", "bzip2"} {
		cfg := h.config(1, 50, sim.Esteem)
		base := h.sweep.Baseline(cfg, []string{wl})
		dampCfg := cfg
		dampCfg.Esteem.MaxWayDelta = 2
		dampRows = append(dampRows, dampRow{
			wl:    wl,
			plain: h.sweep.Compare(wl, base, cfg, []string{wl}),
			damp:  h.sweep.Compare(wl, base, dampCfg, []string{wl}),
		})
	}

	type policyCell struct {
		Workload  string  `json:"workload"`
		Technique string  `json:"technique"`
		SavingPct float64 `json:"energy_saving_pct"`
	}
	type guardCell struct {
		Workload string             `json:"workload"`
		On       metrics.Comparison `json:"guard_on"`
		Off      metrics.Comparison `json:"guard_off"`
	}
	type dampCell struct {
		Workload string             `json:"workload"`
		Plain    metrics.Comparison `json:"unlimited"`
		Damped   metrics.Comparison `json:"max_way_delta_2"`
	}
	type payload struct {
		Policies []policyCell `json:"refresh_policies"`
		Guard    []guardCell  `json:"non_lru_guard"`
		Damping  []dampCell   `json:"reconfig_damping"`
	}
	return func() (string, any, error) {
		var b strings.Builder
		var data payload
		b.WriteString("Ablations (1-core, 50us retention; % energy saving vs baseline)\n\n")
		fmt.Fprintf(&b, "%-12s", "workload")
		for _, t := range techs {
			fmt.Fprintf(&b, " %14s", t)
		}
		b.WriteString("\n")
		savings := map[sim.Technique][]float64{}
		for _, pr := range polRows {
			fmt.Fprintf(&b, "%-12s", workloadName(pr.wl))
			baseE := pr.base.Result().Energy.Total()
			for i, t := range techs {
				s := energy.SavingPercent(baseE, pr.runs[i].Result().Energy.Total())
				savings[t] = append(savings[t], s)
				fmt.Fprintf(&b, " %14.1f", s)
				data.Policies = append(data.Policies, policyCell{
					Workload: workloadName(pr.wl), Technique: t.String(), SavingPct: s,
				})
			}
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "%-12s", "MEAN")
		for _, t := range techs {
			fmt.Fprintf(&b, " %14.1f", stats.Mean(savings[t]))
		}
		b.WriteString("\n\n")

		b.WriteString("Non-LRU guard ablation (energy saving %% / weighted speedup):\n")
		fmt.Fprintf(&b, "%-12s %16s %16s\n", "workload", "guard on", "guard off")
		for _, gr := range guardRows {
			cOn, cOff := gr.on.Comparison(), gr.off.Comparison()
			fmt.Fprintf(&b, "%-12s %8.1f%%/%.3f %8.1f%%/%.3f\n", gr.wl,
				cOn.EnergySavingPct, cOn.WeightedSpeedup,
				cOff.EnergySavingPct, cOff.WeightedSpeedup)
			data.Guard = append(data.Guard, guardCell{Workload: gr.wl, On: cOn, Off: cOff})
		}

		b.WriteString("\nReconfiguration damping (future-work extension; saving %% / ws / mpki-inc):\n")
		fmt.Fprintf(&b, "%-12s %22s %22s\n", "workload", "unlimited (paper)", "MaxWayDelta=2")
		for _, dr := range dampRows {
			cp, cd := dr.plain.Comparison(), dr.damp.Comparison()
			fmt.Fprintf(&b, "%-12s %7.1f/%.3f/%5.2f %10.1f/%.3f/%5.2f\n", dr.wl,
				cp.EnergySavingPct, cp.WeightedSpeedup, cp.MPKIIncrease,
				cd.EnergySavingPct, cd.WeightedSpeedup, cd.MPKIIncrease)
			data.Damping = append(data.Damping, dampCell{Workload: dr.wl, Plain: cp, Damped: cd})
		}
		return b.String(), data, nil
	}
}

// scale schedules ESTEEM and RPV at 1, 2 and 4 cores (the 4-core
// point is a scalability extension beyond the paper; LLC capacity and
// bandwidth scale with the core count as Section 6.1 does from 1 to
// 2 cores).
func (h *harness) scale() formatFunc {
	workloadSets := map[int][][]string{
		1: {{"gobmk"}, {"gcc"}, {"sphinx"}, {"lbm"}, {"mcf"}, {"gamess"}, {"dealII"}, {"omnetpp"}},
		2: {{"gobmk", "nekbone"}, {"gcc", "gamess"}, {"leslie3d", "lbm"}, {"mcf", "lulesh"},
			{"sphinx", "bwaves"}, {"omnetpp", "gromacs"}, {"calculix", "tonto"}, {"bzip2", "xalancbmk"}},
	}
	var quads [][]string
	for _, m := range trace.QuadCoreWorkloads() {
		quads = append(quads, []string{m[0], m[1], m[2], m[3]})
	}
	workloadSets[4] = quads
	type pair struct {
		rpv, est *runner.CompareJob
	}
	pairs := map[int][]pair{}
	for _, cores := range []int{1, 2, 4} {
		for _, wl := range workloadSets[cores] {
			cfg := h.config(cores, 50, sim.Baseline)
			base := h.sweep.Baseline(cfg, wl)
			rpvCfg, estCfg := cfg, cfg
			rpvCfg.Technique = sim.RPV
			estCfg.Technique = sim.Esteem
			pairs[cores] = append(pairs[cores], pair{
				rpv: h.sweep.Compare(workloadName(wl), base, rpvCfg, wl),
				est: h.sweep.Compare(workloadName(wl), base, estCfg, wl),
			})
		}
	}
	type row struct {
		Cores          int     `json:"cores"`
		L2MB           int     `json:"l2_mb"`
		RPVSavingPct   float64 `json:"rpv_saving_pct"`
		EsteemSaving   float64 `json:"esteem_saving_pct"`
		EsteemWS       float64 `json:"esteem_weighted_speedup"`
		ActiveRatioPct float64 `json:"active_ratio_pct"`
	}
	return func() (string, any, error) {
		var b strings.Builder
		var rows []row
		b.WriteString("Core-count scaling (50us retention; means over workload subsets)\n\n")
		fmt.Fprintf(&b, "%6s %8s %16s %16s %12s %12s\n",
			"cores", "L2", "RPV saving %", "ESTEEM saving %", "ESTEEM ws", "activ %")
		for _, cores := range []int{1, 2, 4} {
			var rpvS, estS, ws, ar []float64
			for _, p := range pairs[cores] {
				rpvS = append(rpvS, p.rpv.Comparison().EnergySavingPct)
				c := p.est.Comparison()
				estS = append(estS, c.EnergySavingPct)
				ws = append(ws, c.WeightedSpeedup)
				ar = append(ar, c.ActiveRatioPct)
			}
			cfg := sim.DefaultConfig(cores)
			fmt.Fprintf(&b, "%6d %6dMB %16.2f %16.2f %12.3f %12.1f\n",
				cores, cfg.L2SizeBytes>>20, stats.Mean(rpvS), stats.Mean(estS),
				stats.GeoMean(ws), stats.Mean(ar))
			rows = append(rows, row{
				Cores: cores, L2MB: cfg.L2SizeBytes >> 20,
				RPVSavingPct: stats.Mean(rpvS), EsteemSaving: stats.Mean(estS),
				EsteemWS: stats.GeoMean(ws), ActiveRatioPct: stats.Mean(ar),
			})
		}
		return b.String(), rows, nil
	}
}

// temperature schedules the operating-temperature sweep using the
// paper's exponential retention model (Section 6.1: 40 µs at 105 °C
// per Barth et al., 50 µs assumed at 60 °C), extending the Section
// 7.3 observation that lower retention periods magnify both the
// refresh problem and ESTEEM's advantage.
func (h *harness) temperature() formatFunc {
	wls := [][]string{{"gobmk"}, {"gcc"}, {"sphinx"}, {"lbm"}}
	temps := []float64{45, 60, 75, 90, 105}
	type cell struct {
		base     *runner.SimJob
		rpv, est *runner.SimJob
	}
	cells := map[float64][]cell{}
	for _, temp := range temps {
		for _, wl := range wls {
			cfg := h.config(1, 50, sim.Baseline)
			cfg.RetentionMicros = 0
			cfg.TemperatureC = temp
			c := cell{base: h.sweep.Baseline(cfg, wl)}
			rpvCfg, estCfg := cfg, cfg
			rpvCfg.Technique = sim.RPV
			estCfg.Technique = sim.Esteem
			c.rpv = h.sweep.Sim(rpvCfg, wl)
			c.est = h.sweep.Sim(estCfg, wl)
			cells[temp] = append(cells[temp], c)
		}
	}
	type row struct {
		TempC           float64 `json:"temp_c"`
		RetentionMicros float64 `json:"retention_us"`
		RPVSavingPct    float64 `json:"rpv_saving_pct"`
		EsteemSaving    float64 `json:"esteem_saving_pct"`
		RefreshSharePct float64 `json:"base_refresh_share_pct"`
	}
	return func() (string, any, error) {
		var b strings.Builder
		var rows []row
		b.WriteString("Temperature sweep (1-core; retention from the paper's exponential model)\n\n")
		fmt.Fprintf(&b, "%6s %12s %16s %16s %14s\n",
			"temp C", "retention us", "RPV saving %", "ESTEEM saving %", "base rfsh/L2 %")
		for _, temp := range temps {
			var rpvS, estS, share []float64
			for _, c := range cells[temp] {
				base := c.base.Result()
				share = append(share, 100*base.Energy.L2Refresh/base.Energy.L2())
				rpvS = append(rpvS, energy.SavingPercent(base.Energy.Total(), c.rpv.Result().Energy.Total()))
				estS = append(estS, energy.SavingPercent(base.Energy.Total(), c.est.Result().Energy.Total()))
			}
			ret := retention.Micros(temp)
			fmt.Fprintf(&b, "%6.0f %12.1f %16.2f %16.2f %14.1f\n",
				temp, ret, stats.Mean(rpvS), stats.Mean(estS), stats.Mean(share))
			rows = append(rows, row{
				TempC: temp, RetentionMicros: ret,
				RPVSavingPct: stats.Mean(rpvS), EsteemSaving: stats.Mean(estS),
				RefreshSharePct: stats.Mean(share),
			})
		}
		b.WriteString("\n(means over gobmk, gcc, sphinx, lbm)\n")
		return b.String(), rows, nil
	}
}
