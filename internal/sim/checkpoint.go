// Checkpoint/restore: the full simulator state serialised at an
// interval boundary, so a later run of the same configuration with a
// longer measured-instruction horizon can resume from the boundary
// instead of re-simulating the shared prefix.
//
// The checkpoint bytes are horizon-independent: per-core measurement
// budgets and window-end snapshots are excluded (the restoring run
// re-arms them from its own config), so the same boundary produces
// the same bytes whether reached by a short run or a long one. A
// checkpoint is usable for horizon M iff every core's measured-so-far
// instruction count is strictly below M — once a core's window has
// closed, its end snapshot (taken mid-run) is not reconstructible.
package sim

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/energy"
	"repro/internal/tech"
	"repro/internal/trace"
)

// checkpointVersion is bumped whenever the serialised layout changes;
// restore rejects other versions. Version 2 added the technology name
// to the header, write-hit counters to every activity record and the
// cache section, and wear state for endurance-tracked technologies.
const checkpointVersion = 2

// statefulComponent is the serialisation contract shared by every
// checkpointable part of the system (workload generators, refresh
// policies).
type statefulComponent interface {
	AppendState(*ckpt.Writer)
	RestoreState(*ckpt.Reader) error
}

// CheckpointInfo describes one checkpoint opportunity, passed to the
// hook installed with SetCheckpointHook.
type CheckpointInfo struct {
	// Seq is the checkpoint sequence number: the count of measured
	// interval boundaries processed so far. 0 is the
	// warmup/measurement seam.
	Seq int
	// Frontier is the simulated cycle of the boundary.
	Frontier uint64
	// MinMeasured and MaxMeasured bound the per-core measured
	// instruction counts at the boundary. The checkpoint is usable
	// for any horizon strictly greater than MaxMeasured.
	MinMeasured, MaxMeasured uint64
}

// SetCheckpointHook installs a hook that fires at the
// warmup/measurement seam (Seq 0) and after every measured interval
// boundary. The hook decides whether to serialise (by calling
// Checkpoint) — firing is cheap, serialising is not. Call before Run.
func (s *Simulator) SetCheckpointHook(fn func(CheckpointInfo)) { s.ckptHook = fn }

// checkpointInfo summarises the current boundary for the hook.
func (s *Simulator) checkpointInfo() CheckpointInfo {
	info := CheckpointInfo{Seq: s.measuredBoundaries, Frontier: s.frontier(), MinMeasured: ^uint64(0)}
	for _, c := range s.cores {
		m := c.MeasuredSoFar()
		if m < info.MinMeasured {
			info.MinMeasured = m
		}
		if m > info.MaxMeasured {
			info.MaxMeasured = m
		}
	}
	return info
}

// Checkpointable reports whether every workload source supports
// checkpointing (the built-in synthetic generators do; user-supplied
// trace.Source implementations may not).
func (s *Simulator) Checkpointable() bool {
	for _, src := range s.srcs {
		if _, ok := src.(statefulComponent); !ok {
			return false
		}
	}
	return true
}

// Checkpoint serialises the complete simulator state. It must be
// called at an interval boundary (in practice: from a checkpoint
// hook), while measuring.
func (s *Simulator) Checkpoint() ([]byte, error) {
	if !s.measuring {
		return nil, fmt.Errorf("sim: checkpoint outside the measurement phase")
	}
	w := ckpt.NewWriter()
	w.Section("SIMC")
	w.U32(checkpointVersion)
	w.Int(len(s.cores))
	w.Int(int(s.cfg.Technique))
	w.String(tech.CanonicalName(s.cfg.Technology))
	w.U64(s.cfg.Seed)
	w.Int(s.l2.NumSets())
	w.Int(s.l2.Params().Assoc)
	for i, c := range s.cores {
		c.AppendState(w)
		src, ok := s.srcs[i].(statefulComponent)
		if !ok {
			return nil, fmt.Errorf("sim: source %q (core %d) does not support checkpointing", s.srcs[i].Name(), i)
		}
		src.AppendState(w)
	}
	for _, l1 := range s.l1 {
		l1.AppendState(w)
	}
	s.l2.AppendState(w)
	s.eng.AppendState(w)
	if st, ok := s.eng.Policy().(statefulComponent); ok {
		st.AppendState(w)
	}
	s.mm.AppendState(w)
	if s.ctl != nil {
		s.ctl.AppendState(w)
	}
	s.appendSimState(w)
	return w.Bytes(), nil
}

// RestoreCheckpoint loads a checkpoint produced by Checkpoint into a
// freshly constructed simulator of the same configuration (modulo
// MeasureInstr, which may be larger), re-arming the measurement
// windows for this configuration's horizon. Follow with ResumeRun.
func (s *Simulator) RestoreCheckpoint(data []byte) error {
	r := ckpt.NewReader(data)
	r.Section("SIMC")
	if v := r.U32(); r.Err() == nil && v != checkpointVersion {
		return fmt.Errorf("sim: checkpoint version %d, want %d", v, checkpointVersion)
	}
	cores := r.Int()
	technique := r.Int()
	technology := r.String()
	seed := r.U64()
	sets := r.Int()
	assoc := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if cores != len(s.cores) || technique != int(s.cfg.Technique) ||
		technology != tech.CanonicalName(s.cfg.Technology) || seed != s.cfg.Seed ||
		sets != s.l2.NumSets() || assoc != s.l2.Params().Assoc {
		return fmt.Errorf("sim: checkpoint header (cores=%d technique=%d technology=%s seed=%d sets=%d assoc=%d) does not match this configuration",
			cores, technique, technology, seed, sets, assoc)
	}
	for i, c := range s.cores {
		if err := c.RestoreState(r); err != nil {
			return err
		}
		src, ok := s.srcs[i].(statefulComponent)
		if !ok {
			return fmt.Errorf("sim: source %q (core %d) does not support checkpointing", s.srcs[i].Name(), i)
		}
		if err := src.RestoreState(r); err != nil {
			return err
		}
	}
	for _, l1 := range s.l1 {
		if err := l1.RestoreState(r); err != nil {
			return err
		}
	}
	// The L2 restores before the refresh policy: policies re-derive
	// their per-line bookkeeping from (and validate it against) the
	// cache's valid/dirty state.
	if err := s.l2.RestoreState(r); err != nil {
		return err
	}
	if err := s.eng.RestoreState(r); err != nil {
		return err
	}
	if st, ok := s.eng.Policy().(statefulComponent); ok {
		if err := st.RestoreState(r); err != nil {
			return err
		}
	}
	if err := s.mm.RestoreState(r); err != nil {
		return err
	}
	if s.ctl != nil {
		if err := s.ctl.RestoreState(r); err != nil {
			return err
		}
	}
	if err := s.restoreSimState(r); err != nil {
		return err
	}
	if err := r.Done(); err != nil {
		return err
	}
	// Re-arm the measurement windows for this run's horizon. A core
	// whose measured count already reached the horizon cannot resume —
	// its window-end snapshot was taken mid-run and is not part of the
	// checkpoint (by design, so checkpoint bytes are
	// horizon-independent).
	for _, c := range s.cores {
		if !c.ResetMeasureBudget(s.cfg.MeasureInstr) {
			return fmt.Errorf("sim: checkpoint unusable: core %d already measured %d >= horizon %d",
				c.ID(), c.MeasuredSoFar(), s.cfg.MeasureInstr)
		}
	}
	return nil
}

// appendSimState serialises the simulator-level bookkeeping (interval
// accounting, measured aggregates and the per-interval log).
func (s *Simulator) appendSimState(w *ckpt.Writer) {
	w.Section("SIMS")
	w.U64(s.clk.Cycle)
	w.U64(s.lastBoundary)
	w.U64(s.nextBoundary)
	w.Int(s.measuredBoundaries)
	w.Int(s.obsIdx)
	w.U64(s.reconfigWB)
	appendActivity(w, s.totalActivity)
	w.U64(s.l2Measured.Hits)
	w.U64(s.l2Measured.WriteHits)
	w.U64(s.l2Measured.Misses)
	w.U64(s.l2Measured.Writebacks)
	w.U64(s.l2Measured.Fills)
	w.U64(s.mmMeasured.Reads)
	w.U64(s.mmMeasured.Writebacks)
	w.U64(s.mmMeasured.QueueStallCycles)
	w.U64(s.mmMeasured.WriteBufferStallCycles)
	w.Int(len(s.intervals))
	for _, iv := range s.intervals {
		w.U64(iv.EndCycle)
		w.F64(iv.ActiveRatio)
		w.IntSlice(iv.ActiveWays)
		appendActivity(w, iv.Activity)
	}
}

// restoreSimState loads the simulator-level bookkeeping and marks the
// simulator as mid-measurement.
func (s *Simulator) restoreSimState(r *ckpt.Reader) error {
	r.Section("SIMS")
	s.clk.Cycle = r.U64()
	s.lastBoundary = r.U64()
	s.nextBoundary = r.U64()
	s.measuredBoundaries = r.Int()
	s.obsIdx = r.Int()
	s.reconfigWB = r.U64()
	s.totalActivity = readActivity(r)
	s.l2Measured.Hits = r.U64()
	s.l2Measured.WriteHits = r.U64()
	s.l2Measured.Misses = r.U64()
	s.l2Measured.Writebacks = r.U64()
	s.l2Measured.Fills = r.U64()
	s.mmMeasured.Reads = r.U64()
	s.mmMeasured.Writebacks = r.U64()
	s.mmMeasured.QueueStallCycles = r.U64()
	s.mmMeasured.WriteBufferStallCycles = r.U64()
	n := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if s.lastBoundary >= s.nextBoundary {
		r.Failf("sim: restored boundary clock out of order (%d >= %d)", s.lastBoundary, s.nextBoundary)
		return r.Err()
	}
	if s.measuredBoundaries < 0 || s.obsIdx < 0 || n < 0 {
		r.Failf("sim: restored negative bookkeeping counters")
		return r.Err()
	}
	if n > 0 && !s.cfg.LogIntervals {
		r.Failf("sim: checkpoint logs %d intervals but LogIntervals is off", n)
		return r.Err()
	}
	s.intervals = s.intervals[:0]
	for i := 0; i < n; i++ {
		iv := IntervalRecord{
			EndCycle:    r.U64(),
			ActiveRatio: r.F64(),
			ActiveWays:  r.IntSlice(),
			Activity:    readActivity(r),
		}
		if len(iv.ActiveWays) == 0 {
			// Non-reconfiguring techniques log no per-module widths;
			// keep the restored record identical to the original nil.
			iv.ActiveWays = nil
		}
		if r.Err() != nil {
			return r.Err()
		}
		s.intervals = append(s.intervals, iv)
	}
	s.measuring = true
	return r.Err()
}

// appendActivity writes one energy.Activity record.
func appendActivity(w *ckpt.Writer, a energy.Activity) {
	w.U64(a.Cycles)
	w.U64(a.L2Hits)
	w.U64(a.L2WriteHits)
	w.U64(a.L2Misses)
	w.U64(a.Refreshes)
	w.F64(a.ActiveFraction)
	w.U64(a.MMAccesses)
	w.U64(a.LinesTransitioned)
}

// readActivity reads one energy.Activity record.
func readActivity(r *ckpt.Reader) energy.Activity {
	return energy.Activity{
		Cycles:            r.U64(),
		L2Hits:            r.U64(),
		L2WriteHits:       r.U64(),
		L2Misses:          r.U64(),
		Refreshes:         r.U64(),
		ActiveFraction:    r.F64(),
		MMAccesses:        r.U64(),
		LinesTransitioned: r.U64(),
	}
}

// Sources returns the per-core workload sources as supplied to the
// constructor (before address-space offsetting); tests use it to
// drive source-level assertions.
func (s *Simulator) Sources() []trace.Source { return s.srcs }
