// Package core implements the ESTEEM controller — the paper's primary
// contribution (Mittal, Vetter, Li, "Improving Energy Efficiency of
// Embedded DRAM Caches for High-end Computing Systems", HPDC'14).
//
// The controller runs the energy-saving algorithm (the paper's
// Algorithm 1) at the end of every interval: from the leader-set
// hit-position histograms it decides, independently for every cache
// module, how many ways to keep powered on, then applies the decision
// to the cache (flushing the ways being disabled). It implements the
// paper's three decision rules:
//
//   - keep enough ways to cover at least an α fraction of the
//     module's hits (LRU-stack property: hits concentrate in the
//     most-recent positions);
//   - never drop below A_min ways (A_min=1 would make the LLC
//     direct-mapped);
//   - if a module shows non-LRU behaviour (hit counts that do not
//     decrease monotonically down the recency stack, at least A/4
//     anomalies), turn off at most one way (keep >= A-1).
package core

import (
	"fmt"

	"repro/internal/cache"
)

// Config holds the ESTEEM algorithm parameters (Section 7 defaults).
type Config struct {
	// Alpha is the hit-coverage threshold α (paper default 0.97).
	Alpha float64
	// AMin is the minimum number of ways kept on (paper default 3).
	AMin int
	// DisableNonLRUGuard turns off Algorithm 1's non-LRU protection
	// (lines 4–13, 21–23). Not part of the paper's configuration —
	// provided for the ablation benches listed in DESIGN.md.
	DisableNonLRUGuard bool
	// MaxWayDelta, when positive, limits how many ways a module's
	// configuration may change per interval. This implements the
	// extension the paper names as future work in Section 7.2
	// ("restricting the maximum number of change in associativity in
	// each interval"), damping reconfiguration oscillation and its
	// flush/refill overhead. 0 (the paper's algorithm) means
	// unlimited.
	MaxWayDelta int
}

// DefaultConfig returns the parameter values used for the paper's
// headline results.
func DefaultConfig() Config { return Config{Alpha: 0.97, AMin: 3} }

// Validate checks the configuration against an associativity A.
func (c Config) Validate(assoc int) error {
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("core: alpha %v out of (0,1]", c.Alpha)
	}
	if c.AMin < 1 || c.AMin > assoc {
		return fmt.Errorf("core: A_min %d out of [1,%d]", c.AMin, assoc)
	}
	if c.MaxWayDelta < 0 {
		return fmt.Errorf("core: negative MaxWayDelta")
	}
	return nil
}

// IsNonLRU reports whether a module's hit-position histogram shows
// non-LRU behaviour per the paper's test: count positions i where
// hits[i] < hits[i+1]; the module is non-LRU when the count reaches
// A/4 (integer division, as in Algorithm 1 line 11).
func IsNonLRU(hits []uint64) bool {
	anomalies := 0
	for i := 0; i+1 < len(hits); i++ {
		if hits[i] < hits[i+1] {
			anomalies++
		}
	}
	return anomalies >= len(hits)/4
}

// DecideModule runs Algorithm 1 for a single module: given the hits
// at each LRU position (hits[0] = MRU), it returns the number of ways
// to keep active. It panics on an invalid config, which Controller
// construction rules out.
func DecideModule(hits []uint64, cfg Config) int {
	a := len(hits)
	if err := cfg.Validate(a); err != nil {
		panic(err)
	}
	nonLRU := !cfg.DisableNonLRUGuard && IsNonLRU(hits)
	var tot uint64
	for _, h := range hits {
		tot += h
	}
	threshold := cfg.Alpha * float64(tot)
	var acc uint64
	for i := 0; i < a; i++ {
		acc += hits[i]
		if float64(acc) >= threshold {
			n := max(cfg.AMin, i+1)
			if nonLRU {
				// Algorithm 1 line 22: for non-LRU modules at most
				// one way is turned off. The paper's pseudocode
				// overwrites the A_min clamp here (relevant only in
				// the degenerate case A_min > A-1), and we follow it.
				n = max(a-1, i+1)
			}
			return n
		}
	}
	// Unreachable for tot > 0 since acc reaches tot; for tot == 0 the
	// first iteration already satisfied 0 >= 0. Kept for safety.
	return a
}

// Decision is the controller's output for one interval.
type Decision struct {
	// ActiveWays[m] is the chosen way count for module m.
	ActiveWays []int
	// NonLRU[m] records whether module m tripped the non-LRU test.
	NonLRU []bool
	// LinesTransitioned is N_L: line frames powered on or off by
	// applying this decision (charged at E_χ each by the energy
	// model).
	LinesTransitioned int
	// Invalidated and Writebacks count the lines flushed from
	// disabled ways and how many of those were dirty.
	Invalidated int
	Writebacks  int
}

// ReconfigurableCache is the slice of the cache API the controller
// needs; *cache.Cache satisfies it.
type ReconfigurableCache interface {
	NumModules() int
	SetsPerModule() int
	NumLeaderSets() int
	NumSets() int
	IsLeader(setIdx int) bool
	HitPositions(m int) []uint64
	ActiveWays(m int) int
	SetActiveWays(m, n int) (invalidated, writebacks int)
	ResetInterval()
	Params() cache.Params
}

// The real cache must satisfy the interface.
var _ ReconfigurableCache = (*cache.Cache)(nil)

// Controller drives ESTEEM reconfiguration of one cache.
type Controller struct {
	cfg   Config
	cache ReconfigurableCache
	assoc int

	// cumulative statistics
	intervals         int
	linesTransitioned uint64
	writebacks        uint64
	invalidated       uint64
	nonLRUEvents      uint64
}

// NewController validates cfg against the cache's associativity and
// returns a controller. The cache should have been built with leader
// sets (SamplingRatio > 0); without them the histograms are empty and
// the controller will always shrink to A_min — it returns an error to
// catch that misconfiguration.
func NewController(c ReconfigurableCache, cfg Config) (*Controller, error) {
	assoc := c.Params().Assoc
	if err := cfg.Validate(assoc); err != nil {
		return nil, err
	}
	if c.NumLeaderSets() == 0 {
		return nil, fmt.Errorf("core: cache %q has no leader sets; ESTEEM needs SamplingRatio > 0", c.Params().Name)
	}
	return &Controller{cfg: cfg, cache: c, assoc: assoc}, nil
}

// Config returns the controller's algorithm parameters.
func (ct *Controller) Config() Config { return ct.cfg }

// EndInterval consumes the interval's profiling data, runs Algorithm 1
// for every module, applies the per-module decisions to the cache, and
// resets the interval histograms. It returns the decision so the
// simulator can charge reconfiguration energy and writeback traffic.
func (ct *Controller) EndInterval() Decision {
	m := ct.cache.NumModules()
	d := Decision{
		ActiveWays: make([]int, m),
		NonLRU:     make([]bool, m),
	}
	followerSets := ct.followerSetsPerModule()
	for mod := 0; mod < m; mod++ {
		hits := ct.cache.HitPositions(mod)
		n := DecideModule(hits, ct.cfg)
		if ct.cfg.MaxWayDelta > 0 {
			// Future-work extension (Section 7.2): damp per-interval
			// configuration swings to bound flush/refill overhead.
			prev := ct.cache.ActiveWays(mod)
			if n > prev+ct.cfg.MaxWayDelta {
				n = prev + ct.cfg.MaxWayDelta
			} else if n < prev-ct.cfg.MaxWayDelta {
				n = prev - ct.cfg.MaxWayDelta
			}
		}
		d.ActiveWays[mod] = n
		d.NonLRU[mod] = IsNonLRU(hits)
		if d.NonLRU[mod] {
			ct.nonLRUEvents++
		}
		old := ct.cache.ActiveWays(mod)
		if n != old {
			// Every follower-set line frame in the toggled ways
			// changes power state (N_L in the energy model).
			delta := n - old
			if delta < 0 {
				delta = -delta
			}
			d.LinesTransitioned += delta * followerSets[mod]
		}
		inv, wb := ct.cache.SetActiveWays(mod, n)
		d.Invalidated += inv
		d.Writebacks += wb
	}
	ct.cache.ResetInterval()
	ct.intervals++
	ct.linesTransitioned += uint64(d.LinesTransitioned)
	ct.writebacks += uint64(d.Writebacks)
	ct.invalidated += uint64(d.Invalidated)
	return d
}

// followerSetsPerModule counts the non-leader sets in each module.
func (ct *Controller) followerSetsPerModule() []int {
	m := ct.cache.NumModules()
	spm := ct.cache.SetsPerModule()
	out := make([]int, m)
	for mod := 0; mod < m; mod++ {
		leaders := 0
		for s := mod * spm; s < (mod+1)*spm; s++ {
			if ct.cache.IsLeader(s) {
				leaders++
			}
		}
		out[mod] = spm - leaders
	}
	return out
}

// Stats is the controller's cumulative activity record.
type Stats struct {
	Intervals         int
	LinesTransitioned uint64
	Writebacks        uint64
	Invalidated       uint64
	NonLRUEvents      uint64
}

// Stats returns cumulative controller statistics.
func (ct *Controller) Stats() Stats {
	return Stats{
		Intervals:         ct.intervals,
		LinesTransitioned: ct.linesTransitioned,
		Writebacks:        ct.writebacks,
		Invalidated:       ct.invalidated,
		NonLRUEvents:      ct.nonLRUEvents,
	}
}

// OverheadPercent evaluates the paper's Equation (1): the counter
// storage overhead of ESTEEM as a percentage of L2 capacity, for a
// cache with S sets, associativity A, M modules, block size B bits and
// tag size G bits, assuming 40-bit counters.
func OverheadPercent(sets, assoc, modules, blockBits, tagBits int) float64 {
	counters := (2*assoc + 1) * modules * 40
	capacity := sets * assoc * (blockBits + tagBits)
	return float64(counters) / float64(capacity) * 100
}
