package trace

import (
	"sort"

	"repro/internal/ckpt"
	"repro/internal/xrand"
)

// AppendState serialises the generator's mutable state. The profile
// itself is not serialised: a checkpoint is only restored into a
// generator built from the same (profile, seed) pair, which the
// caller guarantees by keying checkpoints on the full configuration.
func (g *Generator) AppendState(w *ckpt.Writer) {
	w.Section("TGEN")
	w.U64(g.rng.State())
	w.Int(g.zipfKey)
	// The per-size Zipf substreams: sorted for deterministic bytes.
	keys := make([]int, 0, len(g.zipfCache))
	for k := range g.zipfCache {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.Int(k)
		w.U64(g.zipfCache[k].RNGState())
	}
	w.U64(g.streamPos)
	w.U64Slice(g.scanPos)
	w.Int(g.scanNext)
	w.Int(g.burstLeft)
	w.U64(g.burstLine)
	w.U64(g.burstOff)
	w.U64(g.refs)
	w.Int(g.phaseIdx)
}

// RestoreState rebuilds the generator's mutable state from a stream
// written by AppendState. The receiver must have been constructed
// with NewGenerator using the same profile and seed. The Zipf
// sampler cache is rebuilt from the serialised per-entry substream
// states without drawing from the main stream, so a restored
// generator continues the reference sequence exactly where the
// checkpointed one left off.
func (g *Generator) RestoreState(r *ckpt.Reader) error {
	r.Section("TGEN")
	rngState := r.U64()
	zipfKey := r.Int()
	n := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if n < 0 || n > 1<<20 {
		r.Failf("trace: unreasonable zipf cache size %d", n)
		return r.Err()
	}
	cache := make(map[int]*xrand.Zipf, n)
	for i := 0; i < n; i++ {
		k := r.Int()
		st := r.U64()
		if r.Err() != nil {
			return r.Err()
		}
		if k <= 0 {
			r.Failf("trace: invalid zipf cache key %d", k)
			return r.Err()
		}
		lines := k * 1024 / lineBytes
		if lines < 1 {
			lines = 1
		}
		cache[k] = xrand.NewZipf(xrand.New(st), lines, g.p.ZipfS)
	}
	z, ok := cache[zipfKey]
	if !ok {
		r.Failf("trace: active zipf key %d missing from cache", zipfKey)
		return r.Err()
	}
	streamPos := r.U64()
	scanPos := make([]uint64, len(g.scanPos))
	r.U64SliceInto(scanPos)
	scanNext := r.Int()
	burstLeft := r.Int()
	burstLine := r.U64()
	burstOff := r.U64()
	refs := r.U64()
	phaseIdx := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if len(scanPos) > 0 && (scanNext < 0 || scanNext >= len(scanPos)) {
		r.Failf("trace: scanNext %d out of range", scanNext)
		return r.Err()
	}
	g.rng.SetState(rngState)
	g.zipfCache = cache
	g.zipf = z
	g.zipfKey = zipfKey
	g.streamPos = streamPos
	copy(g.scanPos, scanPos)
	g.scanNext = scanNext
	g.burstLeft = burstLeft
	g.burstLine = burstLine
	g.burstOff = burstOff
	g.refs = refs
	g.phaseIdx = phaseIdx
	return nil
}
