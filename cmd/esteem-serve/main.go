// Command esteem-serve runs the simulation service: an HTTP daemon
// accepting sweep jobs (POST /v1/jobs), streaming their progress over
// server-sent events, and serving results as content-addressed run
// artifacts that are byte-identical whether computed fresh, replayed
// from cache, or served after a restart.
//
// Examples:
//
//	esteem-serve -addr 127.0.0.1:8344 -cache results/castore
//	esteem-serve -addr 127.0.0.1:0 -addr-file /tmp/esteem.addr
//
// SIGINT/SIGTERM drain gracefully: the listener closes, queued and
// in-flight jobs finish within -drain-timeout, and the rest are
// cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/castore"
	"repro/internal/cliflags"
	"repro/internal/serve"
	"repro/internal/tracez"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8344", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	cacheDir := flag.String("cache", "", "content-addressed result store directory (empty = in-memory only)")
	memEntries := flag.Int("mem-entries", 256, "in-memory cache entries (LRU over the disk layer)")
	workers := flag.Int("workers", 2, "concurrent jobs")
	simJobs := flag.Int("sim-jobs", 0, "parallel simulations per job (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 16, "admission queue depth (full queue rejects with 429)")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job execution timeout")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for queued and in-flight jobs")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "json", "structured log format: json or text")
	traceSample := flag.Float64("trace-sample", 1, "fraction of traces recorded (head-based; 1 = all)")
	traceRing := flag.Int("trace-ring", 4096, "completed spans retained for /v1/jobs/{id}/trace")
	version := cliflags.VersionFlag(flag.CommandLine)
	flag.Parse()

	if *version {
		fmt.Println(cliflags.PrintVersion("esteem-serve"))
		return nil
	}

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	store, err := castore.Open(*cacheDir, *memEntries)
	if err != nil {
		return err
	}
	srv, err := serve.New(serve.Config{
		Store:      store,
		Workers:    *workers,
		SimWorkers: *simJobs,
		QueueDepth: *queue,
		JobTimeout: *jobTimeout,
		Tracer:     tracez.New(tracez.Config{SampleRatio: *traceSample, RingSize: *traceRing}),
		Logger:     logger,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "esteem-serve listening on http://%s\n", bound)
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "esteem-serve result store: %s\n", store.Dir())
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "esteem-serve draining...")

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "esteem-serve: http shutdown: %v\n", err)
	}
	if err := srv.Drain(shutdownCtx); err != nil {
		return fmt.Errorf("esteem-serve: drain cut short: %w", err)
	}
	st := store.Stats()
	fmt.Fprintf(os.Stderr, "esteem-serve: store: %s\n", st.Summary())
	return nil
}

// buildLogger assembles the daemon's structured logger (stderr, so
// log lines never mix with protocol output).
func buildLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want json or text)", format)
	}
}
