package obs

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func sampleArtifact() RunArtifact {
	return RunArtifact{
		SchemaVersion: SchemaVersion,
		Manifest:      NewManifest("fail-test", 7, map[string]int{"x": 1}),
		Summary:       RunSummary{Instructions: 1000, Cycles: 2000},
		Intervals:     sampleIntervals(),
	}
}

// failAfterWriter fails with errInjected once n bytes have been
// accepted.
type failAfterWriter struct {
	n       int
	written int
}

var errInjected = errors.New("injected write failure")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		accepted := w.n - w.written
		if accepted < 0 {
			accepted = 0
		}
		w.written += accepted
		return accepted, errInjected
	}
	w.written += len(p)
	return len(p), nil
}

// shortWriter accepts half of every write and reports no error — the
// misbehaviour io.Writer contracts forbid but sinks must still catch.
type shortWriter struct{ io.Writer }

func (w shortWriter) Write(p []byte) (int, error) {
	n, err := w.Writer.Write(p[:len(p)/2])
	return n, err
}

func TestEncodeRunSurfacesWriteError(t *testing.T) {
	a := sampleArtifact()
	// A writer that fails immediately and one that fails mid-stream.
	for _, limit := range []int{0, 10, 100} {
		w := &failAfterWriter{n: limit}
		err := EncodeRun(w, a)
		if !errors.Is(err, errInjected) {
			t.Fatalf("limit %d: EncodeRun returned %v, want injected error", limit, err)
		}
	}
}

func TestEncodeRunSurfacesShortWrite(t *testing.T) {
	var buf bytes.Buffer
	err := EncodeRun(shortWriter{&buf}, sampleArtifact())
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("EncodeRun returned %v, want io.ErrShortWrite", err)
	}
}

func TestEncodeRunMatchesMarshalCanonical(t *testing.T) {
	a := sampleArtifact()
	var buf bytes.Buffer
	if err := EncodeRun(&buf, a); err != nil {
		t.Fatal(err)
	}
	want, err := MarshalCanonical(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("EncodeRun bytes differ from MarshalCanonical")
	}
}

// TestNewDirSinkUnwritablePath routes the sink directory through an
// existing regular file, which MkdirAll must reject regardless of
// privileges (chmod-based denial is invisible to root, under which CI
// containers run).
func TestNewDirSinkUnwritablePath(t *testing.T) {
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDirSink(filepath.Join(blocker, "runs")); err == nil {
		t.Fatal("NewDirSink created a directory under a regular file")
	}
}

// TestWriteRunDirectoryVanished covers the sink's window between
// creation and write: if the directory is gone, WriteRun must report
// it, not drop the artifact.
func TestWriteRunDirectoryVanished(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirSink(filepath.Join(dir, "runs"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(s.Dir()); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteRun(0, sampleArtifact()); err == nil {
		t.Fatal("WriteRun succeeded into a removed directory")
	}
}

// TestWriteRunFileBytesUnchanged pins WriteRun's on-disk bytes to
// MarshalCanonical exactly: the golden CI gate diffs these files
// byte-for-byte, so the writer-based path must not change them.
func TestWriteRunFileBytesUnchanged(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := sampleArtifact()
	if err := s.WriteRun(3, a); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "0003-fail-test.json"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := MarshalCanonical(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("WriteRun file bytes differ from MarshalCanonical")
	}
}
