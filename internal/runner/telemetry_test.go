package runner

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// artifactSweep runs a fig3-style mini-sweep with a DirSink attached
// and returns the artifact directory's file names plus each artifact
// decoded with its timing fields zeroed.
func artifactSweep(t *testing.T, workers int) ([]string, map[string]obs.RunArtifact) {
	t.Helper()
	dir := t.TempDir()
	sink, err := obs.NewDirSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSweep(workers)
	s.SetSink(sink)
	for _, wl := range [][]string{{"gamess"}, {"gcc"}} {
		cfg := miniCfg(sim.Baseline)
		base := s.Baseline(cfg, wl)
		ecfg := cfg
		ecfg.Technique = sim.Esteem
		s.Compare(wl[0], base, ecfg, wl)
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	arts := make(map[string]obs.RunArtifact)
	for _, e := range ents {
		names = append(names, e.Name())
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var a obs.RunArtifact
		if err := json.Unmarshal(b, &a); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		a.Manifest = a.Manifest.Deterministic()
		arts[e.Name()] = a
	}
	sort.Strings(names)
	return names, arts
}

// TestSweepArtifactsDeterministicAcrossWorkerCounts asserts that a
// sink-equipped sweep produces the same artifact files — same names,
// same contents up to the manifest's timing fields — whether it runs
// on 1 worker or 4.
func TestSweepArtifactsDeterministicAcrossWorkerCounts(t *testing.T) {
	seqNames, seqArts := artifactSweep(t, 1)
	parNames, parArts := artifactSweep(t, 4)
	if !reflect.DeepEqual(seqNames, parNames) {
		t.Fatalf("artifact file sets differ:\n  1 worker:  %v\n  4 workers: %v", seqNames, parNames)
	}
	// 2 workloads x (baseline + esteem) = 4 artifacts.
	if len(seqNames) != 4 {
		t.Fatalf("expected 4 artifacts, got %d: %v", len(seqNames), seqNames)
	}
	for _, name := range seqNames {
		if !reflect.DeepEqual(seqArts[name], parArts[name]) {
			t.Errorf("%s differs between worker counts:\n  1 worker:  %+v\n  4 workers: %+v",
				name, seqArts[name], parArts[name])
		}
	}
}

// TestSweepArtifactContents sanity-checks one artifact end to end:
// schema version, manifest provenance, summary consistency with the
// job's own Result, and a non-empty interval stream whose counters sum
// to the run totals.
func TestSweepArtifactContents(t *testing.T) {
	dir := t.TempDir()
	sink, err := obs.NewDirSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSweep(2)
	s.SetSink(sink)
	cfg := miniCfg(sim.Esteem)
	job := s.Sim(cfg, []string{"gobmk"})
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("expected 1 artifact, got %d", len(ents))
	}
	b, err := os.ReadFile(filepath.Join(dir, ents[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	var a obs.RunArtifact
	if err := json.Unmarshal(b, &a); err != nil {
		t.Fatal(err)
	}
	r := job.Result()
	if a.SchemaVersion != obs.SchemaVersion {
		t.Errorf("schema version %d, want %d", a.SchemaVersion, obs.SchemaVersion)
	}
	if a.Manifest.Technique != r.Technique.String() {
		t.Errorf("manifest technique %q, want %q", a.Manifest.Technique, r.Technique.String())
	}
	if !reflect.DeepEqual(a.Manifest.Workload, []string{"gobmk"}) {
		t.Errorf("manifest workload %v", a.Manifest.Workload)
	}
	if a.Manifest.Seed != job.Config().Seed {
		t.Errorf("manifest seed %d, want derived seed %d", a.Manifest.Seed, job.Config().Seed)
	}
	if a.Manifest.GoVersion == "" || a.Manifest.ConfigHash == "" || a.Manifest.StartedAt == "" {
		t.Errorf("manifest provenance incomplete: %+v", a.Manifest)
	}
	if a.Manifest.SimulatedInstructions != r.TotalInstructions() {
		t.Errorf("manifest instructions %d, want %d", a.Manifest.SimulatedInstructions, r.TotalInstructions())
	}
	// The artifact's floats were canonicalized (12 significant digits)
	// on disk, so round-trip the expectation the same way.
	wb, err := obs.MarshalCanonical(Summarize(r))
	if err != nil {
		t.Fatal(err)
	}
	var want obs.RunSummary
	if err := json.Unmarshal(wb, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Summary, want) {
		t.Errorf("summary does not match the job result:\n  got  %+v\n  want %+v", a.Summary, want)
	}
	if len(a.Intervals) == 0 || a.Manifest.Intervals != len(a.Intervals) {
		t.Fatalf("interval stream inconsistent: manifest says %d, artifact has %d",
			a.Manifest.Intervals, len(a.Intervals))
	}
	var hits uint64
	for _, iv := range a.Intervals {
		if iv.Measuring {
			hits += iv.L2Hits
		}
	}
	if hits != r.L2.Hits {
		t.Errorf("measured interval hits sum to %d, run total %d", hits, r.L2.Hits)
	}
}

// TestSweepSinkDoesNotPerturbResults asserts the artifact layer's core
// contract at the runner level: attaching a sink changes no simulation
// outcome.
func TestSweepSinkDoesNotPerturbResults(t *testing.T) {
	run := func(sink obs.Sink) map[string]float64 {
		s := NewSweep(4)
		if sink != nil {
			s.SetSink(sink)
		}
		job := s.Sim(miniCfg(sim.SmartRefresh), []string{"lbm"})
		if err := s.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return resultFingerprint(job.Result())
	}
	sink, err := obs.NewDirSink(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	plain := run(nil)
	observed := run(sink)
	if !reflect.DeepEqual(plain, observed) {
		t.Errorf("sink perturbed results:\n  plain    %v\n  observed %v", plain, observed)
	}
}
