// Package esteem is a Go reproduction of "Improving Energy Efficiency
// of Embedded DRAM Caches for High-end Computing Systems" (Sparsh
// Mittal, Jeffrey S. Vetter, Dong Li — HPDC 2014).
//
// ESTEEM saves both leakage and refresh energy in an embedded-DRAM
// last-level cache by dynamic, module-wise selective-way
// reconfiguration: the cache's sets are divided into M modules, and
// every interval the controller decides per module how many ways to
// keep powered on, using LRU-stack hit histograms sampled from leader
// sets. Powered-off ways need neither leakage power nor refresh, and
// within the active portion only valid lines are refreshed.
//
// This package is the public façade over the full simulation stack:
//
//   - Run simulates one workload under one technique (Baseline
//     periodic refresh, Refrint RPV/RPD/periodic-valid, ESTEEM, and
//     ablations) on the paper's system model — multi-core trace-driven
//     cores, private L1s, shared banked eDRAM L2 with a refresh
//     engine, bandwidth-limited main memory, and the paper's
//     analytical energy model (Equations 2–8).
//   - Compare/Summarize produce the paper's evaluation metrics
//     (energy saving, weighted/fair speedup, ΔRPKI, ΔMPKI, active
//     ratio) with its aggregation rules.
//   - Benchmarks/DualCoreWorkloads expose the synthetic workload
//     suite standing in for SPEC CPU2006 + HPC proxies (Table 1).
//
// A minimal experiment:
//
//	cfg := esteem.DefaultConfig(1)
//	cfg.Technique = esteem.Baseline
//	base, err := esteem.Run(cfg, []string{"gobmk"})
//	...
//	cfg.Technique = esteem.Esteem
//	tech, err := esteem.Run(cfg, []string{"gobmk"})
//	...
//	c := esteem.Compare("gobmk", base, tech)
//	fmt.Printf("saving=%.1f%% speedup=%.3fx\n", c.EnergySavingPct, c.WeightedSpeedup)
//
// The cmd/esteem-bench binary regenerates every table and figure of
// the paper's evaluation (see EXPERIMENTS.md for paper-vs-measured).
package esteem

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config describes one simulation run; see sim.Config for the full
// field list. Zero values are not meaningful — start from
// DefaultConfig.
type Config = sim.Config

// Technique selects the energy-management scheme under test.
type Technique = sim.Technique

// The available techniques.
const (
	// Baseline refreshes every line frame each retention period.
	Baseline = sim.Baseline
	// RPV is Refrint polyphase-valid (the paper's comparison point).
	RPV = sim.RPV
	// RPD is Refrint polyphase-dirty (ablation).
	RPD = sim.RPD
	// PeriodicValid refreshes valid lines once per window (ablation).
	PeriodicValid = sim.PeriodicValid
	// Esteem is the paper's technique.
	Esteem = sim.Esteem
	// EsteemAllLineRefresh is ESTEEM without valid-only refresh
	// (ablation isolating the valid-only contribution).
	EsteemAllLineRefresh = sim.EsteemAllLineRefresh
	// NoRefresh is the unrealizable zero-refresh lower bound
	// (ablation).
	NoRefresh = sim.NoRefresh
	// SmartRefresh is Ghosh & Lee's Smart-Refresh (related work).
	SmartRefresh = sim.SmartRefresh
	// ECCExtended models ECC-based refresh-period extension (related
	// work).
	ECCExtended = sim.ECCExtended
)

// Result is the outcome of one run: per-core IPC, traffic counters,
// the evaluated energy breakdown and (optionally) per-interval logs.
type Result = sim.Result

// CoreResult reports one core's measured execution.
type CoreResult = sim.CoreResult

// IntervalRecord is one interval of a LogIntervals run (Fig. 2).
type IntervalRecord = sim.IntervalRecord

// Comparison holds one technique's paper metrics against baseline.
type Comparison = metrics.Comparison

// Summary aggregates comparisons with the paper's rules.
type Summary = metrics.Summary

// AlgorithmConfig holds the ESTEEM algorithm parameters (α, A_min).
type AlgorithmConfig = core.Config

// WorkloadProfile describes one synthetic benchmark.
type WorkloadProfile = trace.Profile

// DefaultConfig returns the paper's system configuration for 1 or 2
// cores (Section 6.1), with run lengths scaled as documented in
// EXPERIMENTS.md.
func DefaultConfig(cores int) Config { return sim.DefaultConfig(cores) }

// Run simulates the given benchmarks (one per configured core) under
// cfg and returns the measured result.
func Run(cfg Config, benchmarks []string) (*Result, error) {
	return sim.Run(cfg, benchmarks)
}

// Compare computes the paper's metrics of a technique run against its
// baseline run for the same workload.
func Compare(workload string, base, tech *Result) Comparison {
	return metrics.Compare(workload, base, tech)
}

// Summarize aggregates comparisons (geometric mean for speedups,
// arithmetic mean otherwise — Section 6.4).
func Summarize(cs []Comparison) Summary { return metrics.Summarize(cs) }

// Benchmarks returns the names of the 34 synthetic benchmarks
// (29 SPEC CPU2006 + 5 HPC proxies, paper Table 1).
func Benchmarks() []string {
	ps := trace.Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// Profiles returns the full workload profile table.
func Profiles() []WorkloadProfile { return trace.Profiles() }

// DualCoreWorkloads returns the paper's 17 dual-core mixes (Table 1)
// as pairs of benchmark names.
func DualCoreWorkloads() [][2]string { return trace.DualCoreWorkloads() }

// MixAcronym returns the paper's short name for a dual-core pair
// (e.g. "GkNe").
func MixAcronym(a, b string) string { return trace.MixAcronym(a, b) }

// DecideActiveWays runs the paper's Algorithm 1 for one module: given
// the hit counts per LRU position (index 0 = MRU), the coverage
// threshold α and the minimum way count A_min, it returns how many
// ways to keep powered on.
func DecideActiveWays(hits []uint64, alpha float64, aMin int) int {
	return core.DecideModule(hits, core.Config{Alpha: alpha, AMin: aMin})
}

// IsNonLRU reports whether a hit histogram trips Algorithm 1's
// non-LRU anomaly detector (at least A/4 increases down the recency
// stack).
func IsNonLRU(hits []uint64) bool { return core.IsNonLRU(hits) }

// OverheadPercent evaluates the paper's Equation 1: ESTEEM's counter
// storage as a percentage of L2 capacity.
func OverheadPercent(sets, assoc, modules, blockBits, tagBits int) float64 {
	return core.OverheadPercent(sets, assoc, modules, blockBits, tagBits)
}

// RunComparison is a convenience that runs the baseline plus each
// technique on one workload and returns the comparisons in technique
// order.
func RunComparison(cfg Config, benchmarks []string, techniques []Technique) ([]Comparison, error) {
	baseCfg := cfg
	baseCfg.Technique = Baseline
	base, err := sim.Run(baseCfg, benchmarks)
	if err != nil {
		return nil, err
	}
	name := benchmarks[0]
	if len(benchmarks) == 2 {
		name = trace.MixAcronym(benchmarks[0], benchmarks[1])
	}
	out := make([]Comparison, 0, len(techniques))
	for _, tech := range techniques {
		tcfg := cfg
		tcfg.Technique = tech
		r, err := sim.Run(tcfg, benchmarks)
		if err != nil {
			return nil, err
		}
		out = append(out, metrics.Compare(name, base, r))
	}
	return out, nil
}

// Source is the workload-stream abstraction the simulator consumes:
// the built-in synthetic generators implement it, trace.Replayer
// replays recorded traces, and downstream users can implement it to
// drive the simulator with their own traces.
type Source = trace.Source

// Replayer replays a recorded reference trace as a Source, looping
// when the simulation budget exceeds the trace length.
type Replayer = trace.Replayer

// Ref is one memory reference of a workload stream.
type Ref = trace.Ref

// RunSources runs the configured system over arbitrary workload
// sources (one per core).
func RunSources(cfg Config, sources []Source) (*Result, error) {
	return sim.RunSources(cfg, sources)
}

// NewGenerator builds the synthetic generator for a workload profile
// with the given seed.
func NewGenerator(p WorkloadProfile, seed uint64) (Source, error) {
	return trace.NewGenerator(p, seed)
}

// NewReplayer builds a looping Source over recorded references.
func NewReplayer(name string, refs []Ref, mlp float64) (*Replayer, error) {
	return trace.NewReplayer(name, refs, mlp)
}

// WriteTrace serializes references to w in the repository's trace
// file format; ReadReplayer loads such a file back as a Source.
func WriteTrace(w io.Writer, refs []Ref, mlp float64) error {
	return trace.WriteTrace(w, refs, mlp)
}

// ReadReplayer reads a trace file written by WriteTrace.
func ReadReplayer(name string, r io.Reader) (*Replayer, error) {
	return trace.ReadReplayer(name, r)
}

// RecordTrace captures n references of a named benchmark into a
// slice, e.g. to serialize with WriteTrace.
func RecordTrace(benchmark string, n int, seed uint64) ([]Ref, error) {
	p, ok := trace.ProfileByName(benchmark)
	if !ok {
		return nil, fmt.Errorf("esteem: unknown benchmark %q", benchmark)
	}
	g, err := trace.NewGenerator(p, seed)
	if err != nil {
		return nil, err
	}
	return trace.Record(g, n), nil
}

// Sweep is the parallel experiment-execution engine: it schedules
// simulation jobs over a bounded worker pool, deduplicates baseline
// runs, orders technique runs after the baselines they are normalised
// against, and produces results that are byte-identical for every
// worker count (each job's seed is derived from the base seed and its
// workload at submission time, and results are read back in
// submission order).
//
//	s := esteem.NewSweep(0) // GOMAXPROCS workers
//	base := s.Baseline(cfg, []string{"gobmk"})
//	tcfg := cfg
//	tcfg.Technique = esteem.Esteem
//	cmp := s.Compare("gobmk", base, tcfg, []string{"gobmk"})
//	if err := s.Run(ctx); err != nil { ... }
//	fmt.Println(cmp.Comparison().EnergySavingPct)
type Sweep = runner.Sweep

// SimJob is one scheduled simulation on a Sweep.
type SimJob = runner.SimJob

// CompareJob is a scheduled technique-vs-baseline comparison.
type CompareJob = runner.CompareJob

// SweepOption configures a Sweep (progress output, labels).
type SweepOption = runner.Option

// NewSweep builds a parallel sweep with the given worker count
// (<= 0 selects GOMAXPROCS).
func NewSweep(workers int, opts ...SweepOption) *Sweep {
	return runner.NewSweep(workers, opts...)
}

// WithProgress makes a sweep print progress lines (done/total,
// running, ETA) to w while it runs.
func WithProgress(w io.Writer) SweepOption { return runner.WithProgress(w) }

// WithSweepLabel names the sweep in progress output.
func WithSweepLabel(name string) SweepOption { return runner.WithLabel(name) }

// DeriveSeed mixes a base seed with string parts (e.g. workload
// names) into a per-job seed, exactly as Sweep does for its jobs; use
// it to reproduce one sweep job with a direct Run call.
func DeriveSeed(base uint64, parts ...string) uint64 {
	return runner.DeriveSeed(base, parts...)
}

// Observability. The obs layer streams per-interval telemetry out of a
// running simulation and persists machine-readable run artifacts; it
// is zero-overhead when no observer is attached (attaching one never
// changes simulation results — tested as an invariant).

// Observer receives one Interval record at every interval boundary of
// an observed run.
type Observer = obs.Observer

// Interval is one interval's telemetry: active ways, hit/miss/
// writeback counts, refresh and bank-busy cycles, memory-queue
// occupancy, policy counters, and the interval's energy breakdown.
type Interval = obs.Interval

// Collector is an Observer that retains every interval in memory.
type Collector = obs.Collector

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return obs.NewCollector() }

// Manifest records a run's provenance (seed, config hash, toolchain,
// wall time) for reproducibility.
type Manifest = obs.Manifest

// RunArtifact is the complete machine-readable record of one run:
// manifest, end-of-run summary, and the interval stream.
type RunArtifact = obs.RunArtifact

// RunSummary is the machine-readable end-of-run aggregate.
type RunSummary = obs.RunSummary

// Sink persists run artifacts; DirSink writes canonical JSON files.
type Sink = obs.Sink

// NewDirSink returns a Sink writing one canonical-JSON artifact per
// run into dir (created if needed).
func NewDirSink(dir string) (*obs.DirSink, error) { return obs.NewDirSink(dir) }

// RunObserved is Run with an observer attached: o (which may be a
// *Collector) receives every interval boundary, warmup included.
func RunObserved(cfg Config, benchmarks []string, o Observer) (*Result, error) {
	return sim.RunObserved(cfg, benchmarks, o)
}

// RunSourcesObserved is RunSources with an observer attached.
func RunSourcesObserved(cfg Config, sources []Source, o Observer) (*Result, error) {
	return sim.RunSourcesObserved(cfg, sources, o)
}
