#!/bin/sh
# cluster-smoke.sh — end-to-end smoke test of the distributed sweep
# cluster.
#
# Builds esteem-serve and esteem-client, runs the same sweep twice —
# once on a standalone daemon, once on a coordinator with two joined
# workers — and proves the distribution contract with cmp(1):
#
#   1. the cluster serves every artifact byte-identical to the
#      standalone run of the same spec;
#   2. the work actually distributed: the workers' combined compute
#      count equals the number of unique units (exactly once each),
#      and artifacts replicated across shards;
#   3. the coordinator's cluster status and /metrics expose the
#      membership and lease counters;
#   4. the fleet aggregation endpoint (/v1/cluster/metrics) sums the
#      per-worker snapshots — fleet sims total equals the unit count —
#      and carries both workers as labeled series;
#   5. the cluster event journal (/v1/cluster/events) recorded the
#      lifecycle (worker-joined, lease-granted, task-completed);
#   6. the distributed job exports one merged, validated span tree
#      whose Chrome form has a per-node lane for every node. When
#      CLUSTER_OUT is set, the merged trace (tree + chrome) is saved
#      there for upload as a CI artifact.
#
# (Worker-failure recovery — SIGKILL mid-sweep — is covered by the Go
# e2e test TestClusterWorkerKill in internal/cluster.)
set -eu
cd "$(dirname "$0")/.."
. ./scripts/lib.sh

WORK="$(mktemp -d)"
PIDS=""
cleanup() {
    for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== building service binaries =="
go build -o "$WORK/" ./cmd/esteem-serve ./cmd/esteem-client

# start_node NAME ARGS... : boots esteem-serve, waits for health, and
# sets NODE_URL. The PID is appended to PIDS for cleanup.
start_node() {
    _name="$1"; shift
    rm -f "$WORK/$_name.addr"
    "$WORK/esteem-serve" -addr 127.0.0.1:0 -addr-file "$WORK/$_name.addr" \
        -log-level warn "$@" >"$WORK/$_name.log" 2>&1 &
    PIDS="$PIDS $!"
    wait_file "$WORK/$_name.addr" 10 || { cat "$WORK/$_name.log"; exit 1; }
    NODE_URL="http://$(cat "$WORK/$_name.addr")"
    wait_healthz "$NODE_URL" 15 || { cat "$WORK/$_name.log"; exit 1; }
    echo "== $_name up at $NODE_URL =="
}

SUBMIT_ARGS="-bench gcc+gobmk,nekbone+gamess -technique baseline,esteem \
    -instr 200000 -warmup 50000 -interval 100000 -seed 42 -wait"
# submit_and_fetch SERVER OUTDIR: submits the canonical sweep, waits,
# and downloads every unit artifact as OUTDIR/<key>.json.
submit_and_fetch() {
    _server="$1"; _out="$2"
    mkdir -p "$_out"
    _id="$("$WORK/esteem-client" submit -server "$_server" $SUBMIT_ARGS 2>/dev/null |
        sed -n 's/^  "id": "\([0-9a-f]*\)",$/\1/p')"
    [ -n "$_id" ] || { echo "submit returned no job id"; exit 1; }
    JOB_ID="$_id"
    for _key in $("$WORK/esteem-client" status -server "$_server" "$_id" |
        sed -n 's/^ *"key": "\([0-9a-f]*\)",*$/\1/p'); do
        "$WORK/esteem-client" artifact -server "$_server" -o "$_out/$_key.json" "$_key"
    done
}

echo "== standalone reference sweep =="
start_node standalone
STANDALONE_PID="${PIDS##* }"
submit_and_fetch "$NODE_URL" "$WORK/ref"
kill "$STANDALONE_PID" && wait "$STANDALONE_PID" || true
REF_COUNT="$(ls "$WORK/ref" | wc -l)"
[ "$REF_COUNT" -eq 4 ] || { echo "expected 4 reference artifacts, got $REF_COUNT"; exit 1; }

echo "== cluster: coordinator + 2 workers =="
start_node coordinator -role coordinator -heartbeat 500ms
COORD_URL="$NODE_URL"
start_node worker1 -role worker -join "$COORD_URL"
start_node worker2 -role worker -join "$COORD_URL"
WORKER1_URL="$NODE_URL"

echo "== cluster status =="
"$WORK/esteem-client" cluster status -server "$COORD_URL" | tee "$WORK/status.json"
WORKERS="$(grep -c '"url"' "$WORK/status.json")"
[ "$WORKERS" -eq 2 ] || { echo "cluster status shows $WORKERS workers, want 2"; exit 1; }

echo "== distributed sweep =="
submit_and_fetch "$COORD_URL" "$WORK/cluster"

echo "== byte identity =="
for ref in "$WORK/ref"/*.json; do
    key="$(basename "$ref")"
    [ -f "$WORK/cluster/$key" ] || { echo "cluster missing artifact $key"; exit 1; }
    cmp "$ref" "$WORK/cluster/$key" || { echo "artifact $key differs from standalone"; exit 1; }
done
echo "all $REF_COUNT artifacts byte-identical to the standalone sweep"

echo "== exactly-once compute across workers =="
metric() {
    curl -sf "$1/metrics" | awk -v m="$2" '$1 == m {print $2}'
}
W1="$(metric "$WORKER1_URL" esteem_worker_sims_computed_total)"
# worker2's URL was clobbered by worker1's start; recover it from its addr file.
W2URL="http://$(cat "$WORK/worker2.addr")"
W2="$(metric "$W2URL" esteem_worker_sims_computed_total)"
TOTAL=$(( ${W1:-0} + ${W2:-0} ))
[ "$TOTAL" -eq "$REF_COUNT" ] || { echo "workers computed $TOTAL sims for $REF_COUNT units"; exit 1; }
echo "workers computed $W1 + $W2 = $TOTAL simulations for $REF_COUNT units"

echo "== coordinator cluster metrics =="
for m in esteem_cluster_workers_live esteem_cluster_tasks_completed_total \
    esteem_serve_shard_remote_puts_total; do
    V="$(metric "$COORD_URL" "$m")"
    [ -n "$V" ] || { echo "metric $m missing from coordinator"; exit 1; }
done
LIVE="$(metric "$COORD_URL" esteem_cluster_workers_live)"
[ "$LIVE" = "2" ] || { echo "workers_live=$LIVE, want 2"; exit 1; }
DONE_TASKS="$(metric "$COORD_URL" esteem_cluster_tasks_completed_total)"
[ "$DONE_TASKS" = "$REF_COUNT" ] || { echo "tasks_completed=$DONE_TASKS, want $REF_COUNT"; exit 1; }

echo "== fleet metrics aggregation =="
# The fleet text exposition keeps the aggregate series unlabeled (the
# {node="..."} breakdowns ride alongside), so the same awk works.
fleet_metric() {
    curl -sf "$COORD_URL/v1/cluster/metrics" | awk -v m="$1" '$1 == m {print $2}'
}
FLEET_SIMS="$(fleet_metric esteem_worker_sims_computed_total)"
[ "$FLEET_SIMS" = "$REF_COUNT" ] ||
    { echo "fleet sims_computed_total=$FLEET_SIMS, want $REF_COUNT"; exit 1; }
curl -sf "$COORD_URL/v1/cluster/metrics" >"$WORK/fleet.prom"
for url in "$WORKER1_URL" "$W2URL"; do
    grep -q "node=\"$url\"" "$WORK/fleet.prom" ||
        { echo "fleet metrics missing per-member series for $url"; exit 1; }
done
echo "fleet sims total $FLEET_SIMS == $REF_COUNT units, both workers labeled"

echo "== client fleet view (cluster top) =="
"$WORK/esteem-client" cluster top -server "$COORD_URL" -count 1 -plain |
    tee "$WORK/top.txt"
grep -q "members 3/3 reachable" "$WORK/top.txt" ||
    { echo "cluster top did not show 3/3 members reachable"; exit 1; }

echo "== cluster event journal =="
"$WORK/esteem-client" cluster events -server "$COORD_URL" >"$WORK/events.json"
for kind in worker-joined task-submitted lease-granted task-completed; do
    grep -q "\"kind\": *\"$kind\"" "$WORK/events.json" ||
        { echo "journal missing $kind event"; exit 1; }
done
COMPLETED="$(grep -c '"kind": *"task-completed"' "$WORK/events.json")"
[ "$COMPLETED" -eq "$REF_COUNT" ] ||
    { echo "journal shows $COMPLETED task-completed events, want $REF_COUNT"; exit 1; }
echo "journal recorded the full lifecycle ($COMPLETED completions)"

echo "== node attribution header =="
curl -sf -o /dev/null -D "$WORK/headers.txt" "$COORD_URL/v1/cluster/status"
grep -qi '^x-esteem-node:' "$WORK/headers.txt" ||
    { echo "cluster response missing X-Esteem-Node header"; exit 1; }

echo "== merged cluster trace =="
# One span tree for the distributed job: coordinator root, lease spans,
# worker-shipped spans — Validate + coverage gate client-side, and the
# Chrome export must carry a named lane per node.
"$WORK/esteem-client" trace -server "$COORD_URL" -min-coverage 0.5 \
    -o "$WORK/trace-tree.json" "$JOB_ID"
"$WORK/esteem-client" trace -server "$COORD_URL" -format chrome \
    -o "$WORK/trace-chrome.json" "$JOB_ID" 2>/dev/null
grep -q '"traceEvents"' "$WORK/trace-chrome.json" ||
    { echo "cluster chrome trace malformed"; exit 1; }
grep -q '"process_name"' "$WORK/trace-chrome.json" ||
    { echo "cluster chrome trace has no per-node lanes"; exit 1; }
for url in "$COORD_URL" "$WORKER1_URL" "$W2URL"; do
    grep -q "$url" "$WORK/trace-chrome.json" ||
        { echo "chrome trace missing a lane for $url"; exit 1; }
done
echo "merged trace valid, per-node lanes for coordinator + both workers"

if [ -n "${CLUSTER_OUT:-}" ]; then
    mkdir -p "$CLUSTER_OUT"
    cp "$WORK/trace-tree.json" "$WORK/trace-chrome.json" \
        "$WORK/fleet.prom" "$WORK/events.json" "$CLUSTER_OUT/"
    echo "== saved cluster artifacts to $CLUSTER_OUT =="
fi

echo "== cluster smoke OK =="
