// Report is the load generator's output and the unit the
// BENCH_serve.json trajectory records: per-phase and overall
// latency/throughput plus server-side cache behaviour, with the gate
// logic esteem-servegate applies in CI.
package load

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
)

// Quantiles summarises a latency distribution in milliseconds.
type Quantiles struct {
	P50  float64 `json:"p50_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
	Max  float64 `json:"max_ms"`
	Mean float64 `json:"mean_ms"`
}

// quantilesOf computes Quantiles from raw latencies (milliseconds).
func quantilesOf(ms []float64) Quantiles {
	if len(ms) == 0 {
		return Quantiles{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return Quantiles{
		P50:  at(0.50),
		P99:  at(0.99),
		P999: at(0.999),
		Max:  sorted[len(sorted)-1],
		Mean: sum / float64(len(sorted)),
	}
}

// PhaseStats is the client-side outcome of one phase (or the run).
type PhaseStats struct {
	Name       string  `json:"name"`
	OfferedRPS float64 `json:"offered_rps"`
	// Requests = Completed + Rejected + Errors.
	Requests  int `json:"requests"`
	Completed int `json:"completed"`
	// Rejected counts 429 admission rejections (load shedding, not
	// failure); Errors everything else (transport, job failure).
	Rejected int `json:"rejected_429"`
	Errors   int `json:"errors"`
	// ConnRetries counts transparently retried connection errors
	// (server start/drain windows).
	ConnRetries int `json:"conn_retries"`
	// AchievedRPS is completions over the phase's nominal duration.
	AchievedRPS float64   `json:"achieved_rps"`
	Latency     Quantiles `json:"latency"`
}

// CacheStats is the server-side /metrics delta over a window. For
// per-phase windows the attribution is approximate — an open-loop
// phase's stragglers complete under the next phase's scrape — but the
// overall (post-drain) delta is exact.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Computes  uint64 `json:"computes"`
	// HitRate counts coalesced lookups as hits: they were served by
	// another request's compute.
	HitRate         float64 `json:"hit_rate"`
	SimsExecuted    uint64  `json:"sims_executed"`
	QueueWaitMeanMs float64 `json:"queue_wait_mean_ms"`
}

// PhaseReport pairs the client- and server-side view of one phase.
type PhaseReport struct {
	PhaseStats
	Cache CacheStats `json:"cache"`
}

// HistBucket is one cumulative latency bucket of a report.
type HistBucket struct {
	LEms  float64 `json:"le_ms"`
	Count uint64  `json:"count"`
}

// Report is one dated load-generator run: one BENCH_serve.json entry.
type Report struct {
	Date   string `json:"date"`
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	Note   string `json:"note,omitempty"`

	Seed        int64   `json:"seed"`
	HotFraction float64 `json:"hot_fraction"`
	Jitter      float64 `json:"jitter"`

	Phases  []PhaseReport `json:"phases"`
	Overall PhaseStats    `json:"overall"`
	// Cache is the exact post-drain metrics delta for the whole run.
	Cache CacheStats `json:"cache"`
	// Histogram is the end-to-end request latency distribution
	// (cumulative counts, completed requests only).
	Histogram []HistBucket `json:"latency_histogram"`
}

// stampHost fills the host/toolchain fields (Date is set by the
// caller that owns the clock).
func (r *Report) stampHost() {
	r.Go = runtime.Version()
	r.GOOS = runtime.GOOS
	r.GOARCH = runtime.GOARCH
	r.CPUs = runtime.NumCPU()
}

// Trajectory is the checked-in BENCH_serve.json layout: the same
// schema/entries model as esteem-benchgate's BENCH_sim.json.
type Trajectory struct {
	Schema  int      `json:"schema"`
	Entries []Report `json:"entries"`
}

// LoadTrajectory reads a trajectory file; a missing file is an empty
// trajectory.
func LoadTrajectory(path string) (Trajectory, error) {
	var tr Trajectory
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return Trajectory{Schema: 1}, nil
		}
		return tr, err
	}
	if err := json.Unmarshal(b, &tr); err != nil {
		return tr, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// SaveTrajectory writes the trajectory back.
func SaveTrajectory(path string, tr Trajectory) error {
	tr.Schema = 1
	b, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Latest returns the most recent entry, or nil.
func (tr Trajectory) Latest() *Report {
	if len(tr.Entries) == 0 {
		return nil
	}
	return &tr.Entries[len(tr.Entries)-1]
}

// Thresholds parameterises the service-level gate. Service latency on
// shared CI runners is far noisier than ns/op microbenchmarks, so the
// relative bounds default loose; the absolute sanity checks (non-zero
// latency and throughput, bounded error rate, hit rate matching the
// configured mix) hold regardless of baseline.
type Thresholds struct {
	// MaxP99Factor bounds overall p99 at factor x the baseline's
	// (default 10).
	MaxP99Factor float64
	// MinThroughputFactor bounds overall achieved RPS at factor x the
	// baseline's (default 0.25).
	MinThroughputFactor float64
	// MaxErrorRate bounds errors/requests (429s excluded; default 0.01).
	MaxErrorRate float64
	// HitRateTolerance bounds |measured hit rate - configured hot
	// fraction| (default 0.15; negative disables).
	HitRateTolerance float64
}

func (t *Thresholds) fill() {
	if t.MaxP99Factor <= 0 {
		t.MaxP99Factor = 10
	}
	if t.MinThroughputFactor <= 0 {
		t.MinThroughputFactor = 0.25
	}
	if t.MaxErrorRate <= 0 {
		t.MaxErrorRate = 0.01
	}
	if t.HitRateTolerance == 0 {
		t.HitRateTolerance = 0.15
	}
}

// Check gates a report: absolute sanity always, relative bounds
// against base when non-nil. It returns the first violation.
func Check(base *Report, rep Report, th Thresholds) error {
	th.fill()
	o := rep.Overall
	if o.Requests == 0 {
		return fmt.Errorf("load gate: report carries no requests")
	}
	if o.Completed == 0 {
		return fmt.Errorf("load gate: no request completed (%d rejected, %d errors)", o.Rejected, o.Errors)
	}
	if o.Latency.P50 <= 0 || o.Latency.P99 <= 0 {
		return fmt.Errorf("load gate: degenerate latency quantiles (p50=%.3fms p99=%.3fms)", o.Latency.P50, o.Latency.P99)
	}
	if o.AchievedRPS <= 0 {
		return fmt.Errorf("load gate: zero achieved throughput")
	}
	if rate := float64(o.Errors) / float64(o.Requests); rate > th.MaxErrorRate {
		return fmt.Errorf("load gate: error rate %.3f exceeds %.3f (%d/%d failed)",
			rate, th.MaxErrorRate, o.Errors, o.Requests)
	}
	if th.HitRateTolerance >= 0 {
		if d := math.Abs(rep.Cache.HitRate - rep.HotFraction); d > th.HitRateTolerance {
			return fmt.Errorf("load gate: cache hit rate %.3f vs configured hot fraction %.3f (|Δ|=%.3f > %.3f)",
				rep.Cache.HitRate, rep.HotFraction, d, th.HitRateTolerance)
		}
	}
	if base == nil {
		return nil
	}
	b := base.Overall
	if b.Latency.P99 > 0 && o.Latency.P99 > th.MaxP99Factor*b.Latency.P99 {
		return fmt.Errorf("load gate: p99 %.2fms exceeds %gx baseline %.2fms",
			o.Latency.P99, th.MaxP99Factor, b.Latency.P99)
	}
	if b.AchievedRPS > 0 && o.AchievedRPS < th.MinThroughputFactor*b.AchievedRPS {
		return fmt.Errorf("load gate: throughput %.1f rps below %gx baseline %.1f rps",
			o.AchievedRPS, th.MinThroughputFactor, b.AchievedRPS)
	}
	return nil
}

// Degrade returns a copy of the report with latencies inflated and
// throughput deflated by factor: a synthetic regression that a
// correct gate must reject (the load-smoke lane's self-test).
func Degrade(rep Report, factor float64) Report {
	out := rep
	scaleQ := func(q Quantiles) Quantiles {
		q.P50 *= factor
		q.P99 *= factor
		q.P999 *= factor
		q.Max *= factor
		q.Mean *= factor
		return q
	}
	out.Overall.Latency = scaleQ(out.Overall.Latency)
	out.Overall.AchievedRPS /= factor
	out.Phases = append([]PhaseReport(nil), rep.Phases...)
	for i := range out.Phases {
		out.Phases[i].Latency = scaleQ(out.Phases[i].Latency)
		out.Phases[i].AchievedRPS /= factor
	}
	return out
}
