package cache

// LineSnapshot is one frame's externally visible state, for
// differential verification against reference models.
type LineSnapshot struct {
	Tag   uint64
	Valid bool
	Dirty bool
}

// SetSnapshot captures one set: the recency stack (way indices, MRU
// first) and every frame's state, way-indexed.
type SetSnapshot struct {
	Order []int
	Lines []LineSnapshot
}

// SnapshotSet copies the full state of one set. It is a cold-path
// debugging/verification API: the differential harness in
// internal/verify calls it after every operation to compare tag
// arrays, LRU order and valid/dirty bits against the oracle model.
func (c *Cache) SnapshotSet(setIdx int) SetSnapshot {
	s := &c.sets[setIdx]
	snap := SetSnapshot{
		Order: make([]int, len(s.order)),
		Lines: make([]LineSnapshot, len(s.lines)),
	}
	for i, w := range s.order {
		snap.Order[i] = int(w)
	}
	for w, ln := range s.lines {
		snap.Lines[w] = LineSnapshot{Tag: ln.tag, Valid: ln.valid, Dirty: ln.dirty}
	}
	return snap
}
