package sim

import (
	"bytes"
	"reflect"
	"testing"
)

// captureCheckpoints runs cfg to completion, serialising at every
// hook firing, and returns (result, checkpoints-by-seq,
// hook-info-by-seq).
func captureCheckpoints(t *testing.T, cfg Config, benchmarks []string) (*Result, map[int][]byte, map[int]CheckpointInfo) {
	t.Helper()
	s, err := New(cfg, benchmarks)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Checkpointable() {
		t.Fatal("synthetic generators should be checkpointable")
	}
	saved := make(map[int][]byte)
	infos := make(map[int]CheckpointInfo)
	s.SetCheckpointHook(func(info CheckpointInfo) {
		b, err := s.Checkpoint()
		if err != nil {
			t.Errorf("checkpoint at seq %d: %v", info.Seq, err)
			return
		}
		if info.Seq != 0 && info.MaxMeasured == 0 {
			t.Errorf("seq %d: MaxMeasured 0 after a measured boundary", info.Seq)
		}
		saved[info.Seq] = b
		infos[info.Seq] = info
	})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, saved, infos
}

// bestUsable returns the highest checkpoint sequence whose measured
// prefix is strictly below the given horizon (-1 if none).
func bestUsable(infos map[int]CheckpointInfo, horizon uint64) int {
	best := -1
	for seq, info := range infos {
		if info.MaxMeasured < horizon && seq > best {
			best = seq
		}
	}
	return best
}

// resumeFrom restores a checkpoint into a fresh simulator of cfg and
// runs it to completion.
func resumeFrom(t *testing.T, cfg Config, benchmarks []string, data []byte) *Result {
	t.Helper()
	s, err := New(cfg, benchmarks)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RestoreCheckpoint(data); err != nil {
		t.Fatalf("RestoreCheckpoint: %v", err)
	}
	res, err := s.ResumeRun()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCheckpointResumeByteIdentical is the central contract of the
// checkpoint subsystem: for every technique, a run restored from a
// shorter run's checkpoint and extended to a longer horizon produces
// a result identical to a cold run of the longer horizon, and the
// checkpoint bytes themselves are horizon-independent (the long run
// serialises the same bytes at the same boundary).
func TestCheckpointResumeByteIdentical(t *testing.T) {
	techniques := []Technique{Baseline, RPV, RPD, PeriodicValid, Esteem, EsteemAllLineRefresh, NoRefresh, SmartRefresh, ECCExtended}
	for _, tech := range techniques {
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			t.Parallel()
			short := testConfig(1, tech)
			short.WarmupInstr = 100_000
			short.MeasureInstr = 300_000
			short.IntervalCycles = 100_000
			short.LogIntervals = true
			long := short
			long.MeasureInstr = 700_000
			bm := []string{"gcc"}

			_, shortCkpts, shortInfos := captureCheckpoints(t, short, bm)
			cold, longCkpts, _ := captureCheckpoints(t, long, bm)
			if len(shortCkpts) < 2 {
				t.Fatalf("short run produced only %d checkpoints", len(shortCkpts))
			}

			// Horizon independence: same boundary, same bytes,
			// regardless of which run serialised it.
			for seq, b := range shortCkpts {
				if lb, ok := longCkpts[seq]; ok && !bytes.Equal(b, lb) {
					t.Fatalf("seq %d: checkpoint bytes differ between horizons", seq)
				}
			}

			// Resume from the seam and from the deepest usable prefix.
			best := bestUsable(shortInfos, long.MeasureInstr)
			if best < 0 {
				t.Fatal("no usable checkpoint")
			}
			for _, seq := range []int{0, best} {
				got := resumeFrom(t, long, bm, shortCkpts[seq])
				if !reflect.DeepEqual(got, cold) {
					t.Fatalf("seq %d: resumed result differs from cold run", seq)
				}
			}
		})
	}
}

// TestCheckpointResumeDualCore exercises the multi-core scheduler
// path (heap state, per-core offsets, interleaving) through a resume.
func TestCheckpointResumeDualCore(t *testing.T) {
	short := testConfig(2, Esteem)
	short.WarmupInstr = 100_000
	short.MeasureInstr = 250_000
	short.IntervalCycles = 100_000
	long := short
	long.MeasureInstr = 600_000
	bm := []string{"gcc", "mcf"}

	_, shortCkpts, shortInfos := captureCheckpoints(t, short, bm)
	cold, _, _ := captureCheckpoints(t, long, bm)
	best := bestUsable(shortInfos, long.MeasureInstr)
	if best < 0 {
		t.Fatal("no usable checkpoint")
	}
	got := resumeFrom(t, long, bm, shortCkpts[best])
	if !reflect.DeepEqual(got, cold) {
		t.Fatal("dual-core resumed result differs from cold run")
	}
}

// TestCheckpointRejectsWrongConfig checks the sanity header and the
// horizon-usability rule.
func TestCheckpointRejectsWrongConfig(t *testing.T) {
	cfg := testConfig(1, Esteem)
	cfg.WarmupInstr = 50_000
	cfg.MeasureInstr = 200_000
	cfg.IntervalCycles = 100_000
	bm := []string{"gcc"}
	_, ckpts, _ := captureCheckpoints(t, cfg, bm)
	best := -1
	for seq := range ckpts {
		if seq > best {
			best = seq
		}
	}

	restoreInto := func(c Config, names []string, data []byte) error {
		s, err := New(c, names)
		if err != nil {
			t.Fatal(err)
		}
		return s.RestoreCheckpoint(data)
	}

	other := cfg
	other.Technique = Baseline
	if restoreInto(other, bm, ckpts[0]) == nil {
		t.Fatal("restore accepted a different technique")
	}
	other = cfg
	other.Seed = cfg.Seed + 1
	if restoreInto(other, bm, ckpts[0]) == nil {
		t.Fatal("restore accepted a different seed")
	}
	// A horizon the deepest checkpoint has already passed must be
	// refused (its measurement window closed mid-run).
	shorter := cfg
	shorter.MeasureInstr = 1_000
	if restoreInto(shorter, bm, ckpts[best]) == nil {
		t.Fatal("restore accepted a horizon shorter than the measured prefix")
	}
	// Truncated stream.
	if restoreInto(cfg, bm, ckpts[0][:len(ckpts[0])-8]) == nil {
		t.Fatal("restore accepted a truncated checkpoint")
	}
	// ResumeRun without a restore must refuse to run.
	s, err := New(cfg, bm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ResumeRun(); err == nil {
		t.Fatal("ResumeRun ran without a restored checkpoint")
	}
}

// TestCheckpointOutsideMeasurementFails pins the boundary-only
// contract.
func TestCheckpointOutsideMeasurementFails(t *testing.T) {
	s, err := New(testConfig(1, Baseline), []string{"gcc"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err == nil {
		t.Fatal("Checkpoint succeeded before measurement began")
	}
}
