package refrint

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/edram"
	"repro/internal/xrand"
)

func newL2(t testing.TB) *cache.Cache {
	t.Helper()
	return cache.MustNew(cache.Params{
		Name: "L2", SizeBytes: 64 * 8 * 64, Assoc: 8, LineBytes: 64,
		Modules: 4, Banks: 4, SamplingRatio: 16,
	})
}

func addrFor(set, tag, numSets int) cache.Addr {
	return cache.Addr(uint64(tag)*uint64(numSets)*64 + uint64(set)*64)
}

func TestNewRPVValidation(t *testing.T) {
	c := newL2(t)
	clk := &edram.Clock{}
	if _, err := NewRPV(c, clk, 0, 1000); err == nil {
		t.Error("0 phases accepted")
	}
	if _, err := NewRPV(c, clk, 200, 1000); err == nil {
		t.Error("200 phases accepted")
	}
	if _, err := NewRPV(c, clk, 4, 2); err == nil {
		t.Error("phases > retention accepted")
	}
	if _, err := NewRPV(c, nil, 4, 1000); err == nil {
		t.Error("nil clock accepted")
	}
	r, err := NewRPV(c, clk, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "refrint-rpv4" {
		t.Errorf("name = %q", r.Name())
	}
	if r.EventsPerWindow() != 4 {
		t.Errorf("events = %d", r.EventsPerWindow())
	}
}

func TestRPVPhaseAssignment(t *testing.T) {
	c := newL2(t)
	clk := &edram.Clock{}
	r, err := NewRPV(c, clk, 4, 1000) // phases of 250 cycles
	if err != nil {
		t.Fatal(err)
	}
	// Touch a line in each phase; count refreshes per phase event.
	countPhase := func(ph int) int {
		n := 0
		for b := 0; b < 4; b++ {
			n += r.RefreshEvent(b, ph)
		}
		return n
	}
	clk.Cycle = 100 // phase 0
	c.Access(addrFor(0, 1, 64), false)
	clk.Cycle = 300 // phase 1
	c.Access(addrFor(1, 1, 64), false)
	clk.Cycle = 990 // phase 3
	c.Access(addrFor(2, 1, 64), false)
	if countPhase(0) != 1 || countPhase(1) != 1 || countPhase(2) != 0 || countPhase(3) != 1 {
		t.Fatalf("phase counts = %d,%d,%d,%d", countPhase(0), countPhase(1), countPhase(2), countPhase(3))
	}
	// Wrap into the next window: phase repeats.
	clk.Cycle = 1100 // phase 0 of window 1
	c.Access(addrFor(3, 1, 64), false)
	if countPhase(0) != 2 {
		t.Fatalf("phase 0 count after wrap = %d, want 2", countPhase(0))
	}
}

func TestRPVTouchMovesPhase(t *testing.T) {
	c := newL2(t)
	clk := &edram.Clock{}
	r, _ := NewRPV(c, clk, 4, 1000)
	clk.Cycle = 0
	res := c.Access(addrFor(0, 1, 64), false)
	bank := res.Bank
	if r.RefreshEvent(bank, 0) != 1 {
		t.Fatal("line not tracked in phase 0")
	}
	// Re-touch in phase 2: the scheduled refresh moves.
	clk.Cycle = 600
	c.Access(addrFor(0, 1, 64), false)
	if r.RefreshEvent(bank, 0) != 0 {
		t.Fatal("stale phase-0 schedule survived a re-touch")
	}
	if r.RefreshEvent(bank, 2) != 1 {
		t.Fatal("line not rescheduled to phase 2")
	}
}

func TestRPVEvictionUntracks(t *testing.T) {
	c := newL2(t)
	clk := &edram.Clock{}
	r, _ := NewRPV(c, clk, 4, 1000)
	c.Access(addrFor(0, 1, 64), false)
	// Evict by filling the set beyond associativity.
	for tag := 2; tag <= 9; tag++ {
		c.Access(addrFor(0, tag, 64), false)
	}
	if got := r.TrackedLines(); got != c.ValidLines() {
		t.Fatalf("tracked %d != valid %d", got, c.ValidLines())
	}
}

func TestRPVRefreshCountMatchesValid(t *testing.T) {
	// Summing refreshes over all phases and banks must equal the
	// number of valid lines (each valid line has exactly one phase).
	c := newL2(t)
	clk := &edram.Clock{}
	r, _ := NewRPV(c, clk, 4, 1000)
	rng := xrand.New(5)
	for i := 0; i < 500; i++ {
		clk.Cycle += uint64(rng.Intn(50))
		c.Access(cache.Addr(rng.Uint64n(64*64*32)), rng.Bool(0.3))
	}
	total := 0
	for ph := 0; ph < 4; ph++ {
		for b := 0; b < 4; b++ {
			total += r.RefreshEvent(b, ph)
		}
	}
	if total != c.ValidLines() {
		t.Fatalf("phase-sum %d != valid %d", total, c.ValidLines())
	}
}

func TestRPDRefreshesOnlyDirty(t *testing.T) {
	c := newL2(t)
	clk := &edram.Clock{}
	r, err := NewRPD(c, clk, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	clk.Cycle = 0 // phase 0
	resDirty := c.Access(addrFor(0, 1, 64), true)
	c.Access(addrFor(4, 1, 64), false) // clean, same bank 0
	if resDirty.Bank != 0 {
		t.Fatalf("expected bank 0, got %d", resDirty.Bank)
	}
	n := r.RefreshEvent(0, 0)
	if n != 1 {
		t.Fatalf("RPD refreshed %d lines, want 1 (the dirty one)", n)
	}
	if r.Invalidated() != 1 {
		t.Fatalf("RPD invalidated %d, want 1 (the clean one)", r.Invalidated())
	}
	// The clean line must actually be gone from the cache.
	if c.Probe(addrFor(4, 1, 64)) {
		t.Fatal("clean line still present after RPD event")
	}
	if !c.Probe(addrFor(0, 1, 64)) {
		t.Fatal("dirty line was dropped by RPD")
	}
}

func TestRPDName(t *testing.T) {
	c := newL2(t)
	r, _ := NewRPD(c, &edram.Clock{}, 4, 1000)
	if r.Name() != "refrint-rpd4" {
		t.Errorf("name = %q", r.Name())
	}
}

func TestPeriodicValid(t *testing.T) {
	c := newL2(t)
	p := NewPeriodicValid(c)
	if p.Name() != "refrint-periodic-valid" || p.EventsPerWindow() != 1 {
		t.Fatalf("identity wrong: %q/%d", p.Name(), p.EventsPerWindow())
	}
	for i := 0; i < 7; i++ {
		c.Access(cache.Addr(i*64), false)
	}
	total := 0
	for b := 0; b < 4; b++ {
		total += p.RefreshEvent(b, 0)
	}
	if total != 7 {
		t.Fatalf("periodic-valid refreshed %d, want 7", total)
	}
}

// Property: tracked lines always equal the cache's valid lines across
// random access mixes, evictions and reconfigurations.
func TestTrackedMatchesValidProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		c := newL2(t)
		clk := &edram.Clock{}
		r, err := NewRPV(c, clk, 4, 100000)
		if err != nil {
			return false
		}
		rng := xrand.New(seed)
		for i := 0; i < 400; i++ {
			clk.Cycle += uint64(rng.Intn(300))
			switch rng.Intn(12) {
			case 0:
				c.SetActiveWays(rng.Intn(4), 1+rng.Intn(8))
			default:
				c.Access(cache.Addr(rng.Uint64n(64*64*16)), rng.Bool(0.4))
			}
		}
		return r.TrackedLines() == c.ValidLines()
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

// Integration: RPV under an edram.Engine must refresh fewer lines than
// the all-frames baseline for a sparsely occupied cache.
func TestRPVBeatsBaselineOnSparseCache(t *testing.T) {
	mk := func(policy func(c *cache.Cache, clk *edram.Clock) edram.Policy) uint64 {
		c := newL2(t)
		clk := &edram.Clock{}
		pol := policy(c, clk)
		eng, err := edram.NewEngine(edram.Params{RetentionCycles: 1000, Banks: 4}, pol)
		if err != nil {
			t.Fatal(err)
		}
		// Touch 10 lines, then run 10 windows of refresh.
		for i := 0; i < 10; i++ {
			c.Access(cache.Addr(i*64), false)
		}
		for cyc := uint64(0); cyc <= 10000; cyc += 100 {
			clk.Cycle = cyc
			eng.AdvanceTo(cyc)
		}
		return eng.TotalRefreshed()
	}
	baseline := mk(func(c *cache.Cache, clk *edram.Clock) edram.Policy { return edram.NewRefreshAll(c) })
	rpv := mk(func(c *cache.Cache, clk *edram.Clock) edram.Policy {
		r, err := NewRPV(c, clk, 4, 1000)
		if err != nil {
			t.Fatal(err)
		}
		return r
	})
	if rpv >= baseline/10 {
		t.Fatalf("RPV refreshed %d vs baseline %d; expected order-of-magnitude fewer on a sparse cache", rpv, baseline)
	}
	if rpv == 0 {
		t.Fatal("RPV refreshed nothing; valid lines must still be refreshed")
	}
}

func BenchmarkRPVRefreshEvent(b *testing.B) {
	c := cache.MustNew(cache.Params{
		Name: "L2", SizeBytes: 4 << 20, Assoc: 16, LineBytes: 64,
		Modules: 8, Banks: 4, SamplingRatio: 64,
	})
	clk := &edram.Clock{}
	r, err := NewRPV(c, clk, 4, 100000)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	for i := 0; i < 100000; i++ {
		c.Access(cache.Addr(rng.Uint64()%(64<<20)), rng.Bool(0.3))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RefreshEvent(i%4, i%4)
	}
}
