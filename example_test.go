package esteem_test

import (
	"fmt"

	esteem "repro"
)

// The paper's Section 3.1 worked example: choosing how many ways to
// keep powered on from a module's LRU hit histogram.
func ExampleDecideActiveWays() {
	hits := []uint64{10816, 4645, 2140, 501, 217, 113, 63, 11}
	fmt.Println(esteem.DecideActiveWays(hits, 0.97, 1))
	fmt.Println(esteem.DecideActiveWays(hits, 0.95, 1))
	// Output:
	// 4
	// 3
}

// Detecting the non-LRU access behaviour that makes Algorithm 1 back
// off (omnetpp/xalancbmk-style hit profiles).
func ExampleIsNonLRU() {
	lruFriendly := []uint64{900, 300, 100, 40, 20, 8, 3, 1}
	scanning := []uint64{10, 40, 15, 60, 20, 80, 25, 100}
	fmt.Println(esteem.IsNonLRU(lruFriendly))
	fmt.Println(esteem.IsNonLRU(scanning))
	// Output:
	// false
	// true
}

// Equation 1 of the paper: ESTEEM's counter overhead for the 4 MB,
// 16-way, 16-module configuration.
func ExampleOverheadPercent() {
	pct := esteem.OverheadPercent(4096, 16, 16, 512, 40)
	fmt.Printf("%.2f%%\n", pct)
	// Output:
	// 0.06%
}

// MixAcronym builds the paper's short names for dual-core mixes.
func ExampleMixAcronym() {
	fmt.Println(esteem.MixAcronym("gobmk", "nekbone"))
	// Output:
	// GkNe
}
