# Convenience targets; `make check` is the CI/verification gate.

.PHONY: check ci lint golden golden-update verify fuzz-smoke build vet test race bench results quick-results

check:
	./scripts/check.sh

# Everything CI runs: lint, the full check gate, the golden-output
# drift gate, and the differential-verification gate.
ci: lint check golden verify

# Differential verification: oracle reference models vs the optimized
# implementations, plus the simulator rebuilt with runtime invariant
# checks (`-tags verify`). See DESIGN.md "Verification strategy".
verify:
	./scripts/verify.sh

# Short fuzzing pass over every native fuzz target (FUZZTIME=20s each
# by default); the nightly workflow runs the long-budget version.
fuzz-smoke:
	./scripts/fuzz-smoke.sh

lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	go vet ./...

# Golden-output gate: quick-run JSON must match results/golden/.
golden:
	./scripts/golden.sh

# Regenerate the golden outputs after an intentional behavioral change.
golden-update:
	./scripts/golden.sh update

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# The runner executes simulations on parallel workers; always keep the
# race pass green.
race:
	go test -race ./...

# Hot-path benchmarks with allocation counts (cache access, simulator
# step, refresh windows, whole short runs).
bench:
	go test -bench . -benchmem -run '^$$' ./internal/cache/ ./internal/sim/ ./internal/refrint/ .

# Regenerate the paper evaluation (long; uses every CPU by default —
# tune with JOBS=N).
JOBS ?= 0
results:
	go run ./cmd/esteem-bench -jobs $(JOBS)

quick-results:
	go run ./cmd/esteem-bench -quick -jobs $(JOBS)
