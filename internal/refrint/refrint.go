// Package refrint implements the Refrint refresh policies of Agrawal,
// Jain, Ansari and Torrellas (HPCA 2013), which the ESTEEM paper uses
// as its comparison point (Section 6.2):
//
//   - RPV (polyphase-valid): a block read or written is implicitly
//     refreshed by the access, so it need not be refreshed for one
//     retention period. The retention period is divided into P phases
//     (the paper uses 4); each block remembers the phase of its last
//     touch, and the refresh engine re-refreshes it at the beginning
//     of that phase in every subsequent retention period. Only valid
//     blocks are refreshed.
//   - RPD (polyphase-dirty): like RPV, but only dirty blocks are
//     refreshed; clean valid blocks reaching their phase event are
//     eagerly invalidated instead (their data is still clean in
//     memory). The ESTEEM paper argues this floods main memory with
//     re-fetches for mostly-clean workloads and excludes it from the
//     headline comparison; we implement it for the ablation benches.
//   - Periodic-valid: refresh every valid block once per retention
//     window at the window boundary (shown inferior to RPV in the
//     Refrint paper; provided for ablations).
//
// The polyphase policies observe line touches through the cache's
// Observer hook and read the current cycle from the shared
// edram.Clock.
package refrint

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/edram"
	"repro/internal/obs"
)

// untracked marks a line frame with no live phase assignment.
const untracked = int8(-1)

// polyphase holds the state shared by RPV and RPD.
type polyphase struct {
	c         *cache.Cache
	clock     *edram.Clock
	phases    int
	retention uint64
	phaseLen  uint64
	assoc     int
	banks     int
	// phase[set*assoc+way] is the phase of the line's last touch, or
	// untracked.
	phase []int8
	// counts[bank*phases+ph] is the number of tracked lines in the
	// bank whose stored phase is ph, maintained incrementally so
	// refresh events are O(1) per bank.
	counts []int
}

func newPolyphase(c *cache.Cache, clock *edram.Clock, phases int, retentionCycles uint64) (*polyphase, error) {
	if phases < 1 || phases > 127 {
		return nil, fmt.Errorf("refrint: phase count %d out of [1,127]", phases)
	}
	if retentionCycles < uint64(phases) {
		return nil, fmt.Errorf("refrint: %d phases do not fit in %d retention cycles", phases, retentionCycles)
	}
	if clock == nil {
		return nil, fmt.Errorf("refrint: nil clock")
	}
	p := &polyphase{
		c:         c,
		clock:     clock,
		phases:    phases,
		retention: retentionCycles,
		phaseLen:  retentionCycles / uint64(phases),
		assoc:     c.Params().Assoc,
		banks:     c.Params().Banks,
		phase:     make([]int8, c.NumSets()*c.Params().Assoc),
		counts:    make([]int, c.Params().Banks*phases),
	}
	for i := range p.phase {
		p.phase[i] = untracked
	}
	return p, nil
}

// currentPhase computes which phase of the retention window the clock
// is in.
func (p *polyphase) currentPhase() int8 {
	ph := (p.clock.Cycle % p.retention) / p.phaseLen
	if ph >= uint64(p.phases) { // retention not divisible by phases
		ph = uint64(p.phases) - 1
	}
	return int8(ph)
}

// OnTouch implements cache.Observer: record the touch phase.
func (p *polyphase) OnTouch(set, way int) {
	i := set*p.assoc + way
	bank := set % p.banks
	if old := p.phase[i]; old != untracked {
		p.counts[bank*p.phases+int(old)]--
	}
	ph := p.currentPhase()
	p.phase[i] = ph
	p.counts[bank*p.phases+int(ph)]++
}

// OnInvalidate implements cache.Observer.
func (p *polyphase) OnInvalidate(set, way int) {
	i := set*p.assoc + way
	if old := p.phase[i]; old != untracked {
		p.counts[(set%p.banks)*p.phases+int(old)]--
		p.phase[i] = untracked
	}
}

// TrackedLines returns how many lines currently carry a phase; it
// must equal the cache's valid-line count (tested as an invariant).
func (p *polyphase) TrackedLines() int {
	n := 0
	for _, ph := range p.phase {
		if ph != untracked {
			n++
		}
	}
	return n
}

// RPV is the Refrint polyphase-valid policy.
type RPV struct {
	*polyphase
}

// NewRPV builds an RPV policy with the given phase count over c,
// reading time from clock, and installs itself as the cache's
// observer.
func NewRPV(c *cache.Cache, clock *edram.Clock, phases int, retentionCycles uint64) (*RPV, error) {
	pp, err := newPolyphase(c, clock, phases, retentionCycles)
	if err != nil {
		return nil, err
	}
	r := &RPV{polyphase: pp}
	c.SetObserver(r)
	return r, nil
}

// Name implements edram.Policy.
func (r *RPV) Name() string { return fmt.Sprintf("refrint-rpv%d", r.phases) }

// EventsPerWindow implements edram.Policy.
func (r *RPV) EventsPerWindow() int { return r.phases }

// RefreshEvent refreshes every valid line in the bank whose last
// touch (or engine refresh) fell in the event's phase. The refresh
// renews retention from this same phase, so the stored phase — and
// therefore the incremental count — is unchanged.
func (r *RPV) RefreshEvent(bank, event int) int {
	return r.counts[bank*r.phases+event]
}

// RPD is the Refrint polyphase-dirty policy.
type RPD struct {
	*polyphase
	invalidated         uint64
	intervalInvalidated uint64
	// RPD's phase event splits tracked frames by dirtiness: dirty ones
	// are refreshed in place (a count), clean ones are all eagerly
	// invalidated. Dirtiness only changes at touches and invalidations
	// (both observed here; OnTouch fires after the cache updates the
	// dirty bit), so the policy tracks it itself: dirty frames are an
	// incremental counter per (bank, phase) and clean frames sit in an
	// intrusive doubly-linked list the event drains. Per-frame effects
	// are order-independent, so results match the frame scan this
	// replaces.
	dirtyCount []int   // bank*phases+phase -> dirty tracked frames
	dirty      []bool  // frame -> tracked as dirty
	head       []int32 // bank*phases+phase -> first clean frame, or -1
	next, prev []int32 // frame -> clean-list neighbours, or -1
}

// NewRPD builds an RPD policy and installs it as the cache's observer.
func NewRPD(c *cache.Cache, clock *edram.Clock, phases int, retentionCycles uint64) (*RPD, error) {
	pp, err := newPolyphase(c, clock, phases, retentionCycles)
	if err != nil {
		return nil, err
	}
	r := &RPD{
		polyphase:  pp,
		dirtyCount: make([]int, pp.banks*phases),
		dirty:      make([]bool, len(pp.phase)),
		head:       make([]int32, pp.banks*phases),
		next:       make([]int32, len(pp.phase)),
		prev:       make([]int32, len(pp.phase)),
	}
	for i := range r.head {
		r.head[i] = -1
	}
	c.SetObserver(r)
	return r, nil
}

// listOf returns the list index for a set's bank and a phase.
func (r *RPD) listOf(set int, ph int8) int {
	return (set%r.banks)*r.phases + int(ph)
}

// push links frame i at the head of list l.
func (r *RPD) push(i int32, l int) {
	r.prev[i] = -1
	r.next[i] = r.head[l]
	if r.head[l] >= 0 {
		r.prev[r.head[l]] = i
	}
	r.head[l] = i
}

// unlink removes frame i from list l.
func (r *RPD) unlink(i int32, l int) {
	if r.prev[i] >= 0 {
		r.next[r.prev[i]] = r.next[i]
	} else {
		r.head[l] = r.next[i]
	}
	if r.next[i] >= 0 {
		r.prev[r.next[i]] = r.prev[i]
	}
}

// OnTouch implements cache.Observer: re-files the frame under the
// touch phase on its current dirty side, shadowing the embedded
// polyphase method.
func (r *RPD) OnTouch(set, way int) {
	i := int32(set*r.assoc + way)
	if old := r.phase[i]; old != untracked {
		if r.dirty[i] {
			r.dirtyCount[r.listOf(set, old)]--
		} else {
			r.unlink(i, r.listOf(set, old))
		}
	}
	r.polyphase.OnTouch(set, way)
	_, d := r.c.LineState(set, way) // the cache set the bit before notifying
	r.dirty[i] = d
	l := r.listOf(set, r.phase[i])
	if d {
		r.dirtyCount[l]++
	} else {
		r.push(i, l)
	}
}

// OnInvalidate implements cache.Observer: removes the frame from its
// dirty counter or clean list before untracking it.
func (r *RPD) OnInvalidate(set, way int) {
	i := int32(set*r.assoc + way)
	if old := r.phase[i]; old != untracked {
		if r.dirty[i] {
			r.dirtyCount[r.listOf(set, old)]--
			r.dirty[i] = false
		} else {
			r.unlink(i, r.listOf(set, old))
		}
	}
	r.polyphase.OnInvalidate(set, way)
}

// Name implements edram.Policy.
func (r *RPD) Name() string { return fmt.Sprintf("refrint-rpd%d", r.phases) }

// EventsPerWindow implements edram.Policy.
func (r *RPD) EventsPerWindow() int { return r.phases }

// RefreshEvent refreshes dirty lines at their phase and eagerly
// invalidates clean ones (avoiding their refresh at the cost of a
// future miss).
func (r *RPD) RefreshEvent(bank, event int) int {
	l := bank*r.phases + event
	// Dirty frames are refreshed in place; retention renews from this
	// same phase, so the incremental count is unchanged.
	n := r.dirtyCount[l]
	for i := r.head[l]; i >= 0; {
		nx := r.next[i] // capture: InvalidateLine unlinks i via OnInvalidate
		r.c.InvalidateLine(int(i)/r.assoc, int(i)%r.assoc)
		r.invalidated++
		r.intervalInvalidated++
		i = nx
	}
	return n
}

// Invalidated returns how many clean lines RPD has eagerly dropped.
func (r *RPD) Invalidated() uint64 { return r.invalidated }

// IntervalPolicyStats implements edram.PolicyTelemetry.
func (r *RPD) IntervalPolicyStats() obs.PolicyStats {
	return obs.PolicyStats{Invalidations: r.intervalInvalidated}
}

// ResetPolicyStats implements edram.PolicyTelemetry.
func (r *RPD) ResetPolicyStats() { r.intervalInvalidated = 0 }

// PeriodicValid refreshes all valid lines once per retention window.
// It is a named alias of the generic valid-only policy so reports can
// distinguish "Refrint periodic-valid" from ESTEEM's valid-only
// refresh of the active portion.
type PeriodicValid struct {
	inner *edram.ValidOnly
}

// NewPeriodicValid builds the policy over c.
func NewPeriodicValid(c *cache.Cache) *PeriodicValid {
	return &PeriodicValid{inner: edram.NewValidOnly(c)}
}

// Name implements edram.Policy.
func (p *PeriodicValid) Name() string { return "refrint-periodic-valid" }

// EventsPerWindow implements edram.Policy.
func (p *PeriodicValid) EventsPerWindow() int { return 1 }

// RefreshEvent implements edram.Policy.
func (p *PeriodicValid) RefreshEvent(bank, event int) int {
	return p.inner.RefreshEvent(bank, event)
}
