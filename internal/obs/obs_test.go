package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleIntervals() []Interval {
	return []Interval{
		{
			Index: 0, Measuring: false, EndCycle: 2_000_000, Cycles: 2_000_000,
			ActiveRatio: 1, L2Hits: 100, L2Misses: 40, L2Writebacks: 7, L2Fills: 40,
			Refreshes: 65536, BankBusyCycles: 65536,
			MMReads: 40, MMWritebacks: 7, MMQueueStallCycles: 12,
			MMChannelBusyCycles: 601.6,
			Energy:              Energy{L2DynJ: 1.2345678901e-05, TotalJ: 0.012345678901},
		},
		{
			Index: 1, Measuring: true, EndCycle: 4_000_000, Cycles: 2_000_000,
			ActiveRatio: 0.53125, ActiveWays: []int{16, 8, 4, 16, 2, 2, 16, 4},
			L2Hits: 900, L2Misses: 11, Refreshes: 30000, BankBusyCycles: 30000,
			Policy:            PolicyStats{SkippedRefreshes: 123, Invalidations: 4},
			LinesTransitioned: 2048, ReconfigWritebacks: 17,
			MMWriteBufPeak: 9, MMWriteBufStallCycles: 3,
			Energy: Energy{TotalJ: 0.001},
		},
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	for _, iv := range sampleIntervals() {
		c.ObserveInterval(iv)
	}
	if got := len(c.Intervals()); got != 2 {
		t.Fatalf("collected %d intervals, want 2", got)
	}
	if m := c.Measured(); len(m) != 1 || m[0].Index != 1 {
		t.Fatalf("Measured() = %+v, want the single measuring interval", m)
	}
	c.Reset()
	if len(c.Intervals()) != 0 {
		t.Fatal("Reset did not clear intervals")
	}
}

func TestConfigHash(t *testing.T) {
	type cfg struct {
		A int
		B float64
	}
	h1 := ConfigHash(cfg{1, 2.5})
	h2 := ConfigHash(cfg{1, 2.5})
	h3 := ConfigHash(cfg{2, 2.5})
	if h1 != h2 {
		t.Errorf("hash not stable: %s vs %s", h1, h2)
	}
	if h1 == h3 {
		t.Errorf("hash insensitive to field change: %s", h1)
	}
	if len(h1) != 16 {
		t.Errorf("hash %q not 16 hex digits", h1)
	}
}

func TestMarshalCanonicalDeterministicAndRounded(t *testing.T) {
	v := map[string]any{
		"zeta":  1.0 / 3.0,
		"alpha": []float64{math.Pi, 2},
		"count": 12345678901234567,
	}
	b1, err := MarshalCanonical(v)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := MarshalCanonical(v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("canonical marshal not deterministic:\n%s\nvs\n%s", b1, b2)
	}
	s := string(b1)
	if !strings.Contains(s, "0.333333333333") || strings.Contains(s, "0.3333333333333333") {
		t.Errorf("float not rounded to 12 significant digits:\n%s", s)
	}
	if !strings.Contains(s, "12345678901234567") {
		t.Errorf("integer mangled by rounding:\n%s", s)
	}
	// Keys must come out sorted for diff-friendliness.
	if strings.Index(s, `"alpha"`) > strings.Index(s, `"zeta"`) {
		t.Errorf("keys not sorted:\n%s", s)
	}
}

func TestIntervalsJSONRoundTrip(t *testing.T) {
	ivs := sampleIntervals()
	var buf bytes.Buffer
	if err := WriteIntervalsJSON(&buf, ivs); err != nil {
		t.Fatal(err)
	}
	var back []Interval
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ivs, back) {
		t.Fatalf("JSON round trip mismatch:\n got %+v\nwant %+v", back, ivs)
	}
}

func TestIntervalsCSVRoundTrip(t *testing.T) {
	ivs := sampleIntervals()
	var buf bytes.Buffer
	if err := WriteIntervalsCSV(&buf, ivs); err != nil {
		t.Fatal(err)
	}
	back, err := ParseIntervalsCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ivs) {
		t.Fatalf("round trip returned %d intervals, want %d", len(back), len(ivs))
	}
	// CSV carries the scalar columns; null out the JSON-only fields
	// before comparing.
	for i := range ivs {
		ivs[i].ActiveWays = nil
		ivs[i].Energy = Energy{TotalJ: ivs[i].Energy.TotalJ}
	}
	if !reflect.DeepEqual(ivs, back) {
		t.Fatalf("CSV round trip mismatch:\n got %+v\nwant %+v", back, ivs)
	}
}

func TestDirSink(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "runs")
	sink, err := NewDirSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := RunArtifact{
		SchemaVersion: SchemaVersion,
		Manifest:      NewManifest("esteem/gobmk+mcf/2c", 42, struct{ X int }{7}).Deterministic(),
		Summary:       RunSummary{Instructions: 1000, Energy: Energy{TotalJ: 0.5}},
		Intervals:     sampleIntervals(),
	}
	if err := sink.WriteRun(3, a); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "0003-esteem_gobmk_mcf_2c.json"))
	if err != nil {
		t.Fatalf("artifact file missing: %v", err)
	}
	var back RunArtifact
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != SchemaVersion || back.Summary.Instructions != 1000 || len(back.Intervals) != 2 {
		t.Fatalf("artifact did not round trip: %+v", back)
	}
	if back.Manifest.StartedAt != "" || back.Manifest.WallMillis != 0 {
		t.Fatalf("Deterministic() left timing fields: %+v", back.Manifest)
	}
}

func TestSanitizeLabel(t *testing.T) {
	if got := SanitizeLabel("rpv/a+b/2c"); got != "rpv_a_b_2c" {
		t.Errorf("SanitizeLabel = %q", got)
	}
}
