// Package metrics computes the ESTEEM paper's evaluation metrics
// (Section 6.4) from simulation results and aggregates them with the
// paper's rules: weighted and fair speedups are averaged with the
// geometric mean; every other metric — which can be zero or negative
// — with the arithmetic mean.
//
//   - percentage energy saving over the baseline (Equations 2–8);
//   - weighted speedup (Equation 9): mean over cores of
//     IPC(technique)/IPC(base);
//   - fair speedup: harmonic mean of the per-core speedups;
//   - absolute decrease in refreshes per kilo-instruction (RPKI);
//   - absolute increase in misses per kilo-instruction (MPKI);
//   - active ratio (time-averaged F_A; 100% for baseline and RPV).
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Comparison holds one technique's metrics against the baseline for
// one workload.
type Comparison struct {
	// Workload names the benchmark (single-core) or mix acronym
	// (dual-core).
	Workload string `json:"workload"`
	// Technique is the technique's display name.
	Technique string `json:"technique"`
	// EnergySavingPct is the % memory-subsystem energy saving.
	EnergySavingPct float64 `json:"energy_saving_pct"`
	// WeightedSpeedup is Equation 9.
	WeightedSpeedup float64 `json:"weighted_speedup"`
	// FairSpeedup is the harmonic-mean speedup.
	FairSpeedup float64 `json:"fair_speedup"`
	// RPKIDecrease is RPKI(base) - RPKI(technique).
	RPKIDecrease float64 `json:"rpki_decrease"`
	// MPKIIncrease is MPKI(technique) - MPKI(base).
	MPKIIncrease float64 `json:"mpki_increase"`
	// ActiveRatioPct is the technique's time-averaged F_A in percent.
	ActiveRatioPct float64 `json:"active_ratio_pct"`
}

// Compare derives a Comparison from a baseline run and a technique
// run of the same workload. It panics if the runs have different core
// counts, which would indicate mismatched experiments.
func Compare(workload string, base, tech *sim.Result) Comparison {
	if len(base.Cores) != len(tech.Cores) {
		panic(fmt.Sprintf("metrics: core count mismatch %d vs %d", len(base.Cores), len(tech.Cores)))
	}
	n := len(base.Cores)
	wsSum := 0.0
	invSum := 0.0
	for i := 0; i < n; i++ {
		r := tech.Cores[i].IPC / base.Cores[i].IPC
		wsSum += r
		invSum += 1 / r
	}
	return Comparison{
		Workload:        workload,
		Technique:       tech.Technique.String(),
		EnergySavingPct: energy.SavingPercent(base.Energy.Total(), tech.Energy.Total()),
		WeightedSpeedup: wsSum / float64(n),
		FairSpeedup:     float64(n) / invSum,
		RPKIDecrease:    base.RPKI() - tech.RPKI(),
		MPKIIncrease:    tech.MPKI() - base.MPKI(),
		ActiveRatioPct:  tech.ActiveRatio * 100,
	}
}

// Summary aggregates comparisons across workloads per the paper's
// rules.
type Summary struct {
	Technique       string  `json:"technique"`
	Workloads       int     `json:"workloads"`
	EnergySavingPct float64 `json:"energy_saving_pct"` // arithmetic mean
	WeightedSpeedup float64 `json:"weighted_speedup"`  // geometric mean
	FairSpeedup     float64 `json:"fair_speedup"`      // geometric mean
	RPKIDecrease    float64 `json:"rpki_decrease"`     // arithmetic mean
	MPKIIncrease    float64 `json:"mpki_increase"`     // arithmetic mean
	ActiveRatioPct  float64 `json:"active_ratio_pct"`  // arithmetic mean
}

// Summarize aggregates a slice of comparisons (all for the same
// technique). It returns a zero Summary for an empty slice.
func Summarize(cs []Comparison) Summary {
	if len(cs) == 0 {
		return Summary{}
	}
	var save, ws, fs, rpki, mpki, ar []float64
	for _, c := range cs {
		save = append(save, c.EnergySavingPct)
		ws = append(ws, c.WeightedSpeedup)
		fs = append(fs, c.FairSpeedup)
		rpki = append(rpki, c.RPKIDecrease)
		mpki = append(mpki, c.MPKIIncrease)
		ar = append(ar, c.ActiveRatioPct)
	}
	return Summary{
		Technique:       cs[0].Technique,
		Workloads:       len(cs),
		EnergySavingPct: stats.Mean(save),
		WeightedSpeedup: stats.GeoMean(ws),
		FairSpeedup:     stats.GeoMean(fs),
		RPKIDecrease:    stats.Mean(rpki),
		MPKIIncrease:    stats.Mean(mpki),
		ActiveRatioPct:  stats.Mean(ar),
	}
}

// FormatTable renders comparisons (sorted by workload) plus their
// summary as a fixed-width text table, in the layout of the paper's
// Figures 3–6.
func FormatTable(title string, groups map[string][]Comparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	names := make([]string, 0, len(groups))
	for name := range groups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cs := append([]Comparison(nil), groups[name]...)
		sort.Slice(cs, func(i, j int) bool { return cs[i].Workload < cs[j].Workload })
		fmt.Fprintf(&b, "\n-- technique: %s --\n", name)
		fmt.Fprintf(&b, "%-14s %10s %8s %8s %10s %9s %8s\n",
			"workload", "%esaving", "ws", "fs", "rpki-dec", "mpki-inc", "activ%")
		for _, c := range cs {
			fmt.Fprintf(&b, "%-14s %10.2f %8.3f %8.3f %10.1f %9.2f %8.1f\n",
				c.Workload, c.EnergySavingPct, c.WeightedSpeedup, c.FairSpeedup,
				c.RPKIDecrease, c.MPKIIncrease, c.ActiveRatioPct)
		}
		s := Summarize(cs)
		fmt.Fprintf(&b, "%-14s %10.2f %8.3f %8.3f %10.1f %9.2f %8.1f\n",
			"MEAN", s.EnergySavingPct, s.WeightedSpeedup, s.FairSpeedup,
			s.RPKIDecrease, s.MPKIIncrease, s.ActiveRatioPct)
	}
	return b.String()
}

// FormatCSV renders comparisons as CSV with a header row.
func FormatCSV(cs []Comparison) string {
	var b strings.Builder
	b.WriteString("workload,technique,energy_saving_pct,weighted_speedup,fair_speedup,rpki_decrease,mpki_increase,active_ratio_pct\n")
	for _, c := range cs {
		fmt.Fprintf(&b, "%s,%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			c.Workload, c.Technique, c.EnergySavingPct, c.WeightedSpeedup,
			c.FairSpeedup, c.RPKIDecrease, c.MPKIIncrease, c.ActiveRatioPct)
	}
	return b.String()
}
