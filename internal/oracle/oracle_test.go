package oracle

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/edram"
	"repro/internal/energy"
)

func refParams() cache.Params {
	return cache.Params{
		Name: "ref", SizeBytes: 64 * 4 * 64, Assoc: 4, LineBytes: 64,
		Modules: 2, SamplingRatio: 8, Banks: 2,
	}
}

func TestCacheMissThenHit(t *testing.T) {
	c := MustNewCache(refParams())
	if r := c.Access(0x1000, false); r.Hit {
		t.Fatal("cold access hit")
	}
	r := c.Access(0x1000, false)
	if !r.Hit || r.LRUPos != 0 {
		t.Fatalf("expected MRU hit, got %+v", r)
	}
	if c.TotalCounters().Hits != 1 || c.TotalCounters().Misses != 1 {
		t.Fatalf("counters: %+v", c.TotalCounters())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	p := refParams()
	c := MustNewCache(p)
	// Fill one set with A distinct tags, then one more: the first
	// (LRU) must be evicted.
	span := uint64(p.SizeBytes / p.Assoc)
	for i := 0; i <= p.Assoc; i++ {
		c.Access(cache.Addr(uint64(i)*span), false)
	}
	if c.Probe(0) {
		t.Fatal("LRU victim still present")
	}
	if !c.Probe(cache.Addr(span)) {
		t.Fatal("non-LRU line evicted")
	}
}

func TestShrinkFlushesFollowers(t *testing.T) {
	p := refParams()
	c := MustNewCache(p)
	// Dirty every frame.
	span := uint64(p.SizeBytes / p.Assoc)
	for s := 0; s < c.NumSets(); s++ {
		for w := 0; w < p.Assoc; w++ {
			c.Access(cache.Addr(uint64(s)*uint64(p.LineBytes)+uint64(w)*span), true)
		}
	}
	inv, wb := c.SetActiveWays(0, 2)
	if inv == 0 || inv != wb {
		t.Fatalf("shrink: invalidated %d, writebacks %d", inv, wb)
	}
	// Leader sets keep all ways.
	valid := 0
	for w := 0; w < p.Assoc; w++ {
		if v, _ := c.LineState(0, w); v {
			valid++
		}
	}
	if valid != p.Assoc {
		t.Fatalf("leader set flushed: %d valid ways", valid)
	}
	// Follower sets in module 0 keep only ways [0,2).
	if v, _ := c.LineState(1, 2); v {
		t.Fatal("follower kept a line in a disabled way")
	}
}

func TestEngineMatchesSpacingSemantics(t *testing.T) {
	c := MustNewCache(refParams())
	e, err := NewEngine(edram.Params{RetentionCycles: 1000, Banks: 2}, &ValidOnlyRef{C: c})
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, false) // one valid line in bank 0
	e.AdvanceTo(999)
	if e.TotalRefreshed() != 0 {
		t.Fatal("event fired before first window")
	}
	e.AdvanceTo(1000)
	if e.TotalRefreshed() != 1 {
		t.Fatalf("refreshed %d, want 1", e.TotalRefreshed())
	}
	if e.Events() != 1 {
		t.Fatalf("events %d, want 1", e.Events())
	}
}

func TestEnergyBreakdownMatchesModel(t *testing.T) {
	m, err := energy.NewModel(4<<20, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	a := energy.Activity{
		Cycles: 1_000_000, L2Hits: 5000, L2Misses: 700, Refreshes: 1234,
		ActiveFraction: 0.625, MMAccesses: 900, LinesTransitioned: 4096,
	}
	got := EnergyBreakdown(m, a)
	want := m.Eval(a)
	if got != want {
		t.Fatalf("oracle %+v != model %+v", got, want)
	}
}

func TestAccumulateActivitySanity(t *testing.T) {
	ivs := []energy.Activity{
		{Cycles: 100, ActiveFraction: 1.0, L2Hits: 10},
		{Cycles: 300, ActiveFraction: 0.5, L2Hits: 30},
	}
	got := AccumulateActivity(ivs)
	if got.Cycles != 400 || got.L2Hits != 40 {
		t.Fatalf("sums wrong: %+v", got)
	}
	if want := (1.0*100 + 0.5*300) / 400; got.ActiveFraction != want {
		t.Fatalf("F_A %v, want %v", got.ActiveFraction, want)
	}
}
