package esteem

import (
	"bytes"
	"testing"
)

// fastConfig scales a config down for test speed.
func fastConfig(cores int, tech Technique) Config {
	cfg := DefaultConfig(cores)
	cfg.Technique = tech
	cfg.MeasureInstr = 800_000
	cfg.WarmupInstr = 200_000
	cfg.IntervalCycles = 200_000
	return cfg
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 34 {
		t.Fatalf("benchmarks = %d, want 34", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate benchmark %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"gamess", "libquantum", "omnetpp", "xsbench", "h264ref"} {
		if !seen[want] {
			t.Errorf("benchmark %q missing", want)
		}
	}
}

func TestProfilesExposed(t *testing.T) {
	ps := Profiles()
	if len(ps) != 34 {
		t.Fatalf("profiles = %d", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestDualCoreWorkloadsExposed(t *testing.T) {
	mixes := DualCoreWorkloads()
	if len(mixes) != 17 {
		t.Fatalf("mixes = %d, want 17", len(mixes))
	}
	if MixAcronym(mixes[5][0], mixes[5][1]) != "GkNe" {
		t.Errorf("mix 5 = %v, want gobmk+nekbone", mixes[5])
	}
}

func TestRunAndCompareEndToEnd(t *testing.T) {
	base, err := Run(fastConfig(1, Baseline), []string{"gobmk"})
	if err != nil {
		t.Fatal(err)
	}
	tech, err := Run(fastConfig(1, Esteem), []string{"gobmk"})
	if err != nil {
		t.Fatal(err)
	}
	c := Compare("gobmk", base, tech)
	if c.Workload != "gobmk" || c.Technique != "esteem" {
		t.Fatalf("comparison identity: %+v", c)
	}
	if c.EnergySavingPct <= 0 {
		t.Errorf("expected positive saving for gobmk, got %v", c.EnergySavingPct)
	}
	if c.ActiveRatioPct >= 100 {
		t.Errorf("ESTEEM active ratio %v should be < 100", c.ActiveRatioPct)
	}
	s := Summarize([]Comparison{c})
	if s.Workloads != 1 || s.EnergySavingPct != c.EnergySavingPct {
		t.Errorf("summary wrong: %+v", s)
	}
}

func TestRunComparisonHelper(t *testing.T) {
	cs, err := RunComparison(fastConfig(1, Baseline), []string{"calculix"},
		[]Technique{RPV, Esteem})
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("comparisons = %d", len(cs))
	}
	if cs[0].Technique != "rpv" || cs[1].Technique != "esteem" {
		t.Fatalf("technique order wrong: %v %v", cs[0].Technique, cs[1].Technique)
	}
	if cs[0].Workload != "calculix" {
		t.Fatalf("workload = %q", cs[0].Workload)
	}
}

func TestRunComparisonDualUsesMixAcronym(t *testing.T) {
	cfg := fastConfig(2, Baseline)
	cs, err := RunComparison(cfg, []string{"gobmk", "nekbone"}, []Technique{Esteem})
	if err != nil {
		t.Fatal(err)
	}
	if cs[0].Workload != "GkNe" {
		t.Fatalf("workload = %q, want GkNe", cs[0].Workload)
	}
}

// TestDecideActiveWaysWorkedExample re-pins the paper's Section 3.1
// worked example through the public API.
func TestDecideActiveWaysWorkedExample(t *testing.T) {
	hits := []uint64{10816, 4645, 2140, 501, 217, 113, 63, 11}
	if got := DecideActiveWays(hits, 0.97, 1); got != 4 {
		t.Fatalf("alpha=0.97: %d, want 4", got)
	}
	if got := DecideActiveWays(hits, 0.95, 1); got != 3 {
		t.Fatalf("alpha=0.95: %d, want 3", got)
	}
}

func TestIsNonLRUExposed(t *testing.T) {
	if IsNonLRU([]uint64{100, 50, 25, 12, 6, 3, 2, 1}) {
		t.Error("monotone profile flagged non-LRU")
	}
	if !IsNonLRU([]uint64{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Error("increasing profile not flagged")
	}
}

func TestOverheadPercentExposed(t *testing.T) {
	got := OverheadPercent(4096, 16, 16, 512, 40)
	if got <= 0 || got >= 0.1 {
		t.Fatalf("overhead = %v%%, want ~0.06%%", got)
	}
}

// TestHeadlineShape is the repository's core acceptance test: on a
// compact-working-set workload, ESTEEM must beat both the baseline
// and RPV on energy while not losing performance — the paper's
// headline claim — even at test scale.
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := fastConfig(1, Baseline)
	cfg.MeasureInstr = 3_000_000
	cfg.WarmupInstr = 1_000_000
	cfg.IntervalCycles = 500_000
	base, err := Run(cfg, []string{"dealII"})
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Technique = RPV
	rpv, err := Run(rcfg, []string{"dealII"})
	if err != nil {
		t.Fatal(err)
	}
	ecfg := cfg
	ecfg.Technique = Esteem
	est, err := Run(ecfg, []string{"dealII"})
	if err != nil {
		t.Fatal(err)
	}
	eb, er, ee := base.Energy.Total(), rpv.Energy.Total(), est.Energy.Total()
	if !(ee < er && er < eb) {
		t.Fatalf("energy ordering violated: esteem %v, rpv %v, baseline %v", ee, er, eb)
	}
	if est.Cores[0].IPC < base.Cores[0].IPC {
		t.Fatalf("ESTEEM slowed dealII down: %v vs %v", est.Cores[0].IPC, base.Cores[0].IPC)
	}
	if est.Refreshes >= rpv.Refreshes {
		t.Fatalf("ESTEEM refreshes %d >= RPV %d", est.Refreshes, rpv.Refreshes)
	}
}

func TestRecordReplayRoundTripSimulation(t *testing.T) {
	// Record a trace, serialize it, load it back, and drive the
	// simulator with it: the replayed run must behave identically to
	// the generator-driven run over the same reference stream.
	refs, err := RecordTrace("gcc", 2_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, refs, 2); err != nil {
		t.Fatal(err)
	}
	rp, err := ReadReplayer("gcc", &buf)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(1, Esteem)
	viaReplay, err := RunSources(cfg, []Source{rp})
	if err != nil {
		t.Fatal(err)
	}
	// The generator path with the same seed produces the same stream
	// (the trace is long enough that the replayer never loops).
	viaGen, err := Run(cfg, []string{"gcc"})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Loops() != 0 {
		t.Fatalf("trace looped (%d); comparison invalid", rp.Loops())
	}
	if viaReplay.Energy.Total() != viaGen.Energy.Total() {
		t.Fatalf("replayed energy %v != generated %v", viaReplay.Energy.Total(), viaGen.Energy.Total())
	}
	if viaReplay.Cores[0].Cycles != viaGen.Cores[0].Cycles {
		t.Fatalf("replayed cycles %d != generated %d", viaReplay.Cores[0].Cycles, viaGen.Cores[0].Cycles)
	}
}

func TestRunSourcesValidation(t *testing.T) {
	cfg := fastConfig(1, Baseline)
	if _, err := RunSources(cfg, nil); err == nil {
		t.Error("no sources accepted")
	}
	if _, err := RunSources(cfg, []Source{nil}); err == nil {
		t.Error("nil source accepted")
	}
}

func TestRecordTraceUnknownBenchmark(t *testing.T) {
	if _, err := RecordTrace("nosuch", 10, 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFacadeSourceConstructors(t *testing.T) {
	ps := Profiles()
	src, err := NewGenerator(ps[0], 7)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != ps[0].Name {
		t.Fatalf("generator name %q", src.Name())
	}
	rp, err := NewReplayer("r", []Ref{{Addr: 64}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Len() != 1 {
		t.Fatal("replayer wrong")
	}
	if _, err := NewGenerator(WorkloadProfile{}, 1); err == nil {
		t.Fatal("invalid profile accepted")
	}
}
