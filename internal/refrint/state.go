package refrint

import "repro/internal/ckpt"

// appendState serialises the canonical polyphase state: the per-frame
// touch phases. The per-(bank,phase) counts are derived and recounted
// on restore.
func (p *polyphase) appendState(w *ckpt.Writer) {
	w.Section("RFPH")
	w.I8Slice(p.phase)
}

// restoreState loads the phase array and rebuilds the counts,
// cross-checking every frame against the cache: a frame carries a
// phase if and only if its line is valid. The cache must already be
// restored when this runs.
func (p *polyphase) restoreState(r *ckpt.Reader) error {
	r.Section("RFPH")
	r.I8SliceInto(p.phase)
	if r.Err() != nil {
		return r.Err()
	}
	for i := range p.counts {
		p.counts[i] = 0
	}
	for i, ph := range p.phase {
		set, way := i/p.assoc, i%p.assoc
		valid, _ := p.c.LineState(set, way)
		if (ph != untracked) != valid {
			r.Failf("refrint: restored frame (%d,%d) tracking disagrees with cache validity", set, way)
			return r.Err()
		}
		if ph == untracked {
			continue
		}
		if ph < 0 || int(ph) >= p.phases {
			r.Failf("refrint: restored phase %d out of [0,%d)", ph, p.phases)
			return r.Err()
		}
		p.counts[(set%p.banks)*p.phases+int(ph)]++
	}
	return nil
}

// AppendState serialises the RPV policy's state.
func (r *RPV) AppendState(w *ckpt.Writer) { r.polyphase.appendState(w) }

// RestoreState loads RPV state; the cache must already be restored.
func (r *RPV) RestoreState(rd *ckpt.Reader) error { return r.polyphase.restoreState(rd) }

// AppendState serialises the RPD policy's state: the polyphase touch
// phases plus the eager-invalidation counters. The dirty split and
// the clean lists are derived: dirtiness mirrors the cache's dirty
// bits (both only change under the observer hooks), and list order is
// behaviourally irrelevant — a phase event drains its whole list and
// every per-frame effect is order-independent.
func (r *RPD) AppendState(w *ckpt.Writer) {
	w.Section("RPDS")
	r.polyphase.appendState(w)
	w.U64(r.invalidated)
	w.U64(r.intervalInvalidated)
}

// RestoreState loads RPD state and rebuilds the dirty counters and
// clean lists from the restored cache and phases.
func (r *RPD) RestoreState(rd *ckpt.Reader) error {
	rd.Section("RPDS")
	if err := r.polyphase.restoreState(rd); err != nil {
		return err
	}
	r.invalidated = rd.U64()
	r.intervalInvalidated = rd.U64()
	if rd.Err() != nil {
		return rd.Err()
	}
	for i := range r.dirtyCount {
		r.dirtyCount[i] = 0
	}
	for i := range r.head {
		r.head[i] = -1
	}
	// Descending frame order so each list ends up ascending (push
	// prepends); any order would behave identically.
	for i := len(r.phase) - 1; i >= 0; i-- {
		r.dirty[i] = false
		r.next[i] = -1
		r.prev[i] = -1
		ph := r.phase[i]
		if ph == untracked {
			continue
		}
		set, way := i/r.assoc, i%r.assoc
		_, d := r.c.LineState(set, way)
		l := r.listOf(set, ph)
		if d {
			r.dirty[i] = true
			r.dirtyCount[l]++
		} else {
			r.push(int32(i), l)
		}
	}
	return nil
}
