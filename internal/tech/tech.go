// Package tech abstracts the LLC storage technology underneath the
// cache-energy machinery. The ESTEEM paper evaluates an eDRAM L2, but
// its reconfiguration and interval-energy model are not eDRAM-specific;
// the same author line supplies recipes for STT-RAM LLCs (arxiv
// 1312.2207 — no refresh clock, asymmetric expensive writes, a
// retention-relaxed variant whose shortened-retention blocks need
// periodic scrubbing) and write-endurance-limited ReRAM LLCs (arxiv
// 1311.0041 — per-line wear counters and intra-set wear-levelling).
//
// A Technology captures exactly the semantics the simulator consumes:
//
//   - refresh/retention: present (eDRAM, retention-relaxed STT-RAM,
//     where the refresh clock doubles as the scrub clock) or absent
//     (non-volatile STT-RAM, ReRAM);
//   - per-access read/write dynamic-energy asymmetry, as scale factors
//     over the Table-2 eDRAM per-access energy;
//   - leakage per powered way, as a scale factor over Table-2 leakage;
//   - optional per-line endurance (wear) counters with an intra-set
//     wear-levelling period.
//
// The eDRAM backend has every factor at 1 and refresh present, so the
// existing simulator behaviour — and its energy arithmetic, bit for
// bit — is the edram Technology by construction.
package tech

import (
	"fmt"
	"sort"
	"strings"
)

// Kind enumerates the storage-technology families.
type Kind int

const (
	// EDRAM is the paper's baseline technology: volatile, refresh
	// clock, symmetric access energy.
	EDRAM Kind = iota
	// STTRAM is spin-transfer-torque RAM: non-volatile (or
	// retention-relaxed with scrubbing), writes far more expensive
	// than reads, low leakage.
	STTRAM
	// RERAM is resistive RAM: non-volatile, very expensive writes,
	// limited write endurance (per-line wear tracking).
	RERAM
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case EDRAM:
		return "edram"
	case STTRAM:
		return "sttram"
	case RERAM:
		return "reram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Props captures the technology semantics the simulator consumes.
// Energy factors are dimensionless scales over the Table-2 eDRAM
// constants for the same capacity, so every backend inherits the
// paper's capacity scaling.
type Props struct {
	// HasRefresh reports whether cells lose state and need a periodic
	// refresh (eDRAM) or scrub (retention-relaxed STT-RAM) clock.
	HasRefresh bool
	// RetentionScale multiplies the configured eDRAM retention period
	// to obtain this technology's refresh/scrub period. Must be
	// positive when HasRefresh and zero when the technology has no
	// refresh clock (retention is meaningless without one).
	RetentionScale float64
	// ReadFactor and WriteFactor scale the per-access dynamic energy
	// for reads and writes respectively. Both must be positive.
	ReadFactor float64
	// WriteFactor ≫ ReadFactor models STT-RAM/ReRAM write asymmetry.
	WriteFactor float64
	// RefreshFactor scales the energy charged per line refresh/scrub.
	// Must be positive when HasRefresh and zero otherwise.
	RefreshFactor float64
	// LeakFactor scales leakage power per powered way. Must be
	// positive (non-volatile cells still leak through periphery).
	LeakFactor float64
	// TrackWear enables per-line write-endurance counters: every
	// write hit and every fill charges one write to the frame.
	TrackWear bool
	// WearLevelPeriod, when positive, remaps the most-worn active
	// frame of a set onto the least-worn one every WearLevelPeriod-th
	// write to that set (intra-set wear-levelling). Requires
	// TrackWear; 0 disables levelling.
	WearLevelPeriod int
	// EnduranceWrites is the per-line write budget the telemetry
	// histograms are judged against. Must be positive iff TrackWear.
	EnduranceWrites uint64
}

// Technology is the interface the simulator programs against.
type Technology interface {
	// Kind returns the technology family.
	Kind() Kind
	// Name returns the canonical registry name (e.g. "sttram-relaxed").
	Name() string
	// Props returns the semantic parameters.
	Props() Props
	// Validate checks the parameterisation for internal consistency.
	Validate() error
}

// Spec is the concrete Technology implementation used by the builtin
// registry and by tests constructing invalid parameterisations.
type Spec struct {
	TechKind Kind
	TechName string
	P        Props
}

// Kind returns the technology family.
func (s Spec) Kind() Kind { return s.TechKind }

// Name returns the registry name.
func (s Spec) Name() string { return s.TechName }

// Props returns the semantic parameters.
func (s Spec) Props() Props { return s.P }

// Validate checks the parameterisation. The rules mirror the
// cache.Params/sim.Config validate suites: every physically
// meaningless combination is rejected with a distinct error.
func (s Spec) Validate() error {
	if s.TechName == "" {
		return fmt.Errorf("tech: empty technology name")
	}
	p := s.P
	if p.ReadFactor <= 0 || p.WriteFactor <= 0 {
		return fmt.Errorf("tech %s: read/write energy factors must be positive", s.TechName)
	}
	if p.LeakFactor <= 0 {
		return fmt.Errorf("tech %s: leakage factor must be positive", s.TechName)
	}
	if p.RefreshFactor < 0 {
		return fmt.Errorf("tech %s: negative refresh energy factor", s.TechName)
	}
	if p.RetentionScale < 0 {
		return fmt.Errorf("tech %s: negative retention scale", s.TechName)
	}
	if p.HasRefresh {
		if p.RetentionScale == 0 {
			return fmt.Errorf("tech %s: refresh technology needs a positive retention scale", s.TechName)
		}
		if p.RefreshFactor == 0 {
			return fmt.Errorf("tech %s: refresh technology needs a positive refresh energy factor", s.TechName)
		}
	} else {
		if p.RetentionScale != 0 {
			return fmt.Errorf("tech %s: retention on a non-refresh technology", s.TechName)
		}
		if p.RefreshFactor != 0 {
			return fmt.Errorf("tech %s: refresh energy on a non-refresh technology", s.TechName)
		}
	}
	if p.TrackWear && p.EnduranceWrites == 0 {
		return fmt.Errorf("tech %s: wear tracking with zero endurance", s.TechName)
	}
	if !p.TrackWear && p.EnduranceWrites != 0 {
		return fmt.Errorf("tech %s: endurance budget without wear tracking", s.TechName)
	}
	if p.WearLevelPeriod < 0 {
		return fmt.Errorf("tech %s: negative wear-level period", s.TechName)
	}
	if p.WearLevelPeriod > 0 && !p.TrackWear {
		return fmt.Errorf("tech %s: wear-levelling without wear tracking", s.TechName)
	}
	return nil
}

// Edram is the paper's eDRAM backend: refresh present, every energy
// factor exactly 1, so routing eDRAM through the Technology interface
// reproduces the pre-interface arithmetic bit for bit.
func Edram() Spec {
	return Spec{TechKind: EDRAM, TechName: "edram", P: Props{
		HasRefresh:     true,
		RetentionScale: 1,
		ReadFactor:     1,
		WriteFactor:    1,
		RefreshFactor:  1,
		LeakFactor:     1,
	}}
}

// Sttram is the non-volatile STT-RAM backend of arxiv 1312.2207: no
// refresh clock at all, reads slightly cheaper than an eDRAM access,
// writes several times more expensive, and much lower leakage.
func Sttram() Spec {
	return Spec{TechKind: STTRAM, TechName: "sttram", P: Props{
		HasRefresh:  false,
		ReadFactor:  0.8,
		WriteFactor: 6,
		LeakFactor:  0.25,
	}}
}

// SttramRelaxed is the retention-relaxed STT-RAM variant of 1312.2207:
// lowering the thermal barrier makes writes cheaper but cells volatile
// over ~ms scales, so blocks need periodic scrubbing — modelled as a
// refresh clock at RetentionScale times the configured eDRAM period,
// with each scrub costing a write (RefreshFactor = WriteFactor).
func SttramRelaxed() Spec {
	return Spec{TechKind: STTRAM, TechName: "sttram-relaxed", P: Props{
		HasRefresh:     true,
		RetentionScale: 20,
		ReadFactor:     0.8,
		WriteFactor:    3,
		RefreshFactor:  3,
		LeakFactor:     0.25,
	}}
}

// Reram is the write-endurance-limited ReRAM backend of arxiv
// 1311.0041: non-volatile, expensive writes, per-line wear counters
// and intra-set wear-levelling every 64th write to a set, judged
// against a 10^6-write endurance budget.
func Reram() Spec {
	return Spec{TechKind: RERAM, TechName: "reram", P: Props{
		HasRefresh:      false,
		ReadFactor:      1.2,
		WriteFactor:     10,
		LeakFactor:      0.2,
		TrackWear:       true,
		WearLevelPeriod: 64,
		EnduranceWrites: 1_000_000,
	}}
}

// builtins maps registry names to pre-validated, interface-boxed
// specs. Boxing once at init keeps New allocation-free on the hot
// construction path; the values are safe to share because Spec's
// methods all take value receivers.
var builtins = func() map[string]Technology {
	m := make(map[string]Technology)
	for _, ctor := range []func() Spec{Edram, Sttram, SttramRelaxed, Reram} {
		s := ctor()
		if err := s.Validate(); err != nil {
			panic(err)
		}
		m[s.TechName] = s
	}
	return m
}()

// CanonicalName maps a user-supplied technology name to its canonical
// registry form: the empty string means eDRAM (the pre-interface
// default), everything else is returned unchanged.
func CanonicalName(name string) string {
	if name == "" {
		return "edram"
	}
	return name
}

// New resolves a technology by registry name. The empty string
// resolves to eDRAM so zero-value configurations keep their
// pre-interface meaning.
func New(name string) (Technology, error) {
	t, ok := builtins[CanonicalName(name)]
	if !ok {
		return nil, fmt.Errorf("tech: unknown technology %q (want %s)", name, Names())
	}
	return t, nil
}

// List returns the registry names in sorted order.
func List() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Names returns the registry names joined with "|" for flag help text.
func Names() string { return strings.Join(List(), "|") }
