// Coordinator: membership, the task/lease table, and their HTTP
// surface. All state is in-memory — the durable state of a sweep is
// the content-addressed store itself, so a restarted coordinator
// simply re-issues whatever jobs clients resubmit, and every already-
// computed unit is a cache hit.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"repro/internal/tracez"
)

// CoordinatorConfig parameterises a Coordinator. Zero values select
// the documented defaults.
type CoordinatorConfig struct {
	// Self is the coordinator's own member URL; it participates in
	// shard placement alongside the workers. Required.
	Self string
	// LeaseTTL is how long a granted lease lives without a heartbeat
	// extension before its task re-queues (default 15s).
	LeaseTTL time.Duration
	// HeartbeatEvery is the cadence advertised to workers (default
	// LeaseTTL/5, at least 500ms).
	HeartbeatEvery time.Duration
	// MemberTTL expires workers that stop heartbeating (default
	// 3×HeartbeatEvery + 1s).
	MemberTTL time.Duration
	// DoneRetention prunes terminal tasks from the table (default 5m);
	// a pruned task that is resubmitted re-leases, and the worker's
	// store lookup turns it into a cheap cache hit.
	DoneRetention time.Duration
	// Replicas is the shard replication factor advertised to joiners
	// (default 2).
	Replicas int
	// Logger receives membership and lease lifecycle logs. Nil
	// discards.
	Logger *slog.Logger
	// Tracer receives worker-shipped spans (Inject). Nil drops them —
	// span shipping degrades gracefully when the coordinator doesn't
	// trace.
	Tracer *tracez.Tracer
	// Client fetches member /metrics for fleet aggregation (default: a
	// 5-second-timeout client).
	Client *http.Client
	// JournalSize bounds the cluster event journal ring (default 1024).
	JournalSize int
}

func (c *CoordinatorConfig) fill() error {
	if c.Self == "" {
		return fmt.Errorf("cluster: CoordinatorConfig.Self is required")
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = c.LeaseTTL / 5
		if c.HeartbeatEvery < 500*time.Millisecond {
			c.HeartbeatEvery = 500 * time.Millisecond
		}
	}
	if c.MemberTTL <= 0 {
		c.MemberTTL = 3*c.HeartbeatEvery + time.Second
	}
	if c.DoneRetention <= 0 {
		c.DoneRetention = 5 * time.Minute
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if c.JournalSize <= 0 {
		c.JournalSize = 1024
	}
	return nil
}

type taskState int

const (
	taskPending taskState = iota
	taskLeased
	taskDone
	taskFailed
)

// task is one table entry. done closes exactly once, after err (if
// any) is set, so TaskHandle readers need no lock.
type task struct {
	Task
	state    taskState
	worker   string
	deadline time.Time
	doneAt   time.Time
	// expired marks a lease that timed out at least once; the next
	// grant counts as a re-issue.
	expired bool
	// completedBy is the worker whose terminal report won, kept for
	// attribution after worker is cleared.
	completedBy string
	err         error
	done        chan struct{}
}

type memberState struct {
	url      string
	lastSeen time.Time
}

// Coordinator owns the cluster's membership and lease table.
type Coordinator struct {
	cfg     CoordinatorConfig
	journal *Journal

	mu      sync.Mutex
	members map[string]*memberState
	tasks   map[string]*task
	queue   []string // FIFO of pending task keys (may hold stale entries)
	wake    chan struct{}
	closed  bool

	workersJoined, workersExpired               uint64
	leasesIssued, leasesExpired, leasesReissued uint64
	tasksSubmitted, tasksCompleted, tasksFailed uint64
	spansInjected, spansDropped                 uint64

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// NewCoordinator builds a coordinator and starts its janitor (lease
// and member expiry). Call Close on the way out.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:         cfg,
		journal:     NewJournal(cfg.JournalSize),
		members:     make(map[string]*memberState),
		tasks:       make(map[string]*task),
		wake:        make(chan struct{}),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	go c.janitor()
	return c, nil
}

// Close stops the janitor. Outstanding TaskHandles never resolve
// after Close; the owning server drains jobs first.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.janitorStop)
	<-c.janitorDone
}

// janitor periodically expires members and leases and prunes terminal
// tasks. The tick is fast relative to the TTLs so expiry latency is
// bounded by the TTLs themselves, not the sweep cadence.
func (c *Coordinator) janitor() {
	defer close(c.janitorDone)
	tick := c.cfg.LeaseTTL / 8
	if tick < 50*time.Millisecond {
		tick = 50 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.janitorStop:
			return
		case <-t.C:
			c.mu.Lock()
			c.expireLocked(time.Now())
			c.mu.Unlock()
		}
	}
}

// expireLocked applies every time-based transition: dead members out
// of the member set (their leases re-queue immediately), timed-out
// leases back to pending, terminal tasks older than the retention
// pruned. Caller holds mu.
func (c *Coordinator) expireLocked(now time.Time) {
	for url, m := range c.members {
		if now.Sub(m.lastSeen) <= c.cfg.MemberTTL {
			continue
		}
		delete(c.members, url)
		c.workersExpired++
		c.cfg.Logger.Warn("cluster worker expired", "worker", url)
		c.journal.Append(JournalEvent{Kind: EventWorkerExpired, Worker: url})
		for key, t := range c.tasks {
			if t.state == taskLeased && t.worker == url {
				c.requeueLocked(key, t, "worker expired")
			}
		}
	}
	for key, t := range c.tasks {
		switch t.state {
		case taskLeased:
			if now.After(t.deadline) {
				c.requeueLocked(key, t, "lease ttl elapsed")
			}
		case taskDone, taskFailed:
			if now.Sub(t.doneAt) > c.cfg.DoneRetention {
				delete(c.tasks, key)
			}
		}
	}
}

// requeueLocked returns a leased task to the pending queue. Caller
// holds mu.
func (c *Coordinator) requeueLocked(key string, t *task, why string) {
	c.cfg.Logger.Warn("cluster lease expired",
		"key", key[:12], "worker", t.worker, "reason", why)
	c.journal.Append(JournalEvent{
		Kind: EventLeaseExpired, Worker: t.worker, Key: key,
		TraceID: t.TraceID, Detail: why,
	})
	t.state = taskPending
	t.worker = ""
	t.expired = true
	c.leasesExpired++
	c.queue = append(c.queue, key)
	c.wakeLocked()
}

// wakeLocked wakes every long-polling lease request. Caller holds mu.
func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// touchLocked refreshes (or implicitly registers) a member. Caller
// holds mu.
func (c *Coordinator) touchLocked(url string) {
	if m, ok := c.members[url]; ok {
		m.lastSeen = time.Now()
		return
	}
	c.members[url] = &memberState{url: url, lastSeen: time.Now()}
	c.workersJoined++
	c.cfg.Logger.Info("cluster worker joined", "worker", url)
	c.journal.Append(JournalEvent{Kind: EventWorkerJoined, Worker: url})
}

// memberURLsLocked returns self plus the live workers, sorted for
// deterministic wire payloads. Caller holds mu.
func (c *Coordinator) memberURLsLocked() []string {
	out := make([]string, 0, len(c.members)+1)
	out = append(out, c.cfg.Self)
	for url := range c.members {
		if url != c.cfg.Self {
			out = append(out, url)
		}
	}
	sort.Strings(out)
	return out
}

// MemberURLs returns the current live member list (coordinator
// included) — the MembersFunc the coordinator's own sharded store
// routes by.
func (c *Coordinator) MemberURLs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.memberURLsLocked()
}

// ---- task submission (server side) ----

// TaskHandle follows one submitted task to its terminal state.
type TaskHandle struct {
	Key string
	t   *task
}

// Done closes when the task reaches a terminal state.
func (h *TaskHandle) Done() <-chan struct{} { return h.t.done }

// Err returns the task's terminal error; call only after Done closes.
func (h *TaskHandle) Err() error { return h.t.err }

// Worker returns the worker whose terminal report resolved the task;
// call only after Done closes.
func (h *TaskHandle) Worker() string { return h.t.completedBy }

// Submit enqueues a task (or coalesces onto the existing entry for
// its key — tasks from concurrent jobs that share a unit share one
// lease, the cluster-wide single-flight). A previously failed entry
// is replaced so resubmission retries.
func (c *Coordinator) Submit(t Task) *TaskHandle {
	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, ok := c.tasks[t.Key]; ok && existing.state != taskFailed {
		return &TaskHandle{Key: t.Key, t: existing}
	}
	nt := &task{Task: t, state: taskPending, done: make(chan struct{})}
	c.tasks[t.Key] = nt
	c.queue = append(c.queue, t.Key)
	c.tasksSubmitted++
	c.journal.Append(JournalEvent{
		Kind: EventTaskSubmitted, Key: t.Key, TraceID: t.TraceID, Detail: t.Label,
	})
	c.wakeLocked()
	return &TaskHandle{Key: t.Key, t: nt}
}

// ---- lease protocol (worker side) ----

// lease grants the next pending task to worker, long-polling up to
// wait. ok is false when no task became available in time.
func (c *Coordinator) lease(ctx context.Context, worker string, wait time.Duration) (Task, bool) {
	deadline := time.Now().Add(wait)
	for {
		c.mu.Lock()
		c.touchLocked(worker)
		c.expireLocked(time.Now())
		for len(c.queue) > 0 {
			key := c.queue[0]
			c.queue = c.queue[1:]
			t, ok := c.tasks[key]
			if !ok || t.state != taskPending {
				continue // stale queue entry (pruned, or already re-leased)
			}
			t.state = taskLeased
			t.worker = worker
			t.deadline = time.Now().Add(c.cfg.LeaseTTL)
			c.leasesIssued++
			kind := EventLeaseGranted
			if t.expired {
				c.leasesReissued++
				kind = EventLeaseReissued
				c.cfg.Logger.Info("cluster lease re-issued", "key", key[:12], "worker", worker)
			}
			c.journal.Append(JournalEvent{
				Kind: kind, Worker: worker, Key: key, TraceID: t.TraceID, Detail: t.Label,
			})
			out := t.Task
			c.mu.Unlock()
			return out, true
		}
		wake := c.wake
		c.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return Task{}, false
		}
		timer := time.NewTimer(remain)
		select {
		case <-wake:
			timer.Stop()
		case <-timer.C:
			return Task{}, false
		case <-ctx.Done():
			timer.Stop()
			return Task{}, false
		}
	}
}

// heartbeat refreshes worker's membership and extends its held
// leases, returning the live member list. Worker-forwarded journal
// events (replica repairs, version-skew rejections) are re-sequenced
// into the coordinator's journal; other kinds are discarded so a
// worker cannot forge membership or lease history.
func (c *Coordinator) heartbeat(worker string, held []string, events []JournalEvent) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(worker)
	for _, key := range held {
		if t, ok := c.tasks[key]; ok && t.state == taskLeased && t.worker == worker {
			t.deadline = time.Now().Add(c.cfg.LeaseTTL)
		}
	}
	for _, ev := range events {
		if ev.Kind != EventReplicaRepair && ev.Kind != EventVersionSkew {
			continue
		}
		ev.Seq = 0 // re-sequenced by Append
		ev.Worker = worker
		c.journal.Append(ev)
	}
	return c.memberURLsLocked()
}

// complete records a leased task's outcome. Completions are accepted
// from any worker (a lease may have expired and been re-issued — the
// first terminal report wins; later ones are no-ops, harmless because
// all runs of a key produce identical artifacts).
func (c *Coordinator) complete(worker, key, errMsg string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(worker)
	t, ok := c.tasks[key]
	if !ok || t.state == taskDone || t.state == taskFailed {
		return
	}
	t.doneAt = time.Now()
	t.worker = ""
	t.completedBy = worker
	if errMsg != "" {
		t.state = taskFailed
		t.err = fmt.Errorf("cluster: task %s failed on %s: %s", key[:12], worker, errMsg)
		c.tasksFailed++
		c.cfg.Logger.Error("cluster task failed", "key", key[:12], "worker", worker, "err", errMsg)
		c.journal.Append(JournalEvent{
			Kind: EventTaskFailed, Worker: worker, Key: key, TraceID: t.TraceID, Detail: errMsg,
		})
	} else {
		t.state = taskDone
		c.tasksCompleted++
		c.journal.Append(JournalEvent{
			Kind: EventTaskCompleted, Worker: worker, Key: key, TraceID: t.TraceID, Detail: t.Label,
		})
	}
	close(t.done)
}

// leave deregisters a worker; its leases re-queue immediately.
func (c *Coordinator) leave(worker string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.members[worker]; !ok {
		return
	}
	delete(c.members, worker)
	c.cfg.Logger.Info("cluster worker left", "worker", worker)
	c.journal.Append(JournalEvent{Kind: EventWorkerLeft, Worker: worker})
	for key, t := range c.tasks {
		if t.state == taskLeased && t.worker == worker {
			c.requeueLocked(key, t, "worker left")
		}
	}
}

// Journal exposes the cluster event journal (the serve layer tails it
// into job SSE feeds).
func (c *Coordinator) Journal() *Journal { return c.journal }

// NoteEvent appends an event observed outside the coordinator's own
// state machine (e.g. the colocated node's shard repairs) to the
// journal, returning the stamped event.
func (c *Coordinator) NoteEvent(ev JournalEvent) JournalEvent {
	return c.journal.Append(ev)
}

// Stats snapshots the coordinator's gauges and counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		WorkersLive:    len(c.members),
		WorkersJoined:  c.workersJoined,
		WorkersExpired: c.workersExpired,
		LeasesIssued:   c.leasesIssued,
		LeasesExpired:  c.leasesExpired,
		LeasesReissued: c.leasesReissued,
		TasksSubmitted: c.tasksSubmitted,
		TasksCompleted: c.tasksCompleted,
		TasksFailed:    c.tasksFailed,
		SpansInjected:  c.spansInjected,
		SpansDropped:   c.spansDropped,
	}
	for _, t := range c.tasks {
		switch t.state {
		case taskPending:
			st.TasksPending++
		case taskLeased:
			st.LeasesOutstanding++
		}
	}
	return st
}

// Status renders the full status view for /v1/cluster/status.
func (c *Coordinator) Status() StatusView {
	st := c.Stats()
	c.mu.Lock()
	defer c.mu.Unlock()
	v := StatusView{Self: c.cfg.Self, Replicas: c.cfg.Replicas, Counters: st}
	held := map[string]int{}
	for _, t := range c.tasks {
		switch t.state {
		case taskPending:
			v.Tasks.Pending++
		case taskLeased:
			v.Tasks.Leased++
			held[t.worker]++
		case taskDone:
			v.Tasks.Done++
		case taskFailed:
			v.Tasks.Failed++
		}
	}
	now := time.Now()
	for _, m := range c.members {
		v.Workers = append(v.Workers, WorkerView{
			URL:           m.url,
			LastSeenMilli: now.Sub(m.lastSeen).Milliseconds(),
			Held:          held[m.url],
		})
	}
	sort.Slice(v.Workers, func(i, j int) bool { return v.Workers[i].URL < v.Workers[j].URL })
	return v
}

// ---- HTTP surface ----

// maxClusterBody bounds protocol bodies (tasks are small; the config
// dominates and is well under a kilobyte).
const maxClusterBody = 1 << 20

// maxLeaseWait caps a lease request's long-poll.
const maxLeaseWait = 30 * time.Second

// Register mounts the cluster protocol on mux. Every response carries
// X-Esteem-Node so clients can attribute it even when the coordinator
// runs outside the serve layer (which stamps the same header).
func (c *Coordinator) Register(mux *http.ServeMux) {
	h := func(fn http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("X-Esteem-Node", c.cfg.Self)
			fn(w, r)
		}
	}
	mux.HandleFunc("POST /v1/cluster/join", h(c.handleJoin))
	mux.HandleFunc("POST /v1/cluster/heartbeat", h(c.handleHeartbeat))
	mux.HandleFunc("POST /v1/cluster/lease", h(c.handleLease))
	mux.HandleFunc("POST /v1/cluster/complete", h(c.handleComplete))
	mux.HandleFunc("POST /v1/cluster/spans", h(c.handleSpans))
	mux.HandleFunc("POST /v1/cluster/leave", h(c.handleLeave))
	mux.HandleFunc("GET /v1/cluster/status", h(c.handleStatus))
	mux.HandleFunc("GET /v1/cluster/events", h(c.handleEvents))
	mux.HandleFunc("GET /v1/cluster/metrics", h(c.handleFleetMetrics))
}

// decodeBody strictly decodes a bounded JSON request body.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxClusterBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return false
	}
	return true
}

// validWorkerURL rejects registration of unusable member URLs (they
// would poison shard placement for every key they win).
func validWorkerURL(raw string) error {
	u, err := url.Parse(raw)
	if err != nil {
		return err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("unsupported scheme %q", u.Scheme)
	}
	if u.Host == "" {
		return fmt.Errorf("missing host")
	}
	return nil
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := validWorkerURL(req.URL); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("worker url: %v", err))
		return
	}
	c.mu.Lock()
	c.touchLocked(req.URL)
	members := c.memberURLsLocked()
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, JoinResponse{
		Members:         members,
		Replicas:        c.cfg.Replicas,
		LeaseTTLMillis:  c.cfg.LeaseTTL.Milliseconds(),
		HeartbeatMillis: c.cfg.HeartbeatEvery.Milliseconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := validWorkerURL(req.URL); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("worker url: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{Members: c.heartbeat(req.URL, req.Held, req.Events)})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := validWorkerURL(req.URL); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("worker url: %v", err))
		return
	}
	wait := time.Duration(req.WaitMillis) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	t, ok := c.lease(r.Context(), req.URL, wait)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, LeaseResponse{Task: t, TTLMillis: c.cfg.LeaseTTL.Milliseconds()})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// Spans land in the tracer BEFORE the task resolves: anything
	// waiting on the task's Done channel (the job's finish contract)
	// may immediately read a whole merged trace.
	c.injectSpans(req.Spans)
	c.complete(req.URL, req.Key, req.Error)
	w.WriteHeader(http.StatusOK)
}

// handleSpans is the bounded mid-task flush for span sets too large
// for one complete body.
func (c *Coordinator) handleSpans(w http.ResponseWriter, r *http.Request) {
	var req SpansRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.injectSpans(req.Spans)
	w.WriteHeader(http.StatusOK)
}

// injectSpans records worker-shipped spans into the coordinator's
// tracer; malformed spans (or a tracer-less coordinator) count as
// drops rather than erroring the protocol call.
func (c *Coordinator) injectSpans(spans []tracez.WireSpan) {
	if len(spans) == 0 {
		return
	}
	var injected, dropped uint64
	for _, ws := range spans {
		if c.cfg.Tracer == nil {
			dropped++
			continue
		}
		d, err := ws.Data()
		if err == nil {
			err = c.cfg.Tracer.Inject(d)
		}
		if err != nil {
			dropped++
			c.cfg.Logger.Warn("cluster span dropped", "span", ws.Name, "err", err)
			continue
		}
		injected++
	}
	c.mu.Lock()
	c.spansInjected += injected
	c.spansDropped += dropped
	c.mu.Unlock()
}

func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	var since int64
	if s := r.URL.Query().Get("since"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &since); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad since=%q", s))
			return
		}
	}
	max := 0
	if s := r.URL.Query().Get("max"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &max); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad max=%q", s))
			return
		}
	}
	events, _ := c.journal.Since(since, max)
	writeJSON(w, http.StatusOK, EventsResponse{
		Events:  events,
		NextSeq: c.journal.NextSeq(),
		Dropped: c.journal.Dropped(),
	})
}

func (c *Coordinator) handleLeave(w http.ResponseWriter, r *http.Request) {
	var req LeaveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c.leave(req.URL)
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{msg})
}
