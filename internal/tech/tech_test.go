package tech

import (
	"strings"
	"testing"
)

// TestBuiltinsValid proves every registry entry passes its own
// validation and resolves by name, and that the empty string is the
// eDRAM default.
func TestBuiltinsValid(t *testing.T) {
	for _, name := range List() {
		tec, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if tec.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, tec.Name())
		}
		if err := tec.Validate(); err != nil {
			t.Fatalf("builtin %q invalid: %v", name, err)
		}
	}
	def, err := New("")
	if err != nil {
		t.Fatalf(`New(""): %v`, err)
	}
	if def.Name() != "edram" || def.Kind() != EDRAM {
		t.Fatalf(`New("") = %s/%v, want edram/EDRAM`, def.Name(), def.Kind())
	}
	if !def.Props().HasRefresh {
		t.Fatal("edram must have a refresh clock")
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("mram"); err == nil {
		t.Fatal("New(mram) accepted an unknown technology")
	}
}

// TestSpecValidate is the table-driven parameter validation suite,
// mirroring the cache.Params/sim.Config validate tests: each case
// perturbs a valid Spec into one specific illegal combination.
func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string
	}{
		{"valid-edram", func(s *Spec) { *s = Edram() }, ""},
		{"valid-sttram", func(s *Spec) { *s = Sttram() }, ""},
		{"valid-sttram-relaxed", func(s *Spec) { *s = SttramRelaxed() }, ""},
		{"valid-reram", func(s *Spec) { *s = Reram() }, ""},
		{"empty-name", func(s *Spec) { s.TechName = "" }, "empty technology name"},
		{"zero-read-energy", func(s *Spec) { s.P.ReadFactor = 0 }, "read/write energy factors"},
		{"negative-read-energy", func(s *Spec) { s.P.ReadFactor = -1 }, "read/write energy factors"},
		{"negative-write-energy", func(s *Spec) { s.P.WriteFactor = -0.5 }, "read/write energy factors"},
		{"zero-leak", func(s *Spec) { s.P.LeakFactor = 0 }, "leakage factor"},
		{"negative-leak", func(s *Spec) { s.P.LeakFactor = -2 }, "leakage factor"},
		{"negative-refresh-energy", func(s *Spec) { s.P.RefreshFactor = -1 }, "negative refresh energy factor"},
		{"negative-retention-scale", func(s *Spec) { s.P.RetentionScale = -1 }, "negative retention scale"},
		{"refresh-without-retention", func(s *Spec) {
			*s = Edram()
			s.P.RetentionScale = 0
		}, "positive retention scale"},
		{"refresh-without-refresh-energy", func(s *Spec) {
			*s = Edram()
			s.P.RefreshFactor = 0
		}, "positive refresh energy factor"},
		{"retention-on-non-refresh", func(s *Spec) {
			*s = Sttram()
			s.P.RetentionScale = 2
		}, "retention on a non-refresh technology"},
		{"refresh-energy-on-non-refresh", func(s *Spec) {
			*s = Sttram()
			s.P.RefreshFactor = 1
		}, "refresh energy on a non-refresh technology"},
		{"zero-endurance", func(s *Spec) {
			*s = Reram()
			s.P.EnduranceWrites = 0
		}, "zero endurance"},
		{"endurance-without-tracking", func(s *Spec) {
			*s = Sttram()
			s.P.EnduranceWrites = 100
		}, "endurance budget without wear tracking"},
		{"negative-wear-period", func(s *Spec) {
			*s = Reram()
			s.P.WearLevelPeriod = -1
		}, "negative wear-level period"},
		{"levelling-without-tracking", func(s *Spec) {
			*s = Sttram()
			s.P.WearLevelPeriod = 8
		}, "wear-levelling without wear tracking"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Edram()
			tc.mutate(&s)
			err := s.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestBackendSemantics pins the load-bearing semantic differences
// between the builtin backends.
func TestBackendSemantics(t *testing.T) {
	st := Sttram().Props()
	if st.HasRefresh {
		t.Fatal("sttram must not have a refresh clock")
	}
	if st.WriteFactor <= st.ReadFactor {
		t.Fatalf("sttram write factor %v must exceed read factor %v", st.WriteFactor, st.ReadFactor)
	}
	if st.LeakFactor >= 1 {
		t.Fatalf("sttram leakage %v must undercut eDRAM", st.LeakFactor)
	}
	rel := SttramRelaxed().Props()
	if !rel.HasRefresh || rel.RetentionScale <= 1 {
		t.Fatalf("sttram-relaxed needs a scrub clock at a relaxed (>1x) period, got %+v", rel)
	}
	if rel.WriteFactor >= st.WriteFactor {
		t.Fatalf("relaxed retention must cheapen writes: %v vs %v", rel.WriteFactor, st.WriteFactor)
	}
	rr := Reram().Props()
	if rr.HasRefresh || !rr.TrackWear || rr.WearLevelPeriod <= 0 || rr.EnduranceWrites == 0 {
		t.Fatalf("reram must be non-refresh with wear tracking and levelling, got %+v", rr)
	}
	if rr.WriteFactor <= rr.ReadFactor {
		t.Fatalf("reram write factor %v must exceed read factor %v", rr.WriteFactor, rr.ReadFactor)
	}
}
