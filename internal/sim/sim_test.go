package sim

import (
	"math"
	"testing"
)

// testConfig returns a config scaled for fast tests.
func testConfig(cores int, tech Technique) Config {
	cfg := DefaultConfig(cores)
	cfg.Technique = tech
	cfg.WarmupInstr = 200_000
	cfg.MeasureInstr = 1_000_000
	cfg.IntervalCycles = 200_000
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.MeasureInstr = 0 },
		func(c *Config) { c.IntervalCycles = 0 },
		func(c *Config) { c.RetentionMicros = 0 },
		func(c *Config) { c.FreqHz = 0 },
		func(c *Config) { c.Technique = Technique(99) },
	}
	for i, mutate := range cases {
		c := DefaultConfig(1)
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	c1 := DefaultConfig(1)
	if c1.L2SizeBytes != 4<<20 || c1.Modules != 8 || c1.MemBandwidthBytesPerSec != 10e9 {
		t.Errorf("single-core defaults wrong: %+v", c1)
	}
	c2 := DefaultConfig(2)
	if c2.L2SizeBytes != 8<<20 || c2.Modules != 16 || c2.MemBandwidthBytesPerSec != 15e9 {
		t.Errorf("dual-core defaults wrong: %+v", c2)
	}
	for _, c := range []Config{c1, c2} {
		if c.L2Assoc != 16 || c.L1SizeBytes != 32<<10 || c.L1Assoc != 4 ||
			c.LineBytes != 64 || c.Banks != 4 || c.RetentionMicros != 50 ||
			c.MemLatencyCycles != 220 || c.FreqHz != 2e9 ||
			c.SamplingRatio != 64 || c.RefrintPhases != 4 ||
			c.Esteem.Alpha != 0.97 || c.Esteem.AMin != 3 {
			t.Errorf("paper parameters wrong: %+v", c)
		}
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(testConfig(1, Baseline), []string{"nosuch"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := New(testConfig(2, Baseline), []string{"gcc"}); err == nil {
		t.Error("benchmark/core count mismatch accepted")
	}
	bad := testConfig(1, Baseline)
	bad.Cores = 0
	if _, err := New(bad, nil); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestTechniqueString(t *testing.T) {
	names := map[Technique]string{
		Baseline: "baseline", RPV: "rpv", RPD: "rpd",
		PeriodicValid: "periodic-valid", Esteem: "esteem",
		EsteemAllLineRefresh: "esteem-allline", NoRefresh: "no-refresh",
	}
	for tech, want := range names {
		if tech.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(tech), tech.String(), want)
		}
	}
	if Technique(42).String() == "" {
		t.Error("unknown technique should format")
	}
}

func TestBaselineRunBasics(t *testing.T) {
	r, err := Run(testConfig(1, Baseline), []string{"gamess"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cores) != 1 || r.Cores[0].Benchmark != "gamess" {
		t.Fatalf("core results wrong: %+v", r.Cores)
	}
	if r.Cores[0].Instructions < 1_000_000 {
		t.Errorf("measured %d instructions, want >= budget", r.Cores[0].Instructions)
	}
	// gamess fits in L1: IPC exactly 1 and near-zero L2 traffic.
	if r.Cores[0].IPC != 1 {
		t.Errorf("gamess IPC = %v, want 1", r.Cores[0].IPC)
	}
	if r.ActiveRatio != 1 {
		t.Errorf("baseline active ratio = %v, want 1", r.ActiveRatio)
	}
	// Baseline refreshes all 65536 frames every 100k cycles: RPKI =
	// 655.36 * CPI = 655.36 at IPC 1.
	if math.Abs(r.RPKI()-655.36) > 15 {
		t.Errorf("baseline RPKI = %v, want ~655", r.RPKI())
	}
	if r.Activity.ActiveFraction != 1 {
		t.Errorf("baseline F_A = %v", r.Activity.ActiveFraction)
	}
}

func TestEnergyMatchesModel(t *testing.T) {
	r, err := Run(testConfig(1, Baseline), []string{"gcc"})
	if err != nil {
		t.Fatal(err)
	}
	want := r.Model.Eval(r.Activity)
	if math.Abs(want.Total()-r.Energy.Total()) > 1e-12 {
		t.Fatalf("energy %v != model eval %v", r.Energy.Total(), want.Total())
	}
	if r.Energy.Total() <= 0 {
		t.Fatal("non-positive energy")
	}
}

func TestEsteemShrinksAndSavesRefreshes(t *testing.T) {
	base, err := Run(testConfig(1, Baseline), []string{"gobmk"})
	if err != nil {
		t.Fatal(err)
	}
	est, err := Run(testConfig(1, Esteem), []string{"gobmk"})
	if err != nil {
		t.Fatal(err)
	}
	if est.ActiveRatio >= 0.9 {
		t.Errorf("ESTEEM active ratio = %v, expected aggressive shrink for gobmk", est.ActiveRatio)
	}
	if est.RPKI() >= base.RPKI() {
		t.Errorf("ESTEEM RPKI %v >= baseline %v", est.RPKI(), base.RPKI())
	}
	if est.Energy.Total() >= base.Energy.Total() {
		t.Errorf("ESTEEM energy %v >= baseline %v for compact workload", est.Energy.Total(), base.Energy.Total())
	}
}

func TestRPVReducesRefreshesOnSparseWorkload(t *testing.T) {
	base, err := Run(testConfig(1, Baseline), []string{"povray"})
	if err != nil {
		t.Fatal(err)
	}
	rpv, err := Run(testConfig(1, RPV), []string{"povray"})
	if err != nil {
		t.Fatal(err)
	}
	if rpv.Refreshes >= base.Refreshes/2 {
		t.Errorf("RPV refreshes %d vs baseline %d: expected big cut on sparse cache", rpv.Refreshes, base.Refreshes)
	}
	if rpv.ActiveRatio != 1 {
		t.Errorf("RPV active ratio = %v, must stay 1 (no turn-off)", rpv.ActiveRatio)
	}
	if rpv.MPKI() != base.MPKI() {
		t.Errorf("RPV changed MPKI: %v vs %v (it never invalidates)", rpv.MPKI(), base.MPKI())
	}
}

func TestNoRefreshZeroRefreshes(t *testing.T) {
	r, err := Run(testConfig(1, NoRefresh), []string{"gcc"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Refreshes != 0 {
		t.Fatalf("NoRefresh refreshed %d lines", r.Refreshes)
	}
	if r.RefreshStallCycles != 0 {
		t.Fatalf("NoRefresh stalled %d cycles", r.RefreshStallCycles)
	}
}

func TestRPDRunsAndInvalidates(t *testing.T) {
	base, err := Run(testConfig(1, Baseline), []string{"gcc"})
	if err != nil {
		t.Fatal(err)
	}
	rpd, err := Run(testConfig(1, RPD), []string{"gcc"})
	if err != nil {
		t.Fatal(err)
	}
	// RPD refreshes only dirty lines: far fewer refreshes, but more
	// misses (eager invalidation).
	if rpd.Refreshes >= base.Refreshes {
		t.Errorf("RPD refreshes %d >= baseline %d", rpd.Refreshes, base.Refreshes)
	}
	if rpd.MPKI() <= base.MPKI() {
		t.Errorf("RPD MPKI %v <= baseline %v: eager invalidation should cost misses", rpd.MPKI(), base.MPKI())
	}
}

func TestPeriodicValidBetweenBaselineAndRPV(t *testing.T) {
	cfgs := map[string]Technique{"base": Baseline, "pv": PeriodicValid}
	res := map[string]*Result{}
	for name, tech := range cfgs {
		r, err := Run(testConfig(1, tech), []string{"dealII"})
		if err != nil {
			t.Fatal(err)
		}
		res[name] = r
	}
	if res["pv"].Refreshes >= res["base"].Refreshes {
		t.Errorf("periodic-valid refreshes %d >= baseline %d", res["pv"].Refreshes, res["base"].Refreshes)
	}
}

func TestEsteemAllLineAblation(t *testing.T) {
	est, err := Run(testConfig(1, Esteem), []string{"calculix"})
	if err != nil {
		t.Fatal(err)
	}
	all, err := Run(testConfig(1, EsteemAllLineRefresh), []string{"calculix"})
	if err != nil {
		t.Fatal(err)
	}
	// The ablation refreshes every frame (active or not, valid or
	// not): strictly more refreshes than valid-only ESTEEM.
	if all.Refreshes <= est.Refreshes {
		t.Errorf("all-line ablation refreshes %d <= valid-only %d", all.Refreshes, est.Refreshes)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		r, err := Run(testConfig(1, Esteem), []string{"sphinx"})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Energy.Total() != b.Energy.Total() {
		t.Fatalf("energy differs across identical runs: %v vs %v", a.Energy.Total(), b.Energy.Total())
	}
	if a.Cores[0].Cycles != b.Cores[0].Cycles || a.Refreshes != b.Refreshes {
		t.Fatal("run not deterministic")
	}
	// A different seed changes the run.
	cfg := testConfig(1, Esteem)
	cfg.Seed = 999
	c, err := Run(cfg, []string{"sphinx"})
	if err != nil {
		t.Fatal(err)
	}
	if c.Cores[0].Cycles == a.Cores[0].Cycles {
		t.Fatal("seed had no effect")
	}
}

func TestDualCoreRun(t *testing.T) {
	r, err := Run(testConfig(2, Esteem), []string{"gobmk", "nekbone"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cores) != 2 {
		t.Fatalf("cores = %d", len(r.Cores))
	}
	for i, c := range r.Cores {
		if c.Instructions < 1_000_000 {
			t.Errorf("core %d measured %d instructions", i, c.Instructions)
		}
		if c.IPC <= 0 || c.IPC > 1 {
			t.Errorf("core %d IPC = %v", i, c.IPC)
		}
	}
	if r.Cores[0].Benchmark != "gobmk" || r.Cores[1].Benchmark != "nekbone" {
		t.Error("benchmark attribution wrong")
	}
	if r.TotalInstructions() != r.Cores[0].Instructions+r.Cores[1].Instructions {
		t.Error("TotalInstructions wrong")
	}
}

func TestIntervalLogging(t *testing.T) {
	cfg := testConfig(1, Esteem)
	cfg.LogIntervals = true
	r, err := Run(cfg, []string{"h264ref"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Intervals) < 3 {
		t.Fatalf("only %d interval records", len(r.Intervals))
	}
	prevEnd := uint64(0)
	for _, iv := range r.Intervals {
		if iv.EndCycle <= prevEnd {
			t.Fatal("interval end cycles not increasing")
		}
		prevEnd = iv.EndCycle
		if iv.ActiveRatio <= 0 || iv.ActiveRatio > 1 {
			t.Fatalf("interval active ratio %v", iv.ActiveRatio)
		}
		if len(iv.ActiveWays) != cfg.Modules {
			t.Fatalf("interval ways len %d, want %d", len(iv.ActiveWays), cfg.Modules)
		}
		for _, w := range iv.ActiveWays {
			if w < cfg.Esteem.AMin || w > cfg.L2Assoc {
				t.Fatalf("interval ways %d out of [A_min, A]", w)
			}
		}
	}
}

func TestNoIntervalLogWithoutFlag(t *testing.T) {
	r, err := Run(testConfig(1, Esteem), []string{"gcc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Intervals) != 0 {
		t.Fatal("interval log recorded without LogIntervals")
	}
}

func TestRetention40IncreasesBaselineRefreshEnergy(t *testing.T) {
	cfg50 := testConfig(1, Baseline)
	cfg40 := testConfig(1, Baseline)
	cfg40.RetentionMicros = 40
	r50, err := Run(cfg50, []string{"wrf"})
	if err != nil {
		t.Fatal(err)
	}
	r40, err := Run(cfg40, []string{"wrf"})
	if err != nil {
		t.Fatal(err)
	}
	// Shorter retention → more refreshes per instruction and more
	// refresh energy.
	if r40.RPKI() <= r50.RPKI() {
		t.Errorf("RPKI at 40us %v <= at 50us %v", r40.RPKI(), r50.RPKI())
	}
	if r40.Energy.L2Refresh <= r50.Energy.L2Refresh {
		t.Error("refresh energy did not increase at 40us")
	}
}

func TestRefreshStallsHappenOnBaseline(t *testing.T) {
	r, err := Run(testConfig(1, Baseline), []string{"sphinx"})
	if err != nil {
		t.Fatal(err)
	}
	if r.RefreshStallCycles == 0 {
		t.Fatal("baseline run shows no refresh stalls")
	}
	if r.Cores[0].StallRefresh != r.RefreshStallCycles {
		t.Fatal("stall accounting mismatch")
	}
}

func TestMPKIRPKIAccessors(t *testing.T) {
	r := &Result{}
	if r.MPKI() != 0 || r.RPKI() != 0 {
		t.Fatal("zero-instruction metrics should be 0")
	}
}

func BenchmarkSimBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := testConfig(1, Baseline)
		if _, err := Run(cfg, []string{"gcc"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimEsteem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := testConfig(1, Esteem)
		if _, err := Run(cfg, []string{"gcc"}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSmartRefreshTechnique(t *testing.T) {
	base, err := Run(testConfig(1, Baseline), []string{"dealII"})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Run(testConfig(1, SmartRefresh), []string{"dealII"})
	if err != nil {
		t.Fatal(err)
	}
	rpv, err := Run(testConfig(1, RPV), []string{"dealII"})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Refreshes >= base.Refreshes {
		t.Errorf("smart-refresh refreshes %d >= baseline %d", sr.Refreshes, base.Refreshes)
	}
	// Smart-Refresh skips engine refreshes for hot lines entirely, so
	// it should refresh no more than RPV on a reuse-heavy workload.
	if sr.Refreshes > rpv.Refreshes {
		t.Errorf("smart-refresh refreshes %d > rpv %d", sr.Refreshes, rpv.Refreshes)
	}
	if sr.MPKI() != base.MPKI() {
		t.Errorf("smart-refresh changed MPKI (%v vs %v): it never invalidates", sr.MPKI(), base.MPKI())
	}
}

func TestECCExtendedTechnique(t *testing.T) {
	base, err := Run(testConfig(1, Baseline), []string{"dealII"})
	if err != nil {
		t.Fatal(err)
	}
	ecc, err := Run(testConfig(1, ECCExtended), []string{"dealII"})
	if err != nil {
		t.Fatal(err)
	}
	// 4x retention → ~4x fewer refreshes.
	ratio := float64(base.Refreshes) / float64(ecc.Refreshes)
	if ratio < 3 || ratio > 5 {
		t.Errorf("ECC refresh reduction ratio = %v, want ~4", ratio)
	}
	// The surcharge must be visible in the model.
	if ecc.Model.L2DynJ <= base.Model.L2DynJ {
		t.Error("ECC dynamic-energy surcharge missing")
	}
}

func TestTemperatureDerivesRetention(t *testing.T) {
	cfg := testConfig(1, Baseline)
	cfg.RetentionMicros = 0
	cfg.TemperatureC = 105 // 40us per the paper's model
	hot, err := Run(cfg, []string{"gcc"})
	if err != nil {
		t.Fatal(err)
	}
	cfg50 := testConfig(1, Baseline)
	cfg50.RetentionMicros = 40
	want, err := Run(cfg50, []string{"gcc"})
	if err != nil {
		t.Fatal(err)
	}
	if hot.Refreshes != want.Refreshes {
		t.Errorf("105C run refreshes %d != 40us run %d", hot.Refreshes, want.Refreshes)
	}
}

func TestRetentionSigmaDerates(t *testing.T) {
	plain := testConfig(1, Baseline)
	derated := testConfig(1, Baseline)
	derated.RetentionSigma = 0.2
	p, err := Run(plain, []string{"gcc"})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Run(derated, []string{"gcc"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Refreshes <= p.Refreshes {
		t.Errorf("process variation should force more refreshes: %d vs %d", d.Refreshes, p.Refreshes)
	}
}

func TestMaxWayDeltaEndToEnd(t *testing.T) {
	cfg := testConfig(1, Esteem)
	cfg.Esteem.MaxWayDelta = 2
	r, err := Run(cfg, []string{"sphinx"})
	if err != nil {
		t.Fatal(err)
	}
	if r.ActiveRatio >= 1 {
		t.Error("damped ESTEEM did not reconfigure at all")
	}
}

func TestQuadCoreDefaults(t *testing.T) {
	c := DefaultConfig(4)
	if c.L2SizeBytes != 16<<20 || c.Modules != 32 || c.MemBandwidthBytesPerSec != 25e9 {
		t.Fatalf("quad-core defaults wrong: %+v", c)
	}
}

func TestQuadCoreRun(t *testing.T) {
	cfg := testConfig(4, Esteem)
	r, err := Run(cfg, []string{"gobmk", "nekbone", "gamess", "calculix"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cores) != 4 {
		t.Fatalf("cores = %d", len(r.Cores))
	}
	for i, c := range r.Cores {
		if c.Instructions < cfg.MeasureInstr {
			t.Errorf("core %d measured %d instructions", i, c.Instructions)
		}
	}
	if r.ActiveRatio >= 1 {
		t.Error("quad-core ESTEEM did not reconfigure")
	}
}

// TestDualCoreInterference: a benchmark sharing the L2 with an
// L2-hungry partner must run no faster than the same benchmark
// sharing with an L1-resident partner. The comparison uses the
// NoRefresh technique to isolate cache-capacity and bandwidth
// interference: under the baseline's burst-aligned refresh, a busy
// partner can paradoxically *reduce* a core's refresh waits by
// pushing its arrivals past the burst, masking the contention
// effect.
func TestDualCoreInterference(t *testing.T) {
	run := func(partner string) float64 {
		r, err := Run(testConfig(2, NoRefresh), []string{"sphinx", partner})
		if err != nil {
			t.Fatal(err)
		}
		return r.Cores[0].IPC
	}
	calm := run("gamess")      // partner lives in its L1
	noisy := run("libquantum") // partner streams through the L2
	if noisy > calm {
		t.Fatalf("sphinx IPC with streaming partner (%v) > with calm partner (%v)", noisy, calm)
	}
}

// TestFrontierMonotone: the wall-clock activity cycles must be
// positive and at least as large as any single core's measured
// cycles could imply.
func TestActivityCyclesSane(t *testing.T) {
	r, err := Run(testConfig(2, Baseline), []string{"gcc", "bzip2"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Activity.Cycles == 0 {
		t.Fatal("no wall time recorded")
	}
	// Interval records disabled: wall time accumulated in activity
	// only; it must be within 2x of the slower core's cycles.
	maxCyc := r.Cores[0].Cycles
	if r.Cores[1].Cycles > maxCyc {
		maxCyc = r.Cores[1].Cycles
	}
	if r.Activity.Cycles > 2*maxCyc {
		t.Fatalf("wall time %d implausible vs max core cycles %d", r.Activity.Cycles, maxCyc)
	}
}

// TestAddressSpaceIsolation: two cores running the SAME benchmark
// must not share L2 lines (separate processes in the paper's
// multiprogrammed methodology). With per-core offsets, the dual run
// of two gcc instances misses roughly twice as much as one instance
// — shared lines would make the second instance nearly free.
func TestAddressSpaceIsolation(t *testing.T) {
	single, err := Run(testConfig(1, NoRefresh), []string{"gcc"})
	if err != nil {
		t.Fatal(err)
	}
	dual, err := Run(testConfig(2, NoRefresh), []string{"gcc", "gcc"})
	if err != nil {
		t.Fatal(err)
	}
	// The dual-core L2 is twice the size, so per-instance behaviour
	// is comparable; sharing would cut total misses far below 2x.
	ratio := float64(dual.L2.Misses) / float64(single.L2.Misses)
	if ratio < 1.5 {
		t.Fatalf("dual/single miss ratio = %.2f; address spaces appear shared", ratio)
	}
}
