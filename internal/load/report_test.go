package load

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func TestQuantilesOf(t *testing.T) {
	var ms []float64
	for i := 1; i <= 100; i++ {
		ms = append(ms, float64(i))
	}
	q := quantilesOf(ms)
	if q.P50 != 50 || q.P99 != 99 || q.P999 != 100 || q.Max != 100 {
		t.Fatalf("quantiles %+v", q)
	}
	if math.Abs(q.Mean-50.5) > 1e-9 {
		t.Fatalf("mean %g, want 50.5", q.Mean)
	}
	if got := quantilesOf(nil); got != (Quantiles{}) {
		t.Fatalf("empty input gave %+v", got)
	}
}

// healthyReport is a plausible passing run: 600 requests, all
// completed, ~5ms p50, hit rate matching the 0.5 hot fraction.
func healthyReport() Report {
	return Report{
		Date:        "2026-08-08T00:00:00Z",
		HotFraction: 0.5,
		Overall: PhaseStats{
			Name:        "overall",
			Requests:    600,
			Completed:   600,
			AchievedRPS: 54.5,
			Latency:     Quantiles{P50: 5, P99: 25, P999: 40, Max: 44, Mean: 7},
		},
		Phases: []PhaseReport{{PhaseStats: PhaseStats{
			Name: "rps20", Requests: 600, Completed: 600, AchievedRPS: 54.5,
			Latency: Quantiles{P50: 5, P99: 25, P999: 40, Max: 44, Mean: 7},
		}}},
		Cache: CacheStats{Hits: 250, Coalesced: 49, Misses: 301, HitRate: 0.4983},
	}
}

func TestCheckPassesHealthyReport(t *testing.T) {
	rep := healthyReport()
	if err := Check(nil, rep, Thresholds{}); err != nil {
		t.Fatalf("absolute-only check failed: %v", err)
	}
	base := healthyReport()
	if err := Check(&base, rep, Thresholds{}); err != nil {
		t.Fatalf("self-baseline check failed: %v", err)
	}
}

func TestCheckAbsoluteFailures(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"no requests", func(r *Report) { r.Overall.Requests = 0 }, "no requests"},
		{"nothing completed", func(r *Report) {
			r.Overall.Completed = 0
			r.Overall.Errors = r.Overall.Requests
		}, "no request completed"},
		{"zero latency", func(r *Report) { r.Overall.Latency = Quantiles{} }, "degenerate latency"},
		{"zero throughput", func(r *Report) { r.Overall.AchievedRPS = 0 }, "zero achieved throughput"},
		{"error rate", func(r *Report) { r.Overall.Errors = 60 }, "error rate"},
		{"hit rate drift", func(r *Report) { r.Cache.HitRate = 0.1 }, "hit rate"},
	}
	for _, tc := range cases {
		rep := healthyReport()
		tc.mutate(&rep)
		err := Check(nil, rep, Thresholds{})
		if err == nil {
			t.Errorf("%s: check passed, want failure", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}

func TestCheckRelativeBounds(t *testing.T) {
	base := healthyReport()

	slow := healthyReport()
	slow.Overall.Latency.P99 = base.Overall.Latency.P99 * 11
	if err := Check(&base, slow, Thresholds{}); err == nil ||
		!strings.Contains(err.Error(), "p99") {
		t.Fatalf("11x p99 regression not caught: %v", err)
	}

	starved := healthyReport()
	starved.Overall.AchievedRPS = base.Overall.AchievedRPS * 0.2
	if err := Check(&base, starved, Thresholds{}); err == nil ||
		!strings.Contains(err.Error(), "throughput") {
		t.Fatalf("5x throughput collapse not caught: %v", err)
	}

	// Within the loose bounds: 3x slower p99 still passes by design.
	noisy := healthyReport()
	noisy.Overall.Latency.P99 = base.Overall.Latency.P99 * 3
	if err := Check(&base, noisy, Thresholds{}); err != nil {
		t.Fatalf("3x p99 (CI noise territory) rejected: %v", err)
	}
}

func TestCheckHitRateToleranceDisable(t *testing.T) {
	rep := healthyReport()
	rep.Cache.HitRate = 0
	if err := Check(nil, rep, Thresholds{HitRateTolerance: -1}); err != nil {
		t.Fatalf("negative tolerance should disable the hit-rate check: %v", err)
	}
}

// TestDegradeFailsCheck: the gate self-test contract — a degraded copy
// of a passing report must fail against the original as baseline.
func TestDegradeFailsCheck(t *testing.T) {
	base := healthyReport()
	if err := Check(&base, healthyReport(), Thresholds{}); err != nil {
		t.Fatalf("precondition: healthy report must pass: %v", err)
	}
	bad := Degrade(healthyReport(), 20)
	if bad.Overall.Latency.P99 != base.Overall.Latency.P99*20 {
		t.Fatalf("degrade did not scale p99: %g", bad.Overall.Latency.P99)
	}
	if bad.Overall.AchievedRPS != base.Overall.AchievedRPS/20 {
		t.Fatalf("degrade did not deflate throughput: %g", bad.Overall.AchievedRPS)
	}
	if err := Check(&base, bad, Thresholds{}); err == nil {
		t.Fatal("gate passed a 20x-degraded report")
	}
	// Degrade must not mutate its input (phases are shared slices).
	orig := healthyReport()
	_ = Degrade(orig, 20)
	if orig.Phases[0].Latency.P50 != 5 {
		t.Fatal("Degrade mutated its input's phases")
	}
}

func TestTrajectoryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")

	tr, err := LoadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Latest() != nil {
		t.Fatal("missing file should be an empty trajectory")
	}

	tr.Entries = append(tr.Entries, healthyReport())
	if err := SaveTrajectory(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrajectory(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != 1 || len(got.Entries) != 1 {
		t.Fatalf("round trip gave schema=%d entries=%d", got.Schema, len(got.Entries))
	}
	latest := got.Latest()
	if latest == nil || latest.Overall.Requests != 600 {
		t.Fatalf("latest entry %+v", latest)
	}
}

func TestLatencyHistogramCumulative(t *testing.T) {
	h := latencyHistogram([]float64{0.5, 3, 30, 30000})
	if len(h) != len(latencyHistogramBoundsMs) {
		t.Fatalf("%d buckets", len(h))
	}
	// Cumulative: counts never decrease; 0.5ms lands in the first
	// bucket, 30s overflows every bound.
	if h[0].Count != 1 {
		t.Fatalf("le=1ms count %d, want 1", h[0].Count)
	}
	last := h[len(h)-1]
	if last.Count != 3 {
		t.Fatalf("le=%gms count %d, want 3 (30s overflows)", last.LEms, last.Count)
	}
	for i := 1; i < len(h); i++ {
		if h[i].Count < h[i-1].Count {
			t.Fatalf("histogram not cumulative at bucket %d", i)
		}
	}
}
