package runner

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// TestDeriveSeedDistinctAcrossJobKeys derives seeds for the full cross
// product of realistic sweep dimensions — base seeds, techniques,
// workload mixes, core counts — and requires all of them distinct: a
// collision would silently correlate two jobs' reference streams.
func TestDeriveSeedDistinctAcrossJobKeys(t *testing.T) {
	workloads := [][]string{
		{"gcc"}, {"mcf"}, {"lbm"}, {"gobmk"}, {"sphinx"},
		{"gcc", "mcf"}, {"mcf", "gcc"}, {"lbm", "lbm"},
		{"gcc", "mcf", "lbm", "gobmk"},
	}
	seen := make(map[uint64]string)
	n := 0
	for base := uint64(0); base < 8; base++ {
		for _, wl := range workloads {
			key := fmt.Sprintf("base=%d wl=%v", base, wl)
			s := DeriveSeed(base, wl...)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both derive %#x", prev, key, s)
			}
			seen[s] = key
			n++
		}
	}
	if n != 72 || len(seen) != n {
		t.Fatalf("expected 72 distinct seeds, got %d", len(seen))
	}
}

// TestDeriveSeedOrderAndArity: permuting or re-grouping the workload
// list must change the derived seed (the separator guarantees the
// parts list is unambiguous).
func TestDeriveSeedOrderAndArity(t *testing.T) {
	pairs := [][2][]string{
		{{"gcc", "mcf"}, {"mcf", "gcc"}},
		{{"gcc", "mcf"}, {"gccmcf"}},
		{{"gcc", ""}, {"gcc"}},
		{{""}, {}},
	}
	for _, pr := range pairs {
		if DeriveSeed(1, pr[0]...) == DeriveSeed(1, pr[1]...) {
			t.Errorf("DeriveSeed(%v) == DeriveSeed(%v)", pr[0], pr[1])
		}
	}
}

// TestDeriveSeedMatchesSweepJobConfig checks the sweep actually uses
// the derived seed: a scheduled job's effective config must carry
// DeriveSeed(base, workload...), not the base seed.
func TestDeriveSeedMatchesSweepJobConfig(t *testing.T) {
	s := NewSweep(1)
	cfg := sim.DefaultConfig(1)
	cfg.Seed = 42
	j := s.Sim(cfg, []string{"gcc"})
	if got, want := j.Config().Seed, DeriveSeed(42, "gcc"); got != want {
		t.Fatalf("job seed %#x, want DeriveSeed(42, gcc) = %#x", got, want)
	}
	if j.Config().Seed == 42 {
		t.Fatal("job kept the base seed verbatim")
	}
}
