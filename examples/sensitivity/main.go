// Sensitivity: sweep ESTEEM's algorithm parameters (α, A_min, module
// count) on one benchmark, mirroring the paper's Table 3 study, and
// show the energy/performance trade-off each knob controls.
//
// Every variant is scheduled against one shared baseline run on a
// Sweep: the baseline simulates once, the ten variants fan out across
// the worker pool, and each comparison computes as soon as its
// variant finishes.
//
//	go run ./examples/sensitivity
package main

import (
	"context"
	"fmt"
	"log"

	esteem "repro"
)

const bench = "sphinx"

func main() {
	s := esteem.NewSweep(0)
	base := s.Baseline(config(), []string{bench})

	type variant struct {
		label string
		job   *esteem.CompareJob
	}
	var variants []variant
	show := func(label string, mutate func(*esteem.Config)) {
		cfg := config()
		cfg.Technique = esteem.Esteem
		mutate(&cfg)
		variants = append(variants, variant{label, s.Compare(bench, base, cfg, []string{bench})})
	}

	show("default", func(*esteem.Config) {})
	// Lower α = more aggressive turn-off (covers fewer hits).
	show("alpha=0.95", func(c *esteem.Config) { c.Esteem.Alpha = 0.95 })
	show("alpha=0.99", func(c *esteem.Config) { c.Esteem.Alpha = 0.99 })
	// A_min bounds the worst case.
	show("amin=2", func(c *esteem.Config) { c.Esteem.AMin = 2 })
	show("amin=4", func(c *esteem.Config) { c.Esteem.AMin = 4 })
	// Module count sets reconfiguration granularity.
	show("2 modules", func(c *esteem.Config) { c.Modules = 2 })
	show("32 modules", func(c *esteem.Config) { c.Modules = 32 })
	// Leader-set density trades profiling fidelity for overhead.
	show("Rs=32", func(c *esteem.Config) { c.SamplingRatio = 32 })
	show("Rs=128", func(c *esteem.Config) { c.SamplingRatio = 128 })
	// The paper's named future work: damp per-interval swings.
	show("maxdelta=2", func(c *esteem.Config) { c.Esteem.MaxWayDelta = 2 })

	if err := s.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s, 1-core, 4MB L2: ESTEEM parameter sweep (vs baseline)\n\n", bench)
	fmt.Printf("%-16s %9s %7s %9s %8s\n", "variant", "%esaving", "ws", "mpki-inc", "activ%")
	for _, v := range variants {
		c := v.job.Comparison()
		fmt.Printf("%-16s %9.2f %7.3f %9.2f %8.1f\n",
			v.label, c.EnergySavingPct, c.WeightedSpeedup, c.MPKIIncrease, c.ActiveRatioPct)
	}

	// Equation 1: the counter overhead of the default configuration.
	fmt.Printf("\nEquation 1 overhead (4MB, 16-way, 16 modules): %.3f%% of L2 capacity\n",
		esteem.OverheadPercent(4096, 16, 16, 512, 40))
}

func config() esteem.Config {
	cfg := esteem.DefaultConfig(1)
	cfg.MeasureInstr = 16_000_000
	cfg.WarmupInstr = 8_000_000
	return cfg
}
