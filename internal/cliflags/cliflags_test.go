package cliflags

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestParseTechniqueAllNames(t *testing.T) {
	for name, want := range techniqueByName {
		got, err := ParseTechnique(name)
		if err != nil {
			t.Fatalf("ParseTechnique(%q): %v", name, err)
		}
		if got != want {
			t.Fatalf("ParseTechnique(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := ParseTechnique("nope"); err == nil {
		t.Fatal("unknown technique accepted")
	} else if !strings.Contains(err.Error(), "baseline|") {
		t.Fatalf("error does not list names: %v", err)
	}
}

func TestTechniqueNamesSortedAndComplete(t *testing.T) {
	names := strings.Split(TechniqueNames(), "|")
	if len(names) != len(techniqueByName) {
		t.Fatalf("TechniqueNames lists %d names, registry has %d", len(names), len(techniqueByName))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %q before %q", names[i-1], names[i])
		}
	}
}

func TestBudgetRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	b := RegisterBudget(fs, 2_000_000, 20_000_000, 10_000_000, 1)
	if err := fs.Parse([]string{"-instr", "5000", "-warmup", "100", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(1)
	b.Apply(&cfg)
	if cfg.IntervalCycles != 2_000_000 || cfg.MeasureInstr != 5000 ||
		cfg.WarmupInstr != 100 || cfg.Seed != 7 {
		t.Fatalf("applied budget = %+v", cfg)
	}
}

func TestShapeConfig(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	s := RegisterShape(fs)
	if err := fs.Parse([]string{"-cores", "2", "-l2mb", "16", "-l2assoc", "8", "-retention", "40"}); err != nil {
		t.Fatal(err)
	}
	cfg := s.Config(sim.RPV)
	if cfg.Cores != 2 || cfg.L2SizeBytes != 16<<20 || cfg.L2Assoc != 8 ||
		cfg.RetentionMicros != 40 || cfg.Technique != sim.RPV {
		t.Fatalf("shape config = %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("shape config invalid: %v", err)
	}
}

func TestShapeConfigDefaultL2(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	s := RegisterShape(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	want := sim.DefaultConfig(1).L2SizeBytes
	if got := s.Config(sim.Baseline).L2SizeBytes; got != want {
		t.Fatalf("default L2 size = %d, want paper default %d", got, want)
	}
}

func TestBuildInfo(t *testing.T) {
	info := ReadBuildInfo()
	if info.GoVersion == "" {
		t.Fatal("empty go version")
	}
	if info.Version == "" {
		t.Fatal("empty version")
	}
	line := PrintVersion("esteem-sim")
	if !strings.HasPrefix(line, "esteem-sim ") || !strings.Contains(line, info.GoVersion) {
		t.Fatalf("version line %q", line)
	}
}
