package cpu

import "repro/internal/ckpt"

// AppendState serialises the core's execution state: the clock, the
// retired-instruction count, the stall breakdown and the measurement
// window's start marker.
//
// The measurement budget and the window-end snapshot are deliberately
// NOT serialised: a checkpoint must be reusable by runs with a longer
// measured-instruction horizon, so the budget is an input of the
// restoring run (ResetMeasureBudget), not part of the state. The end
// snapshot is derivable — for any horizon this checkpoint is usable
// for, the window has not yet closed.
func (c *Core) AppendState(w *ckpt.Writer) {
	w.Section("CORE")
	w.U64(c.clock)
	w.U64(c.instructions)
	for _, s := range c.stalls {
		w.U64(s)
	}
	w.U64(c.measureStart.clock)
	w.U64(c.measureStart.instructions)
}

// RestoreState loads state written by AppendState. The measurement
// window is left closed-budget-free; the caller re-arms it with
// ResetMeasureBudget.
func (c *Core) RestoreState(r *ckpt.Reader) error {
	r.Section("CORE")
	c.clock = r.U64()
	c.instructions = r.U64()
	for i := range c.stalls {
		c.stalls[i] = r.U64()
	}
	c.measureStart.clock = r.U64()
	c.measureStart.instructions = r.U64()
	c.measureBudget = 0
	c.measureEnd.clock = 0
	c.measureEnd.instructions = 0
	c.measureEnd.done = false
	if r.Err() == nil {
		if c.measureStart.clock > c.clock || c.measureStart.instructions > c.instructions {
			r.Failf("cpu: core %d measurement start beyond current state", c.id)
		}
	}
	return r.Err()
}

// MeasuredSoFar returns the instructions retired since the
// measurement window opened. Checkpoint metadata records it so a
// restoring run can decide whether its horizon is still ahead of
// every core.
func (c *Core) MeasuredSoFar() uint64 {
	return c.instructions - c.measureStart.instructions
}

// ResetMeasureBudget re-arms the measurement window with a new budget
// while keeping its recorded start. It reports whether the window is
// still open under the new budget: false means this core has already
// retired at least budget measured instructions, so the checkpoint
// cannot reproduce the window-end snapshot and must not be used for
// that horizon.
func (c *Core) ResetMeasureBudget(budget uint64) bool {
	if budget == 0 {
		panic("cpu: zero measurement budget")
	}
	c.measureBudget = budget
	c.measureEnd.clock = 0
	c.measureEnd.instructions = 0
	c.measureEnd.done = false
	return c.MeasuredSoFar() < budget
}
