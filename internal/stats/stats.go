// Package stats provides the small statistical toolkit used across the
// simulator: running moments, arithmetic and geometric means, and
// fixed-bucket histograms. The aggregation rules follow the paper
// (Section 6.4): speedups are averaged with the geometric mean; every
// other metric — which can be zero or negative — uses the arithmetic
// mean.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, or 0 for an empty slice.
// It panics if any value is non-positive, because a geometric mean is
// undefined there — callers averaging speedups must have positive
// ratios by construction.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It returns 0 for an
// empty slice and panics for p outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Running accumulates count, mean and variance incrementally using
// Welford's algorithm, so interval-level metrics can be aggregated
// without storing every sample.
type Running struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations added.
func (r *Running) N() int64 { return r.n }

// Mean returns the running arithmetic mean, or 0 with no observations.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the sample variance, or 0 with fewer than two
// observations.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Stddev returns the sample standard deviation.
func (r *Running) Stddev() float64 { return math.Sqrt(r.Variance()) }

// Merge folds other into r, as if every observation of other had been
// added to r (Chan et al. parallel variance combination).
func (r *Running) Merge(other Running) {
	if other.n == 0 {
		return
	}
	if r.n == 0 {
		*r = other
		return
	}
	n := r.n + other.n
	d := other.mean - r.mean
	r.m2 += other.m2 + d*d*float64(r.n)*float64(other.n)/float64(n)
	r.mean += d * float64(other.n) / float64(n)
	r.n = n
}

// Histogram counts observations into fixed-width buckets over
// [lo, hi); values outside the range land in saturating under/over
// buckets. It is used for reuse-distance and stall-length profiles.
type Histogram struct {
	lo, hi  float64
	width   float64
	buckets []int64
	under   int64
	over    int64
	count   int64
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
// It panics if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: NewHistogram requires n > 0")
	}
	if hi <= lo {
		panic("stats: NewHistogram requires hi > lo")
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), buckets: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.count++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.buckets) { // guard rounding at the top edge
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Count returns the total number of observations, including the
// under/over buckets.
func (h *Histogram) Count() int64 { return h.count }

// Bucket returns the count of bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// NumBuckets returns the number of in-range buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Under and Over return the out-of-range counts.
func (h *Histogram) Under() int64 { return h.under }
func (h *Histogram) Over() int64  { return h.over }

// BucketBounds returns the [lo, hi) range of bucket i.
func (h *Histogram) BucketBounds(i int) (float64, float64) {
	return h.lo + float64(i)*h.width, h.lo + float64(i+1)*h.width
}

// MeanInRange returns the mean of in-range observations approximated
// by bucket midpoints, or 0 if there are none.
func (h *Histogram) MeanInRange() float64 {
	var n int64
	sum := 0.0
	for i, c := range h.buckets {
		lo, hi := h.BucketBounds(i)
		sum += float64(c) * (lo + hi) / 2
		n += c
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
