package load

import (
	"testing"
	"time"
)

func TestRampPhases(t *testing.T) {
	phases := Ramp(10, 10, 50, 3*time.Second)
	if len(phases) != 5 {
		t.Fatalf("got %d phases, want 5", len(phases))
	}
	for i, p := range phases {
		wantRPS := 10 + 10*float64(i)
		if p.RPS != wantRPS {
			t.Errorf("phase %d: RPS %g, want %g", i, p.RPS, wantRPS)
		}
		if p.Seconds != 3 {
			t.Errorf("phase %d: Seconds %g, want 3", i, p.Seconds)
		}
	}
	if phases[0].Name != "rps10" || phases[4].Name != "rps50" {
		t.Errorf("phase names %q..%q", phases[0].Name, phases[4].Name)
	}
}

func TestRampZeroStepIsSingleSlot(t *testing.T) {
	phases := Ramp(50, 0, 200, 10*time.Second)
	if len(phases) != 1 || phases[0].RPS != 50 || phases[0].Seconds != 10 {
		t.Fatalf("got %+v, want one 50rps/10s slot", phases)
	}
}

func TestWithBurst(t *testing.T) {
	base := Ramp(10, 10, 20, time.Second)
	phases := WithBurst(base, 120, 2*time.Second)
	if len(phases) != len(base)+1 {
		t.Fatalf("burst not appended: %d phases", len(phases))
	}
	last := phases[len(phases)-1]
	if last.Name != "burst120" || last.RPS != 120 || last.Seconds != 2 {
		t.Fatalf("burst slot %+v", last)
	}
	if got := WithBurst(base, 0, 2*time.Second); len(got) != len(base) {
		t.Fatalf("zero burst RPS should be a no-op, got %d phases", len(got))
	}
}

func TestScheduleValidate(t *testing.T) {
	ok := Schedule{Phases: Ramp(10, 0, 10, time.Second), HotFraction: 0.5, Jitter: 0.25}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := []Schedule{
		{},
		{Phases: []Phase{{Name: "x", RPS: 0, Seconds: 1}}},
		{Phases: []Phase{{Name: "x", RPS: 10, Seconds: 0}}},
		{Phases: ok.Phases, HotFraction: 1.5},
		{Phases: ok.Phases, Jitter: 2},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

// TestArrivalsDeterministic: a fixed seed replays the exact same
// arrival times, placement and sequence; a different seed does not.
func TestArrivalsDeterministic(t *testing.T) {
	sched := Schedule{
		Phases:      WithBurst(Ramp(10, 10, 30, time.Second), 60, time.Second),
		HotFraction: 0.5,
		Jitter:      0.5,
		Seed:        42,
	}
	a, err := sched.Arrivals()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sched.Arrivals()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d diverges: %+v vs %+v", i, a[i], b[i])
		}
	}

	sched.Seed = 43
	c, err := sched.Arrivals()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 42 and 43 produced identical arrival sequences")
	}
}

// TestArrivalsExactCounts: each phase contributes exactly
// round(RPS*Seconds) arrivals, with an exact hot count.
func TestArrivalsExactCounts(t *testing.T) {
	sched := Schedule{
		Phases: []Phase{
			{Name: "a", RPS: 20, Seconds: 1},   // 20 arrivals
			{Name: "b", RPS: 40, Seconds: 0.5}, // 20 arrivals
			{Name: "c", RPS: 7, Seconds: 1},    // 7 arrivals
		},
		HotFraction: 0.5,
		Jitter:      0.25,
		Seed:        1,
	}
	arrivals, err := sched.Arrivals()
	if err != nil {
		t.Fatal(err)
	}
	if want := sched.Requests(); len(arrivals) != want {
		t.Fatalf("got %d arrivals, Requests() says %d", len(arrivals), want)
	}
	counts := make([]int, len(sched.Phases))
	hots := make([]int, len(sched.Phases))
	for i, a := range arrivals {
		if a.Seq != i {
			t.Fatalf("arrival %d has Seq %d", i, a.Seq)
		}
		counts[a.Phase]++
		if a.Hot {
			hots[a.Phase]++
		}
	}
	wantCounts := []int{20, 20, 7}
	wantHots := []int{10, 10, 4} // round(0.5*n)
	for p := range counts {
		if counts[p] != wantCounts[p] {
			t.Errorf("phase %d: %d arrivals, want %d", p, counts[p], wantCounts[p])
		}
		if hots[p] != wantHots[p] {
			t.Errorf("phase %d: %d hot, want exactly %d", p, hots[p], wantHots[p])
		}
	}
}

// TestArrivalsOrderedWithinPhase: jitter <= 1 never reorders arrivals
// or pushes them outside their phase window.
func TestArrivalsOrderedWithinPhase(t *testing.T) {
	sched := Schedule{
		Phases: []Phase{
			{Name: "a", RPS: 50, Seconds: 1},
			{Name: "b", RPS: 100, Seconds: 1},
		},
		HotFraction: 0.3,
		Jitter:      1, // worst case
		Seed:        7,
	}
	arrivals, err := sched.Arrivals()
	if err != nil {
		t.Fatal(err)
	}
	var phaseStart time.Duration
	bounds := []struct{ lo, hi time.Duration }{}
	for _, p := range sched.Phases {
		d := time.Duration(p.Seconds * float64(time.Second))
		bounds = append(bounds, struct{ lo, hi time.Duration }{phaseStart, phaseStart + d})
		phaseStart += d
	}
	for i, a := range arrivals {
		if i > 0 && arrivals[i-1].Phase == a.Phase && arrivals[i-1].At > a.At {
			t.Fatalf("arrival %d (%v) before its predecessor (%v)", i, a.At, arrivals[i-1].At)
		}
		b := bounds[a.Phase]
		if a.At < b.lo || a.At > b.hi {
			t.Fatalf("arrival %d at %v outside phase %d window [%v,%v]", i, a.At, a.Phase, b.lo, b.hi)
		}
	}
}

// TestHotMixExtremes: 0 and 1 hot fractions are all-cold / all-hot.
func TestHotMixExtremes(t *testing.T) {
	for _, frac := range []float64{0, 1} {
		sched := Schedule{
			Phases:      []Phase{{Name: "a", RPS: 30, Seconds: 1}},
			HotFraction: frac,
			Seed:        1,
		}
		arrivals, err := sched.Arrivals()
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range arrivals {
			if a.Hot != (frac == 1) {
				t.Fatalf("hot fraction %g produced Hot=%v", frac, a.Hot)
			}
		}
	}
}

func TestScheduleDuration(t *testing.T) {
	sched := Schedule{Phases: []Phase{
		{Name: "a", RPS: 1, Seconds: 1.5},
		{Name: "b", RPS: 1, Seconds: 0.5},
	}}
	if got := sched.Duration(); got != 2*time.Second {
		t.Fatalf("Duration() = %v, want 2s", got)
	}
}
