// Cache: the sweep's content-addressed result layer. With a store
// attached (SetCache), every workload-driven simulation job first
// consults the store under a key derived from its effective
// configuration and workload; hits skip the simulation entirely and
// reconstruct the result from the stored artifact, misses run the
// simulation once — coalesced across concurrent identical jobs by the
// store's single-flight layer — and persist a deterministic artifact
// (timing fields zeroed) whose bytes are identical for every run of
// the same job.
//
// Source-driven jobs (SimSources) are never cached: external sources
// carry hidden state the key cannot capture.
package runner

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/castore"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tracez"
)

// SetCache attaches a content-addressed result store to the sweep —
// a node-local *castore.Store or a cluster-wide *castore.Sharded;
// the sweep is indifferent to where artifact bytes live. Must be
// called before Run. With a cache attached, jobs always run with an
// interval collector so stored artifacts carry full telemetry, and
// any sink attached with SetSink receives the same deterministic
// artifacts the store holds (on hits and misses alike), so a sweep's
// artifact set is identical whether it was served cold or warm.
func (s *Sweep) SetCache(store castore.Backend) { s.cache = store }

// CacheKey returns the content address Sweep.Sim would consult for
// (cfg, wl): the store key of the configuration after per-job seed
// derivation. Serving layers use it to locate a job's artifact
// without re-running the sweep.
func CacheKey(cfg sim.Config, wl []string) (string, error) {
	return castore.Key(deriveCfg(cfg, wl), wl)
}

// simArtifact runs one simulation with a collector attached and
// packages the deterministic run artifact (manifest timing zeroed)
// whose canonical bytes are what the content-addressed store
// persists. sp, when non-nil, receives the simulator's phase spans.
//
// When checkpointing is enabled (the default with a cache attached),
// the run first tries to resume from the deepest stored prefix
// checkpoint for its horizon, and saves new checkpoints as it crosses
// boundaries — both best-effort: any failure falls back to (or
// continues as) a plain cold run.
func (s *Sweep) simArtifact(sp *tracez.Span, label string, cfg sim.Config, wl []string) (*sim.Result, obs.RunArtifact, error) {
	man := obs.NewManifest(label, cfg.Seed, cfg)
	col := obs.NewCollector()
	sm, err := sim.New(cfg, wl)
	if err != nil {
		return nil, obs.RunArtifact{}, err
	}
	sm.SetObserver(col)
	sm.SetTraceSpan(sp)

	resumed := false
	if stride := s.checkpointStride(); stride > 0 && sm.Checkpointable() {
		base, err := castore.CheckpointBaseKey(cfg, wl)
		if err != nil {
			return nil, obs.RunArtifact{}, err
		}
		if meta, blob, ok, err := s.cache.BestCheckpoint(base, cfg.MeasureInstr); err == nil && ok {
			if state, ivs, err := decodeCheckpointEnvelope(blob); err == nil {
				if err := sm.RestoreCheckpoint(state); err == nil {
					col.Preload(ivs)
					resumed = true
					sp.SetAttrInt("resume_seq", int64(meta.Seq))
				}
			}
		}
		sm.SetCheckpointHook(func(info sim.CheckpointInfo) {
			if info.Seq != 0 && info.Seq%stride != 0 {
				return
			}
			state, err := sm.Checkpoint()
			if err != nil {
				return
			}
			env, err := encodeCheckpointEnvelope(state, col.Intervals())
			if err != nil {
				return
			}
			// Best-effort: a failed save costs a future resume, not
			// this run.
			s.cache.PutCheckpoint(base, castore.CheckpointMeta{
				Seq:         info.Seq,
				Frontier:    info.Frontier,
				MinMeasured: info.MinMeasured,
				MaxMeasured: info.MaxMeasured,
			}, env)
		})
	}
	var r *sim.Result
	if resumed {
		r, err = sm.ResumeRun()
	} else {
		r, err = sm.Run()
	}
	if err != nil {
		return nil, obs.RunArtifact{}, err
	}
	man.Technique = r.Technique.String()
	man.Technology = r.Config.Technology
	man.Cores = cfg.Cores
	for _, c := range r.Cores {
		man.Workload = append(man.Workload, c.Benchmark)
	}
	man.SimulatedInstructions = r.TotalInstructions()
	man.Intervals = len(col.Intervals())
	art := obs.RunArtifact{
		SchemaVersion: obs.SchemaVersion,
		Manifest:      man.Deterministic(),
		Summary:       Summarize(r),
		Intervals:     col.Intervals(),
	}
	return r, art, nil
}

// runSimCached is the cache-aware path of runSim: cfg is the derived
// (effective) configuration. On a miss the simulation runs under the
// store's single-flight lock and its live result is returned; on a
// hit (or a coalesced flight) the result is reconstructed from the
// artifact bytes.
func (s *Sweep) runSimCached(ctx context.Context, seq int, label string, cfg sim.Config, wl []string) (*sim.Result, error) {
	key, err := castore.Key(cfg, wl)
	if err != nil {
		return nil, err
	}
	csp := tracez.FromContext(ctx).Child("cache")
	var live *sim.Result
	data, _, err := s.cache.GetOrCompute(tracez.ContextWith(ctx, csp), key, func(context.Context) ([]byte, error) {
		ssp := csp.Child("sim")
		r, art, err := s.simArtifact(ssp, label, cfg, wl)
		ssp.End()
		if err != nil {
			return nil, err
		}
		live = r
		s.sims.Add(1)
		s.instr.Add(r.TotalInstructions())
		esp := csp.Child("encode")
		b, err := obs.MarshalCanonical(art)
		esp.End()
		if err != nil {
			return nil, fmt.Errorf("runner: encoding artifact for %q: %w", label, err)
		}
		return b, nil
	})
	csp.SetAttr("hit", strconv.FormatBool(err == nil && live == nil))
	csp.End()
	if err != nil {
		return nil, err
	}
	art, err := obs.ParseRun(data)
	if err != nil {
		return nil, fmt.Errorf("runner: cached artifact for %q: %w", label, err)
	}
	if s.sink != nil {
		wsp := tracez.FromContext(ctx).Child("artifact-write")
		err := s.sink.WriteRun(seq, art)
		wsp.End()
		if err != nil {
			return nil, fmt.Errorf("runner: writing artifact for %q: %w", label, err)
		}
	}
	if live != nil {
		return live, nil
	}
	return ResultFromArtifact(cfg, art), nil
}

// ResultFromArtifact reconstructs a sim.Result from a stored run
// artifact. The reconstruction covers every field the repository's
// frontends and metrics consume — per-core IPC and stall breakdowns,
// traffic counters, the evaluated energy breakdown, refresh totals,
// the active ratio and (when the run logged them) measured-window
// interval records. Fields the artifact does not carry (the energy
// model constants, main-memory stall counters) stay zero; floats
// round-trip through canonical JSON and may differ from the live run
// in the 13th significant digit.
func ResultFromArtifact(cfg sim.Config, a obs.RunArtifact) *sim.Result {
	sum := a.Summary
	r := &sim.Result{
		Config:             cfg,
		Technique:          cfg.Technique,
		ActiveRatio:        sum.ActiveRatio,
		Refreshes:          sum.Refreshes,
		RefreshStallCycles: sum.RefreshStallCycles,
		ReconfigWritebacks: sum.ReconfigWritebacks,
	}
	if w := sum.Wear; w != nil {
		r.Wear = &sim.WearStats{
			MaxWear:         w.MaxWear,
			MinWear:         w.MinWear,
			MeanWear:        w.MeanWear,
			TotalWrites:     w.TotalWrites,
			LevelSwaps:      w.LevelSwaps,
			Histogram:       append([]uint64(nil), w.Histogram...),
			EnduranceWrites: w.EnduranceWrites,
		}
	}
	r.Activity.Cycles = sum.Cycles
	r.Activity.L2Hits = sum.L2Hits
	r.Activity.L2WriteHits = sum.L2WriteHits
	r.Activity.L2Misses = sum.L2Misses
	r.Activity.Refreshes = sum.Refreshes
	r.Activity.ActiveFraction = sum.ActiveRatio
	r.Activity.MMAccesses = sum.MMReads + sum.MMWritebacks
	r.Energy.L2Leak = sum.Energy.L2LeakJ
	r.Energy.L2Dyn = sum.Energy.L2DynJ
	r.Energy.L2Refresh = sum.Energy.L2RefreshJ
	r.Energy.MMLeak = sum.Energy.MMLeakJ
	r.Energy.MMDyn = sum.Energy.MMDynJ
	r.Energy.Algo = sum.Energy.AlgoJ
	r.L2.Hits = sum.L2Hits
	r.L2.WriteHits = sum.L2WriteHits
	r.L2.Misses = sum.L2Misses
	r.L2.Writebacks = sum.L2Writebacks
	r.L2.Fills = sum.L2Fills
	r.MM.Reads = sum.MMReads
	r.MM.Writebacks = sum.MMWritebacks
	for _, c := range sum.Cores {
		r.Cores = append(r.Cores, sim.CoreResult{
			Benchmark:    c.Benchmark,
			Instructions: c.Instructions,
			Cycles:       c.Cycles,
			IPC:          c.IPC,
			StallL2Hit:   c.StallL2Hit,
			StallRefresh: c.StallRefresh,
			StallMemory:  c.StallMemory,
			L1Hits:       c.L1Hits,
			L1Misses:     c.L1Misses,
		})
	}
	if cfg.LogIntervals {
		for _, iv := range a.Intervals {
			if !iv.Measuring {
				continue
			}
			rec := sim.IntervalRecord{
				EndCycle:    iv.EndCycle,
				ActiveRatio: iv.ActiveRatio,
				ActiveWays:  append([]int(nil), iv.ActiveWays...),
			}
			rec.Activity.Cycles = iv.Cycles
			rec.Activity.L2Hits = iv.L2Hits
			rec.Activity.L2WriteHits = iv.L2WriteHits
			rec.Activity.L2Misses = iv.L2Misses
			rec.Activity.Refreshes = iv.Refreshes
			rec.Activity.ActiveFraction = iv.ActiveRatio
			rec.Activity.MMAccesses = iv.MMReads + iv.MMWritebacks
			rec.Activity.LinesTransitioned = iv.LinesTransitioned
			r.Intervals = append(r.Intervals, rec)
		}
	}
	return r
}
