package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/castore"
	"repro/internal/sim"
)

func testTask(i int) Task {
	return Task{
		Key:      fmt.Sprintf("%064x", uint64(i)+1),
		Label:    fmt.Sprintf("task-%d", i),
		Config:   sim.Config{Cores: 1, Seed: uint64(i)},
		Workload: []string{"astar"},
	}
}

func newTestCoordinator(t *testing.T, cfg CoordinatorConfig) *Coordinator {
	t.Helper()
	if cfg.Self == "" {
		cfg.Self = "http://coordinator.test"
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestSubmitDedup: tasks sharing a key coalesce onto one table entry
// (the cluster-wide single-flight), and both handles resolve when it
// completes.
func TestSubmitDedup(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{})
	h1 := c.Submit(testTask(1))
	h2 := c.Submit(testTask(1))
	if h1.t != h2.t {
		t.Fatal("duplicate submission created a second table entry")
	}
	if got := c.Stats().TasksSubmitted; got != 1 {
		t.Fatalf("TasksSubmitted = %d, want 1", got)
	}
	task, ok := c.lease(context.Background(), "http://w1", 0)
	if !ok || task.Key != h1.Key {
		t.Fatalf("lease returned (%v, %v)", task.Key, ok)
	}
	// Second lease request must not get the same key while leased.
	if _, ok := c.lease(context.Background(), "http://w2", 0); ok {
		t.Fatal("leased task was leased twice")
	}
	c.complete("http://w1", h1.Key, "")
	for _, h := range []*TaskHandle{h1, h2} {
		select {
		case <-h.Done():
			if h.Err() != nil {
				t.Fatalf("unexpected task error: %v", h.Err())
			}
		case <-time.After(time.Second):
			t.Fatal("handle did not resolve")
		}
	}
}

// TestLeaseExpiryReissue: a lease that is never completed or extended
// re-queues after its TTL and is re-issued to another worker.
func TestLeaseExpiryReissue(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{
		LeaseTTL: 100 * time.Millisecond,
		// Keep members alive so only the lease TTL fires.
		MemberTTL: time.Hour,
	})
	h := c.Submit(testTask(1))
	if _, ok := c.lease(context.Background(), "http://w1", 0); !ok {
		t.Fatal("first lease failed")
	}
	// w2 long-polls; once the TTL fires the janitor re-queues and w2
	// gets the re-issued lease.
	task, ok := c.lease(context.Background(), "http://w2", 2*time.Second)
	if !ok || task.Key != h.Key {
		t.Fatalf("re-issued lease = (%v, %v)", task.Key, ok)
	}
	st := c.Stats()
	if st.LeasesExpired < 1 || st.LeasesReissued < 1 {
		t.Fatalf("expiry counters = %+v, want expired>=1 reissued>=1", st)
	}
	c.complete("http://w2", h.Key, "")
	<-h.Done()
}

// TestHeartbeatExtendsLease: heartbeats carrying the held key keep the
// lease alive past its nominal TTL.
func TestHeartbeatExtendsLease(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{
		LeaseTTL:  150 * time.Millisecond,
		MemberTTL: time.Hour,
	})
	h := c.Submit(testTask(1))
	if _, ok := c.lease(context.Background(), "http://w1", 0); !ok {
		t.Fatal("lease failed")
	}
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		c.heartbeat("http://w1", []string{h.Key}, nil)
		time.Sleep(30 * time.Millisecond)
	}
	if st := c.Stats(); st.LeasesExpired != 0 {
		t.Fatalf("lease expired despite heartbeats: %+v", st)
	}
	c.complete("http://w1", h.Key, "")
	<-h.Done()
}

// TestWorkerExpiryRequeues: a worker that stops heartbeating expires,
// and its leases re-queue without waiting for the per-lease TTL.
func TestWorkerExpiryRequeues(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{
		LeaseTTL:  time.Hour, // only member expiry can re-queue
		MemberTTL: 100 * time.Millisecond,
	})
	h := c.Submit(testTask(1))
	if _, ok := c.lease(context.Background(), "http://w1", 0); !ok {
		t.Fatal("lease failed")
	}
	task, ok := c.lease(context.Background(), "http://w2", 2*time.Second)
	if !ok || task.Key != h.Key {
		t.Fatalf("lease after worker death = (%v, %v)", task.Key, ok)
	}
	st := c.Stats()
	if st.WorkersExpired < 1 {
		t.Fatalf("WorkersExpired = %d, want >= 1", st.WorkersExpired)
	}
	c.complete("http://w2", h.Key, "")
	<-h.Done()
}

// TestFailurePropagatesAndRetries: a failed task resolves its handles
// with the error, and a later resubmission runs it again.
func TestFailurePropagatesAndRetries(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{})
	h := c.Submit(testTask(1))
	if _, ok := c.lease(context.Background(), "http://w1", 0); !ok {
		t.Fatal("lease failed")
	}
	c.complete("http://w1", h.Key, "boom")
	<-h.Done()
	if h.Err() == nil {
		t.Fatal("failed task resolved without error")
	}
	h2 := c.Submit(testTask(1))
	if h2.t == h.t {
		t.Fatal("resubmission reused the failed entry")
	}
	if _, ok := c.lease(context.Background(), "http://w1", 0); !ok {
		t.Fatal("retry lease failed")
	}
	c.complete("http://w1", h.Key, "")
	<-h2.Done()
	if h2.Err() != nil {
		t.Fatalf("retry failed: %v", h2.Err())
	}
}

// TestWorkerOverHTTP: real Worker against a real coordinator HTTP
// surface (Execute hook replaces the sweep). Covers join, member
// propagation, lease, execute, complete, leave.
func TestWorkerOverHTTP(t *testing.T) {
	coord := newTestCoordinator(t, CoordinatorConfig{
		LeaseTTL:       2 * time.Second,
		HeartbeatEvery: 100 * time.Millisecond,
	})
	mux := http.NewServeMux()
	coord.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	store, err := castore.Open(t.TempDir(), 16)
	if err != nil {
		t.Fatal(err)
	}
	var executed atomic.Int64
	w, err := NewWorker(WorkerConfig{
		Coordinator: srv.URL,
		Self:        "http://worker1.test",
		Local:       store,
		Execute: func(ctx context.Context, task Task) error {
			executed.Add(1)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := w.Run(ctx); err != nil && ctx.Err() == nil {
			t.Errorf("worker run: %v", err)
		}
	}()

	const n = 5
	handles := make([]*TaskHandle, n)
	for i := 0; i < n; i++ {
		handles[i] = coord.Submit(testTask(i))
	}
	for i, h := range handles {
		select {
		case <-h.Done():
			if h.Err() != nil {
				t.Fatalf("task %d: %v", i, h.Err())
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("task %d never completed", i)
		}
	}
	if got := executed.Load(); got != n {
		t.Fatalf("executed %d tasks, want %d", got, n)
	}
	// The worker's placement view converged to {coordinator, worker}.
	if got := len(w.Members()); got != 2 {
		t.Fatalf("worker sees %d members, want 2", got)
	}
	st := coord.Stats()
	if st.WorkersLive != 1 || st.TasksCompleted != n {
		t.Fatalf("coordinator stats after run: %+v", st)
	}
	cancel()
	wg.Wait()
	// The leave must have deregistered the worker.
	if got := coord.Stats().WorkersLive; got != 0 {
		t.Fatalf("WorkersLive after leave = %d, want 0", got)
	}
}

// TestStatusAndValidation: the HTTP surface rejects junk and reports
// the status view.
func TestStatusAndValidation(t *testing.T) {
	coord := newTestCoordinator(t, CoordinatorConfig{})
	mux := http.NewServeMux()
	coord.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/cluster/join", "application/json",
		nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty join: got %s, want 400", resp.Status)
	}

	for _, bad := range []string{
		`{"url":"ftp://x"}`,
		`{"url":"nonsense"}`,
		`{"url":"http://ok","junk":1}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/cluster/join", "application/json",
			strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("join %q: got %s, want 400", bad, resp.Status)
		}
	}

	resp, err = http.Get(srv.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: got %s, want 200", resp.Status)
	}
}
