// Package mem models the main memory of the simulated system as the
// ESTEEM paper configures it (Section 6.1): a fixed access latency
// (220 cycles), a finite channel bandwidth (10 GB/s single-core,
// 15 GB/s dual-core), and queue contention — an access issued while
// the channel is busy waits for the in-flight transfers ahead of it.
//
// Demand reads stall the issuing core for queue delay + latency.
// Writebacks occupy channel bandwidth but do not stall the core
// (modern processors drain them through write-back buffers, as the
// paper notes in Section 4), and they count toward A_MM for the
// energy model.
package mem

import "fmt"

// Params configures the memory model.
type Params struct {
	// LatencyCycles is the uncontended access latency.
	LatencyCycles uint64
	// BandwidthBytesPerSec is the channel bandwidth.
	BandwidthBytesPerSec float64
	// FreqHz is the core clock, to convert bandwidth to cycles.
	FreqHz float64
	// LineBytes is the transfer granularity (one cache line).
	LineBytes int
	// WriteBufferEntries bounds the in-flight writebacks (the
	// write-back buffers the paper's Section 4 appeals to). While a
	// slot is free, writebacks drain without stalling the issuing
	// core; when the buffer is full, the writer stalls until the
	// oldest transfer completes. 0 means unbounded (the original
	// no-back-pressure model).
	WriteBufferEntries int
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.LatencyCycles == 0 {
		return fmt.Errorf("mem: latency must be positive")
	}
	if p.BandwidthBytesPerSec <= 0 {
		return fmt.Errorf("mem: bandwidth must be positive")
	}
	if p.FreqHz <= 0 {
		return fmt.Errorf("mem: frequency must be positive")
	}
	if p.LineBytes <= 0 {
		return fmt.Errorf("mem: line size must be positive")
	}
	if p.WriteBufferEntries < 0 {
		return fmt.Errorf("mem: negative write buffer size")
	}
	return nil
}

// Counters is a snapshot of memory traffic statistics.
type Counters struct {
	Reads            uint64
	Writebacks       uint64
	QueueStallCycles uint64
	// WriteBufferStallCycles counts cycles writers spent blocked on a
	// full write buffer.
	WriteBufferStallCycles uint64
}

// Accesses returns A_MM: total main-memory accesses.
func (c Counters) Accesses() uint64 { return c.Reads + c.Writebacks }

// Memory is a bandwidth-limited memory channel.
type Memory struct {
	p              Params
	transferCycles float64
	// nextFree is the cycle at which the channel becomes idle. It is
	// kept as float64 because the per-line transfer time is
	// fractional (e.g. 12.8 cycles for 64 B at 10 GB/s and 2 GHz).
	nextFree float64

	total    Counters
	interval Counters

	// wbFinish holds the completion cycles of in-flight writebacks
	// (bounded by WriteBufferEntries when set).
	wbFinish []float64
	// wbPeakInterval is the deepest the write buffer got since the
	// last ResetInterval (telemetry: memory-queue occupancy).
	wbPeakInterval int
}

// New builds a memory channel.
func New(p Params) (*Memory, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Memory{
		p:              p,
		transferCycles: float64(p.LineBytes) * p.FreqHz / p.BandwidthBytesPerSec,
	}, nil
}

// MustNew is New but panics on error.
func MustNew(p Params) *Memory {
	m, err := New(p)
	if err != nil {
		panic(err)
	}
	return m
}

// Params returns the construction parameters.
func (m *Memory) Params() Params { return m.p }

// TransferCycles returns the channel occupancy of one line transfer.
func (m *Memory) TransferCycles() float64 { return m.transferCycles }

// Read issues a demand read at the given cycle and returns the total
// latency the issuing core observes: queue delay (if the channel is
// busy) plus the fixed access latency.
func (m *Memory) Read(cycle uint64) uint64 {
	queue := m.occupy(cycle)
	m.total.Reads++
	m.interval.Reads++
	m.total.QueueStallCycles += queue
	m.interval.QueueStallCycles += queue
	return queue + m.p.LatencyCycles
}

// Writeback issues a writeback at the given cycle. It consumes
// channel bandwidth (delaying later accesses). It normally does not
// stall the issuing core; with a bounded write buffer it returns the
// stall cycles the writer incurs when the buffer is full.
func (m *Memory) Writeback(cycle uint64) uint64 {
	var stall uint64
	if n := m.p.WriteBufferEntries; n > 0 {
		// Retire completed transfers.
		live := m.wbFinish[:0]
		for _, f := range m.wbFinish {
			if f > float64(cycle) {
				live = append(live, f)
			}
		}
		m.wbFinish = live
		if len(m.wbFinish) >= n {
			// Block until the oldest in-flight writeback completes.
			oldest := m.wbFinish[0]
			for _, f := range m.wbFinish[1:] {
				if f < oldest {
					oldest = f
				}
			}
			stall = uint64(oldest) - cycle + 1
			cycle += stall
			m.total.WriteBufferStallCycles += stall
			m.interval.WriteBufferStallCycles += stall
			// Retire again at the advanced cycle.
			live := m.wbFinish[:0]
			for _, f := range m.wbFinish {
				if f > float64(cycle) {
					live = append(live, f)
				}
			}
			m.wbFinish = live
		}
	}
	m.occupy(cycle)
	if m.p.WriteBufferEntries > 0 {
		m.wbFinish = append(m.wbFinish, m.nextFree)
		if len(m.wbFinish) > m.wbPeakInterval {
			m.wbPeakInterval = len(m.wbFinish)
		}
	}
	m.total.Writebacks++
	m.interval.Writebacks++
	return stall
}

// occupy reserves one line transfer on the channel starting no
// earlier than cycle, returning the queue delay.
func (m *Memory) occupy(cycle uint64) uint64 {
	start := float64(cycle)
	var queue uint64
	if m.nextFree > start {
		queue = uint64(m.nextFree - start)
		start = m.nextFree
	}
	m.nextFree = start + m.transferCycles
	return queue
}

// TotalCounters returns traffic since construction.
func (m *Memory) TotalCounters() Counters { return m.total }

// IntervalCounters returns traffic since the last ResetInterval.
func (m *Memory) IntervalCounters() Counters { return m.interval }

// IntervalWriteBufPeak returns the deepest write-buffer occupancy
// observed since the last ResetInterval (0 with an unbounded buffer).
func (m *Memory) IntervalWriteBufPeak() int { return m.wbPeakInterval }

// ResetInterval clears the interval counters.
func (m *Memory) ResetInterval() {
	m.interval = Counters{}
	m.wbPeakInterval = len(m.wbFinish)
}
