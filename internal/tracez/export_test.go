package tracez

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// buildSample constructs a small deterministic trace:
// root ─ queue, run ─ task ─ (cache ─ sim), with fake microsecond
// timestamps.
func buildSample(t *testing.T) (*Tracer, TraceID) {
	t.Helper()
	tr := New(Config{Seed: 99, Now: fakeClock(time.Millisecond)})
	root := tr.Root("job")
	queue := root.Child("queue")
	queue.End()
	run := root.Child("run")
	task := run.Child("task")
	task.SetAttr("label", "esteem/gcc/1c")
	cache := task.Child("cache")
	cache.SetAttr("hit", "false")
	sim := cache.Child("sim")
	sim.End()
	cache.End()
	task.End()
	run.End()
	root.SetAttr("state", "done")
	root.End()
	return tr, root.TraceID()
}

func TestBuildTreeAndValidate(t *testing.T) {
	tr, tid := buildSample(t)
	spans := tr.Spans(tid)
	tree, err := BuildTree(spans)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Spans != 6 {
		t.Fatalf("tree has %d spans, want 6", tree.Spans)
	}
	if tree.Root.Name != "job" || len(tree.Root.Children) != 2 {
		t.Fatalf("unexpected root: %+v", tree.Root)
	}
	// Children sorted by start: queue before run.
	if tree.Root.Children[0].Name != "queue" || tree.Root.Children[1].Name != "run" {
		t.Fatalf("children out of order: %s, %s", tree.Root.Children[0].Name, tree.Root.Children[1].Name)
	}
	// Round trip through the wire format.
	data, err := MarshalTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTree(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("parsed tree invalid: %v", err)
	}
	data2, err := MarshalTree(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("tree JSON not stable across a round trip")
	}
}

func TestBuildTreeRejectsOrphansAndForests(t *testing.T) {
	tr, tid := buildSample(t)
	spans := tr.Spans(tid)
	// Drop an interior span ("run"): its children become orphans and
	// the trace has two apparent roots.
	var cut []SpanData
	for _, d := range spans {
		if d.Name == "run" {
			continue
		}
		cut = append(cut, d)
	}
	if _, err := BuildTree(cut); err == nil {
		t.Fatal("BuildTree accepted a trace with an evicted interior span")
	}
	if _, err := BuildTree(nil); err == nil {
		t.Fatal("BuildTree accepted an empty trace")
	}
	// Mixed traces are rejected.
	other := tr.Root("other")
	other.End()
	mixed := append(append([]SpanData(nil), spans...), tr.Spans(other.TraceID())...)
	if _, err := BuildTree(mixed); err == nil {
		t.Fatal("BuildTree accepted spans from two traces")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr, tid := buildSample(t)
	tree, err := BuildTree(tr.Spans(tid))
	if err != nil {
		t.Fatal(err)
	}
	tree.Root.Children[0].DurUS = -5
	if err := tree.Validate(); err == nil || !strings.Contains(err.Error(), "negative duration") {
		t.Fatalf("negative duration not caught: %v", err)
	}
	tree.Root.Children[0].DurUS = 1
	tree.Root.Children[1].StartUS = tree.Root.StartUS + tree.Root.DurUS + 10_000
	if err := tree.Validate(); err == nil {
		t.Fatal("child escaping its parent not caught")
	}
}

func TestCoverage(t *testing.T) {
	root := &Node{Name: "job", StartUS: 0, DurUS: 1000}
	tree := &Tree{TraceID: "t", Spans: 1, Root: root}
	if c := tree.Coverage(); c != 1 {
		t.Fatalf("childless coverage %v, want 1", c)
	}
	// Two children covering [0,400) and [300,900): union 900 of 1000.
	root.Children = []*Node{
		{Name: "a", SpanID: "a", ParentID: "", StartUS: 0, DurUS: 400},
		{Name: "b", SpanID: "b", StartUS: 300, DurUS: 600},
	}
	if c := tree.Coverage(); c < 0.899 || c > 0.901 {
		t.Fatalf("coverage %v, want 0.9", c)
	}
	// A child overhanging the root is clamped.
	root.Children = append(root.Children, &Node{Name: "c", StartUS: 800, DurUS: 10_000})
	if c := tree.Coverage(); c != 1 {
		t.Fatalf("clamped coverage %v, want 1", c)
	}
}

func TestChromeTrace(t *testing.T) {
	tr, tid := buildSample(t)
	tree, err := BuildTree(tr.Spans(tid))
	if err != nil {
		t.Fatal(err)
	}
	data, err := ChromeTrace(tree)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  *int64         `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	var complete, meta int
	tids := map[int]bool{}
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("complete event %q without duration", ev.Name)
			}
			if ev.Args["trace_id"] != tree.TraceID {
				t.Fatalf("event %q missing trace_id arg", ev.Name)
			}
			tids[ev.TID] = true
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if complete != tree.Spans {
		t.Fatalf("%d complete events for %d spans", complete, tree.Spans)
	}
	// Root lane plus one lane per direct child.
	if len(tids) != 1+len(tree.Root.Children) {
		t.Fatalf("%d lanes, want %d", len(tids), 1+len(tree.Root.Children))
	}
	if meta != 1+len(tree.Root.Children) {
		t.Fatalf("%d thread_name events, want %d", meta, 1+len(tree.Root.Children))
	}
}
