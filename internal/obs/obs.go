// Package obs is the simulator's observability layer: structured
// per-interval telemetry, per-run manifests, machine-readable
// exporters and profiling hooks.
//
// The design contract is zero overhead when disabled: producers (the
// simulator, the refresh engine, the refresh policies, the memory
// channel) emit nothing unless an Observer is attached, and attaching
// one must not perturb the simulation — observers only read counters
// the simulation already maintains (internal/sim's regression tests
// assert result equality with and without telemetry).
//
// The package is a leaf: it imports only the standard library, so
// every layer of the stack (cache, edram, mem, sim, runner, cmd) can
// depend on it without cycles.
package obs

// Energy is one evaluated energy breakdown in joules (the paper's
// Equations 2–8), flattened for export.
type Energy struct {
	L2LeakJ    float64 `json:"l2_leak_j"`
	L2DynJ     float64 `json:"l2_dyn_j"`
	L2RefreshJ float64 `json:"l2_refresh_j"`
	MMLeakJ    float64 `json:"mm_leak_j"`
	MMDynJ     float64 `json:"mm_dyn_j"`
	AlgoJ      float64 `json:"algo_j"`
	TotalJ     float64 `json:"total_j"`
}

// PolicyStats carries refresh-policy-specific interval counters that
// the generic refresh engine cannot see.
type PolicyStats struct {
	// SkippedRefreshes counts engine refreshes avoided because the
	// line was recently touched (Smart-Refresh).
	SkippedRefreshes uint64 `json:"skipped_refreshes,omitempty"`
	// Invalidations counts clean lines eagerly dropped instead of
	// refreshed (Refrint RPD).
	Invalidations uint64 `json:"invalidations,omitempty"`
}

// Interval is one closed telemetry interval: everything the paper's
// Fig. 2-style time-series plots need, plus the traffic and occupancy
// counters behind them.
type Interval struct {
	// Index counts emitted intervals from 0 (warmup included).
	Index int `json:"index"`
	// Measuring reports whether the interval fell inside the measured
	// window (false during warmup).
	Measuring bool `json:"measuring"`
	// EndCycle is the frontier cycle that closed the interval; Cycles
	// is its length.
	EndCycle uint64 `json:"end_cycle"`
	Cycles   uint64 `json:"cycles"`

	// ActiveRatio is F_A over the interval; ActiveWays is the
	// per-module configuration chosen for the next interval (nil for
	// non-ESTEEM techniques).
	ActiveRatio float64 `json:"active_ratio"`
	ActiveWays  []int   `json:"active_ways,omitempty"`

	// L2 traffic. L2WriteHits is the write-direction share of L2Hits
	// (asymmetric technologies price it separately).
	L2Hits       uint64 `json:"l2_hits"`
	L2WriteHits  uint64 `json:"l2_write_hits"`
	L2Misses     uint64 `json:"l2_misses"`
	L2Writebacks uint64 `json:"l2_writebacks"`
	L2Fills      uint64 `json:"l2_fills"`

	// Refresh activity: line refreshes performed (N_R), bank-cycles
	// the refresh pipelines were busy, and policy-specific extras.
	Refreshes      uint64      `json:"refreshes"`
	BankBusyCycles uint64      `json:"bank_busy_cycles"`
	Policy         PolicyStats `json:"policy"`

	// Main-memory traffic and queue occupancy.
	MMReads               uint64  `json:"mm_reads"`
	MMWritebacks          uint64  `json:"mm_writebacks"`
	MMQueueStallCycles    uint64  `json:"mm_queue_stall_cycles"`
	MMWriteBufStallCycles uint64  `json:"mm_writebuf_stall_cycles"`
	MMWriteBufPeak        int     `json:"mm_writebuf_peak"`
	MMChannelBusyCycles   float64 `json:"mm_channel_busy_cycles"`

	// ESTEEM reconfiguration activity.
	LinesTransitioned  uint64 `json:"lines_transitioned"`
	ReconfigWritebacks uint64 `json:"reconfig_writebacks"`

	// Energy is Equations 2–8 evaluated over this interval alone.
	Energy Energy `json:"energy"`
}

// Observer receives closed intervals as the simulation runs. An
// implementation must not retain the ActiveWays slice beyond the call
// unless it copies it (the simulator hands over a fresh copy, so the
// built-in Collector simply stores it).
type Observer interface {
	ObserveInterval(Interval)
}

// Collector is the standard in-memory Observer: it appends every
// interval for later export.
type Collector struct {
	ivs []Interval
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// ObserveInterval implements Observer.
func (c *Collector) ObserveInterval(iv Interval) { c.ivs = append(c.ivs, iv) }

// Preload replaces the collector's contents with intervals recorded by
// an earlier run of the same job prefix. Checkpoint resume uses it: the
// restored simulator only re-emits intervals after the checkpoint
// boundary, so the prefix recorded before it is seeded here and later
// observations append after it.
func (c *Collector) Preload(ivs []Interval) { c.ivs = append(c.ivs[:0], ivs...) }

// Intervals returns the collected records in emission order. The
// slice aliases the collector's storage.
func (c *Collector) Intervals() []Interval { return c.ivs }

// Measured returns only the intervals inside the measured window.
func (c *Collector) Measured() []Interval {
	var out []Interval
	for _, iv := range c.ivs {
		if iv.Measuring {
			out = append(out, iv)
		}
	}
	return out
}

// Reset discards collected intervals, keeping the storage.
func (c *Collector) Reset() { c.ivs = c.ivs[:0] }
