#!/bin/sh
# verify.sh — the differential-verification gate (`make verify`):
#
#   1. oracle self-tests + the differential suite in internal/verify
#      (randomized schedules replayed through the optimized
#      implementations and the naive reference models, with full state
#      comparison after every operation, across all geometries and
#      refresh policies), including every fuzz target's checked-in
#      seed corpus;
#   2. the whole module rebuilt and the simulator tests rerun with the
#      `verify` build tag, which compiles in the runtime invariant
#      checks (scheduler-heap integrity, occupancy recounts,
#      allocate-on-miss conservation) that are dead code in default
#      builds.
set -eu
cd "$(dirname "$0")/.."

echo "== oracle + differential suite =="
go test ./internal/oracle/ ./internal/verify/ -count=1

# Per-technology lockstep runs: the Tech* tests replay the randomized
# schedules with each backend's semantics (wear tracking, scrub clock,
# asymmetric energy) against the naive reference models.
for tech in edram sttram sttram-relaxed reram; do
    echo "== technology lockstep: $tech =="
    go test ./internal/verify/ -run Tech -count=1 -tech="$tech"
done

echo "== build with -tags verify (invariant hooks compiled in) =="
go build -tags verify ./...

echo "== simulator tests with runtime invariants enabled =="
go test -tags verify ./internal/sim/ -count=1

echo "== OK =="
