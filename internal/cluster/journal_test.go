package cluster

import (
	"testing"
	"time"
)

func TestJournalSequencesAndPages(t *testing.T) {
	j := NewJournal(16)
	for i := 0; i < 5; i++ {
		ev := j.Append(JournalEvent{Kind: EventLeaseGranted, Key: "k"})
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d got seq %d", i, ev.Seq)
		}
		if ev.UnixMS == 0 {
			t.Fatalf("event %d not timestamped", i)
		}
	}
	got, _ := j.Since(0, 0)
	if len(got) != 5 || got[0].Seq != 1 || got[4].Seq != 5 {
		t.Fatalf("Since(0) = %+v, want seqs 1..5", got)
	}
	got, _ = j.Since(3, 0)
	if len(got) != 2 || got[0].Seq != 4 {
		t.Fatalf("Since(3) = %+v, want seqs 4..5", got)
	}
	got, _ = j.Since(2, 1)
	if len(got) != 1 || got[0].Seq != 3 {
		t.Fatalf("Since(2, max 1) = %+v, want [seq 3]", got)
	}
	if j.NextSeq() != 6 {
		t.Fatalf("NextSeq = %d, want 6", j.NextSeq())
	}
}

func TestJournalEvictsOldest(t *testing.T) {
	j := NewJournal(16) // 16 is the floor
	for i := 0; i < 20; i++ {
		j.Append(JournalEvent{Kind: EventWorkerJoined})
	}
	got, _ := j.Since(0, 0)
	if len(got) != 16 {
		t.Fatalf("retained %d events, want 16", len(got))
	}
	if got[0].Seq != 5 || got[15].Seq != 20 {
		t.Fatalf("retained seqs %d..%d, want 5..20", got[0].Seq, got[15].Seq)
	}
	if j.Dropped() != 4 {
		t.Fatalf("Dropped = %d, want 4", j.Dropped())
	}
}

func TestJournalSinceWakes(t *testing.T) {
	j := NewJournal(16)
	got, wake := j.Since(0, 0)
	if len(got) != 0 {
		t.Fatalf("empty journal returned %+v", got)
	}
	select {
	case <-wake:
		t.Fatal("wake channel closed before any append")
	default:
	}
	done := make(chan struct{})
	go func() {
		<-wake
		close(done)
	}()
	j.Append(JournalEvent{Kind: EventWorkerJoined})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Since waiter not woken by Append")
	}
	// Non-empty result: wake is pre-closed so pollers loop immediately.
	got, wake = j.Since(0, 0)
	if len(got) != 1 {
		t.Fatalf("Since after append = %+v", got)
	}
	select {
	case <-wake:
	default:
		t.Fatal("wake not pre-closed on non-empty result")
	}
}
