// Latency histograms for /metrics: a minimal fixed-bucket Prometheus
// histogram (cumulative _bucket series, _sum, _count) with no labels
// and no dependencies, matching the text exposition format the rest
// of handleMetrics emits.
package serve

import (
	"strconv"
	"sync"
)

// latencyBuckets are the shared upper bounds (seconds) for every
// serve-side latency histogram: 1ms to 60s, roughly geometric.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// histogram is a concurrency-safe fixed-bucket histogram.
type histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds; +Inf is implicit
	counts []uint64  // len(bounds)+1; last is the overflow bucket
	sum    float64
	count  uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// observe records one value (seconds).
func (h *histogram) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// fmtFloat renders a bucket bound the way the Prometheus text format
// expects ("0.001", not "1e-03").
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// HistogramView is a histogram snapshot in the JSON metrics view:
// cumulative bucket counts below each upper bound (seconds), plus the
// total count and sum. The +Inf bucket is implied by Count.
type HistogramView struct {
	Count      uint64       `json:"count"`
	SumSeconds float64      `json:"sum_seconds"`
	Buckets    []HistBucket `json:"buckets"`
}

// HistBucket is one cumulative bucket of a HistogramView.
type HistBucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Mean returns the histogram's mean observation in seconds (0 when
// empty).
func (v HistogramView) Mean() float64 {
	if v.Count == 0 {
		return 0
	}
	return v.SumSeconds / float64(v.Count)
}

// view snapshots the histogram.
func (h *histogram) view() HistogramView {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()
	v := HistogramView{Count: count, SumSeconds: sum}
	var cum uint64
	for i, b := range h.bounds {
		cum += counts[i]
		v.Buckets = append(v.Buckets, HistBucket{LE: b, Count: cum})
	}
	return v
}
