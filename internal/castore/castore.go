// Package castore is the content-addressed result store behind the
// serving layer and cmd/esteem-bench's -cache flag: simulation
// artifacts keyed by the SHA-256 of the canonical JSON encoding of
// everything that determines the run's outcome (full configuration,
// workload, artifact schema version).
//
// The store is layered:
//
//   - an in-memory LRU of recently touched artifacts (bounded entry
//     count) absorbs repeated fetches without I/O;
//   - a disk layer of one canonical-JSON file per key (written with a
//     temp-file + rename so a crash never leaves a torn artifact)
//     makes results survive restarts and stay byte-identical to the
//     run that produced them;
//   - a single-flight layer (GetOrCompute) coalesces concurrent
//     requests for the same key into one computation, so N clients
//     submitting the same job cost one simulation.
//
// Because the simulator is deterministic and artifacts are stored with
// deterministic manifests, a cache hit returns bytes identical to what
// a fresh run of the same job would produce (modulo nothing).
package castore

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tracez"
)

// KeySchemaVersion is folded into every key so that incompatible
// changes to the key material or the artifact layout invalidate old
// cache entries instead of serving stale shapes. Bump it together
// with obs.SchemaVersion changes.
const KeySchemaVersion = 1

// keyMaterial is the canonical description of one simulation unit.
// Hashing its canonical JSON — rather than a hand-rolled string —
// means every configuration field participates automatically and new
// fields change the key (new fields default to the zero value, which
// also changes the encoding, so stale hits are impossible).
type keyMaterial struct {
	KeySchema      int        `json:"key_schema"`
	ArtifactSchema int        `json:"artifact_schema"`
	Config         sim.Config `json:"config"`
	Workload       []string   `json:"workload"`
}

// Key returns the content address of the simulation unit (cfg,
// workload). cfg must be the effective configuration — after any
// per-job seed derivation — since the seed changes the run.
func Key(cfg sim.Config, workload []string) (string, error) {
	b, err := obs.MarshalCanonical(keyMaterial{
		KeySchema:      KeySchemaVersion,
		ArtifactSchema: obs.SchemaVersion,
		Config:         cfg,
		Workload:       workload,
	})
	if err != nil {
		return "", fmt.Errorf("castore: encoding key material: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// keyPattern is the shape of a valid key: 64 lowercase hex digits.
var keyPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// ValidKey reports whether s has the shape of a store key. Handlers
// use it to reject path traversal before touching the filesystem.
func ValidKey(s string) bool { return keyPattern.MatchString(s) }

// Backend is the store interface the runner and serving layers
// consume: a plain single-node *Store, or a *Sharded store that
// hash-partitions keys across cluster members (see shard.go). Both
// return byte-identical artifacts for equal keys — the sharded layer
// only changes where bytes live, never what they are.
type Backend interface {
	// Get returns the artifact bytes for key (ok false on a miss).
	Get(key string) (data []byte, ok bool, err error)
	// Put stores the artifact bytes under key.
	Put(key string, data []byte) error
	// GetOrCompute returns the artifact for key, computing and storing
	// it on a miss with single-flight coalescing.
	GetOrCompute(ctx context.Context, key string, compute func(context.Context) ([]byte, error)) (data []byte, cached bool, err error)
	// BestCheckpoint and PutCheckpoint expose the prefix-checkpoint
	// layer (see checkpoint.go).
	BestCheckpoint(base string, horizon uint64) (meta CheckpointMeta, data []byte, ok bool, err error)
	PutCheckpoint(base string, meta CheckpointMeta, data []byte) error
	// Stats returns a snapshot of the store's counters.
	Stats() Stats
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	// Hits counts Get/GetOrCompute calls satisfied from the store
	// (MemHits from the LRU, DiskHits from the artifact directory).
	Hits, MemHits, DiskHits uint64
	// Misses counts lookups that found nothing.
	Misses uint64
	// Computes counts compute callbacks actually executed (the number
	// of simulations the single-flight layer let through).
	Computes uint64
	// Coalesced counts GetOrCompute callers that waited on another
	// caller's in-flight computation instead of running their own.
	Coalesced uint64
	// PrefixHits and PrefixMisses count BestCheckpoint lookups that
	// found (respectively, failed to find) a usable prefix checkpoint;
	// PrefixSavedInstr accumulates the measured instructions each hit
	// let the resuming run skip (the hit's minimum per-core measured
	// count). See checkpoint.go.
	PrefixHits, PrefixMisses, PrefixSavedInstr uint64
	// Remote-shard counters, populated only by the Sharded layer (see
	// shard.go); always zero on a plain single-node Store. RemoteHits/
	// RemoteMisses count lookups answered by (respectively, missed on)
	// peer shards; Repairs counts read-through replication repairs
	// (re-writing an artifact to an owner that should have held it);
	// RemotePuts/RemotePutErrors count replica writes attempted and
	// failed.
	RemoteHits, RemoteMisses, Repairs, RemotePuts, RemotePutErrors uint64
}

// Store is a content-addressed artifact store. The zero value is not
// usable; construct with Open.
type Store struct {
	dir        string // "" = memory-only
	maxEntries int

	mu      sync.Mutex
	entries map[string]*list.Element // key -> element in order
	order   *list.List               // front = most recently used
	flights map[string]*flight

	// Prefix-checkpoint layer (see checkpoint.go). ckptMu serialises
	// index read-merge-write cycles; the maps back a memory-only store.
	ckptMu    sync.Mutex
	ckptIdx   map[string][]CheckpointMeta
	ckptBlobs map[string][]byte

	memHits      atomic.Uint64
	diskHits     atomic.Uint64
	misses       atomic.Uint64
	computes     atomic.Uint64
	coalesced    atomic.Uint64
	prefixHits   atomic.Uint64
	prefixMisses atomic.Uint64
	prefixSaved  atomic.Uint64
}

// entry is one cached artifact in the LRU layer.
type entry struct {
	key  string
	data []byte
}

// flight is one in-progress computation other callers can wait on.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// Open returns a store over dir (created if needed) with an in-memory
// LRU of at most maxEntries artifacts. An empty dir selects a
// memory-only store (no persistence); maxEntries <= 0 selects the
// default of 256.
func Open(dir string, maxEntries int) (*Store, error) {
	if maxEntries <= 0 {
		maxEntries = 256
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("castore: %w", err)
		}
	}
	return &Store{
		dir:        dir,
		maxEntries: maxEntries,
		entries:    make(map[string]*list.Element),
		order:      list.New(),
		flights:    make(map[string]*flight),
		ckptIdx:    make(map[string][]CheckpointMeta),
		ckptBlobs:  make(map[string][]byte),
	}, nil
}

// Dir returns the disk directory ("" for a memory-only store).
func (s *Store) Dir() string { return s.dir }

// Path returns the disk path an artifact for key lives at ("" for a
// memory-only store).
func (s *Store) Path(key string) string {
	if s.dir == "" {
		return ""
	}
	return filepath.Join(s.dir, key+".json")
}

// touch inserts (or refreshes) key in the LRU, evicting the coldest
// entry beyond capacity. Evicted artifacts remain on disk. Caller
// must hold s.mu.
func (s *Store) touch(key string, data []byte) {
	if el, ok := s.entries[key]; ok {
		s.order.MoveToFront(el)
		el.Value.(*entry).data = data
		return
	}
	s.entries[key] = s.order.PushFront(&entry{key: key, data: data})
	for s.order.Len() > s.maxEntries {
		el := s.order.Back()
		s.order.Remove(el)
		delete(s.entries, el.Value.(*entry).key)
	}
}

// Get returns the artifact bytes for key from the LRU or disk. The
// returned slice must not be modified. ok is false on a miss; err is
// non-nil only for real I/O failures (a missing file is a miss).
func (s *Store) Get(key string) (data []byte, ok bool, err error) {
	data, ok, err = s.lookup(key)
	if err == nil && !ok {
		s.misses.Add(1)
	}
	return data, ok, err
}

// lookup is Get without miss accounting (hits are always counted):
// GetOrCompute re-checks the store after registering its flight, and
// that second probe must not inflate the miss counter.
func (s *Store) lookup(key string) (data []byte, ok bool, err error) {
	s.mu.Lock()
	if el, hit := s.entries[key]; hit {
		s.order.MoveToFront(el)
		data = el.Value.(*entry).data
		s.mu.Unlock()
		s.memHits.Add(1)
		return data, true, nil
	}
	s.mu.Unlock()
	if s.dir == "" {
		return nil, false, nil
	}
	data, err = os.ReadFile(s.Path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("castore: reading %s: %w", key, err)
	}
	s.mu.Lock()
	s.touch(key, data)
	s.mu.Unlock()
	s.diskHits.Add(1)
	return data, true, nil
}

// Put stores the artifact bytes under key, atomically on disk (temp
// file + rename) and in the LRU. Concurrent Puts for the same key are
// safe: last rename wins and both contents are identical by
// construction (the key is a hash of everything that determines them).
func (s *Store) Put(key string, data []byte) error {
	if s.dir != "" {
		if err := s.writeAtomic(key, s.Path(key), data); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.touch(key, data)
	s.mu.Unlock()
	return nil
}

// writeAtomic writes data to path via a temp file + rename so a crash
// never leaves a torn file. name labels errors.
func (s *Store) writeAtomic(name, path string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, "."+name+".tmp-*")
	if err != nil {
		return fmt.Errorf("castore: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("castore: writing %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("castore: writing %s: %w", name, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("castore: %w", err)
	}
	return nil
}

// GetOrCompute returns the artifact for key, computing and storing it
// on a miss. Concurrent calls for the same key coalesce: exactly one
// caller runs compute while the others wait for its outcome (or their
// context). cached reports whether the result came from the store or
// a coalesced flight rather than this caller's own computation.
//
// A compute error is returned to every coalesced waiter but is not
// cached: the next GetOrCompute after the flight drains retries.
// Cancellation of a waiter's ctx abandons the wait without disturbing
// the computation; cancellation of the computing caller's ctx is
// compute's own business (it receives ctx).
func (s *Store) GetOrCompute(ctx context.Context, key string, compute func(context.Context) ([]byte, error)) (data []byte, cached bool, err error) {
	// Tracing: a span per store phase (lookup, coalesced wait,
	// persist), nil-safe and free when the context carries no span.
	sp := tracez.FromContext(ctx)
	lsp := sp.Child("store-get")
	data, ok, err := s.Get(key)
	lsp.SetAttr("hit", strconv.FormatBool(ok && err == nil))
	lsp.End()
	if err != nil {
		return nil, false, err
	} else if ok {
		return data, true, nil
	}

	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		wsp := sp.Child("store-coalesce")
		defer wsp.End()
		select {
		case <-f.done:
			return f.data, true, f.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	// Re-check the store: another process (or an earlier flight that
	// drained between our Get and the flight registration) may have
	// persisted the artifact already.
	if data, ok, gerr := s.lookup(key); gerr != nil || ok {
		f.data, f.err = data, gerr
		s.settle(key, f)
		return data, ok, gerr
	}

	s.computes.Add(1)
	data, err = compute(ctx)
	if err == nil {
		psp := sp.Child("store-put")
		psp.SetAttrInt("bytes", int64(len(data)))
		if perr := s.Put(key, data); perr != nil {
			err = perr
		}
		psp.End()
	}
	f.data, f.err = data, err
	s.settle(key, f)
	return data, false, err
}

// settle publishes a flight's outcome and removes it from the table.
func (s *Store) settle(key string, f *flight) {
	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
	close(f.done)
}

// Len returns the number of artifacts currently in the memory layer.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	mem, disk := s.memHits.Load(), s.diskHits.Load()
	return Stats{
		Hits:             mem + disk,
		MemHits:          mem,
		DiskHits:         disk,
		Misses:           s.misses.Load(),
		Computes:         s.computes.Load(),
		Coalesced:        s.coalesced.Load(),
		PrefixHits:       s.prefixHits.Load(),
		PrefixMisses:     s.prefixMisses.Load(),
		PrefixSavedInstr: s.prefixSaved.Load(),
	}
}

// Summary renders the stats as the one-line report cmd/esteem-bench
// prints for -cache-stats.
func (st Stats) Summary() string {
	s := fmt.Sprintf("%d hits (%d memory, %d disk), %d misses, %d computed, %d coalesced",
		st.Hits, st.MemHits, st.DiskHits, st.Misses, st.Computes, st.Coalesced)
	if st.PrefixHits > 0 || st.PrefixMisses > 0 {
		s += fmt.Sprintf(", %d prefix-checkpoint hits (%d instructions skipped), %d prefix misses",
			st.PrefixHits, st.PrefixSavedInstr, st.PrefixMisses)
	}
	if st.RemoteHits > 0 || st.RemoteMisses > 0 || st.RemotePuts > 0 {
		s += fmt.Sprintf(", %d remote hits, %d remote misses, %d repairs, %d replica puts (%d failed)",
			st.RemoteHits, st.RemoteMisses, st.Repairs, st.RemotePuts, st.RemotePutErrors)
	}
	return s
}

// Compile-time interface checks: both store layers satisfy Backend.
var (
	_ Backend = (*Store)(nil)
	_ Backend = (*Sharded)(nil)
)
