// Command esteem-client talks to an esteem-serve daemon: it submits
// sweep jobs, polls or streams their progress, and fetches results as
// run artifacts.
//
// Workloads are written as "a+b,c": "+" joins the benchmarks of one
// multi-core workload, "," separates workloads. Every workload of a
// job must match the configured core count.
//
// Examples:
//
//	esteem-client submit -bench gcc -technique esteem -wait
//	esteem-client submit -bench gobmk+nekbone,gcc+gamess -technique baseline,esteem
//	esteem-client status  <job-id>
//	esteem-client watch   <job-id>
//	esteem-client trace   <job-id> -format chrome -o trace.json
//	esteem-client result  <job-id> -o artifact.json
//	esteem-client artifact <key>
//	esteem-client version
//
// Every submission stamps a W3C traceparent header, so the server's
// span tree joins the client's trace; "trace" fetches that tree after
// the job completes, validates it, and can convert it to a Chrome
// trace-event file loadable in Perfetto (https://ui.perfetto.dev).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/load"
	"repro/internal/serve"
	"repro/internal/tracez"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: esteem-client <submit|status|watch|trace|result|artifact|cluster|version> [flags]")
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "submit":
		return cmdSubmit(rest)
	case "status":
		return cmdGetJSON(rest, "status", func(id string) string { return "/v1/jobs/" + id })
	case "watch":
		return cmdWatch(rest)
	case "trace":
		return cmdTrace(rest)
	case "result":
		return cmdFetch(rest, "result", func(id string) string { return "/v1/jobs/" + id + "/result" })
	case "artifact":
		return cmdFetch(rest, "artifact", func(key string) string { return "/v1/artifacts/" + key })
	case "cluster":
		return cmdCluster(rest)
	case "version":
		return cmdVersion(rest)
	case "-version", "--version":
		fmt.Println(cliflags.PrintVersion("esteem-client"))
		return nil
	default:
		return usage()
	}
}

// serverFlag registers the shared -server flag.
func serverFlag(fs *flag.FlagSet) *string {
	return fs.String("server", "http://127.0.0.1:8344", "esteem-serve base URL")
}

// get issues a GET and fails on non-2xx statuses.
func get(server, path string) (*http.Response, error) {
	resp, err := http.Get(strings.TrimRight(server, "/") + path)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		defer resp.Body.Close()
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return resp, nil
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	server := serverFlag(fs)
	bench := fs.String("bench", "gcc", `workloads: "+" joins cores, "," separates workloads (e.g. gobmk+nekbone,gcc+gamess)`)
	techs := fs.String("technique", "esteem", "comma-separated technique names: "+cliflags.TechniqueNames())
	techName := fs.String("tech", "", "LLC storage technology (empty = edram; "+cliflags.TechnologyNames()+")")
	retention := fs.Float64("retention", 50, "eDRAM retention period in microseconds")
	budget := cliflags.RegisterBudget(fs, 2_000_000, 20_000_000, 10_000_000, 1)
	overrides := fs.String("config", "", "extra sim.Config overrides as inline JSON (applied last)")
	wait := fs.Bool("wait", false, "poll until the job finishes; exit non-zero on failure")
	retries := fs.Int("retries", 5, "attempts on 429 (queue full; honors Retry-After) and on connection errors during server start/drain")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var benchmarks [][]string
	cores := 0
	for _, wl := range strings.Split(*bench, ",") {
		names := strings.Split(strings.TrimSpace(wl), "+")
		if cores == 0 {
			cores = len(names)
		} else if len(names) != cores {
			return fmt.Errorf("workload %q has %d benchmarks, first workload has %d", wl, len(names), cores)
		}
		benchmarks = append(benchmarks, names)
	}
	var techniques []string
	for _, t := range strings.Split(*techs, ",") {
		techniques = append(techniques, strings.TrimSpace(t))
	}

	config := map[string]any{
		"Cores":           cores,
		"RetentionMicros": *retention,
		"IntervalCycles":  *budget.Interval,
		"MeasureInstr":    *budget.Instr,
		"WarmupInstr":     *budget.Warmup,
		"Seed":            *budget.Seed,
	}
	if *overrides != "" {
		var extra map[string]any
		if err := json.Unmarshal([]byte(*overrides), &extra); err != nil {
			return fmt.Errorf("-config: %v", err)
		}
		for k, v := range extra {
			config[k] = v
		}
	}
	rawCfg, err := json.Marshal(config)
	if err != nil {
		return err
	}
	if *techName != "" {
		if _, err := cliflags.ParseTechnology(*techName); err != nil {
			return fmt.Errorf("-tech: %v", err)
		}
	}
	body, err := json.Marshal(serve.JobSpec{
		Config:     rawCfg,
		Benchmarks: benchmarks,
		Techniques: techniques,
		Technology: *techName,
	})
	if err != nil {
		return err
	}

	// The submission's root span: the server extracts the traceparent
	// header and joins this trace, so the job's exported span tree
	// carries the client's trace ID end to end.
	root := tracez.New(tracez.Config{}).Root("submit")
	resp, err := postJob(strings.TrimRight(*server, "/"), body, tracez.Traceparent(root), *retries)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(payload)))
	}
	var view struct {
		ID      string `json:"id"`
		State   string `json:"state"`
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(payload, &view); err != nil {
		return err
	}
	if !*wait {
		fmt.Println(strings.TrimSpace(string(payload)))
		return nil
	}

	fmt.Fprintf(os.Stderr, "job %s submitted (trace %s), waiting...\n", view.ID, view.TraceID)
	for {
		resp, err := get(*server, "/v1/jobs/"+view.ID)
		if err != nil {
			return err
		}
		payload, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		var v struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(payload, &v); err != nil {
			return err
		}
		switch serve.State(v.State) {
		case serve.StateDone:
			fmt.Println(strings.TrimSpace(string(payload)))
			return nil
		case serve.StateFailed, serve.StateCanceled:
			return fmt.Errorf("job %s %s: %s", view.ID, v.State, v.Error)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// postJob submits the job body, retrying 429 (queue full) responses
// up to attempts times with a jittered backoff that honors the
// server's Retry-After hint, and connection-level failures (refused/
// reset during server start or drain) with a shorter bounded backoff.
// Any other response is returned as-is. Jobs are content-addressed,
// so a retried submission that actually reached the server the first
// time just dedups onto the same units.
func postJob(server string, body []byte, traceparent string, attempts int) (*http.Response, error) {
	if attempts < 1 {
		attempts = 1
	}
	connDelay := 100 * time.Millisecond
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, server+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if traceparent != "" {
			req.Header.Set("traceparent", traceparent)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			if attempt >= attempts || !load.RetryableConnErr(err) {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "submit: %v, retrying in %s (attempt %d/%d)\n",
				err, connDelay.Round(time.Millisecond), attempt, attempts)
			time.Sleep(connDelay)
			if connDelay *= 2; connDelay > 2*time.Second {
				connDelay = 2 * time.Second
			}
			continue
		}
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= attempts {
			return resp, nil
		}
		delay := time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			delay = time.Duration(secs) * time.Second
		}
		// Jitter ±25% so simultaneous clients don't retry in lockstep.
		delay += time.Duration((rand.Float64() - 0.5) * 0.5 * float64(delay))
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		fmt.Fprintf(os.Stderr, "submit: queue full (429), retrying in %s (attempt %d/%d)\n",
			delay.Round(time.Millisecond), attempt, attempts)
		time.Sleep(delay)
	}
}

// cmdCluster inspects a coordinator: "status" dumps the membership
// and lease-table view, "metrics" the fleet-aggregated metrics,
// "events" the cluster event journal, and "top" a live refreshing
// per-worker table.
func cmdCluster(args []string) error {
	usage := fmt.Errorf("usage: esteem-client cluster <status|metrics|events|top> [flags]")
	if len(args) == 0 {
		return usage
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "status":
		return clusterPassthrough(rest, "cluster status", func(fs *flag.FlagSet) string {
			return "/v1/cluster/status"
		})
	case "metrics":
		var asJSON *bool
		return clusterPassthrough(rest, "cluster metrics", func(fs *flag.FlagSet) string {
			if asJSON == nil {
				asJSON = fs.Bool("json", false, "fetch the JSON fleet view instead of Prometheus text")
				return ""
			}
			if *asJSON {
				return "/v1/cluster/metrics?format=json"
			}
			return "/v1/cluster/metrics"
		})
	case "events":
		var since, max *int64
		return clusterPassthrough(rest, "cluster events", func(fs *flag.FlagSet) string {
			if since == nil {
				since = fs.Int64("since", 0, "return journal events with seq > this")
				max = fs.Int64("max", 0, "cap the number of events returned (0 = server default)")
				return ""
			}
			return fmt.Sprintf("/v1/cluster/events?since=%d&max=%d", *since, *max)
		})
	case "top":
		return cmdClusterTop(rest)
	default:
		return usage
	}
}

// clusterPassthrough GETs one coordinator endpoint and copies the body
// to stdout. path is called once before flag parsing (to register
// flags; ignored return) and once after (to build the URL).
func clusterPassthrough(args []string, name string, path func(*flag.FlagSet) string) error {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	server := serverFlag(fs)
	path(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := get(*server, path(fs))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// fleetView mirrors cluster.FleetView using serve's metrics types (the
// JSON tags are the shared contract), so the client needs no import of
// the cluster package internals.
type fleetView struct {
	Self    string            `json:"self"`
	Members []fleetMember     `json:"members"`
	Fleet   serve.MetricsView `json:"fleet"`
}

type fleetMember struct {
	URL     string             `json:"url"`
	Error   string             `json:"error,omitempty"`
	Metrics *serve.MetricsView `json:"metrics,omitempty"`
}

// cmdClusterTop renders a live refreshing fleet table: one row per
// member with leases held, simulation throughput (counter delta over
// the refresh interval), cumulative cache hit rate and executed tasks,
// headed by fleet totals and the fleet-wide queue-wait p99.
func cmdClusterTop(args []string) error {
	fs := flag.NewFlagSet("cluster top", flag.ExitOnError)
	server := serverFlag(fs)
	interval := fs.Duration("interval", 2*time.Second, "refresh cadence")
	count := fs.Int("count", 0, "exit after this many refreshes (0 = run until interrupted)")
	plain := fs.Bool("plain", false, "append frames instead of clearing the screen (for logs and pipes)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prevSims := map[string]uint64{}
	prevAt := time.Now()
	for i := 0; *count == 0 || i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		view, err := fetchFleet(*server)
		if err != nil {
			return err
		}
		now := time.Now()
		if !*plain {
			fmt.Print("\033[2J\033[H")
		}
		renderFleet(os.Stdout, view, prevSims, now.Sub(prevAt))
		prevAt = now
	}
	return nil
}

func fetchFleet(server string) (fleetView, error) {
	var view fleetView
	resp, err := get(server, "/v1/cluster/metrics?format=json")
	if err != nil {
		return view, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return view, fmt.Errorf("decoding fleet view: %v", err)
	}
	return view, nil
}

// memberSims extracts a member's simulation counter: workers count
// esteem_worker_sims_computed_total, the coordinator (a serve node)
// esteem_serve_sims_executed_total.
func memberSims(m serve.MetricsView) uint64 {
	if v, ok := m.Counters["esteem_worker_sims_computed_total"]; ok {
		return v
	}
	return m.Counters["esteem_serve_sims_executed_total"]
}

func renderFleet(w io.Writer, view fleetView, prevSims map[string]uint64, since time.Duration) {
	reachable := 0
	for _, m := range view.Members {
		if m.Metrics != nil {
			reachable++
		}
	}
	p99 := load.HistogramQuantile(view.Fleet.Histograms["esteem_serve_queue_wait_seconds"], 0.99)
	fmt.Fprintf(w, "fleet %s  members %d/%d reachable  workers %.0f  leases %.0f  queue-wait p99 %.1fms  %s\n",
		view.Self, reachable, len(view.Members),
		view.Fleet.Gauges["esteem_cluster_workers_live"],
		view.Fleet.Gauges["esteem_cluster_leases_outstanding"]+view.Fleet.Gauges["esteem_worker_leases_held"],
		p99*1e3, time.Now().Format("15:04:05"))
	fmt.Fprintf(w, "%-32s %6s %8s %6s %7s %9s\n", "NODE", "LEASES", "SIMS/S", "HIT%", "TASKS", "UPTIME")
	for _, m := range view.Members {
		node := strings.TrimPrefix(m.URL, "http://")
		if m.Error != "" {
			fmt.Fprintf(w, "%-32s %s\n", node, "unreachable: "+m.Error)
			continue
		}
		mm := *m.Metrics
		sims := memberSims(mm)
		// Throughput from the counter delta between refreshes; the
		// first frame has no previous sample and falls back to the
		// lifetime average.
		var rate float64
		if prev, ok := prevSims[m.URL]; ok && since > 0 && sims >= prev {
			rate = float64(sims-prev) / since.Seconds()
		} else if mm.UptimeSeconds > 0 {
			rate = float64(sims) / mm.UptimeSeconds
		}
		prevSims[m.URL] = sims
		hits := mm.Counters["esteem_worker_store_hits_total"] + mm.Counters["esteem_serve_cache_hits_total"]
		misses := mm.Counters["esteem_worker_store_misses_total"] + mm.Counters["esteem_serve_cache_misses_total"]
		hitPct := 0.0
		if hits+misses > 0 {
			hitPct = 100 * float64(hits) / float64(hits+misses)
		}
		tasks := mm.Counters["esteem_worker_tasks_executed_total"] + mm.Counters["esteem_serve_jobs_completed_total"]
		leases := mm.Gauges["esteem_worker_leases_held"] + mm.Gauges["esteem_cluster_leases_outstanding"]
		fmt.Fprintf(w, "%-32s %6.0f %8.1f %5.1f%% %7d %8.0fs\n",
			node, leases, rate, hitPct, tasks, mm.UptimeSeconds)
	}
}

func cmdGetJSON(args []string, name string, path func(string) string) error {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	server := serverFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: esteem-client %s [-server URL] <job-id>", name)
	}
	resp, err := get(*server, path(fs.Arg(0)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	server := serverFlag(fs)
	reconnects := fs.Int("reconnects", 8, "consecutive failed reconnect attempts before giving up")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: esteem-client watch [-server URL] <job-id>")
	}
	// A dropped stream reconnects with Last-Event-ID, so the server
	// replays exactly the events this client has not yet printed. The
	// backoff doubles per consecutive failure (jittered, capped) and
	// resets whenever a connection delivers an event.
	lastID := -1
	failures := 0
	var lastErr error
	for {
		terminal, progressed, err := streamEvents(*server, fs.Arg(0), &lastID)
		if terminal {
			return nil
		}
		if progressed {
			failures = 0
		}
		if err != nil {
			lastErr = err
		}
		failures++
		if failures > *reconnects {
			if lastErr == nil {
				lastErr = fmt.Errorf("stream ended without a terminal job state")
			}
			return fmt.Errorf("watch: giving up after %d reconnect attempts: %v", *reconnects, lastErr)
		}
		delay := time.Duration(1<<uint(failures-1)) * 500 * time.Millisecond
		if delay > 15*time.Second {
			delay = 15 * time.Second
		}
		delay += time.Duration(rand.Float64() * 0.25 * float64(delay))
		fmt.Fprintf(os.Stderr, "watch: stream dropped (%v), reconnecting in %s\n", err, delay.Round(time.Millisecond))
		time.Sleep(delay)
	}
}

// streamEvents follows one SSE connection, printing every data
// payload. It reports whether a terminal job state was observed (the
// watch is complete), whether any event arrived on this connection,
// and the error that ended the stream.
func streamEvents(server, id string, lastID *int) (terminal, progressed bool, err error) {
	req, err := http.NewRequest(http.MethodGet, strings.TrimRight(server, "/")+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return false, false, err
	}
	if *lastID >= 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(*lastID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return false, false, fmt.Errorf("GET /v1/jobs/%s/events: %s: %s", id, resp.Status, strings.TrimSpace(string(body)))
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			if n, err := strconv.Atoi(strings.TrimPrefix(line, "id: ")); err == nil {
				*lastID = n
			}
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			fmt.Println(data)
			progressed = true
			var ev struct {
				State string `json:"state"`
			}
			if json.Unmarshal([]byte(data), &ev) == nil && serve.State(ev.State).Terminal() {
				terminal = true
			}
		}
	}
	if terminal {
		return true, progressed, nil
	}
	return false, progressed, sc.Err()
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	server := serverFlag(fs)
	out := fs.String("o", "", "write the trace to this file instead of stdout")
	format := fs.String("format", "tree", "output format: tree (canonical span tree) or chrome (Perfetto-loadable)")
	minCov := fs.Float64("min-coverage", 0, "fail unless the root's children cover at least this fraction of its wall-clock (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: esteem-client trace [-server URL] [-format tree|chrome] [-o FILE] <job-id>")
	}
	resp, err := get(*server, "/v1/jobs/"+fs.Arg(0)+"/trace")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	tree, err := tracez.ParseTree(raw)
	if err != nil {
		return fmt.Errorf("trace: %v", err)
	}
	if err := tree.Validate(); err != nil {
		return fmt.Errorf("trace: invalid span tree: %v", err)
	}
	cov := tree.Coverage()
	fmt.Fprintf(os.Stderr, "trace %s: %d spans, root %q %.3f ms, phase coverage %.1f%%\n",
		tree.TraceID, tree.Spans, tree.Root.Name, float64(tree.Root.DurUS)/1e3, cov*100)
	if *minCov > 0 && cov < *minCov {
		return fmt.Errorf("trace: coverage %.3f below required %.3f", cov, *minCov)
	}
	var data []byte
	switch *format {
	case "tree":
		data = raw
	case "chrome":
		if data, err = tracez.ChromeTrace(tree); err != nil {
			return err
		}
	default:
		return fmt.Errorf("trace: unknown -format %q (want tree or chrome)", *format)
	}
	if *out == "" {
		_, err = os.Stdout.Write(append(data, '\n'))
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace: wrote %s (%d bytes); open chrome traces at https://ui.perfetto.dev\n", *out, len(data))
	return nil
}

func cmdFetch(args []string, name string, path func(string) string) error {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	server := serverFlag(fs)
	out := fs.String("o", "", "write the response to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: esteem-client %s [-server URL] [-o FILE] <id>", name)
	}
	resp, err := get(*server, path(fs.Arg(0)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

func cmdVersion(args []string) error {
	fs := flag.NewFlagSet("version", flag.ExitOnError)
	server := serverFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Println(cliflags.PrintVersion("esteem-client"))
	resp, err := get(*server, "/v1/version")
	if err != nil {
		fmt.Fprintf(os.Stderr, "server unreachable: %v\n", err)
		return nil
	}
	defer resp.Body.Close()
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}
