#!/bin/sh
# bench-record.sh — run the pinned hot-path benchmarks (cache access,
# cache construction, active-fraction scan, refresh window, short
# simulator run) with a fixed benchtime and either append a dated
# entry to BENCH_sim.json (default) or gate the fresh numbers against
# the latest recorded entry (`bench-record.sh check`): >15% ns/op
# regression or any allocs/op increase fails.
#
# BENCHTIME / COUNT override the fixed budget, e.g. quick local runs
# with BENCHTIME=100ms.
set -eu
cd "$(dirname "$0")/.."

MODE="${1:-record}"
BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-3}"

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

{
    go test ./internal/cache/ -run '^$' -benchmem -benchtime "$BENCHTIME" -count "$COUNT" \
        -bench '^(BenchmarkCacheAccess|BenchmarkCacheNew|BenchmarkActiveFraction)$'
    go test ./internal/refrint/ -run '^$' -benchmem -benchtime "$BENCHTIME" -count "$COUNT" \
        -bench '^BenchmarkRefreshWindow$'
    go test ./internal/sim/ -run '^$' -benchmem -benchtime "$BENCHTIME" -count "$COUNT" \
        -bench '^BenchmarkSimRunShort$'
    go test ./internal/cluster/ -run '^$' -benchmem -benchtime "$BENCHTIME" -count "$COUNT" \
        -bench '^BenchmarkClusterTask$'
} | tee "$out"

case "$MODE" in
record)
    go run ./cmd/esteem-benchgate -record BENCH_sim.json -benchtime "$BENCHTIME" <"$out"
    ;;
check)
    go run ./cmd/esteem-benchgate -check BENCH_sim.json <"$out"
    ;;
*)
    echo "usage: $0 [record|check]" >&2
    exit 2
    ;;
esac
