package cache

import (
	"math/bits"

	"repro/internal/ckpt"
)

// AppendState serialises the cache's mutable state: the SoA tag
// store (tags, valid/dirty bitsets, LRU stacks), the reconfiguration
// state, per-bank valid counts, leader histograms and counters.
// Derived geometry (set maps, module layout) is not serialised — a
// checkpoint is only restored into a cache built from identical
// Params, which the caller guarantees by keying checkpoints on the
// full configuration.
func (c *Cache) AppendState(w *ckpt.Writer) {
	w.Section("CACH")
	w.U64Slice(c.tags)
	w.U64Slice(c.vd)
	w.U8Slice(c.order)
	w.IntSlice(c.activeWays)
	w.IntSlice(c.validByBank)
	w.U64Slice(c.hitBacking)
	w.U64(c.total.Hits)
	w.U64(c.total.WriteHits)
	w.U64(c.total.Misses)
	w.U64(c.total.Writebacks)
	w.U64(c.total.Fills)
	w.U64(c.interval.Hits)
	w.U64(c.interval.WriteHits)
	w.U64(c.interval.Misses)
	w.U64(c.interval.Writebacks)
	w.U64(c.interval.Fills)
	// Wear state is present iff the Params enable it, and a
	// checkpoint is only restored into a cache with identical Params,
	// so the layout stays deterministic.
	if c.wear != nil {
		w.U64Slice(c.wear)
		w.U64(c.wearSwaps)
	}
	if c.setWrites != nil {
		w.U64Slice(c.setWrites)
	}
}

// RestoreState loads state written by AppendState into a freshly
// constructed cache with identical Params, then revalidates the
// representation invariants (dirty ⊆ valid, valid ⊆ active ways,
// LRU permutations, bank counts) so a corrupt or mismatched
// checkpoint fails loudly instead of silently corrupting a run.
// The observer is untouched: policies re-register at construction
// and restore their own state separately.
func (c *Cache) RestoreState(r *ckpt.Reader) error {
	r.Section("CACH")
	r.U64SliceInto(c.tags)
	r.U64SliceInto(c.vd)
	r.U8SliceInto(c.order)
	r.IntSliceInto(c.activeWays)
	r.IntSliceInto(c.validByBank)
	r.U64SliceInto(c.hitBacking)
	c.total.Hits = r.U64()
	c.total.WriteHits = r.U64()
	c.total.Misses = r.U64()
	c.total.Writebacks = r.U64()
	c.total.Fills = r.U64()
	c.interval.Hits = r.U64()
	c.interval.WriteHits = r.U64()
	c.interval.Misses = r.U64()
	c.interval.Writebacks = r.U64()
	c.interval.Fills = r.U64()
	if c.wear != nil {
		r.U64SliceInto(c.wear)
		c.wearSwaps = r.U64()
	}
	if c.setWrites != nil {
		r.U64SliceInto(c.setWrites)
	}
	if r.Err() != nil {
		return r.Err()
	}
	return c.revalidate(r)
}

// revalidate checks the restored representation's invariants and
// recomputes the derived activeLines count.
func (c *Cache) revalidate(r *ckpt.Reader) error {
	assocMask := waysMask(c.assoc)
	activeLines := 0
	for m, n := range c.activeWays {
		if n < 1 || n > c.assoc {
			r.Failf("cache %s: restored active ways %d out of range", c.p.Name, n)
			return r.Err()
		}
		leaders := c.setsPerMod - c.followersPerMod[m]
		activeLines += leaders*c.assoc + c.followersPerMod[m]*n
	}
	c.activeLines = activeLines
	perBank := make([]int, c.p.Banks)
	var seen uint64
	for s := 0; s < c.numSets; s++ {
		valid, dirty := c.vd[2*s], c.vd[2*s+1]
		if valid&^assocMask != 0 || dirty&^valid != 0 {
			r.Failf("cache %s: restored set %d has invalid bitsets", c.p.Name, s)
			return r.Err()
		}
		if !c.setLeader[s] {
			if valid&^waysMask(c.activeWays[c.setModule[s]]) != 0 {
				r.Failf("cache %s: restored set %d has valid lines in disabled ways", c.p.Name, s)
				return r.Err()
			}
		}
		seen = 0
		base := s * c.assoc
		for _, w := range c.order[base : base+c.assoc] {
			seen |= 1 << uint(w)
		}
		if seen != assocMask {
			r.Failf("cache %s: restored set %d LRU stack is not a permutation", c.p.Name, s)
			return r.Err()
		}
		perBank[c.setBank[s]] += bits.OnesCount64(valid)
	}
	for b, n := range perBank {
		if c.validByBank[b] != n {
			r.Failf("cache %s: restored bank %d count %d, recount %d", c.p.Name, b, c.validByBank[b], n)
			return r.Err()
		}
	}
	// Wear conservation: every write hit and every fill charged
	// exactly one frame, and remaps never move wear between frames.
	if c.wear != nil {
		var sum uint64
		for _, w := range c.wear {
			sum += w
		}
		if want := c.total.Fills + c.total.WriteHits; sum != want {
			r.Failf("cache %s: restored wear sum %d, counters imply %d", c.p.Name, sum, want)
			return r.Err()
		}
		if c.setWrites != nil {
			sum = 0
			for _, w := range c.setWrites {
				sum += w
			}
			if want := c.total.Fills + c.total.WriteHits; sum != want {
				r.Failf("cache %s: restored set-write sum %d, counters imply %d", c.p.Name, sum, want)
				return r.Err()
			}
		}
	}
	return nil
}
