package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzManifestJSON checks that canonical marshalling is a fixed point:
// any JSON the fuzzer coaxes into a RunArtifact must canonicalize to
// bytes that re-decode and re-canonicalize to themselves. This is the
// property the golden-output CI gate and the cross-worker determinism
// tests rely on.
func FuzzManifestJSON(f *testing.F) {
	seed, err := MarshalCanonical(RunArtifact{
		SchemaVersion: SchemaVersion,
		Manifest:      NewManifest("fuzz", 1, map[string]float64{"retention_us": 50}),
		Summary:       RunSummary{Instructions: 12345, MPKI: 1.5},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(seed))
	f.Add(`{"schema_version":1,"manifest":{"label":"x"},"summary":{"mpki":0.1234567890123456789}}`)
	f.Add(`{"summary":{"energy":{"total_j":1e308}},"intervals":[{"index":0,"end_cycle":5}]}`)
	f.Add(`{"summary":{"active_ratio":-0.0}}`)
	f.Fuzz(func(t *testing.T, s string) {
		var a RunArtifact
		if err := json.Unmarshal([]byte(s), &a); err != nil {
			t.Skip("not a RunArtifact")
		}
		b1, err := MarshalCanonical(a)
		if err != nil {
			// Values unrepresentable in JSON (NaN/Inf) cannot come from
			// json.Unmarshal, so canonical marshalling must succeed.
			t.Fatalf("MarshalCanonical failed on decoded artifact: %v", err)
		}
		var a2 RunArtifact
		if err := json.Unmarshal(b1, &a2); err != nil {
			t.Fatalf("canonical output does not re-decode: %v\n%s", err, b1)
		}
		b2, err := MarshalCanonical(a2)
		if err != nil {
			t.Fatalf("re-canonicalize failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("canonical form is not a fixed point:\nfirst:  %s\nsecond: %s", b1, b2)
		}
	})
}
