package obs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// CoreSummary is one core's end-of-run statistics in a run artifact.
type CoreSummary struct {
	Benchmark    string  `json:"benchmark"`
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`
	StallL2Hit   uint64  `json:"stall_l2_hit"`
	StallRefresh uint64  `json:"stall_refresh"`
	StallMemory  uint64  `json:"stall_memory"`
	L1Hits       uint64  `json:"l1_hits"`
	L1Misses     uint64  `json:"l1_misses"`
}

// RunSummary is the end-of-run aggregate of one simulation, the
// machine-readable counterpart of the text tables.
type RunSummary struct {
	Instructions       uint64        `json:"instructions"`
	Cycles             uint64        `json:"cycles"`
	Energy             Energy        `json:"energy"`
	ActiveRatio        float64       `json:"active_ratio"`
	MPKI               float64       `json:"mpki"`
	RPKI               float64       `json:"rpki"`
	L2Hits             uint64        `json:"l2_hits"`
	L2WriteHits        uint64        `json:"l2_write_hits"`
	L2Misses           uint64        `json:"l2_misses"`
	L2Writebacks       uint64        `json:"l2_writebacks"`
	L2Fills            uint64        `json:"l2_fills"`
	MMReads            uint64        `json:"mm_reads"`
	MMWritebacks       uint64        `json:"mm_writebacks"`
	Refreshes          uint64        `json:"refreshes"`
	RefreshStallCycles uint64        `json:"refresh_stall_cycles"`
	ReconfigWritebacks uint64        `json:"reconfig_writebacks"`
	Cores              []CoreSummary `json:"cores"`
	// Wear summarises the per-frame write-endurance counters; nil
	// unless the run's technology tracks wear (ReRAM), so artifacts of
	// untracked technologies are unchanged by its introduction.
	Wear *WearSummary `json:"wear,omitempty"`
}

// WearSummary is the machine-readable form of the simulator's
// end-of-run wear statistics for endurance-limited technologies.
type WearSummary struct {
	MaxWear  uint64  `json:"max_wear"`
	MinWear  uint64  `json:"min_wear"`
	MeanWear float64 `json:"mean_wear"`
	// TotalWrites counts frame writes (fills + write hits); LevelSwaps
	// counts intra-set wear-levelling remaps.
	TotalWrites uint64 `json:"total_writes"`
	LevelSwaps  uint64 `json:"level_swaps"`
	// Histogram buckets frames by log2(wear): bucket 0 holds
	// never-written frames, bucket i>0 frames with 2^(i-1) <= wear < 2^i.
	Histogram []uint64 `json:"histogram,omitempty"`
	// EnduranceWrites is the per-frame write budget of the technology.
	EnduranceWrites uint64 `json:"endurance_writes"`
}

// RunArtifact is the complete machine-readable record of one
// simulation run: who ran (manifest), what came out (summary), and
// how it evolved (intervals, when collected).
type RunArtifact struct {
	SchemaVersion int        `json:"schema_version"`
	Manifest      Manifest   `json:"manifest"`
	Summary       RunSummary `json:"summary"`
	Intervals     []Interval `json:"intervals,omitempty"`
}

// SchemaVersion is bumped whenever RunArtifact's layout changes
// incompatibly, so downstream tooling can gate on it. Version 2 added
// write-hit counters to the summary and intervals, the wear summary,
// and the manifest's technology name.
const SchemaVersion = 2

// Sink persists run artifacts. Implementations must tolerate
// concurrent WriteRun calls for distinct sequence numbers (the
// parallel runner writes from its workers).
type Sink interface {
	WriteRun(seq int, a RunArtifact) error
}

// DirSink writes one canonical-JSON file per run into a directory,
// named by the run's scheduling sequence number plus a sanitized
// label — deterministic for a given sweep regardless of worker count.
type DirSink struct {
	dir string
}

// NewDirSink creates the directory (if needed) and returns a sink
// writing into it.
func NewDirSink(dir string) (*DirSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirSink{dir: dir}, nil
}

// Dir returns the sink's directory.
func (s *DirSink) Dir() string { return s.dir }

// EncodeRun writes the canonical JSON of a run artifact to w. A write
// error — including a short write, which io.Writer implementations
// may report with a nil error — is surfaced rather than leaving a
// silently truncated artifact.
func EncodeRun(w io.Writer, a RunArtifact) error {
	b, err := MarshalCanonical(a)
	if err != nil {
		return err
	}
	n, err := w.Write(b)
	if err != nil {
		return err
	}
	if n < len(b) {
		return io.ErrShortWrite
	}
	return nil
}

// WriteRun implements Sink. Distinct seq values map to distinct
// files, so concurrent writers never collide. Encode and close errors
// both propagate: a partially written artifact must not look
// persisted.
func (s *DirSink) WriteRun(seq int, a RunArtifact) error {
	name := fmt.Sprintf("%04d-%s.json", seq, SanitizeLabel(a.Manifest.Label))
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := EncodeRun(f, a); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SanitizeLabel maps a run label to a filesystem-safe token.
func SanitizeLabel(label string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, label)
}
