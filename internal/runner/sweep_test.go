package runner

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// miniCfg is a short run configuration: big enough to cross several
// intervals and refresh windows, small enough for the race detector.
func miniCfg(tech sim.Technique) sim.Config {
	cfg := sim.DefaultConfig(1)
	cfg.Technique = tech
	cfg.MeasureInstr = 120_000
	cfg.WarmupInstr = 30_000
	cfg.IntervalCycles = 50_000
	return cfg
}

// miniSweep schedules a fig3-style mini-sweep (baseline + RPV +
// ESTEEM per workload) on a sweep with the given worker count and
// returns the per-job results and comparisons in submission order.
func miniSweep(t *testing.T, workers int) ([]*sim.Result, []metrics.Comparison) {
	t.Helper()
	workloads := [][]string{{"gamess"}, {"gcc"}, {"lbm"}, {"omnetpp"}}
	s := NewSweep(workers)
	var bases []*SimJob
	var cmps []*CompareJob
	for _, wl := range workloads {
		cfg := miniCfg(sim.Baseline)
		base := s.Baseline(cfg, wl)
		bases = append(bases, base)
		for _, tech := range []sim.Technique{sim.RPV, sim.Esteem} {
			tcfg := cfg
			tcfg.Technique = tech
			cmps = append(cmps, s.Compare(wl[0], base, tcfg, wl))
		}
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var results []*sim.Result
	for _, b := range bases {
		results = append(results, b.Result())
	}
	var cs []metrics.Comparison
	for _, c := range cmps {
		results = append(results, c.Result())
		cs = append(cs, c.Comparison())
	}
	return results, cs
}

// resultFingerprint extracts the observable counters the determinism
// guarantee covers: hits, misses, energy, cycles, refreshes, traffic.
func resultFingerprint(r *sim.Result) map[string]float64 {
	return map[string]float64{
		"l2hits":    float64(r.L2.Hits),
		"l2misses":  float64(r.L2.Misses),
		"l2wb":      float64(r.L2.Writebacks),
		"cycles":    float64(r.Cores[0].Cycles),
		"instr":     float64(r.Cores[0].Instructions),
		"refreshes": float64(r.Refreshes),
		"mmreads":   float64(r.MM.Reads),
		"mmwb":      float64(r.MM.Writebacks),
		"energy":    r.Energy.Total(),
		"active":    r.ActiveRatio,
	}
}

// TestSweepDeterministicAcrossWorkerCounts is the determinism
// regression test: a fig3-style mini-sweep run with 1 worker and with
// 8 workers must produce identical sim.Results (hits, misses, energy,
// cycles) and identical comparisons, job for job.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	seq, seqCmp := miniSweep(t, 1)
	par, parCmp := miniSweep(t, 8)
	if len(seq) != len(par) {
		t.Fatalf("job count mismatch: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		sf, pf := resultFingerprint(seq[i]), resultFingerprint(par[i])
		if !reflect.DeepEqual(sf, pf) {
			t.Errorf("job %d differs between -jobs 1 and -jobs 8:\n  seq: %v\n  par: %v", i, sf, pf)
		}
	}
	if !reflect.DeepEqual(seqCmp, parCmp) {
		t.Errorf("comparisons differ between -jobs 1 and -jobs 8:\n  seq: %v\n  par: %v", seqCmp, parCmp)
	}
}

// TestSweepBaselineDedup checks that equal baseline requests share
// one job while differing configurations get their own, and that the
// typed key separates fields a string key could conflate.
func TestSweepBaselineDedup(t *testing.T) {
	s := NewSweep(4)
	cfg := miniCfg(sim.Baseline)
	a := s.Baseline(cfg, []string{"gcc"})
	b := s.Baseline(cfg, []string{"gcc"})
	if a != b {
		t.Error("identical baseline requests not deduplicated")
	}
	// Technique-only fields must not split the baseline cache.
	ecfg := cfg
	ecfg.Technique = sim.Esteem
	ecfg.SamplingRatio = 32
	ecfg.Esteem.Alpha = 0.99
	if s.Baseline(ecfg, []string{"gcc"}) != a {
		t.Error("technique-specific fields split the baseline cache")
	}
	// Baseline-relevant fields must split it.
	rcfg := cfg
	rcfg.RetentionMicros = 40
	if s.Baseline(rcfg, []string{"gcc"}) == a {
		t.Error("retention change did not split the baseline cache")
	}
	if s.Baseline(cfg, []string{"lbm"}) == a {
		t.Error("workload change did not split the baseline cache")
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	sims, instr := s.Stats()
	if sims != 3 {
		t.Errorf("Stats sims = %d, want 3 (dedup failed?)", sims)
	}
	if instr == 0 {
		t.Error("Stats instructions = 0")
	}
}

// TestSweepSeedDerivation checks that the derived per-job seed
// depends on the workload (decorrelation) but pairs baseline and
// technique runs (same workload, same base seed -> same stream).
func TestSweepSeedDerivation(t *testing.T) {
	s := NewSweep(2)
	cfg := miniCfg(sim.Baseline)
	base := s.Baseline(cfg, []string{"gcc"})
	ecfg := cfg
	ecfg.Technique = sim.Esteem
	cmp := s.Compare("gcc", base, ecfg, []string{"gcc"})
	other := s.Baseline(cfg, []string{"lbm"})
	if base.Config().Seed == cfg.Seed {
		t.Error("job seed not derived from workload")
	}
	if got := cmp.tech.Config().Seed; got != base.Config().Seed {
		t.Errorf("technique seed %d != baseline seed %d for same workload", got, base.Config().Seed)
	}
	if other.Config().Seed == base.Config().Seed {
		t.Error("different workloads share a derived seed")
	}
}

// TestSweepCompareMatchesDirect checks that a runner comparison
// equals the one computed by running the simulations directly.
func TestSweepCompareMatchesDirect(t *testing.T) {
	s := NewSweep(4)
	cfg := miniCfg(sim.Baseline)
	wl := []string{"gobmk"}
	base := s.Baseline(cfg, wl)
	ecfg := cfg
	ecfg.Technique = sim.Esteem
	cmp := s.Compare("gobmk", base, ecfg, wl)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	dcfg := cfg
	dcfg.Seed = DeriveSeed(cfg.Seed, "gobmk")
	dbase, err := sim.Run(dcfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	dcfg.Technique = sim.Esteem
	dtech, err := sim.Run(dcfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	want := metrics.Compare("gobmk", dbase, dtech)
	if got := cmp.Comparison(); !reflect.DeepEqual(got, want) {
		t.Errorf("runner comparison %+v != direct comparison %+v", got, want)
	}
}
