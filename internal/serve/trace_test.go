// End-to-end tracing tests: one trace ID across the job view, the SSE
// stream, the structured log and the exported span tree; plus the
// trace endpoint's formats, sampling behaviour, Last-Event-ID resume
// and the /metrics histograms.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/tracez"
)

// syncBuffer is a goroutine-safe log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestTracePropagatesEndToEnd(t *testing.T) {
	logBuf := &syncBuffer{}
	s := newTestServer(t, func(c *Config) {
		c.Tracer = tracez.New(tracez.Config{Seed: 7})
		c.Logger = slog.New(slog.NewJSONHandler(logBuf, nil))
	})

	// Submit with a client-minted traceparent: the server must join
	// the client's trace instead of starting its own.
	client := tracez.New(tracez.Config{Seed: 42}).Root("submit")
	req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(tinySpec(1)))
	req.Header.Set("traceparent", tracez.Traceparent(client))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", w.Code, w.Body)
	}
	var v jobView
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	wantTID := client.TraceID().String()
	if v.TraceID != wantTID {
		t.Fatalf("job view trace_id %q, want the client's %q", v.TraceID, wantTID)
	}
	if got := w.Header().Get("X-Trace-Id"); got != wantTID {
		t.Fatalf("X-Trace-Id %q, want %q", got, wantTID)
	}
	if waitDone(t, s, v.ID).State != StateDone {
		t.Fatal("job did not complete")
	}

	// Every SSE event carries the trace ID.
	ev := do(t, s, "GET", "/v1/jobs/"+v.ID+"/events", "")
	for _, line := range strings.Split(ev.Body.String(), "\n") {
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e struct {
			TraceID string `json:"trace_id"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		if e.TraceID != wantTID {
			t.Fatalf("event trace_id %q, want %q: %s", e.TraceID, wantTID, line)
		}
	}

	// The exported span tree is well-formed, carries the same trace
	// ID, and its phases account for the job's wall-clock.
	tr := do(t, s, "GET", "/v1/jobs/"+v.ID+"/trace", "")
	if tr.Code != http.StatusOK {
		t.Fatalf("trace: %d %s", tr.Code, tr.Body)
	}
	tree, err := tracez.ParseTree(tr.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("span tree invalid: %v", err)
	}
	if tree.TraceID != wantTID {
		t.Fatalf("tree trace id %q, want %q", tree.TraceID, wantTID)
	}
	if cov := tree.Coverage(); cov < 0.95 {
		t.Fatalf("phase coverage %.3f, want >= 0.95", cov)
	}
	names := map[string]int{}
	var walk func(n *tracez.Node)
	walk = func(n *tracez.Node) {
		names[n.Name]++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree.Root)
	for _, want := range []string{"job", "queue", "run", "task", "cache", "store-get", "sim", "warmup", "measure", "interval", "energy-finalize"} {
		if names[want] == 0 {
			t.Fatalf("span tree missing %q; have %v", want, names)
		}
	}

	// The Chrome export is valid trace-event JSON with one complete
	// event per span.
	ch := do(t, s, "GET", "/v1/jobs/"+v.ID+"/trace?format=chrome", "")
	if ch.Code != http.StatusOK {
		t.Fatalf("chrome trace: %d %s", ch.Code, ch.Body)
	}
	var chrome struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(ch.Body.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome trace not JSON: %v", err)
	}
	var complete int
	for _, e := range chrome.TraceEvents {
		if e.Ph == "X" {
			complete++
		}
	}
	if complete != tree.Spans {
		t.Fatalf("chrome trace has %d complete events for %d spans", complete, tree.Spans)
	}
	if bad := do(t, s, "GET", "/v1/jobs/"+v.ID+"/trace?format=svg", ""); bad.Code != http.StatusBadRequest {
		t.Fatalf("unknown format: %d, want 400", bad.Code)
	}

	// The structured log correlates job lines with the same trace ID.
	logs := logBuf.String()
	for _, want := range []string{"job accepted", "job running", "job done"} {
		found := false
		for _, line := range strings.Split(logs, "\n") {
			if !strings.Contains(line, want) {
				continue
			}
			found = true
			var rec struct {
				TraceID string `json:"trace_id"`
			}
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("log line not JSON: %q", line)
			}
			if rec.TraceID != wantTID {
				t.Fatalf("log %q trace_id %q, want %q", want, rec.TraceID, wantTID)
			}
		}
		if !found {
			t.Fatalf("log missing %q:\n%s", want, logs)
		}
	}
}

func TestTraceBeforeCompletionConflicts(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 1 })
	s.testGate = make(chan struct{})
	v := submit(t, s, tinySpec(1))
	w := do(t, s, "GET", "/v1/jobs/"+v.ID+"/trace", "")
	if w.Code != http.StatusConflict {
		t.Fatalf("trace while running: %d, want 409", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("409 without Retry-After")
	}
	close(s.testGate)
	waitDone(t, s, v.ID)
}

func TestUnsampledTraceReports404ButKeepsIDs(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		// A ratio this small head-samples everything out; the IDs are
		// still minted for log correlation.
		c.Tracer = tracez.New(tracez.Config{Seed: 11, SampleRatio: 1e-12})
	})
	v := submit(t, s, tinySpec(1))
	if v.TraceID == "" || v.TraceID == strings.Repeat("0", 32) {
		t.Fatalf("unsampled job lost its trace ID: %q", v.TraceID)
	}
	waitDone(t, s, v.ID)
	if w := do(t, s, "GET", "/v1/jobs/"+v.ID+"/trace", ""); w.Code != http.StatusNotFound {
		t.Fatalf("unsampled trace: %d %s, want 404", w.Code, w.Body)
	}
}

func TestEventsLastEventIDResumes(t *testing.T) {
	s := newTestServer(t, nil)
	v := submit(t, s, tinySpec(1))
	waitDone(t, s, v.ID)

	full := do(t, s, "GET", "/v1/jobs/"+v.ID+"/events", "")
	total := strings.Count(full.Body.String(), "data: ")
	if total < 3 {
		t.Fatalf("expected several events, got %d:\n%s", total, full.Body)
	}

	// Resuming after event 1 must replay exactly the rest, starting
	// at seq 2.
	req := httptest.NewRequest("GET", "/v1/jobs/"+v.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "1")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	body := w.Body.String()
	if got := strings.Count(body, "data: "); got != total-2 {
		t.Fatalf("resume replayed %d events, want %d:\n%s", got, total-2, body)
	}
	if !strings.Contains(body, "id: 2\n") || strings.Contains(body, "id: 1\n") {
		t.Fatalf("resume did not start at seq 2:\n%s", body)
	}
}

func TestMetricsHistogramsAndTracerStats(t *testing.T) {
	s := newTestServer(t, nil)
	v := submit(t, s, tinySpec(1))
	waitDone(t, s, v.ID)
	w := do(t, s, "GET", "/metrics", "")
	text := w.Body.String()
	for _, want := range []string{
		"esteem_serve_queue_wait_seconds_bucket{le=\"+Inf\"} 1",
		"esteem_serve_queue_wait_seconds_count 1",
		"esteem_serve_job_compute_seconds_count 1",
		"esteem_serve_job_cache_hit_seconds_count 0",
		"esteem_serve_trace_spans_buffered",
		"esteem_serve_trace_spans_dropped_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}

	// A second identical submission is served from the store and
	// lands in the cache-hit histogram.
	v2 := submit(t, s, tinySpec(1))
	waitDone(t, s, v2.ID)
	text = do(t, s, "GET", "/metrics", "").Body.String()
	if !strings.Contains(text, "esteem_serve_job_cache_hit_seconds_count 1") {
		t.Fatalf("cache-hit histogram not incremented:\n%s", text)
	}
}

func TestHistogramFormat(t *testing.T) {
	h := newHistogram([]float64{0.1, 1})
	h.observe(0.05)
	h.observe(0.5)
	h.observe(5)
	var b bytes.Buffer
	writeHist(&b, "x_seconds", "help text", h.view())
	out := b.String()
	for _, want := range []string{
		"# TYPE x_seconds histogram",
		"x_seconds_bucket{le=\"0.1\"} 1",
		"x_seconds_bucket{le=\"1\"} 2",
		"x_seconds_bucket{le=\"+Inf\"} 3",
		"x_seconds_sum 5.55",
		"x_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram output missing %q:\n%s", want, out)
		}
	}
}

// drainEvents follows an SSE stream until the server closes it,
// failing the test on timeout; used where the recorder-based do()
// would block forever on an unfinished stream.
func drainEvents(t *testing.T, base, id string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	done := make(chan string, 1)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				done <- sb.String()
				return
			}
		}
	}()
	select {
	case s := <-done:
		return s
	case <-time.After(30 * time.Second):
		t.Fatal("SSE stream did not complete")
		return ""
	}
}

func TestLiveStreamCarriesTraceIDs(t *testing.T) {
	s := newTestServer(t, nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	v := submit(t, s, tinySpec(3))
	text := drainEvents(t, srv.URL, v.ID)
	if !strings.Contains(text, fmt.Sprintf("%q:%q", "trace_id", v.TraceID)) {
		t.Fatalf("live stream missing trace_id %s:\n%s", v.TraceID, text)
	}
	if !strings.Contains(text, `"state":"done"`) {
		t.Fatalf("live stream missing terminal state:\n%s", text)
	}
}
