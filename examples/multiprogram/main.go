// Multiprogram: run dual-core multiprogrammed workloads from the
// paper's Table 1 on the shared 8 MB eDRAM L2, comparing Refrint RPV
// and ESTEEM against the baseline. This is the paper's Figure 4
// setting, on a subset of mixes.
//
//	go run ./examples/multiprogram
package main

import (
	"fmt"
	"log"

	esteem "repro"
	"repro/internal/metrics"
)

func main() {
	// A subset of the paper's 17 mixes spanning the workload classes:
	// compact (GkNe — the paper's biggest winner), mixed (GcGa),
	// streaming (LsLb) and huge-footprint (McLu).
	mixes := [][]string{
		{"gobmk", "nekbone"},
		{"gcc", "gamess"},
		{"leslie3d", "lbm"},
		{"mcf", "lulesh"},
	}

	cfg := esteem.DefaultConfig(2)
	cfg.MeasureInstr = 12_000_000
	cfg.WarmupInstr = 6_000_000

	var rpvs, ests []esteem.Comparison
	fmt.Println("dual-core, 8MB shared eDRAM L2, 16 modules, 50us retention")
	fmt.Printf("%-8s %18s %18s\n", "mix", "RPV (sv%/ws/fs)", "ESTEEM (sv%/ws/fs)")
	for _, mix := range mixes {
		cs, err := esteem.RunComparison(cfg, mix, []esteem.Technique{esteem.RPV, esteem.Esteem})
		if err != nil {
			log.Fatal(err)
		}
		rpv, est := cs[0], cs[1]
		rpvs = append(rpvs, rpv)
		ests = append(ests, est)
		fmt.Printf("%-8s %6.1f/%.3f/%.3f %6.1f/%.3f/%.3f\n",
			esteem.MixAcronym(mix[0], mix[1]),
			rpv.EnergySavingPct, rpv.WeightedSpeedup, rpv.FairSpeedup,
			est.EnergySavingPct, est.WeightedSpeedup, est.FairSpeedup)
	}

	sr, se := esteem.Summarize(rpvs), esteem.Summarize(ests)
	fmt.Printf("%-8s %6.1f/%.3f/%.3f %6.1f/%.3f/%.3f\n", "MEAN",
		sr.EnergySavingPct, sr.WeightedSpeedup, sr.FairSpeedup,
		se.EnergySavingPct, se.WeightedSpeedup, se.FairSpeedup)

	// The paper reports that fair speedup stays close to weighted
	// speedup — ESTEEM does not trade one core off against the other.
	fmt.Printf("\nfairness check: ESTEEM ws %.3f vs fs %.3f (gap %.1f%%)\n",
		se.WeightedSpeedup, se.FairSpeedup,
		100*(se.WeightedSpeedup-se.FairSpeedup)/se.WeightedSpeedup)

	// Full CSV for further analysis.
	fmt.Println("\nCSV:")
	fmt.Print(metrics.FormatCSV(append(rpvs, ests...)))
}
