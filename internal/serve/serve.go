// Package serve exposes the simulation engine as a long-running
// HTTP/JSON service: clients submit sweep specifications as jobs,
// follow their progress over server-sent events, and fetch results as
// the same deterministic run artifacts the batch frontends write.
//
// The service composes three layers the repository already has. Jobs
// execute on internal/runner sweeps (one per job, so a job's units
// share baseline deduplication and worker budget); every simulation
// routes through one shared internal/castore content-addressed store
// (so identical units — across jobs, across restarts, across
// concurrent clients — run at most once and replay byte-identically);
// and results are internal/obs run artifacts, addressable either
// through the owning job or directly by content hash.
//
// Production behaviour: admission is a bounded queue (full -> 429
// with Retry-After), each job runs under a context bounded by the
// configured timeout and cancelled on drain, and Drain stops
// admission, finishes what is queued and in flight within its
// deadline, then cancels the rest. /healthz and /metrics expose
// liveness and counters.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/castore"
	"repro/internal/cliflags"
	"repro/internal/cluster"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracez"
)

// Config parameterises a Server. Zero values select the documented
// defaults.
type Config struct {
	// Store is the content-addressed result store shared by every
	// job — a node-local *castore.Store, or a *castore.Sharded when
	// the server fronts a cluster. Required.
	Store castore.Backend
	// Cluster, when set, makes this server a cluster coordinator: job
	// units are submitted as leases to the coordinator's task table
	// and executed by joined workers instead of a local sweep, and the
	// cluster protocol plus shard transport are mounted on the mux.
	Cluster *cluster.Coordinator
	// Workers is the number of jobs executing concurrently
	// (default 1).
	Workers int
	// SimWorkers is the per-job sweep worker count (default
	// GOMAXPROCS, the runner's convention).
	SimWorkers int
	// QueueDepth bounds the admission queue (default 16). A full
	// queue rejects submissions with 429.
	QueueDepth int
	// JobTimeout bounds each job's execution (default 10m; <0
	// disables).
	JobTimeout time.Duration
	// RetryAfter is the hint returned with 429 responses
	// (default 5s).
	RetryAfter time.Duration
	// MaxBodyBytes bounds submission bodies (default 1 MiB).
	MaxBodyBytes int64
	// Node is this server's advertised name (the cluster member URL in
	// cluster mode). When set, every HTTP response carries it as
	// X-Esteem-Node, job root spans carry it as a "node" attribute (the
	// per-node lane in Chrome exports), and SSE events default their
	// node field to it.
	Node string
	// Tracer records per-job span trees. Nil selects a default tracer
	// (crypto/rand IDs, sample everything, 4096-span ring); requests
	// that carry a W3C traceparent header join the caller's trace.
	Tracer *tracez.Tracer
	// Logger receives structured request/job logs, each correlated
	// with its trace via a trace_id attribute. Nil discards logs.
	Logger *slog.Logger
}

func (c *Config) fill() error {
	if c.Store == nil {
		return fmt.Errorf("serve: Config.Store is required")
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 5 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Tracer == nil {
		c.Tracer = tracez.New(tracez.Config{})
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return nil
}

// Server is the HTTP service state: the job registry, the admission
// queue and its workers, and the shared result store.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	start time.Time

	baseCtx context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*Job
	queue    chan *Job
	draining bool

	wg sync.WaitGroup

	// testGate, when non-nil, stalls workers before each job until a
	// receive succeeds. Tests use it to hold jobs in the queue and
	// exercise admission deterministically.
	testGate chan struct{}

	inFlight   atomic.Int64
	accepted   atomic.Uint64
	rejected   atomic.Uint64
	completed  atomic.Uint64
	failed     atomic.Uint64
	simsTotal  atomic.Uint64
	instrTotal atomic.Uint64

	// Latency histograms exposed on /metrics: time jobs spend queued,
	// and compute time split by whether the job was served entirely
	// from the content-addressed store (hit) or ran simulations (miss).
	queueWaitHist   *histogram
	computeHitHist  *histogram
	computeMissHist *histogram
}

// New builds a server and starts its job workers. Callers own the
// HTTP listener; mount Handler and call Drain (or Close) on the way
// out.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:             cfg,
		start:           time.Now(),
		baseCtx:         ctx,
		cancel:          cancel,
		jobs:            make(map[string]*Job),
		queue:           make(chan *Job, cfg.QueueDepth),
		queueWaitHist:   newHistogram(latencyBuckets),
		computeHitHist:  newHistogram(latencyBuckets),
		computeMissHist: newHistogram(latencyBuckets),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/artifacts/{key}", s.handleArtifact)
	s.mux.HandleFunc("GET /v1/version", s.handleVersion)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.Cluster != nil {
		cfg.Cluster.Register(s.mux)
		// The coordinator is itself a shard: serve its local store to
		// worker peers over the same transport they use among
		// themselves.
		if sh, ok := cfg.Store.(*castore.Sharded); ok {
			castore.RegisterShard(s.mux, sh.Local(), cfg.Node)
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the service's HTTP handler: the API mux wrapped in
// an access-log middleware that emits one structured line per request,
// trace-correlated when the handler resolved a trace ID.
func (s *Server) Handler() http.Handler { return s.accessLog(s.mux) }

// statusWriter captures the response status for the access log while
// forwarding Flush, so SSE streaming works through the middleware.
type statusWriter struct {
	http.ResponseWriter
	status  int
	traceID string
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// setLogTrace tags the in-flight request's access-log line (and the
// response) with the trace ID a handler resolved.
func setLogTrace(w http.ResponseWriter, traceID string) {
	w.Header().Set("X-Trace-Id", traceID)
	if sw, ok := w.(*statusWriter); ok {
		sw.traceID = traceID
	}
}

func (s *Server) accessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		if s.cfg.Node != "" {
			sw.Header().Set("X-Esteem-Node", s.cfg.Node)
		}
		start := time.Now()
		next.ServeHTTP(sw, r)
		attrs := []any{
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"dur_ms", float64(time.Since(start).Microseconds()) / 1e3,
		}
		if sw.traceID != "" {
			attrs = append(attrs, "trace_id", sw.traceID)
		}
		s.cfg.Logger.Info("http", attrs...)
	})
}

// Store returns the shared result store (for stats reporting).
func (s *Server) Store() castore.Backend { return s.cfg.Store }

// worker executes queued jobs until the queue closes or the base
// context is cancelled.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j, ok := <-s.queue:
			if !ok {
				return
			}
			if s.testGate != nil {
				select {
				case <-s.testGate:
				case <-s.baseCtx.Done():
					j.finish(StateCanceled, s.baseCtx.Err())
					continue
				}
			}
			s.runJob(j)
		}
	}
}

// runJob executes one job's sweep under the server's lifetime and the
// configured timeout.
func (s *Server) runJob(j *Job) {
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	queueWait := time.Since(j.enqueued)
	s.queueWaitHist.observe(queueWait.Seconds())
	j.queueSpan.End()

	ctx := s.baseCtx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		j.finish(StateCanceled, fmt.Errorf("serve: job cancelled before start: %w", err))
		s.failed.Add(1)
		return
	}
	j.setState(StateRunning)
	s.cfg.Logger.Info("job running",
		"job_id", j.ID, "trace_id", j.TraceID,
		"queue_wait_ms", float64(queueWait.Microseconds())/1e3)

	// The run span carries the whole sweep; runner tasks open their
	// spans as its children through the context.
	rsp := j.span.Child("run")
	ctx = tracez.ContextWith(ctx, rsp)
	computeStart := time.Now()
	var (
		err         error
		sims, instr uint64
	)
	if s.cfg.Cluster != nil {
		// Coordinator mode: units become cluster leases executed by
		// workers; sims/instr stay zero here (the workers' own metrics
		// account for compute).
		err = s.runClusterJob(ctx, j)
	} else {
		sweep := runner.NewSweep(s.cfg.SimWorkers, runner.WithTaskHook(j.taskEvent))
		sweep.SetCache(s.cfg.Store)
		for _, u := range j.Units {
			sweep.Sim(u.cfg, u.Workload)
		}
		err = sweep.Run(ctx)
		sims, instr = sweep.Stats()
	}
	computeDur := time.Since(computeStart)
	rsp.SetAttrInt("sims", int64(sims))
	rsp.End()
	if sims == 0 {
		s.computeHitHist.observe(computeDur.Seconds())
	} else {
		s.computeMissHist.observe(computeDur.Seconds())
	}
	s.simsTotal.Add(sims)
	s.instrTotal.Add(instr)
	if err != nil {
		state := StateFailed
		if ctx.Err() != nil {
			state = StateCanceled
		}
		j.finish(state, err)
		s.failed.Add(1)
		s.cfg.Logger.Error("job failed",
			"job_id", j.ID, "trace_id", j.TraceID, "state", string(state), "err", err)
		return
	}
	j.finish(StateDone, nil)
	s.completed.Add(1)
	s.cfg.Logger.Info("job done",
		"job_id", j.ID, "trace_id", j.TraceID,
		"sims", sims, "instructions", instr,
		"compute_ms", float64(computeDur.Microseconds())/1e3)
}

// Drain performs a graceful shutdown: admission stops immediately,
// queued and in-flight jobs finish within ctx's deadline, and
// whatever remains afterwards is cancelled. It returns ctx's error if
// the deadline cut work short.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return ctx.Err()
	}
}

// Close cancels everything immediately (tests and error paths).
func (s *Server) Close() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

// ---- submission ----

// JobSpec is the submission body of POST /v1/jobs. Config holds
// overrides applied onto sim.DefaultConfig for the requested core
// count (absent fields keep the paper's defaults); Benchmarks lists
// the workloads (each one benchmark name per core); Techniques names
// the techniques to run, producing one simulation unit per
// (workload, technique) pair; Technology selects the LLC storage
// backend for every unit (empty = eDRAM; it overrides any Technology
// inside Config).
type JobSpec struct {
	Config     json.RawMessage `json:"config,omitempty"`
	Benchmarks [][]string      `json:"benchmarks"`
	Techniques []string        `json:"techniques"`
	Technology string          `json:"technology,omitempty"`
}

// buildUnits validates a spec and expands it into simulation units.
func buildUnits(spec JobSpec) ([]Unit, error) {
	if len(spec.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchmarks must list at least one workload")
	}
	if len(spec.Techniques) == 0 {
		return nil, fmt.Errorf("techniques must list at least one technique")
	}
	// Peek the core count so overrides land on the matching paper
	// defaults (L2 size, bandwidth and module count follow cores).
	cores := struct {
		Cores int `json:"Cores"`
	}{Cores: 1}
	if len(spec.Config) > 0 {
		if err := json.Unmarshal(spec.Config, &cores); err != nil {
			return nil, fmt.Errorf("config: %v", err)
		}
		if cores.Cores == 0 {
			cores.Cores = 1
		}
	}
	base := sim.DefaultConfig(cores.Cores)
	if len(spec.Config) > 0 {
		if err := strictUnmarshal(spec.Config, &base); err != nil {
			return nil, fmt.Errorf("config: %v", err)
		}
	}
	if spec.Technology != "" {
		base.Technology = spec.Technology
	}
	technology, err := cliflags.ParseTechnology(base.Technology)
	if err != nil {
		return nil, fmt.Errorf("technology: %v", err)
	}
	base.Technology = technology
	for _, wl := range spec.Benchmarks {
		if len(wl) != base.Cores {
			return nil, fmt.Errorf("workload %v has %d benchmarks, config has %d cores", wl, len(wl), base.Cores)
		}
		for _, b := range wl {
			if _, ok := trace.ProfileByName(b); !ok {
				return nil, fmt.Errorf("unknown benchmark %q", b)
			}
		}
	}
	var units []Unit
	for _, name := range spec.Techniques {
		tech, err := cliflags.ParseTechnique(name)
		if err != nil {
			return nil, err
		}
		cfg := base
		cfg.Technique = tech
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("config: %v", err)
		}
		for _, wl := range spec.Benchmarks {
			key, err := runner.CacheKey(cfg, wl)
			if err != nil {
				return nil, fmt.Errorf("keying %s/%v: %v", name, wl, err)
			}
			units = append(units, Unit{
				Label:      unitLabel(tech, wl),
				Technique:  name,
				Technology: technology,
				Workload:   append([]string(nil), wl...),
				Key:        key,
				cfg:        cfg,
			})
		}
	}
	return units, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing
// data.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytesReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// newJobID returns a 16-hex-digit random job identifier.
func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding job spec: %v", err))
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after job spec")
		return
	}
	units, err := buildUnits(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	id, err := newJobID()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// The job's root span: joins the client's trace when the request
	// carries a valid W3C traceparent header, otherwise starts fresh.
	var root *tracez.Span
	if tid, parent, ok := tracez.ParseTraceparent(r.Header.Get("traceparent")); ok {
		root = s.cfg.Tracer.RootFrom("job", tid, parent)
	} else {
		root = s.cfg.Tracer.Root("job")
	}
	root.SetAttr("job_id", id)
	root.SetAttrInt("units", int64(len(units)))
	if s.cfg.Node != "" {
		root.SetAttr("node", s.cfg.Node)
	}
	job := newJob(id, spec, units, root, s.cfg.Node)
	setLogTrace(w, job.TraceID)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		root.SetAttr("rejected", "draining")
		root.End()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	select {
	case s.queue <- job:
		s.jobs[id] = job
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.rejected.Add(1)
		root.SetAttr("rejected", "queue-full")
		root.End()
		w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.5)))
		writeError(w, http.StatusTooManyRequests, "admission queue is full")
		return
	}
	s.accepted.Add(1)
	s.cfg.Logger.Info("job accepted",
		"job_id", id, "trace_id", job.TraceID, "units", len(units))
	w.Header().Set("Location", "/v1/jobs/"+id)
	writeJSON(w, http.StatusAccepted, job.view())
}

// ---- job state and results ----

func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	switch j.State() {
	case StateDone:
	case StateFailed, StateCanceled:
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("job %s: %v", j.State(), j.Err()))
		return
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "job is not complete")
		return
	}
	// Single-unit jobs return the stored artifact itself — the bytes
	// are content-addressed, so the key doubles as a strong ETag.
	if len(j.Units) == 1 {
		s.serveArtifact(w, r, j.Units[0].Key)
		return
	}
	writeJSON(w, http.StatusOK, j.resultEnvelope())
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !castore.ValidKey(key) {
		writeError(w, http.StatusBadRequest, "malformed artifact key")
		return
	}
	s.serveArtifact(w, r, key)
}

// serveArtifact writes the stored artifact bytes for key.
func (s *Server) serveArtifact(w http.ResponseWriter, r *http.Request, key string) {
	data, ok, err := s.cfg.Store.Get(key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "artifact not found")
		return
	}
	etag := `"` + key + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "public, max-age=31536000, immutable")
	if match := r.Header.Get("If-None-Match"); match == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// ---- traces ----

// handleTrace exports a completed job's span tree: the canonical tree
// JSON by default, or a Chrome trace-event (Perfetto-loadable) file
// with ?format=chrome. The tree is only complete once the job reaches
// a terminal state; earlier requests get 409 + Retry-After.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	setLogTrace(w, j.TraceID)
	if !j.State().Terminal() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "job is not complete; trace is still being recorded")
		return
	}
	spans := s.cfg.Tracer.Spans(j.traceID)
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, "trace not recorded (unsampled, or evicted from the span ring)")
		return
	}
	tree, err := tracez.BuildTree(spans)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("trace incomplete: %v", err))
		return
	}
	var data []byte
	switch format := r.URL.Query().Get("format"); format {
	case "", "tree":
		data, err = tracez.MarshalTree(tree)
	case "chrome":
		data, err = tracez.ChromeTrace(tree)
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q (want tree or chrome)", format))
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// ---- events ----

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	setLogTrace(w, j.TraceID)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// A reconnecting client resumes after the last event it saw: SSE
	// ids are the event log's sequence numbers, so Last-Event-ID maps
	// directly to a replay index.
	idx := 0
	if last := r.Header.Get("Last-Event-ID"); last != "" {
		if n, err := strconv.Atoi(last); err == nil && n >= 0 {
			idx = n + 1
		}
	}
	for {
		events, wake, closed := j.log.since(idx)
		for _, ev := range events {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Event, data)
			idx++
		}
		fl.Flush()
		if closed && idx >= j.log.len() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		}
	}
}

// ---- liveness ----

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Service string `json:"service"`
		cliflags.BuildInfo
	}{Service: "esteem-serve", BuildInfo: cliflags.ReadBuildInfo()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	queued := len(s.queue)
	s.mu.Unlock()
	status, code := "ok", http.StatusOK
	if draining {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, struct {
		Status   string `json:"status"`
		Queued   int    `json:"queued"`
		InFlight int64  `json:"in_flight"`
	}{status, queued, s.inFlight.Load()})
}

// handleMetrics lives in metricsview.go: one snapshot feeds both the
// Prometheus text exposition and the JSON view.

// ---- helpers ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{msg})
}
