// Package tracez is the repository's dependency-free span tracer: a
// minimal distributed-tracing layer built for one job — attributing a
// request's wall-clock to phases as it crosses the serving stack
// (client submit → serve admission queue → runner task → cache lookup
// → simulation warmup/intervals → artifact write).
//
// Design contract, mirroring internal/obs:
//
//   - Zero overhead when disabled. Every Span method is nil-safe and a
//     nil *Span is the disabled tracer: Child returns nil, End and
//     SetAttr return immediately, and none of them allocate. Hot paths
//     guard with a nil check (or simply call through — the nil path is
//     a handful of instructions).
//   - Determinism on demand. Trace and span IDs come from a splitmix64
//     stream (the same generator as internal/xrand): production
//     tracers seed it from crypto/rand, tests pass a fixed seed and
//     get byte-identical IDs, sampling decisions and exports.
//   - Bounded memory. Completed spans land in a fixed-size ring
//     buffer; a runaway trace evicts the oldest spans instead of
//     growing the heap.
//   - Head-based sampling. The sampling decision is made once, when a
//     trace's root span is created, and inherited by every child —
//     either a whole request is traced or none of it is. SampleRatio 1
//     (the default, and what tests use) records everything.
//
// The package is a leaf: it imports only the standard library, so any
// layer of the stack (castore, runner, sim, serve, cmd) can depend on
// it without cycles.
package tracez

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync"
	"time"
)

// TraceID identifies one end-to-end request (W3C trace-id: 16 bytes).
type TraceID [16]byte

// SpanID identifies one span within a trace (W3C parent-id: 8 bytes).
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 32-hex-digit form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the 16-hex-digit form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID decodes a 32-hex-digit trace ID.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil || t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// Config parameterises a Tracer. The zero value selects the
// production defaults: crypto/rand seeding, sample everything, a
// 4096-span ring, wall clocks.
type Config struct {
	// Seed fixes the ID/sampling stream for deterministic tests;
	// 0 seeds from crypto/rand (mixed with the current time as a
	// fallback if the system source fails).
	Seed uint64
	// SampleRatio is the head-sampling probability in (0, 1]; 0
	// selects 1 (record every trace).
	SampleRatio float64
	// RingSize bounds the completed-span buffer (default 4096).
	RingSize int
	// Now supplies timestamps (default time.Now, which carries a
	// monotonic clock); tests inject fake clocks for stable exports.
	Now func() time.Time
}

// Tracer creates spans and retains completed ones in a bounded ring.
// All methods are safe for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	rng    uint64 // splitmix64 state (IDs and sampling)
	ratio  float64
	now    func() time.Time
	ring   []SpanData // fixed capacity, oldest evicted first
	head   int        // next write position
	count  int        // live entries (<= len(ring))
	drops  uint64     // spans evicted from the ring
	unsamp uint64     // root spans head-sampled out
}

// New builds a tracer from cfg.
func New(cfg Config) *Tracer {
	seed := cfg.Seed
	if seed == 0 {
		var b [8]byte
		if _, err := cryptorand.Read(b[:]); err == nil {
			seed = binary.LittleEndian.Uint64(b[:])
		}
		seed ^= uint64(time.Now().UnixNano())
		if seed == 0 {
			seed = 0x9E3779B97F4A7C15
		}
	}
	ratio := cfg.SampleRatio
	if ratio <= 0 || ratio > 1 {
		ratio = 1
	}
	size := cfg.RingSize
	if size <= 0 {
		size = 4096
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Tracer{rng: seed, ratio: ratio, now: now, ring: make([]SpanData, size)}
}

// next draws the next splitmix64 output. Caller holds t.mu.
func (t *Tracer) next() uint64 {
	t.rng += 0x9E3779B97F4A7C15
	z := t.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// newIDs draws a fresh (trace, span) ID pair and a sampling decision.
func (t *Tracer) newIDs(needTrace bool) (tid TraceID, sid SpanID, sampled bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if needTrace {
		binary.BigEndian.PutUint64(tid[:8], t.next())
		binary.BigEndian.PutUint64(tid[8:], t.next())
	}
	binary.BigEndian.PutUint64(sid[:], t.next())
	sampled = t.ratio >= 1 || float64(t.next()>>11)/(1<<53) < t.ratio
	if !sampled {
		t.unsamp++
	}
	return tid, sid, sampled
}

// Root starts a new trace with a fresh trace ID. The returned span is
// the trace's root; its sampling decision (made here, head-based)
// governs the whole trace.
func (t *Tracer) Root(name string) *Span {
	tid, sid, sampled := t.newIDs(true)
	return &Span{tracer: t, traceID: tid, id: sid, name: name, start: t.now(), sampled: sampled}
}

// RootFrom starts this process's root span as a child of a remote
// parent (extracted from a traceparent header): the trace ID is
// reused, so the caller's spans and ours export as one tree.
func (t *Tracer) RootFrom(name string, tid TraceID, parent SpanID) *Span {
	if tid.IsZero() {
		return t.Root(name)
	}
	_, sid, sampled := t.newIDs(false)
	return &Span{tracer: t, traceID: tid, id: sid, parent: parent, name: name, start: t.now(), sampled: sampled}
}

// record appends a completed span to the ring, evicting the oldest
// entry when full.
func (t *Tracer) record(d SpanData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.count == len(t.ring) {
		t.drops++
	} else {
		t.count++
	}
	t.ring[t.head] = d
	t.head = (t.head + 1) % len(t.ring)
}

// Spans returns the completed spans of one trace, oldest first. The
// result is a snapshot: entries are copied out of the ring.
func (t *Tracer) Spans(tid TraceID) []SpanData {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanData
	start := t.head - t.count
	for i := 0; i < t.count; i++ {
		idx := (start + i + len(t.ring)) % len(t.ring)
		if t.ring[idx].TraceID == tid {
			out = append(out, t.ring[idx])
		}
	}
	return out
}

// Stats is a snapshot of the tracer's bookkeeping counters.
type Stats struct {
	// Buffered is the number of completed spans currently retained.
	Buffered int
	// Dropped counts spans evicted from the ring.
	Dropped uint64
	// Unsampled counts root spans head-sampled out.
	Unsampled uint64
}

// Stats returns the tracer's counters.
func (t *Tracer) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{Buffered: t.count, Dropped: t.drops, Unsampled: t.unsamp}
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanData is the immutable record of a completed span.
type SpanData struct {
	TraceID TraceID
	SpanID  SpanID
	Parent  SpanID // zero for the trace root
	Name    string
	Start   time.Time
	End     time.Time
	Attrs   []Attr
}

// Span is one in-progress operation. A nil *Span is the disabled
// tracer: every method is nil-safe and free. Spans are not safe for
// concurrent mutation; each belongs to the goroutine that created it.
type Span struct {
	tracer  *Tracer
	traceID TraceID
	id      SpanID
	parent  SpanID
	name    string
	start   time.Time
	attrs   []Attr
	sampled bool
	ended   bool
}

// TraceID returns the span's trace ID (zero for nil spans).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.traceID
}

// ID returns the span's ID (zero for nil spans).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Sampled reports whether the span's trace is being recorded.
func (s *Span) Sampled() bool { return s != nil && s.sampled }

// Child starts a sub-span. On a nil or unsampled receiver it returns
// nil — the head-based decision propagates with no further cost.
func (s *Span) Child(name string) *Span {
	if s == nil || !s.sampled {
		return nil
	}
	_, sid, _ := s.tracer.newIDs(false)
	return &Span{tracer: s.tracer, traceID: s.traceID, id: sid, parent: s.id, name: name, start: s.tracer.now(), sampled: true}
}

// SetAttr annotates the span. Nil-safe; call before End.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetAttrInt annotates the span with an integer value. Nil-safe.
func (s *Span) SetAttrInt(key string, value int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.FormatInt(value, 10)})
}

// SetAttrFloat annotates the span with a float value. Nil-safe.
func (s *Span) SetAttrFloat(key string, value float64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: strconv.FormatFloat(value, 'g', 6, 64)})
}

// End completes the span and, if its trace is sampled, records it in
// the tracer's ring. Nil-safe and idempotent: only the first End
// records.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	if !s.sampled {
		return
	}
	s.tracer.record(SpanData{
		TraceID: s.traceID,
		SpanID:  s.id,
		Parent:  s.parent,
		Name:    s.name,
		Start:   s.start,
		End:     s.tracer.now(),
		Attrs:   s.attrs,
	})
}

// ---- context propagation ----

type ctxKey struct{}

// ContextWith returns ctx carrying sp. A nil span returns ctx
// unchanged, so disabled tracing adds no context nodes.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// StartChild opens a child of the span carried by ctx and returns it
// with a derived context. With no span in ctx it returns (nil, ctx):
// the whole call is free when tracing is off.
func StartChild(ctx context.Context, name string) (*Span, context.Context) {
	sp := FromContext(ctx).Child(name)
	if sp == nil {
		return nil, ctx
	}
	return sp, context.WithValue(ctx, ctxKey{}, sp)
}

// ---- W3C traceparent ----

// Traceparent formats the span's W3C traceparent header value
// (version 00; the sampled flag mirrors the span's decision). Returns
// "" for a nil span.
func Traceparent(s *Span) string {
	if s == nil {
		return ""
	}
	flags := "00"
	if s.sampled {
		flags = "01"
	}
	return fmt.Sprintf("00-%s-%s-%s", s.traceID, s.id, flags)
}

// ParseTraceparent extracts the trace and parent-span IDs from a W3C
// traceparent header value. Malformed or all-zero values report
// ok=false (the caller then starts a fresh trace).
func ParseTraceparent(h string) (tid TraceID, parent SpanID, ok bool) {
	// version "-" trace-id "-" parent-id "-" flags
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, SpanID{}, false
	}
	var ver [1]byte
	if _, err := hex.Decode(ver[:], []byte(h[:2])); err != nil || ver[0] == 0xff {
		return TraceID{}, SpanID{}, false // malformed or forbidden version
	}
	if _, err := hex.Decode(tid[:], []byte(h[3:35])); err != nil || tid.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	if _, err := hex.Decode(parent[:], []byte(h[36:52])); err != nil || parent.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return tid, parent, true
}
