package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func sampleRefs(n int) []Ref {
	p, _ := ProfileByName("gcc")
	g := MustNewGenerator(p, 11)
	return Record(g, n)
}

func TestWriteReadRoundTrip(t *testing.T) {
	refs := sampleRefs(5000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, refs, 2.5); err != nil {
		t.Fatal(err)
	}
	got, mlp, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mlp != 2.5 {
		t.Fatalf("mlp = %v, want 2.5", mlp)
	}
	if len(got) != len(refs) {
		t.Fatalf("len = %d, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], refs[i])
		}
	}
}

func TestWriteTraceRejectsNegativeGap(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTrace(&buf, []Ref{{Gap: -1}}, 1)
	if err == nil {
		t.Fatal("negative gap accepted")
	}
}

func TestWriteTraceClampsMLP(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sampleRefs(10), 0.1); err != nil {
		t.Fatal(err)
	}
	_, mlp, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mlp != 1 {
		t.Fatalf("mlp = %v, want clamped to 1", mlp)
	}
}

func TestReadTraceBadInput(t *testing.T) {
	if _, _, err := ReadTrace(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := ReadTrace(strings.NewReader("NOTATRACEFILE___")); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated records.
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sampleRefs(100), 1); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestReplayerLoops(t *testing.T) {
	refs := sampleRefs(100)
	rp, err := NewReplayer("loopy", refs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Name() != "loopy" || rp.MLPFactor() != 2 || rp.Len() != 100 {
		t.Fatalf("identity wrong: %s/%v/%d", rp.Name(), rp.MLPFactor(), rp.Len())
	}
	for i := 0; i < 250; i++ {
		want := refs[i%100]
		if got := rp.Next(); got != want {
			t.Fatalf("ref %d: %+v != %+v", i, got, want)
		}
	}
	if rp.Loops() != 2 {
		t.Fatalf("loops = %d, want 2", rp.Loops())
	}
}

func TestNewReplayerRejectsEmpty(t *testing.T) {
	if _, err := NewReplayer("x", nil, 1); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestReadReplayer(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sampleRefs(42), 3); err != nil {
		t.Fatal(err)
	}
	rp, err := ReadReplayer("fromfile", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Len() != 42 || rp.MLPFactor() != 3 {
		t.Fatalf("replayer wrong: %d/%v", rp.Len(), rp.MLPFactor())
	}
}

func TestGeneratorIsSource(t *testing.T) {
	p, _ := ProfileByName("lbm")
	var src Source = MustNewGenerator(p, 1)
	if src.MLPFactor() != 8 {
		t.Fatalf("lbm MLP = %v, want 8", src.MLPFactor())
	}
	if src.Name() != "lbm" {
		t.Fatalf("name = %q", src.Name())
	}
}

// Property: serialization round-trips arbitrary records.
func TestRoundTripProperty(t *testing.T) {
	err := quick.Check(func(addrs []uint64, gaps []uint16, flags []bool) bool {
		n := len(addrs)
		if len(gaps) < n {
			n = len(gaps)
		}
		if len(flags) < n {
			n = len(flags)
		}
		if n == 0 {
			return true
		}
		refs := make([]Ref, n)
		for i := 0; i < n; i++ {
			refs[i] = Ref{
				Addr:  addrs[i],
				Gap:   int(gaps[i]),
				Write: flags[i],
				Kind:  Kind(uint8(gaps[i]) % 5),
			}
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, refs, 1.5); err != nil {
			return false
		}
		got, _, err := ReadTrace(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range refs {
			if got[i] != refs[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}
