package tracez

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestWireSpanRoundTrip(t *testing.T) {
	tr := New(Config{Seed: 21, Now: fakeClock(time.Millisecond)})
	root := tr.Root("worker")
	root.SetAttr("node", "http://w1")
	child := root.Child("task")
	child.End()
	root.End()

	spans := tr.Spans(root.TraceID())
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	for _, d := range spans {
		w := d.Wire()
		// The wire form must survive JSON (the actual transport).
		blob, err := json.Marshal(w)
		if err != nil {
			t.Fatal(err)
		}
		var back WireSpan
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatal(err)
		}
		got, err := back.Data()
		if err != nil {
			t.Fatalf("Data(): %v", err)
		}
		if got.TraceID != d.TraceID || got.SpanID != d.SpanID || got.Parent != d.Parent {
			t.Fatalf("ids drifted: got %+v want %+v", got, d)
		}
		if got.Name != d.Name || !got.Start.Equal(d.Start) || !got.End.Equal(d.End) {
			t.Fatalf("payload drifted: got %+v want %+v", got, d)
		}
		if len(got.Attrs) != len(d.Attrs) {
			t.Fatalf("attrs drifted: got %v want %v", got.Attrs, d.Attrs)
		}
	}
}

func TestWireSpanRejectsBadIDs(t *testing.T) {
	for _, w := range []WireSpan{
		{TraceID: "xyz", SpanID: strings.Repeat("a", 16), Name: "s"},
		{TraceID: strings.Repeat("a", 32), SpanID: "12", Name: "s"},
		{TraceID: strings.Repeat("0", 32), SpanID: strings.Repeat("a", 16), Name: "s"},
		{TraceID: strings.Repeat("a", 32), SpanID: strings.Repeat("a", 16), Parent: "nope", Name: "s"},
	} {
		if _, err := w.Data(); err == nil {
			t.Errorf("Data() accepted malformed wire span %+v", w)
		}
	}
}

func TestTakeDrainsOneTrace(t *testing.T) {
	tr := New(Config{Seed: 33, Now: fakeClock(time.Millisecond)})
	a := tr.Root("a")
	a.Child("a1").End()
	a.End()
	b := tr.Root("b")
	b.Child("b1").End()
	b.End()

	got := tr.Take(a.TraceID())
	if len(got) != 2 {
		t.Fatalf("Take returned %d spans, want 2", len(got))
	}
	for _, d := range got {
		if d.TraceID != a.TraceID() {
			t.Fatalf("Take leaked span from trace %s", d.TraceID)
		}
	}
	// Drained: a second Take finds nothing, trace b is untouched.
	if again := tr.Take(a.TraceID()); again != nil {
		t.Fatalf("second Take returned %d spans, want none", len(again))
	}
	if left := tr.Spans(b.TraceID()); len(left) != 2 {
		t.Fatalf("trace b has %d spans after Take(a), want 2", len(left))
	}
	if st := tr.Stats(); st.Buffered != 2 {
		t.Fatalf("Buffered = %d after Take, want 2", st.Buffered)
	}
	// The ring still works after compaction.
	c := tr.Root("c")
	c.End()
	if got := tr.Spans(c.TraceID()); len(got) != 1 {
		t.Fatalf("post-Take record lost: %d spans", len(got))
	}
}

func TestInjectMergesRemoteSpans(t *testing.T) {
	clock := fakeClock(time.Millisecond)
	coord := New(Config{Seed: 1, Now: clock})
	worker := New(Config{Seed: 2, Now: clock})

	root := coord.Root("job")
	lease := root.Child("lease")

	// Worker joins the trace via traceparent, exactly as over the wire.
	tid, parent, ok := ParseTraceparent(Traceparent(lease))
	if !ok {
		t.Fatal("traceparent did not round-trip")
	}
	wsp := worker.RootFrom("worker", tid, parent)
	wsp.SetAttr("node", "http://w1")
	wsp.Child("task").End()
	wsp.End()

	// Ship: drain the worker, inject into the coordinator.
	for _, d := range worker.Take(tid) {
		back, err := d.Wire().Data()
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.Inject(back); err != nil {
			t.Fatal(err)
		}
	}
	lease.End()
	root.End()

	tree, err := BuildTree(coord.Spans(root.TraceID()))
	if err != nil {
		t.Fatalf("BuildTree over merged spans: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("merged tree invalid: %v", err)
	}
	if tree.Spans != 4 {
		t.Fatalf("merged tree has %d spans, want 4", tree.Spans)
	}
	// worker must hang under lease.
	if len(tree.Root.Children) != 1 || tree.Root.Children[0].Name != "lease" {
		t.Fatalf("root children = %+v, want [lease]", tree.Root.Children)
	}
	leaseNode := tree.Root.Children[0]
	if len(leaseNode.Children) != 1 || leaseNode.Children[0].Name != "worker" {
		t.Fatalf("lease children = %+v, want [worker]", leaseNode.Children)
	}

	if err := coord.Inject(SpanData{Name: "bad"}); err == nil {
		t.Fatal("Inject accepted a zero-id span")
	}
}

func TestChromeTracePerNodeLanes(t *testing.T) {
	clock := fakeClock(time.Millisecond)
	coord := New(Config{Seed: 4, Now: clock})
	worker := New(Config{Seed: 5, Now: clock})

	root := coord.Root("job")
	root.SetAttr("node", "http://coord")
	lease := root.Child("lease")
	tid, parent, _ := ParseTraceparent(Traceparent(lease))
	wsp := worker.RootFrom("worker", tid, parent)
	wsp.SetAttr("node", "http://w1")
	wsp.Child("task").End()
	wsp.End()
	for _, d := range worker.Take(tid) {
		if err := coord.Inject(d); err != nil {
			t.Fatal(err)
		}
	}
	lease.End()
	root.End()

	tree, err := BuildTree(coord.Spans(root.TraceID()))
	if err != nil {
		t.Fatal(err)
	}
	data, err := ChromeTrace(tree)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	pidByNode := map[string]map[int]bool{}
	processNames := map[string]int{}
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "X":
			node, _ := ev.Args["node"].(string)
			if pidByNode[node] == nil {
				pidByNode[node] = map[int]bool{}
			}
			pidByNode[node][ev.PID] = true
		case "M":
			if ev.Name == "process_name" {
				processNames[ev.Args["name"].(string)] = ev.PID
			}
		}
	}
	// Two nodes -> two process lanes, each named.
	if len(processNames) != 2 {
		t.Fatalf("process_name metadata = %v, want coordinator and worker lanes", processNames)
	}
	coordPIDs := pidByNode["http://coord"]
	workerPIDs := pidByNode["http://w1"]
	if len(coordPIDs) != 1 || len(workerPIDs) != 1 {
		t.Fatalf("node pids not stable: coord %v worker %v", coordPIDs, workerPIDs)
	}
	for pid := range coordPIDs {
		if workerPIDs[pid] {
			t.Fatalf("coordinator and worker share pid %d", pid)
		}
		if processNames["http://coord"] != pid {
			t.Fatalf("coordinator process_name pid = %d, spans use %d", processNames["http://coord"], pid)
		}
	}
	// The lease span carries no node attr: it must inherit the root's.
	for _, ev := range f.TraceEvents {
		if ev.Ph == "X" && ev.Name == "lease" {
			for pid := range coordPIDs {
				if ev.PID != pid {
					t.Fatalf("lease span pid = %d, want inherited coordinator pid %d", ev.PID, pid)
				}
			}
		}
	}
}
