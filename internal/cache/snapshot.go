package cache

// LineSnapshot is one frame's externally visible state, for
// differential verification against reference models.
type LineSnapshot struct {
	Tag   uint64
	Valid bool
	Dirty bool
}

// SetSnapshot captures one set: the recency stack (way indices, MRU
// first) and every frame's state, way-indexed.
type SetSnapshot struct {
	Order []int
	Lines []LineSnapshot
}

// SnapshotSet copies the full state of one set, materialising the
// struct-of-arrays representation (flat tag array plus valid/dirty
// bitset words) back into per-line records. It is a cold-path
// debugging/verification API: the differential harness in
// internal/verify calls it after every operation to compare tag
// arrays, LRU order and valid/dirty bits against the oracle model.
func (c *Cache) SnapshotSet(setIdx int) SetSnapshot {
	base := setIdx * c.assoc
	snap := SetSnapshot{
		Order: make([]int, c.assoc),
		Lines: make([]LineSnapshot, c.assoc),
	}
	valid, dirty := c.vd[2*setIdx], c.vd[2*setIdx+1]
	for w := 0; w < c.assoc; w++ {
		snap.Order[w] = int(c.order[base+w])
		bit := uint64(1) << uint(w)
		snap.Lines[w] = LineSnapshot{
			Tag:   c.tags[base+w],
			Valid: valid&bit != 0,
			Dirty: dirty&bit != 0,
		}
	}
	return snap
}
