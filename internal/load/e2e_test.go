package load

import (
	"context"
	"errors"
	"io"
	"math"
	"net"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"

	"repro/internal/castore"
	"repro/internal/serve"
)

// startService boots a real serve.Server over httptest and returns its
// base URL.
func startService(t *testing.T) string {
	t.Helper()
	store, err := castore.Open(t.TempDir(), 64)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{
		Store:      store,
		Workers:    4,
		SimWorkers: 1,
		QueueDepth: 64,
		JobTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv.URL
}

// TestRunEndToEnd drives a short open-loop schedule against a live
// service and checks the contract the CI gate relies on: every request
// completes, latency and throughput are non-zero, and the recorded
// cache hit rate matches the configured duplicate-spec fraction (hot
// requests share one content address, so N hot arrivals cost one
// compute; cold arrivals are all unique misses).
func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("drives ~1s of wall-clock traffic")
	}
	url := startService(t)

	const hotFraction = 0.5
	sched := Schedule{
		Phases: []Phase{
			{Name: "p0", RPS: 40, Seconds: 0.5},
			{Name: "p1", RPS: 40, Seconds: 0.5},
		},
		HotFraction: hotFraction,
		Jitter:      0.25,
		Seed:        1,
	}
	rep, err := Run(context.Background(), Options{
		Server:       url,
		Schedule:     sched,
		DrainTimeout: 30 * time.Second,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	o := rep.Overall
	want := sched.Requests()
	if o.Requests != want {
		t.Fatalf("%d requests recorded, schedule offers %d", o.Requests, want)
	}
	if o.Completed != want || o.Rejected != 0 || o.Errors != 0 {
		t.Fatalf("completed=%d rejected=%d errors=%d, want %d/0/0",
			o.Completed, o.Rejected, o.Errors, want)
	}
	if o.Latency.P50 <= 0 || o.Latency.P99 < o.Latency.P50 {
		t.Fatalf("latency quantiles %+v", o.Latency)
	}
	if o.AchievedRPS <= 0 {
		t.Fatal("zero achieved RPS")
	}

	// Hit-rate contract: the first hot request computes, the remaining
	// hot requests hit (or coalesce onto) it, every cold request
	// misses. Expected rate = (hot-1)/N; the 0.05 slack only covers
	// rounding, not coalescing, because coalesced lookups count as hits.
	hot := 0
	arrivals, _ := sched.Arrivals()
	for _, a := range arrivals {
		if a.Hot {
			hot++
		}
	}
	expected := float64(hot-1) / float64(want)
	if d := math.Abs(rep.Cache.HitRate - expected); d > 0.05 {
		t.Fatalf("hit rate %.3f, want %.3f±0.05 (hot=%d/%d; cache=%+v)",
			rep.Cache.HitRate, expected, hot, want, rep.Cache)
	}
	if got := rep.Cache.Hits + rep.Cache.Coalesced; got != uint64(hot-1) {
		t.Fatalf("hits+coalesced=%d, want %d", got, hot-1)
	}
	if rep.Cache.Misses != uint64(want-hot+1) {
		t.Fatalf("misses=%d, want %d", rep.Cache.Misses, want-hot+1)
	}
	if rep.Cache.SimsExecuted == 0 {
		t.Fatal("no simulations recorded")
	}

	// The fresh report must satisfy its own gate, including as its own
	// baseline — the exact record-then-check cycle CI runs.
	if err := Check(nil, rep, Thresholds{}); err != nil {
		t.Fatalf("fresh report fails the absolute gate: %v", err)
	}
	if err := Check(&rep, rep, Thresholds{}); err != nil {
		t.Fatalf("fresh report fails against itself: %v", err)
	}
	if err := Check(&rep, Degrade(rep, 50), Thresholds{}); err == nil {
		t.Fatal("gate passed a 50x-degraded copy of a live run")
	}

	if len(rep.Phases) != 2 {
		t.Fatalf("%d phase reports", len(rep.Phases))
	}
	if rep.Date == "" || rep.Go == "" || rep.CPUs == 0 {
		t.Fatalf("host stamp incomplete: %+v", rep)
	}
}

func TestWaitReady(t *testing.T) {
	url := startService(t)
	if err := WaitReady(context.Background(), url, 5*time.Second); err != nil {
		t.Fatalf("live server not ready: %v", err)
	}
	// A port nothing listens on must time out, not hang.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := WaitReady(ctx, "http://127.0.0.1:1", 500*time.Millisecond); err == nil {
		t.Fatal("WaitReady succeeded against a dead port")
	}
}

func TestRetryableConnErr(t *testing.T) {
	retryable := []error{
		syscall.ECONNREFUSED,
		syscall.ECONNRESET,
		&net.OpError{Op: "dial", Err: syscall.ECONNREFUSED},
		io.ErrUnexpectedEOF,
		io.EOF,
	}
	for _, err := range retryable {
		if !RetryableConnErr(err) {
			t.Errorf("%v not retryable", err)
		}
	}
	for _, err := range []error{nil, errors.New("boom"), context.Canceled} {
		if RetryableConnErr(err) {
			t.Errorf("%v wrongly retryable", err)
		}
	}
}
