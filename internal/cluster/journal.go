// The cluster event journal: a bounded ring of typed lifecycle
// events with monotonic sequence numbers. The coordinator appends on
// every membership/lease/task transition (and on worker-forwarded
// events like replica repairs), GET /v1/cluster/events?since=N pages
// through it, and the serve layer tails it into job SSE feeds so a
// client watching a job sees the causal story (lease expired →
// reissued → completed) instead of bare counter deltas.
package cluster

import (
	"sync"
	"time"
)

// EventKind is the type tag of a journal event.
type EventKind string

// Journal event kinds. Worker-originated kinds (replica-repair,
// version-skew) arrive via heartbeat piggyback; all others are
// observed by the coordinator itself.
const (
	EventWorkerJoined  EventKind = "worker-joined"
	EventWorkerLeft    EventKind = "worker-left"
	EventWorkerExpired EventKind = "worker-expired"
	EventTaskSubmitted EventKind = "task-submitted"
	EventLeaseGranted  EventKind = "lease-granted"
	EventLeaseExpired  EventKind = "lease-expired"
	EventLeaseReissued EventKind = "lease-reissued"
	EventTaskCompleted EventKind = "task-completed"
	EventTaskFailed    EventKind = "task-failed"
	EventReplicaRepair EventKind = "replica-repair"
	EventVersionSkew   EventKind = "version-skew"
)

// JournalEvent is one journal entry. Seq is assigned by the
// coordinator's journal (monotonic from 1); events forwarded by
// workers are re-sequenced on arrival, so Seq totally orders the
// journal regardless of origin.
type JournalEvent struct {
	Seq    int64     `json:"seq"`
	UnixMS int64     `json:"unix_ms"`
	Kind   EventKind `json:"kind"`
	Worker string    `json:"worker,omitempty"`
	Key    string    `json:"key,omitempty"`
	// TraceID correlates lease/task events with the submitting job's
	// trace (satellite: worker logs and journal share the id).
	TraceID string `json:"trace_id,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// Journal is a bounded, concurrency-safe event ring. It has its own
// lock and never calls out, so the coordinator may append while
// holding its state mutex.
type Journal struct {
	mu      sync.Mutex
	ring    []JournalEvent
	head    int // next write slot
	count   int
	next    int64 // next sequence number to assign
	dropped uint64
	now     func() time.Time
	waiters []chan struct{}
}

// NewJournal returns a journal retaining the last size events
// (minimum 16).
func NewJournal(size int) *Journal {
	if size < 16 {
		size = 16
	}
	return &Journal{ring: make([]JournalEvent, size), next: 1, now: time.Now}
}

// Append stamps the event with the next sequence number and the
// current time, stores it (evicting the oldest when full), and wakes
// any Since waiters. It returns the stamped event.
func (j *Journal) Append(ev JournalEvent) JournalEvent {
	j.mu.Lock()
	ev.Seq = j.next
	j.next++
	if ev.UnixMS == 0 {
		ev.UnixMS = j.now().UnixMilli()
	}
	if j.count == len(j.ring) {
		j.dropped++
	} else {
		j.count++
	}
	j.ring[j.head] = ev
	j.head = (j.head + 1) % len(j.ring)
	waiters := j.waiters
	j.waiters = nil
	j.mu.Unlock()
	for _, w := range waiters {
		close(w)
	}
	return ev
}

// Since returns up to max events with Seq > after, oldest first, and
// a channel that is closed when an event newer than the returned set
// may exist (for long-polling). max <= 0 means no limit.
func (j *Journal) Since(after int64, max int) ([]JournalEvent, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []JournalEvent
	start := j.head - j.count
	for i := 0; i < j.count; i++ {
		idx := (start + i + len(j.ring)) % len(j.ring)
		if j.ring[idx].Seq > after {
			out = append(out, j.ring[idx])
			if max > 0 && len(out) == max {
				break
			}
		}
	}
	wake := make(chan struct{})
	if len(out) > 0 {
		// Newer events may already exist past a max cutoff; either way
		// the caller should re-poll immediately after consuming.
		close(wake)
	} else {
		j.waiters = append(j.waiters, wake)
	}
	return out, wake
}

// NextSeq returns the sequence number the next event will receive.
func (j *Journal) NextSeq() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Dropped returns how many events have been evicted unread-or-not by
// ring wraparound.
func (j *Journal) Dropped() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// EventsResponse is the JSON shape of GET /v1/cluster/events.
type EventsResponse struct {
	Events []JournalEvent `json:"events"`
	// NextSeq is the since= cursor for the next poll.
	NextSeq int64 `json:"next_seq"`
	// Dropped counts events lost to ring eviction over the journal's
	// lifetime; a consumer seeing it grow between polls missed events.
	Dropped uint64 `json:"dropped_total"`
}
