// Cluster observability e2e: a coordinator-mode server with two real
// HTTP workers produces ONE merged span tree per job — coordinator
// lease spans parenting each executing worker's subtree — and the
// distributed run's artifacts are byte-identical to a standalone,
// untraced sweep of the same spec.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/castore"
	"repro/internal/cluster"
	"repro/internal/tracez"
)

// clusterSpec is a four-unit sweep (2 benchmarks x 2 techniques) —
// enough work that both workers lease at least one task.
const clusterSpec = `{
	"config": {"MeasureInstr": 60000, "WarmupInstr": 5000, "IntervalCycles": 20000, "Seed": 9},
	"benchmarks": [["gcc"], ["lbm"]],
	"techniques": ["esteem", "baseline"]
}`

// startClusterServer boots a coordinator-mode Server over a real HTTP
// listener. The listener starts before the coordinator exists (the
// advertised Self URL is only known after binding), so the handler is
// swapped in once assembly finishes.
func startClusterServer(t *testing.T, tracer *tracez.Tracer) (*Server, *cluster.Coordinator, string) {
	t.Helper()
	var handler atomic.Value // http.Handler
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h, ok := handler.Load().(http.Handler); ok {
			h.ServeHTTP(w, r)
			return
		}
		http.Error(w, "assembling", http.StatusServiceUnavailable)
	}))
	t.Cleanup(ts.Close)
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Self:   ts.URL,
		Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	store, err := castore.Open(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	shard := castore.NewSharded(store, ts.URL, coord.MemberURLs, 2, nil)
	s, err := New(Config{
		Store:      shard,
		Cluster:    coord,
		Workers:    2,
		JobTimeout: time.Minute,
		Tracer:     tracer,
		Node:       ts.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	handler.Store(s.Handler())
	return s, coord, ts.URL
}

// startClusterWorker boots one worker node with its own store, HTTP
// listener and tracer, returning its URL and a channel closed when Run
// exits.
func startClusterWorker(t *testing.T, ctx context.Context, coordURL string, seed uint64) (string, chan struct{}) {
	t.Helper()
	store, err := castore.Open(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	ws := httptest.NewServer(mux)
	t.Cleanup(ws.Close)
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Coordinator: coordURL,
		Self:        ws.URL,
		Local:       store,
		SimWorkers:  1,
		Tracer:      tracez.New(tracez.Config{Seed: seed}),
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Register(mux)
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	return ws.URL, done
}

func TestClusterTraceMergesAcrossNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster e2e in -short mode")
	}
	tracer := tracez.New(tracez.Config{Seed: 1})
	s, coord, coordURL := startClusterServer(t, tracer)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w1, done1 := startClusterWorker(t, ctx, coordURL, 101)
	w2, done2 := startClusterWorker(t, ctx, coordURL, 202)

	// Submit only once both workers are live, so both long-polls are
	// parked on the lease endpoint when the tasks land.
	deadline := time.Now().Add(10 * time.Second)
	for coord.Stats().WorkersLive < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("workers never joined: %+v", coord.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}

	v := submit(t, s, clusterSpec)
	if len(v.Units) != 4 {
		t.Fatalf("expected 4 units, got %d", len(v.Units))
	}
	if waitDone(t, s, v.ID).State != StateDone {
		t.Fatalf("cluster job failed: %+v", waitDone(t, s, v.ID))
	}

	// One merged tree: coordinator spans and worker-shipped spans under
	// a single root, well-formed, with the run phase accounted for.
	tr := do(t, s, "GET", "/v1/jobs/"+v.ID+"/trace", "")
	if tr.Code != http.StatusOK {
		t.Fatalf("trace: %d %s", tr.Code, tr.Body)
	}
	tree, err := tracez.ParseTree(tr.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("merged tree invalid: %v", err)
	}
	if tree.TraceID != v.TraceID {
		t.Fatalf("tree trace id %q, want %q", tree.TraceID, v.TraceID)
	}
	if cov := tree.Coverage(); cov < 0.9 {
		t.Fatalf("coverage %.3f, want >= 0.9", cov)
	}

	// Every worker subtree parents under a coordinator lease span, and
	// at least two distinct nodes executed work.
	var leases, workers int
	nodes := map[string]bool{}
	var walk func(n *tracez.Node, parent string)
	walk = func(n *tracez.Node, parent string) {
		switch n.Name {
		case "lease":
			leases++
		case "worker":
			workers++
			if parent != "lease" {
				t.Fatalf("worker span %s parents under %q, want lease", n.SpanID, parent)
			}
			for _, a := range n.Attrs {
				if a.Key == "node" {
					nodes[a.Value] = true
				}
			}
		}
		for _, c := range n.Children {
			walk(c, n.Name)
		}
	}
	walk(tree.Root, "")
	if leases != 4 {
		t.Fatalf("expected 4 lease spans, got %d", leases)
	}
	if workers != 4 {
		t.Fatalf("expected 4 worker spans, got %d", workers)
	}
	if !nodes[w1] || !nodes[w2] {
		t.Fatalf("worker spans name nodes %v, want both %s and %s", nodes, w1, w2)
	}

	// The Chrome export renders one process lane per node: the
	// coordinator plus each worker.
	ch := do(t, s, "GET", "/v1/jobs/"+v.ID+"/trace?format=chrome", "")
	if ch.Code != http.StatusOK {
		t.Fatalf("chrome trace: %d %s", ch.Code, ch.Body)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(ch.Body.Bytes(), &chrome); err != nil {
		t.Fatal(err)
	}
	laneNames := map[string]bool{}
	for _, e := range chrome.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			laneNames[e.Args["name"].(string)] = true
		}
	}
	for _, want := range []string{coordURL, w1, w2} {
		if !laneNames[want] {
			t.Fatalf("chrome export lanes %v missing %s", laneNames, want)
		}
	}

	// The journal told the job's SSE feed the causal story.
	ev := do(t, s, "GET", "/v1/jobs/"+v.ID+"/events", "")
	for _, want := range []string{`"cluster":"lease-granted"`, `"cluster":"task-completed"`} {
		if !bytes.Contains(ev.Body.Bytes(), []byte(want)) {
			t.Fatalf("SSE feed missing %s:\n%s", want, ev.Body)
		}
	}

	// Byte-identity: an untraced standalone sweep of the same spec
	// stores the same keys with the same bytes.
	plain := newTestServer(t, func(c *Config) {
		c.Tracer = tracez.New(tracez.Config{Seed: 5, SampleRatio: 1e-12})
	})
	pv := submit(t, plain, clusterSpec)
	if waitDone(t, plain, pv.ID).State != StateDone {
		t.Fatal("standalone job failed")
	}
	for i, u := range v.Units {
		if pv.Units[i].Key != u.Key {
			t.Fatalf("unit %d key drifted: cluster %s vs standalone %s", i, u.Key, pv.Units[i].Key)
		}
		a := do(t, s, "GET", "/v1/artifacts/"+u.Key, "")
		b := do(t, plain, "GET", "/v1/artifacts/"+u.Key, "")
		if a.Code != http.StatusOK || b.Code != http.StatusOK {
			t.Fatalf("artifact %s: cluster %d, standalone %d", u.Key, a.Code, b.Code)
		}
		if !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
			t.Fatalf("artifact %s differs between cluster and standalone runs", u.Key)
		}
	}

	cancel()
	<-done1
	<-done2
}
