package load

import (
	"math"
	"testing"

	"repro/internal/serve"
)

func TestHistogramQuantile(t *testing.T) {
	// 10 samples: 4 in (0, 0.1], 4 in (0.1, 1], 2 above 1 (+Inf).
	v := serve.HistogramView{
		Count:      10,
		SumSeconds: 5,
		Buckets: []serve.HistBucket{
			{LE: 0.1, Count: 4},
			{LE: 1, Count: 8},
		},
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.2, 0.05},  // rank 2 of 4 in the first bucket: half of 0.1
		{0.4, 0.1},   // rank 4: exactly the first bound
		{0.5, 0.325}, // rank 5: a quarter into (0.1, 1]
		{0.8, 1},     // rank 8: exactly the second bound
		{0.99, 1},    // in the +Inf bucket: clamps to the last bound
		{1, 1},
		{0, 0},
	}
	for _, c := range cases {
		if got := HistogramQuantile(v, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("q=%g: got %g, want %g", c.q, got, c.want)
		}
	}
	if got := HistogramQuantile(serve.HistogramView{}, 0.5); got != 0 {
		t.Errorf("empty histogram: got %g, want 0", got)
	}
	// A bucket with zero in-bucket samples must not divide by zero.
	flat := serve.HistogramView{Count: 2, Buckets: []serve.HistBucket{{LE: 0.1, Count: 2}, {LE: 1, Count: 2}}}
	if got := HistogramQuantile(flat, 1); got != 0.1 {
		t.Errorf("flat tail: got %g, want 0.1", got)
	}
}
