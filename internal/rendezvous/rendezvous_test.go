package rendezvous

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// keys returns deterministic pseudo-content-addresses for testing.
func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%064x", uint64(i)*0x9E3779B97F4A7C15+1)
	}
	return out
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://127.0.0.1:%d", 8344+i)
	}
	return out
}

// TestOwnersDeterministicAcrossPermutations: the ranking must not
// depend on the order the member list arrives in — every node derives
// its member set from join/heartbeat responses and those are not
// guaranteed to be ordered.
func TestOwnersDeterministicAcrossPermutations(t *testing.T) {
	ms := members(7)
	rng := rand.New(rand.NewSource(42))
	for _, key := range keys(50) {
		want := Owners(key, ms, 3)
		for p := 0; p < 20; p++ {
			shuffled := append([]string(nil), ms...)
			rng.Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			got := Owners(key, shuffled, 3)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("key %s: owners depend on member order:\n perm %v -> %v\n want %v", key[:12], shuffled, got, want)
			}
		}
	}
}

// TestOwnersReplicaDistinctness: the top-n owners are n distinct
// members, even with duplicate entries in the input.
func TestOwnersReplicaDistinctness(t *testing.T) {
	ms := members(5)
	dup := append(append([]string(nil), ms...), ms...) // every member twice
	for _, key := range keys(100) {
		for n := 1; n <= 5; n++ {
			owners := Owners(key, dup, n)
			if len(owners) != n {
				t.Fatalf("key %s n=%d: got %d owners", key[:12], n, len(owners))
			}
			seen := map[string]bool{}
			for _, o := range owners {
				if seen[o] {
					t.Fatalf("key %s n=%d: duplicate owner %s", key[:12], n, o)
				}
				seen[o] = true
			}
		}
	}
	if got := Owners(keys(1)[0], ms, 10); len(got) != 5 {
		t.Fatalf("n beyond member count: got %d owners, want 5", len(got))
	}
	if got := Owners(keys(1)[0], nil, 2); got != nil {
		t.Fatalf("no members: got %v, want nil", got)
	}
}

// TestOwnersMinimalMovementOnLeave: removing one member must only
// reassign keys that member owned. For every key whose owner set did
// not include the removed member, the owner list is unchanged; for
// keys that did include it, the surviving owners keep their relative
// order (so at least one replica of every key survives a single
// departure when the replication factor is >= 2).
func TestOwnersMinimalMovementOnLeave(t *testing.T) {
	ms := members(6)
	const rf = 2
	ks := keys(400)
	before := make(map[string][]string, len(ks))
	for _, k := range ks {
		before[k] = Owners(k, ms, rf)
	}
	victim := ms[3]
	var survivors []string
	for _, m := range ms {
		if m != victim {
			survivors = append(survivors, m)
		}
	}
	moved := 0
	for _, k := range ks {
		after := Owners(k, survivors, rf)
		had := false
		var kept []string
		for _, o := range before[k] {
			if o == victim {
				had = true
			} else {
				kept = append(kept, o)
			}
		}
		if !had {
			if !reflect.DeepEqual(after, before[k]) {
				t.Fatalf("key %s moved without owning the removed member: %v -> %v", k[:12], before[k], after)
			}
			continue
		}
		moved++
		// Surviving owners keep their positions relative to each other;
		// only the vacated slot is filled by the next-ranked member.
		ai := 0
		for _, o := range kept {
			found := false
			for ; ai < len(after); ai++ {
				if after[ai] == o {
					found = true
					ai++
					break
				}
			}
			if !found {
				t.Fatalf("key %s: surviving owner %s lost or reordered: %v -> %v", k[:12], o, before[k], after)
			}
		}
	}
	// Sanity: the victim owned roughly rf/len(ms) of all key slots, so
	// some keys moved and most did not.
	if moved == 0 || moved == len(ks) {
		t.Fatalf("implausible movement count %d/%d", moved, len(ks))
	}
}

// TestOwnersMinimalMovementOnJoin: adding a member only steals the
// keys it now wins; every key it does not win keeps its exact owners.
func TestOwnersMinimalMovementOnJoin(t *testing.T) {
	ms := members(5)
	joined := append(append([]string(nil), ms...), "http://127.0.0.1:9999")
	const rf = 2
	moved := 0
	for _, k := range keys(400) {
		before := Owners(k, ms, rf)
		after := Owners(k, joined, rf)
		wins := false
		for _, o := range after {
			if o == "http://127.0.0.1:9999" {
				wins = true
			}
		}
		if !wins {
			if !reflect.DeepEqual(after, before) {
				t.Fatalf("key %s moved although the joiner does not own it: %v -> %v", k[:12], before, after)
			}
		} else {
			moved++
		}
	}
	// Expected share: the joiner wins ~rf/6 of key slots (~133 of 400);
	// allow a wide band, fail only on gross skew.
	if moved < 40 || moved > 260 {
		t.Fatalf("joiner stole %d/400 keys, far from the expected ~%d", moved, 400*rf/6)
	}
}

// TestOwnersBalance: primary ownership spreads over members without
// gross skew (HRW with a mixing hash should be near-uniform).
func TestOwnersBalance(t *testing.T) {
	ms := members(4)
	counts := map[string]int{}
	const n = 2000
	for _, k := range keys(n) {
		counts[Owner(k, ms)]++
	}
	for _, m := range ms {
		c := counts[m]
		if c < n/8 || c > n/2 {
			t.Fatalf("member %s owns %d/%d keys — badly skewed distribution %v", m, c, n, counts)
		}
	}
}

// TestOwnerStability pins a few rankings so an accidental change to
// the score function (which would silently reshuffle every cluster's
// placement) fails loudly.
func TestOwnerStability(t *testing.T) {
	ms := members(3)
	got := map[string]int{}
	for _, k := range keys(90) {
		got[Owner(k, ms)]++
	}
	var dist []int
	for _, m := range ms {
		dist = append(dist, got[m])
	}
	sort.Ints(dist)
	if dist[0] == 0 {
		t.Fatalf("a member owns zero of 90 keys: %v", got)
	}
}
