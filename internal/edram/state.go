package edram

import "repro/internal/ckpt"

// AppendState serialises the engine's schedule position, per-bank
// busy horizons and refresh counters. Policy state is serialised by
// the policy itself (the engine does not know its layout).
func (e *Engine) AppendState(w *ckpt.Writer) {
	w.Section("EDRM")
	w.U64(e.nextEvent)
	w.Int(e.eventIdx)
	w.U64Slice(e.busyUntil)
	w.U64(e.totalRefreshed)
	w.U64(e.intervalRefreshed)
	w.U64(e.totalBusyCycles)
	w.U64(e.intervalBusyCycles)
	w.U64(e.events)
}

// RestoreState loads state written by AppendState into an engine
// built from identical Params over the same policy type.
func (e *Engine) RestoreState(r *ckpt.Reader) error {
	r.Section("EDRM")
	e.nextEvent = r.U64()
	e.eventIdx = r.Int()
	r.U64SliceInto(e.busyUntil)
	e.totalRefreshed = r.U64()
	e.intervalRefreshed = r.U64()
	e.totalBusyCycles = r.U64()
	e.intervalBusyCycles = r.U64()
	e.events = r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if ev := e.policy.EventsPerWindow(); e.eventIdx < 0 || e.eventIdx >= ev {
		r.Failf("edram: restored event index %d out of [0,%d)", e.eventIdx, ev)
	}
	if e.intervalRefreshed > e.totalRefreshed || e.intervalBusyCycles > e.totalBusyCycles {
		r.Failf("edram: restored interval counters exceed totals")
	}
	return r.Err()
}
