# lib.sh — shared helpers for the smoke scripts. POSIX sh; source it:
#
#   . "$(dirname "$0")/lib.sh"
#
# Replaces the per-script sleep-and-hope polling loops with bounded
# waits that treat connection-refused during server start as the
# normal, retryable condition it is.

# wait_file FILE [TIMEOUT_S]
# Waits (up to TIMEOUT_S, default 10) for FILE to exist and be
# non-empty. Returns 1 on timeout.
wait_file() {
    _wf_file="$1"
    _wf_deadline=$(( $(date +%s) + ${2:-10} ))
    while [ ! -s "$_wf_file" ]; do
        if [ "$(date +%s)" -ge "$_wf_deadline" ]; then
            echo "wait_file: $_wf_file still missing after ${2:-10}s" >&2
            return 1
        fi
        sleep 0.05
    done
}

# wait_healthz BASE_URL [TIMEOUT_S]
# Polls BASE_URL/healthz (up to TIMEOUT_S, default 15) until it
# answers 200, with doubling backoff from 50ms. Connection refused —
# the daemon has the socket but not the handler yet, or the process
# is still booting — is retryable, not fatal. Returns 1 on timeout.
wait_healthz() {
    _wh_url="$1/healthz"
    _wh_deadline=$(( $(date +%s) + ${2:-15} ))
    _wh_backoff="0.05"
    while ! curl -sf -m 2 "$_wh_url" >/dev/null 2>&1; do
        if [ "$(date +%s)" -ge "$_wh_deadline" ]; then
            echo "wait_healthz: $_wh_url not healthy after ${2:-15}s" >&2
            return 1
        fi
        sleep "$_wh_backoff"
        case "$_wh_backoff" in
        0.05) _wh_backoff="0.1" ;;
        0.1) _wh_backoff="0.2" ;;
        0.2) _wh_backoff="0.4" ;;
        *) _wh_backoff="0.8" ;;
        esac
    done
}
