//go:build verify

package sim

import (
	"fmt"
	"math/bits"
)

// invariantsEnabled: this build carries the `verify` tag, so the
// simulator self-checks its core data structures while it runs. The
// checks panic on violation — they guard conditions no workload should
// ever produce, and a panic pinpoints the first broken step.
const invariantsEnabled = true

// invariantState holds cross-step bookkeeping for the checks.
type invariantState struct {
	// lastFrontier enforces that simulated wall time never moves
	// backwards.
	lastFrontier uint64
	// seen is scratch for the heap permutation check, sized lazily.
	seen []bool
}

// checkStepInvariants runs after every core step (cheap, O(cores)):
// the scheduler heap must remain a permutation of the core indices
// with the min-heap property intact, and the frontier must be
// monotone.
func (s *Simulator) checkStepInvariants() {
	n := len(s.order)
	if s.inv.seen == nil {
		s.inv.seen = make([]bool, n)
	}
	seen := s.inv.seen
	for i := range seen {
		seen[i] = false
	}
	for _, idx := range s.order {
		if int(idx) < 0 || int(idx) >= n {
			panic(fmt.Sprintf("sim invariant: heap entry %d out of range [0,%d)", idx, n))
		}
		if seen[idx] {
			panic(fmt.Sprintf("sim invariant: core %d appears twice in scheduler heap", idx))
		}
		seen[idx] = true
	}
	for i := range s.order {
		for _, child := range []int{2*i + 1, 2*i + 2} {
			if child < n && s.coreLess(s.order[child], s.order[i]) {
				panic(fmt.Sprintf("sim invariant: heap property violated at %d (child %d)", i, child))
			}
		}
	}
	f := s.frontier()
	if f < s.inv.lastFrontier {
		panic(fmt.Sprintf("sim invariant: frontier moved backwards %d -> %d", s.inv.lastFrontier, f))
	}
	s.inv.lastFrontier = f
}

// checkBoundaryInvariants runs at interval boundaries (expensive, full
// cache scans): the L2's incremental occupancy accounting must agree
// with a from-scratch recount, disabled follower ways must hold no
// valid lines, and allocate-on-miss bookkeeping must balance.
func (s *Simulator) checkBoundaryInvariants(frontier uint64) {
	c := s.l2
	p := c.Params()
	validByBank := make([]int, p.Banks)
	validTotal := 0
	assocMask := uint64(1)<<uint(p.Assoc) - 1
	for set := 0; set < c.NumSets(); set++ {
		snap := c.SnapshotSet(set)
		ways := p.Assoc
		if !c.IsLeader(set) {
			ways = c.ActiveWays(c.ModuleOf(set))
		}
		// Struct-of-arrays representation checks: the valid/dirty
		// bitset words must stay inside the associativity, a dirty bit
		// requires its valid bit, the bitset popcount must agree with a
		// per-line recount, and the recency stack must remain a
		// permutation of the ways.
		valid, dirty := c.SetBits(set)
		if valid&^assocMask != 0 || dirty&^valid != 0 {
			panic(fmt.Sprintf("sim invariant: set %d bitsets corrupt (valid %#x dirty %#x)", set, valid, dirty))
		}
		perLine := 0
		var seenWays uint64
		for w, ln := range snap.Lines {
			if snap.Order[w] < 0 || snap.Order[w] >= p.Assoc {
				panic(fmt.Sprintf("sim invariant: set %d recency entry %d out of range", set, snap.Order[w]))
			}
			seenWays |= 1 << uint(snap.Order[w])
			if !ln.Valid {
				continue
			}
			perLine++
			if w >= ways {
				panic(fmt.Sprintf("sim invariant: set %d way %d valid but only %d ways active", set, w, ways))
			}
			validByBank[c.BankOf(set)]++
			validTotal++
		}
		if seenWays != assocMask {
			panic(fmt.Sprintf("sim invariant: set %d recency stack is not a permutation: %v", set, snap.Order))
		}
		if pc := bits.OnesCount64(valid); pc != perLine {
			panic(fmt.Sprintf("sim invariant: set %d valid popcount %d, per-line recount %d", set, pc, perLine))
		}
	}
	for b := 0; b < p.Banks; b++ {
		if got := c.ValidByBank(b); got != validByBank[b] {
			panic(fmt.Sprintf("sim invariant: bank %d incremental valid count %d, recount %d", b, got, validByBank[b]))
		}
	}
	if got := c.ValidLines(); got != validTotal {
		panic(fmt.Sprintf("sim invariant: incremental valid total %d, recount %d", got, validTotal))
	}
	// Allocate-on-miss: every L2 miss fills exactly one frame.
	if tc := c.TotalCounters(); tc.Fills != tc.Misses {
		panic(fmt.Sprintf("sim invariant: L2 fills %d != misses %d", tc.Fills, tc.Misses))
	}
	if frontier < s.lastBoundary {
		panic(fmt.Sprintf("sim invariant: boundary at %d before previous boundary %d", frontier, s.lastBoundary))
	}
}
