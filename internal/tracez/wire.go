// Span shipping: the JSON wire form workers use to send completed
// spans to the coordinator, and the tracer operations behind it —
// Take drains one trace's spans out of a worker's ring (so a batch is
// shipped exactly once) and Inject records remote spans into the
// coordinator's ring (so GET /v1/jobs/{id}/trace merges coordinator
// and worker spans into one tree).
//
// Times travel as Unix nanoseconds. Reconstructed time.Times carry no
// monotonic reading, which is fine for exports (they subtract into
// wall-clock differences); cross-host wall-clock skew beyond
// Validate's slack is the deployment's problem, not the format's —
// see DESIGN.md §9.
package tracez

import (
	"encoding/hex"
	"fmt"
	"time"
)

// ParseSpanID decodes a 16-hex-digit span ID.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 16 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil || id.IsZero() {
		return SpanID{}, false
	}
	return id, true
}

// WireSpan is one completed span in transit between nodes: hex IDs,
// Unix-nanosecond times.
type WireSpan struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	Parent  string `json:"parent_id,omitempty"`
	Name    string `json:"name"`
	StartNS int64  `json:"start_unix_ns"`
	EndNS   int64  `json:"end_unix_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Wire converts a SpanData to its wire form.
func (d SpanData) Wire() WireSpan {
	w := WireSpan{
		TraceID: d.TraceID.String(),
		SpanID:  d.SpanID.String(),
		Name:    d.Name,
		StartNS: d.Start.UnixNano(),
		EndNS:   d.End.UnixNano(),
		Attrs:   d.Attrs,
	}
	if !d.Parent.IsZero() {
		w.Parent = d.Parent.String()
	}
	return w
}

// Data converts a wire span back to SpanData, validating its IDs.
func (w WireSpan) Data() (SpanData, error) {
	tid, ok := ParseTraceID(w.TraceID)
	if !ok {
		return SpanData{}, fmt.Errorf("tracez: wire span %q: bad trace id %q", w.Name, w.TraceID)
	}
	sid, ok := ParseSpanID(w.SpanID)
	if !ok {
		return SpanData{}, fmt.Errorf("tracez: wire span %q: bad span id %q", w.Name, w.SpanID)
	}
	d := SpanData{
		TraceID: tid,
		SpanID:  sid,
		Name:    w.Name,
		Start:   time.Unix(0, w.StartNS),
		End:     time.Unix(0, w.EndNS),
		Attrs:   w.Attrs,
	}
	if w.Parent != "" {
		pid, ok := ParseSpanID(w.Parent)
		if !ok {
			return SpanData{}, fmt.Errorf("tracez: wire span %q: bad parent id %q", w.Name, w.Parent)
		}
		d.Parent = pid
	}
	return d, nil
}

// Inject records a remote span into the ring, as if a local span had
// ended. Injected spans bypass sampling (the shipping worker already
// made — and inherited — the head decision).
func (t *Tracer) Inject(d SpanData) error {
	if d.TraceID.IsZero() || d.SpanID.IsZero() {
		return fmt.Errorf("tracez: injecting span %q: zero id", d.Name)
	}
	if d.End.Before(d.Start) {
		return fmt.Errorf("tracez: injecting span %q: ends before it starts", d.Name)
	}
	t.record(d)
	return nil
}

// Take removes and returns the completed spans of one trace, oldest
// first. Workers ship a task's spans with Take so a later flush of
// the same trace cannot re-send them (duplicate span IDs would break
// BuildTree on the coordinator).
func (t *Tracer) Take(tid TraceID) []SpanData {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out, keep []SpanData
	start := t.head - t.count
	for i := 0; i < t.count; i++ {
		idx := (start + i + len(t.ring)) % len(t.ring)
		if t.ring[idx].TraceID == tid {
			out = append(out, t.ring[idx])
		} else {
			keep = append(keep, t.ring[idx])
		}
	}
	if len(out) == 0 {
		return nil
	}
	n := copy(t.ring, keep)
	for i := n; i < len(t.ring); i++ {
		t.ring[i] = SpanData{}
	}
	t.count = n
	t.head = n % len(t.ring)
	return out
}
