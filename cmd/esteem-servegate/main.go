// Command esteem-servegate records and gates the service-level
// benchmark trajectory (BENCH_serve.json), the esteem-benchgate
// sibling for esteem-load reports: where benchgate pins simulator
// ns/op, servegate pins requests per second, p99 latency and cache
// hit rate under sustained load.
//
// Modes (exactly one of -record, -check, -degrade):
//
//	esteem-load -out report.json
//	esteem-servegate -record BENCH_serve.json -in report.json  # append a dated entry
//	esteem-servegate -check  BENCH_serve.json -in report.json  # gate against the latest entry
//	esteem-servegate -degrade 20 -in report.json               # emit a degraded copy (gate self-test)
//
// Check mode applies absolute sanity (non-zero p50/p99 and
// throughput, bounded error rate, cache hit rate within tolerance of
// the configured hot fraction) plus loose relative bounds against the
// latest recorded entry — service latency on shared CI runners is far
// noisier than ns/op microbenchmarks, so the defaults reject
// order-of-magnitude regressions, not percent-level drift. Degrade
// mode synthesizes exactly such a regression so the load-smoke lane
// can prove the gate is live.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/load"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "esteem-servegate:", err)
		os.Exit(1)
	}
}

func run() error {
	record := flag.String("record", "", "append the -in report as a dated entry to this trajectory file")
	check := flag.String("check", "", "gate the -in report against the latest entry of this trajectory file")
	degrade := flag.Float64("degrade", 0, "emit the -in report with latency x N and throughput / N to stdout (gate self-test)")
	in := flag.String("in", "-", "report JSON produced by esteem-load (- = stdin)")
	maxP99 := flag.Float64("max-p99-factor", 0, "fail -check when p99 exceeds this factor x baseline (0 = default 10)")
	minTput := flag.Float64("min-throughput-factor", 0, "fail -check when achieved RPS falls below this factor x baseline (0 = default 0.25)")
	maxErr := flag.Float64("max-error-rate", 0, "fail -check when errors/requests exceeds this (0 = default 0.01)")
	hitTol := flag.Float64("hit-rate-tolerance", 0, "fail -check when |hit rate - hot fraction| exceeds this (0 = default 0.15, negative disables)")
	flag.Parse()

	modes := 0
	for _, on := range []bool{*record != "", *check != "", *degrade != 0} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("exactly one of -record, -check or -degrade is required")
	}

	rep, err := readReport(*in)
	if err != nil {
		return err
	}

	switch {
	case *degrade != 0:
		if *degrade <= 1 {
			return fmt.Errorf("-degrade wants a factor > 1, got %g", *degrade)
		}
		out, err := json.MarshalIndent(load.Degrade(rep, *degrade), "", "  ")
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(append(out, '\n'))
		return err

	case *record != "":
		tr, err := load.LoadTrajectory(*record)
		if err != nil {
			return err
		}
		tr.Entries = append(tr.Entries, rep)
		if err := load.SaveTrajectory(*record, tr); err != nil {
			return err
		}
		o := rep.Overall
		fmt.Printf("recorded: %d requests, %.1f rps achieved, p50 %.2f ms, p99 %.2f ms, hit rate %.1f%%\n",
			o.Requests, o.AchievedRPS, o.Latency.P50, o.Latency.P99, rep.Cache.HitRate*100)
		fmt.Printf("appended entry %d to %s\n", len(tr.Entries), *record)
		return nil

	default:
		tr, err := load.LoadTrajectory(*check)
		if err != nil {
			return err
		}
		base := tr.Latest()
		if base == nil {
			return fmt.Errorf("%s holds no baseline entries; run `make load-record` first", *check)
		}
		th := load.Thresholds{
			MaxP99Factor:        *maxP99,
			MinThroughputFactor: *minTput,
			MaxErrorRate:        *maxErr,
			HitRateTolerance:    *hitTol,
		}
		if err := load.Check(base, rep, th); err != nil {
			return fmt.Errorf("%w\n  baseline (%s): p99 %.2f ms, %.1f rps\n  this run: p99 %.2f ms, %.1f rps",
				err, base.Date, base.Overall.Latency.P99, base.Overall.AchievedRPS,
				rep.Overall.Latency.P99, rep.Overall.AchievedRPS)
		}
		o := rep.Overall
		fmt.Printf("ok   %d requests, %d completed, %d rejected (429), %d errors\n",
			o.Requests, o.Completed, o.Rejected, o.Errors)
		fmt.Printf("ok   p50 %.2f ms, p99 %.2f ms, p999 %.2f ms (baseline p99 %.2f ms)\n",
			o.Latency.P50, o.Latency.P99, o.Latency.P999, base.Overall.Latency.P99)
		fmt.Printf("ok   %.1f rps achieved (baseline %.1f), cache hit rate %.1f%% (hot fraction %.0f%%)\n",
			o.AchievedRPS, base.Overall.AchievedRPS, rep.Cache.HitRate*100, rep.HotFraction*100)
		fmt.Println("service-level gate passed")
		return nil
	}
}

// readReport decodes an esteem-load report from a file or stdin.
func readReport(path string) (load.Report, error) {
	var rep load.Report
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
