package trace

import (
	"testing"
	"testing/quick"
)

func TestAllProfilesValid(t *testing.T) {
	ps := Profiles()
	if len(ps) != 34 {
		t.Fatalf("profile count = %d, want 34 (29 SPEC + 5 HPC)", len(ps))
	}
	seenName := map[string]bool{}
	seenAc := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
		if seenName[p.Name] {
			t.Errorf("duplicate name %s", p.Name)
		}
		if seenAc[p.Acronym] {
			t.Errorf("duplicate acronym %s", p.Acronym)
		}
		seenName[p.Name] = true
		seenAc[p.Acronym] = true
	}
}

func TestDualCoreWorkloads(t *testing.T) {
	mixes := DualCoreWorkloads()
	if len(mixes) != 17 {
		t.Fatalf("mix count = %d, want 17", len(mixes))
	}
	// Each benchmark is used only once across the 17 mixes (paper:
	// "such that each benchmark is used only once").
	used := map[string]bool{}
	for _, m := range mixes {
		for _, name := range m {
			if _, ok := ProfileByName(name); !ok {
				t.Errorf("mix references unknown benchmark %q", name)
			}
			if used[name] {
				t.Errorf("benchmark %q used in two mixes", name)
			}
			used[name] = true
		}
	}
	if len(used) != 34 {
		t.Errorf("mixes cover %d benchmarks, want all 34", len(used))
	}
}

func TestMixAcronym(t *testing.T) {
	if got := MixAcronym("gobmk", "nekbone"); got != "GkNe" {
		t.Errorf("MixAcronym = %q, want GkNe", got)
	}
	if got := MixAcronym("gemsFDTD", "dealII"); got != "GmDl" {
		t.Errorf("MixAcronym = %q, want GmDl", got)
	}
}

func TestLookup(t *testing.T) {
	p, ok := ProfileByName("gamess")
	if !ok || p.Acronym != "Ga" {
		t.Fatal("gamess lookup failed")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Fatal("bogus name found")
	}
	p, ok = ProfileByAcronym("Lq")
	if !ok || p.Name != "libquantum" {
		t.Fatal("acronym lookup failed")
	}
	if _, ok := ProfileByAcronym("ZZ"); ok {
		t.Fatal("bogus acronym found")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p, _ := ProfileByName("gcc")
	a := MustNewGenerator(p, 42)
	b := MustNewGenerator(p, 42)
	for i := 0; i < 10000; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("streams diverged at ref %d: %+v vs %+v", i, ra, rb)
		}
	}
	// A different seed gives a different stream.
	c := MustNewGenerator(p, 43)
	diff := 0
	d := MustNewGenerator(p, 42)
	for i := 0; i < 1000; i++ {
		if c.Next() != d.Next() {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds gave identical streams")
	}
}

func TestGeneratorSeedsDifferAcrossBenchmarks(t *testing.T) {
	pa, _ := ProfileByName("gamess")
	pb, _ := ProfileByName("povray")
	// Same seed, different benchmark → different stream (name is
	// hashed into the seed).
	a := MustNewGenerator(pa, 7)
	b := MustNewGenerator(pb, 7)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next().Addr == b.Next().Addr {
			same++
		}
	}
	if same > 900 {
		t.Fatalf("streams nearly identical across benchmarks: %d/1000", same)
	}
}

func TestHotRegionBounded(t *testing.T) {
	p, _ := ProfileByName("gamess") // 20 KB hot set, no stream/scan
	g := MustNewGenerator(p, 1)
	for i := 0; i < 20000; i++ {
		r := g.Next()
		switch r.Kind {
		case KindHot:
			if r.Addr >= 20*1024 {
				t.Fatalf("gamess hot address %#x outside its 20 KB region", r.Addr)
			}
		case KindLocal:
			if r.Addr < localBase || r.Addr >= localBase+8*1024 {
				t.Fatalf("local address %#x outside the 8 KB local region", r.Addr)
			}
		default:
			t.Fatalf("gamess produced kind %d", r.Kind)
		}
	}
}

func TestStreamingAdvances(t *testing.T) {
	p, _ := ProfileByName("libquantum") // 90% streaming
	g := MustNewGenerator(p, 1)
	distinct := map[uint64]bool{}
	streamRefs := 0
	for i := 0; i < 50000; i++ {
		r := g.Next()
		if r.Addr >= streamBase {
			streamRefs++
			distinct[r.Addr] = true
		}
	}
	// StreamFrac 0.85 dilated by hot bursts (BurstRefs=2) gives an
	// effective stream share of ~0.74.
	if streamRefs < 34000 {
		t.Fatalf("libquantum produced %d stream refs of 50000, want ~37000", streamRefs)
	}
	// Streaming must not repeat addresses within a short window.
	if len(distinct) != streamRefs {
		t.Fatalf("stream repeated addresses: %d distinct of %d", len(distinct), streamRefs)
	}
}

func TestScanLoopsCycle(t *testing.T) {
	p, _ := ProfileByName("omnetpp")
	g := MustNewGenerator(p, 1)
	scanRefs := map[int]int{} // loop index → count
	for i := 0; i < 100000; i++ {
		r := g.Next()
		if r.Addr >= scanBase && r.Addr < streamBase {
			scanRefs[int((r.Addr-scanBase)>>32)]++
		}
	}
	if len(scanRefs) != 4 {
		t.Fatalf("expected 4 scan loops, saw %d", len(scanRefs))
	}
	// Round-robin: loop counts within 1 of each other.
	var minC, maxC int
	first := true
	for _, c := range scanRefs {
		if first {
			minC, maxC = c, c
			first = false
		}
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC-minC > 1 {
		t.Fatalf("scan loops unbalanced: min %d max %d", minC, maxC)
	}
}

func TestWriteFraction(t *testing.T) {
	p, _ := ProfileByName("lbm") // 45% writes
	g := MustNewGenerator(p, 3)
	writes := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.42 || frac > 0.48 {
		t.Fatalf("lbm write fraction = %v, want ~0.45", frac)
	}
}

func TestGapMatchesMemOpFrac(t *testing.T) {
	p, _ := ProfileByName("gobmk") // MemOpFrac 0.30
	g := MustNewGenerator(p, 5)
	var totalInstr, refs float64
	for i := 0; i < 100000; i++ {
		r := g.Next()
		totalInstr += float64(r.Gap) + 1
		refs++
	}
	frac := refs / totalInstr
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("memory-op fraction = %v, want ~0.30", frac)
	}
}

func TestPhasesSwitch(t *testing.T) {
	p, _ := ProfileByName("h264ref")
	g := MustNewGenerator(p, 1)
	phases := map[int]bool{}
	// Run long enough to cycle all 4 phases (400k refs each).
	for i := 0; i < 1_700_000; i++ {
		g.Next()
		phases[g.Phase()] = true
	}
	if len(phases) != 4 {
		t.Fatalf("saw %d phases, want 4", len(phases))
	}
}

func TestPhaseChangesFootprint(t *testing.T) {
	p := Profile{
		Name: "phasy", Acronym: "Ph", MemOpFrac: 0.5, WriteFrac: 0,
		HotKB: 64, ZipfS: 0.2, LocalFrac: -1,
		PhaseLenRefs: 10000, PhaseHotKB: []int{64, 4096},
	}
	g := MustNewGenerator(p, 1)
	maxPhase0 := uint64(0)
	for i := 0; i < 10000; i++ {
		if a := g.Next().Addr; a > maxPhase0 {
			maxPhase0 = a
		}
	}
	if maxPhase0 >= 64*1024 {
		t.Fatalf("phase 0 exceeded 64 KB: %#x", maxPhase0)
	}
	maxPhase1 := uint64(0)
	for i := 0; i < 10000; i++ {
		if a := g.Next().Addr; a > maxPhase1 {
			maxPhase1 = a
		}
	}
	if maxPhase1 <= 64*1024 {
		t.Fatalf("phase 1 did not widen the footprint: max %#x", maxPhase1)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	base := Profile{Name: "x", MemOpFrac: 0.3, HotKB: 64}
	cases := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.MemOpFrac = 0 },
		func(p *Profile) { p.MemOpFrac = 1.5 },
		func(p *Profile) { p.WriteFrac = -0.1 },
		func(p *Profile) { p.HotKB = 0 },
		func(p *Profile) { p.StreamFrac = 0.7; p.ScanFrac = 0.5 },
		func(p *Profile) { p.ScanFrac = 0.3 }, // no loops
		func(p *Profile) { p.ScanFrac = 0.3; p.ScanLoopKB = []int{0} },
		func(p *Profile) { p.PhaseLenRefs = 100 }, // no phase sizes
		func(p *Profile) { p.PhaseLenRefs = 100; p.PhaseHotKB = []int{-1} },
	}
	for i, mutate := range cases {
		p := base
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: bad profile accepted", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("base profile rejected: %v", err)
	}
}

func TestNewGeneratorRejectsInvalid(t *testing.T) {
	if _, err := NewGenerator(Profile{}, 1); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

// Property: addresses are always word-aligned (8-byte stride).
func TestAddressesWordAligned(t *testing.T) {
	err := quick.Check(func(seed uint64, which uint8) bool {
		ps := Profiles()
		p := ps[int(which)%len(ps)]
		g := MustNewGenerator(p, seed)
		for i := 0; i < 200; i++ {
			if g.Next().Addr%strideBytes != 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: a reference's Kind matches the address region it falls
// in.
func TestKindMatchesRegion(t *testing.T) {
	p, _ := ProfileByName("omnetpp") // hot + scan + pointer
	g := MustNewGenerator(p, 9)
	for i := 0; i < 50000; i++ {
		r := g.Next()
		switch {
		case r.Addr >= pointerBase:
			if r.Kind != KindPointer {
				t.Fatalf("pointer-region ref tagged %d", r.Kind)
			}
		case r.Addr >= streamBase:
			if r.Kind != KindStream {
				t.Fatalf("stream-region ref tagged %d", r.Kind)
			}
		case r.Addr >= scanBase:
			if r.Kind != KindScan {
				t.Fatalf("scan-region ref tagged %d", r.Kind)
			}
		case r.Addr >= localBase:
			if r.Kind != KindLocal {
				t.Fatalf("local-region ref tagged %d", r.Kind)
			}
		default:
			if r.Kind != KindHot {
				t.Fatalf("hot-region ref tagged %d", r.Kind)
			}
		}
	}
}

func TestBurstsStayInLine(t *testing.T) {
	p, _ := ProfileByName("milc") // BurstRefs 8
	g := MustNewGenerator(p, 2)
	var lastLine uint64 = ^uint64(0)
	burstLen := 0
	maxBurst := 0
	for i := 0; i < 100000; i++ {
		r := g.Next()
		if r.Kind != KindHot {
			lastLine = ^uint64(0)
			continue
		}
		line := r.Addr / 64
		if line == lastLine {
			burstLen++
			if burstLen > maxBurst {
				maxBurst = burstLen
			}
		} else {
			burstLen = 0
		}
		lastLine = line
	}
	if maxBurst < 4 {
		t.Fatalf("milc (BurstRefs=8) max same-line run = %d, want bursts", maxBurst)
	}
}

func TestEffectiveMLP(t *testing.T) {
	if (Profile{}).EffectiveMLP() != 1 {
		t.Fatal("zero MLP should default to 1")
	}
	if (Profile{MLP: 6}).EffectiveMLP() != 6 {
		t.Fatal("explicit MLP not honoured")
	}
	if (Profile{MLP: 0.5}).EffectiveMLP() != 1 {
		t.Fatal("sub-1 MLP should clamp to 1")
	}
}

func TestBoundedStreamWraps(t *testing.T) {
	p := Profile{
		Name: "wrapper", MemOpFrac: 0.5, HotKB: 16, ZipfS: 0.5,
		StreamFrac: 1.0, StreamKB: 1, // 1 KB stream region: wraps fast
	}
	g := MustNewGenerator(p, 1)
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		seen[g.Next().Addr]++
	}
	if len(seen) != 128 { // 1 KB / 8 B stride
		t.Fatalf("bounded stream visited %d addresses, want 128", len(seen))
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	p, _ := ProfileByName("sphinx")
	g := MustNewGenerator(p, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func TestQuadCoreWorkloads(t *testing.T) {
	mixes := QuadCoreWorkloads()
	if len(mixes) != 8 {
		t.Fatalf("quad mixes = %d, want 8", len(mixes))
	}
	used := map[string]bool{}
	for _, m := range mixes {
		for _, name := range m {
			if _, ok := ProfileByName(name); !ok {
				t.Errorf("quad mix references unknown benchmark %q", name)
			}
			if used[name] {
				t.Errorf("benchmark %q reused across quad mixes", name)
			}
			used[name] = true
		}
	}
}

func TestGeneratorAccessors(t *testing.T) {
	p, _ := ProfileByName("gcc")
	g := MustNewGenerator(p, 1)
	if g.Profile().Name != "gcc" || g.Name() != "gcc" {
		t.Fatal("profile accessor wrong")
	}
	g.Next()
	g.Next()
	if g.Refs() != 2 {
		t.Fatalf("Refs = %d, want 2", g.Refs())
	}
	if (Profile{LocalKB: 16}).EffectiveLocalKB() != 16 {
		t.Fatal("explicit LocalKB not honoured")
	}
}
