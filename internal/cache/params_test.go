package cache

import (
	"strings"
	"testing"
)

// goodParams is a baseline valid configuration each case mutates.
func goodParams() Params {
	return Params{
		Name: "p", SizeBytes: 64 * 4 * 64, Assoc: 4, LineBytes: 64,
		Modules: 2, SamplingRatio: 8, Banks: 2,
	}
}

// TestParamsValidateErrorPaths drives every rejection branch of
// Params.validate, checking both that construction fails and that the
// error identifies the offending parameter.
func TestParamsValidateErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Params)
		errPart string
	}{
		{"zero size", func(p *Params) { p.SizeBytes = 0 }, "must be positive"},
		{"negative size", func(p *Params) { p.SizeBytes = -4096 }, "must be positive"},
		{"zero assoc", func(p *Params) { p.Assoc = 0 }, "must be positive"},
		{"negative assoc", func(p *Params) { p.Assoc = -1 }, "must be positive"},
		{"zero line", func(p *Params) { p.LineBytes = 0 }, "must be positive"},
		{"negative line", func(p *Params) { p.LineBytes = -64 }, "must be positive"},
		{"size not divisible", func(p *Params) { p.SizeBytes = 64*4*64 + 1 }, "not divisible by line*assoc"},
		{"non-pow2 sets", func(p *Params) { p.SizeBytes = 48 * 4 * 64; p.Modules = 1 }, "not a power of two"},
		{"non-pow2 line", func(p *Params) { p.LineBytes = 48; p.SizeBytes = 64 * 4 * 48 }, "line size 48 is not a power of two"},
		{"zero modules", func(p *Params) { p.Modules = 0 }, "modules must be >= 1"},
		{"negative modules", func(p *Params) { p.Modules = -2 }, "modules must be >= 1"},
		{"modules not dividing sets", func(p *Params) { p.Modules = 3 }, "not divisible into 3 modules"},
		{"modules exceeding sets", func(p *Params) { p.Modules = 128 }, "not divisible into 128 modules"},
		{"negative sampling", func(p *Params) { p.SamplingRatio = -1 }, "negative sampling ratio"},
		{"zero banks", func(p *Params) { p.Banks = 0 }, "banks must be >= 1"},
		{"negative banks", func(p *Params) { p.Banks = -4 }, "banks must be >= 1"},
		{"assoc too wide", func(p *Params) { p.Assoc = 65; p.SizeBytes = 64 * 65 * 64 }, "associativity 65 > 64 unsupported"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := goodParams()
			tc.mutate(&p)
			c, err := New(p)
			if err == nil {
				t.Fatalf("New accepted %+v", p)
			}
			if c != nil {
				t.Fatal("New returned a cache alongside an error")
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("error %q does not mention %q", err, tc.errPart)
			}
			if !strings.Contains(err.Error(), p.Name) {
				t.Fatalf("error %q does not name the cache %q", err, p.Name)
			}
		})
	}
}

// TestParamsValidateAcceptsEdges exercises boundary values that must
// be accepted: direct-mapped, single-module, leaderless, max
// associativity, single-bank.
func TestParamsValidateAcceptsEdges(t *testing.T) {
	cases := []Params{
		{Name: "direct", SizeBytes: 128 * 64, Assoc: 1, LineBytes: 64, Modules: 1, Banks: 1},
		{Name: "maxways", SizeBytes: 16 * 64 * 64, Assoc: 64, LineBytes: 64, Modules: 1, Banks: 1},
		{Name: "leaderless", SizeBytes: 64 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 4, SamplingRatio: 0, Banks: 4},
		{Name: "module-per-set", SizeBytes: 16 * 2 * 64, Assoc: 2, LineBytes: 64, Modules: 16, SamplingRatio: 1, Banks: 2},
		{Name: "tiny-lines", SizeBytes: 64 * 4 * 16, Assoc: 4, LineBytes: 16, Modules: 2, SamplingRatio: 2, Banks: 2},
	}
	for _, p := range cases {
		t.Run(p.Name, func(t *testing.T) {
			c, err := New(p)
			if err != nil {
				t.Fatalf("rejected valid params: %v", err)
			}
			if got := c.NumSets() * p.Assoc * p.LineBytes; got != p.SizeBytes {
				t.Fatalf("geometry mismatch: %d sets × %d ways × %d B = %d, want %d",
					c.NumSets(), p.Assoc, p.LineBytes, got, p.SizeBytes)
			}
		})
	}
}
