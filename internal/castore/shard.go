// Sharded: the cluster-wide layer over the single-node Store. Keys
// hash-partition across the live member set with rendezvous (HRW)
// hashing at a fixed replication factor: every node independently
// computes the same owner list for a key, so there is no directory
// service and no placement metadata to replicate — the member list IS
// the placement function. SHA-256 content addresses make artifacts
// location-independent: any replica of a key holds the same bytes, so
// reads may be served by whichever owner answers and concurrent or
// repeated writes are idempotent (first-writer-wins, and every writer
// writes identical bytes by construction).
//
// Read path: local store first (every node keeps a read-through cache
// of artifacts it has touched, owner or not), then the key's owners in
// HRW order, then — as a correctness backstop against stale member
// views — the remaining live members. A hit found on a later replica
// is repaired onto the owners that missed before it, so replication
// converges back to the configured factor after a node death.
//
// Write path: the local store always (the computing node's own cache
// and, when it is an owner, its authoritative replica), plus a remote
// put to every other owner. The write succeeds if at least one
// authoritative replica holds the bytes.
//
// Single-flight becomes cluster-wide in two layers: the coordinator's
// lease table issues at most one active lease per content address
// across the whole cluster (see internal/cluster), and within a node
// the local store's flight table coalesces as before. Residual races —
// an expired lease re-issued while the original worker still runs —
// are harmless because both computations produce identical bytes.
//
// Prefix checkpoints stay node-local: they are a latency optimization
// with no effect on artifact bytes, so replicating them buys nothing.
package castore

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/rendezvous"
	"repro/internal/tracez"
)

// ShardPathPrefix is the URL prefix of the shard transport every
// cluster node mounts (see RegisterShard).
const ShardPathPrefix = "/v1/shard/"

// maxShardBody bounds replica-put bodies; run artifacts are tens of
// kilobytes, so 64 MiB is generous headroom, not a real limit.
const maxShardBody = 64 << 20

// MembersFunc returns the current live member base URLs, including
// the calling node itself. The sharded store calls it on every
// operation, so membership changes take effect immediately.
type MembersFunc func() []string

// Sharded is a cluster-wide content-addressed store: a local Store
// plus remote peers addressed by rendezvous hashing.
type Sharded struct {
	local   *Store
	self    string // this node's base URL, as it appears in the member list
	members MembersFunc
	rf      int
	client  *http.Client

	remoteHits    atomic.Uint64
	remoteMisses  atomic.Uint64
	repairs       atomic.Uint64
	remotePuts    atomic.Uint64
	remotePutErrs atomic.Uint64

	// onRepair, if set, observes each successful read-through repair
	// (the cluster worker forwards them into the event journal).
	onRepair func(key, node string)
}

// SetRepairHook registers a callback invoked after each successful
// read-through repair with the repaired key and the owner node that
// received the copy. Must be set before the store is shared.
func (s *Sharded) SetRepairHook(fn func(key, node string)) { s.onRepair = fn }

// NewSharded layers cluster-wide sharding over local. self is this
// node's base URL exactly as other members will list it; members
// yields the live member set (self included); rf is the replication
// factor (<= 0 selects 2). client may be nil for a default with a 15s
// timeout.
func NewSharded(local *Store, self string, members MembersFunc, rf int, client *http.Client) *Sharded {
	if rf <= 0 {
		rf = 2
	}
	if client == nil {
		client = &http.Client{Timeout: 15 * time.Second}
	}
	return &Sharded{local: local, self: self, members: members, rf: rf, client: client}
}

// Local returns the node-local store under the shard layer (the store
// RegisterShard serves to peers).
func (s *Sharded) Local() *Store { return s.local }

// Self returns this node's member URL.
func (s *Sharded) Self() string { return s.self }

// Replicas returns the configured replication factor.
func (s *Sharded) Replicas() int { return s.rf }

// Owners returns key's owner list under the current member set.
func (s *Sharded) Owners(key string) []string {
	return rendezvous.Owners(key, s.members(), s.rf)
}

// Get returns the artifact for key from the local store, the key's
// owners, or any other live member (stale-placement backstop). Remote
// hits are cached locally and repaired onto owners that missed.
func (s *Sharded) Get(key string) ([]byte, bool, error) {
	return s.getCtx(context.Background(), key)
}

// getCtx is Get with trace propagation: when ctx carries a sampled
// span AND the local store misses, the remote probe sequence runs
// under a "shard-get" child whose traceparent travels on every peer
// request. The local-hit fast path does no tracing work at all.
func (s *Sharded) getCtx(ctx context.Context, key string) ([]byte, bool, error) {
	if data, ok, err := s.local.Get(key); err != nil || ok {
		return data, ok, err
	}
	sp := tracez.FromContext(ctx).Child("shard-get")
	sp.SetAttr("key", shortKey(key))
	defer sp.End()
	members := s.members()
	owners := rendezvous.Owners(key, members, s.rf)
	// Probe owners first, then the rest of the membership; track the
	// owners that missed so a later hit can repair them.
	probed := map[string]bool{s.self: true}
	var missedOwners []string
	try := func(node string) ([]byte, bool) {
		if probed[node] {
			return nil, false
		}
		probed[node] = true
		data, ok, err := s.remoteGet(ctx, sp, node, key)
		if err != nil || !ok {
			s.remoteMisses.Add(1)
			return nil, false
		}
		s.remoteHits.Add(1)
		return data, true
	}
	finish := func(source string, data []byte) ([]byte, bool, error) {
		// Read-through: cache locally, then repair the owners that
		// missed before this replica answered (best-effort). The local
		// put doubles as the self-repair when this node is an owner.
		sp.SetAttr("source", source)
		s.local.Put(key, data)
		for _, o := range missedOwners {
			if o == s.self {
				s.repairs.Add(1)
				if s.onRepair != nil {
					s.onRepair(key, o)
				}
				continue
			}
			rsp := sp.Child("shard-repair")
			rsp.SetAttr("target", o)
			err := s.remotePut(ctx, rsp, o, key, data)
			rsp.End()
			if err == nil {
				s.repairs.Add(1)
				if s.onRepair != nil {
					s.onRepair(key, o)
				}
			}
		}
		return data, true, nil
	}
	for _, o := range owners {
		if o == s.self {
			missedOwners = append(missedOwners, o)
			continue
		}
		if data, ok := try(o); ok {
			return finish(o, data)
		}
		missedOwners = append(missedOwners, o)
	}
	for _, m := range members {
		if data, ok := try(m); ok {
			return finish(m, data)
		}
	}
	sp.SetAttr("result", "miss")
	return nil, false, nil
}

// shortKey truncates a content address for span attrs and logs.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// Put stores the artifact locally and on every remote owner. It fails
// only when no authoritative replica could be written (self is not an
// owner and every remote owner put failed) — with at least one owner
// holding the bytes, read-through repair restores the rest.
func (s *Sharded) Put(key string, data []byte) error {
	if err := s.local.Put(key, data); err != nil {
		return err
	}
	owners := s.Owners(key)
	authoritative := 0
	var lastErr error
	for _, o := range owners {
		if o == s.self {
			authoritative++
			continue
		}
		s.remotePuts.Add(1)
		if err := s.remotePut(context.Background(), nil, o, key, data); err != nil {
			s.remotePutErrs.Add(1)
			lastErr = err
			continue
		}
		authoritative++
	}
	if authoritative == 0 && len(owners) > 0 {
		return fmt.Errorf("castore: no replica of %s written: %w", key[:12], lastErr)
	}
	return nil
}

// GetOrCompute returns the artifact for key, computing it on a
// cluster-wide miss. The compute runs under the local store's
// single-flight lock and its result replicates to the key's owners
// before the call returns.
func (s *Sharded) GetOrCompute(ctx context.Context, key string, compute func(context.Context) ([]byte, error)) ([]byte, bool, error) {
	if data, ok, err := s.getCtx(ctx, key); err != nil {
		return nil, false, err
	} else if ok {
		return data, true, nil
	}
	return s.local.GetOrCompute(ctx, key, func(ctx context.Context) ([]byte, error) {
		data, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		// Replicate to remote owners here (the local store persists its
		// own copy when this callback returns). Failing every
		// authoritative replica fails the compute: the caller's task
		// re-runs later rather than completing with an unreachable
		// artifact.
		owners := s.Owners(key)
		rsp := tracez.FromContext(ctx).Child("shard-replicate")
		rsp.SetAttr("key", shortKey(key))
		defer rsp.End()
		authoritative := 0
		var lastErr error
		for _, o := range owners {
			if o == s.self {
				authoritative++
				continue
			}
			s.remotePuts.Add(1)
			if err := s.remotePut(ctx, rsp, o, key, data); err != nil {
				s.remotePutErrs.Add(1)
				lastErr = err
				continue
			}
			authoritative++
		}
		if authoritative == 0 && len(owners) > 0 {
			return nil, fmt.Errorf("castore: no replica of %s written: %w", key[:12], lastErr)
		}
		return data, nil
	})
}

// BestCheckpoint and PutCheckpoint delegate to the node-local store:
// prefix checkpoints are a local latency optimization (see the package
// comment above).
func (s *Sharded) BestCheckpoint(base string, horizon uint64) (CheckpointMeta, []byte, bool, error) {
	return s.local.BestCheckpoint(base, horizon)
}

// PutCheckpoint stores a checkpoint blob in the node-local store.
func (s *Sharded) PutCheckpoint(base string, meta CheckpointMeta, data []byte) error {
	return s.local.PutCheckpoint(base, meta, data)
}

// Stats returns the local store's counters with the shard layer's
// remote counters filled in.
func (s *Sharded) Stats() Stats {
	st := s.local.Stats()
	st.RemoteHits = s.remoteHits.Load()
	st.RemoteMisses = s.remoteMisses.Load()
	st.Repairs = s.repairs.Load()
	st.RemotePuts = s.remotePuts.Load()
	st.RemotePutErrors = s.remotePutErrs.Load()
	return st
}

// ---- shard transport ----

// remoteGet fetches key from node's local shard. A 404 is a miss, any
// other non-2xx an error. A sampled sp stamps its traceparent on the
// request so the peer's access log can correlate.
func (s *Sharded) remoteGet(ctx context.Context, sp *tracez.Span, node, key string) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+ShardPathPrefix+key, nil)
	if err != nil {
		return nil, false, err
	}
	if tp := tracez.Traceparent(sp); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, false, fmt.Errorf("castore: shard get %s from %s: %s", key[:12], node, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxShardBody))
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// remotePut stores key on node's local shard.
func (s *Sharded) remotePut(ctx context.Context, sp *tracez.Span, node, key string, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, node+ShardPathPrefix+key, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if tp := tracez.Traceparent(sp); tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("castore: shard put %s to %s: %s", key[:12], node, resp.Status)
	}
	return nil
}

// RegisterShard mounts the shard transport for local on mux: peers
// read and write this node's replica set directly against its local
// store (never through its sharded view, which would recurse across
// the cluster). node is this node's advertised URL, stamped on every
// response as X-Esteem-Node ("" omits the header).
func RegisterShard(mux *http.ServeMux, local *Store, node string) {
	stamp := func(w http.ResponseWriter) {
		if node != "" {
			w.Header().Set("X-Esteem-Node", node)
		}
	}
	mux.HandleFunc("GET "+ShardPathPrefix+"{key}", func(w http.ResponseWriter, r *http.Request) {
		stamp(w)
		key := r.PathValue("key")
		if !ValidKey(key) {
			http.Error(w, "malformed shard key", http.StatusBadRequest)
			return
		}
		data, ok, err := local.Get(key)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if !ok {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	})
	mux.HandleFunc("PUT "+ShardPathPrefix+"{key}", func(w http.ResponseWriter, r *http.Request) {
		stamp(w)
		key := r.PathValue("key")
		if !ValidKey(key) {
			http.Error(w, "malformed shard key", http.StatusBadRequest)
			return
		}
		data, err := io.ReadAll(io.LimitReader(r.Body, maxShardBody+1))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if len(data) > maxShardBody {
			http.Error(w, "artifact too large", http.StatusRequestEntityTooLarge)
			return
		}
		if err := local.Put(key, data); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
}
