package verify

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/energy"
	"repro/internal/oracle"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// shortConfig is a tractably small single-core run used by the
// sim-level differential and property tests.
func shortConfig(tech sim.Technique) sim.Config {
	cfg := sim.DefaultConfig(1)
	cfg.Technique = tech
	cfg.WarmupInstr = 100_000
	cfg.MeasureInstr = 500_000
	cfg.IntervalCycles = 150_000
	return cfg
}

func newModel(l2Size int) (energy.Model, error) {
	return energy.NewModel(l2Size, 2e9)
}

// randomActivity draws activity counts spanning several orders of
// magnitude so the energy comparison exercises mixed-scale sums.
func randomActivity(rng *xrand.RNG) energy.Activity {
	return energy.Activity{
		Cycles:            1 + rng.Uint64n(1<<40),
		L2Hits:            rng.Uint64n(1 << 30),
		L2Misses:          rng.Uint64n(1 << 26),
		Refreshes:         rng.Uint64n(1 << 28),
		ActiveFraction:    float64(rng.Uint64n(10001)) / 10000,
		MMAccesses:        rng.Uint64n(1 << 26),
		LinesTransitioned: rng.Uint64n(1 << 22),
	}
}

// breakdownClose compares two energy terms within a relative tolerance
// that admits only float summation-order noise.
func breakdownClose(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

// Geometries is the differential test matrix: small but varied cache
// shapes covering direct-mapped through 16-way, single through
// 16-module, leaderless through all-leader, and non-power-of-two bank
// counts.
var Geometries = []cache.Params{
	{Name: "g0", SizeBytes: 64 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 2, SamplingRatio: 8, Banks: 2},
	{Name: "g1", SizeBytes: 32 * 8 * 64, Assoc: 8, LineBytes: 64, Modules: 4, SamplingRatio: 4, Banks: 4},
	{Name: "g2", SizeBytes: 128 * 2 * 32, Assoc: 2, LineBytes: 32, Modules: 8, SamplingRatio: 16, Banks: 2},
	{Name: "g3", SizeBytes: 64 * 16 * 64, Assoc: 16, LineBytes: 64, Modules: 4, SamplingRatio: 64, Banks: 4},
	{Name: "g4", SizeBytes: 256 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 1, SamplingRatio: 0, Banks: 1},
	{Name: "g5", SizeBytes: 16 * 16 * 128, Assoc: 16, LineBytes: 128, Modules: 16, SamplingRatio: 2, Banks: 4},
	{Name: "g6", SizeBytes: 512 * 1 * 64, Assoc: 1, LineBytes: 64, Modules: 8, SamplingRatio: 32, Banks: 2},
	{Name: "g7", SizeBytes: 64 * 8 * 256, Assoc: 8, LineBytes: 256, Modules: 8, SamplingRatio: 8, Banks: 3},
	{Name: "g8", SizeBytes: 128 * 8 * 64, Assoc: 8, LineBytes: 64, Modules: 2, SamplingRatio: 1, Banks: 8},
}

// opsPerConfig is the schedule length of the differential suite (the
// acceptance floor is 10k randomized operations per configuration).
const opsPerConfig = 10_000

// TestDifferentialCache replays randomized schedules through the
// production cache and the oracle, asserting full state equivalence
// after every operation, across every geometry.
func TestDifferentialCache(t *testing.T) {
	for gi, p := range Geometries {
		t.Run(p.Name, func(t *testing.T) {
			d, err := NewCacheDiff(p)
			if err != nil {
				t.Fatal(err)
			}
			rng := xrand.New(0xD1F0 + uint64(gi))
			ops := RandomOps(rng, p, opsPerConfig, 0)
			if err := d.Replay(ops); err != nil {
				t.Fatalf("geometry %s diverged: %v", p.Name, err)
			}
		})
	}
}

// TestDifferentialCacheSecondSeed re-runs a spread of geometries under
// a different seed, so the suite is not hostage to one schedule.
func TestDifferentialCacheSecondSeed(t *testing.T) {
	for gi, p := range Geometries {
		if gi%2 != 0 {
			continue
		}
		t.Run(p.Name, func(t *testing.T) {
			d, err := NewCacheDiff(p)
			if err != nil {
				t.Fatal(err)
			}
			rng := xrand.New(0xBEEF00 + uint64(gi)*977)
			if err := d.Replay(RandomOps(rng, p, opsPerConfig, 0)); err != nil {
				t.Fatalf("geometry %s diverged: %v", p.Name, err)
			}
		})
	}
}

// refreshGeometries is the subset used for full-stack refresh
// differential runs (the per-event oracle walks are O(S·A), so the
// shapes stay small).
var refreshGeometries = []cache.Params{
	{Name: "r0", SizeBytes: 64 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 2, SamplingRatio: 8, Banks: 2},
	{Name: "r1", SizeBytes: 32 * 8 * 64, Assoc: 8, LineBytes: 64, Modules: 4, SamplingRatio: 4, Banks: 4},
	{Name: "r2", SizeBytes: 64 * 8 * 256, Assoc: 8, LineBytes: 256, Modules: 8, SamplingRatio: 8, Banks: 3},
}

// TestDifferentialRefresh replays randomized access/reconfigure/
// advance schedules through the production refresh stack (cache +
// policy + engine) and the oracle stack (reference cache + per-line
// bookkeeper + naive engine) for every refresh policy.
func TestDifferentialRefresh(t *testing.T) {
	const retention = 10_000
	const phases = 4
	for gi, p := range refreshGeometries {
		for pi, policy := range RefreshPolicies {
			t.Run(fmt.Sprintf("%s/%s", p.Name, policy), func(t *testing.T) {
				d, err := NewRefreshDiff(p, policy, phases, retention)
				if err != nil {
					t.Fatal(err)
				}
				rng := xrand.New(0x5EED + uint64(gi)*131 + uint64(pi)*17)
				ops := RandomOps(rng, p, 4000, retention)
				if err := d.Replay(ops); err != nil {
					t.Fatalf("%s/%s diverged: %v", p.Name, policy, err)
				}
			})
		}
	}
}

// TestDifferentialEnergyModel compares the oracle's from-scratch
// Equations (2)–(8) evaluation against energy.Model.Eval over
// randomized activity records.
func TestDifferentialEnergyModel(t *testing.T) {
	rng := xrand.New(0xE4E26)
	sizes := []int{2 << 20, 3 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20}
	for _, size := range sizes {
		m, err := newModel(size)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			a := randomActivity(rng)
			got := oracle.EnergyBreakdown(m, a)
			want := m.Eval(a)
			if !breakdownClose(got.L2Leak, want.L2Leak) ||
				!breakdownClose(got.L2Dyn, want.L2Dyn) ||
				!breakdownClose(got.L2Refresh, want.L2Refresh) ||
				!breakdownClose(got.MMLeak, want.MMLeak) ||
				!breakdownClose(got.MMDyn, want.MMDyn) ||
				!breakdownClose(got.Algo, want.Algo) ||
				!breakdownClose(got.Total(), want.Total()) {
				t.Fatalf("size %d MB activity %+v: oracle %+v, model %+v", size>>20, a, got, want)
			}
		}
	}
}

// TestDifferentialEnergyFromIntervals runs a real simulation with
// interval logging and recomputes the run's total activity and energy
// from the raw per-interval records, independently of the simulator's
// incremental accumulation.
func TestDifferentialEnergyFromIntervals(t *testing.T) {
	for _, tech := range []sim.Technique{sim.Baseline, sim.Esteem, sim.RPV, sim.SmartRefresh} {
		cfg := shortConfig(tech)
		cfg.LogIntervals = true
		res, err := sim.Run(cfg, []string{"gcc"})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Intervals) == 0 {
			t.Fatalf("%v: no intervals logged", tech)
		}
		acts := make([]energy.Activity, 0, len(res.Intervals))
		for _, iv := range res.Intervals {
			acts = append(acts, iv.Activity)
		}
		total := oracle.AccumulateActivity(acts)
		if total.Cycles != res.Activity.Cycles ||
			total.L2Hits != res.Activity.L2Hits ||
			total.L2Misses != res.Activity.L2Misses ||
			total.Refreshes != res.Activity.Refreshes ||
			total.MMAccesses != res.Activity.MMAccesses ||
			total.LinesTransitioned != res.Activity.LinesTransitioned {
			t.Fatalf("%v: interval sums %+v != run activity %+v", tech, total, res.Activity)
		}
		if !breakdownClose(total.ActiveFraction, res.Activity.ActiveFraction) {
			t.Fatalf("%v: F_A from intervals %v != run %v", tech, total.ActiveFraction, res.Activity.ActiveFraction)
		}
		got := oracle.EnergyBreakdown(res.Model, total)
		if !breakdownClose(got.Total(), res.Energy.Total()) {
			t.Fatalf("%v: recomputed energy %v != reported %v", tech, got.Total(), res.Energy.Total())
		}
	}
}
