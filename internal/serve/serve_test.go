package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/castore"
	"repro/internal/obs"
)

// tinySpec is a fast single-unit job specification: one benchmark,
// one technique, a few tens of thousands of instructions.
func tinySpec(seed uint64) string {
	return fmt.Sprintf(`{
		"config": {"MeasureInstr": 30000, "WarmupInstr": 5000, "IntervalCycles": 20000, "Seed": %d},
		"benchmarks": [["gcc"]],
		"techniques": ["esteem"]
	}`, seed)
}

// newTestServer builds a server over a fresh disk store.
func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	store, err := castore.Open(t.TempDir(), 32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Store: store, Workers: 2, SimWorkers: 2, QueueDepth: 8, JobTimeout: time.Minute}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// do runs one request against the handler and returns the recorder.
func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// submit posts a spec and returns the decoded job view.
func submit(t *testing.T, s *Server, spec string) jobView {
	t.Helper()
	w := do(t, s, "POST", "/v1/jobs", spec)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", w.Code, w.Body)
	}
	var v jobView
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || len(v.Units) == 0 {
		t.Fatalf("submit view: %+v", v)
	}
	return v
}

// waitDone polls a job until it reaches a terminal state.
func waitDone(t *testing.T, s *Server, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		w := do(t, s, "GET", "/v1/jobs/"+id, "")
		if w.Code != http.StatusOK {
			t.Fatalf("status: %d %s", w.Code, w.Body)
		}
		var v jobView
		if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
			t.Fatal(err)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return jobView{}
}

func TestSubmitRunFetchRoundTrip(t *testing.T) {
	s := newTestServer(t, nil)
	v := submit(t, s, tinySpec(1))
	got := waitDone(t, s, v.ID)
	if got.State != StateDone {
		t.Fatalf("job state %s, error %q", got.State, got.Error)
	}

	res := do(t, s, "GET", "/v1/jobs/"+v.ID+"/result", "")
	if res.Code != http.StatusOK {
		t.Fatalf("result: %d %s", res.Code, res.Body)
	}
	art, err := obs.ParseRun(res.Body.Bytes())
	if err != nil {
		t.Fatalf("result is not a run artifact: %v", err)
	}
	if art.Manifest.Technique != "esteem" {
		t.Fatalf("artifact manifest %+v", art.Manifest)
	}
	if etag := res.Header().Get("ETag"); etag != `"`+v.Units[0].Key+`"` {
		t.Fatalf("result ETag %q, unit key %q", etag, v.Units[0].Key)
	}

	// The artifact endpoint serves the same bytes by content address.
	byKey := do(t, s, "GET", "/v1/artifacts/"+v.Units[0].Key, "")
	if byKey.Code != http.StatusOK {
		t.Fatalf("artifact: %d %s", byKey.Code, byKey.Body)
	}
	if !bytes.Equal(byKey.Body.Bytes(), res.Body.Bytes()) {
		t.Fatal("artifact bytes differ from result bytes")
	}
}

func TestSubmitErrorPaths(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []struct {
		name, body string
	}{
		{"malformed JSON", `{"benchmarks": [`},
		{"trailing data", `{"benchmarks": [["gcc"]], "techniques": ["esteem"]} garbage`},
		{"unknown spec field", `{"benchmarks": [["gcc"]], "techniques": ["esteem"], "bogus": 1}`},
		{"unknown config field", `{"config": {"Bogus": 1}, "benchmarks": [["gcc"]], "techniques": ["esteem"]}`},
		{"no benchmarks", `{"benchmarks": [], "techniques": ["esteem"]}`},
		{"no techniques", `{"benchmarks": [["gcc"]], "techniques": []}`},
		{"unknown technique", `{"benchmarks": [["gcc"]], "techniques": ["quantum"]}`},
		{"unknown benchmark", `{"benchmarks": [["fortnite"]], "techniques": ["esteem"]}`},
		{"workload arity", `{"benchmarks": [["gcc", "lbm"]], "techniques": ["esteem"]}`},
		{"invalid config", `{"config": {"MeasureInstr": 0}, "benchmarks": [["gcc"]], "techniques": ["esteem"]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, s, "POST", "/v1/jobs", tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("got %d %s, want 400", w.Code, w.Body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("error body %s", w.Body)
			}
		})
	}
}

func TestSubmitBodyTooLarge(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 64 })
	w := do(t, s, "POST", "/v1/jobs", tinySpec(1))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("got %d, want 400 for oversized body", w.Code)
	}
}

func TestUnknownJob(t *testing.T) {
	s := newTestServer(t, nil)
	for _, path := range []string{
		"/v1/jobs/deadbeefdeadbeef",
		"/v1/jobs/deadbeefdeadbeef/events",
		"/v1/jobs/deadbeefdeadbeef/result",
	} {
		if w := do(t, s, "GET", path, ""); w.Code != http.StatusNotFound {
			t.Fatalf("%s: got %d, want 404", path, w.Code)
		}
	}
}

func TestArtifactKeyValidation(t *testing.T) {
	s := newTestServer(t, nil)
	if w := do(t, s, "GET", "/v1/artifacts/not-a-key", ""); w.Code != http.StatusBadRequest {
		t.Fatalf("malformed key: got %d, want 400", w.Code)
	}
	missing := strings.Repeat("ab", 32)
	if w := do(t, s, "GET", "/v1/artifacts/"+missing, ""); w.Code != http.StatusNotFound {
		t.Fatalf("missing key: got %d, want 404", w.Code)
	}
}

func TestQueueFullRejectsWith429(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
		c.RetryAfter = 7 * time.Second
	})
	s.testGate = make(chan struct{})

	// First job is dequeued and held at the gate; second fills the
	// queue; third must be rejected.
	submit(t, s, tinySpec(1))
	waitQueueEmpty(t, s)
	submit(t, s, tinySpec(2))
	w := do(t, s, "POST", "/v1/jobs", tinySpec(3))
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("got %d %s, want 429", w.Code, w.Body)
	}
	if ra := w.Header().Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After %q, want 7", ra)
	}
	close(s.testGate)
}

// waitQueueEmpty waits until a worker has dequeued the pending job
// (and is held at the test gate).
func waitQueueEmpty(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		n := len(s.queue)
		s.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("workers never picked up the job")
}

func TestResultBeforeCompletionConflicts(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 1 })
	s.testGate = make(chan struct{})
	v := submit(t, s, tinySpec(1))
	if w := do(t, s, "GET", "/v1/jobs/"+v.ID+"/result", ""); w.Code != http.StatusConflict {
		t.Fatalf("got %d, want 409 while running", w.Code)
	}
	close(s.testGate)
	waitDone(t, s, v.ID)
}

func TestEventsStreamReplaysAndCompletes(t *testing.T) {
	s := newTestServer(t, nil)
	v := submit(t, s, tinySpec(1))
	waitDone(t, s, v.ID)

	// After completion the stream replays the full history and ends.
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{"event: state", "event: task", `"state":"running"`, `"state":"done"`, `"task":"done"`} {
		if !strings.Contains(text, want) {
			t.Fatalf("stream missing %q:\n%s", want, text)
		}
	}
}

func TestEventsClientDisconnectMidStream(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 1 })
	s.testGate = make(chan struct{})
	v := submit(t, s, tinySpec(1))

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/v1/jobs/"+v.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read the replayed "queued" event, then drop the connection while
	// the job is still gated.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	// The job must still run to completion for other clients.
	close(s.testGate)
	if got := waitDone(t, s, v.ID); got.State != StateDone {
		t.Fatalf("job state %s after client disconnect", got.State)
	}
}

func TestDrainRejectsNewWorkAndFinishesInFlight(t *testing.T) {
	s := newTestServer(t, nil)
	v := submit(t, s, tinySpec(1))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := waitDone(t, s, v.ID); got.State != StateDone {
		t.Fatalf("in-flight job state %s after drain", got.State)
	}
	if w := do(t, s, "POST", "/v1/jobs", tinySpec(2)); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: got %d, want 503", w.Code)
	}
	if w := do(t, s, "GET", "/healthz", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz: got %d, want 503", w.Code)
	}
}

func TestConcurrentSubmitSingleFlight(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.Workers = 4; c.SimWorkers = 1 })

	const clients = 8
	var wg sync.WaitGroup
	ids := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := do(t, s, "POST", "/v1/jobs", tinySpec(99))
			if w.Code != http.StatusAccepted {
				t.Errorf("client %d: %d %s", i, w.Code, w.Body)
				return
			}
			var v jobView
			if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
				t.Error(err)
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	var bodies [][]byte
	for _, id := range ids {
		if got := waitDone(t, s, id); got.State != StateDone {
			t.Fatalf("job %s state %s: %s", id, got.State, got.Error)
		}
		w := do(t, s, "GET", "/v1/jobs/"+id+"/result", "")
		if w.Code != http.StatusOK {
			t.Fatalf("result %s: %d %s", id, w.Code, w.Body)
		}
		bodies = append(bodies, w.Body.Bytes())
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d received different bytes", i)
		}
	}
	// The paper-shaped guarantee: eight identical submissions, exactly
	// one simulation.
	if st := s.Store().Stats(); st.Computes != 1 {
		t.Fatalf("store stats %+v, want exactly 1 compute", st)
	}
}

func TestResultSurvivesRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	store1, err := castore.Open(dir, 32)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(Config{Store: store1, Workers: 1, SimWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := submit(t, s1, tinySpec(5))
	waitDone(t, s1, v.ID)
	cold := do(t, s1, "GET", "/v1/jobs/"+v.ID+"/result", "")
	if cold.Code != http.StatusOK {
		t.Fatalf("cold result: %d", cold.Code)
	}
	s1.Close()

	// A fresh process over the same directory serves the same bytes
	// without executing anything.
	store2, err := castore.Open(dir, 32)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{Store: store2, Workers: 1, SimWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v2 := submit(t, s2, tinySpec(5))
	waitDone(t, s2, v2.ID)
	warm := do(t, s2, "GET", "/v1/jobs/"+v2.ID+"/result", "")
	if warm.Code != http.StatusOK {
		t.Fatalf("warm result: %d", warm.Code)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Fatal("restart changed result bytes")
	}
	if st := store2.Stats(); st.Computes != 0 {
		t.Fatalf("restart re-ran the simulation: %+v", st)
	}
}

func TestMultiUnitJobEnvelope(t *testing.T) {
	s := newTestServer(t, nil)
	spec := `{
		"config": {"MeasureInstr": 30000, "WarmupInstr": 5000, "IntervalCycles": 20000},
		"benchmarks": [["gcc"], ["lbm"]],
		"techniques": ["baseline", "esteem"]
	}`
	v := submit(t, s, spec)
	if len(v.Units) != 4 {
		t.Fatalf("%d units, want 4", len(v.Units))
	}
	waitDone(t, s, v.ID)
	w := do(t, s, "GET", "/v1/jobs/"+v.ID+"/result", "")
	if w.Code != http.StatusOK {
		t.Fatalf("result: %d %s", w.Code, w.Body)
	}
	var env resultEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Units) != 4 {
		t.Fatalf("envelope units %d", len(env.Units))
	}
	for _, u := range env.Units {
		a := do(t, s, "GET", u.ArtifactURL, "")
		if a.Code != http.StatusOK {
			t.Fatalf("artifact %s: %d", u.ArtifactURL, a.Code)
		}
		if _, err := obs.ParseRun(a.Body.Bytes()); err != nil {
			t.Fatalf("artifact %s: %v", u.ArtifactURL, err)
		}
	}
}

func TestVersionHealthzMetrics(t *testing.T) {
	s := newTestServer(t, nil)
	v := submit(t, s, tinySpec(1))
	waitDone(t, s, v.ID)

	w := do(t, s, "GET", "/v1/version", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"esteem-serve"`) {
		t.Fatalf("version: %d %s", w.Code, w.Body)
	}
	w = do(t, s, "GET", "/healthz", "")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"ok"`) {
		t.Fatalf("healthz: %d %s", w.Code, w.Body)
	}
	w = do(t, s, "GET", "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: %d", w.Code)
	}
	for _, metric := range []string{
		"esteem_serve_queue_depth",
		"esteem_serve_in_flight_jobs",
		"esteem_serve_jobs_accepted_total 1",
		"esteem_serve_jobs_completed_total 1",
		"esteem_serve_cache_computes_total 1",
		"esteem_serve_sims_executed_total 1",
		"esteem_serve_sims_per_second",
	} {
		if !strings.Contains(w.Body.String(), metric) {
			t.Fatalf("metrics missing %q:\n%s", metric, w.Body)
		}
	}
}

func TestConditionalArtifactFetch(t *testing.T) {
	s := newTestServer(t, nil)
	v := submit(t, s, tinySpec(1))
	waitDone(t, s, v.ID)
	key := v.Units[0].Key

	req := httptest.NewRequest("GET", "/v1/artifacts/"+key, nil)
	req.Header.Set("If-None-Match", `"`+key+`"`)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusNotModified {
		t.Fatalf("conditional fetch: %d, want 304", w.Code)
	}
}
