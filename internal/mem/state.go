package mem

import "repro/internal/ckpt"

// appendCounters writes one Counters block.
func appendCounters(w *ckpt.Writer, c Counters) {
	w.U64(c.Reads)
	w.U64(c.Writebacks)
	w.U64(c.QueueStallCycles)
	w.U64(c.WriteBufferStallCycles)
}

// readCounters reads one Counters block.
func readCounters(r *ckpt.Reader) Counters {
	return Counters{
		Reads:                  r.U64(),
		Writebacks:             r.U64(),
		QueueStallCycles:       r.U64(),
		WriteBufferStallCycles: r.U64(),
	}
}

// AppendState serialises the channel's mutable state: the next-free
// cycle, counters and the in-flight writeback completion times. The
// float fields are written bit-exactly (the channel clock is
// fractional), so a restored run reproduces queue delays to the bit.
func (m *Memory) AppendState(w *ckpt.Writer) {
	w.Section("MEMC")
	w.F64(m.nextFree)
	appendCounters(w, m.total)
	appendCounters(w, m.interval)
	w.F64Slice(m.wbFinish)
	w.Int(m.wbPeakInterval)
}

// RestoreState loads state written by AppendState into a channel
// built from identical Params.
func (m *Memory) RestoreState(r *ckpt.Reader) error {
	r.Section("MEMC")
	m.nextFree = r.F64()
	m.total = readCounters(r)
	m.interval = readCounters(r)
	m.wbFinish = r.F64Slice()
	m.wbPeakInterval = r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	n := m.p.WriteBufferEntries
	if n == 0 && len(m.wbFinish) > 0 {
		r.Failf("mem: restored %d in-flight writebacks into an unbounded buffer", len(m.wbFinish))
	}
	if n > 0 && len(m.wbFinish) > n {
		r.Failf("mem: restored %d in-flight writebacks exceed buffer of %d", len(m.wbFinish), n)
	}
	if m.wbPeakInterval < 0 || m.wbPeakInterval > n {
		r.Failf("mem: restored write-buffer peak %d out of range [0,%d]", m.wbPeakInterval, n)
	}
	return r.Err()
}
