// Worker: joins a coordinator, heartbeats, leases tasks and executes
// them with the shared runner against the sharded content-addressed
// store. A worker is deliberately stateless beyond its local store
// shard — killing one loses nothing but the leases it held, which the
// coordinator re-issues to survivors.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/castore"
	"repro/internal/runner"
	"repro/internal/tracez"
)

// WorkerConfig parameterises a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL. Required.
	Coordinator string
	// Self is this worker's advertised base URL (shard peers and the
	// coordinator reach it here). Required.
	Self string
	// Local is the node-local content-addressed store backing this
	// worker's shard. Required.
	Local *castore.Store
	// Replicas is the shard replication factor; it must agree with the
	// coordinator's (the join response carries the authoritative value
	// and a mismatch logs a warning). Default 2.
	Replicas int
	// Executors is the number of concurrent lease/execute loops
	// (default 1 — each task is itself a parallel sweep).
	Executors int
	// SimWorkers is the per-task sweep worker count (<= 0 selects
	// GOMAXPROCS).
	SimWorkers int
	// Logger receives lifecycle logs. Nil discards.
	Logger *slog.Logger
	// Client is the HTTP client for coordinator and shard traffic
	// (default: 45s timeout, comfortably above the 30s lease
	// long-poll).
	Client *http.Client
	// Tracer records this worker's spans. A leased task carrying a
	// traceparent starts a local root under the coordinator's lease
	// span; on completion the trace's spans ship back. Nil (or a task
	// without a traceparent) keeps the execute path span-free — zero
	// tracing allocations.
	Tracer *tracez.Tracer
	// Execute overrides task execution (tests only). Nil selects the
	// real sweep-backed executor.
	Execute func(ctx context.Context, t Task) error
}

func (c *WorkerConfig) fill() error {
	if c.Coordinator == "" {
		return fmt.Errorf("cluster: WorkerConfig.Coordinator is required")
	}
	if c.Self == "" {
		return fmt.Errorf("cluster: WorkerConfig.Self is required")
	}
	if c.Local == nil {
		return fmt.Errorf("cluster: WorkerConfig.Local is required")
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Executors <= 0 {
		c.Executors = 1
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 45 * time.Second}
	}
	return nil
}

// Worker is one cluster execution node.
type Worker struct {
	cfg   WorkerConfig
	shard *castore.Sharded

	// members is the latest live member list ([]string) from the
	// coordinator; the sharded store routes by it.
	members atomic.Value

	// cadence learned from the join response.
	heartbeatEvery atomic.Int64 // nanoseconds
	leaseTTL       atomic.Int64 // nanoseconds

	mu   sync.Mutex
	held map[string]struct{}
	// pending buffers worker-observed journal events (replica repairs,
	// version-skew rejections) for the next heartbeat to forward;
	// bounded so a dead coordinator can't grow it without limit.
	pending []JournalEvent

	start time.Time

	tasksExecuted atomic.Uint64
	tasksFailed   atomic.Uint64
	simsComputed  atomic.Uint64
	spansShipped  atomic.Uint64
	eventsDropped atomic.Uint64
}

// maxPendingEvents bounds the worker-side event buffer.
const maxPendingEvents = 256

// NewWorker builds a worker and its sharded store view. Call Run to
// join and start executing.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	w := &Worker{cfg: cfg, held: make(map[string]struct{}), start: time.Now()}
	// Until the first join response arrives, the member view is just
	// this node: puts degrade to self-only and repair once the cluster
	// view lands.
	w.members.Store([]string{cfg.Self})
	w.heartbeatEvery.Store(int64(3 * time.Second))
	w.leaseTTL.Store(int64(15 * time.Second))
	w.shard = castore.NewSharded(cfg.Local, cfg.Self, w.Members, cfg.Replicas, cfg.Client)
	w.shard.SetRepairHook(func(key, node string) {
		w.noteEvent(EventReplicaRepair, key, "repaired onto "+node)
	})
	return w, nil
}

// noteEvent buffers a worker-observed journal event for the next
// heartbeat; the coordinator re-sequences it into the cluster journal.
func (w *Worker) noteEvent(kind EventKind, key, detail string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.pending) >= maxPendingEvents {
		w.eventsDropped.Add(1)
		return
	}
	w.pending = append(w.pending, JournalEvent{
		UnixMS: time.Now().UnixMilli(), Kind: kind, Key: key, Detail: detail,
	})
}

// takePending swaps out the buffered events for a heartbeat.
func (w *Worker) takePending() []JournalEvent {
	w.mu.Lock()
	defer w.mu.Unlock()
	evs := w.pending
	w.pending = nil
	return evs
}

// restorePending re-buffers events whose heartbeat failed, oldest
// first, dropping overflow.
func (w *Worker) restorePending(evs []JournalEvent) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if room := maxPendingEvents - len(evs); room < len(w.pending) {
		w.eventsDropped.Add(uint64(len(w.pending) - max(room, 0)))
		w.pending = w.pending[:max(room, 0)]
	}
	w.pending = append(evs, w.pending...)
}

// Members returns the latest live member list (the sharded store's
// MembersFunc).
func (w *Worker) Members() []string {
	return w.members.Load().([]string)
}

// Shard returns the worker's cluster-wide store view.
func (w *Worker) Shard() *castore.Sharded { return w.shard }

func (w *Worker) setMembers(members []string) {
	if len(members) == 0 {
		return
	}
	sort.Strings(members)
	w.members.Store(members)
}

func (w *Worker) heldKeys() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	keys := make([]string, 0, len(w.held))
	for k := range w.held {
		keys = append(keys, k)
	}
	return keys
}

func (w *Worker) markHeld(key string, held bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if held {
		w.held[key] = struct{}{}
	} else {
		delete(w.held, key)
	}
}

// post sends one protocol POST and decodes the response into out (if
// non-nil and the status is 200). A 204 returns ok=false, nil error.
func (w *Worker) post(ctx context.Context, path string, in, out any) (ok bool, err error) {
	body, err := json.Marshal(in)
	if err != nil {
		return false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		if out != nil {
			if err := json.NewDecoder(io.LimitReader(resp.Body, maxClusterBody)).Decode(out); err != nil {
				return false, fmt.Errorf("decoding %s response: %w", path, err)
			}
		}
		return true, nil
	case http.StatusNoContent:
		return false, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return false, fmt.Errorf("%s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
}

// join registers with the coordinator, retrying until ctx is done.
func (w *Worker) join(ctx context.Context) error {
	backoff := 200 * time.Millisecond
	for {
		var resp JoinResponse
		ok, err := w.post(ctx, "/v1/cluster/join", JoinRequest{URL: w.cfg.Self}, &resp)
		if ok && err == nil {
			w.setMembers(resp.Members)
			if resp.HeartbeatMillis > 0 {
				w.heartbeatEvery.Store(resp.HeartbeatMillis * int64(time.Millisecond))
			}
			if resp.LeaseTTLMillis > 0 {
				w.leaseTTL.Store(resp.LeaseTTLMillis * int64(time.Millisecond))
			}
			if resp.Replicas != w.cfg.Replicas {
				w.cfg.Logger.Warn("replica factor mismatch; using coordinator's",
					"ours", w.cfg.Replicas, "coordinator", resp.Replicas)
			}
			w.cfg.Logger.Info("joined cluster",
				"coordinator", w.cfg.Coordinator, "members", len(resp.Members))
			return nil
		}
		if err != nil {
			w.cfg.Logger.Warn("join failed; retrying", "err", err, "backoff", backoff)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 5*time.Second {
			backoff *= 2
		}
	}
}

// heartbeatLoop refreshes membership and extends held leases until
// ctx is done.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	for {
		every := time.Duration(w.heartbeatEvery.Load())
		select {
		case <-ctx.Done():
			return
		case <-time.After(every):
		}
		events := w.takePending()
		var resp HeartbeatResponse
		ok, err := w.post(ctx, "/v1/cluster/heartbeat",
			HeartbeatRequest{URL: w.cfg.Self, Held: w.heldKeys(), Events: events}, &resp)
		if err != nil {
			w.restorePending(events)
			w.cfg.Logger.Warn("heartbeat failed", "err", err)
			continue
		}
		if ok {
			w.setMembers(resp.Members)
		}
	}
}

// executorLoop leases and executes tasks until ctx is done.
func (w *Worker) executorLoop(ctx context.Context) {
	for ctx.Err() == nil {
		var resp LeaseResponse
		ok, err := w.post(ctx, "/v1/cluster/lease",
			LeaseRequest{URL: w.cfg.Self, WaitMillis: 15_000}, &resp)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			w.cfg.Logger.Warn("lease request failed", "err", err)
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Second):
			}
			continue
		}
		if !ok {
			continue // long-poll expired with no work
		}
		t := resp.Task
		// Join the job's trace when the lease carries a traceparent:
		// the worker's spans become a subtree under the coordinator's
		// lease span. Without one (or without a tracer) tsp stays nil
		// and the execute path does no tracing work at all.
		var tsp *tracez.Span
		tctx := ctx
		if w.cfg.Tracer != nil && t.Traceparent != "" {
			if tid, parent, ok := tracez.ParseTraceparent(t.Traceparent); ok {
				tsp = w.cfg.Tracer.RootFrom("worker", tid, parent)
				tsp.SetAttr("node", w.cfg.Self)
				tsp.SetAttr("label", t.Label)
				tctx = tracez.ContextWith(ctx, tsp)
			}
		}
		w.cfg.Logger.Info("task leased",
			"key", t.Key[:12], "label", t.Label, "trace_id", t.TraceID)
		w.markHeld(t.Key, true)
		execErr := w.execute(tctx, t)
		w.markHeld(t.Key, false)
		if ctx.Err() != nil && execErr != nil {
			// Shutdown raced the task: don't report a spurious failure;
			// the lease TTL re-queues it.
			return
		}
		w.tasksExecuted.Add(1)
		var errMsg string
		if execErr != nil {
			w.tasksFailed.Add(1)
			errMsg = execErr.Error()
			w.cfg.Logger.Error("task failed",
				"key", t.Key[:12], "label", t.Label, "trace_id", t.TraceID, "err", execErr)
		}
		// Ship the trace's completed spans home: bulk via bounded
		// /v1/cluster/spans flushes, the final batch on the complete
		// body so the coordinator injects it before resolving the task.
		var tail []tracez.WireSpan
		tsp.End()
		if tsp.Sampled() {
			tail = w.shipSpans(ctx, w.cfg.Tracer.Take(tsp.TraceID()))
		}
		// Completion is best-effort: if it fails, the lease TTL expires
		// and the task re-runs (a cache hit by then).
		if _, err := w.post(ctx, "/v1/cluster/complete",
			CompleteRequest{URL: w.cfg.Self, Key: t.Key, Error: errMsg, Spans: tail}, nil); err != nil {
			w.cfg.Logger.Warn("completion report failed", "key", t.Key[:12], "err", err)
		}
	}
}

// maxSpansPerBatch keeps each shipped span batch comfortably inside
// the coordinator's 1MiB protocol body limit (a wire span is a few
// hundred bytes).
const maxSpansPerBatch = 512

// shipSpans sends all but the final batch of a task's spans through
// POST /v1/cluster/spans and returns the final batch for the caller
// to attach to its complete request — so the last spans land in the
// same round-trip that resolves the task.
func (w *Worker) shipSpans(ctx context.Context, spans []tracez.SpanData) []tracez.WireSpan {
	if len(spans) == 0 {
		return nil
	}
	wire := make([]tracez.WireSpan, len(spans))
	for i, d := range spans {
		wire[i] = d.Wire()
	}
	for len(wire) > maxSpansPerBatch {
		batch := wire[:maxSpansPerBatch]
		wire = wire[maxSpansPerBatch:]
		if _, err := w.post(ctx, "/v1/cluster/spans",
			SpansRequest{URL: w.cfg.Self, Spans: batch}, nil); err != nil {
			w.cfg.Logger.Warn("span flush failed", "spans", len(batch), "err", err)
		} else {
			w.spansShipped.Add(uint64(len(batch)))
		}
	}
	w.spansShipped.Add(uint64(len(wire)))
	return wire
}

// execute runs one leased task. The default executor is a one-task
// sweep against the sharded store: the store's GetOrCompute makes a
// re-run of an already-stored key a cheap hit, checkpoint-prefix
// reuse stays node-local, and the artifact replicates to its owners.
func (w *Worker) execute(ctx context.Context, t Task) error {
	if w.cfg.Execute != nil {
		return w.cfg.Execute(ctx, t)
	}
	// Version-skew guard: the key this node derives for the task's
	// config must match the coordinator's, or the artifact would be
	// stored under a different address than the one the job waits on.
	key, err := runner.CacheKey(t.Config, t.Workload)
	if err != nil {
		return fmt.Errorf("deriving key: %w", err)
	}
	if key != t.Key {
		w.noteEvent(EventVersionSkew, t.Key,
			fmt.Sprintf("local key %s disagrees with coordinator", key[:12]))
		return fmt.Errorf("key mismatch: coordinator %s vs local %s (version skew?)", t.Key[:12], key[:12])
	}
	sweep := runner.NewSweep(w.cfg.SimWorkers)
	sweep.SetCache(w.shard)
	sweep.Sim(t.Config, t.Workload)
	err = sweep.Run(ctx)
	sims, _ := sweep.Stats()
	w.simsComputed.Add(sims)
	return err
}

// Run joins the cluster and executes tasks until ctx is done, then
// sends a best-effort leave.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.join(ctx); err != nil {
		return err
	}
	var wg sync.WaitGroup
	wg.Add(1 + w.cfg.Executors)
	go func() {
		defer wg.Done()
		w.heartbeatLoop(ctx)
	}()
	for i := 0; i < w.cfg.Executors; i++ {
		go func() {
			defer wg.Done()
			w.executorLoop(ctx)
		}()
	}
	wg.Wait()
	// The parent ctx is done; use a short-lived one for the leave.
	lctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	w.post(lctx, "/v1/cluster/leave", LeaveRequest{URL: w.cfg.Self}, nil)
	w.cfg.Logger.Info("worker stopped", "tasks", w.tasksExecuted.Load())
	return nil
}

// WorkerStats is the worker's /metrics counter snapshot.
type WorkerStats struct {
	TasksExecuted uint64        `json:"tasks_executed_total"`
	TasksFailed   uint64        `json:"tasks_failed_total"`
	SimsComputed  uint64        `json:"sims_computed_total"`
	LeasesHeld    int           `json:"leases_held"`
	Members       int           `json:"members"`
	Store         castore.Stats `json:"store"`
}

// Stats snapshots the worker's counters.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	held := len(w.held)
	w.mu.Unlock()
	return WorkerStats{
		TasksExecuted: w.tasksExecuted.Load(),
		TasksFailed:   w.tasksFailed.Load(),
		SimsComputed:  w.simsComputed.Load(),
		LeasesHeld:    held,
		Members:       len(w.Members()),
		Store:         w.shard.Stats(),
	}
}

// MetricsJSON snapshots the worker's counters in the fleet-mergeable
// shape served on /metrics?format=json (the same schema the serve
// layer exports, so the coordinator's aggregator reads both).
func (w *Worker) MetricsJSON() MetricsJSON {
	st := w.Stats()
	return MetricsJSON{
		UptimeSeconds: time.Since(w.start).Seconds(),
		Gauges: map[string]float64{
			"esteem_worker_leases_held": float64(st.LeasesHeld),
			"esteem_worker_members":     float64(st.Members),
		},
		Counters: map[string]uint64{
			"esteem_worker_tasks_executed_total":          st.TasksExecuted,
			"esteem_worker_tasks_failed_total":            st.TasksFailed,
			"esteem_worker_sims_computed_total":           st.SimsComputed,
			"esteem_worker_spans_shipped_total":           w.spansShipped.Load(),
			"esteem_worker_events_dropped_total":          w.eventsDropped.Load(),
			"esteem_worker_store_hits_total":              st.Store.Hits,
			"esteem_worker_store_misses_total":            st.Store.Misses,
			"esteem_worker_shard_remote_hits_total":       st.Store.RemoteHits,
			"esteem_worker_shard_remote_misses_total":     st.Store.RemoteMisses,
			"esteem_worker_shard_repairs_total":           st.Store.Repairs,
			"esteem_worker_shard_remote_puts_total":       st.Store.RemotePuts,
			"esteem_worker_shard_remote_put_errors_total": st.Store.RemotePutErrors,
		},
		Histograms: map[string]HistogramJSON{},
	}
}

// Register mounts the worker's HTTP surface on mux: health, metrics,
// and the shard transport serving this node's local store. Every
// response carries X-Esteem-Node (satellite: attribute results to the
// node that computed them).
func (w *Worker) Register(mux *http.ServeMux) {
	castore.RegisterShard(mux, w.cfg.Local, w.cfg.Self)
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("X-Esteem-Node", w.cfg.Self)
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(rw, "ok\n")
	})
	mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("X-Esteem-Node", w.cfg.Self)
		if r.URL.Query().Get("format") == "json" {
			writeJSON(rw, http.StatusOK, w.MetricsJSON())
			return
		}
		st := w.Stats()
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b bytes.Buffer
		counter := func(name, help string, v uint64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
		}
		gauge := func(name, help string, v int) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
		}
		counter("esteem_worker_tasks_executed_total", "Cluster tasks executed by this worker.", st.TasksExecuted)
		counter("esteem_worker_tasks_failed_total", "Cluster tasks that failed on this worker.", st.TasksFailed)
		counter("esteem_worker_sims_computed_total", "Simulations actually computed (cache hits excluded).", st.SimsComputed)
		counter("esteem_worker_spans_shipped_total", "Completed spans shipped to the coordinator.", w.spansShipped.Load())
		counter("esteem_worker_events_dropped_total", "Journal events dropped from the worker's pending buffer.", w.eventsDropped.Load())
		gauge("esteem_worker_leases_held", "Leases currently held.", st.LeasesHeld)
		gauge("esteem_worker_members", "Cluster members in this worker's placement view.", st.Members)
		counter("esteem_worker_store_hits_total", "Local store hits.", st.Store.Hits)
		counter("esteem_worker_store_misses_total", "Local store misses.", st.Store.Misses)
		counter("esteem_worker_shard_remote_hits_total", "Artifacts fetched from a peer shard.", st.Store.RemoteHits)
		counter("esteem_worker_shard_remote_misses_total", "Peer shard lookups that found nothing.", st.Store.RemoteMisses)
		counter("esteem_worker_shard_repairs_total", "Read-through replication repairs.", st.Store.Repairs)
		counter("esteem_worker_shard_remote_puts_total", "Artifact replications to peer shards.", st.Store.RemotePuts)
		counter("esteem_worker_shard_remote_put_errors_total", "Failed replications to peer shards.", st.Store.RemotePutErrors)
		rw.Write(b.Bytes())
	})
}
