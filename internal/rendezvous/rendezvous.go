// Package rendezvous implements highest-random-weight (HRW, a.k.a.
// rendezvous) hashing: given a key and the set of live cluster
// members, every node independently computes the same ranked list of
// owners without any coordination or shared state beyond the member
// list itself.
//
// Properties the cluster layer relies on (and the tests pin):
//
//   - determinism: the ranking depends only on the (key, member) pairs,
//     never on the order the member list is presented in;
//   - minimal disruption: removing a member only reassigns the keys
//     that member owned — every other key keeps its owners — and adding
//     a member only steals the keys it now wins;
//   - replica distinctness: the top-n owners of a key are n distinct
//     members (as long as the member list has n distinct entries).
//
// The score is an FNV-1a hash of the key and member mixed through the
// splitmix64 finalizer — the same dependency-free mixing the rest of
// the repository uses for deterministic seeding — so any two processes
// compiled from this package agree byte-for-byte.
package rendezvous

import "sort"

// score is the HRW weight of member for key. A separator constant is
// folded between the two strings so ("ab","c") and ("a","bc") cannot
// collide.
func score(key, member string) uint64 {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	h ^= 0x9E3779B97F4A7C15
	h *= 1099511628211
	for i := 0; i < len(member); i++ {
		h ^= uint64(member[i])
		h *= 1099511628211
	}
	// splitmix64 finalizer: full-avalanche mixing so near-identical
	// member strings (":8344" vs ":8345") still rank independently.
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	return h ^ (h >> 31)
}

// Owners returns the top-n members for key in descending HRW order:
// Owners(k, m, n)[0] is the key's primary owner, [1] the first
// replica, and so on. Duplicate member entries are collapsed, ties
// break lexicographically (scores are 64-bit, so ties essentially
// never happen, but the break keeps the function a total order), and
// fewer than n members returns them all. The input slice is not
// modified.
func Owners(key string, members []string, n int) []string {
	if n <= 0 || len(members) == 0 {
		return nil
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]struct{}, len(members))
	for _, m := range members {
		if _, ok := seen[m]; ok {
			continue
		}
		seen[m] = struct{}{}
		uniq = append(uniq, m)
	}
	type ranked struct {
		member string
		score  uint64
	}
	rs := make([]ranked, len(uniq))
	for i, m := range uniq {
		rs[i] = ranked{member: m, score: score(key, m)}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].score != rs[j].score {
			return rs[i].score > rs[j].score
		}
		return rs[i].member < rs[j].member
	})
	if n > len(rs) {
		n = len(rs)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = rs[i].member
	}
	return out
}

// Owner returns the primary owner of key, or "" with no members.
func Owner(key string, members []string) string {
	o := Owners(key, members, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}
