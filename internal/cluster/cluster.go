// Package cluster turns the single-process simulation service into a
// coordinator/worker cluster. One coordinator owns the job DAG and the
// lease table; any number of workers join over HTTP, heartbeat, lease
// tasks, execute them with the shared runner, and publish results into
// the sharded content-addressed store (internal/castore's Sharded
// layer over rendezvous hashing).
//
// The protocol is deliberately minimal — four POSTs and a status GET —
// because content addressing does the heavy lifting:
//
//   - a task IS its content address: the coordinator leases CA keys,
//     and a task is complete exactly when an artifact exists under its
//     key, wherever it lives;
//   - leases carry a TTL and are re-issued when they expire, so a
//     SIGKILLed worker's tasks are re-run by survivors; re-runs are
//     harmless because the simulator is deterministic and writes are
//     first-writer-wins on the content address (identical bytes);
//   - cluster-wide single-flight: the lease table issues at most one
//     active lease per CA key across all workers, tasks submitted by
//     concurrent jobs coalesce onto one table entry, and each worker's
//     local store single-flights within the node.
//
// Worker failure is detected twice over: missed heartbeats expire the
// member (its shard placement migrates immediately — rendezvous
// hashing moves only the dead node's keys) and its outstanding leases
// re-queue without waiting for the per-lease TTL.
package cluster

import (
	"repro/internal/sim"
	"repro/internal/tracez"
)

// Task is one leasable simulation unit: the content address the
// coordinator tracks it under, plus everything a worker needs to run
// it. Config is the effective (pre-seed-derivation) configuration
// exactly as a standalone server would schedule it, so a worker's
// sweep derives the same seed, computes the same key, and writes
// byte-identical artifacts.
type Task struct {
	Key      string     `json:"key"`
	Label    string     `json:"label"`
	Config   sim.Config `json:"config"`
	Workload []string   `json:"workload"`
	// TraceID is the submitting job's trace ID (hex), stamped on every
	// task so worker log lines carry a correlation id even when span
	// shipping is off. Traceparent is the W3C header value of the
	// coordinator-side lease span — the parent the worker's spans join
	// under. Empty means the job's trace is unsampled.
	TraceID     string `json:"trace_id,omitempty"`
	Traceparent string `json:"traceparent,omitempty"`
}

// ---- wire types (all POST bodies and responses are JSON) ----

// JoinRequest registers a worker under its advertised base URL.
type JoinRequest struct {
	URL string `json:"url"`
}

// JoinResponse tells the joiner the cluster's shape and cadence.
type JoinResponse struct {
	// Members is the live member list (coordinator included) the
	// worker should shard over until the next heartbeat updates it.
	Members []string `json:"members"`
	// Replicas is the cluster's shard replication factor; a worker
	// configured differently logs a warning (placement must agree).
	Replicas int `json:"replicas"`
	// LeaseTTLMillis and HeartbeatMillis are the coordinator's lease
	// lifetime and the cadence workers must heartbeat at.
	LeaseTTLMillis  int64 `json:"lease_ttl_ms"`
	HeartbeatMillis int64 `json:"heartbeat_ms"`
}

// HeartbeatRequest refreshes a worker's membership and extends the
// leases it still holds. Events piggybacks worker-observed journal
// events (replica repairs, version-skew rejections) for the
// coordinator to sequence into the cluster journal.
type HeartbeatRequest struct {
	URL    string         `json:"url"`
	Held   []string       `json:"held,omitempty"`
	Events []JournalEvent `json:"events,omitempty"`
}

// HeartbeatResponse carries the current live member list.
type HeartbeatResponse struct {
	Members []string `json:"members"`
}

// LeaseRequest asks for one task, long-polling up to WaitMillis when
// the queue is empty.
type LeaseRequest struct {
	URL        string `json:"url"`
	WaitMillis int64  `json:"wait_ms,omitempty"`
}

// LeaseResponse grants one task for TTLMillis. An empty grant (no
// task before the wait expired) is signalled by HTTP 204, not a body.
type LeaseResponse struct {
	Task      Task  `json:"task"`
	TTLMillis int64 `json:"ttl_ms"`
}

// CompleteRequest reports a leased task's outcome. An empty Error
// means the artifact is stored and the task is done. Spans carries
// the final batch of the task's completed spans (earlier batches of a
// large trace flush through POST /v1/cluster/spans); the coordinator
// injects them into its tracer before resolving the task, so a job
// that observes completion can rely on its merged trace being whole.
type CompleteRequest struct {
	URL   string            `json:"url"`
	Key   string            `json:"key"`
	Error string            `json:"error,omitempty"`
	Spans []tracez.WireSpan `json:"spans,omitempty"`
}

// SpansRequest is a bounded mid-task span flush (POST
// /v1/cluster/spans): workers chunk large span sets so no single
// protocol body exceeds the coordinator's request limit.
type SpansRequest struct {
	URL   string            `json:"url"`
	Spans []tracez.WireSpan `json:"spans"`
}

// LeaveRequest deregisters a worker (graceful drain); its leases
// re-queue immediately.
type LeaveRequest struct {
	URL string `json:"url"`
}

// ---- status view ----

// WorkerView is one worker row of GET /v1/cluster/status.
type WorkerView struct {
	URL           string `json:"url"`
	LastSeenMilli int64  `json:"last_seen_ms_ago"`
	Held          int    `json:"held_leases"`
}

// StatusView is the JSON shape of GET /v1/cluster/status.
type StatusView struct {
	Self     string       `json:"self"`
	Replicas int          `json:"replicas"`
	Workers  []WorkerView `json:"workers"`
	Tasks    struct {
		Pending int `json:"pending"`
		Leased  int `json:"leased"`
		Done    int `json:"done"`
		Failed  int `json:"failed"`
	} `json:"tasks"`
	Counters Stats `json:"counters"`
}

// Stats is the coordinator's counter snapshot (exported on /metrics).
type Stats struct {
	WorkersLive       int    `json:"workers_live"`
	LeasesOutstanding int    `json:"leases_outstanding"`
	TasksPending      int    `json:"tasks_pending"`
	WorkersJoined     uint64 `json:"workers_joined_total"`
	WorkersExpired    uint64 `json:"workers_expired_total"`
	LeasesIssued      uint64 `json:"leases_issued_total"`
	LeasesExpired     uint64 `json:"leases_expired_total"`
	LeasesReissued    uint64 `json:"leases_reissued_total"`
	TasksSubmitted    uint64 `json:"tasks_submitted_total"`
	TasksCompleted    uint64 `json:"tasks_completed_total"`
	TasksFailed       uint64 `json:"tasks_failed_total"`
	SpansInjected     uint64 `json:"spans_injected_total"`
	SpansDropped      uint64 `json:"spans_dropped_total"`
}
