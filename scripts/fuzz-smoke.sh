#!/bin/sh
# fuzz-smoke.sh — run every native fuzz target for a short, CI-sized
# budget (default 20s each; override with FUZZTIME=...). Targets are
# auto-discovered, so new Fuzz* functions join the smoke automatically.
# A long-budget variant runs nightly (.github/workflows/nightly-fuzz.yml).
set -eu
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-20s}"

fail=0
for pkg in $(go list ./...); do
    targets=$(go test "$pkg" -list '^Fuzz' 2>/dev/null | grep '^Fuzz' || true)
    [ -z "$targets" ] && continue
    for t in $targets; do
        echo "== $pkg $t (fuzztime $FUZZTIME) =="
        if ! go test "$pkg" -run '^$' -fuzz "^${t}\$" -fuzztime "$FUZZTIME"; then
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "== FUZZ FAILURES (crashers written to the package testdata/fuzz dirs) =="
    exit 1
fi
echo "== OK =="
