package runner

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/castore"
	"repro/internal/sim"
)

// runCheckpointed runs one job through a fresh sweep wired to store
// with the given checkpoint stride (0 = the default) and returns its
// live-or-reconstructed result.
func runCheckpointed(t *testing.T, store *castore.Store, cfg sim.Config, wl []string, stride int) *sim.Result {
	t.Helper()
	s := NewSweep(1)
	s.SetCache(store)
	if stride != 0 {
		s.SetCheckpointInterval(stride)
	}
	j := s.Sim(cfg, wl)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return j.Result()
}

// TestSweepCheckpointHorizonExtension is the end-to-end contract of
// the prefix-checkpoint layer: submit a job, then re-submit it with a
// longer measured horizon against the same store. The second job must
// resume from a stored prefix checkpoint (simulating only the suffix)
// and still persist an artifact byte-identical to a cold run of the
// long horizon on a fresh store.
func TestSweepCheckpointHorizonExtension(t *testing.T) {
	wl := []string{"gcc"}
	short := miniCfg(sim.Esteem)
	short.LogIntervals = true
	long := short
	long.MeasureInstr = 360_000

	warmStore, err := castore.Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	runCheckpointed(t, warmStore, short, wl, 1)
	base, err := castore.CheckpointBaseKey(deriveCfg(short, wl), wl)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := warmStore.Checkpoints(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2 {
		t.Fatalf("short run stored %d checkpoints, want the seam plus measured boundaries", len(entries))
	}
	if st := warmStore.Stats(); st.PrefixHits != 0 {
		t.Fatalf("short run claims a prefix hit on an empty store: %+v", st)
	}

	resumed := runCheckpointed(t, warmStore, long, wl, 1)
	st := warmStore.Stats()
	if st.PrefixHits != 1 {
		t.Fatalf("horizon extension: %d prefix hits, want 1 (stats %+v)", st.PrefixHits, st)
	}
	if st.PrefixSavedInstr == 0 {
		t.Fatal("horizon extension resumed from the seam only; expected a measured prefix")
	}

	coldStore, err := castore.Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	cold := runCheckpointed(t, coldStore, long, wl, 1)
	if !reflect.DeepEqual(resumed, cold) {
		t.Fatal("resumed long-horizon result differs from the cold run")
	}

	key, err := CacheKey(long, wl)
	if err != nil {
		t.Fatal(err)
	}
	warmArt, ok, err := warmStore.Get(key)
	if err != nil || !ok {
		t.Fatalf("resumed artifact missing: ok=%v err=%v", ok, err)
	}
	coldArt, ok, err := coldStore.Get(key)
	if err != nil || !ok {
		t.Fatalf("cold artifact missing: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(warmArt, coldArt) {
		t.Fatal("resumed artifact is not byte-identical to the cold run's")
	}
}

// TestSweepCheckpointDefaultStrideAndDisable pins SetCheckpointInterval
// semantics: unset means checkpoints are saved (the seam at least),
// and a non-positive stride disables the layer entirely.
func TestSweepCheckpointDefaultStrideAndDisable(t *testing.T) {
	wl := []string{"lbm"}
	cfg := miniCfg(sim.RPV)

	defStore, err := castore.Open("", 8)
	if err != nil {
		t.Fatal(err)
	}
	runCheckpointed(t, defStore, cfg, wl, 0)
	base, err := castore.CheckpointBaseKey(deriveCfg(cfg, wl), wl)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := defStore.Checkpoints(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("default stride stored no checkpoints")
	}
	for _, e := range entries {
		if e.Seq != 0 && e.Seq%defaultCheckpointStride != 0 {
			t.Fatalf("default stride stored off-stride checkpoint seq %d", e.Seq)
		}
	}

	offStore, err := castore.Open("", 8)
	if err != nil {
		t.Fatal(err)
	}
	runCheckpointed(t, offStore, cfg, wl, -1)
	entries, err = offStore.Checkpoints(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("disabled checkpointing still stored %d checkpoints", len(entries))
	}
	if st := offStore.Stats(); st.PrefixHits != 0 || st.PrefixMisses != 0 {
		t.Fatalf("disabled checkpointing still probed the store: %+v", st)
	}
}
