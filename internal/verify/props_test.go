package verify

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/edram"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// TestPropDoublingWaysNeverDecreasesHits is the LRU inclusion
// property: with the set count held fixed, a cache with 2A ways
// contains everything an A-way cache holds at every point of any pure
// access trace, so its hit count can never be lower.
func TestPropDoublingWaysNeverDecreasesHits(t *testing.T) {
	shapes := []struct {
		sets, assoc, line int
	}{
		{64, 2, 64}, {64, 4, 64}, {128, 4, 32}, {32, 8, 64}, {256, 1, 64},
	}
	for _, sh := range shapes {
		small := cache.Params{
			Name: "small", SizeBytes: sh.sets * sh.assoc * sh.line,
			Assoc: sh.assoc, LineBytes: sh.line, Modules: 1, Banks: 1,
		}
		big := small
		big.Name = "big"
		big.SizeBytes *= 2
		big.Assoc *= 2
		cs, err := cache.New(small)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := cache.New(big)
		if err != nil {
			t.Fatal(err)
		}
		if cs.NumSets() != cb.NumSets() {
			t.Fatalf("set counts differ: %d vs %d", cs.NumSets(), cb.NumSets())
		}
		rng := xrand.New(uint64(0xA5A5 + sh.sets*31 + sh.assoc))
		lineSpan := uint64(3 * sh.sets * sh.assoc)
		for i := 0; i < 30_000; i++ {
			addr := cache.Addr(rng.Uint64n(lineSpan) * uint64(sh.line))
			write := rng.Intn(4) == 0
			cs.Access(addr, write)
			cb.Access(addr, write)
			if cb.TotalCounters().Hits < cs.TotalCounters().Hits {
				t.Fatalf("sets=%d assoc=%d: after %d accesses, %d-way hits %d < %d-way hits %d",
					sh.sets, sh.assoc, i+1, big.Assoc, cb.TotalCounters().Hits,
					small.Assoc, cs.TotalCounters().Hits)
			}
		}
	}
}

// TestPropValidOnlyRefreshesAtMostRefreshAll replays one schedule
// through two identical caches, one refreshed by the periodic-all
// baseline and one by the valid-line-only policy, and asserts the
// valid-only refresh count (and hence refresh energy, which is linear
// in it) never exceeds the baseline's.
func TestPropValidOnlyRefreshesAtMostRefreshAll(t *testing.T) {
	p := cache.Params{
		Name: "vo", SizeBytes: 64 * 4 * 64, Assoc: 4, LineBytes: 64,
		Modules: 2, SamplingRatio: 8, Banks: 2,
	}
	const retention = 8_000
	ca, err := cache.New(p)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := cache.New(p)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := edram.NewEngine(edram.Params{RetentionCycles: retention, Banks: p.Banks}, edram.NewRefreshAll(ca))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := edram.NewEngine(edram.Params{RetentionCycles: retention, Banks: p.Banks}, edram.NewValidOnly(cv))
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(0x7A11D)
	ops := RandomOps(rng, p, 6_000, retention)
	var cycle uint64
	for i, op := range ops {
		switch op.Kind {
		case OpAdvance:
			cycle += op.Delta
			ea.AdvanceTo(cycle)
			ev.AdvanceTo(cycle)
		case OpRead, OpWrite:
			ca.Access(op.Addr, op.Kind == OpWrite)
			cv.Access(op.Addr, op.Kind == OpWrite)
		case OpReconfigure:
			ca.SetActiveWays(op.Module, op.Ways)
			cv.SetActiveWays(op.Module, op.Ways)
		case OpInvalidateLine:
			ca.InvalidateLine(op.Set, op.Way)
			cv.InvalidateLine(op.Set, op.Way)
		case OpInvalidateAll:
			ca.InvalidateAll()
			cv.InvalidateAll()
		}
		if ev.TotalRefreshed() > ea.TotalRefreshed() {
			t.Fatalf("op %d: valid-only refreshed %d > refresh-all %d",
				i, ev.TotalRefreshed(), ea.TotalRefreshed())
		}
	}
	if ea.TotalRefreshed() == 0 {
		t.Fatal("schedule never advanced past a refresh window")
	}
}

// TestPropLeaderHistogramMatchesFullTrace drives every set with the
// identical tag sequence, so per-set behaviour is uniform and the ATD
// leader-set histogram, scaled by the sampling ratio, must equal the
// histogram a fully profiled (SamplingRatio=1) cache collects over the
// whole trace — the exactness behind the paper's set-sampling claim.
func TestPropLeaderHistogramMatchesFullTrace(t *testing.T) {
	const rs = 8
	sampled := cache.Params{
		Name: "sampled", SizeBytes: 64 * 4 * 64, Assoc: 4, LineBytes: 64,
		Modules: 2, SamplingRatio: rs, Banks: 2,
	}
	full := sampled
	full.Name = "full"
	full.SamplingRatio = 1
	cs, err := cache.New(sampled)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := cache.New(full)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(0xA7D)
	numSets := cs.NumSets()
	// A small tag pool revisited repeatedly produces hits across all
	// stack positions.
	for i := 0; i < 400; i++ {
		tag := rng.Uint64n(uint64(sampled.Assoc) + 2)
		for s := 0; s < numSets; s++ {
			addr := cache.Addr((tag*uint64(numSets) + uint64(s)) * uint64(sampled.LineBytes))
			cs.Access(addr, false)
			cf.Access(addr, false)
		}
	}
	for m := 0; m < sampled.Modules; m++ {
		hs, hf := cs.HitPositions(m), cf.HitPositions(m)
		for pos := range hs {
			if hs[pos]*rs != hf[pos] {
				t.Fatalf("module %d pos %d: leader count %d × %d != full count %d",
					m, pos, hs[pos], rs, hf[pos])
			}
		}
	}
}

// TestPropSweepByteIdenticalAcrossJobCounts runs the same small sweep
// under several worker-pool widths and asserts the canonical JSON of
// every result is byte-identical — scheduling must not leak into
// simulation outcomes.
func TestPropSweepByteIdenticalAcrossJobCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-sweep determinism check is not short")
	}
	configs := []sim.Technique{sim.Baseline, sim.Esteem, sim.RPV}
	workloads := [][]string{{"gcc"}, {"mcf"}}
	run := func(workers int) [][]byte {
		s := runner.NewSweep(workers)
		var jobs []*runner.SimJob
		for _, tech := range configs {
			for _, wl := range workloads {
				cfg := shortConfig(tech)
				cfg.MeasureInstr = 200_000
				jobs = append(jobs, s.Sim(cfg, wl))
			}
		}
		if err := s.Run(context.Background()); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var out [][]byte
		for _, j := range jobs {
			b, err := obs.MarshalCanonical(j.Result())
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, b)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 3, 5, 8} {
		got := run(workers)
		for i := range want {
			if !bytes.Equal(want[i], got[i]) {
				t.Fatalf("workers=%d job %d: result differs from workers=1", workers, i)
			}
		}
	}
}
