// Latency histograms for /metrics: a minimal fixed-bucket Prometheus
// histogram (cumulative _bucket series, _sum, _count) with no labels
// and no dependencies, matching the text exposition format the rest
// of handleMetrics emits.
package serve

import (
	"fmt"
	"io"
	"strconv"
	"sync"
)

// latencyBuckets are the shared upper bounds (seconds) for every
// serve-side latency histogram: 1ms to 60s, roughly geometric.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// histogram is a concurrency-safe fixed-bucket histogram.
type histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds; +Inf is implicit
	counts []uint64  // len(bounds)+1; last is the overflow bucket
	sum    float64
	count  uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// observe records one value (seconds).
func (h *histogram) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// write emits the histogram in Prometheus text format. Bucket counts
// are cumulative, as the format requires.
func (h *histogram) write(w io.Writer, name, help string) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, b := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	cum += counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, sum)
	fmt.Fprintf(w, "%s_count %d\n", name, count)
}
