package obs

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// canonicalDigits is the significant-digit budget for floats in
// canonical JSON. 12 digits keep every physically meaningful digit of
// the energy model while absorbing last-ulp differences from
// compiler-dependent floating-point contraction (e.g. FMA fusing on
// arm64), so golden files diff cleanly across toolchains.
const canonicalDigits = 12

// MarshalCanonical renders v as deterministic, diff-friendly JSON:
// two-space indented, map keys sorted (encoding/json's default), and
// every float rounded to canonicalDigits significant digits. Golden
// files and run artifacts are written with it so that any change in
// simulated behaviour shows up as a reviewable textual diff.
func MarshalCanonical(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var tree any
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	if err := dec.Decode(&tree); err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(canonicalize(tree), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// canonicalize walks a decoded JSON tree rounding numeric leaves.
func canonicalize(v any) any {
	switch t := v.(type) {
	case map[string]any:
		for k, e := range t {
			t[k] = canonicalize(e)
		}
		return t
	case []any:
		for i, e := range t {
			t[i] = canonicalize(e)
		}
		return t
	case json.Number:
		return roundNumber(t)
	default:
		return v
	}
}

// roundNumber rounds a JSON number to canonicalDigits significant
// digits, leaving integers (no '.', 'e') untouched so counters stay
// exact.
func roundNumber(n json.Number) json.Number {
	s := n.String()
	if !bytes.ContainsAny([]byte(s), ".eE") {
		return n
	}
	f, err := n.Float64()
	if err != nil || math.IsInf(f, 0) || math.IsNaN(f) {
		return n
	}
	return json.Number(strconv.FormatFloat(f, 'g', canonicalDigits, 64))
}

// WriteIntervalsJSON writes the intervals as one canonical JSON array.
func WriteIntervalsJSON(w io.Writer, ivs []Interval) error {
	b, err := MarshalCanonical(ivs)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// intervalCSVHeader lists the CSV columns, in emission order.
var intervalCSVHeader = []string{
	"index", "measuring", "end_cycle", "cycles", "active_ratio",
	"l2_hits", "l2_write_hits", "l2_misses", "l2_writebacks", "l2_fills",
	"refreshes", "bank_busy_cycles", "skipped_refreshes", "invalidations",
	"mm_reads", "mm_writebacks", "mm_queue_stall_cycles",
	"mm_writebuf_stall_cycles", "mm_writebuf_peak", "mm_channel_busy_cycles",
	"lines_transitioned", "reconfig_writebacks", "energy_total_j",
}

// WriteIntervalsCSV writes the intervals as CSV with a header row.
// ActiveWays and the energy components are JSON-only (CSV keeps the
// scalar time-series; use the JSON artifact for full fidelity).
func WriteIntervalsCSV(w io.Writer, ivs []Interval) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(intervalCSVHeader); err != nil {
		return err
	}
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, iv := range ivs {
		rec := []string{
			strconv.Itoa(iv.Index),
			strconv.FormatBool(iv.Measuring),
			u(iv.EndCycle), u(iv.Cycles),
			strconv.FormatFloat(iv.ActiveRatio, 'g', canonicalDigits, 64),
			u(iv.L2Hits), u(iv.L2WriteHits), u(iv.L2Misses), u(iv.L2Writebacks), u(iv.L2Fills),
			u(iv.Refreshes), u(iv.BankBusyCycles),
			u(iv.Policy.SkippedRefreshes), u(iv.Policy.Invalidations),
			u(iv.MMReads), u(iv.MMWritebacks), u(iv.MMQueueStallCycles),
			u(iv.MMWriteBufStallCycles), strconv.Itoa(iv.MMWriteBufPeak),
			strconv.FormatFloat(iv.MMChannelBusyCycles, 'g', canonicalDigits, 64),
			u(iv.LinesTransitioned), u(iv.ReconfigWritebacks),
			strconv.FormatFloat(iv.Energy.TotalJ, 'g', canonicalDigits, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParseIntervalsCSV reads a WriteIntervalsCSV stream back. It is the
// round-trip counterpart used by tests and downstream tooling; fields
// absent from the CSV (ActiveWays, energy components) come back zero.
func ParseIntervalsCSV(r io.Reader) ([]Interval, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("obs: empty CSV")
	}
	if len(rows[0]) != len(intervalCSVHeader) {
		return nil, fmt.Errorf("obs: CSV has %d columns, want %d", len(rows[0]), len(intervalCSVHeader))
	}
	var out []Interval
	for _, rec := range rows[1:] {
		var iv Interval
		var err error
		pu := func(s string) uint64 {
			v, e := strconv.ParseUint(s, 10, 64)
			if e != nil && err == nil {
				err = e
			}
			return v
		}
		pf := func(s string) float64 {
			v, e := strconv.ParseFloat(s, 64)
			if e != nil && err == nil {
				err = e
			}
			return v
		}
		iv.Index = int(pu(rec[0]))
		iv.Measuring = rec[1] == "true"
		iv.EndCycle, iv.Cycles = pu(rec[2]), pu(rec[3])
		iv.ActiveRatio = pf(rec[4])
		iv.L2Hits, iv.L2WriteHits = pu(rec[5]), pu(rec[6])
		iv.L2Misses, iv.L2Writebacks, iv.L2Fills = pu(rec[7]), pu(rec[8]), pu(rec[9])
		iv.Refreshes, iv.BankBusyCycles = pu(rec[10]), pu(rec[11])
		iv.Policy.SkippedRefreshes, iv.Policy.Invalidations = pu(rec[12]), pu(rec[13])
		iv.MMReads, iv.MMWritebacks = pu(rec[14]), pu(rec[15])
		iv.MMQueueStallCycles, iv.MMWriteBufStallCycles = pu(rec[16]), pu(rec[17])
		iv.MMWriteBufPeak = int(pu(rec[18]))
		iv.MMChannelBusyCycles = pf(rec[19])
		iv.LinesTransitioned, iv.ReconfigWritebacks = pu(rec[20]), pu(rec[21])
		iv.Energy.TotalJ = pf(rec[22])
		if err != nil {
			return nil, fmt.Errorf("obs: parsing CSV row %d: %w", iv.Index, err)
		}
		out = append(out, iv)
	}
	return out, nil
}
