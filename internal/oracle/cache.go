// Package oracle holds deliberately naive reference models of the
// optimised structures in internal/cache, internal/edram,
// internal/refrint, internal/smartref and internal/energy. Each model
// re-derives the paper's semantics from scratch — linear scans,
// per-call recomputation, no incremental counters, no precomputed
// tables — so the differential harness in internal/verify can replay
// identical schedules through an oracle and the production
// implementation and assert state equivalence after every operation.
//
// The models are intentionally slow (O(S·A) where the production code
// is O(1)); they exist only for verification and must never be used on
// a simulation hot path.
package oracle

import (
	"fmt"

	"repro/internal/cache"
)

// Line is one cache frame's state in the reference model.
type Line struct {
	Tag   uint64
	Valid bool
	Dirty bool
}

// Cache is the reference set-associative LRU cache. It reuses
// cache.Params, cache.Counters and cache.AccessResult as its interface
// types so differential tests compare values directly, but shares no
// code with the production implementation: indices are derived with
// division instead of shifts, per-set occupancy is recomputed by full
// scans, and the recency stack is an explicit way list walked linearly.
type Cache struct {
	p       cache.Params
	numSets int
	// lines[set][way] is the frame state.
	lines [][]Line
	// order[set] lists way indices from MRU to LRU. All ways —
	// including disabled ones — stay in the list, as in the production
	// cache.
	order [][]int
	// active[m] is the powered-on way count of module m.
	active []int
	// hitPos[m][pos] counts leader-set hits at each recency position
	// since the last ResetInterval.
	hitPos [][]uint64

	// wear[set][way] counts writes charged to the physical frame
	// (walk-every-line ReRAM reference); nil unless p.TrackWear.
	wear [][]uint64
	// setWrites[set] drives the wear-levelling trigger; nil unless
	// p.WearLevelPeriod > 0.
	setWrites []uint64
	// wearSwaps counts wear-levelling remaps performed.
	wearSwaps uint64

	total    cache.Counters
	interval cache.Counters

	observer cache.Observer
}

// NewCache validates p by constructing a production cache (the two
// must accept exactly the same parameter space) and builds the
// reference model.
func NewCache(p cache.Params) (*Cache, error) {
	if _, err := cache.New(p); err != nil {
		return nil, err
	}
	numSets := p.SizeBytes / (p.LineBytes * p.Assoc)
	c := &Cache{
		p:       p,
		numSets: numSets,
		lines:   make([][]Line, numSets),
		order:   make([][]int, numSets),
		active:  make([]int, p.Modules),
		hitPos:  make([][]uint64, p.Modules),
	}
	for s := range c.lines {
		c.lines[s] = make([]Line, p.Assoc)
		c.order[s] = make([]int, p.Assoc)
		for w := range c.order[s] {
			c.order[s][w] = w
		}
	}
	for m := range c.active {
		c.active[m] = p.Assoc
		c.hitPos[m] = make([]uint64, p.Assoc)
	}
	if p.TrackWear {
		c.wear = make([][]uint64, numSets)
		for s := range c.wear {
			c.wear[s] = make([]uint64, p.Assoc)
		}
		if p.WearLevelPeriod > 0 {
			c.setWrites = make([]uint64, numSets)
		}
	}
	return c, nil
}

// MustNewCache is NewCache but panics on error.
func MustNewCache(p cache.Params) *Cache {
	c, err := NewCache(p)
	if err != nil {
		panic(err)
	}
	return c
}

// SetObserver installs a line lifecycle observer (reference refresh
// policies use it exactly as the production ones do).
func (c *Cache) SetObserver(o cache.Observer) { c.observer = o }

// Params returns the construction parameters.
func (c *Cache) Params() cache.Params { return c.p }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

// SetIndex maps an address to its set using plain integer division
// (the production cache uses shift/mask; for power-of-two geometry the
// two must agree).
func (c *Cache) SetIndex(a cache.Addr) int {
	return int((uint64(a) / uint64(c.p.LineBytes)) % uint64(c.numSets))
}

// tagOf extracts the tag by division.
func (c *Cache) tagOf(a cache.Addr) uint64 {
	return uint64(a) / uint64(c.p.LineBytes) / uint64(c.numSets)
}

// lineAddr reconstructs a line's base address from (set, tag).
func (c *Cache) lineAddr(set int, tag uint64) cache.Addr {
	return cache.Addr((tag*uint64(c.numSets) + uint64(set)) * uint64(c.p.LineBytes))
}

// ModuleOf recomputes a set's module by division.
func (c *Cache) ModuleOf(set int) int { return set / (c.numSets / c.p.Modules) }

// BankOf recomputes a set's bank.
func (c *Cache) BankOf(set int) int { return set % c.p.Banks }

// IsLeader recomputes leadership from the sampling ratio.
func (c *Cache) IsLeader(set int) bool {
	return c.p.SamplingRatio > 0 && set%c.p.SamplingRatio == 0
}

// waysFor returns the number of active ways for a set.
func (c *Cache) waysFor(set int) int {
	if c.IsLeader(set) {
		return c.p.Assoc
	}
	return c.active[c.ModuleOf(set)]
}

// ActiveWays returns the configured way count of module m.
func (c *Cache) ActiveWays(m int) int { return c.active[m] }

// Access performs one read or write, mirroring the production cache's
// semantics: probe the recency stack skipping disabled ways; on a miss
// prefer the lowest-numbered invalid active way, else evict the LRU
// active way.
func (c *Cache) Access(addr cache.Addr, write bool) cache.AccessResult {
	set := c.SetIndex(addr)
	tag := c.tagOf(addr)
	nActive := c.waysFor(set)
	res := cache.AccessResult{
		Set:    set,
		Bank:   c.BankOf(set),
		Module: c.ModuleOf(set),
		Leader: c.IsLeader(set),
		LRUPos: -1,
	}

	for pos, w := range c.order[set] {
		if w >= nActive {
			continue
		}
		ln := &c.lines[set][w]
		if ln.Valid && ln.Tag == tag {
			res.Hit = true
			res.Way = w
			res.LRUPos = pos
			if write {
				ln.Dirty = true
			}
			c.promote(set, pos)
			c.total.Hits++
			c.interval.Hits++
			if res.Leader {
				c.hitPos[res.Module][pos]++
			}
			if c.observer != nil {
				c.observer.OnTouch(set, w)
			}
			if write {
				c.total.WriteHits++
				c.interval.WriteHits++
				c.recordWrite(set, w)
			}
			return res
		}
	}

	c.total.Misses++
	c.interval.Misses++
	victimPos := -1
	// Lowest-numbered invalid active way, if any.
	for w := 0; w < nActive; w++ {
		if !c.lines[set][w].Valid {
			for pos, ow := range c.order[set] {
				if ow == w {
					victimPos = pos
				}
			}
			break
		}
	}
	if victimPos < 0 {
		// LRU active way.
		for pos := c.p.Assoc - 1; pos >= 0; pos-- {
			if c.order[set][pos] < nActive {
				victimPos = pos
				break
			}
		}
	}
	if victimPos < 0 {
		panic(fmt.Sprintf("oracle: set %d has zero active ways", set))
	}
	w := c.order[set][victimPos]
	ln := &c.lines[set][w]
	if ln.Valid {
		if ln.Dirty {
			res.WritebackVictim = true
			res.VictimAddr = c.lineAddr(set, ln.Tag)
			c.total.Writebacks++
			c.interval.Writebacks++
		}
		if c.observer != nil {
			c.observer.OnInvalidate(set, w)
		}
	}
	ln.Tag = tag
	ln.Valid = true
	ln.Dirty = write
	c.total.Fills++
	c.interval.Fills++
	res.Way = w
	c.promote(set, victimPos)
	if c.observer != nil {
		c.observer.OnTouch(set, w)
	}
	// A fill writes the frame regardless of the access direction.
	c.recordWrite(set, w)
	return res
}

// recordWrite charges one write to the frame and, every
// WearLevelPeriod-th write to the set, performs the naive
// wear-levelling remap: walk every active way for the most- and
// least-worn frames (lowest way on ties) and swap their logical
// contents. Wear stays with the physical frames; only the mapping of
// lines onto frames changes.
func (c *Cache) recordWrite(set, way int) {
	if c.wear == nil {
		return
	}
	c.wear[set][way]++
	if c.setWrites == nil {
		return
	}
	c.setWrites[set]++
	if c.setWrites[set]%uint64(c.p.WearLevelPeriod) != 0 {
		return
	}
	nActive := c.waysFor(set)
	maxW, minW := 0, 0
	for w := 1; w < nActive; w++ {
		if c.wear[set][w] > c.wear[set][maxW] {
			maxW = w
		}
		if c.wear[set][w] < c.wear[set][minW] {
			minW = w
		}
	}
	if maxW == minW {
		return
	}
	c.lines[set][maxW], c.lines[set][minW] = c.lines[set][minW], c.lines[set][maxW]
	for i, w := range c.order[set] {
		switch w {
		case maxW:
			c.order[set][i] = minW
		case minW:
			c.order[set][i] = maxW
		}
	}
	c.wearSwaps++
}

// promote moves the way at stack position pos to MRU by rebuilding the
// list (the production cache shifts in place).
func (c *Cache) promote(set, pos int) {
	w := c.order[set][pos]
	rebuilt := make([]int, 0, c.p.Assoc)
	rebuilt = append(rebuilt, w)
	for i, ow := range c.order[set] {
		if i != pos {
			rebuilt = append(rebuilt, ow)
		}
	}
	c.order[set] = rebuilt
}

// Probe reports presence in an active way without touching state.
func (c *Cache) Probe(addr cache.Addr) bool {
	set := c.SetIndex(addr)
	tag := c.tagOf(addr)
	nActive := c.waysFor(set)
	for _, w := range c.order[set] {
		if w >= nActive {
			continue
		}
		if c.lines[set][w].Valid && c.lines[set][w].Tag == tag {
			return true
		}
	}
	return false
}

// SetActiveWays reconfigures module m to n active ways, flushing the
// disabled ways of every follower set on a shrink.
func (c *Cache) SetActiveWays(m, n int) (invalidated, writebacks int) {
	if m < 0 || m >= c.p.Modules {
		panic(fmt.Sprintf("oracle: module %d out of range", m))
	}
	if n < 1 || n > c.p.Assoc {
		panic(fmt.Sprintf("oracle: active ways %d out of range [1,%d]", n, c.p.Assoc))
	}
	old := c.active[m]
	c.active[m] = n
	if n >= old {
		return 0, 0
	}
	spm := c.numSets / c.p.Modules
	for set := m * spm; set < (m+1)*spm; set++ {
		if c.IsLeader(set) {
			continue
		}
		for w := n; w < old; w++ {
			ln := &c.lines[set][w]
			if !ln.Valid {
				continue
			}
			if ln.Dirty {
				writebacks++
				c.total.Writebacks++
				c.interval.Writebacks++
			}
			ln.Valid = false
			ln.Dirty = false
			invalidated++
			if c.observer != nil {
				c.observer.OnInvalidate(set, w)
			}
		}
	}
	return invalidated, writebacks
}

// ActiveFraction recomputes F_A by walking every set.
func (c *Cache) ActiveFraction() float64 {
	activeLines := 0
	for set := 0; set < c.numSets; set++ {
		activeLines += c.waysFor(set)
	}
	return float64(activeLines) / float64(c.numSets*c.p.Assoc)
}

// ValidByBank recomputes the valid-line count of bank b by scanning
// every frame.
func (c *Cache) ValidByBank(b int) int {
	n := 0
	for set := 0; set < c.numSets; set++ {
		if c.BankOf(set) != b {
			continue
		}
		for w := range c.lines[set] {
			if c.lines[set][w].Valid {
				n++
			}
		}
	}
	return n
}

// ValidLines recomputes the total valid-line count by scanning.
func (c *Cache) ValidLines() int {
	n := 0
	for b := 0; b < c.p.Banks; b++ {
		n += c.ValidByBank(b)
	}
	return n
}

// LineState reports a frame's valid/dirty state.
func (c *Cache) LineState(set, way int) (valid, dirty bool) {
	ln := &c.lines[set][way]
	return ln.Valid, ln.Dirty
}

// Order returns the recency stack (MRU first) of a set. The slice
// aliases internal state.
func (c *Cache) Order(set int) []int { return c.order[set] }

// Lines returns the frames of a set. The slice aliases internal state.
func (c *Cache) Lines(set int) []Line { return c.lines[set] }

// WearCounters flattens the per-frame wear counters into the
// production cache's set-major layout for direct comparison; nil
// unless TrackWear.
func (c *Cache) WearCounters() []uint64 {
	if c.wear == nil {
		return nil
	}
	out := make([]uint64, 0, c.numSets*c.p.Assoc)
	for set := range c.wear {
		out = append(out, c.wear[set]...)
	}
	return out
}

// WearLevelSwaps returns the number of wear-levelling remaps
// performed since construction.
func (c *Cache) WearLevelSwaps() uint64 { return c.wearSwaps }

// HitPositions returns the leader-set histogram of module m.
func (c *Cache) HitPositions(m int) []uint64 { return c.hitPos[m] }

// TotalCounters returns statistics since construction.
func (c *Cache) TotalCounters() cache.Counters { return c.total }

// IntervalCounters returns statistics since the last ResetInterval.
func (c *Cache) IntervalCounters() cache.Counters { return c.interval }

// ResetInterval clears interval counters and histograms.
func (c *Cache) ResetInterval() {
	c.interval = cache.Counters{}
	for m := range c.hitPos {
		for i := range c.hitPos[m] {
			c.hitPos[m][i] = 0
		}
	}
}

// InvalidateAll drops every line, counting dirty writebacks.
func (c *Cache) InvalidateAll() (writebacks int) {
	for set := 0; set < c.numSets; set++ {
		for w := range c.lines[set] {
			ln := &c.lines[set][w]
			if !ln.Valid {
				continue
			}
			if ln.Dirty {
				writebacks++
				c.total.Writebacks++
				c.interval.Writebacks++
			}
			ln.Valid = false
			ln.Dirty = false
			if c.observer != nil {
				c.observer.OnInvalidate(set, w)
			}
		}
	}
	return writebacks
}

// InvalidateLine invalidates one frame if valid, reporting whether it
// was dirty.
func (c *Cache) InvalidateLine(set, way int) (wasValid, wasDirty bool) {
	ln := &c.lines[set][way]
	if !ln.Valid {
		return false, false
	}
	wasDirty = ln.Dirty
	if wasDirty {
		c.total.Writebacks++
		c.interval.Writebacks++
	}
	ln.Valid = false
	ln.Dirty = false
	if c.observer != nil {
		c.observer.OnInvalidate(set, way)
	}
	return true, wasDirty
}
