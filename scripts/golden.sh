#!/bin/sh
# golden.sh — the behavioral-drift gate. The canonical quick-run JSON
# outputs live under results/golden/; this script re-runs the same
# experiments and diffs the machine-readable outputs byte for byte.
#
#   scripts/golden.sh          # check (CI mode): fail on any drift
#   scripts/golden.sh update   # regenerate results/golden/ in place
#
# The golden set is deliberately small but broad: table2 exercises the
# energy model alone, fig3 the full single-core simulation pipeline
# (baseline, RPV, ESTEEM over the quick workload subset), and ablation
# every other refresh policy. Floats in the JSON are canonicalized to
# 12 significant digits (internal/obs), which absorbs last-ulp
# cross-architecture differences; any remaining diff is a real
# behavioral change. When a change is intentional, run
# `scripts/golden.sh update` and commit the new files with a note in
# the commit message explaining the drift.
set -eu
cd "$(dirname "$0")/.."

GOLDEN_DIR=results/golden
GOLDEN_ARGS="-exp table2,fig3,ablation -quick -seed 1 -telemetry=false"

mode="${1:-check}"

run_golden() {
    out="$1"
    # shellcheck disable=SC2086 # intentional word splitting of the args
    go run ./cmd/esteem-bench $GOLDEN_ARGS -out "$out" >/dev/null
}

case "$mode" in
update)
    mkdir -p "$GOLDEN_DIR"
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' EXIT
    run_golden "$tmp"
    rm -f "$GOLDEN_DIR"/*.json
    cp "$tmp"/*.json "$GOLDEN_DIR"/
    echo "== golden outputs updated in $GOLDEN_DIR =="
    ls "$GOLDEN_DIR"
    ;;
check)
    if [ ! -d "$GOLDEN_DIR" ] || [ -z "$(ls "$GOLDEN_DIR"/*.json 2>/dev/null)" ]; then
        echo "error: no golden outputs in $GOLDEN_DIR; run 'scripts/golden.sh update' first" >&2
        exit 1
    fi
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' EXIT
    run_golden "$tmp"

    status=0
    # Every golden file must be reproduced byte-identically.
    for want in "$GOLDEN_DIR"/*.json; do
        name="$(basename "$want")"
        got="$tmp/$name"
        if [ ! -f "$got" ]; then
            echo "MISSING: run did not produce $name" >&2
            status=1
            continue
        fi
        if ! diff -u "$want" "$got" >/dev/null; then
            echo "DRIFT: $name differs from golden" >&2
            diff -u "$want" "$got" | head -40 >&2 || true
            status=1
        fi
    done
    # And the run must not grow outputs the golden set doesn't know.
    for got in "$tmp"/*.json; do
        name="$(basename "$got")"
        [ "$name" = manifest.json ] && continue
        if [ ! -f "$GOLDEN_DIR/$name" ]; then
            echo "NEW: run produced $name not present in $GOLDEN_DIR (run update?)" >&2
            status=1
        fi
    done
    if [ "$status" -ne 0 ]; then
        echo "== golden check FAILED; if intentional: scripts/golden.sh update ==" >&2
        exit "$status"
    fi
    echo "== golden check OK ($(ls "$GOLDEN_DIR" | wc -l | tr -d ' ') files) =="
    ;;
*)
    echo "usage: scripts/golden.sh [check|update]" >&2
    exit 2
    ;;
esac
