// Package cpu models the cores of the simulated system. The paper's
// evaluation runs an out-of-order x86 core in Sniper; for the
// reproduction the core is abstracted to a unit-base-CPI in-order
// engine whose memory stalls come from the cache hierarchy (see
// DESIGN.md for why this preserves the paper's relative-IPC metrics):
// every instruction retires in one cycle, and memory operations add
// the latency the hierarchy reports (L2 access, refresh-induced bank
// stalls, memory queueing and access latency).
//
// The Core tracks the cycle clock, instruction count and a stall
// breakdown, and implements the paper's measurement protocol: after a
// fast-forward warmup, IPC is recorded for exactly the measured
// instruction budget, while the core may keep running beyond it to
// preserve multi-core interference (Section 6.4).
package cpu

import (
	"fmt"

	"repro/internal/trace"
)

// StallKind classifies where a memory stall came from.
type StallKind int

const (
	// StallL2Hit is time spent on L2 hit latency.
	StallL2Hit StallKind = iota
	// StallRefresh is time spent waiting for eDRAM refresh bursts.
	StallRefresh
	// StallMemory is main-memory latency plus queue delay.
	StallMemory
	numStallKinds
)

// String names the stall kind.
func (k StallKind) String() string {
	switch k {
	case StallL2Hit:
		return "l2-hit"
	case StallRefresh:
		return "refresh"
	case StallMemory:
		return "memory"
	default:
		return fmt.Sprintf("stall(%d)", int(k))
	}
}

// Core is one simulated core executing a workload source.
type Core struct {
	id  int
	gen trace.Source

	clock        uint64
	instructions uint64
	stalls       [numStallKinds]uint64

	// Measurement window state (Section 6.4 protocol).
	measureBudget uint64
	measureStart  struct {
		clock, instructions uint64
	}
	measureEnd struct {
		clock, instructions uint64
		done                bool
	}
}

// New builds a core over a reference source (a synthetic generator,
// a trace replayer, or any user-supplied Source).
func New(id int, gen trace.Source) *Core {
	return &Core{id: id, gen: gen}
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// Clock returns the core's current cycle.
func (c *Core) Clock() uint64 { return c.clock }

// Instructions returns the instructions retired so far.
func (c *Core) Instructions() uint64 { return c.instructions }

// NextRef pulls the next memory reference from the benchmark and
// retires the instructions leading up to and including it (Gap
// non-memory instructions plus the memory operation itself, at one
// cycle each).
func (c *Core) NextRef() trace.Ref {
	r := c.gen.Next()
	c.retire(uint64(r.Gap) + 1)
	return r
}

// retire advances instructions and the clock at base CPI 1, updating
// the measurement window when its budget is crossed.
func (c *Core) retire(n uint64) {
	c.instructions += n
	c.clock += n
	c.checkMeasureEnd()
}

// Stall adds memory-stall cycles of the given kind.
func (c *Core) Stall(cycles uint64, kind StallKind) {
	if cycles == 0 {
		return
	}
	c.clock += cycles
	c.stalls[kind] += cycles
}

// StallCycles returns the accumulated stall cycles of one kind.
func (c *Core) StallCycles(kind StallKind) uint64 { return c.stalls[kind] }

// BeginMeasurement opens the measurement window: IPC will be computed
// over the next budget instructions. Call it after warmup.
func (c *Core) BeginMeasurement(budget uint64) {
	if budget == 0 {
		panic("cpu: zero measurement budget")
	}
	c.measureBudget = budget
	c.measureStart.clock = c.clock
	c.measureStart.instructions = c.instructions
	c.measureEnd.done = false
}

// checkMeasureEnd snapshots the window end when the budget is
// reached. The core may continue past it (multi-core interference).
func (c *Core) checkMeasureEnd() {
	if c.measureEnd.done || c.measureBudget == 0 {
		return
	}
	if c.instructions-c.measureStart.instructions >= c.measureBudget {
		c.measureEnd.clock = c.clock
		c.measureEnd.instructions = c.instructions
		c.measureEnd.done = true
	}
}

// MeasurementDone reports whether the measured budget has been
// retired.
func (c *Core) MeasurementDone() bool { return c.measureEnd.done }

// MeasuredInstructions returns the instructions retired inside the
// measurement window (0 if the window is still open).
func (c *Core) MeasuredInstructions() uint64 {
	if !c.measureEnd.done {
		return c.instructions - c.measureStart.instructions
	}
	return c.measureEnd.instructions - c.measureStart.instructions
}

// MeasuredCycles returns the cycles elapsed in the measurement
// window; for a still-open window, cycles so far.
func (c *Core) MeasuredCycles() uint64 {
	if !c.measureEnd.done {
		return c.clock - c.measureStart.clock
	}
	return c.measureEnd.clock - c.measureStart.clock
}

// IPC returns instructions per cycle over the measurement window
// (per the paper, recorded only for the first budget instructions
// even if the core continues running).
func (c *Core) IPC() float64 {
	cyc := c.MeasuredCycles()
	if cyc == 0 {
		return 0
	}
	return float64(c.MeasuredInstructions()) / float64(cyc)
}
