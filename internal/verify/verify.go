// Package verify is the differential verification harness: it replays
// identical randomized operation schedules through the optimised
// production implementations (internal/cache, internal/edram,
// internal/refrint, internal/smartref) and the naive reference models
// in internal/oracle, asserting full state equivalence — tag arrays,
// LRU order, valid/dirty bits, histograms, counters, refresh totals —
// after every operation.
//
// The harness reports divergences as errors rather than test failures
// so the same machinery backs the deterministic differential suite,
// the property tests and the native fuzz targets in this package.
package verify

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/edram"
	"repro/internal/oracle"
	"repro/internal/refrint"
	"repro/internal/smartref"
	"repro/internal/xrand"
)

// OpKind enumerates the operations a schedule may contain.
type OpKind uint8

const (
	// OpRead / OpWrite access an address through both caches.
	OpRead OpKind = iota
	OpWrite
	// OpProbe checks presence without disturbing state.
	OpProbe
	// OpReconfigure sets a module's active-way count.
	OpReconfigure
	// OpInvalidateLine drops one frame.
	OpInvalidateLine
	// OpInvalidateAll drops every frame.
	OpInvalidateAll
	// OpResetInterval clears interval counters and histograms.
	OpResetInterval
	// OpAdvance moves simulated time forward and fires any refresh
	// events that became due (refresh harness only; the cache-only
	// harness treats it as a no-op).
	OpAdvance

	numOpKinds
)

// String names the op kind for divergence reports.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpProbe:
		return "probe"
	case OpReconfigure:
		return "reconfigure"
	case OpInvalidateLine:
		return "invalidate-line"
	case OpInvalidateAll:
		return "invalidate-all"
	case OpResetInterval:
		return "reset-interval"
	case OpAdvance:
		return "advance"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is one schedule entry. Operand fields are interpreted per kind.
type Op struct {
	Kind   OpKind
	Addr   cache.Addr // OpRead, OpWrite, OpProbe
	Module int        // OpReconfigure
	Ways   int        // OpReconfigure
	Set    int        // OpInvalidateLine
	Way    int        // OpInvalidateLine
	Delta  uint64     // OpAdvance (cycles)
}

// RandomOps generates a schedule of n operations over a cache with
// parameters p. The address stream covers twice the cache's capacity
// (so both hits and misses occur), about a third of accesses are
// writes, and reconfigurations, invalidations, interval resets and
// time advances are sprinkled in. retention sizes OpAdvance deltas;
// pass 0 for cache-only schedules.
func RandomOps(rng *xrand.RNG, p cache.Params, n int, retention uint64) []Op {
	numSets := p.SizeBytes / (p.LineBytes * p.Assoc)
	lineSpan := uint64(2 * numSets * p.Assoc) // lines in the address pool
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Intn(100)
		var op Op
		switch {
		case r < 70: // access
			op.Kind = OpRead
			if rng.Intn(3) == 0 {
				op.Kind = OpWrite
			}
			op.Addr = cache.Addr(rng.Uint64n(lineSpan) * uint64(p.LineBytes))
		case r < 78:
			op.Kind = OpProbe
			op.Addr = cache.Addr(rng.Uint64n(lineSpan) * uint64(p.LineBytes))
		case r < 84:
			op.Kind = OpReconfigure
			op.Module = rng.Intn(p.Modules)
			op.Ways = 1 + rng.Intn(p.Assoc)
		case r < 90:
			op.Kind = OpInvalidateLine
			op.Set = rng.Intn(numSets)
			op.Way = rng.Intn(p.Assoc)
		case r < 92:
			op.Kind = OpInvalidateAll
		case r < 95:
			op.Kind = OpResetInterval
		default:
			op.Kind = OpAdvance
			if retention > 0 {
				op.Delta = 1 + rng.Uint64n(retention/2+1)
			} else {
				op.Delta = 1 + rng.Uint64n(1000)
			}
		}
		ops = append(ops, op)
	}
	return ops
}

// DecodeOps interprets fuzzer-provided bytes as an operation schedule
// over a cache with parameters p: each op consumes one selector byte
// plus four operand bytes, every byte sequence decodes to a valid
// schedule, and every reachable schedule is encodable. retention sizes
// OpAdvance deltas as in RandomOps.
func DecodeOps(data []byte, p cache.Params, retention uint64) []Op {
	numSets := p.SizeBytes / (p.LineBytes * p.Assoc)
	lineSpan := uint64(2 * numSets * p.Assoc)
	var ops []Op
	for len(data) >= 5 {
		sel, a, b := data[0], data[1], data[2]
		c, d := data[3], data[4]
		data = data[5:]
		operand := uint64(a) | uint64(b)<<8 | uint64(c)<<16 | uint64(d)<<24
		var op Op
		switch OpKind(sel % uint8(numOpKinds)) {
		case OpRead:
			op = Op{Kind: OpRead, Addr: cache.Addr(operand % lineSpan * uint64(p.LineBytes))}
		case OpWrite:
			op = Op{Kind: OpWrite, Addr: cache.Addr(operand % lineSpan * uint64(p.LineBytes))}
		case OpProbe:
			op = Op{Kind: OpProbe, Addr: cache.Addr(operand % lineSpan * uint64(p.LineBytes))}
		case OpReconfigure:
			op = Op{
				Kind:   OpReconfigure,
				Module: int(operand) % p.Modules,
				Ways:   1 + int(operand>>8)%p.Assoc,
			}
		case OpInvalidateLine:
			op = Op{
				Kind: OpInvalidateLine,
				Set:  int(operand) % numSets,
				Way:  int(operand>>16) % p.Assoc,
			}
		case OpInvalidateAll:
			op = Op{Kind: OpInvalidateAll}
		case OpResetInterval:
			op = Op{Kind: OpResetInterval}
		case OpAdvance:
			span := uint64(1000)
			if retention > 0 {
				span = retention/2 + 1
			}
			op = Op{Kind: OpAdvance, Delta: 1 + operand%span}
		}
		ops = append(ops, op)
	}
	return ops
}

// CacheDiff replays operations through the production cache and the
// oracle cache in lockstep.
type CacheDiff struct {
	Impl *cache.Cache
	Orc  *oracle.Cache
	p    cache.Params
}

// NewCacheDiff builds both models from the same parameters.
func NewCacheDiff(p cache.Params) (*CacheDiff, error) {
	impl, err := cache.New(p)
	if err != nil {
		return nil, err
	}
	orc, err := oracle.NewCache(p)
	if err != nil {
		return nil, fmt.Errorf("oracle rejected params the implementation accepted: %w", err)
	}
	return &CacheDiff{Impl: impl, Orc: orc, p: p}, nil
}

// Apply executes one operation on both models and compares the
// immediate results. OpAdvance is a no-op here (see RefreshDiff).
func (d *CacheDiff) Apply(op Op) error {
	switch op.Kind {
	case OpRead, OpWrite:
		ri := d.Impl.Access(op.Addr, op.Kind == OpWrite)
		ro := d.Orc.Access(op.Addr, op.Kind == OpWrite)
		if ri != ro {
			return fmt.Errorf("%v %#x: impl %+v, oracle %+v", op.Kind, uint64(op.Addr), ri, ro)
		}
	case OpProbe:
		if pi, po := d.Impl.Probe(op.Addr), d.Orc.Probe(op.Addr); pi != po {
			return fmt.Errorf("probe %#x: impl %v, oracle %v", uint64(op.Addr), pi, po)
		}
	case OpReconfigure:
		ii, wi := d.Impl.SetActiveWays(op.Module, op.Ways)
		io, wo := d.Orc.SetActiveWays(op.Module, op.Ways)
		if ii != io || wi != wo {
			return fmt.Errorf("reconfigure m=%d n=%d: impl (%d,%d), oracle (%d,%d)",
				op.Module, op.Ways, ii, wi, io, wo)
		}
	case OpInvalidateLine:
		vi, di := d.Impl.InvalidateLine(op.Set, op.Way)
		vo, do := d.Orc.InvalidateLine(op.Set, op.Way)
		if vi != vo || di != do {
			return fmt.Errorf("invalidate-line (%d,%d): impl (%v,%v), oracle (%v,%v)",
				op.Set, op.Way, vi, di, vo, do)
		}
	case OpInvalidateAll:
		if wi, wo := d.Impl.InvalidateAll(), d.Orc.InvalidateAll(); wi != wo {
			return fmt.Errorf("invalidate-all: impl %d writebacks, oracle %d", wi, wo)
		}
	case OpResetInterval:
		d.Impl.ResetInterval()
		d.Orc.ResetInterval()
	case OpAdvance:
		// Time is meaningless without a refresh engine.
	}
	return nil
}

// CheckState compares the complete externally visible state of the two
// models: every set's LRU order and frames, all counters, histograms,
// per-module configurations and derived occupancy metrics.
func (d *CacheDiff) CheckState() error {
	for set := 0; set < d.Impl.NumSets(); set++ {
		snap := d.Impl.SnapshotSet(set)
		oord := d.Orc.Order(set)
		olines := d.Orc.Lines(set)
		for pos := range snap.Order {
			if snap.Order[pos] != oord[pos] {
				return fmt.Errorf("set %d: LRU order impl %v, oracle %v", set, snap.Order, oord)
			}
		}
		for w := range snap.Lines {
			il, ol := snap.Lines[w], olines[w]
			if il.Valid != ol.Valid || il.Dirty != ol.Dirty {
				return fmt.Errorf("set %d way %d: impl valid=%v dirty=%v, oracle valid=%v dirty=%v",
					set, w, il.Valid, il.Dirty, ol.Valid, ol.Dirty)
			}
			if il.Valid && il.Tag != ol.Tag {
				return fmt.Errorf("set %d way %d: impl tag %#x, oracle tag %#x", set, w, il.Tag, ol.Tag)
			}
		}
	}
	if ti, to := d.Impl.TotalCounters(), d.Orc.TotalCounters(); ti != to {
		return fmt.Errorf("total counters: impl %+v, oracle %+v", ti, to)
	}
	if ii, io := d.Impl.IntervalCounters(), d.Orc.IntervalCounters(); ii != io {
		return fmt.Errorf("interval counters: impl %+v, oracle %+v", ii, io)
	}
	for m := 0; m < d.p.Modules; m++ {
		if ai, ao := d.Impl.ActiveWays(m), d.Orc.ActiveWays(m); ai != ao {
			return fmt.Errorf("module %d: impl %d active ways, oracle %d", m, ai, ao)
		}
		hi, ho := d.Impl.HitPositions(m), d.Orc.HitPositions(m)
		for pos := range hi {
			if hi[pos] != ho[pos] {
				return fmt.Errorf("module %d histogram: impl %v, oracle %v", m, hi, ho)
			}
		}
	}
	if fi, fo := d.Impl.ActiveFraction(), d.Orc.ActiveFraction(); fi != fo {
		return fmt.Errorf("active fraction: impl %v, oracle %v", fi, fo)
	}
	for b := 0; b < d.p.Banks; b++ {
		if vi, vo := d.Impl.ValidByBank(b), d.Orc.ValidByBank(b); vi != vo {
			return fmt.Errorf("bank %d: impl %d valid lines, oracle %d", b, vi, vo)
		}
	}
	if vi, vo := d.Impl.ValidLines(), d.Orc.ValidLines(); vi != vo {
		return fmt.Errorf("valid lines: impl %d, oracle %d", vi, vo)
	}
	if d.p.TrackWear {
		wi := d.Impl.WearCounters()
		wo := d.Orc.WearCounters()
		if len(wi) != len(wo) {
			return fmt.Errorf("wear counters: impl %d frames, oracle %d", len(wi), len(wo))
		}
		for i := range wi {
			if wi[i] != wo[i] {
				return fmt.Errorf("wear of set %d way %d: impl %d, oracle %d",
					i/d.p.Assoc, i%d.p.Assoc, wi[i], wo[i])
			}
		}
		if si, so := d.Impl.WearLevelSwaps(), d.Orc.WearLevelSwaps(); si != so {
			return fmt.Errorf("wear-level swaps: impl %d, oracle %d", si, so)
		}
	}
	return nil
}

// Replay applies a schedule, checking full state equivalence after
// every operation; it returns the first divergence with its index.
func (d *CacheDiff) Replay(ops []Op) error {
	for i, op := range ops {
		if err := d.Apply(op); err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
		if err := d.CheckState(); err != nil {
			return fmt.Errorf("after op %d (%v): %w", i, op.Kind, err)
		}
	}
	return nil
}

// Policy names accepted by NewRefreshDiff.
const (
	PolicyBaseline     = "baseline"
	PolicyValidOnly    = "valid-only"
	PolicyRPV          = "rpv"
	PolicyRPD          = "rpd"
	PolicySmartRefresh = "smart-refresh"
)

// RefreshPolicies lists every policy the refresh harness can verify.
var RefreshPolicies = []string{
	PolicyBaseline, PolicyValidOnly, PolicyRPV, PolicyRPD, PolicySmartRefresh,
}

// RefreshDiff replays schedules through two full cache+refresh stacks:
// the production cache with a production refresh policy and engine,
// and the oracle cache with the matching per-line reference bookkeeper
// and the naive engine mirror.
type RefreshDiff struct {
	Cache *CacheDiff

	implClock *edram.Clock
	orcClock  *edram.Clock
	implEng   *edram.Engine
	orcEng    *oracle.Engine

	implRPD *refrint.RPD
	orcPoly *oracle.PolyphaseRef
	implSR  *smartref.Policy
	orcSR   *oracle.SmartRefreshRef

	cycle uint64
}

// NewRefreshDiff assembles both stacks for the named policy. phases is
// the Refrint phase count / Smart-Refresh period count; retention is
// the retention window in cycles.
func NewRefreshDiff(p cache.Params, policy string, phases int, retention uint64) (*RefreshDiff, error) {
	cd, err := NewCacheDiff(p)
	if err != nil {
		return nil, err
	}
	d := &RefreshDiff{
		Cache:     cd,
		implClock: &edram.Clock{},
		orcClock:  &edram.Clock{},
	}
	var implPolicy, orcPolicy edram.Policy
	switch policy {
	case PolicyBaseline:
		implPolicy = edram.NewRefreshAll(cd.Impl)
		orcPolicy = &oracle.RefreshAllRef{C: cd.Orc}
	case PolicyValidOnly:
		implPolicy = edram.NewValidOnly(cd.Impl)
		orcPolicy = &oracle.ValidOnlyRef{C: cd.Orc}
	case PolicyRPV:
		rpv, err := refrint.NewRPV(cd.Impl, d.implClock, phases, retention)
		if err != nil {
			return nil, err
		}
		ref, err := oracle.NewPolyphaseRef(cd.Orc, d.orcClock, phases, retention, false)
		if err != nil {
			return nil, err
		}
		d.orcPoly = ref
		implPolicy, orcPolicy = rpv, ref
	case PolicyRPD:
		rpd, err := refrint.NewRPD(cd.Impl, d.implClock, phases, retention)
		if err != nil {
			return nil, err
		}
		ref, err := oracle.NewPolyphaseRef(cd.Orc, d.orcClock, phases, retention, true)
		if err != nil {
			return nil, err
		}
		d.implRPD, d.orcPoly = rpd, ref
		implPolicy, orcPolicy = rpd, ref
	case PolicySmartRefresh:
		sr, err := smartref.New(cd.Impl, phases)
		if err != nil {
			return nil, err
		}
		ref, err := oracle.NewSmartRefreshRef(cd.Orc, phases)
		if err != nil {
			return nil, err
		}
		d.implSR, d.orcSR = sr, ref
		implPolicy, orcPolicy = sr, ref
	default:
		return nil, fmt.Errorf("verify: unknown policy %q", policy)
	}
	implEng, err := edram.NewEngine(edram.Params{RetentionCycles: retention, Banks: p.Banks}, implPolicy)
	if err != nil {
		return nil, err
	}
	orcEng, err := oracle.NewEngine(edram.Params{RetentionCycles: retention, Banks: p.Banks}, orcPolicy)
	if err != nil {
		return nil, fmt.Errorf("oracle engine rejected params the implementation accepted: %w", err)
	}
	d.implEng, d.orcEng = implEng, orcEng
	return d, nil
}

// Cycle returns the harness's current simulated cycle.
func (d *RefreshDiff) Cycle() uint64 { return d.cycle }

// Apply executes one operation on both stacks. Accesses happen at the
// current cycle (both clocks are set first, as the simulator does);
// OpAdvance moves time forward and fires due refresh events through
// both engines.
func (d *RefreshDiff) Apply(op Op) error {
	d.implClock.Cycle = d.cycle
	d.orcClock.Cycle = d.cycle
	switch op.Kind {
	case OpAdvance:
		d.cycle += op.Delta
		d.implEng.AdvanceTo(d.cycle)
		d.orcEng.AdvanceTo(d.cycle)
	case OpRead, OpWrite:
		// Compare the refresh-induced stall the access would see, then
		// perform it (AccessDelay advances both engines to the cycle).
		bank := d.Cache.Impl.BankOf(d.Cache.Impl.SetIndex(op.Addr))
		di := d.implEng.AccessDelay(bank, d.cycle)
		do := d.orcEng.AccessDelay(bank, d.cycle)
		if di != do {
			return fmt.Errorf("access delay bank %d cycle %d: impl %d, oracle %d", bank, d.cycle, di, do)
		}
		return d.Cache.Apply(op)
	default:
		return d.Cache.Apply(op)
	}
	return nil
}

// CheckState compares the two stacks: full cache state, engine
// refresh/busy accounting, per-bank stall exposure and the
// policy-specific bookkeeping (eager invalidations, skipped
// refreshes, tracked-line conservation).
func (d *RefreshDiff) CheckState() error {
	if err := d.Cache.CheckState(); err != nil {
		return err
	}
	if a, b := d.implEng.TotalRefreshed(), d.orcEng.TotalRefreshed(); a != b {
		return fmt.Errorf("total refreshed: impl %d, oracle %d", a, b)
	}
	if a, b := d.implEng.IntervalRefreshed(), d.orcEng.IntervalRefreshed(); a != b {
		return fmt.Errorf("interval refreshed: impl %d, oracle %d", a, b)
	}
	if a, b := d.implEng.TotalBusyCycles(), d.orcEng.TotalBusyCycles(); a != b {
		return fmt.Errorf("busy cycles: impl %d, oracle %d", a, b)
	}
	if a, b := d.implEng.Events(), d.orcEng.Events(); a != b {
		return fmt.Errorf("events: impl %d, oracle %d", a, b)
	}
	for b := 0; b < d.Cache.p.Banks; b++ {
		if ai, ao := d.implEng.AccessDelay(b, d.cycle), d.orcEng.AccessDelay(b, d.cycle); ai != ao {
			return fmt.Errorf("bank %d delay at %d: impl %d, oracle %d", b, d.cycle, ai, ao)
		}
	}
	if d.implRPD != nil {
		if a, b := d.implRPD.Invalidated(), d.orcPoly.Invalidations; a != b {
			return fmt.Errorf("RPD invalidations: impl %d, oracle %d", a, b)
		}
	}
	if d.orcPoly != nil {
		// Tracked-line conservation: every valid line carries a phase.
		if tr, vl := d.orcPoly.TrackedLines(), d.Cache.Orc.ValidLines(); tr != vl {
			return fmt.Errorf("oracle polyphase tracks %d lines, cache holds %d", tr, vl)
		}
	}
	if d.implSR != nil {
		if a, b := d.implSR.IntervalPolicyStats().SkippedRefreshes, d.orcSR.Skipped; a != b {
			return fmt.Errorf("smart-refresh skips: impl %d, oracle %d", a, b)
		}
	}
	return nil
}

// Replay applies a schedule, checking full state equivalence after
// every operation.
func (d *RefreshDiff) Replay(ops []Op) error {
	for i, op := range ops {
		if err := d.Apply(op); err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
		if err := d.CheckState(); err != nil {
			return fmt.Errorf("after op %d (%v): %w", i, op.Kind, err)
		}
	}
	return nil
}
