// Telemetry: the sweep's run-artifact layer. With a sink attached,
// every simulation job additionally runs with an interval collector
// and persists an obs.RunArtifact (manifest + end-of-run summary +
// per-interval telemetry) when it completes. Artifact file names are
// keyed by the job's submission id, so the artifact set of a sweep is
// deterministic for any worker count; only the manifest's timing
// fields (start time, wall time) vary between runs.
package runner

import (
	"context"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tracez"
)

// SetSink attaches a run-artifact sink to the sweep. Must be called
// before Run. A nil sink disables artifact writing (the default); no
// collector is attached and jobs run exactly as without telemetry.
func (s *Sweep) SetSink(sink obs.Sink) { s.sink = sink }

// runSim executes one simulation for a scheduled job: plainly when no
// sink is attached, with an interval collector plus artifact
// persistence otherwise, and through the content-addressed result
// store when a cache is attached (cache.go). Exactly one of
// wl/sources is used (sources wins when non-nil, matching SimSources
// semantics); source-driven jobs bypass the cache. The context is the
// pool's run context: a cancelled sweep stops before starting the
// simulation (and, on the cached path, abandons coalesced waits).
func (s *Sweep) runSim(ctx context.Context, seq int, label string, cfg sim.Config, wl []string, sources []trace.Source) (*sim.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Per-task span: everything the task does (cache lookup, the
	// simulation itself, artifact writes) nests under it. Free when
	// the run context carries no span (the default).
	tsp, ctx := tracez.StartChild(ctx, "task")
	tsp.SetAttr("label", label)
	tsp.SetAttrInt("seq", int64(seq))
	defer tsp.End()
	if s.cache != nil && sources == nil {
		return s.runSimCached(ctx, seq, label, cfg, wl)
	}
	run := func(o obs.Observer) (*sim.Result, error) {
		var sm *sim.Simulator
		var err error
		if sources != nil {
			sm, err = sim.NewFromSources(cfg, sources)
		} else {
			sm, err = sim.New(cfg, wl)
		}
		if err != nil {
			return nil, err
		}
		sm.SetObserver(o)
		ssp := tsp.Child("sim")
		defer ssp.End()
		sm.SetTraceSpan(ssp)
		return sm.Run()
	}
	if s.sink == nil {
		r, err := run(nil)
		if err != nil {
			return nil, err
		}
		s.sims.Add(1)
		s.instr.Add(r.TotalInstructions())
		return r, nil
	}

	man := obs.NewManifest(label, cfg.Seed, cfg)
	col := obs.NewCollector()
	start := time.Now()
	r, err := run(col)
	if err != nil {
		return nil, err
	}
	s.sims.Add(1)
	s.instr.Add(r.TotalInstructions())
	man.Technique = r.Technique.String()
	man.Cores = cfg.Cores
	for _, c := range r.Cores {
		man.Workload = append(man.Workload, c.Benchmark)
	}
	man.WallMillis = float64(time.Since(start).Microseconds()) / 1e3
	man.SimulatedInstructions = r.TotalInstructions()
	man.Intervals = len(col.Intervals())
	art := obs.RunArtifact{
		SchemaVersion: obs.SchemaVersion,
		Manifest:      man,
		Summary:       Summarize(r),
		Intervals:     col.Intervals(),
	}
	wsp := tsp.Child("artifact-write")
	werr := s.sink.WriteRun(seq, art)
	wsp.End()
	if werr != nil {
		return nil, fmt.Errorf("runner: writing artifact for %q: %w", label, werr)
	}
	return r, nil
}

// Summarize flattens a simulation result into the machine-readable
// run summary embedded in artifacts (and reused by cmd/esteem-bench's
// JSON outputs).
func Summarize(r *sim.Result) obs.RunSummary {
	sum := obs.RunSummary{
		Instructions:       r.TotalInstructions(),
		Cycles:             r.Activity.Cycles,
		Energy:             sim.EnergyRecord(r.Energy),
		ActiveRatio:        r.ActiveRatio,
		MPKI:               r.MPKI(),
		RPKI:               r.RPKI(),
		L2Hits:             r.L2.Hits,
		L2WriteHits:        r.L2.WriteHits,
		L2Misses:           r.L2.Misses,
		L2Writebacks:       r.L2.Writebacks,
		L2Fills:            r.L2.Fills,
		MMReads:            r.MM.Reads,
		MMWritebacks:       r.MM.Writebacks,
		Refreshes:          r.Refreshes,
		RefreshStallCycles: r.RefreshStallCycles,
		ReconfigWritebacks: r.ReconfigWritebacks,
	}
	if w := r.Wear; w != nil {
		sum.Wear = &obs.WearSummary{
			MaxWear:         w.MaxWear,
			MinWear:         w.MinWear,
			MeanWear:        w.MeanWear,
			TotalWrites:     w.TotalWrites,
			LevelSwaps:      w.LevelSwaps,
			Histogram:       append([]uint64(nil), w.Histogram...),
			EnduranceWrites: w.EnduranceWrites,
		}
	}
	for _, c := range r.Cores {
		sum.Cores = append(sum.Cores, obs.CoreSummary{
			Benchmark:    c.Benchmark,
			Instructions: c.Instructions,
			Cycles:       c.Cycles,
			IPC:          c.IPC,
			StallL2Hit:   c.StallL2Hit,
			StallRefresh: c.StallRefresh,
			StallMemory:  c.StallMemory,
			L1Hits:       c.L1Hits,
			L1Misses:     c.L1Misses,
		})
	}
	return sum
}
