// Coordinator-mode job execution: a job's units become cluster tasks
// leased to joined workers instead of jobs on a local sweep. The SSE
// event stream keeps its shape — one "task" event per unit lifecycle
// transition — so clients cannot tell (and need not care) whether a
// job ran locally or across the cluster; cluster mode additionally
// tails the coordinator's event journal into the stream as "cluster"
// events, so a client watching a job sees the causal story (lease
// granted → expired → reissued → completed) behind its tasks.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/cluster"
	"repro/internal/tracez"
)

// runClusterJob submits every unit of j to the coordinator's task
// table and waits for the leases to resolve. Units shared with other
// in-flight jobs (or already computed) coalesce onto existing table
// entries — the cluster-wide single-flight — so a unit simulates at
// most once no matter how many jobs want it.
//
// Each unit gets a "lease" span under the job's run span; its W3C
// traceparent travels on the task, the executing worker roots its own
// spans under it, and the worker's span batch ships back before the
// task resolves — so the job's trace is one tree spanning every node
// that touched it.
func (s *Server) runClusterJob(ctx context.Context, j *Job) error {
	total := len(j.Units)
	rsp := tracez.FromContext(ctx)
	handles := make([]*cluster.TaskHandle, total)
	leases := make([]*tracez.Span, total)
	defer func() {
		// End every lease span on the way out (idempotent): an early
		// ctx.Done return must not leave spans open, or the worker
		// subtrees they parent would dangle outside the exported tree.
		for _, lsp := range leases {
			lsp.End()
		}
	}()

	stopTail := s.tailJournal(ctx, j)
	defer stopTail()

	for i, u := range j.Units {
		lsp := rsp.Child("lease")
		lsp.SetAttr("label", u.Label)
		lsp.SetAttr("key", shortKey(u.Key))
		leases[i] = lsp
		handles[i] = s.cfg.Cluster.Submit(cluster.Task{
			Key:      u.Key,
			Label:    u.Label,
			Config:   u.cfg,
			Workload: u.Workload,
			// TraceID rides along even when the trace is unsampled so
			// worker log lines always carry the correlation id.
			TraceID:     j.TraceID,
			Traceparent: tracez.Traceparent(lsp),
		})
		j.log.publish("task", Event{Task: "started", Label: u.Label, Key: shortKey(u.Key), Total: total})
	}
	finished := 0
	var errs []error
	for i, h := range handles {
		select {
		case <-h.Done():
		case <-ctx.Done():
			return fmt.Errorf("serve: cluster job interrupted after %d/%d units: %w",
				finished, total, ctx.Err())
		}
		finished++
		leases[i].SetAttr("worker", h.Worker())
		leases[i].End()
		ev := Event{
			Label:    j.Units[i].Label,
			Key:      shortKey(j.Units[i].Key),
			Node:     h.Worker(),
			Finished: finished,
			Total:    total,
		}
		if err := h.Err(); err != nil {
			errs = append(errs, err)
			ev.Task = "failed"
			ev.Error = err.Error()
		} else {
			ev.Task = "done"
		}
		j.log.publish("task", ev)
	}
	return errors.Join(errs...)
}

// tailJournal streams the coordinator's journal events that concern j
// (its unit keys, plus cluster membership changes) into the job's SSE
// feed as "cluster" events. The returned stop function cancels the
// tail and waits for it — call it before the job finishes so nothing
// publishes into a closed log.
func (s *Server) tailJournal(ctx context.Context, j *Job) func() {
	journal := s.cfg.Cluster.Journal()
	keys := make(map[string]bool, len(j.Units))
	for _, u := range j.Units {
		keys[u.Key] = true
	}
	since := journal.NextSeq() - 1
	tctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			events, wake := journal.Since(since, 0)
			for _, ev := range events {
				since = ev.Seq
				if ev.Key != "" && !keys[ev.Key] {
					continue // another job's task
				}
				j.log.publish("cluster", Event{
					Cluster: string(ev.Kind),
					Node:    ev.Worker,
					Key:     shortKey(ev.Key),
					Detail:  ev.Detail,
				})
			}
			select {
			case <-tctx.Done():
				return
			case <-wake:
			}
		}
	}()
	return func() {
		cancel()
		wg.Wait()
	}
}

// shortKey truncates a content address for event payloads.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
