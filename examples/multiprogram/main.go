// Multiprogram: run dual-core multiprogrammed workloads from the
// paper's Table 1 on the shared 8 MB eDRAM L2, comparing Refrint RPV
// and ESTEEM against the baseline. This is the paper's Figure 4
// setting, on a subset of mixes.
//
// All twelve simulations (4 mixes x baseline/RPV/ESTEEM) are
// scheduled up front on a Sweep and execute in parallel; each mix's
// baseline is shared by its two technique runs through the sweep's
// dependency DAG.
//
//	go run ./examples/multiprogram
package main

import (
	"context"
	"fmt"
	"log"

	esteem "repro"
	"repro/internal/metrics"
)

func main() {
	// A subset of the paper's 17 mixes spanning the workload classes:
	// compact (GkNe — the paper's biggest winner), mixed (GcGa),
	// streaming (LsLb) and huge-footprint (McLu).
	mixes := [][]string{
		{"gobmk", "nekbone"},
		{"gcc", "gamess"},
		{"leslie3d", "lbm"},
		{"mcf", "lulesh"},
	}

	cfg := esteem.DefaultConfig(2)
	cfg.MeasureInstr = 12_000_000
	cfg.WarmupInstr = 6_000_000

	s := esteem.NewSweep(0)
	type pair struct{ rpv, est *esteem.CompareJob }
	var jobs []pair
	for _, mix := range mixes {
		base := s.Baseline(cfg, mix)
		rpvCfg, estCfg := cfg, cfg
		rpvCfg.Technique = esteem.RPV
		estCfg.Technique = esteem.Esteem
		name := esteem.MixAcronym(mix[0], mix[1])
		jobs = append(jobs, pair{
			rpv: s.Compare(name, base, rpvCfg, mix),
			est: s.Compare(name, base, estCfg, mix),
		})
	}
	if err := s.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	var rpvs, ests []esteem.Comparison
	fmt.Println("dual-core, 8MB shared eDRAM L2, 16 modules, 50us retention")
	fmt.Printf("%-8s %18s %18s\n", "mix", "RPV (sv%/ws/fs)", "ESTEEM (sv%/ws/fs)")
	for i, mix := range mixes {
		rpv, est := jobs[i].rpv.Comparison(), jobs[i].est.Comparison()
		rpvs = append(rpvs, rpv)
		ests = append(ests, est)
		fmt.Printf("%-8s %6.1f/%.3f/%.3f %6.1f/%.3f/%.3f\n",
			esteem.MixAcronym(mix[0], mix[1]),
			rpv.EnergySavingPct, rpv.WeightedSpeedup, rpv.FairSpeedup,
			est.EnergySavingPct, est.WeightedSpeedup, est.FairSpeedup)
	}

	sr, se := esteem.Summarize(rpvs), esteem.Summarize(ests)
	fmt.Printf("%-8s %6.1f/%.3f/%.3f %6.1f/%.3f/%.3f\n", "MEAN",
		sr.EnergySavingPct, sr.WeightedSpeedup, sr.FairSpeedup,
		se.EnergySavingPct, se.WeightedSpeedup, se.FairSpeedup)

	// The paper reports that fair speedup stays close to weighted
	// speedup — ESTEEM does not trade one core off against the other.
	fmt.Printf("\nfairness check: ESTEEM ws %.3f vs fs %.3f (gap %.1f%%)\n",
		se.WeightedSpeedup, se.FairSpeedup,
		100*(se.WeightedSpeedup-se.FairSpeedup)/se.WeightedSpeedup)

	// Full CSV for further analysis.
	fmt.Println("\nCSV:")
	fmt.Print(metrics.FormatCSV(append(rpvs, ests...)))
}
