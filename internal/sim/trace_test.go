package sim

import (
	"reflect"
	"testing"

	"repro/internal/tracez"
)

// traceCfg is a short configuration that crosses several interval
// boundaries and refresh windows, so every span kind shows up.
func traceCfg() Config {
	cfg := DefaultConfig(1)
	cfg.Technique = Esteem
	cfg.MeasureInstr = 200_000
	cfg.WarmupInstr = 50_000
	cfg.IntervalCycles = 100_000
	return cfg
}

// TestTraceSpansCoverRun runs one traced simulation and checks the
// exported tree: well-formed, and with the warmup/measure phases,
// interval batches, refresh windows and energy finalization visible.
func TestTraceSpansCoverRun(t *testing.T) {
	tr := tracez.New(tracez.Config{Seed: 5})
	root := tr.Root("sim")
	s, err := New(traceCfg(), []string{"gcc"})
	if err != nil {
		t.Fatal(err)
	}
	s.SetTraceSpan(root)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	root.End()

	tree, err := tracez.BuildTree(tr.Spans(root.TraceID()))
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("span tree invalid: %v", err)
	}
	names := map[string]int{}
	var walk func(n *tracez.Node)
	walk = func(n *tracez.Node) {
		names[n.Name]++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree.Root)
	for _, want := range []string{"warmup", "measure", "interval", "refresh-window", "energy-finalize"} {
		if names[want] == 0 {
			t.Fatalf("trace missing %q spans; have %v", want, names)
		}
	}
	if names["warmup"] != 1 || names["measure"] != 1 || names["energy-finalize"] != 1 {
		t.Fatalf("phase spans duplicated: %v", names)
	}
	if names["interval"] < 2 {
		t.Fatalf("expected several interval spans, got %d", names["interval"])
	}
}

// TestTracingDoesNotPerturbResults runs the same configuration with
// and without a trace span attached: the simulation outcome must be
// identical — tracing only observes.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	plain, err := Run(traceCfg(), []string{"gcc"})
	if err != nil {
		t.Fatal(err)
	}
	tr := tracez.New(tracez.Config{Seed: 9})
	root := tr.Root("sim")
	s, err := New(traceCfg(), []string{"gcc"})
	if err != nil {
		t.Fatal(err)
	}
	s.SetTraceSpan(root)
	traced, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("traced run diverged from plain run:\nplain:  %+v\ntraced: %+v", plain, traced)
	}
}

// TestDisabledTracingStepAllocsNothing pins the zero-overhead
// contract on the hot path: with no trace span attached, steady-state
// stepping (no interval boundary in range) performs zero allocations.
func TestDisabledTracingStepAllocsNothing(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Technique = Baseline
	cfg.MeasureInstr = 100_000_000
	cfg.WarmupInstr = 0
	cfg.IntervalCycles = 1 << 40 // no boundary during the test
	s, err := New(cfg, []string{"gcc"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50_000; i++ { // steady state
		s.step()
	}
	if avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 100; i++ {
			s.step()
		}
	}); avg != 0 {
		t.Fatalf("untraced steady-state step allocates (%.2f allocs per 100 steps)", avg)
	}
}

// BenchmarkSimRunShortTraced is BenchmarkSimRunShort with tracing
// attached — compare the two to see the tracing tax on a full run
// (expected: a few allocations per interval boundary, nothing per
// step).
func BenchmarkSimRunShortTraced(b *testing.B) {
	cfg := traceCfg()
	tr := tracez.New(tracez.Config{Seed: 3})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := tr.Root("sim")
		s, err := New(cfg, []string{"gcc"})
		if err != nil {
			b.Fatal(err)
		}
		s.SetTraceSpan(root)
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
		root.End()
	}
}
