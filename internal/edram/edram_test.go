package edram

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
)

// fixedPolicy refreshes a constant number of lines per bank per event.
type fixedPolicy struct {
	perBank int
	events  int
	calls   int
}

func (p *fixedPolicy) Name() string         { return "fixed" }
func (p *fixedPolicy) EventsPerWindow() int { return p.events }
func (p *fixedPolicy) RefreshEvent(bank, event int) int {
	p.calls++
	return p.perBank
}

func TestRetentionCyclesFor(t *testing.T) {
	if got := RetentionCyclesFor(50, 2); got != 100000 {
		t.Fatalf("50us@2GHz = %d cycles, want 100000", got)
	}
	if got := RetentionCyclesFor(40, 2); got != 80000 {
		t.Fatalf("40us@2GHz = %d cycles, want 80000", got)
	}
}

func TestParamsValidate(t *testing.T) {
	if (Params{RetentionCycles: 0, Banks: 4}).Validate() == nil {
		t.Error("zero retention accepted")
	}
	if (Params{RetentionCycles: 100, Banks: 0}).Validate() == nil {
		t.Error("zero banks accepted")
	}
	if (Params{RetentionCycles: 100, Banks: 4}).Validate() != nil {
		t.Error("valid params rejected")
	}
}

func TestEngineEventSchedule(t *testing.T) {
	p := &fixedPolicy{perBank: 10, events: 1}
	e, err := NewEngine(Params{RetentionCycles: 1000, Banks: 2}, p)
	if err != nil {
		t.Fatal(err)
	}
	// No events before the first window boundary.
	e.AdvanceTo(999)
	if e.Events() != 0 {
		t.Fatalf("events at cycle 999 = %d, want 0", e.Events())
	}
	e.AdvanceTo(1000)
	if e.Events() != 1 {
		t.Fatalf("events at cycle 1000 = %d, want 1", e.Events())
	}
	if e.TotalRefreshed() != 20 { // 10 per bank x 2 banks
		t.Fatalf("refreshed = %d, want 20", e.TotalRefreshed())
	}
	// Jumping far ahead processes all intermediate windows.
	e.AdvanceTo(5500)
	if e.Events() != 5 {
		t.Fatalf("events at cycle 5500 = %d, want 5", e.Events())
	}
	if e.TotalRefreshed() != 100 {
		t.Fatalf("refreshed = %d, want 100", e.TotalRefreshed())
	}
}

func TestEngineAccessDelay(t *testing.T) {
	p := &fixedPolicy{perBank: 100, events: 1}
	e, err := NewEngine(Params{RetentionCycles: 1000, Banks: 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	// Refresh burst occupies [1000, 1100). An access at 1000 waits
	// 100 cycles; at 1050, 50; at 1100, 0.
	if d := e.AccessDelay(0, 1000); d != 100 {
		t.Fatalf("delay at burst start = %d, want 100", d)
	}
	if d := e.AccessDelay(0, 1050); d != 50 {
		t.Fatalf("delay mid-burst = %d, want 50", d)
	}
	if d := e.AccessDelay(0, 1100); d != 0 {
		t.Fatalf("delay after burst = %d, want 0", d)
	}
	// Before any event there is no delay.
	e2, _ := NewEngine(Params{RetentionCycles: 1000, Banks: 1}, &fixedPolicy{perBank: 100, events: 1})
	if d := e2.AccessDelay(0, 500); d != 0 {
		t.Fatalf("delay before first event = %d, want 0", d)
	}
}

func TestEngineBurstsQueue(t *testing.T) {
	// Bursts longer than the window must queue: with 2000 lines per
	// event and a 1000-cycle window, busy time accumulates.
	p := &fixedPolicy{perBank: 2000, events: 1}
	e, _ := NewEngine(Params{RetentionCycles: 1000, Banks: 1}, p)
	e.AdvanceTo(2000) // events at 1000 and 2000
	// First burst: [1000,3000). Second: [3000,5000).
	if d := e.AccessDelay(0, 2000); d != 3000 {
		t.Fatalf("queued delay = %d, want 3000", d)
	}
}

func TestEnginePolyphaseSpacing(t *testing.T) {
	p := &fixedPolicy{perBank: 1, events: 4}
	e, err := NewEngine(Params{RetentionCycles: 1000, Banks: 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	e.AdvanceTo(250)
	if e.Events() != 1 {
		t.Fatalf("first phase event not at retention/4: %d", e.Events())
	}
	e.AdvanceTo(1000)
	if e.Events() != 4 {
		t.Fatalf("events at one window = %d, want 4", e.Events())
	}
}

func TestEngineIntervalAccounting(t *testing.T) {
	p := &fixedPolicy{perBank: 5, events: 1}
	e, _ := NewEngine(Params{RetentionCycles: 100, Banks: 2}, p)
	e.AdvanceTo(300)
	if e.IntervalRefreshed() != 30 {
		t.Fatalf("interval refreshed = %d, want 30", e.IntervalRefreshed())
	}
	e.ResetInterval()
	if e.IntervalRefreshed() != 0 {
		t.Fatal("interval counter not reset")
	}
	e.AdvanceTo(400)
	if e.IntervalRefreshed() != 10 {
		t.Fatalf("interval refreshed after reset = %d, want 10", e.IntervalRefreshed())
	}
	if e.TotalRefreshed() != 40 {
		t.Fatalf("total refreshed = %d, want 40", e.TotalRefreshed())
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(Params{RetentionCycles: 0, Banks: 1}, &fixedPolicy{events: 1}); err == nil {
		t.Error("bad params accepted")
	}
	if _, err := NewEngine(Params{RetentionCycles: 100, Banks: 1}, &fixedPolicy{events: 0}); err == nil {
		t.Error("zero-event policy accepted")
	}
	if _, err := NewEngine(Params{RetentionCycles: 2, Banks: 1}, &fixedPolicy{events: 4}); err == nil {
		t.Error("more events than cycles accepted")
	}
}

func newL2(t testing.TB) *cache.Cache {
	t.Helper()
	return cache.MustNew(cache.Params{
		Name: "L2", SizeBytes: 64 * 8 * 64, Assoc: 8, LineBytes: 64,
		Modules: 4, Banks: 4, SamplingRatio: 16,
	})
}

func TestRefreshAllCountsAllFrames(t *testing.T) {
	c := newL2(t)
	p := NewRefreshAll(c)
	total := 0
	for b := 0; b < 4; b++ {
		total += p.RefreshEvent(b, 0)
	}
	if total != c.TotalLines() {
		t.Fatalf("baseline refreshes %d lines, want all %d", total, c.TotalLines())
	}
	// Independent of cache contents.
	c.Access(0, false)
	total2 := 0
	for b := 0; b < 4; b++ {
		total2 += p.RefreshEvent(b, 0)
	}
	if total2 != total {
		t.Fatal("baseline count changed with cache contents")
	}
}

func TestValidOnlyTracksValidLines(t *testing.T) {
	c := newL2(t)
	p := NewValidOnly(c)
	count := func() int {
		n := 0
		for b := 0; b < 4; b++ {
			n += p.RefreshEvent(b, 0)
		}
		return n
	}
	if count() != 0 {
		t.Fatal("empty cache should need no refreshes")
	}
	for i := 0; i < 10; i++ {
		c.Access(cache.Addr(i*64), false)
	}
	if count() != 10 {
		t.Fatalf("valid-only count = %d, want 10", count())
	}
	// Shrinking flushes follower lines; the count must drop
	// accordingly.
	before := count()
	for m := 0; m < c.NumModules(); m++ {
		c.SetActiveWays(m, 1)
	}
	if count() > before {
		t.Fatal("count grew after shrink")
	}
	if count() != c.ValidLines() {
		t.Fatalf("count = %d, valid = %d", count(), c.ValidLines())
	}
}

func TestNonePolicy(t *testing.T) {
	e, err := NewEngine(Params{RetentionCycles: 100, Banks: 4}, None{})
	if err != nil {
		t.Fatal(err)
	}
	e.AdvanceTo(10000)
	if e.TotalRefreshed() != 0 {
		t.Fatal("None policy refreshed lines")
	}
	if d := e.AccessDelay(2, 10000); d != 0 {
		t.Fatal("None policy delayed an access")
	}
}

// Property: total refreshed lines equal events x banks x perBank for
// any advance pattern, and AdvanceTo is idempotent/monotonic.
func TestEngineAdvanceProperty(t *testing.T) {
	err := quick.Check(func(steps []uint16) bool {
		p := &fixedPolicy{perBank: 3, events: 2}
		e, err := NewEngine(Params{RetentionCycles: 500, Banks: 2}, p)
		if err != nil {
			return false
		}
		var cur uint64
		for _, s := range steps {
			cur += uint64(s)
			e.AdvanceTo(cur)
			e.AdvanceTo(cur)     // idempotent
			e.AdvanceTo(cur / 2) // non-monotonic call is a no-op
		}
		wantEvents := cur / 250
		return e.Events() == wantEvents && e.TotalRefreshed() == wantEvents*2*3
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccessDelay(b *testing.B) {
	c := newL2(b)
	e, _ := NewEngine(Params{RetentionCycles: 100000, Banks: 4}, NewValidOnly(c))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.AccessDelay(i%4, uint64(i))
	}
}

func TestPolicyIdentities(t *testing.T) {
	c := newL2(t)
	ra := NewRefreshAll(c)
	if ra.Name() != "baseline" || ra.EventsPerWindow() != 1 {
		t.Error("RefreshAll identity wrong")
	}
	vo := NewValidOnly(c)
	if vo.Name() != "valid-only" || vo.EventsPerWindow() != 1 {
		t.Error("ValidOnly identity wrong")
	}
	if (None{}).Name() != "no-refresh" || (None{}).EventsPerWindow() != 1 {
		t.Error("None identity wrong")
	}
}

func TestEnginePolicyAndBusyCycles(t *testing.T) {
	p := &fixedPolicy{perBank: 5, events: 1}
	e, _ := NewEngine(Params{RetentionCycles: 100, Banks: 2}, p)
	if e.Policy() != p {
		t.Error("Policy() accessor wrong")
	}
	e.AdvanceTo(100)
	if e.TotalBusyCycles() != 10 {
		t.Errorf("busy cycles = %d, want 10", e.TotalBusyCycles())
	}
}
