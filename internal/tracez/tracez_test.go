package tracez

import (
	"context"
	"strings"
	"testing"
	"time"
)

// fakeClock returns a deterministic Now func advancing step per call.
func fakeClock(step time.Duration) func() time.Time {
	t := time.Unix(1000, 0)
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

// TestDeterministicIDs: two tracers with the same seed produce
// identical trace/span ID sequences and sampling decisions — the
// property the serving tests rely on for reproducible exports.
func TestDeterministicIDs(t *testing.T) {
	mk := func() []string {
		tr := New(Config{Seed: 42, Now: fakeClock(time.Millisecond)})
		var ids []string
		for i := 0; i < 5; i++ {
			root := tr.Root("job")
			child := root.Child("task")
			ids = append(ids, root.TraceID().String(), root.ID().String(), child.ID().String())
			child.End()
			root.End()
		}
		return ids
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("id %d differs: %s vs %s", i, a[i], b[i])
		}
	}
	// And the sequence itself is pinned: a seed change must not silently
	// alter every stored trace ID.
	tr := New(Config{Seed: 42})
	if got := tr.Root("x").TraceID().String(); got != a[0] {
		t.Fatalf("seed-42 first trace ID drifted: %s vs %s", got, a[0])
	}
}

// TestSamplerDeterminism: head sampling with a fixed seed makes the
// same decisions every run, and the ratio is roughly honoured.
func TestSamplerDeterminism(t *testing.T) {
	decide := func() []bool {
		tr := New(Config{Seed: 7, SampleRatio: 0.25, Now: fakeClock(time.Microsecond)})
		var out []bool
		for i := 0; i < 400; i++ {
			out = append(out, tr.Root("r").Sampled())
		}
		return out
	}
	a, b := decide(), b2(decide)
	sampled := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs", i)
		}
		if a[i] {
			sampled++
		}
	}
	if sampled < 50 || sampled > 150 {
		t.Fatalf("ratio 0.25 sampled %d/400", sampled)
	}
}

func b2(f func() []bool) []bool { return f() }

// TestHeadSamplingPropagates: an unsampled root records nothing and
// its children are nil (free), but the root still carries IDs for log
// correlation.
func TestHeadSamplingPropagates(t *testing.T) {
	tr := New(Config{Seed: 1, SampleRatio: 0.0001, Now: fakeClock(time.Microsecond)})
	var root *Span
	for i := 0; i < 64; i++ {
		if sp := tr.Root("r"); !sp.Sampled() {
			root = sp
			break
		}
	}
	if root == nil {
		t.Fatal("no unsampled root in 64 draws at ratio 1e-4")
	}
	if root.TraceID().IsZero() || root.ID().IsZero() {
		t.Fatal("unsampled root lost its IDs")
	}
	if c := root.Child("child"); c != nil {
		t.Fatal("unsampled root produced a live child")
	}
	root.End()
	if got := tr.Spans(root.TraceID()); len(got) != 0 {
		t.Fatalf("unsampled root recorded %d spans", len(got))
	}
	if st := tr.Stats(); st.Unsampled == 0 {
		t.Fatal("unsampled counter not incremented")
	}
}

// TestRingBound: the completed-span buffer evicts oldest-first at its
// capacity instead of growing.
func TestRingBound(t *testing.T) {
	tr := New(Config{Seed: 3, RingSize: 8, Now: fakeClock(time.Microsecond)})
	root := tr.Root("root")
	for i := 0; i < 20; i++ {
		root.Child("c").End()
	}
	root.End()
	spans := tr.Spans(root.TraceID())
	if len(spans) != 8 {
		t.Fatalf("ring held %d spans, want 8", len(spans))
	}
	// The newest span (the root, ended last) must be present.
	if spans[len(spans)-1].Name != "root" {
		t.Fatalf("newest span is %q, want root", spans[len(spans)-1].Name)
	}
	if st := tr.Stats(); st.Dropped != 13 {
		t.Fatalf("dropped %d, want 13", st.Dropped)
	}
}

// TestEndIdempotent: a double End records once.
func TestEndIdempotent(t *testing.T) {
	tr := New(Config{Seed: 5, Now: fakeClock(time.Microsecond)})
	root := tr.Root("r")
	root.End()
	root.End()
	if got := len(tr.Spans(root.TraceID())); got != 1 {
		t.Fatalf("double End recorded %d spans", got)
	}
}

// TestNilSpanFree: every operation on a nil span is a no-op with zero
// allocations — the disabled-tracing guarantee the sim hot path
// relies on.
func TestNilSpanFree(t *testing.T) {
	var sp *Span
	allocs := testing.AllocsPerRun(1000, func() {
		c := sp.Child("x")
		c.SetAttr("k", "v")
		c.SetAttrInt("n", 7)
		c.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-span ops allocate %.1f/op, want 0", allocs)
	}
	ctx := context.Background()
	allocs = testing.AllocsPerRun(1000, func() {
		if c2 := ContextWith(ctx, nil); c2 != ctx {
			t.Fatal("ContextWith(nil) changed ctx")
		}
		s, c2 := StartChild(ctx, "x")
		if s != nil || c2 != ctx {
			t.Fatal("StartChild without span not free")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-context ops allocate %.1f/op, want 0", allocs)
	}
}

// TestContextPropagation: StartChild nests under the context span.
func TestContextPropagation(t *testing.T) {
	tr := New(Config{Seed: 11, Now: fakeClock(time.Microsecond)})
	root := tr.Root("root")
	ctx := ContextWith(context.Background(), root)
	child, ctx2 := StartChild(ctx, "child")
	if child == nil {
		t.Fatal("no child from traced context")
	}
	grand, _ := StartChild(ctx2, "grand")
	grand.End()
	child.End()
	root.End()
	spans := tr.Spans(root.TraceID())
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	tree, err := BuildTree(spans)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Root.Name != "root" || tree.Root.Children[0].Name != "child" ||
		tree.Root.Children[0].Children[0].Name != "grand" {
		t.Fatalf("wrong nesting: %+v", tree.Root)
	}
}

// TestTraceparentRoundTrip: format/parse of the W3C header.
func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Config{Seed: 13, Now: fakeClock(time.Microsecond)})
	root := tr.Root("r")
	h := Traceparent(root)
	if !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("bad traceparent %q", h)
	}
	tid, parent, ok := ParseTraceparent(h)
	if !ok || tid != root.TraceID() || parent != root.ID() {
		t.Fatalf("round trip failed: %q -> (%s, %s, %v)", h, tid, parent, ok)
	}
	child := tr.RootFrom("server", tid, parent)
	if child.TraceID() != root.TraceID() {
		t.Fatal("RootFrom dropped the trace ID")
	}
	for _, bad := range []string{
		"", "00", "zz-00000000000000000000000000000001-0000000000000001-01",
		"00-00000000000000000000000000000000-0000000000000001-01", // zero trace
		"00-00000000000000000000000000000001-0000000000000000-01", // zero span
		"ff-00000000000000000000000000000001-0000000000000001-01", // bad version
		"00-0000000000000000000000000000000g-0000000000000001-01", // non-hex
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("accepted malformed traceparent %q", bad)
		}
	}
	if Traceparent(nil) != "" {
		t.Fatal("nil span produced a traceparent")
	}
}

// TestConcurrentSpans: concurrent child creation and End is race-free
// (run under -race) and loses nothing.
func TestConcurrentSpans(t *testing.T) {
	tr := New(Config{Seed: 17})
	root := tr.Root("root")
	done := make(chan struct{})
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				c := root.Child("c")
				c.SetAttrInt("i", int64(i))
				c.End()
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	root.End()
	if got := len(tr.Spans(root.TraceID())); got != workers*per+1 {
		t.Fatalf("got %d spans, want %d", got, workers*per+1)
	}
}

// BenchmarkDisabledSpan measures the disabled-tracing path: the cost
// the simulator pays per guard site when no tracer is attached.
func BenchmarkDisabledSpan(b *testing.B) {
	var sp *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := sp.Child("interval")
		c.SetAttrInt("index", int64(i))
		c.End()
	}
}

// BenchmarkEnabledSpan measures one recorded child span end to end.
func BenchmarkEnabledSpan(b *testing.B) {
	tr := New(Config{Seed: 1})
	root := tr.Root("root")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := root.Child("interval")
		c.End()
	}
}
