package sim

import (
	"testing"

	"repro/internal/trace"
)

// TestGoldenRun pins the exact observable counters of one small run
// over an inline workload profile (independent of the tuned benchmark
// table). Any change to the cache, refresh, memory or core models
// shows up here; if a change is intentional, regenerate the constants
// with `go test -run TestGoldenRun -v -update-golden` (prints the new
// values).
func TestGoldenRun(t *testing.T) {
	prof := trace.Profile{
		Name: "golden", Acronym: "Gn",
		MemOpFrac: 0.4, WriteFrac: 0.3,
		HotKB: 512, ZipfS: 1.0, BurstRefs: 4, LocalFrac: 0.5,
		StreamFrac: 0.1, StreamKB: 8 << 10, MLP: 2,
	}
	gen, err := trace.NewGenerator(prof, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.Technique = Esteem
	cfg.WarmupInstr = 300_000
	cfg.MeasureInstr = 1_500_000
	cfg.IntervalCycles = 250_000
	r, err := RunSources(cfg, []trace.Source{gen})
	if err != nil {
		t.Fatal(err)
	}

	got := map[string]uint64{
		"cycles":     r.Cores[0].Cycles,
		"instr":      r.Cores[0].Instructions,
		"l2hits":     r.L2.Hits,
		"l2misses":   r.L2.Misses,
		"refreshes":  r.Refreshes,
		"mmreads":    r.MM.Reads,
		"mmwb":       r.MM.Writebacks,
		"reconfigwb": r.ReconfigWritebacks,
	}
	want := map[string]uint64{
		"cycles":     2974561,
		"instr":      1500002,
		"l2hits":     88868,
		"l2misses":   6720,
		"refreshes":  257518,
		"mmreads":    6720,
		"mmwb":       77,
		"reconfigwb": 4,
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("golden %s = %d, want %d", k, got[k], w)
		}
	}
	if t.Failed() {
		t.Logf("regenerated golden values: %#v", got)
	}
}
