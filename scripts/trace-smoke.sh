#!/bin/sh
# trace-smoke.sh — end-to-end tracing smoke test.
#
# Proves the observability pipeline on both frontends:
#
#   1. esteem-bench with -telemetry writes a Chrome trace-event file
#      (trace.json) next to its run artifacts, with the simulator's
#      warmup/measure/interval phases visible;
#   2. a serve round trip (submit -> wait -> trace) exports a span
#      tree that the client validates for well-formedness (every span
#      parented, start <= end, parents contain children) and whose
#      queue/run phases cover >= 95% of the job's wall-clock, in both
#      tree and chrome formats.
set -eu
cd "$(dirname "$0")/.."
. ./scripts/lib.sh

WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== building binaries =="
go build -o "$WORK/" ./cmd/esteem-serve ./cmd/esteem-client ./cmd/esteem-bench

echo "== bench trace =="
"$WORK/esteem-bench" -exp fig2 -instr 200000 -warmup 50000 -interval 100000 \
    -out "$WORK/results" >/dev/null 2>"$WORK/bench.log"
[ -s "$WORK/results/trace.json" ] || { echo "bench wrote no trace.json"; cat "$WORK/bench.log"; exit 1; }
for phase in '"esteem-bench"' '"task"' '"sim"' '"warmup"' '"measure"' '"interval"' '"energy-finalize"'; do
    grep -q "$phase" "$WORK/results/trace.json" || { echo "bench trace missing $phase"; exit 1; }
done
grep -q '"traceEvents"' "$WORK/results/trace.json" || { echo "bench trace not chrome format"; exit 1; }
echo "bench trace OK"

echo "== serve trace round trip =="
"$WORK/esteem-serve" -addr 127.0.0.1:0 -addr-file "$WORK/addr" \
    -cache "$WORK/store" -log-format json >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!
wait_file "$WORK/addr" 10 || { cat "$WORK/serve.log"; exit 1; }
SERVER="http://$(cat "$WORK/addr")"
wait_healthz "$SERVER" 15 || { cat "$WORK/serve.log"; exit 1; }

JOB_ID="$("$WORK/esteem-client" submit -server "$SERVER" \
    -bench gcc -technique esteem -instr 200000 -warmup 50000 -interval 100000 -seed 1 -wait 2>/dev/null |
    sed -n 's/^  "id": "\([0-9a-f]*\)",$/\1/p')"
[ -n "$JOB_ID" ] || { echo "submit returned no job id"; exit 1; }

# Tree format: client-side Validate + coverage gate.
"$WORK/esteem-client" trace -server "$SERVER" -min-coverage 0.95 \
    -o "$WORK/tree.json" "$JOB_ID"
# Chrome format: loadable trace-event JSON.
"$WORK/esteem-client" trace -server "$SERVER" -format chrome \
    -o "$WORK/chrome.json" "$JOB_ID" 2>/dev/null
grep -q '"traceEvents"' "$WORK/chrome.json" || { echo "serve chrome trace malformed"; exit 1; }

# Structured logs carry the same trace id as the exported tree.
TREE_TID="$(sed -n 's/.*"trace_id": *"\([0-9a-f]*\)".*/\1/p' "$WORK/tree.json" | head -1)"
grep -q "\"trace_id\":\"$TREE_TID\"" "$WORK/serve.log" ||
    { echo "serve log missing trace id $TREE_TID"; cat "$WORK/serve.log"; exit 1; }
grep -q '"msg":"job done"' "$WORK/serve.log" || { echo "serve log missing job done line"; exit 1; }

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
SERVE_PID=""
echo "== trace smoke OK =="
