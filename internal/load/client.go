// The load generator's HTTP client: readiness probing, metrics
// scraping, and a submit-and-wait request path that treats
// connection-level failures during server start/drain as retryable
// with bounded backoff (429 load-shedding is recorded, never
// retried — an open-loop generator must not convert shed load into
// deferred load).
package load

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

// RetryableConnErr reports whether err is a connection-level failure
// worth retrying against a server that is starting up or draining:
// refused/reset connections and abruptly closed responses.
func RetryableConnErr(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.EOF)
}

// WaitReady polls GET /healthz until the server answers 200, retrying
// connection errors with doubling backoff (25ms up to 500ms) within
// timeout. It replaces the smoke scripts' sleep-and-hope loops.
func WaitReady(ctx context.Context, server string, timeout time.Duration) error {
	base := strings.TrimRight(server, "/")
	deadline := time.Now().Add(timeout)
	backoff := 25 * time.Millisecond
	var lastErr error
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("healthz: %s", resp.Status)
		} else {
			lastErr = err
		}
		if time.Now().Add(backoff).After(deadline) {
			return fmt.Errorf("load: server %s not ready within %s: %w", server, timeout, lastErr)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
}

// client drives one esteem-serve daemon.
type client struct {
	base    string
	http    *http.Client
	retries int // connection-error retries per request
}

func newClient(server string, retries int) *client {
	if retries < 0 {
		retries = 0
	}
	return &client{
		base:    strings.TrimRight(server, "/"),
		http:    &http.Client{},
		retries: retries,
	}
}

// scrape fetches the JSON metrics view.
func (c *client) scrape(ctx context.Context) (serve.MetricsView, error) {
	var v serve.MetricsView
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics?format=json", nil)
	if err != nil {
		return v, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return v, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return v, fmt.Errorf("GET /metrics?format=json: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return v, fmt.Errorf("decoding metrics view: %w", err)
	}
	return v, nil
}

// cacheDelta converts two metric snapshots into the window's cache
// behaviour.
func cacheDelta(before, after serve.MetricsView) CacheStats {
	c := func(name string) uint64 {
		d := after.Counters[name] - before.Counters[name]
		return d
	}
	st := CacheStats{
		Hits:         c("esteem_serve_cache_hits_total"),
		Misses:       c("esteem_serve_cache_misses_total"),
		Coalesced:    c("esteem_serve_cache_coalesced_total"),
		Computes:     c("esteem_serve_cache_computes_total"),
		SimsExecuted: c("esteem_serve_sims_executed_total"),
	}
	if lookups := st.Hits + st.Coalesced + st.Misses; lookups > 0 {
		st.HitRate = float64(st.Hits+st.Coalesced) / float64(lookups)
	}
	qb := before.Histograms["esteem_serve_queue_wait_seconds"]
	qa := after.Histograms["esteem_serve_queue_wait_seconds"]
	if dc := qa.Count - qb.Count; dc > 0 {
		st.QueueWaitMeanMs = (qa.SumSeconds - qb.SumSeconds) / float64(dc) * 1e3
	}
	return st
}

// reqResult is one request's outcome.
type reqResult struct {
	ok       bool
	rejected bool // 429 after admission
	err      error
	latency  time.Duration
	retries  int
}

// submitAndWait posts one job and waits for its terminal state,
// measuring end-to-end latency (submission to completion). Connection
// errors retry with bounded backoff; 429 records a rejection.
func (c *client) submitAndWait(ctx context.Context, spec serve.JobSpec) reqResult {
	body, err := json.Marshal(spec)
	if err != nil {
		return reqResult{err: err}
	}
	start := time.Now()
	res := reqResult{}

	var id string
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		id, err = c.post(ctx, body)
		if err == nil {
			break
		}
		var rej rejectedErr
		if errors.As(err, &rej) {
			res.rejected = true
			res.latency = time.Since(start)
			return res
		}
		if attempt >= c.retries || !RetryableConnErr(err) {
			res.err = err
			res.latency = time.Since(start)
			return res
		}
		res.retries++
		select {
		case <-ctx.Done():
			res.err = ctx.Err()
			return res
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}

	if err := c.waitTerminal(ctx, id); err != nil {
		res.err = err
		res.latency = time.Since(start)
		return res
	}
	res.ok = true
	res.latency = time.Since(start)
	return res
}

// rejectedErr marks a 429 admission rejection.
type rejectedErr struct{}

func (rejectedErr) Error() string { return "rejected: admission queue full (429)" }

// post submits the job body and returns the job ID.
func (c *client) post(ctx context.Context, body []byte) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return "", rejectedErr{}
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(payload)))
	}
	var view struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(payload, &view); err != nil {
		return "", err
	}
	if view.ID == "" {
		return "", fmt.Errorf("submit: response carried no job id")
	}
	return view.ID, nil
}

// waitTerminal follows the job's SSE stream until a terminal state;
// if the stream drops it falls back to status polling.
func (c *client) waitTerminal(ctx context.Context, id string) error {
	if done, err := c.streamUntilTerminal(ctx, id); done {
		return err
	}
	// Stream dropped mid-job (drain, proxy, transient): poll status.
	tick := 25 * time.Millisecond
	for {
		state, jobErr, err := c.status(ctx, id)
		if err == nil {
			switch serve.State(state) {
			case serve.StateDone:
				return nil
			case serve.StateFailed, serve.StateCanceled:
				return fmt.Errorf("job %s %s: %s", id, state, jobErr)
			}
		} else if !RetryableConnErr(err) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(tick):
		}
		if tick *= 2; tick > 500*time.Millisecond {
			tick = 500 * time.Millisecond
		}
	}
}

// streamUntilTerminal consumes the SSE event stream. done reports
// whether a terminal state was seen (err then carries the job's
// outcome); done=false means the stream broke and the caller should
// fall back to polling.
func (c *client) streamUntilTerminal(ctx context.Context, id string) (done bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return false, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false, nil
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return false, nil
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev) != nil {
			continue
		}
		switch serve.State(ev.State) {
		case serve.StateDone:
			return true, nil
		case serve.StateFailed, serve.StateCanceled:
			return true, fmt.Errorf("job %s %s: %s", id, ev.State, ev.Error)
		}
	}
	return false, nil
}

// status fetches a job's state.
func (c *client) status(ctx context.Context, id string) (state, jobErr string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return "", "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return "", "", fmt.Errorf("GET /v1/jobs/%s: %s: %s", id, resp.Status, strings.TrimSpace(string(body)))
	}
	var v struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return "", "", err
	}
	return v.State, v.Error, nil
}
