package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestTable2 pins the paper's Table 2 values exactly.
func TestTable2(t *testing.T) {
	cases := []struct {
		mb    int
		dynNJ float64
		leakW float64
	}{
		{2, 0.186, 0.096},
		{4, 0.212, 0.116},
		{8, 0.282, 0.280},
		{16, 0.370, 0.456},
		{32, 0.467, 1.056},
	}
	for _, c := range cases {
		dyn, leak, err := L2Energy(c.mb << 20)
		if err != nil {
			t.Fatalf("%d MB: %v", c.mb, err)
		}
		if !close(dyn, c.dynNJ*1e-9, 1e-15) {
			t.Errorf("%d MB dyn = %v, want %v nJ", c.mb, dyn*1e9, c.dynNJ)
		}
		if !close(leak, c.leakW, 1e-12) {
			t.Errorf("%d MB leak = %v, want %v W", c.mb, leak, c.leakW)
		}
	}
}

func TestL2EnergyInterpolation(t *testing.T) {
	// 6 MB must land strictly between the 4 MB and 8 MB rows.
	dyn, leak, err := L2Energy(6 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if dyn <= 0.212e-9 || dyn >= 0.282e-9 {
		t.Errorf("6 MB dyn = %v nJ outside (0.212, 0.282)", dyn*1e9)
	}
	if leak <= 0.116 || leak >= 0.280 {
		t.Errorf("6 MB leak = %v outside (0.116, 0.280)", leak)
	}
}

func TestL2EnergyMonotone(t *testing.T) {
	prevDyn, prevLeak := 0.0, 0.0
	for mb := 2; mb <= 32; mb++ {
		dyn, leak, err := L2Energy(mb << 20)
		if err != nil {
			t.Fatal(err)
		}
		if dyn < prevDyn || leak < prevLeak {
			t.Fatalf("energy not monotone at %d MB", mb)
		}
		prevDyn, prevLeak = dyn, leak
	}
}

func TestL2EnergyOutOfRange(t *testing.T) {
	if _, _, err := L2Energy(1 << 20); err == nil {
		t.Error("1 MB accepted")
	}
	if _, _, err := L2Energy(64 << 20); err == nil {
		t.Error("64 MB accepted")
	}
}

func TestNewModel(t *testing.T) {
	m, err := NewModel(4<<20, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	if !close(m.L2DynJ, 0.212e-9, 1e-15) || !close(m.L2LeakW, 0.116, 1e-12) {
		t.Errorf("model constants wrong: %+v", m)
	}
	if m.MMDynJPerAccess != 70e-9 || m.MMLeakWatt != 0.18 || m.TransJ != 2e-12 {
		t.Errorf("paper constants wrong: %+v", m)
	}
	if _, err := NewModel(4<<20, 0); err == nil {
		t.Error("zero frequency accepted")
	}
}

// TestEvalHandComputed checks every equation term against a hand
// computation.
func TestEvalHandComputed(t *testing.T) {
	m := Model{
		L2DynJ:          0.2e-9,
		L2LeakW:         0.1,
		MMDynJPerAccess: 70e-9,
		MMLeakWatt:      0.18,
		TransJ:          2e-12,
		FreqHz:          2e9,
	}
	a := Activity{
		Cycles:            2_000_000_000, // 1 s
		L2Hits:            1000,
		L2Misses:          500,
		Refreshes:         10000,
		ActiveFraction:    0.5,
		MMAccesses:        600,
		LinesTransitioned: 1e6,
	}
	b := m.Eval(a)
	if !close(b.L2Leak, 0.1*0.5*1.0, 1e-12) { // Eq 4
		t.Errorf("L2Leak = %v", b.L2Leak)
	}
	if !close(b.L2Dyn, 0.2e-9*(2*500+1000), 1e-18) { // Eq 5
		t.Errorf("L2Dyn = %v", b.L2Dyn)
	}
	if !close(b.L2Refresh, 10000*0.2e-9, 1e-15) { // Eq 6
		t.Errorf("L2Refresh = %v", b.L2Refresh)
	}
	if !close(b.MMLeak, 0.18, 1e-12) { // Eq 7 term 1
		t.Errorf("MMLeak = %v", b.MMLeak)
	}
	if !close(b.MMDyn, 70e-9*600, 1e-12) { // Eq 7 term 2
		t.Errorf("MMDyn = %v", b.MMDyn)
	}
	if !close(b.Algo, 2e-12*1e6, 1e-15) { // Eq 8
		t.Errorf("Algo = %v", b.Algo)
	}
	if !close(b.Total(), b.L2Leak+b.L2Dyn+b.L2Refresh+b.MMLeak+b.MMDyn+b.Algo, 1e-15) {
		t.Error("Total != sum of parts")
	}
	if !close(b.L2(), b.L2Leak+b.L2Dyn+b.L2Refresh, 1e-15) {
		t.Error("L2() != sum of L2 parts")
	}
	if !close(b.MM(), b.MMLeak+b.MMDyn, 1e-15) {
		t.Error("MM() != sum of MM parts")
	}
}

// TestRefreshDominatesBaseline verifies the headline motivation: for
// an idle-ish baseline 4 MB cache at 50 µs retention, refresh energy
// is ~70% of L2 energy (leakage most of the rest), per the paper's
// Section 1 citation of Refrint.
func TestRefreshDominatesBaseline(t *testing.T) {
	m, err := NewModel(4<<20, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	// One second of a baseline cache: all 65536 lines refreshed every
	// 50 us → 20000 windows/s.
	lines := uint64(4 << 20 / 64)
	a := Activity{
		Cycles:         2_000_000_000,
		Refreshes:      lines * 20000,
		ActiveFraction: 1,
		// modest access traffic so dynamic energy stays small
		L2Hits:   1_000_000,
		L2Misses: 100_000,
	}
	b := m.Eval(a)
	frac := b.L2Refresh / b.L2()
	if frac < 0.6 || frac > 0.8 {
		t.Fatalf("refresh fraction of L2 energy = %.2f, want ~0.7", frac)
	}
	if b.L2Leak/b.L2() < 0.1 {
		t.Fatalf("leakage fraction = %.2f, want most of the remainder", b.L2Leak/b.L2())
	}
}

func TestActivityAdd(t *testing.T) {
	a := Activity{Cycles: 100, L2Hits: 10, ActiveFraction: 1.0}
	b := Activity{Cycles: 300, L2Misses: 5, ActiveFraction: 0.2}
	a.Add(b)
	if a.Cycles != 400 || a.L2Hits != 10 || a.L2Misses != 5 {
		t.Fatalf("counts wrong: %+v", a)
	}
	// Cycle-weighted active fraction: (1.0*100 + 0.2*300)/400 = 0.4.
	if !close(a.ActiveFraction, 0.4, 1e-12) {
		t.Fatalf("active fraction = %v, want 0.4", a.ActiveFraction)
	}
}

func TestActivityAddEmpty(t *testing.T) {
	var a Activity
	a.Add(Activity{})
	if a.Cycles != 0 || a.ActiveFraction != 0 {
		t.Fatalf("empty add produced %+v", a)
	}
}

func TestSavingPercent(t *testing.T) {
	if got := SavingPercent(100, 75); got != 25 {
		t.Errorf("saving = %v, want 25", got)
	}
	if got := SavingPercent(100, 120); got != -20 {
		t.Errorf("negative saving = %v, want -20", got)
	}
	if got := SavingPercent(0, 5); got != 0 {
		t.Errorf("zero base = %v, want 0", got)
	}
}

// Property: energy is non-negative and monotone in every activity
// component.
func TestEvalMonotoneProperty(t *testing.T) {
	m, err := NewModel(8<<20, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	err = quick.Check(func(cyc uint32, hits, misses, refr, mma, nl uint16) bool {
		a := Activity{
			Cycles: uint64(cyc), L2Hits: uint64(hits), L2Misses: uint64(misses),
			Refreshes: uint64(refr), ActiveFraction: 0.5, MMAccesses: uint64(mma),
			LinesTransitioned: uint64(nl),
		}
		base := m.Eval(a).Total()
		if base < 0 {
			return false
		}
		bumped := a
		bumped.L2Misses++
		bumped.Refreshes++
		bumped.MMAccesses++
		return m.Eval(bumped).Total() >= base
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// Property: Activity.Add is associative enough for accounting — the
// sum of evaluated parts equals the evaluation of the sum (all terms
// are linear; F_A is cycle-weighted).
func TestAddLinearityProperty(t *testing.T) {
	m, err := NewModel(4<<20, 2e9)
	if err != nil {
		t.Fatal(err)
	}
	err = quick.Check(func(c1, c2 uint16, h1, h2 uint16, f1, f2 uint8) bool {
		a := Activity{Cycles: uint64(c1) + 1, L2Hits: uint64(h1), ActiveFraction: float64(f1%101) / 100}
		b := Activity{Cycles: uint64(c2) + 1, L2Hits: uint64(h2), ActiveFraction: float64(f2%101) / 100}
		split := m.Eval(a).Total() + m.Eval(b).Total()
		sum := a
		sum.Add(b)
		merged := m.Eval(sum).Total()
		return close(split, merged, 1e-9*math.Max(split, 1))
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
