// Package xrand provides a small, deterministic pseudo-random number
// generator and the distributions needed by the synthetic workload
// generators. It is based on splitmix64, which is fast, has a full
// 2^64 period per stream, and — unlike math/rand's default source —
// is guaranteed to produce identical sequences across Go releases.
// Determinism matters here: every experiment in EXPERIMENTS.md must be
// exactly reproducible from a named seed.
package xrand

import (
	"math"
	"sync"
)

// RNG is a splitmix64 generator. The zero value is a valid generator
// seeded with 0; use New to seed explicitly.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators with the
// same seed produce identical sequences.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Seed resets the generator to the given seed.
func (r *RNG) Seed(seed uint64) { r.state = seed }

// State returns the generator's current internal state. Together with
// SetState it lets checkpoints capture and resume a stream exactly:
// splitmix64's whole state is one word, and the next output is a pure
// function of it.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a state previously obtained from State.
func (r *RNG) SetState(s uint64) { r.state = s }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split returns a new generator whose stream is statistically
// independent of the receiver's. It is used to derive per-benchmark
// and per-core substreams from a single experiment seed.
func (r *RNG) Split() *RNG {
	// Mixing two outputs keeps child streams decorrelated from both
	// the parent's future outputs and from sibling children.
	a := r.Uint64()
	b := r.Uint64()
	return New(a ^ (b << 1) ^ 0xD1B54A32D192ED03)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 random bits / 2^53, the standard construction.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from the geometric distribution with
// success probability p: the number of failures before the first
// success, so the mean is (1-p)/p. It panics unless 0 < p <= 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	// Avoid log(0).
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(math.Log(u) / math.Log(1-p))
}

// Exponential returns a sample from the exponential distribution with
// the given mean. It panics if mean <= 0.
func (r *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("xrand: Exponential requires mean > 0")
	}
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(u)
}

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s. The CDF is precomputed once per (n, s) pair and shared
// globally between samplers — it is immutable, and rebuilding it with
// math.Pow for every generator phase switch dominated simulator
// construction profiles.
type Zipf struct {
	t   *zipfTable
	rng *RNG
}

// zipfBuckets is the fan-out of the first-level index over the CDF.
// A power of two so that int(u*zipfBuckets) is computed exactly and
// u < (bucket+1)/zipfBuckets holds by construction.
const zipfBuckets = 256

type zipfTable struct {
	cdf []float64
	// For u in bucket b, the first CDF entry >= u lies in
	// [lo[b], hi[b]]: lo[b] is the first entry >= b/zipfBuckets and
	// hi[b] the first entry >= (b+1)/zipfBuckets. The bracketed
	// binary search returns exactly what a full-range search would.
	lo, hi []int32
}

type zipfTableKey struct {
	n     int
	sbits uint64
}

var zipfTables sync.Map // zipfTableKey -> *zipfTable

func zipfTableFor(n int, s float64) *zipfTable {
	key := zipfTableKey{n: n, sbits: math.Float64bits(s)}
	if v, ok := zipfTables.Load(key); ok {
		return v.(*zipfTable)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	t := &zipfTable{
		cdf: cdf,
		lo:  make([]int32, zipfBuckets),
		hi:  make([]int32, zipfBuckets),
	}
	idx := 0
	for b := 0; b < zipfBuckets; b++ {
		thr := float64(b) / zipfBuckets
		for idx < n-1 && cdf[idx] < thr {
			idx++
		}
		t.lo[b] = int32(idx)
		if b > 0 {
			t.hi[b-1] = int32(idx)
		}
	}
	// hi for the last bucket: first entry >= 1, which exists because
	// cdf[n-1] is pinned to 1.
	for idx < n-1 && cdf[idx] < 1 {
		idx++
	}
	t.hi[zipfBuckets-1] = int32(idx)
	v, _ := zipfTables.LoadOrStore(key, t)
	return v.(*zipfTable)
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s >= 0,
// drawing randomness from rng. It panics if n <= 0 or s < 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf requires n > 0")
	}
	if s < 0 {
		panic("xrand: NewZipf requires s >= 0")
	}
	return &Zipf{t: zipfTableFor(n, s), rng: rng}
}

// N returns the size of the sampler's domain.
func (z *Zipf) N() int { return len(z.t.cdf) }

// RNGState returns the internal state of the sampler's RNG stream,
// for checkpointing.
func (z *Zipf) RNGState() uint64 { return z.rng.state }

// Next returns the next sample in [0, N()): the first CDF entry >= u.
// The bucket index narrows the search range; because the brackets
// provably contain the answer, the result is identical to a binary
// search over the whole CDF (the search path differs, the unique
// answer does not).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	t := z.t
	b := int(u * zipfBuckets)
	lo, hi := int(t.lo[b]), int(t.hi[b])
	cdf := t.cdf
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
