// Exporters: the canonical span-tree JSON served by
// GET /v1/jobs/{id}/trace, the Chrome trace-event JSON that Perfetto
// (ui.perfetto.dev) and chrome://tracing load directly, and the
// well-formedness checks the smoke tests gate on.
package tracez

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// Node is one span in an exported tree. Times are microseconds
// relative to the tree root's start, so exports are stable across
// machines and fake clocks alike.
type Node struct {
	Name     string  `json:"name"`
	SpanID   string  `json:"span_id"`
	ParentID string  `json:"parent_id,omitempty"`
	StartUS  int64   `json:"start_us"`
	DurUS    int64   `json:"dur_us"`
	Attrs    []Attr  `json:"attrs,omitempty"`
	Children []*Node `json:"children,omitempty"`
}

// Tree is the exported form of one trace: the root span with every
// descendant nested under it.
type Tree struct {
	TraceID string `json:"trace_id"`
	// Spans counts every node in the tree.
	Spans int   `json:"spans"`
	Root  *Node `json:"root"`
}

// BuildTree assembles the completed spans of one trace into a Tree.
// It requires exactly one root (parent absent or outside the span
// set may only be the remote submitter's span id, shared by the root)
// and every other span's parent present — the ring must not have
// evicted part of the trace.
func BuildTree(spans []SpanData) (*Tree, error) {
	if len(spans) == 0 {
		return nil, fmt.Errorf("tracez: no spans")
	}
	byID := make(map[SpanID]*Node, len(spans))
	order := make([]SpanID, 0, len(spans))
	tid := spans[0].TraceID
	for _, d := range spans {
		if d.TraceID != tid {
			return nil, fmt.Errorf("tracez: span %s belongs to trace %s, want %s", d.SpanID, d.TraceID, tid)
		}
		if _, dup := byID[d.SpanID]; dup {
			return nil, fmt.Errorf("tracez: duplicate span id %s", d.SpanID)
		}
		byID[d.SpanID] = &Node{
			Name:   d.Name,
			SpanID: d.SpanID.String(),
			Attrs:  d.Attrs,
		}
		order = append(order, d.SpanID)
	}
	// Find the root: the unique span whose parent is not in the set.
	var root *Node
	var rootStart time.Time
	for _, d := range spans {
		if _, ok := byID[d.Parent]; ok {
			continue
		}
		if root != nil {
			return nil, fmt.Errorf("tracez: multiple roots (%q and %q) — ring may have evicted part of the trace", root.Name, d.Name)
		}
		root = byID[d.SpanID]
		rootStart = d.Start
		if !d.Parent.IsZero() {
			root.ParentID = d.Parent.String() // remote parent, kept for reference
		}
	}
	if root == nil {
		return nil, fmt.Errorf("tracez: no root span (parent cycle)")
	}
	// Second pass: timestamps relative to the root and parent links.
	for _, d := range spans {
		n := byID[d.SpanID]
		n.StartUS = d.Start.Sub(rootStart).Microseconds()
		n.DurUS = d.End.Sub(d.Start).Microseconds()
		if n == root {
			continue
		}
		p := byID[d.Parent]
		n.ParentID = d.Parent.String()
		p.Children = append(p.Children, n)
	}
	// Children sorted by start time (then id) for a stable export;
	// the ring preserves completion order, not start order.
	for _, id := range order {
		n := byID[id]
		sort.SliceStable(n.Children, func(i, j int) bool {
			if n.Children[i].StartUS != n.Children[j].StartUS {
				return n.Children[i].StartUS < n.Children[j].StartUS
			}
			return n.Children[i].SpanID < n.Children[j].SpanID
		})
	}
	return &Tree{TraceID: tid.String(), Spans: len(spans), Root: root}, nil
}

// Validate checks a tree's well-formedness: non-negative durations,
// every child starting at or after its parent and ending at or before
// it (within slack, for clock rounding to whole microseconds), and
// parent links that match the nesting. It is the check the smoke
// tests run against served traces.
func (t *Tree) Validate() error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("tracez: empty tree")
	}
	const slackUS = 1000 // 1ms: µs rounding plus scheduler skew on End ordering
	count := 0
	var walk func(n *Node) error
	walk = func(n *Node) error {
		count++
		if n.DurUS < 0 {
			return fmt.Errorf("tracez: span %q (%s) has negative duration %dus", n.Name, n.SpanID, n.DurUS)
		}
		for _, c := range n.Children {
			if c.ParentID != n.SpanID {
				return fmt.Errorf("tracez: span %q (%s) nested under %q (%s) but declares parent %s",
					c.Name, c.SpanID, n.Name, n.SpanID, c.ParentID)
			}
			if c.StartUS < n.StartUS-slackUS {
				return fmt.Errorf("tracez: span %q starts %dus before its parent %q", c.Name, n.StartUS-c.StartUS, n.Name)
			}
			if c.StartUS+c.DurUS > n.StartUS+n.DurUS+slackUS {
				return fmt.Errorf("tracez: span %q ends %dus after its parent %q", c.Name,
					c.StartUS+c.DurUS-n.StartUS-n.DurUS, n.Name)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.Root); err != nil {
		return err
	}
	if count != t.Spans {
		return fmt.Errorf("tracez: tree declares %d spans but contains %d", t.Spans, count)
	}
	return nil
}

// Coverage reports what fraction of the root span's duration is
// covered by the union of its direct children — the "do the phases
// account for the wall-clock" number the acceptance gate checks.
// A childless or zero-length root reports 1.
func (t *Tree) Coverage() float64 {
	if t == nil || t.Root == nil || t.Root.DurUS <= 0 || len(t.Root.Children) == 0 {
		return 1
	}
	type iv struct{ s, e int64 }
	ivs := make([]iv, 0, len(t.Root.Children))
	for _, c := range t.Root.Children {
		s, e := c.StartUS, c.StartUS+c.DurUS
		if s < t.Root.StartUS {
			s = t.Root.StartUS
		}
		if top := t.Root.StartUS + t.Root.DurUS; e > top {
			e = top
		}
		if e > s {
			ivs = append(ivs, iv{s, e})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
	var covered, end int64
	end = -1 << 62
	for _, v := range ivs {
		if v.s > end {
			covered += v.e - v.s
			end = v.e
		} else if v.e > end {
			covered += v.e - end
			end = v.e
		}
	}
	return float64(covered) / float64(t.Root.DurUS)
}

// MarshalTree renders the tree as deterministic, two-space-indented
// JSON (struct field order is fixed; children are sorted by start).
func MarshalTree(t *Tree) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ParseTree decodes a tree produced by MarshalTree (the client's
// fetch path).
func ParseTree(data []byte) (*Tree, error) {
	var t Tree
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("tracez: decoding tree: %w", err)
	}
	return &t, nil
}

// chromeEvent is one Chrome trace-event ("X" = complete span, "M" =
// metadata). See the Trace Event Format spec; Perfetto loads this
// JSON directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON-object form of a Chrome trace capture.
type chromeFile struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// ChromeTrace renders the tree as Chrome trace-event JSON. The root
// and each of its direct subtrees get their own track ("tid"), so
// concurrent tasks render side by side instead of as a false stack;
// within a subtree spans are strictly nested and stack naturally.
// Spans carrying a "node" attribute (inherited by their descendants)
// group into one process lane ("pid") per node, so a merged cluster
// trace renders coordinator and workers side by side; single-node
// trees stay one process, exactly as before.
func ChromeTrace(t *Tree) ([]byte, error) {
	if t == nil || t.Root == nil {
		return nil, fmt.Errorf("tracez: empty tree")
	}
	f := chromeFile{DisplayTimeUnit: "ms"}
	// One pid per distinct node value, in discovery order. Spans with
	// no "node" attribute inherit the nearest ancestor's.
	pids := map[string]int{}
	pidOrder := []string{}
	pidOf := func(node string) int {
		if p, ok := pids[node]; ok {
			return p
		}
		p := len(pids) + 1
		pids[node] = p
		pidOrder = append(pidOrder, node)
		return p
	}
	nodeOf := func(n *Node, inherited string) string {
		for _, a := range n.Attrs {
			if a.Key == "node" {
				return a.Value
			}
		}
		return inherited
	}
	type track struct{ pid, tid int }
	named := map[track]bool{}
	name := func(pid, tid int, label string) {
		if named[track{pid, tid}] {
			return
		}
		named[track{pid, tid}] = true
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": label},
		})
	}
	emit := func(n *Node, pid, tid int) {
		args := map[string]any{"span_id": n.SpanID, "trace_id": t.TraceID}
		for _, a := range n.Attrs {
			args[a.Key] = a.Value
		}
		dur := n.DurUS
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: n.Name, Cat: "esteem", Ph: "X", TS: n.StartUS, Dur: &dur, PID: pid, TID: tid,
			Args: args,
		})
	}
	var walk func(n *Node, node, label string, tid int)
	walk = func(n *Node, node, label string, tid int) {
		node = nodeOf(n, node)
		pid := pidOf(node)
		name(pid, tid, label)
		emit(n, pid, tid)
		for _, c := range n.Children {
			walk(c, node, label, tid)
		}
	}
	rootNode := nodeOf(t.Root, "")
	name(pidOf(rootNode), 0, t.Root.Name)
	emit(t.Root, pidOf(rootNode), 0)
	lane := 0
	for _, c := range t.Root.Children {
		lane++
		walk(c, rootNode, c.Name, lane)
	}
	// Name the process lanes only when the trace actually crossed
	// nodes; single-node exports keep their historical shape.
	if len(pids) > 1 {
		for _, node := range pidOrder {
			label := node
			if label == "" {
				label = "local"
			}
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", PID: pids[node],
				Args: map[string]any{"name": label},
			})
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
