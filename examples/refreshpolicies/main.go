// Refreshpolicies: compare every refresh-management policy in the
// repository on workloads with different cache occupancy — the
// baseline (refresh everything), Refrint periodic-valid, RPV and RPD,
// ESTEEM, an ESTEEM ablation without valid-only refresh, and the
// unrealizable no-refresh lower bound.
//
// All 27 simulations (9 policies x 3 workloads) are independent, so
// they are scheduled on a Sweep and fan out across the worker pool.
//
//	go run ./examples/refreshpolicies
package main

import (
	"context"
	"fmt"
	"log"

	esteem "repro"
)

func main() {
	policies := []esteem.Technique{
		esteem.Baseline,
		esteem.PeriodicValid,
		esteem.RPV,
		esteem.RPD,
		esteem.SmartRefresh,
		esteem.ECCExtended,
		esteem.EsteemAllLineRefresh,
		esteem.Esteem,
		esteem.NoRefresh,
	}
	// gamess leaves the L2 nearly empty (valid-only policies shine);
	// sphinx fills it with live data (only reconfiguration helps);
	// lbm fills it with dead streaming data (refresh avoidance is
	// cheap there, and ESTEEM also shuts capacity off).
	workloads := []string{"gamess", "sphinx", "lbm"}

	s := esteem.NewSweep(0)
	jobs := map[string]map[esteem.Technique]*esteem.SimJob{}
	for _, w := range workloads {
		jobs[w] = map[esteem.Technique]*esteem.SimJob{}
		for _, p := range policies {
			cfg := esteem.DefaultConfig(1)
			cfg.Technique = p
			cfg.MeasureInstr = 12_000_000
			cfg.WarmupInstr = 6_000_000
			jobs[w][p] = s.Sim(cfg, []string{w})
		}
	}
	if err := s.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	results := map[string]map[esteem.Technique]*esteem.Result{}
	for _, w := range workloads {
		results[w] = map[esteem.Technique]*esteem.Result{}
		for _, p := range policies {
			results[w][p] = jobs[w][p].Result()
		}
	}

	fmt.Println("% energy saving vs baseline (1-core, 4MB L2, 50us retention)")
	fmt.Printf("%-16s", "policy")
	for _, w := range workloads {
		fmt.Printf(" %10s", w)
	}
	fmt.Println()
	for _, p := range policies {
		fmt.Printf("%-16s", p)
		for _, w := range workloads {
			base := results[w][esteem.Baseline].Energy.Total()
			cur := results[w][p].Energy.Total()
			fmt.Printf(" %9.1f%%", 100*(base-cur)/base)
		}
		fmt.Println()
	}

	fmt.Println("\nrefreshes per kilo-instruction:")
	for _, p := range policies {
		fmt.Printf("%-16s", p)
		for _, w := range workloads {
			fmt.Printf(" %10.0f", results[w][p].RPKI())
		}
		fmt.Println()
	}

	fmt.Println("\nnotes:")
	fmt.Println("  - no-refresh is an unrealizable lower bound (data would decay).")
	fmt.Println("  - RPD trades refreshes for misses: check its MPKI against RPV's.")
	for _, w := range workloads {
		fmt.Printf("    %s: RPV MPKI %.2f vs RPD MPKI %.2f\n",
			w, results[w][esteem.RPV].MPKI(), results[w][esteem.RPD].MPKI())
	}
}
