// Package load is the open-loop traffic generator behind esteem-load:
// it synthesizes parameterised request schedules (ramps, bursts,
// seeded arrival jitter, cache-hot/cold mixes), drives an esteem-serve
// daemon with them without ever gating arrivals on completions, and
// records the service-level outcome — p50/p99/p999 latency,
// throughput, 429 and error counts, queue wait and the cache hit/miss
// split scraped from /metrics — as a Report. Reports append to the
// checked-in BENCH_serve.json trajectory and gate CI regressions via
// esteem-servegate, the service-level sibling of esteem-benchgate.
//
// The schedule model follows the invitro trace synthesizer: a list of
// constant-rate slots described by a starting RPS, a step size and a
// target RPS, optionally followed by a burst slot. Arrival times are
// open-loop — precomputed from the rate alone, so a slow server faces
// mounting concurrency instead of an accommodating client.
package load

import (
	"fmt"
	"math/rand"
	"time"
)

// Phase is one constant-rate slot of a schedule.
type Phase struct {
	Name    string  `json:"name"`
	RPS     float64 `json:"rps"`
	Seconds float64 `json:"seconds"`
}

// Schedule describes an open-loop arrival process.
type Schedule struct {
	// Phases run back to back; each contributes round(RPS*Seconds)
	// arrivals at evenly spaced slots.
	Phases []Phase
	// HotFraction in [0,1] is the fraction of arrivals that reuse the
	// shared cache-hot job spec (duplicate content address); the rest
	// are cache-cold unique specs. The split is exact per phase, with
	// seeded placement.
	HotFraction float64
	// Jitter in [0,1] displaces each arrival uniformly by up to
	// ±Jitter/2 of the mean gap (seeded, deterministic). Arrival
	// order within a phase is preserved for any Jitter <= 1.
	Jitter float64
	// Seed drives jitter and hot/cold placement; it also derives the
	// cold specs' simulation seeds, so a fixed seed replays the exact
	// same traffic.
	Seed int64
}

// Arrival is one synthesized request.
type Arrival struct {
	// At is the offset from the start of the run.
	At time.Duration
	// Phase indexes Schedule.Phases.
	Phase int
	// Hot marks a cache-hot (duplicate-spec) arrival.
	Hot bool
	// Seq is the global arrival index (cold spec seeds derive from it).
	Seq int
}

// Ramp builds the invitro-style stepped schedule: constant-rate slots
// of slot duration each, from start RPS to target RPS in increments
// of step. A non-positive step yields the single starting slot.
func Ramp(start, step, target float64, slot time.Duration) []Phase {
	var phases []Phase
	for rps := start; ; rps += step {
		if rps > target {
			break
		}
		phases = append(phases, Phase{
			Name:    fmt.Sprintf("rps%g", rps),
			RPS:     rps,
			Seconds: slot.Seconds(),
		})
		if step <= 0 {
			break
		}
	}
	return phases
}

// WithBurst appends a burst slot to a schedule.
func WithBurst(phases []Phase, burstRPS float64, burst time.Duration) []Phase {
	if burstRPS <= 0 || burst <= 0 {
		return phases
	}
	return append(phases, Phase{
		Name:    fmt.Sprintf("burst%g", burstRPS),
		RPS:     burstRPS,
		Seconds: burst.Seconds(),
	})
}

// Validate checks the schedule.
func (s Schedule) Validate() error {
	if len(s.Phases) == 0 {
		return fmt.Errorf("load: schedule has no phases")
	}
	for i, p := range s.Phases {
		if p.RPS <= 0 {
			return fmt.Errorf("load: phase %d (%s): RPS must be positive", i, p.Name)
		}
		if p.Seconds <= 0 {
			return fmt.Errorf("load: phase %d (%s): duration must be positive", i, p.Name)
		}
	}
	if s.HotFraction < 0 || s.HotFraction > 1 {
		return fmt.Errorf("load: hot fraction %g outside [0,1]", s.HotFraction)
	}
	if s.Jitter < 0 || s.Jitter > 1 {
		return fmt.Errorf("load: jitter %g outside [0,1]", s.Jitter)
	}
	return nil
}

// Requests returns the total arrival count of the schedule.
func (s Schedule) Requests() int {
	n := 0
	for _, p := range s.Phases {
		n += phaseCount(p)
	}
	return n
}

// Duration returns the schedule's total length.
func (s Schedule) Duration() time.Duration {
	var secs float64
	for _, p := range s.Phases {
		secs += p.Seconds
	}
	return time.Duration(secs * float64(time.Second))
}

func phaseCount(p Phase) int {
	return int(p.RPS*p.Seconds + 0.5)
}

// Arrivals synthesizes the full arrival sequence: deterministic for a
// fixed seed, sorted by time, with exactly round(RPS*Seconds)
// arrivals and an exact hot/cold split per phase.
func (s Schedule) Arrivals() ([]Arrival, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	var out []Arrival
	var phaseStart float64 // seconds
	seq := 0
	for pi, p := range s.Phases {
		n := phaseCount(p)
		if n == 0 {
			phaseStart += p.Seconds
			continue
		}
		gap := p.Seconds / float64(n)
		// Hot placement: an exact count of hot slots, shuffled by the
		// seeded rng so hot and cold interleave differently per seed.
		hotCount := int(s.HotFraction*float64(n) + 0.5)
		hot := make([]bool, n)
		for _, idx := range rng.Perm(n)[:hotCount] {
			hot[idx] = true
		}
		for i := 0; i < n; i++ {
			// Centered slots keep jittered arrivals inside the phase
			// and in order for any Jitter <= 1.
			at := phaseStart + (float64(i)+0.5)*gap
			if s.Jitter > 0 {
				at += (rng.Float64() - 0.5) * s.Jitter * gap
			}
			out = append(out, Arrival{
				At:    time.Duration(at * float64(time.Second)),
				Phase: pi,
				Hot:   hot[i],
				Seq:   seq,
			})
			seq++
		}
		phaseStart += p.Seconds
	}
	return out, nil
}
