package smartref

import "repro/internal/ckpt"

// AppendState serialises the per-line down-counters and the interval
// telemetry counter.
func (p *Policy) AppendState(w *ckpt.Writer) {
	w.Section("SMRF")
	w.U8Slice(p.counter)
	w.U64(p.intervalSkipped)
}

// RestoreState loads state written by AppendState, cross-checking
// each counter against the restored cache: a line carries a live
// counter if and only if it is valid, and no counter exceeds the
// window. The cache must already be restored when this runs.
func (p *Policy) RestoreState(r *ckpt.Reader) error {
	r.Section("SMRF")
	r.U8SliceInto(p.counter)
	p.intervalSkipped = r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	for i, cnt := range p.counter {
		set, way := i/p.assoc, i%p.assoc
		valid, _ := p.c.LineState(set, way)
		if (cnt != 0) != valid {
			r.Failf("smartref: restored frame (%d,%d) tracking disagrees with cache validity", set, way)
			return r.Err()
		}
		if int(cnt) > p.periods {
			r.Failf("smartref: restored counter %d exceeds window %d", cnt, p.periods)
			return r.Err()
		}
	}
	return nil
}
