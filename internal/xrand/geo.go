package xrand

import (
	"math"
	"sync"
)

// GeoSampler draws geometric samples bit-identically to
// RNG.Geometric(p) but without evaluating math.Log per draw.
//
// Geometric(p) computes int(log(u)/log(1-p)) where u = j/2^53 and
// j = Uint64()>>11. For fixed p that expression is a non-increasing
// step function of the integer j, so the sampler precomputes, for
// every reachable result k, the smallest numerator bound[k] whose
// sample is k — each bound found by binary search over the original
// formula itself, not over an algebraic rearrangement. A draw then
// reduces to locating j among the bounds.
//
// math.Log is correctly rounded to within ~1 ulp but is not
// guaranteed monotone at that granularity, so exact step edges could
// in principle disagree with the table by a numerator or two. Draws
// landing within geoGuard numerators of any bound therefore fall
// back to evaluating the original formula, which makes the sampler's
// output equal to Geometric's by construction everywhere: far from
// edges the formula is provably flat across the guard band, and near
// edges the formula itself answers.
type GeoSampler struct {
	p    float64
	logQ float64 // log(1-p), the exact divisor Geometric uses
	// bound[k] is the smallest j in [1, 2^53) with sample(j) == k.
	// Non-increasing in k down to bound[maxK] == 1. nil when p == 1
	// (no draw happens) or when the table would be too large (tiny
	// p), in which case every draw takes the fallback.
	bound []uint64
	// kstart[j>>(53-geoIdxBits)] is the smallest k reachable from any
	// numerator in that bucket, so a draw starts its (short, usually
	// zero-step) upward scan there instead of binary-searching bound:
	// the scan's branches are far more predictable, which is what the
	// hot path lives or dies by.
	kstart []int32
}

// geoIdxBits is the width of the first-level index over numerators.
const geoIdxBits = 12

// geoGuard is the width (in 53-bit numerators) of the fallback band
// around each table boundary. math.Log errors are confined to a few
// ulps; 1024 numerators is orders of magnitude wider than any
// conceivable misrounding while keeping fallbacks vanishingly rare
// (~2e-13 per bound per draw).
const geoGuard = 1024

// geoMaxTable caps the table size; for p below ~0.002 the geometric
// tail is long enough that a table is not worth building and the
// sampler just evaluates the formula (still one math.Log per draw,
// exactly like Geometric).
const geoMaxTable = 1 << 14

var geoSamplers sync.Map // uint64 (Float64bits of p) -> *GeoSampler

// CachedGeo returns a shared GeoSampler for p. Samplers are immutable
// and cached globally for the life of the process, keyed by the exact
// bit pattern of p.
func CachedGeo(p float64) *GeoSampler {
	key := math.Float64bits(p)
	if v, ok := geoSamplers.Load(key); ok {
		return v.(*GeoSampler)
	}
	g := NewGeoSampler(p)
	v, _ := geoSamplers.LoadOrStore(key, g)
	return v.(*GeoSampler)
}

// NewGeoSampler builds a sampler for success probability p. It panics
// unless 0 < p <= 1, mirroring Geometric.
func NewGeoSampler(p float64) *GeoSampler {
	if p <= 0 || p > 1 {
		panic("xrand: GeoSampler requires 0 < p <= 1")
	}
	g := &GeoSampler{p: p}
	if p == 1 {
		return g
	}
	g.logQ = math.Log(1 - p)
	// The largest sample comes from the smallest numerator, j = 1.
	maxK := g.exact(1)
	if maxK < 0 || maxK >= geoMaxTable {
		return g // fallback-only sampler
	}
	g.bound = make([]uint64, maxK+1)
	for k := 0; k <= maxK; k++ {
		// Smallest j in [1, 2^53) with exact(j) <= k; exact is
		// non-increasing in j.
		lo, hi := uint64(1), uint64(1)<<53
		for lo < hi {
			mid := lo + (hi-lo)/2
			if g.exact(mid) <= k {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		g.bound[k] = lo
	}
	g.kstart = make([]int32, 1<<geoIdxBits)
	k := 0
	for idx := 1<<geoIdxBits - 1; idx >= 0; idx-- {
		jmax := uint64(idx+1)<<(53-geoIdxBits) - 1
		for jmax < g.bound[k] {
			k++ // terminates: bound[maxK] == 1 <= jmax
		}
		g.kstart[idx] = int32(k)
	}
	return g
}

// exact evaluates the original Geometric formula for numerator j >= 1.
func (g *GeoSampler) exact(j uint64) int {
	u := float64(j) / (1 << 53)
	return int(math.Log(u) / g.logQ)
}

// fallback reproduces Geometric's draw handling for numerator j,
// including the j == 0 guard against log(0).
func (g *GeoSampler) fallback(j uint64) int {
	u := float64(j) / (1 << 53)
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return int(math.Log(u) / g.logQ)
}

// Next draws the next sample from r. It consumes exactly the same
// stream values as r.Geometric(g.p) and returns exactly the same
// results.
func (g *GeoSampler) Next(r *RNG) int {
	if g.p == 1 {
		return 0 // Geometric returns before drawing when p == 1
	}
	return g.sample(r.Uint64() >> 11)
}

// sample maps one 53-bit numerator to its geometric value.
func (g *GeoSampler) sample(j uint64) int {
	b := g.bound
	if b == nil || j == 0 {
		return g.fallback(j)
	}
	// Smallest k with j >= b[k]: start at the bucket's minimum k and
	// scan up (b is non-increasing and b[maxK] == 1 <= j, so the
	// scan terminates; kstart never overshoots because a smaller j
	// can only map to a larger k).
	k := int(g.kstart[j>>(53-geoIdxBits)])
	for j < b[k] {
		k++
	}
	if j-b[k] < geoGuard || (k > 0 && b[k-1]-j <= geoGuard) {
		return g.fallback(j)
	}
	return k
}
