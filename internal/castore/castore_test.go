package castore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

func testKey(t *testing.T, seed uint64) string {
	t.Helper()
	cfg := sim.DefaultConfig(1)
	cfg.Seed = seed
	k, err := Key(cfg, []string{"gobmk"})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestKeyStability(t *testing.T) {
	a := testKey(t, 1)
	if b := testKey(t, 1); b != a {
		t.Fatalf("same inputs hashed differently: %s vs %s", a, b)
	}
	if !ValidKey(a) {
		t.Fatalf("key %q is not 64 hex digits", a)
	}
}

func TestKeySensitivity(t *testing.T) {
	base := sim.DefaultConfig(1)
	ref, err := Key(base, []string{"gobmk"})
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*sim.Config, *[]string){
		"seed":      func(c *sim.Config, _ *[]string) { c.Seed++ },
		"technique": func(c *sim.Config, _ *[]string) { c.Technique = sim.RPV },
		"retention": func(c *sim.Config, _ *[]string) { c.RetentionMicros = 40 },
		"interval":  func(c *sim.Config, _ *[]string) { c.IntervalCycles *= 2 },
		"instr":     func(c *sim.Config, _ *[]string) { c.MeasureInstr++ },
		"esteem":    func(c *sim.Config, _ *[]string) { c.Esteem.AMin = 4 },
		"workload":  func(_ *sim.Config, wl *[]string) { *wl = []string{"gcc"} },
	}
	for name, mutate := range mutations {
		cfg, wl := base, []string{"gobmk"}
		mutate(&cfg, &wl)
		k, err := Key(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		if k == ref {
			t.Errorf("mutation %q did not change the key", name)
		}
	}
}

func TestValidKey(t *testing.T) {
	good := testKey(t, 1)
	for _, bad := range []string{"", "abc", "../../etc/passwd", strings.ToUpper(good), good + "0", good[:63] + "g"} {
		if ValidKey(bad) {
			t.Errorf("ValidKey(%q) = true, want false", bad)
		}
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, 1)
	want := []byte(`{"hello":1}` + "\n")
	if err := s.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get = ok %v err %v", ok, err)
	}
	if string(got) != string(want) {
		t.Fatalf("Get = %q, want %q", got, want)
	}
	st := s.Stats()
	if st.MemHits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want 1 memory hit", st)
	}
}

func TestMissingIsMissNotError(t *testing.T) {
	s, err := Open(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(testKey(t, 1)); ok || err != nil {
		t.Fatalf("Get on empty store = ok %v err %v, want miss", ok, err)
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 miss", st)
	}
}

func TestDiskPersistsAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	key := testKey(t, 1)
	want := []byte("artifact-bytes\n")

	s1, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(key, want); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s2.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after reopen = ok %v err %v", ok, err)
	}
	if string(got) != string(want) {
		t.Fatalf("reopened bytes differ: %q vs %q", got, want)
	}
	if st := s2.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want 1 disk hit", st)
	}
}

func TestLRUEvictionFallsBackToDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{testKey(t, 1), testKey(t, 2), testKey(t, 3)}
	for i, k := range keys {
		if err := s.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("LRU holds %d entries, want 2", s.Len())
	}
	// keys[0] was evicted from memory but must still load from disk.
	got, ok, err := s.Get(keys[0])
	if err != nil || !ok || string(got) != "v0" {
		t.Fatalf("evicted key: got %q ok %v err %v", got, ok, err)
	}
	if st := s.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want the evicted entry served from disk", st)
	}
}

func TestMemoryOnlyStore(t *testing.T) {
	s, err := Open("", 2)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{testKey(t, 1), testKey(t, 2), testKey(t, 3)}
	for i, k := range keys {
		if err := s.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Evicted and gone: no disk layer to fall back to.
	if _, ok, err := s.Get(keys[0]); ok || err != nil {
		t.Fatalf("memory-only evicted key: ok %v err %v, want miss", ok, err)
	}
	if p := s.Path(keys[0]); p != "" {
		t.Fatalf("Path on memory-only store = %q, want empty", p)
	}
}

func TestPutIsAtomic(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, 1)
	if err := s.Put(key, []byte("data")); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file %q left behind", e.Name())
		}
	}
	if _, err := os.Stat(filepath.Join(dir, key+".json")); err != nil {
		t.Fatalf("artifact file missing: %v", err)
	}
}

func TestGetOrComputeSingleFlight(t *testing.T) {
	s, err := Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, 1)
	var computes atomic.Int32
	gate := make(chan struct{})

	const callers = 8
	var wg sync.WaitGroup
	results := make([][]byte, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], _, errs[i] = s.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
				computes.Add(1)
				<-gate // hold the flight open until every caller has piled up
				return []byte("computed"), nil
			})
		}()
	}
	// Let callers reach the flight, then release. (The gate guarantees
	// at most one compute can be past the channel receive; the atomic
	// then proves exactly one entered.)
	close(gate)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("%d computes ran, want 1", n)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if string(results[i]) != "computed" {
			t.Fatalf("caller %d got %q", i, results[i])
		}
	}
	if st := s.Stats(); st.Computes != 1 {
		t.Fatalf("stats = %+v, want Computes=1", st)
	}
}

func TestGetOrComputeErrorNotCached(t *testing.T) {
	s, err := Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, 1)
	boom := errors.New("boom")
	if _, _, err := s.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The failure must not be cached: the next call recomputes.
	data, cached, err := s.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || cached || string(data) != "ok" {
		t.Fatalf("retry = %q cached %v err %v", data, cached, err)
	}
}

func TestGetOrComputeWaiterCancellation(t *testing.T) {
	s, err := Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, 1)
	started := make(chan struct{})
	gate := make(chan struct{})

	go func() {
		s.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
			close(started)
			<-gate
			return []byte("slow"), nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.GetOrCompute(ctx, key, func(context.Context) ([]byte, error) {
		t.Error("cancelled waiter must not compute")
		return nil, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(gate)
}

func TestGetOrComputeHitSkipsCompute(t *testing.T) {
	s, err := Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(t, 1)
	if err := s.Put(key, []byte("stored")); err != nil {
		t.Fatal(err)
	}
	data, cached, err := s.GetOrCompute(context.Background(), key, func(context.Context) ([]byte, error) {
		t.Error("compute ran despite a stored artifact")
		return nil, nil
	})
	if err != nil || !cached || string(data) != "stored" {
		t.Fatalf("got %q cached %v err %v", data, cached, err)
	}
}
