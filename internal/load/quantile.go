// Quantile estimation over served histogram snapshots — the same
// linear-interpolation-within-bucket estimate Prometheus's
// histogram_quantile() computes, so dashboards and the client's
// cluster top agree with PromQL.
package load

import "repro/internal/serve"

// HistogramQuantile estimates the q-quantile (0 < q <= 1) of a
// histogram snapshot in seconds. The estimate interpolates linearly
// within the first cumulative bucket containing the target rank
// (assuming samples spread uniformly across it); ranks landing in the
// implicit +Inf bucket clamp to the highest finite bound. An empty
// histogram reports 0.
func HistogramQuantile(v serve.HistogramView, q float64) float64 {
	if v.Count == 0 || len(v.Buckets) == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(v.Count)
	lower := 0.0
	var below uint64
	for _, b := range v.Buckets {
		if float64(b.Count) >= rank {
			in := b.Count - below
			if in == 0 {
				return b.LE
			}
			return lower + (b.LE-lower)*(rank-float64(below))/float64(in)
		}
		lower = b.LE
		below = b.Count
	}
	return v.Buckets[len(v.Buckets)-1].LE
}
