package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsAllTasks checks that every independent task runs
// exactly once, at several worker counts.
func TestPoolRunsAllTasks(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		var ran atomic.Int64
		const n = 50
		tasks := make([]*Task, n)
		for i := 0; i < n; i++ {
			tasks[i] = p.Task(fmt.Sprintf("t%d", i), func(context.Context) error {
				ran.Add(1)
				return nil
			})
		}
		if err := p.Run(context.Background()); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := ran.Load(); got != n {
			t.Errorf("workers=%d: ran %d tasks, want %d", workers, got, n)
		}
		for _, task := range tasks {
			if !task.Done() {
				t.Errorf("workers=%d: task %s not done", workers, task.Label())
			}
		}
	}
}

// TestPoolDependencyOrder checks that a dependent task never starts
// before all of its dependencies have finished, under heavy
// parallelism.
func TestPoolDependencyOrder(t *testing.T) {
	p := NewPool(8)
	const chains = 16
	var mu sync.Mutex
	finished := map[string]bool{}
	mark := func(name string) {
		mu.Lock()
		finished[name] = true
		mu.Unlock()
	}
	check := func(name string) bool {
		mu.Lock()
		defer mu.Unlock()
		return finished[name]
	}
	for i := 0; i < chains; i++ {
		a := fmt.Sprintf("a%d", i)
		b := fmt.Sprintf("b%d", i)
		ta := p.Task(a, func(context.Context) error {
			time.Sleep(time.Millisecond)
			mark(a)
			return nil
		})
		tb := p.Task(b, func(context.Context) error {
			if !check(a) {
				return fmt.Errorf("task %s started before dependency %s finished", b, a)
			}
			mark(b)
			return nil
		}, ta)
		// Diamond: c depends on both a and b.
		c := fmt.Sprintf("c%d", i)
		p.Task(c, func(context.Context) error {
			if !check(a) || !check(b) {
				return fmt.Errorf("task %s started before its dependencies", c)
			}
			return nil
		}, ta, tb)
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestPoolErrorCancels checks that the first error skips queued work
// and is returned.
func TestPoolErrorCancels(t *testing.T) {
	p := NewPool(2)
	boom := errors.New("boom")
	var after atomic.Int64
	bad := p.Task("bad", func(context.Context) error { return boom })
	dep := p.Task("dep", func(context.Context) error {
		after.Add(1)
		return nil
	}, bad)
	err := p.Run(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	if after.Load() != 0 {
		t.Errorf("dependent of failed task ran")
	}
	if dep.Err() == nil {
		t.Errorf("dependent of failed task reports nil error")
	}
}

// TestPoolPanicCaptured checks that a panicking job is converted to
// an error (with its label and stack) instead of crashing the sweep,
// and that independent jobs are unaffected by cancellation accounting.
func TestPoolPanicCaptured(t *testing.T) {
	p := NewPool(4)
	p.Task("explosive", func(context.Context) error {
		panic("one bad config")
	})
	err := p.Run(context.Background())
	if err == nil {
		t.Fatal("panic not reported as error")
	}
	if !strings.Contains(err.Error(), "explosive") || !strings.Contains(err.Error(), "one bad config") {
		t.Errorf("panic error %q lacks task label or panic value", err)
	}
	if !strings.Contains(err.Error(), "goroutine") {
		t.Errorf("panic error lacks a stack trace")
	}
}

// TestPoolIncrementalRun checks that a second Run only executes newly
// submitted tasks and that completed tasks satisfy new dependencies.
func TestPoolIncrementalRun(t *testing.T) {
	p := NewPool(4)
	var first atomic.Int64
	a := p.Task("a", func(context.Context) error {
		first.Add(1)
		return nil
	})
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	b := p.Task("b", func(context.Context) error {
		if first.Load() != 1 {
			return fmt.Errorf("dependency did not run exactly once (ran %d)", first.Load())
		}
		return nil
	}, a)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if first.Load() != 1 {
		t.Errorf("completed task re-ran on second Run: %d executions", first.Load())
	}
	if !b.Done() {
		t.Errorf("new task with satisfied dependency did not run")
	}
}

// TestPoolRetryAfterFailure checks that skipped tasks run on a later
// Run once the failure is gone (the failing task is terminal-failed
// and retried too).
func TestPoolRetryAfterFailure(t *testing.T) {
	p := NewPool(2)
	var attempts atomic.Int64
	flaky := p.Task("flaky", func(context.Context) error {
		if attempts.Add(1) == 1 {
			return errors.New("transient")
		}
		return nil
	})
	dep := p.Task("dep", func(context.Context) error { return nil }, flaky)
	if err := p.Run(context.Background()); err == nil {
		t.Fatal("first Run should fail")
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if !flaky.Done() || !dep.Done() {
		t.Errorf("retry did not complete the DAG: flaky=%v dep=%v", flaky.Done(), dep.Done())
	}
}

// TestPoolContextCancel checks that an already-cancelled context
// stops the run.
func TestPoolContextCancel(t *testing.T) {
	p := NewPool(2)
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		p.Task("t", func(context.Context) error {
			ran.Add(1)
			return nil
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Run(ctx); err == nil {
		t.Fatal("Run with cancelled context returned nil")
	}
}

// TestPoolBoundedConcurrency checks that no more than the configured
// worker count is ever in flight.
func TestPoolBoundedConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var inFlight, peak atomic.Int64
	for i := 0; i < 24; i++ {
		p.Task("t", func(context.Context) error {
			n := inFlight.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			return nil
		})
	}
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", got, workers)
	}
}

// TestDeriveSeedProperties checks determinism, part sensitivity and
// separator behaviour of the per-job seed derivation.
func TestDeriveSeedProperties(t *testing.T) {
	if DeriveSeed(1, "gcc") != DeriveSeed(1, "gcc") {
		t.Error("DeriveSeed is not deterministic")
	}
	if DeriveSeed(1, "gcc") == DeriveSeed(2, "gcc") {
		t.Error("DeriveSeed ignores the base seed")
	}
	if DeriveSeed(1, "gcc") == DeriveSeed(1, "lbm") {
		t.Error("DeriveSeed ignores the parts")
	}
	if DeriveSeed(1, "ab", "c") == DeriveSeed(1, "a", "bc") {
		t.Error("DeriveSeed concatenates parts without separation")
	}
	seen := map[uint64]bool{}
	for _, wl := range []string{"gcc", "lbm", "mcf", "gobmk", "sphinx"} {
		s := DeriveSeed(7, wl)
		if seen[s] {
			t.Errorf("derived seed collision for %s", wl)
		}
		seen[s] = true
	}
}
