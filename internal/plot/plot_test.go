package plot

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBarChartBasic(t *testing.T) {
	out := BarChart("savings", "%", []Bar{
		{"gamess", 64.3},
		{"gcc", 21.7},
		{"omnetpp", -2.0},
	}, 40)
	if !strings.Contains(out, "savings") {
		t.Error("title missing")
	}
	for _, l := range []string{"gamess", "gcc", "omnetpp"} {
		if !strings.Contains(out, l) {
			t.Errorf("label %s missing", l)
		}
	}
	// The biggest value must have the longest bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")[1:]
	count := func(s string) int { return strings.Count(s, "#") }
	if !(count(lines[0]) > count(lines[1]) && count(lines[1]) > 0) {
		t.Fatalf("bar lengths not ordered:\n%s", out)
	}
	// Negative bar renders left of the axis: '#' before '|'.
	neg := lines[2]
	if !strings.Contains(neg, "#") {
		t.Fatalf("negative bar missing: %q", neg)
	}
	if strings.Index(neg, "#") > strings.Index(neg, "|") {
		t.Fatalf("negative bar not left of axis: %q", neg)
	}
}

func TestBarChartEmpty(t *testing.T) {
	out := BarChart("t", "", nil, 20)
	if !strings.Contains(out, "no data") {
		t.Error("empty chart should say so")
	}
}

func TestBarChartAllZero(t *testing.T) {
	out := BarChart("", "", []Bar{{"a", 0}, {"b", 0}}, 20)
	if strings.Contains(out, "#") {
		t.Error("zero values must render no bars")
	}
}

func TestBarChartClampWidth(t *testing.T) {
	// Must not panic with silly widths.
	_ = BarChart("", "", []Bar{{"a", 5}}, 1)
	_ = BarChart("", "", []Bar{{"a", -5}}, 0)
}

func TestBarChartNoPanicProperty(t *testing.T) {
	err := quick.Check(func(vals []float64, width uint8) bool {
		bars := make([]Bar, len(vals))
		for i, v := range vals {
			if v != v { // NaN breaks rendering legitimately; skip
				v = 0
			}
			bars[i] = Bar{Label: "x", Value: v}
		}
		_ = BarChart("t", "u", bars, int(width))
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1}, 0, 1)
	runes := []rune(s)
	if len(runes) != 3 {
		t.Fatalf("sparkline length %d, want 3", len(runes))
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("extremes wrong: %q", s)
	}
	if Sparkline(nil, 0, 1) != "" {
		t.Error("empty values should render empty")
	}
}

func TestSparklineClamps(t *testing.T) {
	s := []rune(Sparkline([]float64{-10, 10}, 0, 1))
	if s[0] != '▁' || s[1] != '█' {
		t.Fatalf("clamping wrong: %q", string(s))
	}
}

func TestSparklineDegenerateRange(t *testing.T) {
	// hi <= lo must not panic or divide by zero.
	_ = Sparkline([]float64{1, 2, 3}, 5, 5)
}

func TestSeries(t *testing.T) {
	out := Series("active", []float64{0.2, 0.8, 0.5})
	if !strings.Contains(out, "active") || !strings.Contains(out, "[0.20..0.80]") {
		t.Fatalf("series header wrong: %q", out)
	}
	if !strings.Contains(Series("x", nil), "no data") {
		t.Error("empty series should say so")
	}
}
