package core

import "repro/internal/ckpt"

// AppendState serialises the controller's cumulative statistics. The
// reconfiguration state itself (per-module active ways, leader
// histograms) lives in the cache and is checkpointed there.
func (ct *Controller) AppendState(w *ckpt.Writer) {
	w.Section("CTRL")
	w.Int(ct.intervals)
	w.U64(ct.linesTransitioned)
	w.U64(ct.writebacks)
	w.U64(ct.invalidated)
	w.U64(ct.nonLRUEvents)
}

// RestoreState loads state written by AppendState.
func (ct *Controller) RestoreState(r *ckpt.Reader) error {
	r.Section("CTRL")
	ct.intervals = r.Int()
	ct.linesTransitioned = r.U64()
	ct.writebacks = r.U64()
	ct.invalidated = r.U64()
	ct.nonLRUEvents = r.U64()
	if r.Err() == nil && ct.intervals < 0 {
		r.Failf("core: restored negative interval count %d", ct.intervals)
	}
	return r.Err()
}
