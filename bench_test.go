// Benchmarks regenerating (scaled-down versions of) every table and
// figure of the paper's evaluation. One testing.B benchmark per
// experiment; the full-scale regeneration lives in cmd/esteem-bench
// (see EXPERIMENTS.md for paper-vs-measured numbers).
//
//	go test -bench=. -benchmem
package esteem

import (
	"fmt"
	"testing"

	"repro/internal/energy"
)

// benchCfg is the scaled-down run configuration used by the
// regeneration benchmarks: large enough to exercise the whole stack
// (multiple intervals, refresh windows, reconfigurations), small
// enough that -bench=. completes quickly.
func benchCfg(cores int, tech Technique, retention float64) Config {
	cfg := DefaultConfig(cores)
	cfg.Technique = tech
	cfg.RetentionMicros = retention
	cfg.MeasureInstr = 1_000_000
	cfg.WarmupInstr = 250_000
	cfg.IntervalCycles = 250_000
	return cfg
}

// benchWorkloads is the representative single-core subset used by the
// benchmark harness (one per workload class).
var benchWorkloads = []string{"gamess", "gobmk", "gcc", "sphinx", "lbm", "mcf", "omnetpp"}

// benchMixes is the dual-core subset.
var benchMixes = [][]string{
	{"gobmk", "nekbone"},
	{"gcc", "gamess"},
	{"leslie3d", "lbm"},
	{"mcf", "lulesh"},
}

// BenchmarkTable2 regenerates the eDRAM energy-parameter table.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mb := range []int{2, 4, 8, 16, 32} {
			if _, _, err := energy.L2Energy(mb << 20); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig2 regenerates the h264ref reconfiguration timeline.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(1, Esteem, 50)
		cfg.LogIntervals = true
		r, err := Run(cfg, []string{"h264ref"})
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Intervals) == 0 {
			b.Fatal("no interval log")
		}
	}
}

// figureBench runs one figure's technique set over the subset
// workloads and reports the mean energy saving as a benchmark metric.
func figureBench(b *testing.B, cores int, retention float64) {
	b.Helper()
	var workloads [][]string
	if cores == 1 {
		for _, w := range benchWorkloads {
			workloads = append(workloads, []string{w})
		}
	} else {
		workloads = benchMixes
	}
	for i := 0; i < b.N; i++ {
		var rpvCs, estCs []Comparison
		for _, wl := range workloads {
			cfg := benchCfg(cores, Baseline, retention)
			cs, err := RunComparison(cfg, wl, []Technique{RPV, Esteem})
			if err != nil {
				b.Fatal(err)
			}
			rpvCs = append(rpvCs, cs[0])
			estCs = append(estCs, cs[1])
		}
		b.ReportMetric(Summarize(rpvCs).EnergySavingPct, "rpv-save-%")
		b.ReportMetric(Summarize(estCs).EnergySavingPct, "esteem-save-%")
		b.ReportMetric(Summarize(estCs).WeightedSpeedup, "esteem-ws")
	}
}

// BenchmarkFig3 regenerates the single-core 50 µs comparison.
func BenchmarkFig3(b *testing.B) { figureBench(b, 1, 50) }

// BenchmarkFig4 regenerates the dual-core 50 µs comparison.
func BenchmarkFig4(b *testing.B) { figureBench(b, 2, 50) }

// BenchmarkFig5 regenerates the single-core 40 µs comparison.
func BenchmarkFig5(b *testing.B) { figureBench(b, 1, 40) }

// BenchmarkFig6 regenerates the dual-core 40 µs comparison.
func BenchmarkFig6(b *testing.B) { figureBench(b, 2, 40) }

// BenchmarkTable3 regenerates a slice of the sensitivity study: each
// sub-benchmark is one parameter variant over the subset workloads.
func BenchmarkTable3(b *testing.B) {
	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"default", func(*Config) {}},
		{"amin2", func(c *Config) { c.Esteem.AMin = 2 }},
		{"amin4", func(c *Config) { c.Esteem.AMin = 4 }},
		{"alpha95", func(c *Config) { c.Esteem.Alpha = 0.95 }},
		{"alpha99", func(c *Config) { c.Esteem.Alpha = 0.99 }},
		{"mod2", func(c *Config) { c.Modules = 2 }},
		{"mod32", func(c *Config) { c.Modules = 32 }},
		{"rs32", func(c *Config) { c.SamplingRatio = 32 }},
		{"rs128", func(c *Config) { c.SamplingRatio = 128 }},
		{"assoc8", func(c *Config) { c.L2Assoc = 8 }},
		{"assoc32", func(c *Config) { c.L2Assoc = 32 }},
		{"l2-2mb", func(c *Config) { c.L2SizeBytes = 2 << 20 }},
		{"l2-8mb", func(c *Config) { c.L2SizeBytes = 8 << 20 }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var cs []Comparison
				for _, w := range benchWorkloads {
					cfg := benchCfg(1, Baseline, 50)
					v.mutate(&cfg)
					base, err := Run(cfg, []string{w})
					if err != nil {
						b.Fatal(err)
					}
					ecfg := cfg
					ecfg.Technique = Esteem
					est, err := Run(ecfg, []string{w})
					if err != nil {
						b.Fatal(err)
					}
					cs = append(cs, Compare(w, base, est))
				}
				s := Summarize(cs)
				b.ReportMetric(s.EnergySavingPct, "save-%")
				b.ReportMetric(s.ActiveRatioPct, "active-%")
			}
		})
	}
}

// BenchmarkAblationNonLRU measures the non-LRU guard's effect on the
// scan-heavy workloads (DESIGN.md §5).
func BenchmarkAblationNonLRU(b *testing.B) {
	for _, guard := range []bool{true, false} {
		name := "guard-on"
		if !guard {
			name = "guard-off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var cs []Comparison
				for _, w := range []string{"omnetpp", "xalancbmk"} {
					cfg := benchCfg(1, Baseline, 50)
					base, err := Run(cfg, []string{w})
					if err != nil {
						b.Fatal(err)
					}
					ecfg := cfg
					ecfg.Technique = Esteem
					ecfg.Esteem.DisableNonLRUGuard = !guard
					est, err := Run(ecfg, []string{w})
					if err != nil {
						b.Fatal(err)
					}
					cs = append(cs, Compare(w, base, est))
				}
				s := Summarize(cs)
				b.ReportMetric(s.EnergySavingPct, "save-%")
				b.ReportMetric(s.MPKIIncrease, "mpki-inc")
			}
		})
	}
}

// BenchmarkAblationValidOnly isolates valid-only refresh: ESTEEM with
// and without it (DESIGN.md §5).
func BenchmarkAblationValidOnly(b *testing.B) {
	for _, tech := range []Technique{Esteem, EsteemAllLineRefresh} {
		b.Run(tech.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var cs []Comparison
				for _, w := range []string{"gamess", "gcc", "lbm"} {
					cfg := benchCfg(1, Baseline, 50)
					cs2, err := RunComparison(cfg, []string{w}, []Technique{tech})
					if err != nil {
						b.Fatal(err)
					}
					cs = append(cs, cs2...)
				}
				b.ReportMetric(Summarize(cs).EnergySavingPct, "save-%")
			}
		})
	}
}

// BenchmarkAblationRefreshPolicies compares all refresh policies on a
// single workload (DESIGN.md §5: burst-refresh policy space).
func BenchmarkAblationRefreshPolicies(b *testing.B) {
	for _, tech := range []Technique{Baseline, PeriodicValid, RPV, RPD, Esteem, NoRefresh} {
		b.Run(tech.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := Run(benchCfg(1, tech, 50), []string{"dealII"})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.RPKI(), "rpki")
			}
		})
	}
}

// BenchmarkSimulatorThroughput reports raw simulation speed
// (instructions per second) for the default ESTEEM configuration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := benchCfg(1, Esteem, 50)
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		r, err := Run(cfg, []string{"gcc"})
		if err != nil {
			b.Fatal(err)
		}
		instr += r.TotalInstructions()
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkOverheadEquation keeps Equation 1 visible in bench output.
func BenchmarkOverheadEquation(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = OverheadPercent(4096, 16, 16, 512, 40)
	}
	if sink > 0.1 {
		b.Fatal(fmt.Sprintf("overhead %v%% violates paper claim", sink))
	}
}
