// Package cache implements the set-associative cache model underlying
// both the L1 caches and the reconfigurable eDRAM L2 cache of the
// ESTEEM paper (Mittal, Vetter, Li — HPDC'14).
//
// The L2-specific machinery follows Sections 3–5 of the paper:
//
//   - The sets are partitioned into M contiguous "modules"; each module
//     has its own count of powered-on ("active") ways, controlled by
//     per-way disable bits (selective-ways reconfiguration).
//   - Every Rs-th set is a "leader" set: it always keeps all ways
//     active and never undergoes reconfiguration. Leader sets double
//     as the auxiliary tag directory (ATD) embedded in the main tag
//     directory; hit-position (LRU recency) histograms are collected
//     from leader sets only.
//   - On shrinking a module, clean lines in the disabled ways are
//     dropped and dirty lines are written back (counted, so the
//     simulator can charge main-memory traffic and energy).
//
// Replacement is true LRU, as in the paper's simulated hierarchy.
//
// Tag state is stored struct-of-arrays: one flat tag word array
// (way-major within each set), one valid and one dirty bitset word
// per set (interleaved so both land on the same cache line), and one
// flat byte array of LRU recency stacks. A set probe therefore reads
// one or two cache lines of tags plus a single bitset word, instead
// of striding across per-line structs. Two invariants make the
// bitset probe sound:
//
//   - valid ⟹ active: a disabled way never holds a valid line
//     (SetActiveWays flushes follower ways on shrink; leader sets are
//     always fully active), so probing need not consult the active-way
//     count on the hit path.
//   - valid tags are unique within a set (fills happen only on miss),
//     so probing ways in bit order finds the same line a recency-order
//     probe would.
package cache

import (
	"fmt"
	"math/bits"
)

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// Params configures a cache instance.
type Params struct {
	// Name is used in error messages and reports (e.g. "L2").
	Name string
	// SizeBytes is the total capacity. Must be divisible by
	// LineBytes*Assoc into a power-of-two number of sets.
	SizeBytes int
	// Assoc is the number of ways per set.
	Assoc int
	// LineBytes is the cache line (block) size; the paper uses 64 B.
	LineBytes int
	// Latency is the access latency in cycles (informational; the
	// simulator charges it).
	Latency int
	// Modules is the number of reconfiguration modules M. Sets are
	// split into M contiguous ranges. Use 1 for non-reconfigurable
	// caches (L1). Must divide the number of sets.
	Modules int
	// SamplingRatio is Rs: one of every Rs sets is a leader set.
	// 0 disables leader sets entirely (L1 caches).
	SamplingRatio int
	// Banks is the number of banks lines are interleaved across; the
	// paper's eDRAM L2 has 4. Use 1 when banking is irrelevant.
	Banks int
	// TrackWear enables per-frame write-wear counters (ReRAM
	// endurance modelling): every write hit and every fill charges
	// one write to the written frame.
	TrackWear bool
	// WearLevelPeriod, when positive, performs an intra-set
	// wear-levelling remap every WearLevelPeriod-th write to a set:
	// the contents of the set's most- and least-worn active frames
	// are swapped (tags, valid/dirty bits and recency positions move;
	// wear stays with the physical frame), so hot lines rotate onto
	// cold frames without changing any externally visible cache
	// behaviour. Requires TrackWear. Remaps fire no Observer events:
	// wear-tracked technologies have no refresh clock, so no
	// observer-bearing refresh policy can be attached.
	WearLevelPeriod int
}

// validate checks the parameter combination and derives the set count.
func (p Params) validate() (sets int, err error) {
	if p.SizeBytes <= 0 || p.Assoc <= 0 || p.LineBytes <= 0 {
		return 0, fmt.Errorf("cache %s: size, assoc and line size must be positive", p.Name)
	}
	if p.SizeBytes%(p.LineBytes*p.Assoc) != 0 {
		return 0, fmt.Errorf("cache %s: size %d not divisible by line*assoc", p.Name, p.SizeBytes)
	}
	sets = p.SizeBytes / (p.LineBytes * p.Assoc)
	if bits.OnesCount(uint(sets)) != 1 {
		return 0, fmt.Errorf("cache %s: set count %d is not a power of two", p.Name, sets)
	}
	if bits.OnesCount(uint(p.LineBytes)) != 1 {
		return 0, fmt.Errorf("cache %s: line size %d is not a power of two", p.Name, p.LineBytes)
	}
	if p.Modules <= 0 {
		return 0, fmt.Errorf("cache %s: modules must be >= 1", p.Name)
	}
	if sets%p.Modules != 0 {
		return 0, fmt.Errorf("cache %s: %d sets not divisible into %d modules", p.Name, sets, p.Modules)
	}
	if p.SamplingRatio < 0 {
		return 0, fmt.Errorf("cache %s: negative sampling ratio", p.Name)
	}
	if p.Banks <= 0 {
		return 0, fmt.Errorf("cache %s: banks must be >= 1", p.Name)
	}
	if p.Assoc > 64 {
		return 0, fmt.Errorf("cache %s: associativity %d > 64 unsupported", p.Name, p.Assoc)
	}
	if p.WearLevelPeriod < 0 {
		return 0, fmt.Errorf("cache %s: negative wear-level period", p.Name)
	}
	if p.WearLevelPeriod > 0 && !p.TrackWear {
		return 0, fmt.Errorf("cache %s: wear-levelling requires wear tracking", p.Name)
	}
	return sets, nil
}

// AccessResult reports what happened on one cache access.
type AccessResult struct {
	// Hit is true if the line was present in an active way.
	Hit bool
	// Way is the physical way that was hit or filled.
	Way int
	// LRUPos is the LRU-stack position of the hit (0 = MRU); -1 on a
	// miss.
	LRUPos int
	// Set and Bank identify where the access landed.
	Set, Bank int
	// Module is the reconfiguration module of the set.
	Module int
	// Leader is true if the set is a leader (profiling) set.
	Leader bool
	// WritebackVictim is true when the fill evicted a dirty line that
	// must be written back to the next level; VictimAddr is then the
	// evicted line's address.
	WritebackVictim bool
	VictimAddr      Addr
}

// Counters is a snapshot of access statistics.
type Counters struct {
	Hits       uint64
	WriteHits  uint64 // the subset of Hits that were writes
	Misses     uint64
	Writebacks uint64 // dirty evictions (demand misses + reconfiguration flushes)
	Fills      uint64
}

// Accesses returns hits + misses.
func (c Counters) Accesses() uint64 { return c.Hits + c.Misses }

// Observer receives line lifecycle events; refresh policies (e.g.
// Refrint RPV) use it to track per-line touch phases without the cache
// knowing about them.
type Observer interface {
	// OnTouch fires on every hit or fill of (set, way).
	OnTouch(set, way int)
	// OnInvalidate fires whenever a line becomes invalid (eviction or
	// reconfiguration flush).
	OnInvalidate(set, way int)
}

// Cache is a single-level set-associative cache.
type Cache struct {
	p          Params
	numSets    int
	assoc      int
	setsPerMod int
	lineShift  uint
	tagShift   uint
	setMask    uint64

	// Struct-of-arrays tag store. tags[set*assoc+way] is the tag of
	// that frame; vd[2*set] and vd[2*set+1] are the set's valid and
	// dirty bitsets (bit w = way w); order[set*assoc+pos] is the way
	// at recency position pos (0 = MRU).
	tags  []uint64
	vd    []uint64
	order []uint8

	// Per-set lookups precomputed at construction so the access hot
	// path avoids div/mod per reference.
	setModule []int32
	setBank   []int32
	setLeader []bool

	// activeWays[m] is the number of powered-on ways in module m;
	// ways [0, activeWays[m]) are active in follower sets.
	activeWays []int
	// followersPerMod[m] is the number of non-leader sets in module m
	// (leader sets never reconfigure, so they are constant).
	followersPerMod []int
	// activeLines is the configured powered-on line count, maintained
	// incrementally by SetActiveWays so ActiveFraction is O(1) instead
	// of rescanning every set each interval.
	activeLines int

	// validByBank[b] counts valid lines whose set maps to bank b.
	// Because disabled ways are flushed, every valid line is in an
	// active way (or in a leader set, which is always fully active).
	validByBank []int

	// hitPos[m][pos] counts leader-set hits in module m at LRU
	// position pos since the last ResetInterval; hitBacking is the
	// shared backing array (also the checkpoint unit).
	hitPos     [][]uint64
	hitBacking []uint64

	total    Counters // since construction
	interval Counters // since last ResetInterval

	// wear[set*assoc+way] counts writes charged to the physical frame
	// (write hits plus fills); nil unless Params.TrackWear, so the
	// eDRAM hot path pays nothing for it.
	wear []uint64
	// setWrites[set] counts writes to the set, driving the
	// wear-levelling trigger; nil unless WearLevelPeriod > 0.
	setWrites []uint64
	// wearSwaps counts wear-levelling remaps performed.
	wearSwaps uint64

	observer Observer
}

// New builds a cache from p. All ways start active and all lines
// invalid.
func New(p Params) (*Cache, error) {
	numSets, err := p.validate()
	if err != nil {
		return nil, err
	}
	c := &Cache{
		p:          p,
		numSets:    numSets,
		assoc:      p.Assoc,
		setsPerMod: numSets / p.Modules,
		lineShift:  uint(bits.TrailingZeros(uint(p.LineBytes))),
		setMask:    uint64(numSets - 1),
	}
	c.tagShift = c.lineShift + uint(bits.TrailingZeros(uint(numSets)))
	// Shared backing arrays instead of per-set allocations: sweeps
	// construct thousands of caches, and fine-grained slices were
	// >95% of a simulation job's allocations.
	u64s := make([]uint64, numSets*p.Assoc+2*numSets+p.Modules*p.Assoc)
	c.tags = u64s[: numSets*p.Assoc : numSets*p.Assoc]
	c.vd = u64s[numSets*p.Assoc : numSets*p.Assoc+2*numSets : numSets*p.Assoc+2*numSets]
	c.hitBacking = u64s[numSets*p.Assoc+2*numSets:]
	c.order = make([]uint8, numSets*p.Assoc)
	i32s := make([]int32, 2*numSets)
	c.setModule = i32s[:numSets:numSets]
	c.setBank = i32s[numSets:]
	c.setLeader = make([]bool, numSets)
	ints := make([]int, 2*p.Modules+p.Banks)
	c.activeWays = ints[:p.Modules:p.Modules]
	c.followersPerMod = ints[p.Modules : 2*p.Modules : 2*p.Modules]
	c.validByBank = ints[2*p.Modules:]
	c.hitPos = make([][]uint64, p.Modules)
	for s := 0; s < numSets; s++ {
		base := s * p.Assoc
		for w := 0; w < p.Assoc; w++ {
			c.order[base+w] = uint8(w)
		}
		c.setModule[s] = int32(s / c.setsPerMod)
		c.setBank[s] = int32(s % p.Banks)
		c.setLeader[s] = p.SamplingRatio > 0 && s%p.SamplingRatio == 0
		if !c.setLeader[s] {
			c.followersPerMod[s/c.setsPerMod]++
		}
	}
	for m := range c.activeWays {
		c.activeWays[m] = p.Assoc
		c.hitPos[m] = c.hitBacking[m*p.Assoc : (m+1)*p.Assoc : (m+1)*p.Assoc]
	}
	c.activeLines = numSets * p.Assoc
	if p.TrackWear {
		c.wear = make([]uint64, numSets*p.Assoc)
		if p.WearLevelPeriod > 0 {
			c.setWrites = make([]uint64, numSets)
		}
	}
	return c, nil
}

// MustNew is New but panics on error; for tests and fixed configs.
func MustNew(p Params) *Cache {
	c, err := New(p)
	if err != nil {
		panic(err)
	}
	return c
}

// SetObserver installs an observer for line lifecycle events.
// A nil observer disables notifications.
func (c *Cache) SetObserver(o Observer) { c.observer = o }

// Params returns the construction parameters.
func (c *Cache) Params() Params { return c.p }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

// NumModules returns M.
func (c *Cache) NumModules() int { return c.p.Modules }

// SetsPerModule returns S/M.
func (c *Cache) SetsPerModule() int { return c.setsPerMod }

// SetIndex maps an address to its set.
func (c *Cache) SetIndex(a Addr) int {
	return int((uint64(a) >> c.lineShift) & c.setMask)
}

// tagOf extracts the tag for an address.
func (c *Cache) tagOf(a Addr) uint64 {
	return uint64(a) >> c.tagShift
}

// lineAddr reconstructs the base address of the line with the given
// tag in the given set (inverse of SetIndex/tagOf).
func (c *Cache) lineAddr(setIdx int, tag uint64) Addr {
	return Addr((tag*uint64(c.numSets) + uint64(setIdx)) << c.lineShift)
}

// ModuleOf returns the module of a set index.
func (c *Cache) ModuleOf(setIdx int) int { return int(c.setModule[setIdx]) }

// BankOf returns the bank a set maps to (low-order interleaving).
func (c *Cache) BankOf(setIdx int) int { return int(c.setBank[setIdx]) }

// IsLeader reports whether a set is a leader (profiling) set.
func (c *Cache) IsLeader(setIdx int) bool { return c.setLeader[setIdx] }

// NumLeaderSets returns the number of leader sets.
func (c *Cache) NumLeaderSets() int {
	if c.p.SamplingRatio <= 0 {
		return 0
	}
	return (c.numSets + c.p.SamplingRatio - 1) / c.p.SamplingRatio
}

// waysFor returns how many ways are active for a given set.
func (c *Cache) waysFor(setIdx int) int {
	if c.setLeader[setIdx] {
		return c.p.Assoc
	}
	return c.activeWays[c.setModule[setIdx]]
}

// waysMask returns the bitmask of ways [0, n).
func waysMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(n) - 1
}

// Access performs a read (write=false) or write (write=true) to addr
// and updates replacement and statistics. On a miss the line is filled
// (allocate-on-miss for both reads and writes, matching a write-back,
// write-allocate LLC).
func (c *Cache) Access(addr Addr, write bool) AccessResult {
	var res AccessResult
	c.AccessInto(addr, write, &res)
	return res
}

// AccessInto is Access writing its result through res instead of
// returning it by value; the simulator's per-reference loop uses it to
// avoid copying the result struct on every access.
func (c *Cache) AccessInto(addr Addr, write bool, res *AccessResult) {
	setIdx := c.SetIndex(addr)
	tag := c.tagOf(addr)
	assoc := c.assoc
	base := setIdx * assoc
	tags := c.tags[base : base+assoc : base+assoc]
	order := c.order[base : base+assoc : base+assoc]
	valid := c.vd[2*setIdx]
	*res = AccessResult{
		Set:    setIdx,
		Bank:   int(c.setBank[setIdx]),
		Module: int(c.setModule[setIdx]),
		Leader: c.setLeader[setIdx],
		LRUPos: -1,
	}

	// MRU fast path: temporal locality makes the most-recently-used
	// way the common hit, and hitting it skips both the bitset walk
	// and the recency promotion (position 0 is already MRU).
	if w := int(order[0]); valid>>uint(w)&1 != 0 && tags[w] == tag {
		res.Hit = true
		res.Way = w
		res.LRUPos = 0
		if write {
			c.vd[2*setIdx+1] |= 1 << uint(w)
		}
		c.total.Hits++
		c.interval.Hits++
		if res.Leader {
			c.hitPos[res.Module][0]++
		}
		if c.observer != nil {
			c.observer.OnTouch(setIdx, w)
		}
		if write {
			c.total.WriteHits++
			c.interval.WriteHits++
			if c.wear != nil {
				c.recordWrite(setIdx, w)
			}
		}
		return
	}

	// Probe the valid ways by bitset. valid ⟹ active and valid tags
	// are unique per set (see the package comment), so this finds
	// exactly the line a recency-order walk over active ways would.
	for m := valid; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if tags[w] != tag {
			continue
		}
		// The LRU position — what Algorithm 1's nL2Hit indexes by —
		// is the way's index in the recency stack.
		pos := 0
		for p, ow := range order {
			if int(ow) == w {
				pos = p
				break
			}
		}
		res.Hit = true
		res.Way = w
		res.LRUPos = pos
		if write {
			c.vd[2*setIdx+1] |= 1 << uint(w)
		}
		promote(order, pos)
		c.total.Hits++
		c.interval.Hits++
		if res.Leader {
			c.hitPos[res.Module][pos]++
		}
		if c.observer != nil {
			c.observer.OnTouch(setIdx, w)
		}
		if write {
			c.total.WriteHits++
			c.interval.WriteHits++
			if c.wear != nil {
				c.recordWrite(setIdx, w)
			}
		}
		return
	}

	// Miss: choose a victim among active ways — the lowest-numbered
	// invalid active way if one exists (so fills pack into low ways,
	// the ones selective-ways keeps enabled), otherwise the LRU
	// active way.
	c.total.Misses++
	c.interval.Misses++
	nActive := assoc
	if !res.Leader {
		nActive = c.activeWays[res.Module]
	}
	var w, victimPos int
	if inv := ^valid & waysMask(nActive); inv != 0 {
		w = bits.TrailingZeros64(inv)
		victimPos = 0
		for p, ow := range order {
			if int(ow) == w {
				victimPos = p
				break
			}
		}
	} else {
		victimPos = -1
		for pos := assoc - 1; pos >= 0; pos-- {
			if int(order[pos]) < nActive {
				victimPos = pos
				break
			}
		}
		if victimPos < 0 {
			// No active ways at all — cannot happen with A_min >= 1, but
			// guard against misconfiguration rather than corrupt state.
			panic(fmt.Sprintf("cache %s: set %d has zero active ways", c.p.Name, setIdx))
		}
		w = int(order[victimPos])
	}
	bit := uint64(1) << uint(w)
	if valid&bit != 0 {
		if c.vd[2*setIdx+1]&bit != 0 {
			res.WritebackVictim = true
			res.VictimAddr = c.lineAddr(setIdx, tags[w])
			c.total.Writebacks++
			c.interval.Writebacks++
		}
		c.validByBank[res.Bank]--
		if c.observer != nil {
			c.observer.OnInvalidate(setIdx, w)
		}
	}
	tags[w] = tag
	c.vd[2*setIdx] |= bit
	if write {
		c.vd[2*setIdx+1] |= bit
	} else {
		c.vd[2*setIdx+1] &^= bit
	}
	c.validByBank[res.Bank]++
	c.total.Fills++
	c.interval.Fills++
	res.Way = w
	promote(order, victimPos)
	if c.observer != nil {
		c.observer.OnTouch(setIdx, w)
	}
	if c.wear != nil {
		// A fill writes the frame regardless of the access direction.
		c.recordWrite(setIdx, w)
	}
}

// recordWrite charges one write to the physical frame (setIdx, way)
// and fires the intra-set wear-levelling remap when the set's write
// count reaches a multiple of WearLevelPeriod. Called after all
// replacement-state updates for the access, so the remap operates on
// the post-access recency stack.
func (c *Cache) recordWrite(setIdx, way int) {
	c.wear[setIdx*c.assoc+way]++
	if c.setWrites == nil {
		return
	}
	c.setWrites[setIdx]++
	if c.setWrites[setIdx]%uint64(c.p.WearLevelPeriod) == 0 {
		c.wearLevelSet(setIdx)
	}
}

// wearLevelSet swaps the logical contents of the set's most- and
// least-worn active frames (ties resolve to the lowest way index; a
// fully even set is a no-op). Only active ways participate so the
// valid ⟹ active invariant is preserved in shrunk follower sets.
func (c *Cache) wearLevelSet(setIdx int) {
	n := c.waysFor(setIdx)
	base := setIdx * c.assoc
	maxW, minW := 0, 0
	for w := 1; w < n; w++ {
		wr := c.wear[base+w]
		if wr > c.wear[base+maxW] {
			maxW = w
		}
		if wr < c.wear[base+minW] {
			minW = w
		}
	}
	if maxW == minW {
		return
	}
	c.swapFrames(setIdx, maxW, minW)
	c.wearSwaps++
}

// swapFrames exchanges the logical contents of two frames in a set:
// tags, valid/dirty bits and recency-stack entries move; wear counters
// stay with the physical frames. Bank occupancy, active-line counts
// and all externally visible cache behaviour are unchanged.
func (c *Cache) swapFrames(setIdx, a, b int) {
	base := setIdx * c.assoc
	c.tags[base+a], c.tags[base+b] = c.tags[base+b], c.tags[base+a]
	abit, bbit := uint64(1)<<uint(a), uint64(1)<<uint(b)
	for i := 2 * setIdx; i <= 2*setIdx+1; i++ {
		word := c.vd[i]
		if (word&abit != 0) != (word&bbit != 0) {
			c.vd[i] = word ^ (abit | bbit)
		}
	}
	order := c.order[base : base+c.assoc]
	for i, w := range order {
		switch int(w) {
		case a:
			order[i] = uint8(b)
		case b:
			order[i] = uint8(a)
		}
	}
}

// promote moves the way at stack position pos to MRU.
func promote(order []uint8, pos int) {
	w := order[pos]
	copy(order[1:pos+1], order[:pos])
	order[0] = w
}

// Probe reports whether addr is present in an active way, without
// disturbing replacement state or statistics.
func (c *Cache) Probe(addr Addr) bool {
	setIdx := c.SetIndex(addr)
	tag := c.tagOf(addr)
	base := setIdx * c.assoc
	tags := c.tags[base : base+c.assoc]
	for m := c.vd[2*setIdx]; m != 0; m &= m - 1 {
		if tags[bits.TrailingZeros64(m)] == tag {
			return true
		}
	}
	return false
}

// SetActiveWays reconfigures module m to keep n ways powered on.
// Shrinking flushes the disabled ways of every follower set in the
// module: clean lines are dropped and dirty lines counted as
// writebacks. It returns the number of lines invalidated and how many
// of those were dirty (writebacks). Growing simply enables the ways.
// It panics if m or n is out of range, matching the paper's invariant
// that the controller always requests 1 <= n <= A.
func (c *Cache) SetActiveWays(m, n int) (invalidated, writebacks int) {
	if m < 0 || m >= c.p.Modules {
		panic(fmt.Sprintf("cache %s: module %d out of range", c.p.Name, m))
	}
	if n < 1 || n > c.p.Assoc {
		panic(fmt.Sprintf("cache %s: active ways %d out of range [1,%d]", c.p.Name, n, c.p.Assoc))
	}
	old := c.activeWays[m]
	c.activeWays[m] = n
	c.activeLines += (n - old) * c.followersPerMod[m]
	if n >= old {
		return 0, 0
	}
	dropMask := waysMask(old) &^ waysMask(n)
	lo, hi := m*c.setsPerMod, (m+1)*c.setsPerMod
	for setIdx := lo; setIdx < hi; setIdx++ {
		if c.setLeader[setIdx] {
			continue // leader sets never reconfigure (Section 3.2)
		}
		drop := c.vd[2*setIdx] & dropMask
		if drop == 0 {
			continue
		}
		bank := int(c.setBank[setIdx])
		for mb := drop; mb != 0; mb &= mb - 1 {
			w := bits.TrailingZeros64(mb)
			bit := uint64(1) << uint(w)
			if c.vd[2*setIdx+1]&bit != 0 {
				writebacks++
				c.total.Writebacks++
				c.interval.Writebacks++
			}
			c.vd[2*setIdx] &^= bit
			c.vd[2*setIdx+1] &^= bit
			invalidated++
			c.validByBank[bank]--
			if c.observer != nil {
				c.observer.OnInvalidate(setIdx, w)
			}
		}
	}
	return invalidated, writebacks
}

// ActiveWays returns the active-way count of module m.
func (c *Cache) ActiveWays(m int) int { return c.activeWays[m] }

// ActiveFraction returns F_A: the fraction of the cache's lines that
// are powered on, counting leader sets (always fully on) and follower
// sets at their configured width — exactly the accounting the paper
// requires ("F_A for ESTEEM duly takes into account the active area
// due to leader and follower sets").
func (c *Cache) ActiveFraction() float64 {
	return float64(c.activeLines) / float64(c.numSets*c.p.Assoc)
}

// ValidByBank returns the number of valid lines mapped to bank b.
func (c *Cache) ValidByBank(b int) int { return c.validByBank[b] }

// ValidLines returns the total number of valid lines.
func (c *Cache) ValidLines() int {
	n := 0
	for _, v := range c.validByBank {
		n += v
	}
	return n
}

// TotalLines returns S*A.
func (c *Cache) TotalLines() int { return c.numSets * c.p.Assoc }

// LinesPerBank returns the number of line frames in bank b.
func (c *Cache) LinesPerBank(b int) int {
	// Sets are interleaved across banks low-order; with a power-of-two
	// set count and any bank count, distribute remainders exactly.
	full := c.numSets / c.p.Banks
	if b < c.numSets%c.p.Banks {
		full++
	}
	return full * c.p.Assoc
}

// LineState reports the valid/dirty state of the line at (setIdx, way).
func (c *Cache) LineState(setIdx, way int) (valid, dirty bool) {
	bit := uint64(1) << uint(way)
	return c.vd[2*setIdx]&bit != 0, c.vd[2*setIdx+1]&bit != 0
}

// SetBits returns the raw valid and dirty bitset words of a set (bit
// w = way w). It exposes the SoA representation for verification:
// the -tags verify invariants cross-check popcounts of these words
// against independent recounts.
func (c *Cache) SetBits(setIdx int) (valid, dirty uint64) {
	return c.vd[2*setIdx], c.vd[2*setIdx+1]
}

// WearCounters returns the per-frame write-wear counters, indexed
// set*Assoc+way; nil unless Params.TrackWear. The slice aliases
// internal state; callers must not modify it.
func (c *Cache) WearCounters() []uint64 { return c.wear }

// WearLevelSwaps returns the number of wear-levelling remaps
// performed since construction.
func (c *Cache) WearLevelSwaps() uint64 { return c.wearSwaps }

// HitPositions returns the leader-set hit histogram for module m at
// the current interval: element i counts hits at LRU position i since
// the last ResetInterval. The returned slice aliases internal state;
// callers must not modify it and must copy if retaining across
// ResetInterval.
func (c *Cache) HitPositions(m int) []uint64 { return c.hitPos[m] }

// TotalCounters returns statistics since construction.
func (c *Cache) TotalCounters() Counters { return c.total }

// IntervalCounters returns statistics since the last ResetInterval.
func (c *Cache) IntervalCounters() Counters { return c.interval }

// ResetInterval clears the interval counters and leader histograms.
// The ESTEEM controller calls it after consuming an interval's
// profiling data.
func (c *Cache) ResetInterval() {
	c.interval = Counters{}
	for i := range c.hitBacking {
		c.hitBacking[i] = 0
	}
}

// InvalidateAll drops every line (counting dirty writebacks), e.g. for
// tests and for policies that eagerly invalidate.
func (c *Cache) InvalidateAll() (writebacks int) {
	for setIdx := 0; setIdx < c.numSets; setIdx++ {
		valid := c.vd[2*setIdx]
		if valid == 0 {
			continue
		}
		bank := int(c.setBank[setIdx])
		for mb := valid; mb != 0; mb &= mb - 1 {
			w := bits.TrailingZeros64(mb)
			bit := uint64(1) << uint(w)
			if c.vd[2*setIdx+1]&bit != 0 {
				writebacks++
				c.total.Writebacks++
				c.interval.Writebacks++
			}
			c.vd[2*setIdx] &^= bit
			c.vd[2*setIdx+1] &^= bit
			c.validByBank[bank]--
			if c.observer != nil {
				c.observer.OnInvalidate(setIdx, w)
			}
		}
	}
	return writebacks
}

// InvalidateLine invalidates (set, way) if valid, returning whether it
// was dirty. Used by eager-invalidation refresh policies (Refrint
// RPD).
func (c *Cache) InvalidateLine(setIdx, way int) (wasValid, wasDirty bool) {
	bit := uint64(1) << uint(way)
	if c.vd[2*setIdx]&bit == 0 {
		return false, false
	}
	wasDirty = c.vd[2*setIdx+1]&bit != 0
	if wasDirty {
		c.total.Writebacks++
		c.interval.Writebacks++
	}
	c.vd[2*setIdx] &^= bit
	c.vd[2*setIdx+1] &^= bit
	c.validByBank[c.setBank[setIdx]]--
	if c.observer != nil {
		c.observer.OnInvalidate(setIdx, way)
	}
	return true, wasDirty
}
