package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// sampleArtifact builds a representative artifact for round-trip
// tests.
func readSampleArtifact() RunArtifact {
	return RunArtifact{
		SchemaVersion: SchemaVersion,
		Manifest: Manifest{
			Label:      "esteem/gobmk/1c",
			Technique:  "esteem",
			Workload:   []string{"gobmk"},
			Cores:      1,
			Seed:       42,
			ConfigHash: "deadbeefdeadbeef",
			GoVersion:  "go1.24.0",
			GOOS:       "linux",
			GOARCH:     "amd64",
		},
		Summary: RunSummary{
			Instructions: 1000,
			Cycles:       2500,
			Energy:       Energy{L2LeakJ: 0.25, TotalJ: 0.5},
			L2Hits:       10,
			Cores: []CoreSummary{
				{Benchmark: "gobmk", Instructions: 1000, Cycles: 2500, IPC: 0.4},
			},
		},
		Intervals: []Interval{
			{Index: 0, Measuring: false, EndCycle: 100, Cycles: 100},
			{Index: 1, Measuring: true, EndCycle: 200, Cycles: 100, ActiveRatio: 0.5},
		},
	}
}

func TestParseRunRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := readSampleArtifact()
	if err := EncodeRun(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ParseRun(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Manifest, want.Manifest) {
		t.Fatalf("manifest round trip: got %+v want %+v", got.Manifest, want.Manifest)
	}
	if len(got.Summary.Cores) != 1 || got.Summary.Cores[0] != want.Summary.Cores[0] {
		t.Fatalf("summary cores round trip: %+v", got.Summary.Cores)
	}
	if len(got.Intervals) != 2 || !reflect.DeepEqual(got.Intervals[1], want.Intervals[1]) {
		t.Fatalf("intervals round trip: %+v", got.Intervals)
	}
}

func TestParseRunRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeRun(&buf, readSampleArtifact()); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"malformed":     `{"schema_version": `,
		"empty":         ``,
		"wrong schema":  strings.Replace(good, fmt.Sprintf(`"schema_version": %d`, SchemaVersion), `"schema_version": 99`, 1),
		"unknown field": strings.Replace(good, `"schema_version"`, `"unknown_field": 1, "schema_version"`, 1),
		"trailing data": good + `{"another": "doc"}`,
	}
	for name, input := range cases {
		if _, err := ParseRun([]byte(input)); err == nil {
			t.Errorf("%s: ParseRun accepted invalid input", name)
		}
	}
}

func TestReadRunFile(t *testing.T) {
	dir := t.TempDir()
	sink, err := NewDirSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := readSampleArtifact()
	if err := sink.WriteRun(7, want); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "0007-esteem_gobmk_1c.json")
	got, err := ReadRunFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Manifest, want.Manifest) {
		t.Fatalf("manifest mismatch after sink round trip: %+v", got.Manifest)
	}
	if _, err := ReadRunFile(filepath.Join(dir, "missing.json")); !os.IsNotExist(err) {
		t.Fatalf("missing file: err = %v, want IsNotExist", err)
	}
}
