// Prefix checkpoints: the sweep's horizon-extension layer. With a
// cache attached, every workload-driven simulation periodically stores
// a checkpoint of the full simulator state plus the telemetry recorded
// so far, keyed by its configuration MINUS the measured-instruction
// horizon (castore.CheckpointBaseKey). A later job with the same
// configuration and a longer horizon restores the deepest usable
// checkpoint and simulates only the suffix — producing an artifact
// byte-identical to a cold run of the long horizon (internal/sim's
// checkpoint tests prove state equality; the envelope carries the
// telemetry prefix so the artifact's interval log matches too).
package runner

import (
	"encoding/json"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/obs"
)

// ckptEnvelopeVersion guards the envelope layout; decode rejects other
// versions (the caller treats that as a cache miss).
const ckptEnvelopeVersion = 1

// defaultCheckpointStride is the boundary stride checkpoints are saved
// at when the caller does not choose one: the warmup/measurement seam
// plus every 4th measured interval boundary. Serialising is cheap
// relative to an interval of simulation but not free; every 4th
// boundary keeps the resumable suffix short without doubling artifact
// I/O.
const defaultCheckpointStride = 4

// SetCheckpointInterval sets how often checkpoint-enabled jobs persist
// a prefix checkpoint: every k-th measured interval boundary (the
// warmup/measurement seam is always included). k <= 0 disables
// checkpointing. Without a call, cache-attached sweeps default to
// every 4th boundary. Must be called before Run.
func (s *Sweep) SetCheckpointInterval(k int) {
	if k <= 0 {
		s.ckptEvery = -1
		return
	}
	s.ckptEvery = k
}

// checkpointStride resolves the configured stride: 0 (unset) selects
// the default, negative means disabled.
func (s *Sweep) checkpointStride() int {
	if s.ckptEvery == 0 {
		return defaultCheckpointStride
	}
	return s.ckptEvery
}

// encodeCheckpointEnvelope packages one resumable prefix: the
// simulator's serialised state and the canonical JSON of the telemetry
// intervals observed up to the same boundary.
func encodeCheckpointEnvelope(simState []byte, ivs []obs.Interval) ([]byte, error) {
	ivJSON, err := obs.MarshalCanonical(ivs)
	if err != nil {
		return nil, fmt.Errorf("runner: encoding checkpoint intervals: %w", err)
	}
	w := ckpt.NewWriter()
	w.Section("RENV")
	w.U32(ckptEnvelopeVersion)
	w.Bytes64(simState)
	w.Bytes64(ivJSON)
	return w.Bytes(), nil
}

// decodeCheckpointEnvelope unpacks encodeCheckpointEnvelope's output.
func decodeCheckpointEnvelope(data []byte) (simState []byte, ivs []obs.Interval, err error) {
	r := ckpt.NewReader(data)
	r.Section("RENV")
	if v := r.U32(); r.Err() == nil && v != ckptEnvelopeVersion {
		return nil, nil, fmt.Errorf("runner: checkpoint envelope version %d, want %d", v, ckptEnvelopeVersion)
	}
	simState = r.Bytes64()
	ivJSON := r.Bytes64()
	if err := r.Done(); err != nil {
		return nil, nil, fmt.Errorf("runner: checkpoint envelope: %w", err)
	}
	if err := json.Unmarshal(ivJSON, &ivs); err != nil {
		return nil, nil, fmt.Errorf("runner: checkpoint envelope intervals: %w", err)
	}
	return simState, ivs, nil
}
