package refrint

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/edram"
	"repro/internal/xrand"
)

// benchSetup builds the paper's L2 with the given policy installed,
// populates it with a deterministic mixed-dirtiness working set and
// returns the refresh engine, ready to advance.
func benchSetup(b *testing.B, makePolicy func(c *cache.Cache, clk *edram.Clock) edram.Policy) (*edram.Engine, *cache.Cache, *edram.Clock) {
	b.Helper()
	c := cache.MustNew(cache.Params{
		Name: "L2", SizeBytes: 4 << 20, Assoc: 16, LineBytes: 64,
		Latency: 12, Modules: 8, SamplingRatio: 64, Banks: 4,
	})
	clk := &edram.Clock{}
	policy := makePolicy(c, clk)
	eng, err := edram.NewEngine(edram.Params{RetentionCycles: 100_000, Banks: 4}, policy)
	if err != nil {
		b.Fatal(err)
	}
	// Fill ~60% of the cache with valid lines, ~30% of them dirty,
	// touching through Access so observers see every line.
	rng := xrand.New(7)
	for i := 0; i < c.TotalLines()*3/5; i++ {
		clk.Cycle = uint64(i)
		c.Access(cache.Addr(rng.Uint64n(4<<20)&^63), rng.Bool(0.3))
	}
	return eng, c, clk
}

// BenchmarkRefreshWindow measures the cost of advancing the refresh
// engine across one full retention window (every refresh event of
// every bank) for each refresh policy. This is the per-window price
// every simulated 50 µs pays, so it dominates long runs with quiet
// caches.
func BenchmarkRefreshWindow(b *testing.B) {
	policies := []struct {
		name string
		make func(c *cache.Cache, clk *edram.Clock) edram.Policy
	}{
		{"baseline", func(c *cache.Cache, clk *edram.Clock) edram.Policy { return edram.NewRefreshAll(c) }},
		{"valid-only", func(c *cache.Cache, clk *edram.Clock) edram.Policy { return edram.NewValidOnly(c) }},
		{"periodic-valid", func(c *cache.Cache, clk *edram.Clock) edram.Policy { return NewPeriodicValid(c) }},
		{"rpv", func(c *cache.Cache, clk *edram.Clock) edram.Policy {
			p, err := NewRPV(c, clk, 4, 100_000)
			if err != nil {
				b.Fatal(err)
			}
			return p
		}},
		{"rpd", func(c *cache.Cache, clk *edram.Clock) edram.Policy {
			p, err := NewRPD(c, clk, 4, 100_000)
			if err != nil {
				b.Fatal(err)
			}
			return p
		}},
	}
	for _, pc := range policies {
		b.Run(pc.name, func(b *testing.B) {
			eng, c, clk := benchSetup(b, pc.make)
			rng := xrand.New(11)
			b.ReportAllocs()
			b.ResetTimer()
			cycle := uint64(200_000)
			for i := 0; i < b.N; i++ {
				// One retention window per iteration, with a sprinkle
				// of touches so polyphase state keeps evolving (RPD
				// invalidates clean lines; re-fill to keep it loaded).
				for j := 0; j < 64; j++ {
					clk.Cycle = cycle + uint64(j)
					c.Access(cache.Addr(rng.Uint64n(4<<20)&^63), rng.Bool(0.3))
				}
				cycle += 100_000
				eng.AdvanceTo(cycle)
			}
			_ = fmt.Sprint(eng.TotalRefreshed())
		})
	}
}
