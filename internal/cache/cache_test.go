package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// small returns a tiny cache convenient for direct inspection:
// 4 sets, 4 ways, 64B lines, 1 module, no leader sets.
func small(t *testing.T) *Cache {
	t.Helper()
	c, err := New(Params{
		Name: "t", SizeBytes: 4 * 4 * 64, Assoc: 4, LineBytes: 64,
		Modules: 1, Banks: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// addrFor builds an address that maps to the given set with the given
// tag for a cache with 64B lines and the given set count.
func addrFor(set, tag, numSets int) Addr {
	return Addr(uint64(tag)*uint64(numSets)*64 + uint64(set)*64)
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Name: "zero"},
		{Name: "indiv", SizeBytes: 1000, Assoc: 4, LineBytes: 64, Modules: 1, Banks: 1},
		{Name: "nonpow2sets", SizeBytes: 3 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 1, Banks: 1},
		{Name: "nonpow2line", SizeBytes: 4 * 4 * 48, Assoc: 4, LineBytes: 48, Modules: 1, Banks: 1},
		{Name: "mods", SizeBytes: 4 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 3, Banks: 1},
		{Name: "zeromod", SizeBytes: 4 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 0, Banks: 1},
		{Name: "zerobank", SizeBytes: 4 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 1, Banks: 0},
		{Name: "negsamp", SizeBytes: 4 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 1, Banks: 1, SamplingRatio: -1},
		{Name: "hugeassoc", SizeBytes: 128 * 128 * 64, Assoc: 128, LineBytes: 64, Modules: 1, Banks: 1},
	}
	for _, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("Params %q: expected error", p.Name)
		}
	}
	good := Params{Name: "ok", SizeBytes: 4 << 20, Assoc: 16, LineBytes: 64, Modules: 8, Banks: 4, SamplingRatio: 64}
	c, err := New(good)
	if err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
	if c.NumSets() != 4096 {
		t.Errorf("4MB/64B/16way should have 4096 sets, got %d", c.NumSets())
	}
}

func TestMissThenHit(t *testing.T) {
	c := small(t)
	a := addrFor(1, 7, 4)
	r := c.Access(a, false)
	if r.Hit {
		t.Fatal("cold access hit")
	}
	if r.Set != 1 {
		t.Fatalf("set = %d, want 1", r.Set)
	}
	r = c.Access(a, false)
	if !r.Hit || r.LRUPos != 0 {
		t.Fatalf("second access: hit=%v pos=%d, want hit at MRU", r.Hit, r.LRUPos)
	}
}

func TestLRUPositions(t *testing.T) {
	c := small(t)
	// Fill set 0 with tags 0..3; after the fills, tag 3 is MRU and
	// tag 0 is LRU.
	for tag := 0; tag < 4; tag++ {
		c.Access(addrFor(0, tag+1, 4), false)
	}
	// Accessing tag 1 (filled first) must hit at LRU position 3.
	r := c.Access(addrFor(0, 1, 4), false)
	if !r.Hit || r.LRUPos != 3 {
		t.Fatalf("hit=%v pos=%d, want hit at pos 3", r.Hit, r.LRUPos)
	}
	// Now tag 1 is MRU; re-access hits at position 0.
	r = c.Access(addrFor(0, 1, 4), false)
	if !r.Hit || r.LRUPos != 0 {
		t.Fatalf("hit=%v pos=%d, want hit at MRU", r.Hit, r.LRUPos)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(t)
	for tag := 1; tag <= 4; tag++ {
		c.Access(addrFor(0, tag, 4), false)
	}
	// 5th distinct tag evicts the LRU line (tag 1).
	c.Access(addrFor(0, 5, 4), false)
	if c.Probe(addrFor(0, 1, 4)) {
		t.Fatal("LRU line not evicted")
	}
	for tag := 2; tag <= 5; tag++ {
		if !c.Probe(addrFor(0, tag, 4)) {
			t.Fatalf("tag %d missing after eviction of LRU", tag)
		}
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := small(t)
	c.Access(addrFor(0, 1, 4), true) // dirty
	for tag := 2; tag <= 5; tag++ {
		c.Access(addrFor(0, tag, 4), false)
	}
	// tag 1 was dirty LRU and must have been written back.
	if got := c.TotalCounters().Writebacks; got != 1 {
		t.Fatalf("writebacks = %d, want 1", got)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := small(t)
	for tag := 1; tag <= 5; tag++ {
		c.Access(addrFor(0, tag, 4), false)
	}
	if got := c.TotalCounters().Writebacks; got != 0 {
		t.Fatalf("writebacks = %d, want 0", got)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := small(t)
	c.Access(addrFor(0, 1, 4), false) // clean fill
	r := c.Access(addrFor(0, 1, 4), true)
	if !r.Hit {
		t.Fatal("write should hit")
	}
	for tag := 2; tag <= 5; tag++ {
		c.Access(addrFor(0, tag, 4), false)
	}
	if got := c.TotalCounters().Writebacks; got != 1 {
		t.Fatalf("writebacks = %d, want 1 (write hit dirtied the line)", got)
	}
}

func TestCounters(t *testing.T) {
	c := small(t)
	c.Access(addrFor(0, 1, 4), false)
	c.Access(addrFor(0, 1, 4), false)
	c.Access(addrFor(0, 2, 4), false)
	tc := c.TotalCounters()
	if tc.Hits != 1 || tc.Misses != 2 || tc.Fills != 2 {
		t.Fatalf("counters = %+v", tc)
	}
	if tc.Accesses() != 3 {
		t.Fatalf("accesses = %d", tc.Accesses())
	}
	c.ResetInterval()
	if ic := c.IntervalCounters(); ic != (Counters{}) {
		t.Fatalf("interval counters not reset: %+v", ic)
	}
	if tc := c.TotalCounters(); tc.Accesses() != 3 {
		t.Fatal("total counters must survive ResetInterval")
	}
}

func TestShrinkFlushesAndWaysDisabled(t *testing.T) {
	// 8 sets, 4 ways, 2 modules (sets 0-3 and 4-7), no leaders.
	c := MustNew(Params{Name: "t", SizeBytes: 8 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 2, Banks: 1})
	// Fill set 0 fully; dirty the line in way 3.
	for tag := 1; tag <= 4; tag++ {
		c.Access(addrFor(0, tag, 8), tag == 4)
	}
	inv, wb := c.SetActiveWays(0, 2)
	if inv != 2 {
		t.Fatalf("invalidated = %d, want 2", inv)
	}
	if wb != 1 {
		t.Fatalf("writebacks = %d, want 1 (the dirty line in way 3)", wb)
	}
	if c.ActiveWays(0) != 2 || c.ActiveWays(1) != 4 {
		t.Fatalf("active ways = %d,%d", c.ActiveWays(0), c.ActiveWays(1))
	}
	// Lines in disabled ways (2,3) must be gone; ways 0,1 retained.
	if !c.Probe(addrFor(0, 1, 8)) || !c.Probe(addrFor(0, 2, 8)) {
		t.Fatal("lines in surviving ways were lost")
	}
	if c.Probe(addrFor(0, 3, 8)) || c.Probe(addrFor(0, 4, 8)) {
		t.Fatal("lines in disabled ways still visible")
	}
	// Module 1 sets untouched.
	c.Access(addrFor(4, 9, 8), false)
	if !c.Probe(addrFor(4, 9, 8)) {
		t.Fatal("other module affected by reconfiguration")
	}
}

func TestShrunkSetUsesOnlyActiveWays(t *testing.T) {
	c := MustNew(Params{Name: "t", SizeBytes: 4 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 1, Banks: 1})
	c.SetActiveWays(0, 2)
	// With 2 active ways, three distinct tags must cause an eviction.
	c.Access(addrFor(0, 1, 4), false)
	c.Access(addrFor(0, 2, 4), false)
	c.Access(addrFor(0, 3, 4), false)
	if c.Probe(addrFor(0, 1, 4)) {
		t.Fatal("tag 1 should have been evicted in 2-way mode")
	}
	if c.ValidLines() != 2 {
		t.Fatalf("valid lines = %d, want 2", c.ValidLines())
	}
}

func TestGrowReenablesWays(t *testing.T) {
	c := MustNew(Params{Name: "t", SizeBytes: 4 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 1, Banks: 1})
	c.SetActiveWays(0, 2)
	c.Access(addrFor(0, 1, 4), false)
	c.Access(addrFor(0, 2, 4), false)
	inv, wb := c.SetActiveWays(0, 4)
	if inv != 0 || wb != 0 {
		t.Fatalf("grow flushed lines: inv=%d wb=%d", inv, wb)
	}
	c.Access(addrFor(0, 3, 4), false)
	c.Access(addrFor(0, 4, 4), false)
	// All four must now coexist.
	for tag := 1; tag <= 4; tag++ {
		if !c.Probe(addrFor(0, tag, 4)) {
			t.Fatalf("tag %d missing after grow", tag)
		}
	}
}

func TestLeaderSetsExemptFromReconfig(t *testing.T) {
	// 8 sets, sampling ratio 4: sets 0 and 4 are leaders.
	c := MustNew(Params{Name: "t", SizeBytes: 8 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 1, Banks: 1, SamplingRatio: 4})
	if !c.IsLeader(0) || !c.IsLeader(4) || c.IsLeader(1) {
		t.Fatal("leader set identification wrong")
	}
	if c.NumLeaderSets() != 2 {
		t.Fatalf("NumLeaderSets = %d, want 2", c.NumLeaderSets())
	}
	for tag := 1; tag <= 4; tag++ {
		c.Access(addrFor(0, tag, 8), false) // leader set
		c.Access(addrFor(1, tag, 8), false) // follower set
	}
	c.SetActiveWays(0, 2)
	// Leader set keeps all lines; follower flushed down to 2.
	for tag := 1; tag <= 4; tag++ {
		if !c.Probe(addrFor(0, tag, 8)) {
			t.Fatalf("leader set lost tag %d on reconfig", tag)
		}
	}
	if c.Probe(addrFor(1, 3, 8)) || c.Probe(addrFor(1, 4, 8)) {
		t.Fatal("follower set kept lines in disabled ways")
	}
}

func TestHitPositionHistogramLeaderOnly(t *testing.T) {
	c := MustNew(Params{Name: "t", SizeBytes: 8 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 2, Banks: 1, SamplingRatio: 4})
	// Leader set 0 (module 0): fill two tags, hit the older one →
	// LRU position 1.
	c.Access(addrFor(0, 1, 8), false)
	c.Access(addrFor(0, 2, 8), false)
	c.Access(addrFor(0, 1, 8), false)
	// Follower set 1: a hit that must NOT be recorded.
	c.Access(addrFor(1, 1, 8), false)
	c.Access(addrFor(1, 1, 8), false)
	h0 := c.HitPositions(0)
	if h0[1] != 1 {
		t.Fatalf("hitPos[0] = %v, want one hit at position 1", h0)
	}
	var total uint64
	for _, v := range h0 {
		total += v
	}
	if total != 1 {
		t.Fatalf("leader histogram counted follower hits: %v", h0)
	}
	// Module 1 histogram untouched.
	for _, v := range c.HitPositions(1) {
		if v != 0 {
			t.Fatalf("module 1 histogram dirty: %v", c.HitPositions(1))
		}
	}
}

func TestActiveFraction(t *testing.T) {
	// 8 sets, 4 ways, 2 modules, no leaders.
	c := MustNew(Params{Name: "t", SizeBytes: 8 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 2, Banks: 1})
	if got := c.ActiveFraction(); got != 1 {
		t.Fatalf("initial active fraction = %v", got)
	}
	c.SetActiveWays(0, 2)
	// Module 0 at 2/4, module 1 at 4/4 → 0.75 overall.
	if got := c.ActiveFraction(); got != 0.75 {
		t.Fatalf("active fraction = %v, want 0.75", got)
	}
}

func TestActiveFractionCountsLeaders(t *testing.T) {
	// 8 sets, sampling 4 → leaders {0,4}, one per module of 4 sets.
	c := MustNew(Params{Name: "t", SizeBytes: 8 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 2, Banks: 1, SamplingRatio: 4})
	c.SetActiveWays(0, 2)
	c.SetActiveWays(1, 2)
	// Each module: 1 leader set fully on (4 ways) + 3 followers at 2.
	// Active lines = 2*(4 + 3*2) = 20 of 32 → 0.625.
	if got := c.ActiveFraction(); got != 0.625 {
		t.Fatalf("active fraction = %v, want 0.625", got)
	}
}

func TestValidByBank(t *testing.T) {
	c := MustNew(Params{Name: "t", SizeBytes: 8 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 1, Banks: 4})
	// Sets 0..7 map to banks 0..3,0..3.
	c.Access(addrFor(0, 1, 8), false) // bank 0
	c.Access(addrFor(1, 1, 8), false) // bank 1
	c.Access(addrFor(5, 1, 8), false) // bank 1
	if c.ValidByBank(0) != 1 || c.ValidByBank(1) != 2 || c.ValidByBank(2) != 0 {
		t.Fatalf("valid by bank = %d,%d,%d", c.ValidByBank(0), c.ValidByBank(1), c.ValidByBank(2))
	}
	if c.ValidLines() != 3 {
		t.Fatalf("valid lines = %d", c.ValidLines())
	}
}

func TestLinesPerBank(t *testing.T) {
	c := MustNew(Params{Name: "t", SizeBytes: 8 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 1, Banks: 4})
	total := 0
	for b := 0; b < 4; b++ {
		total += c.LinesPerBank(b)
	}
	if total != c.TotalLines() {
		t.Fatalf("bank line counts sum to %d, want %d", total, c.TotalLines())
	}
}

func TestInvalidateAll(t *testing.T) {
	c := small(t)
	c.Access(addrFor(0, 1, 4), true)
	c.Access(addrFor(1, 2, 4), false)
	wb := c.InvalidateAll()
	if wb != 1 {
		t.Fatalf("InvalidateAll writebacks = %d, want 1", wb)
	}
	if c.ValidLines() != 0 {
		t.Fatalf("valid lines = %d after InvalidateAll", c.ValidLines())
	}
	if c.Probe(addrFor(0, 1, 4)) {
		t.Fatal("line survived InvalidateAll")
	}
}

func TestInvalidateLine(t *testing.T) {
	c := small(t)
	r := c.Access(addrFor(2, 3, 4), true)
	wasValid, wasDirty := c.InvalidateLine(r.Set, r.Way)
	if !wasValid || !wasDirty {
		t.Fatalf("InvalidateLine = %v,%v, want valid dirty", wasValid, wasDirty)
	}
	wasValid, _ = c.InvalidateLine(r.Set, r.Way)
	if wasValid {
		t.Fatal("double invalidate reported valid")
	}
}

type recordingObserver struct {
	touches, invalidates int
}

func (o *recordingObserver) OnTouch(set, way int)      { o.touches++ }
func (o *recordingObserver) OnInvalidate(set, way int) { o.invalidates++ }

func TestObserverEvents(t *testing.T) {
	c := small(t)
	var o recordingObserver
	c.SetObserver(&o)
	c.Access(addrFor(0, 1, 4), false) // fill: touch
	c.Access(addrFor(0, 1, 4), false) // hit: touch
	for tag := 2; tag <= 5; tag++ {   // 4 fills, 1 eviction
		c.Access(addrFor(0, tag, 4), false)
	}
	if o.touches != 6 {
		t.Fatalf("touches = %d, want 6", o.touches)
	}
	if o.invalidates != 1 {
		t.Fatalf("invalidates = %d, want 1", o.invalidates)
	}
}

func TestSetActiveWaysPanics(t *testing.T) {
	c := small(t)
	for _, f := range []func(){
		func() { c.SetActiveWays(-1, 2) },
		func() { c.SetActiveWays(1, 2) },
		func() { c.SetActiveWays(0, 0) },
		func() { c.SetActiveWays(0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad SetActiveWays did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: the valid-line count tracked per bank always equals a
// direct scan of line state, across random access/reconfig sequences.
func TestValidCountConsistencyProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		c := MustNew(Params{Name: "p", SizeBytes: 16 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 4, Banks: 4, SamplingRatio: 8})
		for i := 0; i < 500; i++ {
			switch rng.Intn(10) {
			case 0:
				c.SetActiveWays(rng.Intn(4), 1+rng.Intn(4))
			default:
				c.Access(Addr(rng.Uint64n(16*64*32)), rng.Bool(0.3))
			}
		}
		// Direct scan.
		scan := make([]int, 4)
		for s := 0; s < c.NumSets(); s++ {
			for w := 0; w < 4; w++ {
				if v, _ := c.LineState(s, w); v {
					scan[c.BankOf(s)]++
				}
			}
		}
		for b := 0; b < 4; b++ {
			if scan[b] != c.ValidByBank(b) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: no valid line ever resides in a disabled way of a
// follower set.
func TestNoValidLinesInDisabledWaysProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		c := MustNew(Params{Name: "p", SizeBytes: 16 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 2, Banks: 2, SamplingRatio: 8})
		for i := 0; i < 400; i++ {
			if rng.Bool(0.1) {
				c.SetActiveWays(rng.Intn(2), 1+rng.Intn(4))
			} else {
				c.Access(Addr(rng.Uint64n(16*64*16)), rng.Bool(0.5))
			}
		}
		for s := 0; s < c.NumSets(); s++ {
			if c.IsLeader(s) {
				continue
			}
			n := c.ActiveWays(c.ModuleOf(s))
			for w := n; w < 4; w++ {
				if v, _ := c.LineState(s, w); v {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: hits + misses == accesses issued, and every probe after an
// access to the same address hits (inclusion of most-recent line).
func TestRecentLineAlwaysPresentProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		c := MustNew(Params{Name: "p", SizeBytes: 8 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 1, Banks: 1})
		n := 300
		for i := 0; i < n; i++ {
			a := Addr(rng.Uint64n(8 * 64 * 8))
			c.Access(a, rng.Bool(0.3))
			if !c.Probe(a) {
				return false
			}
		}
		tc := c.TotalCounters()
		return tc.Accesses() == uint64(n)
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSetIndexAndTagRoundTrip(t *testing.T) {
	c := MustNew(Params{Name: "t", SizeBytes: 4 << 20, Assoc: 16, LineBytes: 64, Modules: 8, Banks: 4})
	// Two addresses differing only above the set bits must map to the
	// same set with different tags and not alias.
	a1 := Addr(0x12340)
	a2 := a1 + Addr(c.NumSets()*64)
	if c.SetIndex(a1) != c.SetIndex(a2) {
		t.Fatal("addresses should map to same set")
	}
	c.Access(a1, false)
	if c.Probe(a2) {
		t.Fatal("distinct tags aliased")
	}
}

func TestModuleOf(t *testing.T) {
	c := MustNew(Params{Name: "t", SizeBytes: 4 << 20, Assoc: 16, LineBytes: 64, Modules: 16, Banks: 4})
	// 4096 sets, 16 modules → 256 sets per module, contiguous, as the
	// paper's example states.
	if c.SetsPerModule() != 256 {
		t.Fatalf("sets per module = %d, want 256", c.SetsPerModule())
	}
	if c.ModuleOf(0) != 0 || c.ModuleOf(255) != 0 || c.ModuleOf(256) != 1 || c.ModuleOf(4095) != 15 {
		t.Fatal("module mapping wrong")
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c := MustNew(Params{Name: "b", SizeBytes: 4 << 20, Assoc: 16, LineBytes: 64, Modules: 8, Banks: 4, SamplingRatio: 64})
	a := Addr(0x1000)
	c.Access(a, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(a, false)
	}
}

func BenchmarkAccessMissStream(b *testing.B) {
	c := MustNew(Params{Name: "b", SizeBytes: 4 << 20, Assoc: 16, LineBytes: 64, Modules: 8, Banks: 4, SamplingRatio: 64})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(Addr(uint64(i)*64), false)
	}
}

func TestVictimAddrRoundTrip(t *testing.T) {
	c := small(t)
	dirty := addrFor(2, 1, 4)
	c.Access(dirty, true)
	for tag := 2; tag <= 4; tag++ {
		c.Access(addrFor(2, tag, 4), false)
	}
	r := c.Access(addrFor(2, 5, 4), false)
	if !r.WritebackVictim {
		t.Fatal("dirty LRU line not written back")
	}
	if r.VictimAddr != dirty {
		t.Fatalf("victim addr = %#x, want %#x", r.VictimAddr, dirty)
	}
}

// Property: each set's LRU order array remains a permutation of the
// way indices under arbitrary access/reconfiguration sequences.
func TestLRUOrderIsPermutationProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		c := MustNew(Params{Name: "p", SizeBytes: 8 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 2, Banks: 2, SamplingRatio: 4})
		for i := 0; i < 300; i++ {
			if rng.Bool(0.1) {
				c.SetActiveWays(rng.Intn(2), 1+rng.Intn(4))
			} else {
				c.Access(Addr(rng.Uint64n(8*64*16)), rng.Bool(0.5))
			}
		}
		for s := 0; s < c.NumSets(); s++ {
			seen := [4]bool{}
			for _, w := range c.SnapshotSet(s).Order {
				if w >= 4 || seen[w] {
					return false
				}
				seen[w] = true
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: interval counters never exceed totals, and both agree on
// hit/miss conservation with issued accesses.
func TestCounterConservationProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		rng := xrand.New(seed)
		c := MustNew(Params{Name: "p", SizeBytes: 4 * 4 * 64, Assoc: 4, LineBytes: 64, Modules: 1, Banks: 1})
		n := int(nRaw)
		resets := 0
		for i := 0; i < n; i++ {
			if rng.Bool(0.05) {
				c.ResetInterval()
				resets++
				continue
			}
			c.Access(Addr(rng.Uint64n(4*64*8)), rng.Bool(0.3))
		}
		tc, ic := c.TotalCounters(), c.IntervalCounters()
		if ic.Hits > tc.Hits || ic.Misses > tc.Misses || ic.Writebacks > tc.Writebacks {
			return false
		}
		return tc.Accesses() == uint64(n-resets)
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}
