package smartref

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/edram"
	"repro/internal/xrand"
)

func newL2(t testing.TB) *cache.Cache {
	t.Helper()
	return cache.MustNew(cache.Params{
		Name: "L2", SizeBytes: 64 * 8 * 64, Assoc: 8, LineBytes: 64,
		Modules: 4, Banks: 4, SamplingRatio: 16,
	})
}

func addrFor(set, tag, numSets int) cache.Addr {
	return cache.Addr(uint64(tag)*uint64(numSets)*64 + uint64(set)*64)
}

func TestNewValidation(t *testing.T) {
	c := newL2(t)
	if _, err := New(c, 0); err == nil {
		t.Error("0 periods accepted")
	}
	if _, err := New(c, 300); err == nil {
		t.Error("300 periods accepted")
	}
	p, err := New(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "smart-refresh4" || p.EventsPerWindow() != 4 {
		t.Fatalf("identity wrong: %q/%d", p.Name(), p.EventsPerWindow())
	}
}

// countAll sums one event's refreshes across banks.
func countAll(p *Policy, event int) int {
	n := 0
	for b := 0; b < 4; b++ {
		n += p.RefreshEvent(b, event)
	}
	return n
}

func TestUntouchedLineRefreshedOncePerWindow(t *testing.T) {
	c := newL2(t)
	p, _ := New(c, 4)
	c.Access(addrFor(0, 1, 64), false) // counter = 4
	// Events 0..2 decrement without refreshing; event 3 refreshes.
	for e := 0; e < 3; e++ {
		if n := countAll(p, e); n != 0 {
			t.Fatalf("event %d refreshed %d lines, want 0", e, n)
		}
	}
	if n := countAll(p, 3); n != 1 {
		t.Fatalf("4th event refreshed %d lines, want 1", n)
	}
	// The engine refresh reloads the counter: the next window repeats.
	for e := 0; e < 3; e++ {
		if n := countAll(p, e); n != 0 {
			t.Fatalf("window 2 event %d refreshed %d, want 0", e, n)
		}
	}
	if n := countAll(p, 3); n != 1 {
		t.Fatalf("window 2 final event refreshed %d, want 1", n)
	}
}

func TestTouchSkipsEngineRefresh(t *testing.T) {
	c := newL2(t)
	p, _ := New(c, 4)
	c.Access(addrFor(0, 1, 64), false)
	// Touch the line again every couple of events: the engine must
	// never refresh it.
	for e := 0; e < 12; e++ {
		if n := countAll(p, e%4); n != 0 {
			t.Fatalf("event %d refreshed a frequently touched line", e)
		}
		if e%2 == 1 {
			c.Access(addrFor(0, 1, 64), false)
		}
	}
}

func TestInvalidateUntracks(t *testing.T) {
	c := newL2(t)
	p, _ := New(c, 4)
	res := c.Access(addrFor(0, 1, 64), false)
	c.InvalidateLine(res.Set, res.Way)
	for e := 0; e < 8; e++ {
		if n := countAll(p, e%4); n != 0 {
			t.Fatalf("invalidated line got refreshed at event %d", e)
		}
	}
	if p.TrackedLines() != 0 {
		t.Fatal("invalidated line still tracked")
	}
}

func TestTrackedMatchesValidProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		c := newL2(t)
		p, err := New(c, 4)
		if err != nil {
			return false
		}
		rng := xrand.New(seed)
		for i := 0; i < 300; i++ {
			switch rng.Intn(10) {
			case 0:
				c.SetActiveWays(rng.Intn(4), 1+rng.Intn(8))
			case 1:
				p.RefreshEvent(rng.Intn(4), rng.Intn(4))
			default:
				c.Access(cache.Addr(rng.Uint64n(64*64*16)), rng.Bool(0.3))
			}
		}
		return p.TrackedLines() == c.ValidLines()
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

// Integration: under an engine, Smart-Refresh must refresh strictly
// fewer lines than valid-only periodic refresh when lines are touched
// regularly, and exactly the valid lines per window when idle.
func TestSmartRefreshVsPeriodicValid(t *testing.T) {
	c := newL2(t)
	p, _ := New(c, 4)
	eng, err := edram.NewEngine(edram.Params{RetentionCycles: 1000, Banks: 4}, p)
	if err != nil {
		t.Fatal(err)
	}
	// 10 idle valid lines for 10 windows → ~1 refresh/line/window
	// (first window only decrements).
	for i := 0; i < 10; i++ {
		c.Access(cache.Addr(i*64), false)
	}
	eng.AdvanceTo(10_000)
	got := eng.TotalRefreshed()
	if got < 80 || got > 100 {
		t.Fatalf("idle refreshes = %d, want ~90 (one per line per window)", got)
	}
}

func BenchmarkRefreshEvent(b *testing.B) {
	c := cache.MustNew(cache.Params{
		Name: "L2", SizeBytes: 4 << 20, Assoc: 16, LineBytes: 64,
		Modules: 8, Banks: 4, SamplingRatio: 64,
	})
	p, err := New(c, 4)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	for i := 0; i < 100000; i++ {
		c.Access(cache.Addr(rng.Uint64()%(64<<20)), rng.Bool(0.3))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RefreshEvent(i%4, i%4)
	}
}
