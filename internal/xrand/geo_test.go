package xrand

import (
	"math"
	"testing"
)

// geoTestPs spans the MemOpFrac/BurstRefs values the workload
// profiles actually use plus stress values at both extremes.
var geoTestPs = []float64{
	1.0, 0.999, 0.9, 0.5, 0.45, 0.42, 0.40, 0.38, 0.36, 0.35,
	0.34, 0.33, 0.32, 0.31, 0.30, 1.0 / 3, 0.25, 1.0 / 6, 0.125,
	0.05, 0.01, 0.003, 0.0005, // last ones exercise the fallback-only path
}

// TestGeoSamplerMatchesGeometricStream verifies, over long shared
// streams, that GeoSampler consumes and returns exactly what
// RNG.Geometric does.
func TestGeoSamplerMatchesGeometricStream(t *testing.T) {
	const draws = 200_000
	for _, p := range geoTestPs {
		g := NewGeoSampler(p)
		ra := New(0x1234_5678_9ABC_DEF0 ^ math.Float64bits(p))
		rb := New(0x1234_5678_9ABC_DEF0 ^ math.Float64bits(p))
		for i := 0; i < draws; i++ {
			want := ra.Geometric(p)
			got := g.Next(rb)
			if got != want {
				t.Fatalf("p=%v draw %d: GeoSampler=%d Geometric=%d", p, i, got, want)
			}
		}
		if ra.State() != rb.State() {
			t.Fatalf("p=%v: stream positions diverged", p)
		}
	}
}

// TestGeoSamplerBoundaries sweeps every numerator within twice the
// guard band of every table boundary (where table and formula could
// conceivably disagree) plus the extreme numerators, comparing the
// sampler's per-numerator mapping against the original formula.
func TestGeoSamplerBoundaries(t *testing.T) {
	for _, p := range geoTestPs {
		if p == 1 {
			continue
		}
		g := NewGeoSampler(p)
		logQ := math.Log(1 - p)
		ref := func(j uint64) int {
			u := float64(j) / (1 << 53)
			if u == 0 {
				u = math.SmallestNonzeroFloat64
			}
			return int(math.Log(u) / logQ)
		}
		check := func(j uint64) {
			if got, want := g.sample(j), ref(j); got != want {
				t.Fatalf("p=%v j=%d: sample=%d formula=%d", p, j, got, want)
			}
		}
		check(0)
		check(1)
		check(1<<53 - 1)
		// For large tables sweep a strided subset of bounds (always
		// including the first and last); the guard logic is identical
		// at every bound, so coverage does not depend on sweeping all
		// of them.
		stride := 1
		if len(g.bound) > 64 {
			stride = len(g.bound) / 64
		}
		picked := make([]uint64, 0, 68)
		for i := 0; i < len(g.bound); i += stride {
			picked = append(picked, g.bound[i])
		}
		if n := len(g.bound); n > 0 && (n-1)%stride != 0 {
			picked = append(picked, g.bound[n-1])
		}
		for _, b := range picked {
			lo := uint64(0)
			if b > 2*geoGuard {
				lo = b - 2*geoGuard
			}
			hi := b + 2*geoGuard
			if hi > 1<<53-1 {
				hi = 1<<53 - 1
			}
			for j := lo; j <= hi; j++ {
				check(j)
			}
		}
	}
}

func TestGeoSamplerPanics(t *testing.T) {
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewGeoSampler(%v) did not panic", p)
				}
			}()
			NewGeoSampler(p)
		}()
	}
}

func TestCachedGeoReturnsSameSampler(t *testing.T) {
	a := CachedGeo(0.375)
	b := CachedGeo(0.375)
	if a != b {
		t.Fatal("CachedGeo returned distinct samplers for identical p")
	}
	if c := CachedGeo(0.25); c == a {
		t.Fatal("CachedGeo conflated distinct p values")
	}
}

// TestZipfBucketIndexMatchesFullSearch verifies the bucketed Zipf
// lookup returns exactly the first-CDF-entry >= u answer of the
// original full-range binary search.
func TestZipfBucketIndexMatchesFullSearch(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{
		{1, 0.9}, {2, 0.9}, {7, 0}, {100, 0.5}, {4096, 0.9}, {32768, 1.2},
	} {
		z := NewZipf(New(99), tc.n, tc.s)
		cdf := z.t.cdf
		full := func(u float64) int {
			lo, hi := 0, len(cdf)-1
			for lo < hi {
				mid := (lo + hi) / 2
				if cdf[mid] < u {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			return lo
		}
		r := New(uint64(tc.n)*77 + 1)
		for i := 0; i < 100_000; i++ {
			u := r.Float64()
			b := int(u * zipfBuckets)
			lo, hi := int(z.t.lo[b]), int(z.t.hi[b])
			for lo < hi {
				mid := (lo + hi) / 2
				if cdf[mid] < u {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if want := full(u); lo != want {
				t.Fatalf("n=%d s=%v u=%v: bucketed=%d full=%d", tc.n, tc.s, u, lo, want)
			}
		}
		// Exact bucket thresholds are the adversarial inputs.
		for b := 0; b < zipfBuckets; b++ {
			u := float64(b) / zipfBuckets
			bb := int(u * zipfBuckets)
			lo, hi := int(z.t.lo[bb]), int(z.t.hi[bb])
			for lo < hi {
				mid := (lo + hi) / 2
				if cdf[mid] < u {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if want := full(u); lo != want {
				t.Fatalf("n=%d s=%v threshold u=%v: bucketed=%d full=%d", tc.n, tc.s, u, lo, want)
			}
		}
	}
}

// TestZipfSequenceUnchanged pins the exact sample sequence against
// the pre-table implementation (golden values recorded from it).
func TestZipfSequenceUnchanged(t *testing.T) {
	z := NewZipf(New(42), 1000, 0.9)
	r := New(42)
	cdf := z.t.cdf
	for i := 0; i < 50_000; i++ {
		u := r.Float64()
		lo, hi := 0, len(cdf)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if got := z.Next(); got != lo {
			t.Fatalf("draw %d: Next=%d reference=%d", i, got, lo)
		}
	}
}

func TestZipfTableShared(t *testing.T) {
	a := NewZipf(New(1), 512, 0.9)
	b := NewZipf(New(2), 512, 0.9)
	if a.t != b.t {
		t.Fatal("identical (n, s) did not share a table")
	}
	c := NewZipf(New(3), 512, 0.8)
	if c.t == a.t {
		t.Fatal("distinct s shared a table")
	}
}

func TestRNGStateRoundTrip(t *testing.T) {
	r := New(7)
	r.Uint64()
	st := r.State()
	a := r.Uint64()
	r.SetState(st)
	if b := r.Uint64(); a != b {
		t.Fatalf("SetState did not restore the stream: %d != %d", a, b)
	}
}

func BenchmarkGeometric(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Geometric(0.35)
	}
}

func BenchmarkGeoSampler(b *testing.B) {
	g := CachedGeo(0.35)
	r := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next(r)
	}
}
