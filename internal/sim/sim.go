// Package sim assembles the full simulated system of the ESTEEM paper
// (Section 6.1) and drives it: one or more cores executing synthetic
// benchmarks through private L1 data caches, a shared eDRAM L2 with a
// banked refresh engine, and a bandwidth-limited main memory. It
// implements the paper's measurement protocol (fast-forward, fixed
// measured instruction budget per core, early finishers keep running)
// and its interval machinery (the ESTEEM controller runs every
// IntervalCycles; energy is accounted per interval with Equations
// 2–8).
//
// Simulated defaults mirror the paper: 2 GHz cores; 32 KB 4-way L1;
// 16-way L2 of 4 MB (single-core, 8 modules, 10 GB/s memory) or 8 MB
// (dual-core, 16 modules, 15 GB/s); 12-cycle L2, 220-cycle memory;
// 4 L2 banks with pipelined 1-line/cycle refresh; 50 µs retention.
// Instruction budgets and the interval length are scaled down ~10–20x
// from the paper's 400M/10M-cycle runs so the full evaluation fits in
// CI; every knob is a Config field (see EXPERIMENTS.md).
package sim

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/edram"
	"repro/internal/energy"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/refrint"
	"repro/internal/retention"
	"repro/internal/smartref"
	"repro/internal/tech"
	"repro/internal/trace"
	"repro/internal/tracez"
)

// Technique selects the refresh/energy-management scheme under test.
type Technique int

const (
	// Baseline periodically refreshes every line frame (the paper's
	// reference point).
	Baseline Technique = iota
	// RPV is Refrint polyphase-valid (the paper's comparison
	// technique).
	RPV
	// RPD is Refrint polyphase-dirty (ablation; excluded from the
	// paper's headline results).
	RPD
	// PeriodicValid refreshes valid lines each window (ablation).
	PeriodicValid
	// Esteem is the paper's technique: module-wise selective-way
	// reconfiguration plus valid-only refresh.
	Esteem
	// EsteemAllLineRefresh is an ablation of ESTEEM that refreshes
	// every frame of the active portion, isolating the contribution
	// of valid-only refresh.
	EsteemAllLineRefresh
	// NoRefresh never refreshes (unrealizable lower bound, ablation).
	NoRefresh
	// SmartRefresh is Ghosh & Lee's Smart-Refresh (MICRO'07), cited
	// in the paper's related work: per-line counters skip engine
	// refreshes for recently touched lines entirely.
	SmartRefresh
	// ECCExtended models ECC-based refresh-period extension
	// (Wilkerson et al., cited in related work): the retention period
	// is multiplied by ECCRetentionFactor and every L2 access pays an
	// ECCDynOverheadFrac dynamic-energy surcharge for decode.
	ECCExtended

	maxTechnique = ECCExtended
)

// String names the technique.
func (t Technique) String() string {
	switch t {
	case Baseline:
		return "baseline"
	case RPV:
		return "rpv"
	case RPD:
		return "rpd"
	case PeriodicValid:
		return "periodic-valid"
	case Esteem:
		return "esteem"
	case EsteemAllLineRefresh:
		return "esteem-allline"
	case NoRefresh:
		return "no-refresh"
	case SmartRefresh:
		return "smart-refresh"
	case ECCExtended:
		return "ecc-extended"
	default:
		return fmt.Sprintf("technique(%d)", int(t))
	}
}

// Config describes one simulation run.
type Config struct {
	Cores     int
	Technique Technique

	// Technology selects the LLC storage technology backend from the
	// internal/tech registry ("edram", "sttram", "sttram-relaxed",
	// "reram"); empty means eDRAM, the pre-interface default.
	Technology string

	// L1 (private, per core).
	L1SizeBytes int
	L1Assoc     int

	// L2 (shared).
	L2SizeBytes     int
	L2Assoc         int
	L2LatencyCycles uint64
	LineBytes       int
	Banks           int

	// eDRAM. RetentionMicros sets the retention period directly;
	// alternatively TemperatureC > 0 derives it from the paper's
	// exponential temperature model (40 µs @ 105 °C, 50 µs @ 60 °C),
	// and RetentionSigma > 0 additionally derates it for log-normal
	// per-line process variation (the weakest of the L2's lines
	// bounds the refresh period).
	RetentionMicros float64
	TemperatureC    float64
	RetentionSigma  float64

	// Main memory.
	MemLatencyCycles        uint64
	MemBandwidthBytesPerSec float64
	// WriteBufferEntries bounds in-flight writebacks (0 = unbounded).
	WriteBufferEntries int

	// Clock.
	FreqHz float64

	// ESTEEM parameters.
	IntervalCycles uint64
	Modules        int
	SamplingRatio  int
	Esteem         core.Config

	// Refrint parameters.
	RefrintPhases int

	// Smart-Refresh parameters (technique SmartRefresh): counter
	// range in sub-periods per retention window; 0 means 4.
	SmartRefreshPeriods int

	// ECC-extension parameters (technique ECCExtended): retention
	// multiplier (0 means 4) and per-access dynamic-energy surcharge
	// (0 means 0.10).
	ECCRetentionFactor float64
	ECCDynOverheadFrac float64

	// Run lengths (per core).
	WarmupInstr  uint64
	MeasureInstr uint64

	// Seed drives workload generation.
	Seed uint64

	// LogIntervals records per-interval state (Fig. 2).
	LogIntervals bool
}

// DefaultConfig returns the paper's system configuration for the
// given core count, with run lengths scaled for tractability.
func DefaultConfig(cores int) Config {
	cfg := Config{
		Cores:              cores,
		Technique:          Esteem,
		L1SizeBytes:        32 << 10,
		L1Assoc:            4,
		L2Assoc:            16,
		L2LatencyCycles:    12,
		LineBytes:          64,
		Banks:              4,
		RetentionMicros:    50,
		MemLatencyCycles:   220,
		FreqHz:             2e9,
		WriteBufferEntries: 16,
		IntervalCycles:     2_000_000, // paper: 10M; scaled 5x
		SamplingRatio:      64,
		Esteem:             core.DefaultConfig(),
		RefrintPhases:      4,
		WarmupInstr:        10_000_000, // paper: 10B fast-forward
		MeasureInstr:       20_000_000, // paper: 400M
		Seed:               1,
	}
	switch {
	case cores <= 1:
		cfg.L2SizeBytes = 4 << 20
		cfg.MemBandwidthBytesPerSec = 10e9
		cfg.Modules = 8
	case cores == 2:
		cfg.L2SizeBytes = 8 << 20
		cfg.MemBandwidthBytesPerSec = 15e9
		cfg.Modules = 16
	default:
		// Scalability extension beyond the paper's 1-2 cores: keep
		// the paper's 4 MB-per-core LLC scaling and grow bandwidth
		// by 5 GB/s per extra core.
		cfg.L2SizeBytes = cores * (4 << 20)
		cfg.MemBandwidthBytesPerSec = float64(10+5*(cores-1)) * 1e9
		cfg.Modules = 8 * cores
	}
	return cfg
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("sim: cores must be >= 1")
	}
	if c.MeasureInstr == 0 {
		return fmt.Errorf("sim: MeasureInstr must be positive")
	}
	if c.IntervalCycles == 0 {
		return fmt.Errorf("sim: IntervalCycles must be positive")
	}
	if c.RetentionMicros <= 0 && c.TemperatureC <= 0 {
		return fmt.Errorf("sim: retention must be positive (or set TemperatureC)")
	}
	if c.RetentionSigma < 0 {
		return fmt.Errorf("sim: negative retention sigma")
	}
	if c.FreqHz <= 0 {
		return fmt.Errorf("sim: frequency must be positive")
	}
	if c.Technique < Baseline || c.Technique > maxTechnique {
		return fmt.Errorf("sim: unknown technique %d", int(c.Technique))
	}
	if c.ECCRetentionFactor < 0 || c.ECCDynOverheadFrac < 0 {
		return fmt.Errorf("sim: negative ECC parameters")
	}
	tec, err := tech.New(c.Technology)
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if !tec.Props().HasRefresh && !techniqueAllowedWithoutRefresh(c.Technique) {
		return fmt.Errorf("sim: technique %v needs a refresh clock, which technology %s does not have", c.Technique, tec.Name())
	}
	return nil
}

// techniqueAllowedWithoutRefresh reports whether a technique is
// meaningful on a non-volatile technology: refresh-scheduling
// techniques (Refrint, Smart-Refresh, periodic/valid-only ablations,
// ECC retention extension) manage a clock that does not exist there,
// so only the refresh-free techniques remain. ESTEEM itself stays
// available: its selective-way reconfiguration attacks leakage, which
// every technology has.
func techniqueAllowedWithoutRefresh(t Technique) bool {
	switch t {
	case Baseline, NoRefresh, Esteem, EsteemAllLineRefresh:
		return true
	default:
		return false
	}
}

// CoreResult reports one core's measured execution.
type CoreResult struct {
	Benchmark    string
	Instructions uint64
	Cycles       uint64
	IPC          float64
	// Stall breakdown over the whole run (including any post-window
	// execution).
	StallL2Hit, StallRefresh, StallMemory uint64
	L1Hits, L1Misses                      uint64
}

// IntervalRecord captures one interval for Fig. 2-style plots.
type IntervalRecord struct {
	// EndCycle is the frontier cycle at which the interval closed.
	EndCycle uint64
	// ActiveRatio is F_A during the interval.
	ActiveRatio float64
	// ActiveWays is the per-module configuration chosen *for the
	// next* interval (nil for non-ESTEEM techniques).
	ActiveWays []int
	// Activity is the measured activity of the interval.
	Activity energy.Activity
}

// Result is the outcome of one simulation run.
type Result struct {
	Config    Config
	Technique Technique
	Cores     []CoreResult

	// Activity aggregates the measured run (cycle count is wall
	// time: the frontier advance from measurement start to finish).
	Activity energy.Activity
	// Energy is the paper's Equations 2–8 evaluated over Activity.
	Energy energy.Breakdown
	// Model holds the constants used.
	Model energy.Model

	// L2 and MM are the measured traffic counters.
	L2 cache.Counters
	MM mem.Counters
	// Refreshes is N_R over the measured run.
	Refreshes uint64
	// ActiveRatio is the time-averaged F_A.
	ActiveRatio float64
	// RefreshStallCycles sums refresh-induced stalls across cores.
	RefreshStallCycles uint64
	// Intervals is the per-interval log (only with LogIntervals).
	Intervals []IntervalRecord
	// ReconfigWritebacks counts dirty lines flushed by ESTEEM
	// reconfigurations.
	ReconfigWritebacks uint64
	// Wear summarises per-line write endurance; nil unless the
	// technology tracks wear (ReRAM).
	Wear *WearStats
}

// WearStats summarises the per-frame write-wear counters of an
// endurance-tracked LLC at the end of a run.
type WearStats struct {
	// MaxWear/MinWear/MeanWear describe the per-frame write
	// distribution over every frame of the L2.
	MaxWear  uint64
	MinWear  uint64
	MeanWear float64
	// TotalWrites is the total writes charged to frames (write hits
	// plus fills, since construction).
	TotalWrites uint64
	// LevelSwaps counts intra-set wear-levelling remaps performed.
	LevelSwaps uint64
	// Histogram is a log2 bucketing of frame wear: bucket 0 counts
	// untouched frames and bucket i counts frames with wear in
	// [2^(i-1), 2^i).
	Histogram []uint64
	// EnduranceWrites is the technology's per-line write budget, for
	// judging MaxWear.
	EnduranceWrites uint64
}

// wearStatsFrom builds the endurance summary from raw frame counters.
func wearStatsFrom(wear []uint64, swaps, endurance uint64) *WearStats {
	ws := &WearStats{MinWear: ^uint64(0), LevelSwaps: swaps, EnduranceWrites: endurance}
	var maxBucket int
	for _, w := range wear {
		ws.TotalWrites += w
		if w > ws.MaxWear {
			ws.MaxWear = w
		}
		if w < ws.MinWear {
			ws.MinWear = w
		}
		if b := bits.Len64(w); b > maxBucket {
			maxBucket = b
		}
	}
	if len(wear) == 0 {
		ws.MinWear = 0
		return ws
	}
	ws.MeanWear = float64(ws.TotalWrites) / float64(len(wear))
	ws.Histogram = make([]uint64, maxBucket+1)
	for _, w := range wear {
		ws.Histogram[bits.Len64(w)]++
	}
	return ws
}

// TotalInstructions sums the measured instructions of all cores.
func (r *Result) TotalInstructions() uint64 {
	var n uint64
	for _, c := range r.Cores {
		n += c.Instructions
	}
	return n
}

// MPKI returns L2 misses per kilo-instruction over the measured run.
func (r *Result) MPKI() float64 {
	ti := r.TotalInstructions()
	if ti == 0 {
		return 0
	}
	return float64(r.L2.Misses) * 1000 / float64(ti)
}

// RPKI returns refreshes per kilo-instruction over the measured run.
func (r *Result) RPKI() float64 {
	ti := r.TotalInstructions()
	if ti == 0 {
		return 0
	}
	return float64(r.Refreshes) * 1000 / float64(ti)
}

// Simulator holds one assembled system.
type Simulator struct {
	cfg        Config
	benchNames []string
	cores      []*cpu.Core
	// srcs holds the per-core workload sources as supplied (before the
	// address-offset wrapping), so checkpointing can reach their state.
	srcs []trace.Source
	// effMemLat[i] is core i's exposed miss latency: the fixed memory
	// latency divided by the benchmark's MLP factor (DESIGN.md —
	// out-of-order overlap abstraction).
	effMemLat []uint64
	l1        []*cache.Cache
	l2        *cache.Cache
	clk       *edram.Clock
	eng       *edram.Engine
	mm        *mem.Memory
	ctl       *core.Controller // nil unless Technique == Esteem*
	rpd       *refrint.RPD     // nil unless Technique == RPD

	// order is a binary min-heap of core indices keyed by
	// (clock, index): order[0] is always the next core to step and the
	// frontier. Only the stepped core's clock changes per step, so one
	// sift-down keeps the heap valid — replacing the O(cores) scans of
	// pickCore/frontier while preserving the lowest-index tie-break.
	order []int32

	measuring     bool
	lastBoundary  uint64
	nextBoundary  uint64
	totalActivity energy.Activity
	l2Measured    cache.Counters
	mmMeasured    mem.Counters
	intervals     []IntervalRecord
	reconfigWB    uint64

	// measuredBoundaries counts interval boundaries processed while
	// measuring; it is the checkpoint sequence number (0 = the
	// warmup/measurement seam).
	measuredBoundaries int
	// ckptHook, when non-nil, fires at the measurement seam and after
	// every measured interval boundary; the hook decides whether to
	// call Checkpoint.
	ckptHook func(CheckpointInfo)

	// model is the energy model for this configuration, built at
	// construction so per-interval telemetry can evaluate it.
	model energy.Model
	// obsv, when non-nil, receives one obs.Interval per boundary
	// (warmup included, flagged). Attaching an observer must not
	// change the simulation: observers only read counters the run
	// already maintains (asserted by TestObserverDoesNotPerturb).
	obsv   obs.Observer
	obsIdx int

	// tspan, when non-nil, is the parent span under which the run
	// records wall-clock phase spans (warmup, measurement, each
	// interval batch, refresh-window rollovers, energy finalization).
	// Same discipline as obsv and the `verify` tag: a nil span is the
	// default and costs one pointer check per boundary — nothing on
	// the per-reference hot path, and zero allocations.
	tspan     *tracez.Span
	phaseSpan *tracez.Span // current phase ("warmup" or "measure")
	ivalSpan  *tracez.Span // currently open interval batch
	retCycles uint64       // retention period (refresh-window length)
	windowIdx uint64       // last refresh window crossed (traced runs)

	// inv carries the state of the runtime self-checks compiled in
	// under the `verify` build tag; in default builds it is an empty
	// struct and every check site is dead code (invariantsEnabled is a
	// false constant).
	inv invariantState
}

// New assembles a simulator for the given benchmarks (one per core).
func New(cfg Config, benchmarks []string) (*Simulator, error) {
	if cfg.Cores >= 1 && len(benchmarks) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d benchmarks for %d cores", len(benchmarks), cfg.Cores)
	}
	sources := make([]trace.Source, len(benchmarks))
	for i, name := range benchmarks {
		prof, ok := trace.ProfileByName(name)
		if !ok {
			return nil, fmt.Errorf("sim: unknown benchmark %q", name)
		}
		gen, err := trace.NewGenerator(prof, cfg.Seed+uint64(i)*0x9E3779B9)
		if err != nil {
			return nil, err
		}
		sources[i] = gen
	}
	return NewFromSources(cfg, sources)
}

// NewFromSources assembles a simulator over arbitrary workload
// sources (one per core) — synthetic generators, trace replayers, or
// user-supplied implementations of trace.Source.
func NewFromSources(cfg Config, sources []trace.Source) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(sources) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d sources for %d cores", len(sources), cfg.Cores)
	}
	// Store the canonical technology name so results, checkpoints and
	// content-addressed keys derived from the config spell the default
	// backend one way ("" and "edram" are the same simulation).
	cfg.Technology = tech.CanonicalName(cfg.Technology)
	tec, err := tech.New(cfg.Technology)
	if err != nil {
		return nil, err
	}
	props := tec.Props()

	s := &Simulator{cfg: cfg, clk: &edram.Clock{}, srcs: sources}

	// Cores over their workload sources. Each core's program runs in
	// its own address space: a per-core offset keeps multiprogrammed
	// workloads from aliasing in the shared L2 (they are separate
	// processes in the paper's methodology).
	for i, src := range sources {
		if src == nil {
			return nil, fmt.Errorf("sim: nil source for core %d", i)
		}
		s.benchNames = append(s.benchNames, src.Name())
		if i > 0 {
			src = &offsetSource{Source: src, offset: uint64(i) << 44}
		}
		s.cores = append(s.cores, cpu.New(i, src))
		mlp := src.MLPFactor()
		if mlp < 1 {
			mlp = 1
		}
		eff := uint64(float64(cfg.MemLatencyCycles) / mlp)
		if eff == 0 {
			eff = 1
		}
		s.effMemLat = append(s.effMemLat, eff)
		l1, err := cache.New(cache.Params{
			Name: fmt.Sprintf("L1D%d", i), SizeBytes: cfg.L1SizeBytes,
			Assoc: cfg.L1Assoc, LineBytes: cfg.LineBytes,
			Latency: 2, Modules: 1, Banks: 1,
		})
		if err != nil {
			return nil, err
		}
		s.l1 = append(s.l1, l1)
	}

	// Shared L2. Only ESTEEM needs leader sets; other techniques use
	// the full cache uniformly.
	sampling := 0
	if cfg.Technique == Esteem || cfg.Technique == EsteemAllLineRefresh {
		sampling = cfg.SamplingRatio
	}
	modules := cfg.Modules
	if modules == 0 {
		modules = 1
	}
	l2, err := cache.New(cache.Params{
		Name: "L2", SizeBytes: cfg.L2SizeBytes, Assoc: cfg.L2Assoc,
		LineBytes: cfg.LineBytes, Latency: int(cfg.L2LatencyCycles),
		Modules: modules, SamplingRatio: sampling, Banks: cfg.Banks,
		TrackWear: props.TrackWear, WearLevelPeriod: props.WearLevelPeriod,
	})
	if err != nil {
		return nil, err
	}
	s.l2 = l2

	// Refresh policy and engine.
	retMicros := cfg.RetentionMicros
	if cfg.TemperatureC > 0 {
		retMicros = retention.Micros(cfg.TemperatureC)
	}
	if cfg.Technique == ECCExtended {
		factor := cfg.ECCRetentionFactor
		if factor == 0 {
			factor = 4
		}
		retMicros *= factor
	}
	if cfg.RetentionSigma > 0 {
		d, err := retention.DeratedMicros(retention.NominalTempC, retention.Variation{Sigma: cfg.RetentionSigma}, l2.TotalLines())
		if err != nil {
			return nil, err
		}
		// Apply the derating ratio to whichever nominal retention is
		// in effect.
		retMicros *= d / retention.NominalRetentionMicros
	}
	if props.HasRefresh {
		// The technology's refresh/scrub period scales the eDRAM
		// retention (×1 for eDRAM itself — exact in floating point).
		retMicros *= props.RetentionScale
	}
	retentionCycles := edram.RetentionCyclesFor(retMicros, cfg.FreqHz/1e9)
	var policy edram.Policy
	switch {
	case !props.HasRefresh:
		// Non-volatile technology: no refresh clock exists, so every
		// allowed technique runs with the no-op policy. The engine
		// stays assembled (firing zero events) so interval accounting
		// and checkpoints keep one shape across technologies.
		policy = edram.None{}
	case cfg.Technique == Baseline:
		policy = edram.NewRefreshAll(l2)
	case cfg.Technique == RPV:
		rpv, err := refrint.NewRPV(l2, s.clk, cfg.RefrintPhases, retentionCycles)
		if err != nil {
			return nil, err
		}
		policy = rpv
	case cfg.Technique == RPD:
		rpd, err := refrint.NewRPD(l2, s.clk, cfg.RefrintPhases, retentionCycles)
		if err != nil {
			return nil, err
		}
		s.rpd = rpd
		policy = rpd
	case cfg.Technique == PeriodicValid:
		policy = refrint.NewPeriodicValid(l2)
	case cfg.Technique == Esteem:
		policy = edram.NewValidOnly(l2)
	case cfg.Technique == EsteemAllLineRefresh:
		policy = edram.NewRefreshAll(l2)
	case cfg.Technique == NoRefresh:
		policy = edram.None{}
	case cfg.Technique == SmartRefresh:
		periods := cfg.SmartRefreshPeriods
		if periods == 0 {
			periods = 4
		}
		sr, err := smartref.New(l2, periods)
		if err != nil {
			return nil, err
		}
		policy = sr
	case cfg.Technique == ECCExtended:
		// Wilkerson-style: periodic refresh of every frame, at the
		// ECC-extended period.
		policy = edram.NewRefreshAll(l2)
	}
	eng, err := edram.NewEngine(edram.Params{RetentionCycles: retentionCycles, Banks: cfg.Banks}, policy)
	if err != nil {
		return nil, err
	}
	s.eng = eng
	s.retCycles = retentionCycles

	// Main memory.
	m, err := mem.New(mem.Params{
		LatencyCycles:        cfg.MemLatencyCycles,
		BandwidthBytesPerSec: cfg.MemBandwidthBytesPerSec,
		FreqHz:               cfg.FreqHz,
		LineBytes:            cfg.LineBytes,
		WriteBufferEntries:   cfg.WriteBufferEntries,
	})
	if err != nil {
		return nil, err
	}
	s.mm = m

	// ESTEEM controller.
	if cfg.Technique == Esteem || cfg.Technique == EsteemAllLineRefresh {
		ctl, err := core.NewController(l2, cfg.Esteem)
		if err != nil {
			return nil, err
		}
		s.ctl = ctl
	}

	// Energy model (Equations 2–8 constants). Built here rather than
	// at result time so interval telemetry can evaluate energy as the
	// run progresses.
	model, err := buildModel(cfg)
	if err != nil {
		return nil, err
	}
	s.model = model

	// All clocks start at zero and indices ascend, so the identity
	// permutation is already a valid (clock, index) min-heap.
	s.order = make([]int32, len(s.cores))
	for i := range s.order {
		s.order[i] = int32(i)
	}

	return s, nil
}

// buildModel evaluates the energy-model constants for cfg, including
// the ECC dynamic-energy surcharge when that technique is selected.
func buildModel(cfg Config) (energy.Model, error) {
	model, err := energy.NewModel(cfg.L2SizeBytes, cfg.FreqHz)
	if err != nil {
		return energy.Model{}, err
	}
	if cfg.Technique == ECCExtended {
		// ECC decode costs extra dynamic energy on every access and
		// refresh.
		frac := cfg.ECCDynOverheadFrac
		if frac == 0 {
			frac = 0.10
		}
		model.L2DynJ *= 1 + frac
	}
	tec, err := tech.New(cfg.Technology)
	if err != nil {
		return energy.Model{}, err
	}
	p := tec.Props()
	model = model.WithTechnology(p.ReadFactor, p.WriteFactor, p.RefreshFactor, p.LeakFactor)
	return model, nil
}

// SetObserver attaches a telemetry observer that receives one
// obs.Interval per interval boundary (warmup intervals are flagged
// Measuring=false). Call before Run. A nil observer disables
// telemetry; disabled telemetry has zero cost on the simulation hot
// path, and an attached observer never perturbs simulated behaviour.
func (s *Simulator) SetObserver(o obs.Observer) { s.obsv = o }

// SetTraceSpan attaches a parent tracing span: the run records child
// spans for warmup, measurement, every interval batch, refresh-window
// rollovers and energy finalization under it, attributing the run's
// wall-clock to simulated phases. Call before Run. A nil span (the
// default) disables tracing entirely; the disabled path adds no
// allocations and no per-reference work (asserted by
// TestTracingDisabledNoAllocs and the SimRunShort benchmark).
func (s *Simulator) SetTraceSpan(sp *tracez.Span) { s.tspan = sp }

// offsetSource relocates a workload's address space by a fixed
// offset (one distinct 16 TiB region per core).
type offsetSource struct {
	trace.Source
	offset uint64
}

// Next shifts every reference by the core's offset.
func (o *offsetSource) Next() trace.Ref {
	r := o.Source.Next()
	r.Addr += o.offset
	return r
}

// frontier returns the minimum core clock — the simulation's wall
// time. O(1): the heap root is the earliest core.
func (s *Simulator) frontier() uint64 {
	return s.cores[s.order[0]].Clock()
}

// coreLess orders core indices by (clock, index); the index tie-break
// matches the linear scan this heap replaced, so multi-core
// interleavings are unchanged.
func (s *Simulator) coreLess(a, b int32) bool {
	ca, cb := s.cores[a].Clock(), s.cores[b].Clock()
	return ca < cb || (ca == cb && a < b)
}

// fixFront restores the heap after the root core's clock advanced.
func (s *Simulator) fixFront() {
	o := s.order
	n := len(o)
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && s.coreLess(o[r], o[l]) {
			m = r
		}
		if !s.coreLess(o[m], o[i]) {
			return
		}
		o[i], o[m] = o[m], o[i]
		i = m
	}
}

// step executes one memory reference on the earliest core, charging
// all hierarchy latencies.
func (s *Simulator) step() {
	s.stepCore(s.cores[s.order[0]])
	s.fixFront()
	if invariantsEnabled {
		s.checkStepInvariants()
	}
}

// stepCore executes one memory reference on core c.
func (s *Simulator) stepCore(c *cpu.Core) {
	ref := c.NextRef()

	var r1 cache.AccessResult
	s.l1[c.ID()].AccessInto(cache.Addr(ref.Addr), ref.Write, &r1)
	if r1.Hit {
		return
	}

	// L1 miss: demand-read the line from L2 (allocate on miss; a
	// store dirties L1, and L2 becomes dirty only via L1 writebacks).
	// The engine clock is published here rather than before the L1
	// access: the only consumer of clk.Cycle on the access path is the
	// Refrint touch bookkeeping, which fires on L2 events only.
	now := c.Clock()
	s.clk.Cycle = now
	addr := cache.Addr(ref.Addr)
	bank := s.l2.BankOf(s.l2.SetIndex(addr))
	if d := s.eng.AccessDelay(bank, now); d > 0 {
		c.Stall(d, cpu.StallRefresh)
	}
	var r2 cache.AccessResult
	s.l2.AccessInto(addr, false, &r2)
	c.Stall(s.cfg.L2LatencyCycles, cpu.StallL2Hit)
	if !r2.Hit {
		lat := s.mm.Read(c.Clock())
		// The queue delay (lat minus the fixed latency) is real
		// bandwidth contention; the fixed latency is overlapped by
		// the benchmark's memory-level parallelism.
		stall := lat - s.cfg.MemLatencyCycles + s.effMemLat[c.ID()]
		c.Stall(stall, cpu.StallMemory)
		if r2.WritebackVictim {
			// A full write buffer back-pressures the core.
			if st := s.mm.Writeback(c.Clock()); st > 0 {
				c.Stall(st, cpu.StallMemory)
			}
		}
	}

	// The L1's dirty victim drains through the write-back buffers:
	// no core stall, but it updates (or bypasses) the L2 and counts
	// toward bandwidth and energy.
	if r1.WritebackVictim {
		va := r1.VictimAddr
		if s.l2.Probe(va) {
			s.l2.AccessInto(va, true, &r2)
			if !r2.Hit {
				// Probe/Access race cannot happen single-threaded;
				// defensive only.
				s.mm.Writeback(c.Clock())
			}
		} else {
			// Non-inclusive hierarchy: L1 victim absent from L2 goes
			// straight to memory.
			s.mm.Writeback(c.Clock())
		}
	}
}

// processBoundary closes the interval ending at the current frontier:
// snapshots activity, runs the ESTEEM controller, resets interval
// counters.
func (s *Simulator) processBoundary(frontier uint64) {
	s.eng.AdvanceTo(frontier)
	ic := s.l2.IntervalCounters()
	im := s.mm.IntervalCounters()
	// Telemetry-only snapshots, taken before the resets below wipe
	// them. Guarded so the disabled path does no extra work.
	var wbPeak int
	var engBusy uint64
	if s.obsv != nil {
		wbPeak = s.mm.IntervalWriteBufPeak()
		engBusy = s.eng.IntervalBusyCycles()
	}
	act := energy.Activity{
		Cycles:         frontier - s.lastBoundary,
		L2Hits:         ic.Hits,
		L2WriteHits:    ic.WriteHits,
		L2Misses:       ic.Misses,
		Refreshes:      s.eng.IntervalRefreshed(),
		ActiveFraction: s.l2.ActiveFraction(),
		MMAccesses:     im.Accesses(),
	}

	var waysSnapshot []int
	var reconfigWB int
	if s.ctl != nil {
		dec := s.ctl.EndInterval() // also resets L2 interval counters
		act.LinesTransitioned = uint64(dec.LinesTransitioned)
		// Dirty lines flushed by the shrink drain to memory now; they
		// are charged to the next interval's memory counters.
		for i := 0; i < dec.Writebacks; i++ {
			s.mm.Writeback(frontier)
		}
		reconfigWB = dec.Writebacks
		s.reconfigWB += uint64(dec.Writebacks)
		if s.cfg.LogIntervals || s.obsv != nil {
			waysSnapshot = append([]int(nil), dec.ActiveWays...)
		}
	} else {
		s.l2.ResetInterval()
	}
	s.eng.ResetInterval()
	s.mm.ResetInterval()

	if s.obsv != nil {
		var pstats obs.PolicyStats
		if pt, ok := s.eng.Policy().(edram.PolicyTelemetry); ok {
			pstats = pt.IntervalPolicyStats()
			pt.ResetPolicyStats()
		}
		s.obsv.ObserveInterval(obs.Interval{
			Index:                 s.obsIdx,
			Measuring:             s.measuring,
			EndCycle:              frontier,
			Cycles:                act.Cycles,
			ActiveRatio:           act.ActiveFraction,
			ActiveWays:            waysSnapshot,
			L2Hits:                ic.Hits,
			L2WriteHits:           ic.WriteHits,
			L2Misses:              ic.Misses,
			L2Writebacks:          ic.Writebacks,
			L2Fills:               ic.Fills,
			Refreshes:             act.Refreshes,
			BankBusyCycles:        engBusy,
			Policy:                pstats,
			MMReads:               im.Reads,
			MMWritebacks:          im.Writebacks,
			MMQueueStallCycles:    im.QueueStallCycles,
			MMWriteBufStallCycles: im.WriteBufferStallCycles,
			MMWriteBufPeak:        wbPeak,
			MMChannelBusyCycles:   float64(im.Accesses()) * s.mm.TransferCycles(),
			LinesTransitioned:     act.LinesTransitioned,
			ReconfigWritebacks:    uint64(reconfigWB),
			Energy:                EnergyRecord(s.model.Eval(act)),
		})
		s.obsIdx++
	}

	if s.measuring {
		s.totalActivity.Add(act)
		s.l2Measured.Hits += ic.Hits
		s.l2Measured.WriteHits += ic.WriteHits
		s.l2Measured.Misses += ic.Misses
		s.l2Measured.Writebacks += ic.Writebacks
		s.l2Measured.Fills += ic.Fills
		s.mmMeasured.Reads += im.Reads
		s.mmMeasured.Writebacks += im.Writebacks
		s.mmMeasured.QueueStallCycles += im.QueueStallCycles
		if s.cfg.LogIntervals {
			s.intervals = append(s.intervals, IntervalRecord{
				EndCycle:    frontier,
				ActiveRatio: act.ActiveFraction,
				ActiveWays:  waysSnapshot,
				Activity:    act,
			})
		}
	}
	if s.tspan != nil {
		s.traceBoundary(frontier, act)
	}
	s.lastBoundary = frontier
}

// traceBoundary closes the wall-clock span of the interval batch that
// just ended (annotated with its simulated counters), emits a
// refresh-window marker when the retention window rolled over, and
// opens the next interval span. Only called on traced runs.
func (s *Simulator) traceBoundary(frontier uint64, act energy.Activity) {
	if iv := s.ivalSpan; iv != nil {
		iv.SetAttrInt("end_cycle", int64(frontier))
		iv.SetAttrInt("sim_cycles", int64(act.Cycles))
		iv.SetAttrInt("refreshes", int64(act.Refreshes))
		iv.SetAttrFloat("active_ratio", act.ActiveFraction)
		if !s.measuring {
			iv.SetAttr("warmup", "true")
		}
		iv.End()
	}
	if s.retCycles > 0 {
		if w := frontier / s.retCycles; w > s.windowIdx {
			rw := s.phaseSpan.Child("refresh-window")
			rw.SetAttrInt("window", int64(w))
			rw.SetAttrInt("windows_completed", int64(w-s.windowIdx))
			rw.SetAttrInt("end_cycle", int64(frontier))
			rw.End()
			s.windowIdx = w
		}
	}
	s.ivalSpan = s.phaseSpan.Child("interval")
}

// boundary closes the interval ending at frontier f and schedules the
// next one. While measuring, it advances the checkpoint sequence and
// fires the checkpoint hook.
func (s *Simulator) boundary(f uint64) {
	if invariantsEnabled {
		s.checkBoundaryInvariants(f)
	}
	s.processBoundary(f)
	for s.nextBoundary <= f {
		s.nextBoundary += s.cfg.IntervalCycles
	}
	if s.measuring {
		s.measuredBoundaries++
		if s.ckptHook != nil {
			s.ckptHook(s.checkpointInfo())
		}
	}
}

// runWarmup runs every core to its warmup budget. Interval machinery
// runs (so ESTEEM enters the run adapted) but nothing is recorded.
func (s *Simulator) runWarmup() {
	s.nextBoundary = s.cfg.IntervalCycles
	if s.tspan != nil {
		s.phaseSpan = s.tspan.Child("warmup")
		s.ivalSpan = s.phaseSpan.Child("interval")
	}
	if len(s.cores) == 1 && !invariantsEnabled {
		// Single-core fast path: the frontier is the core's clock and
		// the scheduling heap is a fixed point, so the per-step heap
		// maintenance and completion bookkeeping drop out entirely.
		c := s.cores[0]
		for c.Instructions() < s.cfg.WarmupInstr {
			s.stepCore(c)
			if c.Clock() >= s.nextBoundary {
				s.boundary(c.Clock())
			}
		}
		return
	}
	// Track per-core completion incrementally: only the stepped core's
	// instruction count changes, so the all-cores rescan per step is
	// replaced by one check of the core that just ran.
	warm := make([]bool, len(s.cores))
	pending := 0
	for i, c := range s.cores {
		if c.Instructions() >= s.cfg.WarmupInstr {
			warm[i] = true
		} else {
			pending++
		}
	}
	for pending > 0 {
		c := s.cores[s.order[0]]
		s.stepCore(c)
		s.fixFront()
		if invariantsEnabled {
			s.checkStepInvariants()
		}
		if !warm[c.ID()] && c.Instructions() >= s.cfg.WarmupInstr {
			warm[c.ID()] = true
			pending--
		}
		if f := s.frontier(); f >= s.nextBoundary {
			s.boundary(f)
		}
	}
}

// beginMeasurement crosses the warmup/measurement seam: clears
// interval state and opens every core's measurement window.
func (s *Simulator) beginMeasurement() {
	if s.tspan != nil {
		// The open interval span covers the partial batch cut short by
		// the warmup/measurement seam.
		s.ivalSpan.End()
		s.phaseSpan.End()
		s.phaseSpan = s.tspan.Child("measure")
		s.ivalSpan = s.phaseSpan.Child("interval")
	}
	f := s.frontier()
	s.eng.AdvanceTo(f)
	s.l2.ResetInterval()
	s.eng.ResetInterval()
	s.mm.ResetInterval()
	if s.obsv != nil {
		// Keep the policy's telemetry counters aligned with the other
		// interval counters across the warmup/measurement seam.
		if pt, ok := s.eng.Policy().(edram.PolicyTelemetry); ok {
			pt.ResetPolicyStats()
		}
	}
	s.lastBoundary = f
	s.nextBoundary = f + s.cfg.IntervalCycles
	s.measuring = true
	for _, c := range s.cores {
		c.BeginMeasurement(s.cfg.MeasureInstr)
	}
}

// runMeasured steps the system until every core has retired its
// measured budget, then flushes the final partial interval.
func (s *Simulator) runMeasured() {
	if len(s.cores) == 1 && !invariantsEnabled {
		c := s.cores[0]
		for !c.MeasurementDone() {
			s.stepCore(c)
			if c.Clock() >= s.nextBoundary {
				s.boundary(c.Clock())
			}
		}
	} else {
		finished := make([]bool, len(s.cores))
		pending := 0
		for i, c := range s.cores {
			if c.MeasurementDone() {
				finished[i] = true
			} else {
				pending++
			}
		}
		for pending > 0 {
			c := s.cores[s.order[0]]
			s.stepCore(c)
			s.fixFront()
			if invariantsEnabled {
				s.checkStepInvariants()
			}
			if !finished[c.ID()] && c.MeasurementDone() {
				finished[c.ID()] = true
				pending--
			}
			if fr := s.frontier(); fr >= s.nextBoundary {
				s.boundary(fr)
			}
		}
	}
	// Flush the final partial interval. No checkpoint fires here: this
	// flush happens at the run's own horizon, not at an interval
	// boundary a longer-horizon run would also process.
	if fr := s.frontier(); fr > s.lastBoundary {
		if invariantsEnabled {
			s.checkBoundaryInvariants(fr)
		}
		s.processBoundary(fr)
	}
	if s.tspan != nil {
		// The interval span reopened after the final boundary never
		// closes a batch; abandon it (unended spans are not recorded).
		s.ivalSpan = nil
		s.phaseSpan.End()
	}
}

// Run executes warmup plus measurement and returns the result.
func (s *Simulator) Run() (*Result, error) {
	s.runWarmup()
	s.beginMeasurement()
	if s.ckptHook != nil {
		// Sequence 0: the warmup/measurement seam. A seam checkpoint is
		// usable by any longer-horizon run of the same configuration.
		s.ckptHook(s.checkpointInfo())
	}
	s.runMeasured()
	if s.tspan != nil {
		fin := s.tspan.Child("energy-finalize")
		defer fin.End()
	}
	return s.buildResult()
}

// ResumeRun continues a simulation whose state was loaded with
// RestoreCheckpoint: it re-enters the measurement loop at the
// restored interval boundary and runs to this configuration's
// measured-instruction horizon. The result is byte-identical to a
// cold Run of the same configuration (asserted by the resume tests
// and the checkpoint fuzz target).
func (s *Simulator) ResumeRun() (*Result, error) {
	if !s.measuring {
		return nil, fmt.Errorf("sim: ResumeRun without a restored checkpoint")
	}
	if s.tspan != nil {
		s.phaseSpan = s.tspan.Child("measure-resumed")
		s.ivalSpan = s.phaseSpan.Child("interval")
	}
	s.runMeasured()
	if s.tspan != nil {
		fin := s.tspan.Child("energy-finalize")
		defer fin.End()
	}
	return s.buildResult()
}

// buildResult evaluates the energy model and packages the outcome.
func (s *Simulator) buildResult() (*Result, error) {
	model := s.model
	res := &Result{
		Config:             s.cfg,
		Technique:          s.cfg.Technique,
		Activity:           s.totalActivity,
		Model:              model,
		L2:                 s.l2Measured,
		MM:                 s.mmMeasured,
		Refreshes:          s.totalActivity.Refreshes,
		ActiveRatio:        s.totalActivity.ActiveFraction,
		Intervals:          s.intervals,
		ReconfigWritebacks: s.reconfigWB,
	}
	if wear := s.l2.WearCounters(); wear != nil {
		tec, err := tech.New(s.cfg.Technology)
		if err != nil {
			return nil, err
		}
		res.Wear = wearStatsFrom(wear, s.l2.WearLevelSwaps(), tec.Props().EnduranceWrites)
	}
	res.Energy = model.Eval(s.totalActivity)
	for i, c := range s.cores {
		res.Cores = append(res.Cores, CoreResult{
			Benchmark:    s.benchNames[i],
			Instructions: c.MeasuredInstructions(),
			Cycles:       c.MeasuredCycles(),
			IPC:          c.IPC(),
			StallL2Hit:   c.StallCycles(cpu.StallL2Hit),
			StallRefresh: c.StallCycles(cpu.StallRefresh),
			StallMemory:  c.StallCycles(cpu.StallMemory),
			L1Hits:       s.l1[i].TotalCounters().Hits,
			L1Misses:     s.l1[i].TotalCounters().Misses,
		})
		res.RefreshStallCycles += c.StallCycles(cpu.StallRefresh)
	}
	return res, nil
}

// Run is the package-level convenience: build and run in one call.
func Run(cfg Config, benchmarks []string) (*Result, error) {
	s, err := New(cfg, benchmarks)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// RunSources builds and runs over arbitrary workload sources.
func RunSources(cfg Config, sources []trace.Source) (*Result, error) {
	s, err := NewFromSources(cfg, sources)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// RunObserved is Run with a telemetry observer attached: o receives
// one obs.Interval per interval boundary while the run executes.
func RunObserved(cfg Config, benchmarks []string, o obs.Observer) (*Result, error) {
	s, err := New(cfg, benchmarks)
	if err != nil {
		return nil, err
	}
	s.SetObserver(o)
	return s.Run()
}

// RunSourcesObserved is RunSources with a telemetry observer.
func RunSourcesObserved(cfg Config, sources []trace.Source, o obs.Observer) (*Result, error) {
	s, err := NewFromSources(cfg, sources)
	if err != nil {
		return nil, err
	}
	s.SetObserver(o)
	return s.Run()
}

// EnergyRecord flattens an evaluated energy breakdown into the
// telemetry export form.
func EnergyRecord(b energy.Breakdown) obs.Energy {
	return obs.Energy{
		L2LeakJ:    b.L2Leak,
		L2DynJ:     b.L2Dyn,
		L2RefreshJ: b.L2Refresh,
		MMLeakJ:    b.MMLeak,
		MMDynJ:     b.MMDyn,
		AlgoJ:      b.Algo,
		TotalJ:     b.Total(),
	}
}
