package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/xrand"
)

// TestAlgorithmWorkedExample pins the worked example from Section 3.1
// of the paper: with per-position hits
// {10816, 4645, 2140, 501, 217, 113, 63, 11} (H = 18506),
// α = 0.97 requires X = 4 active ways and α = 0.95 requires X = 3.
func TestAlgorithmWorkedExample(t *testing.T) {
	hits := []uint64{10816, 4645, 2140, 501, 217, 113, 63, 11}
	if got := DecideModule(hits, Config{Alpha: 0.97, AMin: 1}); got != 4 {
		t.Fatalf("alpha=0.97: X = %d, want 4", got)
	}
	if got := DecideModule(hits, Config{Alpha: 0.95, AMin: 1}); got != 3 {
		t.Fatalf("alpha=0.95: X = %d, want 3", got)
	}
}

func TestAMinFloor(t *testing.T) {
	// Extremely concentrated hits: coverage reached at position 0,
	// but A_min must floor the decision.
	hits := []uint64{1000, 0, 0, 0, 0, 0, 0, 0}
	if got := DecideModule(hits, Config{Alpha: 0.97, AMin: 3}); got != 3 {
		t.Fatalf("X = %d, want A_min = 3", got)
	}
}

func TestZeroHitsGivesAMin(t *testing.T) {
	// A module with no hits at all (e.g. streaming) shrinks to A_min.
	hits := make([]uint64, 16)
	if got := DecideModule(hits, Config{Alpha: 0.97, AMin: 3}); got != 3 {
		t.Fatalf("X = %d, want 3", got)
	}
}

func TestIsNonLRU(t *testing.T) {
	cases := []struct {
		name string
		hits []uint64
		want bool
	}{
		{"monotone", []uint64{100, 50, 25, 12, 6, 3, 2, 1}, false},
		{"flat", []uint64{5, 5, 5, 5, 5, 5, 5, 5}, false}, // ties are not anomalies (strict <)
		// A/4 = 2 anomalies needed for A=8.
		{"one-anomaly", []uint64{100, 50, 60, 12, 6, 3, 2, 1}, false},
		{"two-anomalies", []uint64{100, 50, 60, 12, 20, 3, 2, 1}, true},
		{"increasing", []uint64{1, 2, 3, 4, 5, 6, 7, 8}, true},
		{"empty", nil, true}, // 0 anomalies >= 0/4: vacuously non-LRU; never occurs (A >= 1)
	}
	for _, c := range cases {
		if got := IsNonLRU(c.hits); got != c.want {
			t.Errorf("%s: IsNonLRU = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestNonLRUClampKeepsAMinusOne(t *testing.T) {
	// Strongly non-LRU pattern whose coverage point is early: the
	// clamp of Algorithm 1 line 22 must keep A-1 ways.
	hits := []uint64{100, 10, 90, 10, 80, 10, 70, 10}
	got := DecideModule(hits, Config{Alpha: 0.5, AMin: 2})
	if got != 7 {
		t.Fatalf("X = %d, want A-1 = 7", got)
	}
}

func TestAlphaOneKeepsThroughLastHit(t *testing.T) {
	// α = 1 requires covering all hits: the decision is the deepest
	// position with a hit.
	hits := []uint64{10, 5, 0, 2, 0, 0, 0, 0}
	got := DecideModule(hits, Config{Alpha: 1, AMin: 1})
	if got != 4 {
		t.Fatalf("X = %d, want 4 (deepest hit position +1)", got)
	}
}

func TestDecideModuleProperties(t *testing.T) {
	err := quick.Check(func(seed uint64, aminRaw, alphaRaw uint8) bool {
		rng := xrand.New(seed)
		a := 16
		hits := make([]uint64, a)
		for i := range hits {
			hits[i] = rng.Uint64n(10000)
		}
		amin := int(aminRaw%uint8(a)) + 1
		alpha := 0.5 + float64(alphaRaw%50)/100
		n := DecideModule(hits, Config{Alpha: alpha, AMin: amin})
		// Bounds.
		if n < 1 || n > a {
			return false
		}
		if IsNonLRU(hits) {
			// Non-LRU modules keep at least A-1 ways. (Algorithm 1
			// line 22 overwrites the A_min clamp, so A_min does not
			// apply here.)
			if n < a-1 {
				return false
			}
		} else if n < amin {
			// A_min floor holds for LRU-friendly modules.
			return false
		}
		// Coverage: the chosen prefix covers >= alpha of hits.
		var tot, acc uint64
		for _, h := range hits {
			tot += h
		}
		for i := 0; i < n; i++ {
			acc += hits[i]
		}
		return float64(acc) >= alpha*float64(tot)-1e-9
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDecideMonotonicInAlpha(t *testing.T) {
	// Raising α can never decrease the number of active ways.
	err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		hits := make([]uint64, 16)
		for i := range hits {
			hits[i] = rng.Uint64n(5000)
		}
		prev := 0
		for _, alpha := range []float64{0.5, 0.7, 0.9, 0.95, 0.97, 0.99, 1.0} {
			n := DecideModule(hits, Config{Alpha: alpha, AMin: 1})
			if n < prev {
				return false
			}
			prev = n
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Alpha: 0, AMin: 3},
		{Alpha: 1.5, AMin: 3},
		{Alpha: -0.5, AMin: 3},
		{Alpha: 0.97, AMin: 0},
		{Alpha: 0.97, AMin: 17},
	}
	for _, c := range bad {
		if c.Validate(16) == nil {
			t.Errorf("Config %+v: expected error", c)
		}
	}
	if err := DefaultConfig().Validate(16); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// TestOverheadEquation pins Equation (1) with the paper's example:
// a 4 MB cache (S=4096, A=16, B=512 bits, G=40 bits) with 16 modules
// has overhead ~0.06% of L2 capacity.
func TestOverheadEquation(t *testing.T) {
	got := OverheadPercent(4096, 16, 16, 512, 40)
	if math.Abs(got-0.06) > 0.005 {
		t.Fatalf("overhead = %v%%, want ~0.06%%", got)
	}
	if got >= 0.1 {
		t.Fatalf("overhead %v%% violates the paper's <0.1%% claim", got)
	}
}

func newTestCache(t *testing.T) *cache.Cache {
	t.Helper()
	// 64 sets, 8 ways, 4 modules, sampling 16 → 4 leader sets
	// (0, 16, 32, 48), one per module.
	return cache.MustNew(cache.Params{
		Name: "L2", SizeBytes: 64 * 8 * 64, Assoc: 8, LineBytes: 64,
		Modules: 4, Banks: 4, SamplingRatio: 16,
	})
}

func addrFor(set, tag, numSets int) cache.Addr {
	return cache.Addr(uint64(tag)*uint64(numSets)*64 + uint64(set)*64)
}

func TestNewControllerValidation(t *testing.T) {
	c := newTestCache(t)
	if _, err := NewController(c, Config{Alpha: 2, AMin: 3}); err == nil {
		t.Error("bad alpha accepted")
	}
	noLeaders := cache.MustNew(cache.Params{
		Name: "L2", SizeBytes: 64 * 8 * 64, Assoc: 8, LineBytes: 64,
		Modules: 4, Banks: 4,
	})
	if _, err := NewController(noLeaders, Config{Alpha: 0.97, AMin: 3}); err == nil {
		t.Error("cache without leader sets accepted")
	}
	if _, err := NewController(c, DefaultConfig()); err != nil {
		t.Errorf("valid controller rejected: %v", err)
	}
}

func TestEndIntervalShrinksIdleModules(t *testing.T) {
	c := newTestCache(t)
	ctl, err := NewController(c, Config{Alpha: 0.97, AMin: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Generate MRU-concentrated hits in leader set 0 (module 0):
	// repeatedly touch one line.
	c.Access(addrFor(0, 1, 64), false)
	for i := 0; i < 100; i++ {
		c.Access(addrFor(0, 1, 64), false)
	}
	d := ctl.EndInterval()
	if d.ActiveWays[0] != 2 {
		t.Fatalf("module 0 active ways = %d, want A_min = 2", d.ActiveWays[0])
	}
	// Modules with zero hits also shrink to A_min.
	for m := 1; m < 4; m++ {
		if d.ActiveWays[m] != 2 {
			t.Fatalf("idle module %d active ways = %d, want 2", m, d.ActiveWays[m])
		}
	}
	if c.ActiveWays(0) != 2 {
		t.Fatal("decision not applied to cache")
	}
}

func TestEndIntervalKeepsBusyModuleWide(t *testing.T) {
	c := newTestCache(t)
	ctl, err := NewController(c, Config{Alpha: 0.97, AMin: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Leader set 16 is in module 1 (sets 16-31). Cycle through 8
	// distinct tags twice so hits land across all 8 LRU positions...
	// Access pattern: fill 8 tags, then re-access in fill order: each
	// re-access hits at LRU position 7 (the oldest). That's an
	// anti-LRU scan → non-LRU detection keeps A-1.
	for tag := 1; tag <= 8; tag++ {
		c.Access(addrFor(16, tag, 64), false)
	}
	for round := 0; round < 10; round++ {
		for tag := 1; tag <= 8; tag++ {
			c.Access(addrFor(16, tag, 64), false)
		}
	}
	d := ctl.EndInterval()
	if d.ActiveWays[1] < 7 {
		t.Fatalf("scanning module shrunk to %d ways; non-LRU guard should keep >= 7", d.ActiveWays[1])
	}
}

func TestEndIntervalCountsTransitions(t *testing.T) {
	c := newTestCache(t)
	ctl, err := NewController(c, Config{Alpha: 0.97, AMin: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := ctl.EndInterval() // all modules 8 → 2 ways
	// Each module: 16 sets, 1 leader → 15 follower sets × 6 ways
	// turned off = 90 line transitions; 4 modules → 360.
	if d.LinesTransitioned != 360 {
		t.Fatalf("lines transitioned = %d, want 360", d.LinesTransitioned)
	}
	// Second interval with no hits: modules stay at 2, no transitions.
	d2 := ctl.EndInterval()
	if d2.LinesTransitioned != 0 {
		t.Fatalf("steady state transitions = %d, want 0", d2.LinesTransitioned)
	}
	st := ctl.Stats()
	if st.Intervals != 2 || st.LinesTransitioned != 360 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEndIntervalFlushCounts(t *testing.T) {
	c := newTestCache(t)
	ctl, err := NewController(c, Config{Alpha: 0.97, AMin: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Dirty a line in a follower set's way 7 (fill 8 ways of set 1,
	// last one dirty). Fills go to ways 0..7 in order.
	for tag := 1; tag <= 8; tag++ {
		c.Access(addrFor(1, tag, 64), tag == 8)
	}
	d := ctl.EndInterval() // shrink flushes ways 2..7 of followers
	if d.Invalidated < 6 {
		t.Fatalf("invalidated = %d, want >= 6", d.Invalidated)
	}
	if d.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", d.Writebacks)
	}
}

func TestEndIntervalResetsHistograms(t *testing.T) {
	c := newTestCache(t)
	ctl, err := NewController(c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Access(addrFor(0, 1, 64), false)
	c.Access(addrFor(0, 1, 64), false)
	ctl.EndInterval()
	for _, v := range c.HitPositions(0) {
		if v != 0 {
			t.Fatal("histograms not reset after EndInterval")
		}
	}
}

func TestControllerGrowsBack(t *testing.T) {
	c := newTestCache(t)
	ctl, err := NewController(c, Config{Alpha: 0.97, AMin: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctl.EndInterval() // idle → all modules at 2
	// Cycle over 6 tags in the (always 8-way) leader set 0: in steady
	// state every access hits at LRU position 5, so α coverage needs
	// 6 ways — and a single anomaly (position 4→5) stays below the
	// A/4 = 2 non-LRU threshold.
	for round := 0; round < 20; round++ {
		for tag := 1; tag <= 6; tag++ {
			c.Access(addrFor(0, tag, 64), false)
		}
	}
	d := ctl.EndInterval()
	if d.ActiveWays[0] != 6 {
		t.Fatalf("module 0 active ways = %d, want 6", d.ActiveWays[0])
	}
}

func TestDisableNonLRUGuard(t *testing.T) {
	// A strongly non-LRU profile whose coverage point is early: with
	// the guard the decision is A-1; with the ablation flag it falls
	// back to pure coverage.
	hits := []uint64{100, 10, 90, 10, 80, 10, 70, 10}
	guarded := DecideModule(hits, Config{Alpha: 0.5, AMin: 2})
	unguarded := DecideModule(hits, Config{Alpha: 0.5, AMin: 2, DisableNonLRUGuard: true})
	if guarded != 7 {
		t.Fatalf("guarded = %d, want 7", guarded)
	}
	if unguarded >= guarded {
		t.Fatalf("unguarded = %d, want < %d", unguarded, guarded)
	}
}

func TestMaxWayDeltaDampsSwings(t *testing.T) {
	c := newTestCache(t)
	ctl, err := NewController(c, Config{Alpha: 0.97, AMin: 2, MaxWayDelta: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Idle interval would shrink 8 -> 2 directly; with MaxWayDelta=2
	// it must step 8 -> 6 -> 4 -> 2 across intervals.
	want := []int{6, 4, 2, 2}
	for step, w := range want {
		d := ctl.EndInterval()
		for m, got := range d.ActiveWays {
			if got != w {
				t.Fatalf("step %d module %d: ways = %d, want %d", step, m, got, w)
			}
		}
	}
}

func TestMaxWayDeltaValidation(t *testing.T) {
	if (Config{Alpha: 0.97, AMin: 3, MaxWayDelta: -1}).Validate(16) == nil {
		t.Fatal("negative MaxWayDelta accepted")
	}
	if (Config{Alpha: 0.97, AMin: 3, MaxWayDelta: 4}).Validate(16) != nil {
		t.Fatal("valid MaxWayDelta rejected")
	}
}
