// Package runner is the experiment-execution engine: it fans
// independent simulation jobs out across a bounded pool of worker
// goroutines while honouring a small dependency DAG (baseline runs
// complete before the technique runs that normalise against them).
//
// The design goals, in order:
//
//   - Determinism. A sweep scheduled on the runner produces results
//     that are byte-identical regardless of the worker count: every
//     job's inputs (configuration, workload, derived seed) are fixed
//     at submission time, jobs share no mutable state, and callers
//     read results back in submission order after Run returns.
//   - Robustness. A panicking job is captured (with its stack) and
//     reported as an error instead of killing a 30-minute sweep; the
//     first failure cancels the run — queued jobs are skipped and the
//     error is returned once in-flight jobs drain.
//   - Visibility. An optional progress reporter prints completed/total
//     counts, the in-flight jobs and an ETA while a sweep runs.
//
// The generic layer (Pool, Task) knows nothing about simulations;
// sweep.go layers simulation jobs, baseline deduplication by a typed
// key, and the paper's baseline-vs-technique comparisons on top.
package runner

import (
	"container/heap"
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// taskState tracks a task through its lifecycle.
type taskState int

const (
	// statePending: submitted, not yet picked up by a worker.
	statePending taskState = iota
	// stateRunning: a worker is executing the task.
	stateRunning
	// stateDone: finished without error.
	stateDone
	// stateFailed: finished with an error (or a captured panic).
	stateFailed
	// stateSkipped: never started because the run was cancelled or a
	// dependency failed.
	stateSkipped
)

// Task is one schedulable unit of work. Tasks are created with
// Pool.Task and must not be constructed directly.
type Task struct {
	id    int
	label string
	fn    func(context.Context) error
	deps  []*Task

	// Guarded by the owning pool's mutex during Run.
	state     taskState
	err       error
	dependent []*Task // tasks waiting on this one (this round)
	waits     int     // unfinished dependencies (this round)
}

// Label returns the task's display label.
func (t *Task) Label() string { return t.label }

// ID returns the task's submission sequence number, fixed at Pool.Task
// time. It is stable across runs and worker counts, which makes it a
// deterministic key for per-task artifacts.
func (t *Task) ID() int { return t.id }

// Err returns the task's terminal error: nil when it completed, the
// job's error (or captured panic) when it failed, and a skip error
// when it never ran. Valid after Pool.Run returns.
func (t *Task) Err() error {
	switch t.state {
	case stateFailed:
		return t.err
	case stateSkipped:
		return fmt.Errorf("runner: task %q skipped: %w", t.label, t.err)
	default:
		return nil
	}
}

// Done reports whether the task has completed successfully.
func (t *Task) Done() bool { return t.state == stateDone }

// TaskEventType classifies a task lifecycle event.
type TaskEventType int

const (
	// TaskStarted: a worker picked the task up.
	TaskStarted TaskEventType = iota
	// TaskDone: the task completed successfully.
	TaskDone
	// TaskFailed: the task returned an error or panicked.
	TaskFailed
	// TaskSkipped: the task never ran (cancelled run or failed
	// dependency).
	TaskSkipped
)

// String names the event type (used verbatim in serving-layer SSE
// payloads).
func (t TaskEventType) String() string {
	switch t {
	case TaskStarted:
		return "started"
	case TaskDone:
		return "done"
	case TaskFailed:
		return "failed"
	case TaskSkipped:
		return "skipped"
	default:
		return fmt.Sprintf("event(%d)", int(t))
	}
}

// TaskEvent is one per-task progress notification delivered to a
// WithTaskHook observer. Finished counts tasks that have reached a
// terminal state (done, failed or skipped) including this one; Total
// is the number of tasks in the current Run.
type TaskEvent struct {
	Type   TaskEventType
	TaskID int
	Label  string
	// Err is set for TaskFailed and TaskSkipped events.
	Err      error
	Finished int
	Total    int
}

// Pool schedules tasks over a bounded set of worker goroutines.
// Run may be called repeatedly: each call executes the tasks
// submitted since the last call (plus any that were skipped), so a
// long-lived pool supports incremental sweeps that reuse earlier
// results (e.g. baselines shared across experiments).
type Pool struct {
	workers  int
	tasks    []*Task
	progress io.Writer
	tick     time.Duration
	label    string
	hook     func(TaskEvent)
}

// Option configures a Pool.
type Option func(*Pool)

// WithProgress makes the pool print progress lines (completed/total,
// running jobs, ETA) to w while Run executes.
func WithProgress(w io.Writer) Option {
	return func(p *Pool) { p.progress = w }
}

// WithProgressInterval sets how often progress lines are printed
// (default 2s).
func WithProgressInterval(d time.Duration) Option {
	return func(p *Pool) {
		if d > 0 {
			p.tick = d
		}
	}
}

// WithTaskHook registers a per-task progress callback: fn receives
// one TaskStarted event when a worker picks a task up and exactly one
// terminal event (TaskDone, TaskFailed or TaskSkipped) per scheduled
// task per Run. fn is called from worker goroutines — concurrently,
// and never with the pool's lock held, so it may block briefly (e.g.
// to fan events out to SSE subscribers) without stalling scheduling
// decisions; a slow hook still delays the worker that calls it.
func WithTaskHook(fn func(TaskEvent)) Option {
	return func(p *Pool) { p.hook = fn }
}

// WithLabel names the pool in progress output (default "runner").
func WithLabel(name string) Option {
	return func(p *Pool) {
		if name != "" {
			p.label = name
		}
	}
}

// NewPool builds a pool with the given worker count; workers <= 0
// selects GOMAXPROCS.
func NewPool(workers int, opts ...Option) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, tick: 2 * time.Second, label: "runner"}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Workers returns the configured worker count.
func (p *Pool) Workers() int { return p.workers }

// Task submits a unit of work that runs after every task in deps has
// completed. fn must be self-contained: it may not touch state shared
// with other tasks except through its declared dependencies. Nil
// dependencies are ignored (so optional deps need no special-casing
// at call sites).
func (p *Pool) Task(label string, fn func(context.Context) error, deps ...*Task) *Task {
	if fn == nil {
		panic("runner: nil task function")
	}
	t := &Task{id: len(p.tasks), label: label, fn: fn}
	for _, d := range deps {
		if d == nil {
			continue
		}
		if d.id >= len(p.tasks) || p.tasks[d.id] != d {
			panic(fmt.Sprintf("runner: task %q depends on a task from another pool", label))
		}
		t.deps = append(t.deps, d)
	}
	p.tasks = append(p.tasks, t)
	return t
}

// taskHeap orders pending-ready tasks by submission id, so workers
// pick jobs up in a deterministic order (results never depend on this
// order; it only keeps progress output and cache warm-up stable).
type taskHeap []*Task

func (h taskHeap) Len() int            { return len(h) }
func (h taskHeap) Less(i, j int) bool  { return h[i].id < h[j].id }
func (h taskHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x interface{}) { *h = append(*h, x.(*Task)) }
func (h *taskHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Run executes every not-yet-completed task, honouring dependencies,
// with at most the pool's worker count in flight. It returns the
// first error encountered (a task error, a captured panic, or the
// context's error); on error the remaining queued tasks are skipped.
// Tasks completed by an earlier Run are not re-run, and their results
// satisfy dependencies of newly submitted tasks.
func (p *Pool) Run(ctx context.Context) error {
	var pending []*Task
	for _, t := range p.tasks {
		if t.state == stateDone {
			continue
		}
		// Reset tasks skipped (or failed) by an earlier, aborted Run
		// so a corrected resubmission can retry the sweep's remainder.
		t.state = statePending
		t.err = nil
		t.waits = 0
		t.dependent = nil
		pending = append(pending, t)
	}
	if len(pending) == 0 {
		return nil
	}
	for _, t := range pending {
		for _, d := range t.deps {
			if d.state != stateDone {
				t.waits++
				d.dependent = append(d.dependent, t)
			}
		}
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		cond     = sync.Cond{L: &mu}
		ready    taskHeap
		running  int
		finished int
		firstErr error
		start    = time.Now()
	)
	for _, t := range pending {
		if t.waits == 0 {
			ready = append(ready, t)
		}
	}
	heap.Init(&ready)

	total := len(pending)

	// evq queues TaskEvents produced while holding mu; workers deliver
	// them to the hook after unlocking (the hook must never run under
	// the pool lock). Guarded by mu.
	var evq []TaskEvent
	queueEvent := func(t *Task, typ TaskEventType, err error) {
		if p.hook == nil {
			return
		}
		evq = append(evq, TaskEvent{
			Type: typ, TaskID: t.id, Label: t.label, Err: err,
			Finished: finished, Total: total,
		})
	}
	// drainEvents delivers queued events; caller must NOT hold mu.
	drainEvents := func() {
		if p.hook == nil {
			return
		}
		mu.Lock()
		evs := evq
		evq = nil
		mu.Unlock()
		for _, ev := range evs {
			p.hook(ev)
		}
	}

	// settle marks t terminal, propagates to dependents and wakes
	// workers. Caller holds mu.
	settle := func(t *Task, st taskState, err error) {
		t.state = st
		t.err = err
		finished++
		switch st {
		case stateDone:
			queueEvent(t, TaskDone, nil)
		case stateFailed:
			queueEvent(t, TaskFailed, err)
		case stateSkipped:
			queueEvent(t, TaskSkipped, err)
		}
		if st == stateDone {
			for _, dep := range t.dependent {
				dep.waits--
				if dep.waits == 0 && dep.state == statePending {
					heap.Push(&ready, dep)
				}
			}
		} else {
			if firstErr == nil {
				firstErr = err
				cancel()
			}
			// Skip the whole downstream cone.
			var skip func(*Task, error)
			skip = func(d *Task, cause error) {
				for _, dd := range d.dependent {
					if dd.state != statePending {
						continue
					}
					dd.state = stateSkipped
					dd.err = cause
					finished++
					queueEvent(dd, TaskSkipped, cause)
					skip(dd, cause)
				}
			}
			skip(t, fmt.Errorf("dependency %q failed: %w", t.label, err))
		}
		t.dependent = nil
		cond.Broadcast()
	}

	run := func(t *Task) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("runner: task %q panicked: %v\n%s", t.label, r, debug.Stack())
			}
		}()
		return t.fn(ctx)
	}

	workers := p.workers
	if workers > len(pending) {
		workers = len(pending)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			for {
				for len(ready) == 0 && finished < len(pending) && firstErr == nil && ctx.Err() == nil {
					cond.Wait()
				}
				if finished >= len(pending) || firstErr != nil || ctx.Err() != nil {
					// Drain: mark still-pending ready tasks skipped so
					// Run's accounting terminates for every worker.
					cause := firstErr
					if cause == nil {
						cause = ctx.Err()
					}
					for _, t := range ready {
						if t.state == statePending {
							t.state = stateSkipped
							t.err = cause
							finished++
							queueEvent(t, TaskSkipped, cause)
						}
					}
					ready = ready[:0]
					cond.Broadcast()
					mu.Unlock()
					drainEvents()
					mu.Lock()
					return
				}
				t := heap.Pop(&ready).(*Task)
				t.state = stateRunning
				running++
				startEv := TaskEvent{Type: TaskStarted, TaskID: t.id, Label: t.label, Finished: finished, Total: total}
				mu.Unlock()
				if p.hook != nil {
					p.hook(startEv)
				}
				err := run(t)
				mu.Lock()
				running--
				if err != nil {
					settle(t, stateFailed, err)
				} else {
					settle(t, stateDone, nil)
				}
				mu.Unlock()
				drainEvents()
				mu.Lock()
			}
		}()
	}

	// Progress reporter.
	stopProgress := make(chan struct{})
	var progressWG sync.WaitGroup
	if p.progress != nil {
		progressWG.Add(1)
		go func() {
			defer progressWG.Done()
			ticker := time.NewTicker(p.tick)
			defer ticker.Stop()
			for {
				select {
				case <-stopProgress:
					return
				case <-ticker.C:
				}
				mu.Lock()
				done, inFlight, total := finished, running, len(pending)
				mu.Unlock()
				elapsed := time.Since(start)
				eta := "?"
				if done > 0 && done < total {
					rem := time.Duration(float64(elapsed) / float64(done) * float64(total-done))
					eta = rem.Round(time.Second).String()
				}
				fmt.Fprintf(p.progress, "[%s] %d/%d jobs done, %d running, %.1fs elapsed, eta %s\n",
					p.label, done, total, inFlight, elapsed.Seconds(), eta)
			}
		}()
	}

	wg.Wait()
	drainEvents() // anything queued after the last worker's drain
	close(stopProgress)
	progressWG.Wait()

	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if p.progress != nil {
		mu.Lock()
		total := len(pending)
		mu.Unlock()
		fmt.Fprintf(p.progress, "[%s] %d jobs done in %.1fs (%d workers)\n",
			p.label, total, time.Since(start).Seconds(), workers)
	}
	return nil
}
