package oracle

import "repro/internal/energy"

// EnergyBreakdown re-evaluates the paper's Equations (2)–(8) from the
// raw activity counts, written out term by term and independently of
// energy.Model.Eval. The verify harness compares the two within a
// floating-point tolerance.
func EnergyBreakdown(m energy.Model, a energy.Activity) energy.Breakdown {
	seconds := float64(a.Cycles) / m.FreqHz

	// Equation (4): LE_L2 = P_L2_leak * F_A * T.
	l2Leak := m.L2LeakW * a.ActiveFraction * seconds

	// Equation (5): DE_L2 = E_L2_dyn * (2*M_L2 + H_L2). A miss costs
	// two accesses (probe + fill), a hit one. Read/write-asymmetric
	// technologies price the same access counts per direction: reads
	// are the read hits plus each miss's probe, writes are the write
	// hits plus each miss's fill.
	var l2Dyn float64
	if m.L2ReadJ == m.L2WriteJ {
		accessEquivalents := 2*float64(a.L2Misses) + float64(a.L2Hits)
		l2Dyn = m.L2DynJ * accessEquivalents
	} else {
		reads := float64(a.L2Hits) - float64(a.L2WriteHits) + float64(a.L2Misses)
		writes := float64(a.L2WriteHits) + float64(a.L2Misses)
		l2Dyn = reads*m.L2ReadJ + writes*m.L2WriteJ
	}

	// Equation (6): RE_L2 = N_R * E_refresh; the paper's eDRAM model
	// charges one access per refreshed line (L2RefreshJ = 0 means
	// L2DynJ), scrub-based technologies carry their own per-scrub
	// energy.
	perRefresh := m.L2RefreshJ
	if perRefresh == 0 {
		perRefresh = m.L2DynJ
	}
	l2Refresh := perRefresh * float64(a.Refreshes)

	// Equation (7): E_MM = P_MM_leak * T + E_MM_dyn * A_MM.
	mmLeak := m.MMLeakWatt * seconds
	mmDyn := m.MMDynJPerAccess * float64(a.MMAccesses)

	// Equation (8): E_Algo = E_chi * N_L.
	algo := m.TransJ * float64(a.LinesTransitioned)

	return energy.Breakdown{
		L2Leak:    l2Leak,
		L2Dyn:     l2Dyn,
		L2Refresh: l2Refresh,
		MMLeak:    mmLeak,
		MMDyn:     mmDyn,
		Algo:      algo,
	}
}

// AccumulateActivity folds interval activities into a run total in one
// from-scratch pass: plain sums for the counters and a single
// cycle-weighted mean for F_A — independent of the incremental
// pairwise reweighting that energy.Activity.Add performs.
func AccumulateActivity(ivs []energy.Activity) energy.Activity {
	var out energy.Activity
	var weighted float64
	for _, iv := range ivs {
		out.Cycles += iv.Cycles
		out.L2Hits += iv.L2Hits
		out.L2WriteHits += iv.L2WriteHits
		out.L2Misses += iv.L2Misses
		out.Refreshes += iv.Refreshes
		out.MMAccesses += iv.MMAccesses
		out.LinesTransitioned += iv.LinesTransitioned
		weighted += iv.ActiveFraction * float64(iv.Cycles)
	}
	if out.Cycles > 0 {
		out.ActiveFraction = weighted / float64(out.Cycles)
	}
	return out
}
