package retention

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestCalibrationPoints pins the paper's two (temperature, retention)
// points: 40 µs at 105 °C (Barth et al.) and 50 µs at 60 °C (the
// paper's assumed operating point).
func TestCalibrationPoints(t *testing.T) {
	if got := Micros(105); !close(got, 40, 1e-9) {
		t.Errorf("Micros(105) = %v, want 40", got)
	}
	if got := Micros(60); !close(got, 50, 1e-9) {
		t.Errorf("Micros(60) = %v, want 50", got)
	}
}

func TestMicrosMonotoneDecreasing(t *testing.T) {
	prev := math.Inf(1)
	for temp := 20.0; temp <= 125; temp += 5 {
		cur := Micros(temp)
		if cur >= prev {
			t.Fatalf("retention not decreasing at %v C", temp)
		}
		if cur <= 0 {
			t.Fatalf("non-positive retention at %v C", temp)
		}
		prev = cur
	}
}

func TestTempForMicrosRoundTrip(t *testing.T) {
	for _, temp := range []float64{25, 60, 85, 105} {
		ret := Micros(temp)
		back, err := TempForMicros(ret)
		if err != nil {
			t.Fatal(err)
		}
		if !close(back, temp, 1e-6) {
			t.Errorf("round trip %v C -> %v us -> %v C", temp, ret, back)
		}
	}
	if _, err := TempForMicros(0); err == nil {
		t.Error("zero retention accepted")
	}
	if _, err := TempForMicros(-5); err == nil {
		t.Error("negative retention accepted")
	}
}

func TestVariationValidate(t *testing.T) {
	if (Variation{Sigma: -1}).Validate() == nil {
		t.Error("negative sigma accepted")
	}
	if (Variation{Sigma: 0.2}).Validate() != nil {
		t.Error("valid sigma rejected")
	}
}

func TestSampleNoVariation(t *testing.T) {
	v := Variation{Sigma: 0}
	rng := xrand.New(1)
	for i := 0; i < 10; i++ {
		if v.Sample(rng) != 1 {
			t.Fatal("sigma=0 sample != 1")
		}
	}
}

func TestSampleDistribution(t *testing.T) {
	v := Variation{Sigma: 0.2}
	rng := xrand.New(7)
	const n = 100000
	sumLog := 0.0
	sumLog2 := 0.0
	for i := 0; i < n; i++ {
		l := math.Log(v.Sample(rng))
		sumLog += l
		sumLog2 += l * l
	}
	mean := sumLog / n
	sd := math.Sqrt(sumLog2/n - mean*mean)
	if math.Abs(mean) > 0.005 {
		t.Errorf("log-mean = %v, want ~0", mean)
	}
	if math.Abs(sd-0.2) > 0.005 {
		t.Errorf("log-sd = %v, want ~0.2", sd)
	}
}

func TestWorstCaseMultiplier(t *testing.T) {
	v := Variation{Sigma: 0.2}
	m1, err := v.WorstCaseMultiplier(1)
	if err != nil {
		t.Fatal(err)
	}
	m64k, err := v.WorstCaseMultiplier(65536)
	if err != nil {
		t.Fatal(err)
	}
	if m64k >= m1 {
		t.Fatalf("worst case of 64k lines (%v) should be below 1 line (%v)", m64k, m1)
	}
	if m64k <= 0 || m64k >= 1 {
		t.Fatalf("worst-case multiplier %v out of (0,1)", m64k)
	}
	// Quantile 1/(n+1) at n=64k, sigma=0.2: z ~ -4.0 → exp(-0.80) ~ 0.45.
	if m64k < 0.35 || m64k > 0.55 {
		t.Errorf("worst-case multiplier = %v, want ~0.45", m64k)
	}
	if _, err := v.WorstCaseMultiplier(0); err == nil {
		t.Error("zero population accepted")
	}
	// No variation → multiplier exactly 1 regardless of population.
	m, err := Variation{}.WorstCaseMultiplier(1 << 20)
	if err != nil || m != 1 {
		t.Errorf("sigma=0 multiplier = %v (%v)", m, err)
	}
}

func TestDeratedMicros(t *testing.T) {
	// At the nominal temperature with no variation, derated equals
	// nominal retention.
	d, err := DeratedMicros(60, Variation{}, 65536)
	if err != nil {
		t.Fatal(err)
	}
	if !close(d, 50, 1e-9) {
		t.Errorf("derated = %v, want 50", d)
	}
	// With variation the usable period shrinks.
	d2, err := DeratedMicros(60, Variation{Sigma: 0.2}, 65536)
	if err != nil {
		t.Fatal(err)
	}
	if d2 >= d {
		t.Errorf("variation did not derate: %v vs %v", d2, d)
	}
	if _, err := DeratedMicros(60, Variation{Sigma: -1}, 10); err == nil {
		t.Error("invalid variation accepted")
	}
}

// TestNormQuantile checks the quantile approximation against known
// standard-normal values.
func TestNormQuantile(t *testing.T) {
	cases := []struct{ p, z float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.841344746, 1.0},
		{1e-6, -4.753424},
	}
	for _, c := range cases {
		if got := normQuantile(c.p); !close(got, c.z, 1e-4) {
			t.Errorf("normQuantile(%v) = %v, want %v", c.p, got, c.z)
		}
	}
}

func TestNormQuantileSymmetryProperty(t *testing.T) {
	err := quick.Check(func(raw uint16) bool {
		p := (float64(raw) + 1) / 65538 // (0, 1)
		return close(normQuantile(p), -normQuantile(1-p), 1e-6)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNormQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("normQuantile(%v) did not panic", p)
				}
			}()
			normQuantile(p)
		}()
	}
}
